package ctjam_test

import (
	"fmt"
	"log"

	"ctjam"
)

// ExampleAnalyzeMDP shows the threshold structure of the optimal defense
// (Theorem III.4): stay on the channel while n < n*, hop once n >= n*.
func ExampleAnalyzeMDP() {
	cfg := ctjam.DefaultConfig() // L_J=100, L_H=50, sweep cycle 4
	a, err := ctjam.AnalyzeMDP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("threshold policy: %v, n* = %d\n", a.IsThreshold, a.Threshold)
	// Output:
	// threshold policy: true, n* = 3
}

// ExampleSolveMDP evaluates the exact optimal anti-jamming policy against
// the max-power cross-technology jammer.
func ExampleSolveMDP() {
	cfg := ctjam.DefaultConfig()
	policy, err := ctjam.SolveMDP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m, err := ctjam.Evaluate(cfg, ctjam.SchemeMDP, policy, 20000)
	if err != nil {
		log.Fatal(err)
	}
	// The paper reports ~78% at these parameters.
	fmt.Printf("success rate above 75%%: %v\n", m.ST > 0.75)
	// Output:
	// success rate above 75%: true
}

// ExampleEmulateZigBee builds the EmuBee cross-technology jamming waveform
// and verifies a ZigBee receiver decodes it.
func ExampleEmulateZigBee() {
	em, err := ctjam.EmulateZigBee([]uint8{1, 2, 3, 4, 5, 6, 7, 8}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulation via %d Wi-Fi payload bits, symbol errors: %d/%d\n",
		len(em.WiFiPayloadBits), em.SymbolErrors, em.Symbols)
	// Output:
	// emulation via 4752 Wi-Fi payload bits, symbol errors: 0/8
}
