#!/bin/sh
# Promote fuzz-discovered inputs from the local Go fuzz cache
# ($GOCACHE/fuzz) into the committed corpora under each package's
# testdata/fuzz/, so every interesting input a campaign found replays as a
# regression case in plain `go test` on every machine. Safe to re-run: only
# inputs not already committed are copied. After promoting, the corpora are
# replayed once to prove they still pass.
set -eu

cd "$(dirname "$0")/.."

CACHE="$(go env GOCACHE)/fuzz/$(go list -m)"

promote() {
	pkg="$1"
	target="$2"
	src="$CACHE/$pkg/$target"
	dst="$pkg/testdata/fuzz/$target"
	if [ ! -d "$src" ]; then
		echo "promote-corpus: no cached inputs for $target"
		return 0
	fi
	mkdir -p "$dst"
	n=0
	for f in "$src"/*; do
		[ -f "$f" ] || continue
		base="$(basename "$f")"
		if [ ! -f "$dst/$base" ]; then
			cp "$f" "$dst/$base"
			n=$((n + 1))
		fi
	done
	echo "promote-corpus: $n new inputs -> $dst"
}

promote internal/phy/zigbee FuzzZigbeeFrameDecode
promote internal/phy/wifi FuzzWifiPPDUDecode
promote internal/rl FuzzCheckpointLoad
promote internal/nn FuzzForwardBatchEngines
promote internal/core FuzzSchemeRoundTrip
promote internal/jammer FuzzJammerSpec

# Replay the (possibly grown) corpora: a promoted input that fails belongs
# in a bug report, not in the committed corpus.
go test -count=1 ./internal/phy/zigbee ./internal/phy/wifi ./internal/rl ./internal/nn ./internal/core ./internal/jammer
