#!/bin/sh
# Full verification gate: vet, build, and run the whole test suite under the
# race detector. The parallel execution engine (internal/parallel and its
# users in internal/experiments) writes results into shared slices from
# worker goroutines, so the -race run is the load-bearing part of this check.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
