#!/bin/sh
# Full verification gate: vet, build, run the whole test suite under the
# race detector, smoke the fuzz targets, and enforce a coverage floor on the
# PHY and learner packages. The parallel execution engine (internal/parallel
# and its users in internal/experiments) writes results into shared slices
# from worker goroutines, so the -race run is the load-bearing part of this
# check.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# The batched inference engine's contracts are concurrency-sensitive: one
# immutable snapshot serves many goroutines, and ctjam-serve hot-swaps it
# under load. Run those suites under -race explicitly (and with -count=1 so
# they never come from the build cache). The serve suite carries the
# end-to-end batching-equivalence proof: batching on/off must return
# identical actions under concurrent load and hot-reload churn.
go test -race -count=1 -run 'TestBatchSerialEquivalence|TestBatchValidation' ./internal/policy
go test -race -count=1 -run 'TestSnapshot' ./internal/rl
go test -race -count=1 ./internal/serve
go test -race -count=1 ./cmd/ctjam-serve

# The float32 fast path must agree with the exact engine on every machine,
# including ones without AVX/FMA: run the inference packages with the asm
# kernels compiled out (noasm) so the pure-Go fallbacks stay proven, and the
# dual-engine equivalence suite under -race since fast snapshots serve many
# goroutines from one immutable quantization.
go test -count=1 -tags noasm ./internal/nn ./internal/rl ./internal/policy
go test -race -count=1 -run 'TestForwardBatch32|TestSnapshotFast32|TestEngine' ./internal/nn ./internal/rl ./internal/policy

# The sweep-point cache shares memoized counters and trained schemes across
# concurrent experiment runs; its claim/wait protocol must stay race-clean
# and bit-identical to uncached serial runs.
go test -race -count=1 -run 'TestSweepCache|TestBatchedSerialEvalCounters' ./internal/experiments

# Distributed execution must stay bit-identical to a single-process run —
# static shards at several counts, the coordinator/worker HTTP protocol,
# and worker-loss retry all reproduce the same experiment traces — and the
# coordinator's lease ledger must stay race-clean under concurrent workers.
go test -race -count=1 -run 'TestDistributed' ./internal/dist

# The sharded field engine writes per-cluster results into index-addressed
# slices from worker goroutines; its bit-identical-at-any-worker-count
# guarantee must stay race-clean, for both the full-run-per-shard path and
# the lockstep batched path.
go test -race -count=1 -run 'TestFieldShardEquivalence|TestEngineRunBatchMatchesRun' ./internal/iot

# Benchmark smoke: one iteration of the headline cache benchmark, the
# batched policy engine, and a short sustained-serve window, so the
# committed BENCH numbers stay regenerable (full runs via scripts/bench.sh).
go test -run '^$' -bench '^BenchmarkAllSweeps$' -benchtime 1x .
go test -run '^$' -bench '^BenchmarkPolicyBatch$' -benchtime 1x ./internal/policy
CTJAM_SERVE_BENCH_MS=200 go test -run '^$' -bench '^BenchmarkServeSustained$' -benchtime 1x ./internal/serve
go test -run '^$' -bench '^BenchmarkFieldEngine/nodes-1e3$' -benchtime 1x ./internal/iot

# Fuzz smoke: a few seconds per target catches shallow panics and keeps the
# committed corpora replaying. Override the budget with CHECK_FUZZTIME
# (e.g. CHECK_FUZZTIME=30s for a longer local campaign); full-length runs
# stay manual:
#   go test -run '^$' -fuzz FuzzZigbeeFrameDecode -fuzztime 5m ./internal/phy/zigbee
FUZZTIME="${CHECK_FUZZTIME:-5s}"
go test -run '^$' -fuzz FuzzZigbeeFrameDecode -fuzztime "$FUZZTIME" ./internal/phy/zigbee
go test -run '^$' -fuzz FuzzWifiPPDUDecode -fuzztime "$FUZZTIME" ./internal/phy/wifi
go test -run '^$' -fuzz FuzzCheckpointLoad -fuzztime "$FUZZTIME" ./internal/rl
go test -run '^$' -fuzz FuzzForwardBatchEngines -fuzztime "$FUZZTIME" ./internal/nn
go test -run '^$' -fuzz FuzzSchemeRoundTrip -fuzztime "$FUZZTIME" ./internal/core
go test -run '^$' -fuzz FuzzJammerSpec -fuzztime "$FUZZTIME" ./internal/jammer

# Coverage floor: the signal-processing and learner packages back every
# experiment, and the experiment harness and policy engine back every
# reported number, so they must all stay well tested.
go test -cover ./internal/phy/... ./internal/rl ./internal/experiments ./internal/policy | awk '
	{ print }
	/^(FAIL|---)/ { bad = 1 }
	/coverage:/ {
		for (i = 1; i < NF; i++) if ($i == "coverage:") {
			p = $(i + 1)
			sub(/%/, "", p)
			if (p + 0 < 70) bad = 1
		}
	}
	END { if (bad) { print "coverage gate failed (test failure or below 70% floor)"; exit 1 } }
'

# Higher floors for the inference hot path: internal/nn carries the asm
# kernels and their equivalence harness (>=80%), internal/serve the
# production decision surface (>=75%), internal/iot the sharded field
# engine whose determinism guarantees every committed field number (>=75%),
# and internal/jammer the adversary zoo whose strategies feed every cache
# key and golden trace (>=85%).
go test -cover ./internal/nn ./internal/serve ./internal/iot ./internal/jammer | awk '
	{ print }
	/^(FAIL|---)/ { bad = 1 }
	/coverage:/ {
		floor = 75
		if ($2 ~ /internal\/nn$/) floor = 80
		if ($2 ~ /internal\/jammer$/) floor = 85
		for (i = 1; i < NF; i++) if ($i == "coverage:") {
			p = $(i + 1)
			sub(/%/, "", p)
			if (p + 0 < floor) bad = 1
		}
	}
	END { if (bad) { print "coverage gate failed (nn below 80%, jammer below 85%, serve/iot below 75%)"; exit 1 } }
'
