#!/bin/sh
# Full verification gate: vet, build, run the whole test suite under the
# race detector, smoke the fuzz targets, and enforce a coverage floor on the
# PHY and learner packages. The parallel execution engine (internal/parallel
# and its users in internal/experiments) writes results into shared slices
# from worker goroutines, so the -race run is the load-bearing part of this
# check.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Fuzz smoke: a few seconds per target catches shallow panics and keeps the
# committed corpora replaying. Longer campaigns are manual:
#   go test -run '^$' -fuzz FuzzZigbeeFrameDecode -fuzztime 5m ./internal/phy/zigbee
go test -run '^$' -fuzz FuzzZigbeeFrameDecode -fuzztime 5s ./internal/phy/zigbee
go test -run '^$' -fuzz FuzzWifiPPDUDecode -fuzztime 5s ./internal/phy/wifi
go test -run '^$' -fuzz FuzzCheckpointLoad -fuzztime 5s ./internal/rl

# Coverage floor: the signal-processing and learner packages back every
# experiment, so they must stay well tested.
go test -cover ./internal/phy/... ./internal/rl | awk '
	{ print }
	/^(FAIL|---)/ { bad = 1 }
	/coverage:/ {
		for (i = 1; i < NF; i++) if ($i == "coverage:") {
			p = $(i + 1)
			sub(/%/, "", p)
			if (p + 0 < 70) bad = 1
		}
	}
	END { if (bad) { print "coverage gate failed (test failure or below 70% floor)"; exit 1 } }
'
