package ctjam

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestCheckpointResumeBitIdentical is the headline guarantee of the
// checkpoint layer: a training run that is killed partway and resumed from
// its latest snapshot must be indistinguishable — network bytes and
// evaluation metrics — from a run that never stopped.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	const slots = 3000

	full, err := TrainDQNWithOptions(cfg, slots, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	// "Crash" at slot 1700 — deliberately not a checkpoint multiple, so
	// the final snapshot at StopAfter is what gets resumed.
	if _, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
		Checkpoint: ckpt, CheckpointEvery: 500, StopAfter: 1700,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file missing after interrupted run: %v", err)
	}
	resumed, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
		Checkpoint: ckpt, CheckpointEvery: 500, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := full.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed network differs from uninterrupted run")
	}

	m1, err := Evaluate(cfg, SchemeRL, full, 2000)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Evaluate(cfg, SchemeRL, resumed, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatalf("metrics diverge: full %+v resumed %+v", m1, m2)
	}
}

// A double interruption exercises resuming from a resumed run.
func TestCheckpointResumeTwice(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	const slots = 2000
	full, err := TrainDQNWithOptions(cfg, slots, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	for _, stop := range []int{700, 1400, 0} {
		if _, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
			Checkpoint: ckpt, CheckpointEvery: 300, Resume: true, StopAfter: stop,
		}); err != nil {
			t.Fatal(err)
		}
	}
	resumed, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
		Checkpoint: ckpt, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := full.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("doubly-resumed network differs from uninterrupted run")
	}
}

func TestCheckpointResumeMissingFileStartsFresh(t *testing.T) {
	cfg := DefaultConfig()
	ckpt := filepath.Join(t.TempDir(), "nope.ckpt")
	p, err := TrainDQNWithOptions(cfg, 600, TrainOptions{Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.ParamCount() == 0 {
		t.Fatal("fresh run produced no parameters")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
}

func TestCheckpointLoadRejectsGarbage(t *testing.T) {
	cfg := DefaultConfig()
	ckpt := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(ckpt, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := TrainDQNWithOptions(cfg, 600, TrainOptions{Checkpoint: ckpt, Resume: true}); err == nil {
		t.Fatal("expected error resuming from garbage")
	}
}

// Non-default attackers carry their own strategy state through checkpoints
// (the v2 jammer-state section): a nested budget-over-reactive jammer must
// resume bit-identically, proving the generic encode/decode round-trips
// mid-cycle strategy state rather than silently restarting the attacker.
func TestCheckpointResumeWithJammerZoo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JammerSpec = "budget:duty=0.5,burst=2,over=(reactive:delay=2,miss=0.1)"
	const slots = 1500
	full, err := TrainDQNWithOptions(cfg, slots, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	// Stop off any checkpoint multiple so the resumed attacker state comes
	// from the StopAfter snapshot, mid burst-window.
	if _, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
		Checkpoint: ckpt, CheckpointEvery: 400, StopAfter: 900,
	}); err != nil {
		t.Fatal(err)
	}
	resumed, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
		Checkpoint: ckpt, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := full.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("zoo-jammer resume differs from uninterrupted run")
	}
	m1, err := Evaluate(cfg, SchemeRL, full, 2000)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Evaluate(cfg, SchemeRL, resumed, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatalf("metrics diverge: full %+v resumed %+v", m1, m2)
	}
}

// Faulted training must checkpoint/resume identically too: injectors are
// pure functions of (seed, slot), so they need no state of their own.
func TestCheckpointResumeWithFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultSpec = "burst:p=0.1,power=30;ack:p=0.02"
	const slots = 1500
	full, err := TrainDQNWithOptions(cfg, slots, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	if _, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
		Checkpoint: ckpt, CheckpointEvery: 400, StopAfter: 900,
	}); err != nil {
		t.Fatal(err)
	}
	resumed, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
		Checkpoint: ckpt, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := full.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("faulted resume differs from uninterrupted faulted run")
	}
}
