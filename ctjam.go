// Package ctjam reproduces "Defending against Cross-Technology Jamming in
// Heterogeneous IoT Systems" (ICDCS 2022): a hybrid anti-jamming scheme for
// ZigBee networks under attack by a Wi-Fi cross-technology jammer, combining
// frequency hopping and power control, modeled as an MDP and solved both
// exactly (value iteration) and with a Deep Q-Network.
//
// The package is a facade over the internal implementation:
//
//   - Evaluate runs an anti-jamming scheme in the slot-level jamming
//     environment and reports the paper's Table I metrics.
//   - TrainDQN trains the paper's DQN scheme and returns a persistable
//     policy.
//   - FieldCompare runs the discrete-event testbed simulator (goodput per
//     scheme, Fig. 11a); FieldScale runs the sharded multi-cluster engine
//     for large fields.
//   - EmulateZigBee builds an "EmuBee" waveform: a Wi-Fi-transmittable
//     emulation of a ZigBee signal (Fig. 1-2).
//   - RunExperiment / RunExperiments regenerate the paper's figures/tables
//     by id, sharing one sweep-point cache across a batch.
package ctjam

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"ctjam/internal/atomicfile"
	"ctjam/internal/ckpt"
	"ctjam/internal/core"
	"ctjam/internal/dist"
	"ctjam/internal/env"
	"ctjam/internal/experiments"
	"ctjam/internal/fault"
	"ctjam/internal/iot"
	"ctjam/internal/jammer"
	"ctjam/internal/phy/emulate"
	"ctjam/internal/phy/zigbee"
	pol "ctjam/internal/policy"
)

// JammerMode selects the attacker's power strategy.
type JammerMode string

// Jammer modes (§II-C1).
const (
	// JammerMax is the high-performance mode: always maximum power.
	JammerMax JammerMode = "max"
	// JammerRandom is the hidden mode: uniformly random power.
	JammerRandom JammerMode = "random"
)

func (m JammerMode) internal() (jammer.PowerMode, error) {
	switch m {
	case JammerMax, "":
		return jammer.ModeMax, nil
	case JammerRandom:
		return jammer.ModeRandom, nil
	default:
		return 0, fmt.Errorf("ctjam: unknown jammer mode %q", m)
	}
}

// Scheme names an anti-jamming scheme.
type Scheme string

// Schemes compared in §IV-D3.
const (
	// SchemeRL is the paper's DQN-learned policy (requires TrainDQN) —
	// "RL FH".
	SchemeRL Scheme = "rl"
	// SchemeMDP is the exact optimal policy from value iteration; the
	// DQN approximates it.
	SchemeMDP Scheme = "mdp"
	// SchemePassive hops only after the error rate trips — "PSV FH".
	SchemePassive Scheme = "passive"
	// SchemeRandom picks FH or PC at random each slot — "Rand FH".
	SchemeRandom Scheme = "random"
	// SchemeStatic never defends (reference victim).
	SchemeStatic Scheme = "static"
	// SchemeQLearning is the tabular Q-learning baseline (requires
	// TrainQLearning) the paper's DQN is motivated against.
	SchemeQLearning Scheme = "qlearning"
)

// Config describes the jamming scenario (paper defaults via DefaultConfig).
type Config struct {
	// Channels is K, the ZigBee channel count (16).
	Channels int
	// SweepWidth is m, channels jammed per slot (4).
	SweepWidth int
	// PowerLevels is the number of victim/jammer power levels (10).
	PowerLevels int
	// TxPowerLow is the victim's lowest power loss L^T (6); levels run
	// [TxPowerLow, TxPowerLow+PowerLevels-1]. The jammer's levels run
	// [JamPowerLow, ...] analogously (11).
	TxPowerLow  float64
	JamPowerLow float64
	// LossHop is L_H (50) and LossJam is L_J (100) from Eq. (5).
	LossHop float64
	LossJam float64
	// Jammer selects the attacker's power mode.
	Jammer JammerMode
	// JammerSpec selects the attacker's hopping strategy from the jammer
	// zoo, in the internal/jammer spec grammar — e.g. "sweep",
	// "reactive:delay=2,miss=0.1", "adaptive:alpha=0.2",
	// "budget:duty=0.5,over=(reactive)". Empty means the paper's §II-C
	// sweeping jammer.
	JammerSpec string
	// Seed makes runs reproducible.
	Seed int64
	// FaultSpec optionally layers deterministic fault injection on top of
	// the jammer, in the internal/fault grammar — e.g.
	// "burst:p=0.1,power=30;ack:p=0.02". Empty disables injection. Faults
	// are pure functions of (seed, slot), so they preserve reproducibility
	// and compose with checkpoint/resume.
	FaultSpec string
}

// DefaultConfig returns the paper's simulation parameters (§IV-A1).
func DefaultConfig() Config {
	return Config{
		Channels:    16,
		SweepWidth:  4,
		PowerLevels: 10,
		TxPowerLow:  6,
		JamPowerLow: 11,
		LossHop:     50,
		LossJam:     100,
		Jammer:      JammerMax,
		Seed:        1,
	}
}

func (c Config) internal() (env.Config, error) {
	mode, err := c.Jammer.internal()
	if err != nil {
		return env.Config{}, err
	}
	if c.PowerLevels <= 0 {
		return env.Config{}, fmt.Errorf("ctjam: power levels %d must be positive", c.PowerLevels)
	}
	tx := make([]float64, c.PowerLevels)
	jam := make([]float64, c.PowerLevels)
	for i := 0; i < c.PowerLevels; i++ {
		tx[i] = c.TxPowerLow + float64(i)
		jam[i] = c.JamPowerLow + float64(i)
	}
	cfg := env.Config{
		Channels:   c.Channels,
		SweepWidth: c.SweepWidth,
		TxPowers:   tx,
		JamPowers:  jam,
		JammerMode: mode,
		Jammer:     c.JammerSpec,
		LossHop:    c.LossHop,
		LossJam:    c.LossJam,
		Seed:       c.Seed,
	}
	if err := cfg.Validate(); err != nil {
		return env.Config{}, err
	}
	inj, err := fault.Parse(c.FaultSpec, c.Seed)
	if err != nil {
		return env.Config{}, err
	}
	cfg.Faults = inj
	return cfg, nil
}

// Metrics are the paper's Table I evaluation metrics, as fractions in
// [0, 1].
type Metrics struct {
	// ST is the success rate of transmission.
	ST float64
	// AH / SH are the adoption and success rates of frequency hopping.
	AH, SH float64
	// AP / SP are the adoption and success rates of power control.
	AP, SP float64
	// JamRate is the fraction of slots spent co-channel with the jammer.
	JamRate float64
	// Slots is the evaluation length.
	Slots int
}

// Policy is a trained (or solved) anti-jamming policy.
type Policy struct {
	agent env.Agent
	dqn   *core.DQNAgent // non-nil when the policy is a trained DQN
}

// TrainDQN trains the paper's DQN scheme online in the configured
// environment for trainSlots slots (§IV-B uses >120k transitions; 30k
// reaches the reported performance in this simulator).
func TrainDQN(cfg Config, trainSlots int) (*Policy, error) {
	return TrainDQNWithOptions(cfg, trainSlots, TrainOptions{})
}

// TrainOptions adds crash-safe checkpointing to DQN training. All fields are
// optional; the zero value trains straight through without checkpoints.
type TrainOptions struct {
	// Checkpoint is the snapshot file path; empty disables checkpointing.
	// Snapshots are written atomically (temp file + rename), so a crash
	// mid-write leaves the previous snapshot intact.
	Checkpoint string
	// CheckpointEvery is the slot interval between snapshot writes
	// (default 1000 when Checkpoint is set).
	CheckpointEvery int
	// Resume restores the snapshot at Checkpoint before training; a
	// missing file starts from scratch. The training target (trainSlots)
	// must match the original run's, since the exploration schedule is
	// derived from it.
	Resume bool
	// StopAfter, when positive, halts training after that many total
	// slots even though the schedule targets trainSlots — simulating a
	// crash for resume testing. The returned policy reflects the partial
	// run.
	StopAfter int
	// Keep, when positive, switches Checkpoint from a single snapshot file
	// to a rotating generational store: Checkpoint then names a DIRECTORY
	// into which each snapshot is written as ckpt-NNNNNN.ctdq (named by
	// training slot), retaining only the newest Keep generations. Resume
	// scans the directory newest-to-oldest and falls back to an older
	// generation when the newest is corrupt, so a crash mid-write (or a
	// truncated file) costs at most one checkpoint interval.
	Keep int
}

// TrainDQNWithOptions is TrainDQN with checkpoint/resume support. A run that
// is killed and resumed from its latest snapshot produces a policy (and
// downstream metrics) bit-identical to an uninterrupted run with the same
// configuration and training target.
func TrainDQNWithOptions(cfg Config, trainSlots int, opts TrainOptions) (*Policy, error) {
	ecfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	acfg := core.DefaultDQNAgentConfig(ecfg.Channels, len(ecfg.TxPowers), ecfg.SweepWidth)
	acfg.Seed = cfg.Seed
	if trainSlots > 0 {
		acfg.Epsilon.DecaySteps = trainSlots * 2 / 3
	}
	build := func() (*core.DQNAgent, *env.Environment, error) {
		agent, err := core.NewDQNAgent(acfg)
		if err != nil {
			return nil, nil, err
		}
		e, err := env.New(ecfg)
		if err != nil {
			return nil, nil, err
		}
		return agent, e, nil
	}
	agent, e, err := build()
	if err != nil {
		return nil, err
	}
	rotating := opts.Checkpoint != "" && opts.Keep > 0
	start := 0
	var base float64
	switch {
	case opts.Resume && rotating:
		entries, err := ckpt.List(opts.Checkpoint)
		if err != nil {
			return nil, err
		}
		loaded := false
		var lastErr error
		for i := len(entries) - 1; i >= 0 && !loaded; i-- {
			f, err := os.Open(entries[i].Path)
			if err != nil {
				lastErr = err
				continue
			}
			cur, lerr := agent.LoadTraining(f, e)
			f.Close()
			if lerr != nil {
				// Corrupt generation: rebuild the agent/env pair in case
				// the partial decode touched them, and fall back.
				lastErr = lerr
				if agent, e, err = build(); err != nil {
					return nil, err
				}
				continue
			}
			start, base = cur.Slot, cur.TotalReward
			loaded = true
		}
		if !loaded && len(entries) > 0 {
			return nil, fmt.Errorf("ctjam: no usable checkpoint in %s: %w", opts.Checkpoint, lastErr)
		}
	case opts.Resume && opts.Checkpoint != "":
		f, err := os.Open(opts.Checkpoint)
		switch {
		case err == nil:
			cur, lerr := agent.LoadTraining(f, e)
			f.Close()
			if lerr != nil {
				return nil, lerr
			}
			start, base = cur.Slot, cur.TotalReward
		case !os.IsNotExist(err):
			return nil, err
		}
	}
	end := trainSlots
	if opts.StopAfter > 0 && opts.StopAfter < end {
		end = opts.StopAfter
	}
	if end < start {
		// The checkpoint is already past the requested stop slot; nothing
		// to train this invocation.
		end = start
	}
	var hook func(done int, total float64) error
	if opts.Checkpoint != "" {
		every := opts.CheckpointEvery
		if every <= 0 {
			every = 1000
		}
		save := func(path string, done int, total float64) error {
			return atomicfile.WriteFile(path, 0o644, func(w io.Writer) error {
				return agent.SaveTraining(w, e, core.TrainingCursor{Slot: done, TotalReward: base + total})
			})
		}
		if rotating {
			if err := os.MkdirAll(opts.Checkpoint, 0o755); err != nil {
				return nil, err
			}
			hook = func(done int, total float64) error {
				if done%every != 0 && done != end {
					return nil
				}
				if err := save(ckpt.Path(opts.Checkpoint, done), done, total); err != nil {
					return err
				}
				_, err := ckpt.GC(opts.Checkpoint, opts.Keep)
				return err
			}
		} else {
			hook = func(done int, total float64) error {
				if done%every != 0 && done != end {
					return nil
				}
				return save(opts.Checkpoint, done, total)
			}
		}
	}
	if _, err := agent.TrainRange(e, start, end, hook); err != nil {
		return nil, err
	}
	return &Policy{agent: agent, dqn: agent}, nil
}

// TrainQLearning trains the tabular Q-learning baseline over the MDP's
// belief-state space for trainSlots online slots.
func TrainQLearning(cfg Config, trainSlots int) (*Policy, error) {
	ecfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	model, err := core.NewModel(core.ParamsFromEnv(ecfg))
	if err != nil {
		return nil, err
	}
	agent, err := core.NewQAgent(model, ecfg.Channels, ecfg.SweepWidth, cfg.Seed)
	if err != nil {
		return nil, err
	}
	e, err := env.New(ecfg)
	if err != nil {
		return nil, err
	}
	if _, err := agent.Train(e, trainSlots); err != nil {
		return nil, err
	}
	return &Policy{agent: agent}, nil
}

// SolveMDP computes the exact optimal policy by value iteration on the
// paper's MDP (Eq. 3-14).
func SolveMDP(cfg Config) (*Policy, error) {
	ecfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	model, err := core.NewModel(core.ParamsFromEnv(ecfg))
	if err != nil {
		return nil, err
	}
	agent, err := core.NewMDPAgent(model, nil, ecfg.Channels, ecfg.SweepWidth)
	if err != nil {
		return nil, err
	}
	return &Policy{agent: agent}, nil
}

// Save writes a trained DQN policy's network to w. Only DQN policies are
// persistable.
func (p *Policy) Save(w io.Writer) error {
	if p.dqn == nil {
		return fmt.Errorf("ctjam: only DQN policies can be saved")
	}
	return p.dqn.SaveModel(w)
}

// Load replaces a DQN policy's network with one previously saved.
func (p *Policy) Load(r io.Reader) error {
	if p.dqn == nil {
		return fmt.Errorf("ctjam: only DQN policies can be loaded")
	}
	return p.dqn.LoadModel(r)
}

// ParamCount returns the number of network parameters of a DQN policy
// (0 for exact policies).
func (p *Policy) ParamCount() int {
	if p.dqn == nil {
		return 0
	}
	return p.dqn.Network().ParamCount()
}

// agentFor builds the agent for a scheme.
func agentFor(scheme Scheme, policy *Policy, ecfg env.Config) (env.Agent, error) {
	switch scheme {
	case SchemeRL, SchemeMDP, SchemeQLearning:
		if policy == nil {
			return nil, fmt.Errorf("ctjam: scheme %q needs a policy (TrainDQN, SolveMDP or TrainQLearning)", scheme)
		}
		return policy.agent, nil
	case SchemePassive:
		return core.NewPassiveFH(ecfg.Channels, ecfg.SweepWidth)
	case SchemeRandom:
		return core.NewRandomFH(ecfg.Channels, ecfg.SweepWidth, len(ecfg.TxPowers))
	case SchemeStatic:
		return core.Static{}, nil
	default:
		return nil, fmt.Errorf("ctjam: unknown scheme %q", scheme)
	}
}

// Evaluate runs a scheme for the given number of slots and reports the
// Table I metrics. For SchemeRL / SchemeMDP pass the policy from TrainDQN /
// SolveMDP; for the baselines policy may be nil.
func Evaluate(cfg Config, scheme Scheme, policy *Policy, slots int) (Metrics, error) {
	ecfg, err := cfg.internal()
	if err != nil {
		return Metrics{}, err
	}
	agent, err := agentFor(scheme, policy, ecfg)
	if err != nil {
		return Metrics{}, err
	}
	e, err := env.New(ecfg)
	if err != nil {
		return Metrics{}, err
	}
	c, err := env.Run(e, agent, slots)
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{
		ST: c.ST(), AH: c.AH(), SH: c.SH(), AP: c.AP(), SP: c.SP(),
		JamRate: c.JamRate(), Slots: c.Slots,
	}, nil
}

// schemeFor builds the shared batched inference scheme for a Scheme name —
// the policy/encoder split behind EvaluateBatch and ctjam-serve. Trained
// schemes snapshot their current parameters: further training of the source
// policy does not affect the returned scheme.
func schemeFor(scheme Scheme, policy *Policy, ecfg env.Config) (*pol.Scheme, error) {
	switch scheme {
	case SchemeRL:
		if policy == nil || policy.dqn == nil {
			return nil, fmt.Errorf("ctjam: scheme %q needs a DQN policy (TrainDQN)", scheme)
		}
		return policy.dqn.Scheme()
	case SchemeMDP:
		if policy == nil {
			return nil, fmt.Errorf("ctjam: scheme %q needs a policy (SolveMDP)", scheme)
		}
		a, ok := policy.agent.(*core.MDPAgent)
		if !ok {
			return nil, fmt.Errorf("ctjam: scheme %q needs a policy from SolveMDP", scheme)
		}
		return a.Scheme(), nil
	case SchemeQLearning:
		if policy == nil {
			return nil, fmt.Errorf("ctjam: scheme %q needs a policy (TrainQLearning)", scheme)
		}
		a, ok := policy.agent.(*core.QAgent)
		if !ok {
			return nil, fmt.Errorf("ctjam: scheme %q needs a policy from TrainQLearning", scheme)
		}
		return a.Scheme()
	case SchemePassive:
		return pol.PassiveFHScheme(ecfg.Channels, ecfg.SweepWidth, core.DefaultJamThreshold)
	case SchemeRandom:
		return pol.RandomFHScheme(ecfg.Channels, ecfg.SweepWidth, len(ecfg.TxPowers))
	case SchemeStatic:
		return pol.StaticScheme(), nil
	default:
		return nil, fmt.Errorf("ctjam: unknown scheme %q", scheme)
	}
}

// EvaluateBatch evaluates one scheme across k independent environments in
// lockstep: environment i runs the configuration with Seed = cfg.Seed + i,
// and each slot gathers all k encoded states into a single batched policy
// inference. The results are bit-identical to k serial Evaluate calls with
// those seeds, at any k — only the wall-clock cost changes.
func EvaluateBatch(cfg Config, scheme Scheme, policy *Policy, k, slots int) ([]Metrics, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ctjam: batch size %d must be positive", k)
	}
	ecfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	s, err := schemeFor(scheme, policy, ecfg)
	if err != nil {
		return nil, err
	}
	envs := make([]*env.Environment, k)
	for i := range envs {
		ci := cfg
		ci.Seed = cfg.Seed + int64(i)
		ecfgI, err := ci.internal()
		if err != nil {
			return nil, err
		}
		if envs[i], err = env.New(ecfgI); err != nil {
			return nil, err
		}
	}
	b, err := s.NewBatch(k)
	if err != nil {
		return nil, err
	}
	counters, err := env.BatchRun(envs, b, slots)
	if err != nil {
		return nil, err
	}
	out := make([]Metrics, k)
	for i, c := range counters {
		out[i] = Metrics{
			ST: c.ST(), AH: c.AH(), SH: c.SH(), AP: c.AP(), SP: c.SP(),
			JamRate: c.JamRate(), Slots: c.Slots,
		}
	}
	return out, nil
}

// MDPAnalysis exposes the §III-B structural analysis of the solved
// anti-jamming MDP.
type MDPAnalysis struct {
	// Threshold is n*: stay for n < n*, hop for n >= n* (Theorem III.4).
	// A value of SweepCycle means "never hop".
	Threshold int
	// IsThreshold reports whether the optimal policy has the proven
	// single-crossing structure.
	IsThreshold bool
	// QStay and QHop are the per-n best action values (n = 1.. cycle-1):
	// QStay decreasing (Lemma III.2) and QHop increasing (Lemma III.3).
	QStay []float64
	QHop  []float64
}

// AnalyzeMDP solves the anti-jamming MDP for the configuration and returns
// its threshold-policy structure.
func AnalyzeMDP(cfg Config) (*MDPAnalysis, error) {
	ecfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	_, _, a, err := core.SolveAndAnalyze(core.ParamsFromEnv(ecfg), 0.9)
	if err != nil {
		return nil, err
	}
	return &MDPAnalysis{
		Threshold:   a.Threshold,
		IsThreshold: a.IsThreshold,
		QStay:       append([]float64(nil), a.QStay...),
		QHop:        append([]float64(nil), a.QHop...),
	}, nil
}

// FieldResult reports one scheme's outcome in the testbed simulator.
type FieldResult struct {
	Scheme Scheme
	// GoodputPktsPerSlot is delivered payload packets per Tx slot.
	GoodputPktsPerSlot float64
	// Utilization is the mean fraction of the slot spent on data.
	Utilization float64
	// ST is the slot-level success rate.
	ST float64
}

// FieldOptions tune the field simulator.
type FieldOptions struct {
	// Nodes is the number of peripheral nodes (default 3).
	Nodes int
	// SlotDuration is the Tx slot length (default 3 s).
	SlotDuration time.Duration
	// JammerSlot is the jammer's slot length (default = SlotDuration).
	JammerSlot time.Duration
	// Slots is the number of Tx slots to simulate (default 400).
	Slots int
	// UseCSMA enables the full CSMA/CA contention model instead of the
	// calibrated fixed LBT cost.
	UseCSMA bool
}

// FieldCompare runs the named schemes (plus a no-jammer reference when
// includeNoJammer is set) through the discrete-event field simulator,
// reproducing the Fig. 11(a) comparison.
func FieldCompare(cfg Config, schemes []Scheme, policy *Policy, opts FieldOptions, includeNoJammer bool) ([]FieldResult, error) {
	ecfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	icfg := iot.DefaultConfig()
	icfg.Channels = ecfg.Channels
	icfg.SweepWidth = ecfg.SweepWidth
	icfg.TxPowers = ecfg.TxPowers
	icfg.JamPowers = ecfg.JamPowers
	icfg.JammerMode = ecfg.JammerMode
	icfg.Jammer = ecfg.Jammer
	icfg.Seed = cfg.Seed
	icfg.Faults = ecfg.Faults
	if opts.Nodes > 0 {
		icfg.Nodes = opts.Nodes
	}
	if opts.SlotDuration > 0 {
		icfg.SlotDuration = opts.SlotDuration
		icfg.JammerSlot = opts.SlotDuration
	}
	if opts.JammerSlot > 0 {
		icfg.JammerSlot = opts.JammerSlot
	}
	icfg.UseCSMA = opts.UseCSMA
	slots := opts.Slots
	if slots <= 0 {
		slots = 400
	}

	var out []FieldResult
	for _, scheme := range schemes {
		agent, err := agentFor(scheme, policy, ecfg)
		if err != nil {
			return nil, err
		}
		sim, err := iot.New(icfg)
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(agent, slots)
		if err != nil {
			return nil, fmt.Errorf("ctjam: field run %q: %w", scheme, err)
		}
		out = append(out, FieldResult{
			Scheme:             scheme,
			GoodputPktsPerSlot: run.GoodputPktsPerSlot,
			Utilization:        run.MeanUtilization,
			ST:                 run.Counters.ST(),
		})
	}
	if includeNoJammer {
		clean := icfg
		clean.JammerEnabled = false
		sim, err := iot.New(clean)
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(core.Static{}, slots)
		if err != nil {
			return nil, err
		}
		out = append(out, FieldResult{
			Scheme:             "no-jammer",
			GoodputPktsPerSlot: run.GoodputPktsPerSlot,
			Utilization:        run.MeanUtilization,
			ST:                 run.Counters.ST(),
		})
	}
	return out, nil
}

// FieldScaleOptions tune a sharded multi-cluster field run.
type FieldScaleOptions struct {
	// Clusters is the number of independent hopping clusters (default 1).
	// Each cluster is a full star network with its own channel, hopping
	// agent and decorrelated jammer stream.
	Clusters int
	// NodesPerCluster is each cluster's peripheral count (default 3).
	NodesPerCluster int
	// SlotDuration is the Tx slot length (default 3 s).
	SlotDuration time.Duration
	// JammerSlot is the jammer's slot length (default = SlotDuration).
	JammerSlot time.Duration
	// Slots is the number of Tx slots to simulate (default 400).
	Slots int
	// Workers bounds the goroutines sharding the clusters (0 means
	// GOMAXPROCS). Results are bit-identical at any worker count.
	Workers int
	// UseCSMA enables the full CSMA/CA contention model instead of the
	// calibrated fixed LBT cost.
	UseCSMA bool
}

// FieldScaleResult reports one sharded-engine field run.
type FieldScaleResult struct {
	Scheme Scheme
	// Clusters and Nodes describe the simulated field (Nodes is the total
	// peripheral count across all clusters).
	Clusters int
	Nodes    int
	// Slots is the Tx slot count each cluster executed.
	Slots int
	// GoodputPktsPerSlot is the field-wide goodput: packets delivered per
	// Tx slot, summed over clusters.
	GoodputPktsPerSlot float64
	// PerClusterGoodput is GoodputPktsPerSlot / Clusters.
	PerClusterGoodput float64
	// Utilization is the cluster-averaged mean slot utilization.
	Utilization float64
	// ST is the field-wide slot-level success rate.
	ST float64
}

// fieldScaleAgents returns a factory yielding one fresh agent per cluster.
// The baselines construct from scratch; policy-backed schemes replicate the
// shared immutable policy through per-cluster encoders (policy.Scheme), so
// clusters never share mutable agent state.
func fieldScaleAgents(scheme Scheme, policy *Policy, ecfg env.Config) (func(int) (env.Agent, error), error) {
	switch scheme {
	case SchemePassive, SchemeRandom, SchemeStatic:
		return func(int) (env.Agent, error) { return agentFor(scheme, policy, ecfg) }, nil
	case SchemeRL, SchemeMDP, SchemeQLearning:
		if policy == nil {
			return nil, fmt.Errorf("ctjam: scheme %q needs a policy (TrainDQN, SolveMDP or TrainQLearning)", scheme)
		}
		var sch *pol.Scheme
		switch a := policy.agent.(type) {
		case interface{ Scheme() *pol.Scheme }:
			sch = a.Scheme()
		case interface{ Scheme() (*pol.Scheme, error) }:
			var err error
			if sch, err = a.Scheme(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("ctjam: scheme %q cannot be replicated across clusters", scheme)
		}
		return func(int) (env.Agent, error) { return sch.NewAgent(), nil }, nil
	default:
		return nil, fmt.Errorf("ctjam: unknown scheme %q", scheme)
	}
}

// FieldScale runs one scheme through the sharded field engine: Clusters
// independent hopping clusters, each a full star network with its own
// deterministic RNG and fault streams, executed across Workers goroutines.
// Results are a pure function of (cfg, scheme, opts) — bit-identical at any
// worker count — and a 1-cluster run matches FieldCompare's simulator
// exactly.
func FieldScale(cfg Config, scheme Scheme, policy *Policy, opts FieldScaleOptions) (*FieldScaleResult, error) {
	ecfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	icfg := iot.DefaultConfig()
	icfg.Channels = ecfg.Channels
	icfg.SweepWidth = ecfg.SweepWidth
	icfg.TxPowers = ecfg.TxPowers
	icfg.JamPowers = ecfg.JamPowers
	icfg.JammerMode = ecfg.JammerMode
	icfg.Jammer = ecfg.Jammer
	icfg.Seed = cfg.Seed
	icfg.Faults = ecfg.Faults
	if opts.NodesPerCluster > 0 {
		icfg.Nodes = opts.NodesPerCluster
	}
	if opts.SlotDuration > 0 {
		icfg.SlotDuration = opts.SlotDuration
		icfg.JammerSlot = opts.SlotDuration
	}
	if opts.JammerSlot > 0 {
		icfg.JammerSlot = opts.JammerSlot
	}
	icfg.UseCSMA = opts.UseCSMA
	clusters := opts.Clusters
	if clusters <= 0 {
		clusters = 1
	}
	slots := opts.Slots
	if slots <= 0 {
		slots = 400
	}
	newAgent, err := fieldScaleAgents(scheme, policy, ecfg)
	if err != nil {
		return nil, err
	}
	eng, err := iot.NewEngine(iot.EngineConfig{Clusters: clusters, Template: icfg, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	st, err := eng.Run(newAgent, slots)
	if err != nil {
		return nil, fmt.Errorf("ctjam: field scale run %q: %w", scheme, err)
	}
	return &FieldScaleResult{
		Scheme:             scheme,
		Clusters:           st.Clusters,
		Nodes:              st.Nodes,
		Slots:              st.Slots,
		GoodputPktsPerSlot: st.GoodputPktsPerSlot,
		PerClusterGoodput:  st.GoodputPktsPerSlot / float64(st.Clusters),
		Utilization:        st.MeanUtilization,
		ST:                 st.Counters.ST(),
	}, nil
}

// Emulation is the outcome of building an EmuBee waveform.
type Emulation struct {
	// Alpha is the optimized 64-QAM scale of Eq. (2).
	Alpha float64
	// QuantError is E(alpha) of Eq. (1).
	QuantError float64
	// EVM measures waveform fidelity against the designed signal.
	EVM float64
	// Wave is the emulated complex-baseband waveform (20 MHz sampling).
	Wave []complex128
	// WiFiPayloadBits is the bit sequence a stock Wi-Fi transmitter
	// sends to emit Wave.
	WiFiPayloadBits []uint8
	// SymbolErrors counts ZigBee demodulation errors of Wave against the
	// designed symbols, and Symbols the total.
	SymbolErrors int
	Symbols      int
}

// EmulateZigBee builds the cross-technology jamming waveform: a Wi-Fi
// 64-QAM OFDM transmission that a ZigBee receiver demodulates as the given
// symbols (values 0..15). optimizeAlpha selects the paper's quantization
// optimization; disabling it reproduces the prior designs' naive emulation.
func EmulateZigBee(symbols []uint8, optimizeAlpha bool) (*Emulation, error) {
	if len(symbols) == 0 {
		return nil, fmt.Errorf("ctjam: no symbols to emulate")
	}
	mod, err := zigbee.NewModulator(zigbee.DefaultSamplesPerChip)
	if err != nil {
		return nil, err
	}
	designed, err := mod.ModulateSymbols(symbols)
	if err != nil {
		return nil, err
	}
	em, err := emulate.New(emulate.WithAlphaOptimization(optimizeAlpha))
	if err != nil {
		return nil, err
	}
	res, err := em.Emulate(designed)
	if err != nil {
		return nil, err
	}
	got, err := mod.DemodulateSymbols(res.Wave, len(symbols))
	if err != nil {
		return nil, err
	}
	errs := 0
	for i := range symbols {
		if got[i] != symbols[i] {
			errs++
		}
	}
	return &Emulation{
		Alpha:           res.Alpha,
		QuantError:      res.QuantError,
		EVM:             res.EVM,
		Wave:            res.Wave,
		WiFiPayloadBits: res.Bits,
		SymbolErrors:    errs,
		Symbols:         len(symbols),
	}, nil
}

// ExperimentIDs lists the reproducible paper figures/tables.
func ExperimentIDs() []string { return experiments.IDs() }

// DescribeExperiment returns an experiment's one-line description.
func DescribeExperiment(id string) (string, error) { return experiments.Describe(id) }

// ExperimentScale selects the budget for RunExperiment.
type ExperimentScale int

// Experiment scales.
const (
	// ScalePaper uses the paper's evaluation budgets (20000 slots etc.).
	ScalePaper ExperimentScale = iota + 1
	// ScaleQuick uses reduced budgets for smoke runs.
	ScaleQuick
)

// RunExperiment regenerates one paper figure/table and writes the
// paper-vs-measured comparison to w.
func RunExperiment(w io.Writer, id string, scale ExperimentScale) error {
	return RunExperiments(w, []string{id}, scale)
}

// RunExperiments regenerates several paper figures/tables in order, writing
// each paper-vs-measured comparison to w separated by blank lines. The runs
// share one sweep-point cache, so panels that revisit the same sweep points
// (the 20 metric panels of Figs. 6-8, plus Table I) train and evaluate each
// unique point exactly once; results are bit-identical to separate
// RunExperiment calls.
func RunExperiments(w io.Writer, ids []string, scale ExperimentScale) error {
	return runExperiments(w, ids, experimentOptions(scale))
}

// RunExperimentsDistributed is RunExperiments with the cache-backed sweep
// points computed by external worker processes: it serves the work units on
// addr (host:port; ":0" picks a free port, reported through logf) until
// workers started with `ctjam-experiments -worker URL` have returned every
// result, then runs the experiments from the merged cache. Output is
// bit-identical to RunExperiments with the same ids and scale. logf, when
// non-nil, receives progress lines (pass log.Printf).
func RunExperimentsDistributed(ctx context.Context, w io.Writer, ids []string, scale ExperimentScale, addr string, logf func(format string, args ...any)) error {
	opts := experimentOptions(scale)
	coord, err := dist.NewCoordinator(opts, ids, dist.CoordinatorOptions{})
	if err != nil {
		return err
	}
	if err := coord.ListenAndWait(ctx, addr, logf); err != nil {
		return err
	}
	coord.ImportInto(opts.Cache)
	return runExperiments(w, ids, opts)
}

func experimentOptions(scale ExperimentScale) experiments.Options {
	opts := experiments.DefaultOptions()
	if scale == ScaleQuick {
		opts = experiments.QuickOptions()
	}
	opts.Cache = experiments.NewCache()
	return opts
}

func runExperiments(w io.Writer, ids []string, opts experiments.Options) error {
	for i, id := range ids {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		res, err := experiments.Run(id, opts)
		if err != nil {
			return err
		}
		if err := experiments.Format(w, res); err != nil {
			return err
		}
	}
	return nil
}
