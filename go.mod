module ctjam

go 1.22
