// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design choices called out in DESIGN.md. Each
// Benchmark runs the corresponding experiment at a reduced (quick) budget;
// run `go run ./cmd/ctjam-experiments` for the full paper-scale sweeps.
package ctjam_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"ctjam"
	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/experiments"
	"ctjam/internal/jammer"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := experiments.QuickOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 2(b): jamming effect of EmuBee / ZigBee / Wi-Fi signals vs distance.
func BenchmarkFig2b(b *testing.B)     { benchExperiment(b, "fig2b") }
func BenchmarkFig2bWave(b *testing.B) { benchExperiment(b, "fig2b-wave") }

// Fig. 6: success rate of transmission sweeps.
func BenchmarkFig6a(b *testing.B) { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B) { benchExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B) { benchExperiment(b, "fig6c") }
func BenchmarkFig6d(b *testing.B) { benchExperiment(b, "fig6d") }

// Fig. 7: adoption rates of FH and PC.
func BenchmarkFig7a(b *testing.B) { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B) { benchExperiment(b, "fig7b") }
func BenchmarkFig7c(b *testing.B) { benchExperiment(b, "fig7c") }
func BenchmarkFig7d(b *testing.B) { benchExperiment(b, "fig7d") }
func BenchmarkFig7e(b *testing.B) { benchExperiment(b, "fig7e") }
func BenchmarkFig7f(b *testing.B) { benchExperiment(b, "fig7f") }
func BenchmarkFig7g(b *testing.B) { benchExperiment(b, "fig7g") }
func BenchmarkFig7h(b *testing.B) { benchExperiment(b, "fig7h") }

// Fig. 8: success rates of FH and PC.
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B) { benchExperiment(b, "fig8c") }
func BenchmarkFig8d(b *testing.B) { benchExperiment(b, "fig8d") }
func BenchmarkFig8e(b *testing.B) { benchExperiment(b, "fig8e") }
func BenchmarkFig8f(b *testing.B) { benchExperiment(b, "fig8f") }
func BenchmarkFig8g(b *testing.B) { benchExperiment(b, "fig8g") }
func BenchmarkFig8h(b *testing.B) { benchExperiment(b, "fig8h") }

// Fig. 9: testbed timing.
func BenchmarkFig9a(b *testing.B) { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B) { benchExperiment(b, "fig9b") }

// Fig. 10: goodput and utilization vs slot duration.
func BenchmarkFig10a(b *testing.B) { benchExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B) { benchExperiment(b, "fig10b") }

// Fig. 11: scheme comparison and jammer-slot sensitivity.
func BenchmarkFig11a(b *testing.B) { benchExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B) { benchExperiment(b, "fig11b") }

// Table I metrics at the default parameters.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// sweepPanelIDs are the 20 metric panels of Figs. 6-8 plus Table I — every
// experiment whose points flow through the sweep-point cache.
var sweepPanelIDs = []string{
	"fig6a", "fig6b", "fig6c", "fig6d",
	"fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f", "fig7g", "fig7h",
	"fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f", "fig8g", "fig8h",
	"table1",
}

// BenchmarkAllSweeps is the headline benchmark of the sweep-point cache: one
// iteration regenerates all 20 metric panels of Figs. 6-8 plus Table I, the
// workload of `ctjam-experiments -id all`. The uncached variant gives every
// panel a private cache (no cross-panel reuse, the pre-cache behavior); the
// cached variant shares one cache across the panels, so each unique (config,
// engine, budget, seed) point is trained and evaluated exactly once and the
// other panels read memoized counters. Workers is pinned to 1 so the ratio
// measures compute reuse, not parallelism.
func BenchmarkAllSweeps(b *testing.B) {
	run := func(b *testing.B, shared bool) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opts := experiments.QuickOptions()
			opts.Workers = 1
			if shared {
				opts.Cache = experiments.NewCache()
			}
			for _, id := range sweepPanelIDs {
				if _, err := experiments.Run(id, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, false) })
	b.Run("cached", func(b *testing.B) { run(b, true) })
}

// BenchmarkParallelSweep measures the parallel execution engine: one
// representative experiment per family at worker counts 1 (serial path), 4,
// and all cores. On a multi-core runner the wall-clock time should shrink
// roughly linearly until the worker count reaches the (mode, x) point count;
// results are bit-identical across the variants (see
// experiments.TestSerialParallelEquivalence).
func BenchmarkParallelSweep(b *testing.B) {
	for _, id := range []string{"fig6a", "fig11b", "table1"} {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("%s/workers=%d", id, workers), func(b *testing.B) {
				opts := experiments.QuickOptions()
				opts.Workers = workers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := experiments.Run(id, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// §IV-B training statistics (trains a DQN per iteration).
func BenchmarkTraining(b *testing.B) { benchExperiment(b, "train") }

// --- Ablations -----------------------------------------------------------

// stayMaxPower is the PC-only ablation agent: it never hops and always
// transmits at the highest power level.
type stayMaxPower struct{ powers int }

func (a stayMaxPower) Name() string         { return "PC-only" }
func (a stayMaxPower) Reset(rng *rand.Rand) {}
func (a stayMaxPower) Decide(prev env.SlotInfo) env.Decision {
	return env.Decision{Channel: prev.Channel, Power: a.powers - 1}
}

func evalScheme(b *testing.B, cfg env.Config, agent env.Agent, slots int) float64 {
	b.Helper()
	e, err := env.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c, err := env.Run(e, agent, slots)
	if err != nil {
		b.Fatal(err)
	}
	return c.ST()
}

// BenchmarkAblationHybridVsSingle compares the hybrid FH+PC policy against
// FH-only (a single power level) and PC-only (never hop), reporting their
// success rates as custom metrics. The hybrid design is the paper's core
// claim.
func BenchmarkAblationHybridVsSingle(b *testing.B) {
	cfg := env.DefaultConfig()
	cfg.JammerMode = jammer.ModeRandom // duels are winnable
	var hybrid, fhOnly, pcOnly float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Hybrid.
		model, err := core.NewModel(core.ParamsFromEnv(cfg))
		if err != nil {
			b.Fatal(err)
		}
		agent, err := core.NewMDPAgent(model, nil, cfg.Channels, cfg.SweepWidth)
		if err != nil {
			b.Fatal(err)
		}
		hybrid = evalScheme(b, cfg, agent, 4000)

		// FH-only: a single (minimum) power level.
		fhCfg := cfg
		fhCfg.TxPowers = cfg.TxPowers[:1]
		fhModel, err := core.NewModel(core.ParamsFromEnv(fhCfg))
		if err != nil {
			b.Fatal(err)
		}
		fhAgent, err := core.NewMDPAgent(fhModel, nil, fhCfg.Channels, fhCfg.SweepWidth)
		if err != nil {
			b.Fatal(err)
		}
		fhOnly = evalScheme(b, fhCfg, fhAgent, 4000)

		// PC-only: stay put at maximum power.
		pcOnly = evalScheme(b, cfg, stayMaxPower{powers: len(cfg.TxPowers)}, 4000)
	}
	b.ReportMetric(100*hybrid, "hybrid-ST%")
	b.ReportMetric(100*fhOnly, "fhonly-ST%")
	b.ReportMetric(100*pcOnly, "pconly-ST%")
}

// BenchmarkAblationAlphaOptimization measures the emulation quantization
// error with and without the Eq. (2) scale optimization.
func BenchmarkAblationAlphaOptimization(b *testing.B) {
	symbols := []uint8{3, 9, 14, 0, 5, 11, 7, 2}
	var optErr, naiveErr float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := ctjam.EmulateZigBee(symbols, true)
		if err != nil {
			b.Fatal(err)
		}
		naive, err := ctjam.EmulateZigBee(symbols, false)
		if err != nil {
			b.Fatal(err)
		}
		optErr = opt.QuantError
		naiveErr = naive.QuantError
	}
	b.ReportMetric(optErr, "optimized-E")
	b.ReportMetric(naiveErr, "naive-E")
}

// BenchmarkAblationEngines compares the exact-MDP engine with the trained
// DQN on the default scenario (the DQN should approximate the exact
// policy's ST).
func BenchmarkAblationEngines(b *testing.B) {
	var mdpST, dqnST float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := ctjam.DefaultConfig()
		exact, err := ctjam.SolveMDP(cfg)
		if err != nil {
			b.Fatal(err)
		}
		m, err := ctjam.Evaluate(cfg, ctjam.SchemeMDP, exact, 4000)
		if err != nil {
			b.Fatal(err)
		}
		mdpST = m.ST

		trained, err := ctjam.TrainDQN(cfg, 10000)
		if err != nil {
			b.Fatal(err)
		}
		m, err = ctjam.Evaluate(cfg, ctjam.SchemeRL, trained, 4000)
		if err != nil {
			b.Fatal(err)
		}
		dqnST = m.ST
	}
	b.ReportMetric(100*mdpST, "mdp-ST%")
	b.ReportMetric(100*dqnST, "dqn-ST%")
}

// BenchmarkAblationTabularQ compares tabular Q-learning (over the compact
// belief-state space) with the exact policy, the comparison the paper's
// §III-C makes when motivating the DQN.
func BenchmarkAblationTabularQ(b *testing.B) {
	var qST, mdpST float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := ctjam.DefaultConfig()
		qPolicy, err := ctjam.TrainQLearning(cfg, 12000)
		if err != nil {
			b.Fatal(err)
		}
		m, err := ctjam.Evaluate(cfg, ctjam.SchemeQLearning, qPolicy, 4000)
		if err != nil {
			b.Fatal(err)
		}
		qST = m.ST

		exact, err := ctjam.SolveMDP(cfg)
		if err != nil {
			b.Fatal(err)
		}
		m, err = ctjam.Evaluate(cfg, ctjam.SchemeMDP, exact, 4000)
		if err != nil {
			b.Fatal(err)
		}
		mdpST = m.ST
	}
	b.ReportMetric(100*qST, "qtable-ST%")
	b.ReportMetric(100*mdpST, "mdp-ST%")
}

// BenchmarkAblationCSMA measures the goodput cost of modelling the full
// CSMA/CA contention instead of the calibrated fixed LBT constant.
func BenchmarkAblationCSMA(b *testing.B) {
	var fixed, csma float64
	policyCfg := ctjam.DefaultConfig()
	policy, err := ctjam.SolveMDP(policyCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ctjam.FieldCompare(policyCfg, []ctjam.Scheme{ctjam.SchemeMDP}, policy,
			ctjam.FieldOptions{Slots: 120}, false)
		if err != nil {
			b.Fatal(err)
		}
		fixed = res[0].GoodputPktsPerSlot
		res, err = ctjam.FieldCompare(policyCfg, []ctjam.Scheme{ctjam.SchemeMDP}, policy,
			ctjam.FieldOptions{Slots: 120, UseCSMA: true}, false)
		if err != nil {
			b.Fatal(err)
		}
		csma = res[0].GoodputPktsPerSlot
	}
	b.ReportMetric(fixed, "fixed-lbt-pkts/slot")
	b.ReportMetric(csma, "csma-pkts/slot")
}

// BenchmarkStealth runs the §II-B stealthiness experiment.
func BenchmarkStealth(b *testing.B) { benchExperiment(b, "stealth") }

// BenchmarkDetect runs the defender-side IDS experiment.
func BenchmarkDetect(b *testing.B) { benchExperiment(b, "detect") }
