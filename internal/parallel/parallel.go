// Package parallel provides a small, deterministic bounded worker pool for
// fanning independent index-addressed tasks out over the available cores.
//
// The determinism contract: callers hand ForEach/Map a pure function of the
// task index, results are written into pre-sized slices indexed by task (never
// appended from goroutines), and every task derives its randomness from an
// explicit per-task seed. Under that contract the output is bit-for-bit
// identical for any worker count, including the serial workers=1 fallback,
// which runs everything on the caller's goroutine.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers clamps a requested worker count for n independent tasks: a request
// of 0 or less means "use all cores" (runtime.GOMAXPROCS(0)); the result
// never exceeds n and is at least 1.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// panicError carries a worker panic to the caller's goroutine.
type panicError struct {
	index int
	value any
}

// ForEach runs fn(i) for every i in [0, n) on a pool of at most `workers`
// goroutines (see Workers for the clamping rules). With one worker it runs
// serially on the calling goroutine and stops at the first error.
//
// In parallel mode every task runs to completion even after a failure, so
// which tasks executed does not depend on scheduling; the error of the
// lowest-index failed task is returned either way. A panicking task is
// re-panicked on the caller's goroutine with the task index attached.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked *panicError
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil || i < panicked.index {
								panicked = &panicError{index: i, value: r}
							}
							panicMu.Unlock()
						}
					}()
					errs[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("parallel: task %d panicked: %v", panicked.index, panicked.value))
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) with at most `workers` goroutines and collects the
// results into a slice indexed by task, preserving order regardless of the
// worker count. Error and panic semantics follow ForEach.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
