package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersClamp(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, n, want int
	}{
		{0, 100, min(cores, 100)},  // 0 -> all cores
		{-5, 100, min(cores, 100)}, // negative -> all cores
		{8, 3, 3},                  // more workers than tasks
		{1, 10, 1},                 // explicit serial
		{4, 0, 1},                  // no tasks still yields a valid count
		{3, 10, 3},                 // plain request
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		var hits [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(4, -3, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		out, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 20, func(i int) error {
			if i == 3 || i == 17 {
				return fmt.Errorf("task %d: %w", i, sentinel)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
		if !strings.Contains(err.Error(), "task 3") {
			t.Fatalf("workers=%d: err = %v, want the lowest-index failure", workers, err)
		}
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("bad point")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("Map = (%v, %v), want (nil, error)", out, err)
	}
}

func TestPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if workers > 1 && !strings.Contains(fmt.Sprint(r), "kaboom") {
					t.Fatalf("workers=%d: panic value %v lost the original message", workers, r)
				}
			}()
			_ = ForEach(workers, 10, func(i int) error {
				if i == 7 {
					panic("kaboom")
				}
				return nil
			})
		}()
	}
}

// TestRaceStress hammers the pool with many more tasks than workers writing
// to adjacent slice slots; run under -race (scripts/check.sh) it proves the
// indexed-collection pattern is data-race free.
func TestRaceStress(t *testing.T) {
	const n = 4096
	for round := 0; round < 8; round++ {
		out, err := Map(32, n, func(i int) (int, error) { return i + round, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i+round {
				t.Fatalf("round %d: out[%d] = %d", round, i, v)
			}
		}
	}
}
