// Package mdp provides a generic finite Markov-decision-process solver:
// Bellman-optimality value iteration (the contraction-mapping construction
// used in the paper's Theorem III.1 proof), greedy policy extraction and
// policy evaluation.
package mdp

import (
	"errors"
	"fmt"
	"math"
)

// Transition is one outcome of taking an action: the next state and its
// probability.
type Transition struct {
	Next int
	Prob float64
}

// Model is a finite MDP. States and actions are dense integer indices.
// Implementations must return transition distributions that sum to 1 for
// every (state, action) pair.
type Model interface {
	// NumStates returns the number of states.
	NumStates() int
	// NumActions returns the number of actions (shared by all states).
	NumActions() int
	// Transitions returns the transition distribution of (state, action).
	Transitions(state, action int) []Transition
	// Reward returns the immediate reward U(x, a, x') of moving from
	// state to next under action.
	Reward(state, action, next int) float64
}

// Solution holds the result of value iteration.
type Solution struct {
	// V is the optimal state-value function.
	V []float64
	// Q is the optimal action-value function, Q[state][action].
	Q [][]float64
	// Policy is the greedy policy: Policy[state] is the argmax action.
	Policy []int
	// Iterations is the number of sweeps performed.
	Iterations int
	// Residual is the final max-norm Bellman residual.
	Residual float64
}

// Solver errors.
var (
	ErrBadDiscount   = errors.New("mdp: discount factor must be in [0, 1)")
	ErrEmptyModel    = errors.New("mdp: model has no states or actions")
	ErrNotConverged  = errors.New("mdp: value iteration did not converge")
	ErrBadTransition = errors.New("mdp: transition probabilities invalid")
)

// ValidateModel checks that every (state, action) transition distribution is
// a probability distribution over valid states.
func ValidateModel(m Model) error {
	nS, nA := m.NumStates(), m.NumActions()
	if nS == 0 || nA == 0 {
		return ErrEmptyModel
	}
	for s := 0; s < nS; s++ {
		for a := 0; a < nA; a++ {
			var sum float64
			for _, tr := range m.Transitions(s, a) {
				if tr.Next < 0 || tr.Next >= nS {
					return fmt.Errorf("%w: state %d action %d -> next %d out of range",
						ErrBadTransition, s, a, tr.Next)
				}
				if tr.Prob < -1e-12 {
					return fmt.Errorf("%w: state %d action %d has negative probability %v",
						ErrBadTransition, s, a, tr.Prob)
				}
				sum += tr.Prob
			}
			if math.Abs(sum-1) > 1e-9 {
				return fmt.Errorf("%w: state %d action %d probabilities sum to %v",
					ErrBadTransition, s, a, sum)
			}
		}
	}
	return nil
}

// BellmanBackup applies one Bellman-optimality backup to v, writing the
// result into out (which must have NumStates elements), and returns the
// max-norm change. This is the contraction mapping of Eq. (20).
func BellmanBackup(m Model, gamma float64, v, out []float64) float64 {
	nS, nA := m.NumStates(), m.NumActions()
	var delta float64
	for s := 0; s < nS; s++ {
		best := math.Inf(-1)
		for a := 0; a < nA; a++ {
			var q float64
			for _, tr := range m.Transitions(s, a) {
				q += tr.Prob * (m.Reward(s, a, tr.Next) + gamma*v[tr.Next])
			}
			if q > best {
				best = q
			}
		}
		if d := math.Abs(best - v[s]); d > delta {
			delta = d
		}
		out[s] = best
	}
	return delta
}

// Solve runs value iteration to the given max-norm tolerance (or maxIter
// sweeps) and extracts the optimal Q function and greedy policy.
func Solve(m Model, gamma, tol float64, maxIter int) (*Solution, error) {
	if gamma < 0 || gamma >= 1 {
		return nil, fmt.Errorf("%w: got %v", ErrBadDiscount, gamma)
	}
	if err := ValidateModel(m); err != nil {
		return nil, err
	}
	nS, nA := m.NumStates(), m.NumActions()
	v := make([]float64, nS)
	next := make([]float64, nS)
	var (
		iter  int
		delta float64
	)
	for iter = 1; iter <= maxIter; iter++ {
		delta = BellmanBackup(m, gamma, v, next)
		v, next = next, v
		if delta <= tol {
			break
		}
	}
	if delta > tol {
		return nil, fmt.Errorf("%w: residual %v after %d iterations", ErrNotConverged, delta, maxIter)
	}

	q := make([][]float64, nS)
	policy := make([]int, nS)
	for s := 0; s < nS; s++ {
		q[s] = make([]float64, nA)
		bestA, best := 0, math.Inf(-1)
		for a := 0; a < nA; a++ {
			var qa float64
			for _, tr := range m.Transitions(s, a) {
				qa += tr.Prob * (m.Reward(s, a, tr.Next) + gamma*v[tr.Next])
			}
			q[s][a] = qa
			if qa > best {
				best, bestA = qa, a
			}
		}
		policy[s] = bestA
		v[s] = best
	}
	return &Solution{V: v, Q: q, Policy: policy, Iterations: iter, Residual: delta}, nil
}

// EvaluatePolicy computes the value function of a fixed policy by iterative
// policy evaluation.
func EvaluatePolicy(m Model, policy []int, gamma, tol float64, maxIter int) ([]float64, error) {
	if gamma < 0 || gamma >= 1 {
		return nil, fmt.Errorf("%w: got %v", ErrBadDiscount, gamma)
	}
	nS := m.NumStates()
	if len(policy) != nS {
		return nil, fmt.Errorf("mdp: policy has %d entries, want %d", len(policy), nS)
	}
	for s, a := range policy {
		if a < 0 || a >= m.NumActions() {
			return nil, fmt.Errorf("mdp: policy action %d at state %d out of range", a, s)
		}
	}
	v := make([]float64, nS)
	next := make([]float64, nS)
	for iter := 0; iter < maxIter; iter++ {
		var delta float64
		for s := 0; s < nS; s++ {
			var val float64
			for _, tr := range m.Transitions(s, policy[s]) {
				val += tr.Prob * (m.Reward(s, policy[s], tr.Next) + gamma*v[tr.Next])
			}
			if d := math.Abs(val - v[s]); d > delta {
				delta = d
			}
			next[s] = val
		}
		v, next = next, v
		if delta <= tol {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: policy evaluation", ErrNotConverged)
}

// GreedyPolicy extracts the argmax policy from an action-value table.
func GreedyPolicy(q [][]float64) []int {
	policy := make([]int, len(q))
	for s, row := range q {
		bestA, best := 0, math.Inf(-1)
		for a, v := range row {
			if v > best {
				best, bestA = v, a
			}
		}
		policy[s] = bestA
	}
	return policy
}
