package mdp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// chainModel is a deterministic 2-state model: action 0 stays (reward 0),
// action 1 moves to the other state (reward 1 when moving 0->1, -1 when
// moving 1->0).
type chainModel struct{}

func (chainModel) NumStates() int  { return 2 }
func (chainModel) NumActions() int { return 2 }

func (chainModel) Transitions(s, a int) []Transition {
	if a == 0 {
		return []Transition{{Next: s, Prob: 1}}
	}
	return []Transition{{Next: 1 - s, Prob: 1}}
}

func (chainModel) Reward(s, a, next int) float64 {
	if a == 0 {
		return 0
	}
	if s == 0 {
		return 1
	}
	return -1
}

// randomModel is a randomly generated dense MDP used for property tests.
type randomModel struct {
	nS, nA  int
	trans   [][][]Transition
	rewards [][]float64 // reward depends on (s, a) only
}

func newRandomModel(r *rand.Rand, nS, nA int) *randomModel {
	m := &randomModel{nS: nS, nA: nA}
	m.trans = make([][][]Transition, nS)
	m.rewards = make([][]float64, nS)
	for s := 0; s < nS; s++ {
		m.trans[s] = make([][]Transition, nA)
		m.rewards[s] = make([]float64, nA)
		for a := 0; a < nA; a++ {
			weights := make([]float64, nS)
			var sum float64
			for i := range weights {
				weights[i] = r.Float64()
				sum += weights[i]
			}
			trs := make([]Transition, 0, nS)
			for i, w := range weights {
				trs = append(trs, Transition{Next: i, Prob: w / sum})
			}
			m.trans[s][a] = trs
			m.rewards[s][a] = r.NormFloat64() * 5
		}
	}
	return m
}

func (m *randomModel) NumStates() int                    { return m.nS }
func (m *randomModel) NumActions() int                   { return m.nA }
func (m *randomModel) Transitions(s, a int) []Transition { return m.trans[s][a] }
func (m *randomModel) Reward(s, a, next int) float64     { return m.rewards[s][a] }

// badModel returns probabilities that do not sum to one.
type badModel struct{ chainModel }

func (badModel) Transitions(s, a int) []Transition {
	return []Transition{{Next: 0, Prob: 0.5}}
}

func TestSolveChainModel(t *testing.T) {
	// Optimal: in state 0 take action 1 (+1), in state 1 take action 0
	// (stay, 0). V(0) = 1 + g*V(1); V(1) = g*V(0)... staying in 1 forever
	// yields 0, so V(1) = max(0, -1+g*V(0)).
	const gamma = 0.9
	sol, err := Solve(chainModel{}, gamma, 1e-10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Policy[0] != 1 {
		t.Fatalf("policy[0] = %d, want 1 (move)", sol.Policy[0])
	}
	if sol.Policy[1] != 0 {
		t.Fatalf("policy[1] = %d, want 0 (stay)", sol.Policy[1])
	}
	if math.Abs(sol.V[1]-0) > 1e-8 {
		t.Fatalf("V[1] = %v, want 0", sol.V[1])
	}
	if math.Abs(sol.V[0]-1) > 1e-8 {
		t.Fatalf("V[0] = %v, want 1", sol.V[0])
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(chainModel{}, 1.0, 1e-6, 100); !errors.Is(err, ErrBadDiscount) {
		t.Fatalf("gamma=1: err = %v", err)
	}
	if _, err := Solve(chainModel{}, -0.1, 1e-6, 100); !errors.Is(err, ErrBadDiscount) {
		t.Fatalf("gamma<0: err = %v", err)
	}
	if _, err := Solve(badModel{}, 0.9, 1e-6, 100); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("bad transitions: err = %v", err)
	}
}

func TestSolveNotConverged(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := newRandomModel(r, 10, 3)
	if _, err := Solve(m, 0.999, 1e-12, 2); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

func TestBellmanContractionProperty(t *testing.T) {
	// Banach fixed-point argument from the paper's appendix: one backup
	// contracts the max-norm distance between two value functions by at
	// least gamma.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := newRandomModel(r, 8, 3)
		const gamma = 0.9
		v1 := make([]float64, 8)
		v2 := make([]float64, 8)
		for i := range v1 {
			v1[i] = r.NormFloat64() * 10
			v2[i] = r.NormFloat64() * 10
		}
		o1 := make([]float64, 8)
		o2 := make([]float64, 8)
		BellmanBackup(m, gamma, v1, o1)
		BellmanBackup(m, gamma, v2, o2)
		var before, after float64
		for i := range v1 {
			before = math.Max(before, math.Abs(v1[i]-v2[i]))
			after = math.Max(after, math.Abs(o1[i]-o2[i]))
		}
		return after <= gamma*before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolutionIsBellmanFixedPointProperty(t *testing.T) {
	// The returned V must satisfy V = max_a Q(s,a) and be (nearly) a
	// fixed point of the backup.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := newRandomModel(r, 6, 4)
		sol, err := Solve(m, 0.85, 1e-10, 100000)
		if err != nil {
			return false
		}
		out := make([]float64, 6)
		delta := BellmanBackup(m, 0.85, sol.V, out)
		if delta > 1e-7 {
			return false
		}
		for s := 0; s < 6; s++ {
			best := math.Inf(-1)
			for _, qv := range sol.Q[s] {
				best = math.Max(best, qv)
			}
			if math.Abs(best-sol.V[s]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPolicyBeatsRandomPolicyProperty(t *testing.T) {
	// The value of the greedy policy must dominate any other policy's
	// value at every state (Theorem III.1: existence of an optimal
	// policy).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := newRandomModel(r, 6, 3)
		const gamma = 0.8
		sol, err := Solve(m, gamma, 1e-10, 100000)
		if err != nil {
			return false
		}
		vStar, err := EvaluatePolicy(m, sol.Policy, gamma, 1e-10, 100000)
		if err != nil {
			return false
		}
		other := make([]int, 6)
		for i := range other {
			other[i] = r.Intn(3)
		}
		vOther, err := EvaluatePolicy(m, other, gamma, 1e-10, 100000)
		if err != nil {
			return false
		}
		for s := 0; s < 6; s++ {
			if vOther[s] > vStar[s]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatePolicyMatchesSolveValue(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := newRandomModel(r, 12, 4)
	const gamma = 0.9
	sol, err := Solve(m, gamma, 1e-11, 200000)
	if err != nil {
		t.Fatal(err)
	}
	v, err := EvaluatePolicy(m, sol.Policy, gamma, 1e-11, 200000)
	if err != nil {
		t.Fatal(err)
	}
	for s := range v {
		if math.Abs(v[s]-sol.V[s]) > 1e-6 {
			t.Fatalf("state %d: policy value %v != optimal value %v", s, v[s], sol.V[s])
		}
	}
}

func TestEvaluatePolicyValidation(t *testing.T) {
	m := chainModel{}
	if _, err := EvaluatePolicy(m, []int{0}, 0.9, 1e-9, 100); err == nil {
		t.Fatal("short policy: expected error")
	}
	if _, err := EvaluatePolicy(m, []int{0, 5}, 0.9, 1e-9, 100); err == nil {
		t.Fatal("bad action: expected error")
	}
	if _, err := EvaluatePolicy(m, []int{0, 0}, 1.5, 1e-9, 100); !errors.Is(err, ErrBadDiscount) {
		t.Fatal("bad gamma: expected ErrBadDiscount")
	}
}

func TestGreedyPolicy(t *testing.T) {
	q := [][]float64{
		{1, 3, 2},
		{-5, -7, -6},
	}
	got := GreedyPolicy(q)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("GreedyPolicy = %v", got)
	}
}

func TestValidateModelEmpty(t *testing.T) {
	m := &randomModel{nS: 0, nA: 0}
	if err := ValidateModel(m); !errors.Is(err, ErrEmptyModel) {
		t.Fatalf("err = %v, want ErrEmptyModel", err)
	}
}

func TestDiscountShrinksHorizonProperty(t *testing.T) {
	// With gamma = 0 the optimal value equals the best expected
	// immediate reward.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := newRandomModel(r, 5, 3)
		sol, err := Solve(m, 0, 1e-12, 1000)
		if err != nil {
			return false
		}
		for s := 0; s < 5; s++ {
			best := math.Inf(-1)
			for a := 0; a < 3; a++ {
				best = math.Max(best, m.rewards[s][a])
			}
			if math.Abs(sol.V[s]-best) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolve50x10(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	m := newRandomModel(r, 50, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m, 0.9, 1e-8, 100000); err != nil {
			b.Fatal(err)
		}
	}
}
