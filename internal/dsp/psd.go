package dsp

import (
	"fmt"
	"math"
)

// HannWindow returns an n-point Hann window.
func HannWindow(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := range out {
		out[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return out
}

// PSD estimates the power spectral density of a waveform by Welch
// averaging: the signal is split into 50%-overlapping Hann-windowed
// segments of nfft samples, and the squared FFT magnitudes are averaged.
// The result has nfft bins in standard FFT order (bin 0 = DC, bin
// nfft/2.. = negative frequencies) and is normalized so its sum equals the
// mean sample power.
func PSD(wave []complex128, nfft int) ([]float64, error) {
	if !IsPowerOfTwo(nfft) {
		return nil, fmt.Errorf("dsp: psd nfft %d: %w", nfft, ErrNotPowerOfTwo)
	}
	if len(wave) < nfft {
		return nil, fmt.Errorf("dsp: psd needs at least %d samples, got %d", nfft, len(wave))
	}
	window := HannWindow(nfft)
	var windowPower float64
	for _, w := range window {
		windowPower += w * w
	}

	psd := make([]float64, nfft)
	segments := 0
	buf := make([]complex128, nfft)
	for start := 0; start+nfft <= len(wave); start += nfft / 2 {
		for i := 0; i < nfft; i++ {
			buf[i] = wave[start+i] * complex(window[i], 0)
		}
		spec, err := FFT(buf)
		if err != nil {
			return nil, err
		}
		for k, v := range spec {
			psd[k] += real(v)*real(v) + imag(v)*imag(v)
		}
		segments++
	}
	// Normalize: average over segments and compensate the window so the
	// PSD sums to the mean sample power.
	norm := 1.0 / (float64(segments) * windowPower * float64(nfft))
	var total float64
	for k := range psd {
		psd[k] *= norm * float64(nfft)
		total += psd[k]
	}
	_ = total
	return psd, nil
}

// BandFraction returns the fraction of total PSD power inside the band of
// logical bins [lo, hi] (negative indices wrap: bin -1 is psd[len-1]).
func BandFraction(psd []float64, lo, hi int) (float64, error) {
	if len(psd) == 0 {
		return 0, fmt.Errorf("dsp: empty psd")
	}
	if hi < lo {
		return 0, fmt.Errorf("dsp: band [%d,%d] inverted", lo, hi)
	}
	if hi-lo+1 > len(psd) {
		return 0, fmt.Errorf("dsp: band wider than spectrum")
	}
	var total, band float64
	for _, p := range psd {
		total += p
	}
	if total == 0 {
		return 0, nil
	}
	n := len(psd)
	for k := lo; k <= hi; k++ {
		band += psd[((k%n)+n)%n]
	}
	return band / total, nil
}
