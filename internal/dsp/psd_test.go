package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestHannWindow(t *testing.T) {
	w := HannWindow(64)
	if w[0] > 1e-12 || w[63] > 1e-12 {
		t.Fatalf("Hann endpoints %v, %v should be ~0", w[0], w[63])
	}
	// Peak near the middle.
	if w[31] < 0.99 && w[32] < 0.99 {
		t.Fatalf("Hann peak %v/%v too low", w[31], w[32])
	}
	if got := HannWindow(1); got[0] != 1 {
		t.Fatalf("HannWindow(1) = %v", got)
	}
}

func TestPSDValidation(t *testing.T) {
	if _, err := PSD(make([]complex128, 100), 60); err == nil {
		t.Fatal("non power-of-two nfft: expected error")
	}
	if _, err := PSD(make([]complex128, 10), 64); err == nil {
		t.Fatal("short wave: expected error")
	}
}

func TestPSDConcentratesTone(t *testing.T) {
	// A complex tone at bin 5 must put nearly all PSD power there.
	const nfft = 64
	wave := make([]complex128, 1024)
	for i := range wave {
		wave[i] = cmplx.Rect(1, 2*math.Pi*5*float64(i)/nfft)
	}
	psd, err := PSD(wave, nfft)
	if err != nil {
		t.Fatal(err)
	}
	frac, err := BandFraction(psd, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.95 {
		t.Fatalf("tone band fraction %.3f, want >0.95", frac)
	}
}

func TestPSDWhiteNoiseIsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	wave := make([]complex128, 1<<14)
	for i := range wave {
		wave[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	psd, err := PSD(wave, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Any half of the spectrum should hold roughly half the power.
	frac, err := BandFraction(psd, 0, 31)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("white-noise half-band fraction %.3f, want ~0.5", frac)
	}
}

func TestBandFractionValidation(t *testing.T) {
	if _, err := BandFraction(nil, 0, 1); err == nil {
		t.Fatal("empty psd: expected error")
	}
	psd := make([]float64, 8)
	if _, err := BandFraction(psd, 3, 1); err == nil {
		t.Fatal("inverted band: expected error")
	}
	if _, err := BandFraction(psd, 0, 9); err == nil {
		t.Fatal("band too wide: expected error")
	}
	if frac, err := BandFraction(psd, 0, 3); err != nil || frac != 0 {
		t.Fatalf("zero psd: frac=%v err=%v", frac, err)
	}
}

func TestBandFractionNegativeBinsWrap(t *testing.T) {
	psd := make([]float64, 8)
	psd[7] = 1 // logical bin -1
	psd[1] = 1
	frac, err := BandFraction(psd, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac-1) > 1e-12 {
		t.Fatalf("wrap fraction = %v, want 1", frac)
	}
}
