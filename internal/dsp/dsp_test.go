package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const floatTol = 1e-9

func approxEqualCx(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func randVector(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestIsPowerOfTwo(t *testing.T) {
	tests := []struct {
		give int
		want bool
	}{
		{0, false},
		{-4, false},
		{1, true},
		{2, true},
		{3, false},
		{64, true},
		{96, false},
		{1024, true},
	}
	for _, tt := range tests {
		if got := IsPowerOfTwo(tt.give); got != tt.want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := FFT(make([]complex128, 24)); err == nil {
		t.Fatal("FFT(24) expected error, got nil")
	}
	if _, err := IFFT(make([]complex128, 7)); err == nil {
		t.Fatal("IFFT(7) expected error, got nil")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	got, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if !approxEqualCx(v, 1, floatTol) {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin k concentrates all energy in bin k.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*float64(k)*float64(i)/float64(n))
	}
	got, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := complex(0, 0)
		if i == k {
			want = complex(n, 0)
		}
		if !approxEqualCx(v, want, 1e-8) {
			t.Fatalf("bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randVector(r, n)
		fast, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		slow := DFT(x)
		for i := range fast {
			if !approxEqualCx(fast[i], slow[i], 1e-7*float64(n)) {
				t.Fatalf("n=%d bin %d: fft=%v dft=%v", n, i, fast[i], slow[i])
			}
		}
	}
}

func TestTwiddleTable(t *testing.T) {
	for _, n := range []int{2, 8, 64, 1024} {
		tw := twiddles(n)
		if len(tw) != n/2 {
			t.Fatalf("n=%d: %d twiddles, want %d", n, len(tw), n/2)
		}
		for k, w := range tw {
			want := cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n))
			if !approxEqualCx(w, want, 1e-15) {
				t.Fatalf("n=%d twiddle %d = %v, want %v", n, k, w, want)
			}
		}
		// Cached: the same table must come back on the second lookup.
		if again := twiddles(n); &again[0] != &tw[0] {
			t.Fatalf("n=%d: twiddle table not cached", n)
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := randVector(r, 32)
	orig := make([]complex128, len(x))
	copy(orig, x)
	if _, err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("FFT mutated input at %d", i)
		}
	}
}

func TestIFFTRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64, sizeSel uint8) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 << (1 + sizeSel%9) // 2..512
		x := randVector(rr, n)
		fx, err := FFT(x)
		if err != nil {
			return false
		}
		back, err := IFFT(fx)
		if err != nil {
			return false
		}
		for i := range x {
			if !approxEqualCx(back[i], x[i], 1e-8) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Energy in time domain equals energy in frequency domain / N.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := randVector(rr, 128)
		fx, err := FFT(x)
		if err != nil {
			return false
		}
		return math.Abs(Energy(x)-Energy(fx)/128) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64, ar, ai float64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := complex(math.Mod(ar, 10), math.Mod(ai, 10))
		x := randVector(rr, 64)
		y := randVector(rr, 64)
		// FFT(a*x + y) == a*FFT(x) + FFT(y)
		sum := make([]complex128, 64)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		fs, err := FFT(sum)
		if err != nil {
			return false
		}
		fx, _ := FFT(x)
		fy, _ := FFT(y)
		for i := range fs {
			if !approxEqualCx(fs[i], a*fx[i]+fy[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyAndPower(t *testing.T) {
	x := []complex128{3, complex(0, 4)}
	if got := Energy(x); math.Abs(got-25) > floatTol {
		t.Errorf("Energy = %v, want 25", got)
	}
	if got := Power(x); math.Abs(got-12.5) > floatTol {
		t.Errorf("Power = %v, want 12.5", got)
	}
	if got := Power(nil); got != 0 {
		t.Errorf("Power(nil) = %v, want 0", got)
	}
}

func TestScale(t *testing.T) {
	x := []complex128{1, complex(0, 1)}
	got := Scale(x, complex(0, 2))
	want := []complex128{complex(0, 2), complex(-2, 0)}
	for i := range got {
		if !approxEqualCx(got[i], want[i], floatTol) {
			t.Fatalf("Scale[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Original untouched.
	if x[0] != 1 {
		t.Fatal("Scale mutated input")
	}
}

func TestAdd(t *testing.T) {
	a := []complex128{1, 2}
	b := []complex128{complex(0, 1), 3}
	got, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{complex(1, 1), 5}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Add[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Add(a, []complex128{1}); err == nil {
		t.Fatal("Add length mismatch: expected error")
	}
}

func TestAddInto(t *testing.T) {
	dst := make([]complex128, 4)
	src := []complex128{1, 1, 1}
	if n := AddInto(dst, src, 2); n != 2 {
		t.Fatalf("AddInto clipped count = %d, want 2", n)
	}
	if dst[2] != 1 || dst[3] != 1 || dst[0] != 0 {
		t.Fatalf("AddInto result %v", dst)
	}
	if n := AddInto(dst, src, -1); n != 2 {
		t.Fatalf("AddInto negative offset count = %d, want 2", n)
	}
}

func TestEVM(t *testing.T) {
	ref := []complex128{1, 1, 1, 1}
	if got, err := EVM(ref, ref); err != nil || got != 0 {
		t.Fatalf("EVM(self) = %v, %v", got, err)
	}
	meas := []complex128{1.1, 1, 1, 1}
	got, err := EVM(meas, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(0.01 / 4)
	if math.Abs(got-want) > floatTol {
		t.Fatalf("EVM = %v, want %v", got, want)
	}
	if _, err := EVM(meas[:2], ref); err == nil {
		t.Fatal("EVM length mismatch: expected error")
	}
	if _, err := EVM(ref, make([]complex128, 4)); err == nil {
		t.Fatal("EVM zero reference: expected error")
	}
}

func TestCorrelate(t *testing.T) {
	x := []complex128{1, complex(0, 1)}
	// Correlation with itself equals its energy.
	got := Correlate(x, x)
	if !approxEqualCx(got, complex(Energy(x), 0), floatTol) {
		t.Fatalf("Correlate self = %v, want %v", got, Energy(x))
	}
	// Orthogonal vectors correlate to zero.
	y := []complex128{1, complex(0, -1)}
	z := []complex128{1, complex(0, 1)}
	if got := Correlate(y, z); !approxEqualCx(got, 0, floatTol) {
		t.Fatalf("orthogonal correlation = %v, want 0", got)
	}
}

func TestUpsample(t *testing.T) {
	x := []complex128{1, 2}
	got, err := Upsample(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{1, 1, 1, 2, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Upsample[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Upsample(x, 0); err == nil {
		t.Fatal("Upsample(0): expected error")
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	tests := []struct{ give, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128}, {100, 128},
	}
	for _, tt := range tests {
		if got := NextPowerOfTwo(tt.give); got != tt.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestZeroPad(t *testing.T) {
	x := []complex128{1, 2, 3}
	got := ZeroPad(x, 5)
	if len(got) != 5 || got[2] != 3 || got[4] != 0 {
		t.Fatalf("ZeroPad = %v", got)
	}
	if got := ZeroPad(x, 2); len(got) != 2 || got[1] != 2 {
		t.Fatalf("ZeroPad truncate = %v", got)
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("MaxAbs(nil) = %v", got)
	}
	x := []complex128{complex(3, 4), 1}
	if got := MaxAbs(x); math.Abs(got-5) > floatTol {
		t.Fatalf("MaxAbs = %v, want 5", got)
	}
}

func BenchmarkFFT64(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	x := randVector(r, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	x := randVector(r, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}
