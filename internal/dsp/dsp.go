// Package dsp provides the digital-signal-processing primitives used by the
// physical-layer simulators: complex-vector arithmetic, radix-2 FFT/IFFT, a
// naive DFT used as a test oracle, and energy/error measures.
//
// All routines operate on []complex128 sample vectors at complex baseband.
package dsp

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// ErrNotPowerOfTwo is returned by FFT and IFFT when the input length is not a
// power of two.
var ErrNotPowerOfTwo = errors.New("dsp: length is not a power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the in-order radix-2 decimation-in-time fast Fourier transform
// of x. The input is not modified; a new slice is returned. The length of x
// must be a power of two.
func FFT(x []complex128) ([]complex128, error) {
	if !IsPowerOfTwo(len(x)) {
		return nil, fmt.Errorf("fft of %d samples: %w", len(x), ErrNotPowerOfTwo)
	}
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out, nil
}

// IFFT computes the inverse FFT of x, including the 1/N normalization. The
// input is not modified. The length of x must be a power of two.
func IFFT(x []complex128) ([]complex128, error) {
	if !IsPowerOfTwo(len(x)) {
		return nil, fmt.Errorf("ifft of %d samples: %w", len(x), ErrNotPowerOfTwo)
	}
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	n := complex(float64(len(x)), 0)
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

// twiddleCache memoizes the per-length twiddle-factor tables. The waveform
// simulators transform thousands of equal-length symbol blocks, so the same
// table would otherwise be recomputed (via one complex multiply per
// butterfly) on every call.
var twiddleCache sync.Map // int -> []complex128

// twiddles returns the n/2 forward twiddle factors exp(-2*pi*i*k/n) for a
// power-of-two n >= 2. Tables come from a process-wide cache; each entry is
// built at most a handful of times and never mutated after publication.
func twiddles(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		tw[k] = cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n))
	}
	v, _ := twiddleCache.LoadOrStore(n, tw)
	return v.([]complex128)
}

// fftInPlace runs an iterative radix-2 Cooley-Tukey transform. inverse
// selects the conjugate twiddle factors (without normalization). Twiddles
// are looked up in a cached table rather than accumulated by repeated
// multiplication, which is both faster and slightly more accurate (no error
// build-up across a stage).
func fftInPlace(a []complex128, inverse bool) {
	n := len(a)
	if n < 2 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	tw := twiddles(n)
	for length := 2; length <= n; length <<= 1 {
		half := length / 2
		stride := n / length
		for i := 0; i < n; i += length {
			for j := 0; j < half; j++ {
				w := tw[j*stride]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
			}
		}
	}
}

// DFT computes the discrete Fourier transform by direct evaluation in
// O(n^2). It accepts any length and is intended as a slow reference
// implementation for testing FFT.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Rect(1, angle)
		}
		out[k] = sum
	}
	return out
}

// Energy returns the total energy of x: sum of |x[i]|^2.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// Power returns the mean sample power of x, or 0 for an empty vector.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// Scale returns a copy of x with every sample multiplied by g.
func Scale(x []complex128, g complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v * g
	}
	return out
}

// Add returns the element-wise sum of a and b, which must have equal length.
func Add(a, b []complex128) ([]complex128, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("dsp: add length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}

// AddInto adds src into dst starting at offset, clipping to dst's bounds.
// Samples of src that fall outside dst are discarded. It returns the number
// of samples added.
func AddInto(dst, src []complex128, offset int) int {
	n := 0
	for i, v := range src {
		j := offset + i
		if j < 0 || j >= len(dst) {
			continue
		}
		dst[j] += v
		n++
	}
	return n
}

// EVM returns the root-mean-square error-vector magnitude between a measured
// vector and a reference vector, normalized by the reference RMS amplitude.
// It returns an error if lengths differ or the reference is all-zero.
func EVM(measured, reference []complex128) (float64, error) {
	if len(measured) != len(reference) {
		return 0, fmt.Errorf("dsp: evm length mismatch %d vs %d", len(measured), len(reference))
	}
	refE := Energy(reference)
	if refE == 0 {
		return 0, errors.New("dsp: evm reference has zero energy")
	}
	var errE float64
	for i := range measured {
		d := measured[i] - reference[i]
		errE += real(d)*real(d) + imag(d)*imag(d)
	}
	return math.Sqrt(errE / refE), nil
}

// MaxAbs returns the largest sample magnitude in x, or 0 for an empty vector.
func MaxAbs(x []complex128) float64 {
	var m float64
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Correlate computes the complex correlation between x and the reference ref
// at lag 0: sum(x[i] * conj(ref[i])) over the overlap of the two vectors.
func Correlate(x, ref []complex128) complex128 {
	n := min(len(x), len(ref))
	var sum complex128
	for i := 0; i < n; i++ {
		sum += x[i] * cmplx.Conj(ref[i])
	}
	return sum
}

// Upsample repeats each sample of x factor times. factor must be >= 1.
func Upsample(x []complex128, factor int) ([]complex128, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: upsample factor %d < 1", factor)
	}
	out := make([]complex128, 0, len(x)*factor)
	for _, v := range x {
		for k := 0; k < factor; k++ {
			out = append(out, v)
		}
	}
	return out, nil
}

// NextPowerOfTwo returns the smallest power of two >= n (and >= 1).
func NextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ZeroPad returns x extended with zeros to length n. If len(x) >= n the
// original slice content is copied and truncated to n.
func ZeroPad(x []complex128, n int) []complex128 {
	out := make([]complex128, n)
	copy(out, x)
	return out
}
