// Package policy is the batched inference engine: it decouples anti-jamming
// decision logic from the agents that train it.
//
// Historically each internal/core agent owned its decision rule — the DQN
// agent held the live learner, the MDP agent a policy table, the baselines
// their ad-hoc state machines — so every decision was a single-state call
// welded to one mutable struct. This package inverts that ownership. A
// decision rule is split into two halves:
//
//   - Policy: a pure, batched state→action function (DecideBatch). Policies
//     hold only immutable data (a weight snapshot, a solved table), so one
//     Policy instance can serve any number of links and goroutines at once.
//   - Encoder: the per-link mutable half — history window, belief tracker,
//     jam streak — plus the link's private RNG. Encoders fold the previous
//     slot into a feature vector (Encode) and turn the chosen action into a
//     concrete channel/power decision (Decode).
//
// A Scheme pairs one shared Policy with an Encoder factory. Scheme.NewAgent
// adapts it back to env.Agent for serial runs; Scheme.NewBatch steps K links
// in lockstep, gathering all K encoded states into one network forward per
// slot (see env.BatchRun / iot.BatchRun). Both adapters drive the same
// Policy and Encoder code with the same per-link RNG streams, so batched
// results are bit-identical to serial ones at any batch size.
package policy

import (
	"fmt"
	"math/rand"

	"ctjam/internal/env"
)

// Policy is a batched, stateless decision rule: given n encoded states it
// picks n actions. Implementations must be pure functions of the states and
// their immutable parameters, safe for concurrent DecideBatch calls.
type Policy interface {
	// Name identifies the scheme ("RL FH", "MDP*", ...).
	Name() string
	// StateDim is the encoded feature vector length (may be 0 for
	// policies that ignore state, e.g. random baselines).
	StateDim() int
	// NumActions is the size of the discrete action space.
	NumActions() int
	// DecideBatch fills actions[i] from states[i*StateDim:(i+1)*StateDim].
	// states must hold len(actions)*StateDim values.
	DecideBatch(states []float64, actions []int) error
}

// Encoder is the per-link mutable half of a scheme: it observes one link's
// slot outcomes, produces the policy's feature vector, and materializes
// chosen actions into decisions. Encoders are not safe for concurrent use;
// each link gets its own.
type Encoder interface {
	// Reset prepares the encoder for a fresh run with the link's RNG.
	Reset(rng *rand.Rand)
	// Encode folds the previous slot into the link state and writes the
	// policy's StateDim features into dst.
	Encode(prev env.SlotInfo, dst []float64)
	// Decode turns the policy's chosen action into a channel/power
	// decision, consuming link RNG where the scheme randomizes (e.g. hop
	// targets).
	Decode(prev env.SlotInfo, action int) env.Decision
}

// Scheme pairs one shared Policy with a factory for its per-link Encoders.
type Scheme struct {
	policy     Policy
	newEncoder func() Encoder
}

// NewScheme builds a scheme from a policy and an encoder factory.
func NewScheme(p Policy, newEncoder func() Encoder) (*Scheme, error) {
	if p == nil || newEncoder == nil {
		return nil, fmt.Errorf("policy: scheme needs a policy and an encoder factory")
	}
	return &Scheme{policy: p, newEncoder: newEncoder}, nil
}

// Name returns the policy's scheme name.
func (s *Scheme) Name() string { return s.policy.Name() }

// Policy returns the shared decision rule.
func (s *Scheme) Policy() Policy { return s.policy }

// Batch drives K links through one shared Policy, implementing
// env.BatchAgent: each DecideBatch gathers all K encoded states into a
// single policy call and scatters the actions back through the per-link
// encoders.
type Batch struct {
	pol     Policy
	encs    []Encoder
	states  []float64
	actions []int
}

var _ env.BatchAgent = (*Batch)(nil)

// NewBatch builds a K-link batch adapter with fresh encoders.
func (s *Scheme) NewBatch(k int) (*Batch, error) {
	if k <= 0 {
		return nil, fmt.Errorf("policy: batch size %d must be positive", k)
	}
	b := &Batch{
		pol:     s.policy,
		encs:    make([]Encoder, k),
		states:  make([]float64, k*s.policy.StateDim()),
		actions: make([]int, k),
	}
	for i := range b.encs {
		b.encs[i] = s.newEncoder()
	}
	return b, nil
}

// Name implements env.BatchAgent.
func (b *Batch) Name() string { return b.pol.Name() }

// Len implements env.BatchAgent.
func (b *Batch) Len() int { return len(b.encs) }

// ResetBatch implements env.BatchAgent.
func (b *Batch) ResetBatch(rngs []*rand.Rand) error {
	if len(rngs) != len(b.encs) {
		return fmt.Errorf("policy: %d rngs for %d links", len(rngs), len(b.encs))
	}
	for i, e := range b.encs {
		e.Reset(rngs[i])
	}
	return nil
}

// DecideBatch implements env.BatchAgent.
func (b *Batch) DecideBatch(prev []env.SlotInfo, out []env.Decision) error {
	k := len(b.encs)
	if len(prev) != k || len(out) != k {
		return fmt.Errorf("policy: batch slices sized %d/%d for %d links", len(prev), len(out), k)
	}
	dim := b.pol.StateDim()
	for i, e := range b.encs {
		e.Encode(prev[i], b.states[i*dim:(i+1)*dim])
	}
	if err := b.pol.DecideBatch(b.states, b.actions); err != nil {
		return err
	}
	for i, e := range b.encs {
		out[i] = e.Decode(prev[i], b.actions[i])
	}
	return nil
}

// Agent adapts a Scheme to the serial env.Agent interface (a batch of one).
// The internal/core agents are thin wrappers around this type.
type Agent struct {
	scheme *Scheme
	enc    Encoder
	state  []float64
	action [1]int
}

var _ env.Agent = (*Agent)(nil)

// NewAgent builds a single-link adapter with a fresh encoder.
func (s *Scheme) NewAgent() *Agent {
	return &Agent{
		scheme: s,
		enc:    s.newEncoder(),
		state:  make([]float64, s.policy.StateDim()),
	}
}

// Scheme returns the scheme the agent wraps (e.g. to build a Batch that
// plays the same policy).
func (a *Agent) Scheme() *Scheme { return a.scheme }

// Name implements env.Agent.
func (a *Agent) Name() string { return a.scheme.policy.Name() }

// Reset implements env.Agent.
func (a *Agent) Reset(rng *rand.Rand) { a.enc.Reset(rng) }

// Decide implements env.Agent. Like the pre-refactor agents it falls back to
// staying at minimum power if the policy errors (it cannot propagate one).
func (a *Agent) Decide(prev env.SlotInfo) env.Decision {
	a.enc.Encode(prev, a.state)
	if err := a.scheme.policy.DecideBatch(a.state, a.action[:]); err != nil {
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	return a.enc.Decode(prev, a.action[0])
}

// HopTarget picks a uniformly random channel outside the current channel's
// sweep block, matching the MDP's assumption that a hop lands on one of the
// other S-1 blocks (Eq. 9). Hopping within the jammer's block would not
// escape a 4-channel-wide cross-technology jammer. (Migrated verbatim from
// internal/core so every scheme draws hop targets identically.)
func HopTarget(rng *rand.Rand, current, channels, sweepWidth int) int {
	blocks := (channels + sweepWidth - 1) / sweepWidth
	curBlock := current / sweepWidth
	b := rng.Intn(blocks - 1)
	if b >= curBlock {
		b++
	}
	lo := b * sweepWidth
	hi := lo + sweepWidth
	if hi > channels {
		hi = channels
	}
	return lo + rng.Intn(hi-lo)
}

func checkTopology(channels, sweepWidth int) error {
	if channels < 2 {
		return fmt.Errorf("policy: channels %d must be >= 2", channels)
	}
	if sweepWidth <= 0 || sweepWidth > channels {
		return fmt.Errorf("policy: sweep width %d out of range [1,%d]", sweepWidth, channels)
	}
	if (channels+sweepWidth-1)/sweepWidth < 2 {
		return fmt.Errorf("policy: need at least 2 sweep blocks (channels=%d width=%d)", channels, sweepWidth)
	}
	return nil
}
