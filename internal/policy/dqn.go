package policy

import (
	"fmt"
	"math/rand"

	"ctjam/internal/env"
	"ctjam/internal/rl"
)

// DQN plays greedy argmax over an immutable Q-network snapshot. One DQN
// policy serves any number of links: each DecideBatch stacks the encoded
// history windows into a single batched forward pass.
type DQN struct {
	name string
	snap *rl.Snapshot
}

var _ Policy = (*DQN)(nil)

// NewDQN wraps an inference snapshot as a policy.
func NewDQN(name string, snap *rl.Snapshot) (*DQN, error) {
	if snap == nil {
		return nil, fmt.Errorf("policy: dqn needs a snapshot")
	}
	return &DQN{name: name, snap: snap}, nil
}

// Name implements Policy.
func (p *DQN) Name() string { return p.name }

// StateDim implements Policy.
func (p *DQN) StateDim() int { return p.snap.StateDim() }

// NumActions implements Policy.
func (p *DQN) NumActions() int { return p.snap.NumActions() }

// Snapshot returns the underlying network snapshot (e.g. for Q inspection).
func (p *DQN) Snapshot() *rl.Snapshot { return p.snap }

// Engine reports the numeric engine the underlying snapshot evaluates on —
// part of the policy's identity: two DQN policies over the same weights but
// different engines are not interchangeable for caching or golden traces.
func (p *DQN) Engine() rl.Engine { return p.snap.Engine() }

// DecideBatch implements Policy via one batched greedy forward.
func (p *DQN) DecideBatch(states []float64, actions []int) error {
	return p.snap.GreedyBatch(actions, states)
}

// QValuesBatch writes the full Q rows for n stacked states into dst
// (n*NumActions values). It shares the snapshot's pooled batch scratch, so —
// like DecideBatch — it is safe for any number of concurrent callers; the
// serving layer uses it for qvalues-annotated decisions without reaching
// around the policy abstraction.
func (p *DQN) QValuesBatch(dst, states []float64) error {
	return p.snap.QValuesBatch(dst, states)
}

// DQNScheme pairs a snapshot-backed DQN policy with History encoders
// matching the paper's 3*I observation window over (outcome, channel,
// power).
func DQNScheme(name string, snap *rl.Snapshot, channels, powers, historyLen int) (*Scheme, error) {
	if snap.StateDim() != 3*historyLen {
		return nil, fmt.Errorf("policy: snapshot expects %d features, history of %d slots encodes %d",
			snap.StateDim(), historyLen, 3*historyLen)
	}
	if snap.NumActions() != channels*powers {
		return nil, fmt.Errorf("policy: snapshot has %d actions, %d channels x %d powers need %d",
			snap.NumActions(), channels, powers, channels*powers)
	}
	p, err := NewDQN(name, snap)
	if err != nil {
		return nil, err
	}
	return NewScheme(p, func() Encoder {
		return NewHistory(channels, powers, historyLen)
	})
}

// History is the DQN scheme's per-link encoder: the paper's rolling window
// of the last I slots, three features per slot — outcome (+1 success, +0.5
// jammed-but-survived, -1 jammed), normalized channel and normalized power.
// It is also the mutable state internal/core's DQN agent trains through, so
// the training path and the inference engine share one encoding.
type History struct {
	channels, powers, historyLen int
	window                       []float64
}

var _ Encoder = (*History)(nil)

// NewHistory builds a zeroed history window encoder.
func NewHistory(channels, powers, historyLen int) *History {
	return &History{
		channels:   channels,
		powers:     powers,
		historyLen: historyLen,
		window:     make([]float64, 3*historyLen),
	}
}

// Reset implements Encoder; the DQN scheme is deterministic at inference
// time, so the RNG is unused.
func (h *History) Reset(*rand.Rand) { h.Clear() }

// Clear zeroes the window (a fresh run).
func (h *History) Clear() {
	for i := range h.window {
		h.window[i] = 0
	}
}

// Push appends one slot record (outcome, channel, power) to the rolling
// window, dropping the oldest.
func (h *History) Push(outcome env.Outcome, channel, power int) {
	var oc float64
	switch outcome {
	case env.OutcomeSuccess:
		oc = 1
	case env.OutcomeJammedSurvived:
		oc = 0.5
	case env.OutcomeJammed:
		oc = -1
	}
	copy(h.window, h.window[3:])
	n := len(h.window)
	h.window[n-3] = oc
	h.window[n-2] = float64(channel) / float64(h.channels-1)
	h.window[n-1] = float64(power) / float64(max(h.powers-1, 1))
}

// Window returns the live 3*I feature window (mutations via Push are
// visible; callers must not resize it).
func (h *History) Window() []float64 { return h.window }

// Snapshot returns a copy of the window (for replay transitions, which
// retain their State/Next slices).
func (h *History) Snapshot() []float64 {
	out := make([]float64, len(h.window))
	copy(out, h.window)
	return out
}

// SetWindow replaces the window contents (checkpoint restore). The adopted
// slice must have the encoder's 3*I length.
func (h *History) SetWindow(w []float64) error {
	if len(w) != len(h.window) {
		return fmt.Errorf("policy: history window has %d values, want %d", len(w), len(h.window))
	}
	h.window = w
	return nil
}

// Encode implements Encoder: fold the previous slot into the window and emit
// it as the feature vector.
func (h *History) Encode(prev env.SlotInfo, dst []float64) {
	if !prev.First {
		h.Push(prev.Outcome, prev.Channel, prev.Power)
	}
	copy(dst, h.window)
}

// Decode implements Encoder: actions enumerate (channel, power) pairs.
func (h *History) Decode(prev env.SlotInfo, action int) env.Decision {
	return env.Decision{Channel: action / h.powers, Power: action % h.powers}
}
