package policy

import (
	"fmt"
	"math/rand"

	"ctjam/internal/env"
)

// Baseline scheme actions. The passive scheme's action space is
// {stay, hop}; the random and static schemes choose entirely in their
// encoders (their policies are state-free passthroughs).
const (
	actionStay = 0
	actionHop  = 1
)

// Threshold hops once its single feature (the consecutive-jam streak)
// reaches the configured threshold — the decision half of the "PSV FH"
// baseline, split out of the per-link streak tracking.
type Threshold struct {
	name      string
	threshold int
}

var _ Policy = (*Threshold)(nil)

// NewThreshold builds the streak-threshold policy.
func NewThreshold(name string, threshold int) (*Threshold, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("policy: jam threshold %d must be >= 1", threshold)
	}
	return &Threshold{name: name, threshold: threshold}, nil
}

// Name implements Policy.
func (p *Threshold) Name() string { return p.name }

// StateDim implements Policy: one feature, the jam streak.
func (p *Threshold) StateDim() int { return 1 }

// NumActions implements Policy: stay or hop.
func (p *Threshold) NumActions() int { return 2 }

// DecideBatch implements Policy.
func (p *Threshold) DecideBatch(states []float64, actions []int) error {
	if len(states) != len(actions) {
		return fmt.Errorf("policy: threshold batch of %d states for %d actions", len(states), len(actions))
	}
	for i, s := range states {
		if int(s) >= p.threshold {
			actions[i] = actionHop
		} else {
			actions[i] = actionStay
		}
	}
	return nil
}

// PassiveFHScheme builds the "PSV FH" baseline of §IV-D3: hop only after the
// windowed error rate trips (jamThreshold consecutive jammed slots), always
// at minimum power.
func PassiveFHScheme(channels, sweepWidth, jamThreshold int) (*Scheme, error) {
	if err := checkTopology(channels, sweepWidth); err != nil {
		return nil, err
	}
	p, err := NewThreshold("PSV FH", jamThreshold)
	if err != nil {
		return nil, err
	}
	return NewScheme(p, func() Encoder {
		return &Streak{channels: channels, sweepWidth: sweepWidth}
	})
}

// Streak is the passive scheme's per-link encoder: it counts consecutive
// jammed slots and realizes hop actions with a block-aware target draw,
// resetting the streak on every hop.
type Streak struct {
	channels   int
	sweepWidth int

	rng    *rand.Rand
	streak int
}

var _ Encoder = (*Streak)(nil)

// Reset implements Encoder.
func (s *Streak) Reset(rng *rand.Rand) {
	s.rng = rng
	s.streak = 0
}

// Encode implements Encoder: update the jam streak and emit it.
func (s *Streak) Encode(prev env.SlotInfo, dst []float64) {
	switch {
	case prev.First:
		s.streak = 0
	case prev.Outcome == env.OutcomeJammed:
		s.streak++
	default:
		s.streak = 0
	}
	dst[0] = float64(s.streak)
}

// Decode implements Encoder.
func (s *Streak) Decode(prev env.SlotInfo, action int) env.Decision {
	if action == actionHop && !prev.First {
		s.streak = 0
		return env.Decision{
			Channel: HopTarget(s.rng, prev.Channel, s.channels, s.sweepWidth),
			Power:   0,
		}
	}
	return env.Decision{Channel: prev.Channel, Power: 0}
}

// coin is the state-free policy behind the random and static baselines: all
// randomness (or the absence of it) lives in the encoder's Decode, so the
// policy itself is a passthrough.
type coin struct {
	name    string
	actions int
}

var _ Policy = (*coin)(nil)

// Name implements Policy.
func (p *coin) Name() string { return p.name }

// StateDim implements Policy: these schemes ignore state entirely.
func (p *coin) StateDim() int { return 0 }

// NumActions implements Policy.
func (p *coin) NumActions() int { return p.actions }

// DecideBatch implements Policy: always action 0; the encoder randomizes.
func (p *coin) DecideBatch(states []float64, actions []int) error {
	for i := range actions {
		actions[i] = 0
	}
	return nil
}

// RandomFHScheme builds the "Rand FH" baseline of §IV-D3: every slot flips a
// coin between a blind hop (uniform over the other channels,
// block-oblivious) at minimum power and staying with a random power level.
func RandomFHScheme(channels, sweepWidth, powers int) (*Scheme, error) {
	if err := checkTopology(channels, sweepWidth); err != nil {
		return nil, err
	}
	if powers <= 0 {
		return nil, fmt.Errorf("policy: powers %d must be positive", powers)
	}
	return NewScheme(&coin{name: "Rand FH", actions: 1}, func() Encoder {
		return &RandomWalk{channels: channels, powers: powers}
	})
}

// RandomWalk is the random baseline's encoder: Decode draws the coin and the
// hop target / power level from the link RNG in the same order the original
// agent did, so traces are preserved exactly.
type RandomWalk struct {
	channels int
	powers   int
	rng      *rand.Rand
}

var _ Encoder = (*RandomWalk)(nil)

// Reset implements Encoder.
func (r *RandomWalk) Reset(rng *rand.Rand) { r.rng = rng }

// Encode implements Encoder (no state).
func (r *RandomWalk) Encode(env.SlotInfo, []float64) {}

// Decode implements Encoder.
func (r *RandomWalk) Decode(prev env.SlotInfo, action int) env.Decision {
	if prev.First {
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	if r.rng.Intn(2) == 0 {
		// Blind hop: uniform over the other channels, block-oblivious.
		ch := r.rng.Intn(r.channels - 1)
		if ch >= prev.Channel {
			ch++
		}
		return env.Decision{Channel: ch, Power: 0}
	}
	return env.Decision{Channel: prev.Channel, Power: r.rng.Intn(r.powers)}
}

// StaticScheme builds the no-defense baseline: never hop, never raise power.
func StaticScheme() *Scheme {
	s, err := NewScheme(&coin{name: "Static", actions: 1}, func() Encoder {
		return stay{}
	})
	if err != nil {
		// Both arguments are non-nil by construction.
		panic(err)
	}
	return s
}

// stay is the static baseline's encoder.
type stay struct{}

var _ Encoder = stay{}

// Reset implements Encoder.
func (stay) Reset(*rand.Rand) {}

// Encode implements Encoder (no state).
func (stay) Encode(env.SlotInfo, []float64) {}

// Decode implements Encoder.
func (stay) Decode(prev env.SlotInfo, action int) env.Decision {
	return env.Decision{Channel: prev.Channel, Power: 0}
}
