package policy_test

import (
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ctjam/internal/policy"
	"ctjam/internal/rl"
)

// End-to-end dual-engine agreement harness over committed checkpoints: for
// every CTJM model under testdata/engines, the fast-engine policy's greedy
// actions must agree with the exact engine's at >= 99.9% across randomized
// state batches, and every disagreement must be an exact-Q near-tie.
//
// Regenerate the checkpoints with:
//
//	go test ./internal/policy/ -run TestRegenEngineCheckpoints -regen-engine-checkpoints
var regenEngineCheckpoints = flag.Bool("regen-engine-checkpoints", false,
	"rewrite testdata/engines checkpoints instead of testing against them")

const (
	engHistoryLen = 8   // paper window: stateDim = 3*8 = 24
	engChannels   = 16  // 16 channels x 10 powers = 160 actions
	engPowers     = 10
	engAgreeFloor = 0.999
	engTieGap     = 1e-3 // max exact-Q gap for a tolerated disagreement
)

// engCheckpoints describes the committed models: one briefly-trained
// paper-dims net (structured Q surfaces), one untrained paper-dims net
// (near-uniform Q values — the adversarial case for agreement, since random
// ties are as common as they get), and one with odd hidden widths that land
// on every kernel tail path.
var engCheckpoints = []struct {
	file    string
	seed    int64
	hidden  []int
	observe int // random transitions fed through Observe before saving
}{
	{file: "trained-paper.ctjm", seed: 101, hidden: []int{48, 48}, observe: 1500},
	{file: "random-paper.ctjm", seed: 202, hidden: []int{48, 48}},
	{file: "odd-hidden.ctjm", seed: 303, hidden: []int{31, 17}},
}

func engDir(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "engines")
}

func TestRegenEngineCheckpoints(t *testing.T) {
	if !*regenEngineCheckpoints {
		t.Skip("pass -regen-engine-checkpoints to rewrite testdata/engines")
	}
	dir := engDir(t)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	stateDim := 3 * engHistoryLen
	actions := engChannels * engPowers
	for _, ck := range engCheckpoints {
		cfg := rl.DefaultDQNConfig(stateDim, actions)
		cfg.Hidden = ck.hidden
		cfg.Seed = ck.seed
		d, err := rl.NewDQN(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(ck.seed))
		for i := 0; i < ck.observe; i++ {
			tr := rl.Transition{
				State:  engRandState(rng, stateDim),
				Action: rng.Intn(actions),
				Reward: rng.Float64()*2 - 1,
				Next:   engRandState(rng, stateDim),
				Done:   rng.Intn(50) == 0,
			}
			if _, err := d.Observe(tr); err != nil {
				t.Fatal(err)
			}
		}
		f, err := os.Create(filepath.Join(dir, ck.file))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Network().Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// engRandState draws feature vectors shaped like History encodings: outcome
// in {-1, 0, 0.5, 1}, normalized channel and power in [0, 1].
func engRandState(rng *rand.Rand, dim int) []float64 {
	out := make([]float64, dim)
	outcomes := []float64{-1, 0, 0.5, 1}
	for i := 0; i < dim; i += 3 {
		out[i] = outcomes[rng.Intn(len(outcomes))]
		out[i+1] = float64(rng.Intn(engChannels)) / float64(engChannels-1)
		out[i+2] = float64(rng.Intn(engPowers)) / float64(engPowers-1)
	}
	return out
}

func loadEngineSnapshot(t *testing.T, file string) *rl.Snapshot {
	t.Helper()
	f, err := os.Open(filepath.Join(engDir(t), file))
	if err != nil {
		t.Fatalf("%s: %v (regenerate with -regen-engine-checkpoints)", file, err)
	}
	defer f.Close()
	snap, err := rl.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	return snap
}

func TestEngineActionAgreementCommitted(t *testing.T) {
	stateDim := 3 * engHistoryLen
	actions := engChannels * engPowers
	for _, ck := range engCheckpoints {
		ck := ck
		t.Run(ck.file, func(t *testing.T) {
			snap := loadEngineSnapshot(t, ck.file)
			fast, err := snap.Fast32()
			if err != nil {
				t.Fatal(err)
			}
			exact, err := policy.DQNScheme("exact", snap, engChannels, engPowers, engHistoryLen)
			if err != nil {
				t.Fatal(err)
			}
			fastScheme, err := policy.DQNScheme("fast", fast, engChannels, engPowers, engHistoryLen)
			if err != nil {
				t.Fatal(err)
			}
			if got := exact.Policy().(*policy.DQN).Engine(); got != rl.EngineExact {
				t.Fatalf("exact scheme engine %v", got)
			}
			if got := fastScheme.Policy().(*policy.DQN).Engine(); got != rl.EngineFast32 {
				t.Fatalf("fast scheme engine %v", got)
			}

			rng := rand.New(rand.NewSource(ck.seed + 7))
			const batches, n = 30, 100
			total, agree := 0, 0
			states := make([]float64, n*stateDim)
			exactA := make([]int, n)
			fastA := make([]int, n)
			q := make([]float64, n*actions)
			for b := 0; b < batches; b++ {
				for i := 0; i < n; i++ {
					copy(states[i*stateDim:], engRandState(rng, stateDim))
				}
				if err := exact.Policy().DecideBatch(states, exactA); err != nil {
					t.Fatal(err)
				}
				if err := fastScheme.Policy().DecideBatch(states, fastA); err != nil {
					t.Fatal(err)
				}
				if err := exact.Policy().(*policy.DQN).QValuesBatch(q, states); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					total++
					if exactA[i] == fastA[i] {
						agree++
						continue
					}
					row := q[i*actions : (i+1)*actions]
					gap := math.Abs(row[exactA[i]] - row[fastA[i]])
					if gap > engTieGap {
						t.Fatalf("batch %d state %d: actions %d vs %d with exact-Q gap %v — not a near-tie",
							b, i, exactA[i], fastA[i], gap)
					}
				}
			}
			rate := float64(agree) / float64(total)
			t.Logf("%s: agreement %.5f over %d decisions", ck.file, rate, total)
			if rate < engAgreeFloor {
				t.Fatalf("action agreement %.5f over %d states, want >= %v", rate, total, engAgreeFloor)
			}
		})
	}
}

// TestEngineQValuesCommitted pins the fast engine's Q surfaces to the exact
// engine within the quantization budget on every committed checkpoint, so a
// kernel regression shows up as a numeric diff even when actions happen to
// agree.
func TestEngineQValuesCommitted(t *testing.T) {
	stateDim := 3 * engHistoryLen
	actions := engChannels * engPowers
	for _, ck := range engCheckpoints {
		ck := ck
		t.Run(ck.file, func(t *testing.T) {
			snap := loadEngineSnapshot(t, ck.file)
			fast, err := snap.Fast32()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(ck.seed + 11))
			const n = 64
			states := make([]float64, n*stateDim)
			for i := 0; i < n; i++ {
				copy(states[i*stateDim:], engRandState(rng, stateDim))
			}
			exactQ := make([]float64, n*actions)
			fastQ := make([]float64, n*actions)
			if err := snap.QValuesBatch(exactQ, states); err != nil {
				t.Fatal(err)
			}
			if err := fast.QValuesBatch(fastQ, states); err != nil {
				t.Fatal(err)
			}
			for i := range exactQ {
				if diff := math.Abs(fastQ[i] - exactQ[i]); diff > 5e-4+5e-4*math.Abs(exactQ[i]) {
					t.Fatalf("q %d: fast %v vs exact %v exceeds budget", i, fastQ[i], exactQ[i])
				}
			}
		})
	}
}
