package policy_test

import (
	"fmt"
	"reflect"
	"testing"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/iot"
	"ctjam/internal/policy"
)

// schemesUnderTest builds one scheme per decision-rule family, including a
// briefly trained DQN so the batched GEMM path is covered with real weights.
func schemesUnderTest(t *testing.T, cfg env.Config) map[string]*policy.Scheme {
	t.Helper()
	out := make(map[string]*policy.Scheme)

	out["static"] = policy.StaticScheme()

	passive, err := policy.PassiveFHScheme(cfg.Channels, cfg.SweepWidth, 4)
	if err != nil {
		t.Fatal(err)
	}
	out["passive"] = passive

	random, err := policy.RandomFHScheme(cfg.Channels, cfg.SweepWidth, len(cfg.TxPowers))
	if err != nil {
		t.Fatal(err)
	}
	out["random"] = random

	model, err := core.NewModel(core.ParamsFromEnv(cfg))
	if err != nil {
		t.Fatal(err)
	}
	mdpAgent, err := core.NewMDPAgent(model, nil, cfg.Channels, cfg.SweepWidth)
	if err != nil {
		t.Fatal(err)
	}
	out["mdp"] = mdpAgent.Scheme()

	qAgent, err := core.NewQAgent(model, cfg.Channels, cfg.SweepWidth, 1)
	if err != nil {
		t.Fatal(err)
	}
	trainEnv, err := env.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qAgent.Train(trainEnv, 500); err != nil {
		t.Fatal(err)
	}
	qScheme, err := qAgent.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	out["qtable"] = qScheme

	acfg := core.DefaultDQNAgentConfig(cfg.Channels, len(cfg.TxPowers), cfg.SweepWidth)
	acfg.Hidden = []int{16}
	acfg.WarmupSize = 32
	dqnAgent, err := core.NewDQNAgent(acfg)
	if err != nil {
		t.Fatal(err)
	}
	dqnEnv, err := env.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dqnAgent.Train(dqnEnv, 600); err != nil {
		t.Fatal(err)
	}
	dqnScheme, err := dqnAgent.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	out["dqn"] = dqnScheme

	return out
}

// TestBatchSerialEquivalence is the refactor's determinism gate: for every
// scheme and batch size, BatchRunTrace over K environments must be
// bit-identical — counters and full per-slot action traces — to K serial
// RunTrace evaluations with the same seeds.
func TestBatchSerialEquivalence(t *testing.T) {
	cfg := env.DefaultConfig()
	const (
		baseSeed = 42
		slots    = 400
	)
	for name, scheme := range schemesUnderTest(t, cfg) {
		for _, k := range []int{1, 7, 64} {
			t.Run(fmt.Sprintf("%s/k=%d", name, k), func(t *testing.T) {
				// Serial reference: one fresh env + single-link agent per seed.
				serialCounters := make([]interface{}, k)
				serialRecords := make([][]env.SlotRecord, k)
				for i := 0; i < k; i++ {
					c := cfg
					c.Seed = baseSeed + int64(i)
					e, err := env.New(c)
					if err != nil {
						t.Fatal(err)
					}
					counters, records, err := env.RunTrace(e, scheme.NewAgent(), slots)
					if err != nil {
						t.Fatal(err)
					}
					serialCounters[i] = counters
					serialRecords[i] = records
				}

				envs := make([]*env.Environment, k)
				for i := range envs {
					c := cfg
					c.Seed = baseSeed + int64(i)
					e, err := env.New(c)
					if err != nil {
						t.Fatal(err)
					}
					envs[i] = e
				}
				batch, err := scheme.NewBatch(k)
				if err != nil {
					t.Fatal(err)
				}
				batchCounters, batchRecords, err := env.BatchRunTrace(envs, batch, slots)
				if err != nil {
					t.Fatal(err)
				}

				for i := 0; i < k; i++ {
					if !reflect.DeepEqual(serialCounters[i], batchCounters[i]) {
						t.Fatalf("env %d: counters diverge\nserial: %+v\nbatch:  %+v",
							i, serialCounters[i], batchCounters[i])
					}
					if !reflect.DeepEqual(serialRecords[i], batchRecords[i]) {
						for s := range serialRecords[i] {
							if serialRecords[i][s] != batchRecords[i][s] {
								t.Fatalf("env %d slot %d: serial %+v vs batch %+v",
									i, s, serialRecords[i][s], batchRecords[i][s])
							}
						}
						t.Fatalf("env %d: traces diverge", i)
					}
				}
			})
		}
	}
}

// TestBatchSerialEquivalenceIoT repeats the gate on the discrete-event field
// simulator, whose RNG interleaving (reset, then initial channel draw) is the
// subtle part of iot.BatchRun.
func TestBatchSerialEquivalenceIoT(t *testing.T) {
	base := iot.DefaultConfig()
	const slots = 60
	cfg := env.DefaultConfig()
	passive, err := policy.PassiveFHScheme(base.Channels, base.SweepWidth, 4)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.NewModel(core.ParamsFromEnv(cfg))
	if err != nil {
		t.Fatal(err)
	}
	mdpAgent, err := core.NewMDPAgent(model, nil, base.Channels, base.SweepWidth)
	if err != nil {
		t.Fatal(err)
	}
	schemes := map[string]*policy.Scheme{
		"passive": passive,
		"mdp":     mdpAgent.Scheme(),
		"random":  mustRandom(t, base.Channels, base.SweepWidth, len(base.TxPowers)),
	}
	for name, scheme := range schemes {
		for _, k := range []int{1, 5} {
			t.Run(fmt.Sprintf("%s/k=%d", name, k), func(t *testing.T) {
				serial := make([]iot.RunStats, k)
				for i := 0; i < k; i++ {
					c := base
					c.Seed = 100 + int64(i)
					s, err := iot.New(c)
					if err != nil {
						t.Fatal(err)
					}
					run, err := s.Run(scheme.NewAgent(), slots)
					if err != nil {
						t.Fatal(err)
					}
					serial[i] = run
				}

				sims := make([]*iot.Simulator, k)
				for i := range sims {
					c := base
					c.Seed = 100 + int64(i)
					s, err := iot.New(c)
					if err != nil {
						t.Fatal(err)
					}
					sims[i] = s
				}
				batch, err := scheme.NewBatch(k)
				if err != nil {
					t.Fatal(err)
				}
				runs, err := iot.BatchRun(sims, batch, slots)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < k; i++ {
					if !reflect.DeepEqual(serial[i], runs[i]) {
						t.Fatalf("sim %d: stats diverge\nserial: %+v\nbatch:  %+v", i, serial[i], runs[i])
					}
				}
			})
		}
	}
}

func mustRandom(t *testing.T, channels, sweepWidth, powers int) *policy.Scheme {
	t.Helper()
	s, err := policy.RandomFHScheme(channels, sweepWidth, powers)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBatchValidation covers the batch adapters' size checks.
func TestBatchValidation(t *testing.T) {
	if _, err := policy.StaticScheme().NewBatch(0); err == nil {
		t.Fatal("batch size 0: expected error")
	}
	cfg := env.DefaultConfig()
	batch, err := policy.StaticScheme().NewBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := env.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.BatchRun([]*env.Environment{e}, batch, 10); err == nil {
		t.Fatal("agent/env size mismatch: expected error")
	}
	if _, err := env.BatchRun(nil, batch, 10); err == nil {
		t.Fatal("no envs: expected error")
	}
}
