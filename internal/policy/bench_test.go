package policy_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ctjam/internal/rl"
)

// BenchmarkPolicyBatch measures inference throughput (states/s) at the
// paper's network dimensions (24 features -> 48 -> 48 -> 160 actions),
// comparing one batched forward over N states against N single-state
// forwards through the same snapshot. The batched path must win by >= 2x at
// N=256 (PR acceptance gate; see CHANGES.md for recorded numbers).
func BenchmarkPolicyBatch(b *testing.B) {
	cfg := rl.DefaultDQNConfig(24, 160)
	cfg.Hidden = []int{48, 48}
	d, err := rl.NewDQN(cfg)
	if err != nil {
		b.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	fast, err := snap.Fast32()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 16, 64, 256} {
		states := make([]float64, n*24)
		for i := range states {
			states[i] = rng.Float64()*2 - 1
		}
		actions := make([]int, n)

		b.Run(fmt.Sprintf("batched/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := snap.GreedyBatch(actions, states); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		})

		b.Run(fmt.Sprintf("fast32/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fast.GreedyBatch(actions, states); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		})

		b.Run(fmt.Sprintf("perstate/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			one := make([]int, 1)
			for i := 0; i < b.N; i++ {
				for s := 0; s < n; s++ {
					if err := snap.GreedyBatch(one, states[s*24:(s+1)*24]); err != nil {
						b.Fatal(err)
					}
					actions[s] = one[0]
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		})
	}
}
