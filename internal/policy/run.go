package policy

import (
	"ctjam/internal/env"
	"ctjam/internal/metrics"
)

// Run evaluates the scheme over the given environments in lockstep for the
// given number of slots, returning one Table I counter set per environment.
// It is the batched-evaluation entry point for experiment sweeps: every slot
// gathers all len(envs) encoded states into a single policy call (one
// nn.ForwardBatch for DQN schemes), and by the env.BatchRun determinism
// contract the results are bit-identical to len(envs) serial env.Run calls
// over the same environments, at any batch size.
func (s *Scheme) Run(envs []*env.Environment, slots int) ([]metrics.Counters, error) {
	b, err := s.NewBatch(len(envs))
	if err != nil {
		return nil, err
	}
	return env.BatchRun(envs, b, slots)
}
