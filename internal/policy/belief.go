package policy

import (
	"fmt"
	"math"
	"math/rand"

	"ctjam/internal/env"
)

// BeliefModel is the slice of the anti-jamming MDP the belief-state schemes
// need: the state indexing (counting states n, T_J, J) and the action
// encoding (stay/hop x power). internal/core's Model satisfies it; the
// interface keeps this package free of a core dependency (core imports
// policy, not the other way around).
type BeliefModel interface {
	// SweepCycle returns S, the jammer's sweep cycle in slots.
	SweepCycle() int
	// StateTJ and StateJ return the jammed-state indices.
	StateTJ() int
	StateJ() int
	// StateOfN converts a success count n (1..S-1) to a state index.
	StateOfN(n int) (int, error)
	// NumStates and NumActions size the model.
	NumStates() int
	NumActions() int
	// DecodeAction splits an action index into (hop, power).
	DecodeAction(a int) (hop bool, power int, err error)
}

// Lookup plays a fixed state→action table — the solved MDP's greedy policy.
type Lookup struct {
	name    string
	actions []int
	numActs int
}

var _ Policy = (*Lookup)(nil)

// NewLookup wraps a per-state action table (copied) as a policy.
func NewLookup(name string, actions []int, numActions int) (*Lookup, error) {
	if len(actions) == 0 || numActions <= 0 {
		return nil, fmt.Errorf("policy: lookup needs states and actions")
	}
	for s, a := range actions {
		if a < 0 || a >= numActions {
			return nil, fmt.Errorf("policy: lookup action %d at state %d out of range [0,%d)", a, s, numActions)
		}
	}
	return &Lookup{name: name, actions: append([]int(nil), actions...), numActs: numActions}, nil
}

// Name implements Policy.
func (p *Lookup) Name() string { return p.name }

// StateDim implements Policy: one feature, the belief-state index.
func (p *Lookup) StateDim() int { return 1 }

// NumActions implements Policy.
func (p *Lookup) NumActions() int { return p.numActs }

// DecideBatch implements Policy.
func (p *Lookup) DecideBatch(states []float64, actions []int) error {
	if len(states) != len(actions) {
		return fmt.Errorf("policy: lookup batch of %d states for %d actions", len(states), len(actions))
	}
	for i, s := range states {
		idx := int(s)
		if idx < 0 || idx >= len(p.actions) {
			return fmt.Errorf("policy: lookup state %d out of range [0,%d)", idx, len(p.actions))
		}
		actions[i] = p.actions[idx]
	}
	return nil
}

// TableGreedy plays argmax over an immutable Q matrix (states x actions) —
// the tabular Q-learning scheme's inference half.
type TableGreedy struct {
	name string
	q    [][]float64
}

var _ Policy = (*TableGreedy)(nil)

// NewTableGreedy wraps a Q matrix (adopted, not copied — pass a snapshot) as
// a policy.
func NewTableGreedy(name string, q [][]float64) (*TableGreedy, error) {
	if len(q) == 0 || len(q[0]) == 0 {
		return nil, fmt.Errorf("policy: greedy table needs states and actions")
	}
	for s := range q {
		if len(q[s]) != len(q[0]) {
			return nil, fmt.Errorf("policy: ragged q table at state %d", s)
		}
	}
	return &TableGreedy{name: name, q: q}, nil
}

// Name implements Policy.
func (p *TableGreedy) Name() string { return p.name }

// StateDim implements Policy: one feature, the belief-state index.
func (p *TableGreedy) StateDim() int { return 1 }

// NumActions implements Policy.
func (p *TableGreedy) NumActions() int { return len(p.q[0]) }

// DecideBatch implements Policy.
func (p *TableGreedy) DecideBatch(states []float64, actions []int) error {
	if len(states) != len(actions) {
		return fmt.Errorf("policy: greedy batch of %d states for %d actions", len(states), len(actions))
	}
	for i, s := range states {
		idx := int(s)
		if idx < 0 || idx >= len(p.q) {
			return fmt.Errorf("policy: greedy state %d out of range [0,%d)", idx, len(p.q))
		}
		best, bestV := 0, math.Inf(-1)
		for a, v := range p.q[idx] {
			if v > bestV {
				best, bestV = a, v
			}
		}
		actions[i] = best
	}
	return nil
}

// MDPScheme pairs a Lookup over the solved policy with Belief encoders.
func MDPScheme(name string, model BeliefModel, solved []int, channels, sweepWidth int) (*Scheme, error) {
	if len(solved) != model.NumStates() {
		return nil, fmt.Errorf("policy: solved policy has %d states, model needs %d", len(solved), model.NumStates())
	}
	p, err := NewLookup(name, solved, model.NumActions())
	if err != nil {
		return nil, err
	}
	return beliefScheme(p, model, channels, sweepWidth)
}

// QTableScheme pairs a TableGreedy over a Q snapshot with Belief encoders.
func QTableScheme(name string, model BeliefModel, q [][]float64, channels, sweepWidth int) (*Scheme, error) {
	if len(q) != model.NumStates() {
		return nil, fmt.Errorf("policy: q table has %d states, model needs %d", len(q), model.NumStates())
	}
	p, err := NewTableGreedy(name, q)
	if err != nil {
		return nil, err
	}
	return beliefScheme(p, model, channels, sweepWidth)
}

func beliefScheme(p Policy, model BeliefModel, channels, sweepWidth int) (*Scheme, error) {
	if err := checkTopology(channels, sweepWidth); err != nil {
		return nil, err
	}
	return NewScheme(p, func() Encoder {
		return NewBelief(model, channels, sweepWidth)
	})
}

// Belief is the per-link encoder for the belief-state schemes: it tracks the
// §III-B belief (n consecutive successes on the current channel, or the T_J
// / J jammed states) from observed outcomes and emits the state index as the
// single feature. Decode realizes hop actions with the block-aware HopTarget
// draw.
type Belief struct {
	model      BeliefModel
	channels   int
	sweepWidth int

	rng *rand.Rand
	n   int // consecutive successes on current channel
	tj  bool
	j   bool
}

var _ Encoder = (*Belief)(nil)

// NewBelief builds a belief encoder for the given model and topology.
func NewBelief(model BeliefModel, channels, sweepWidth int) *Belief {
	return &Belief{model: model, channels: channels, sweepWidth: sweepWidth, n: 1}
}

// Reset implements Encoder.
func (b *Belief) Reset(rng *rand.Rand) {
	b.rng = rng
	b.n = 1
	b.tj = false
	b.j = false
}

// Observe folds a slot outcome into the belief (shared with the tabular
// training loop in internal/core).
func (b *Belief) Observe(outcome env.Outcome, hopped bool) {
	switch outcome {
	case env.OutcomeSuccess:
		if hopped || b.tj || b.j {
			b.n = 1
		} else if b.n < b.model.SweepCycle()-1 {
			b.n++
		}
		b.tj, b.j = false, false
	case env.OutcomeJammedSurvived:
		b.tj, b.j = true, false
	case env.OutcomeJammed:
		b.tj, b.j = false, true
	}
}

// State maps the tracked belief to a model state index.
func (b *Belief) State() int {
	switch {
	case b.j:
		return b.model.StateJ()
	case b.tj:
		return b.model.StateTJ()
	default:
		s, err := b.model.StateOfN(b.n)
		if err != nil {
			return 0
		}
		return s
	}
}

// Encode implements Encoder.
func (b *Belief) Encode(prev env.SlotInfo, dst []float64) {
	if !prev.First {
		b.Observe(prev.Outcome, prev.Hopped)
	}
	dst[0] = float64(b.State())
}

// Decode implements Encoder: hop actions draw a block-aware target from the
// link RNG (never on the first slot, which has no channel to hop from).
func (b *Belief) Decode(prev env.SlotInfo, action int) env.Decision {
	hop, power, err := b.model.DecodeAction(action)
	if err != nil {
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	ch := prev.Channel
	if hop && !prev.First {
		ch = HopTarget(b.rng, prev.Channel, b.channels, b.sweepWidth)
	}
	return env.Decision{Channel: ch, Power: power}
}
