package emulate

import (
	"math/rand"
	"testing"

	"ctjam/internal/phy/zigbee"
)

// The emulation path must stay decodable for arbitrary ZigBee symbol
// content, not just the fixed vector of the end-to-end test: random symbol
// sequences, both scrambler seeds used elsewhere in the suite, and both
// alpha modes. The paper's claim is statistical (few symbol errors), so the
// bound is a rate, but the run is fixed-seed and therefore deterministic.
func TestEmulateRandomSymbolsDecodableProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	m, err := zigbee.NewModulator(zigbee.DefaultSamplesPerChip)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 6; trial++ {
		symbols := make([]uint8, 8+r.Intn(17))
		for i := range symbols {
			symbols[i] = uint8(r.Intn(zigbee.SymbolCount))
		}
		designed := designedZigBee(t, symbols)

		for _, optimize := range []bool{false, true} {
			e, err := New(WithAlphaOptimization(optimize), WithScramblerSeed(uint8(1+r.Intn(127))))
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Emulate(designed)
			if err != nil {
				t.Fatalf("trial %d optimize=%v: %v", trial, optimize, err)
			}
			got, err := m.DemodulateSymbols(res.Wave, len(symbols))
			if err != nil {
				t.Fatalf("trial %d optimize=%v: demodulate: %v", trial, optimize, err)
			}
			errs := 0
			for i := range symbols {
				if got[i] != symbols[i] {
					errs++
				}
			}
			if frac := float64(errs) / float64(len(symbols)); frac > 0.25 {
				t.Fatalf("trial %d optimize=%v: symbol error rate %.2f (%d/%d)",
					trial, optimize, frac, errs, len(symbols))
			}
		}
	}
}
