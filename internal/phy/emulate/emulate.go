// Package emulate implements the paper's cross-technology signal emulation
// (Fig. 1): a Wi-Fi transmitter produces a waveform that a ZigBee receiver
// accepts as a ZigBee signal ("EmuBee").
//
// The pipeline is the inverse of the Wi-Fi PHY followed by the forward
// Wi-Fi PHY:
//
//	designed waveform --FFT--> subcarrier points --quantize to alpha-scaled
//	64-QAM--> hard bits --deinterleave--> --Viterbi--> --descramble-->
//	bit sequence --standard Wi-Fi TX--> emulated waveform
//
// The quantization step implements Eq. (1)-(2): E(alpha) = sum_j min_i
// (alpha*P_i - P_j)^2 is minimized over the scale alpha applied to the
// 64-QAM constellation. E is convex in alpha (the paper notes E” > 0), so a
// ternary search converges to the global minimum.
package emulate

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"ctjam/internal/dsp"
	"ctjam/internal/phy/wifi"
)

// DefaultBinOffset places the emulated ZigBee channel 13 OFDM subcarriers
// (4.0625 MHz) above the Wi-Fi channel center: inside the Wi-Fi band, away
// from DC and the guard bands, and clear of the pilot subcarriers at ±7 and
// ±21 so the ZigBee main lobe is fully representable. One Wi-Fi channel
// overlaps four ZigBee channels; the offset selects which one is hit.
const DefaultBinOffset = 13

// ErrEmptyWaveform is returned when the designed waveform is empty.
var ErrEmptyWaveform = errors.New("emulate: empty designed waveform")

// Emulator converts designed waveforms into Wi-Fi-transmittable emulations.
type Emulator struct {
	seed      uint8
	binOffset int
	optimize  bool
}

// Option configures an Emulator.
type Option interface {
	apply(*Emulator)
}

type seedOption uint8

func (o seedOption) apply(e *Emulator) { e.seed = uint8(o) }

// WithScramblerSeed sets the Wi-Fi scrambler seed (nonzero 7-bit value).
func WithScramblerSeed(seed uint8) Option { return seedOption(seed) }

type binOffsetOption int

func (o binOffsetOption) apply(e *Emulator) { e.binOffset = int(o) }

// WithBinOffset sets the subcarrier offset at which the designed waveform is
// placed inside the Wi-Fi channel.
func WithBinOffset(bins int) Option { return binOffsetOption(bins) }

type optimizeOption bool

func (o optimizeOption) apply(e *Emulator) { e.optimize = bool(o) }

// WithAlphaOptimization enables (default) or disables the Eq. (2) scale
// optimization. Disabled corresponds to the prior designs the paper improves
// on, which use the constellation at its native scale.
func WithAlphaOptimization(on bool) Option { return optimizeOption(on) }

// New returns an Emulator.
func New(opts ...Option) (*Emulator, error) {
	e := &Emulator{
		seed:      wifi.DefaultScramblerSeed,
		binOffset: DefaultBinOffset,
		optimize:  true,
	}
	for _, o := range opts {
		o.apply(e)
	}
	if e.seed&0x7F == 0 {
		return nil, errors.New("emulate: scrambler seed must be nonzero")
	}
	if e.binOffset < -20 || e.binOffset > 20 {
		return nil, fmt.Errorf("emulate: bin offset %d outside usable subcarriers", e.binOffset)
	}
	return e, nil
}

// Result is the outcome of one emulation run.
type Result struct {
	// Alpha is the constellation scale chosen by the optimizer (1 when
	// optimization is disabled).
	Alpha float64
	// QuantError is E(Alpha), the total squared quantization error of
	// Eq. (1).
	QuantError float64
	// Bits is the Wi-Fi payload bit sequence that regenerates the
	// emulated waveform through a standard transmitter.
	Bits []uint8
	// Wave is the emulated waveform at complex baseband, frequency
	// shifted back so it is directly comparable with (and decodable as)
	// the designed waveform.
	Wave []complex128
	// Symbols is the number of OFDM symbols used.
	Symbols int
	// EVM is the error-vector magnitude of Wave against the designed
	// waveform over the compared span.
	EVM float64
}

// QuantizationError evaluates E(alpha) of Eq. (1) for a set of target
// subcarrier points against the alpha-scaled 64-QAM constellation.
func QuantizationError(targets []complex128, alpha float64) float64 {
	if alpha <= 0 {
		return math.Inf(1)
	}
	var e float64
	for _, p := range targets {
		// |alpha*Pi - Pj|^2 = alpha^2 * |Pi - Pj/alpha|^2 with Pi the
		// nearest constellation point to Pj/alpha.
		_, d := wifi.NearestQAM64(p / complex(alpha, 0))
		e += alpha * alpha * d
	}
	return e
}

// OptimizeAlpha minimizes E(alpha). The paper treats E as convex (its
// E” > 0 argument); strictly, a sum of min-of-quadratics is only
// *piecewise* convex, so a pure ternary search can settle into a local
// basin. We therefore scan a dense coarse grid over the plausible range to
// bracket the global basin and refine inside it by ternary search —
// still O(M log M) per evaluation as the paper prescribes. It returns the
// optimal alpha and E(alpha).
func OptimizeAlpha(targets []complex128) (alpha, errValue float64) {
	if len(targets) == 0 {
		return 1, 0
	}
	maxAbs := 0.0
	for _, p := range targets {
		if a := cmplx.Abs(p); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1, 0
	}
	// With alpha >= maxAbs the whole target set fits inside the scaled
	// constellation's innermost ring, so the optimum lies below 2*maxAbs.
	const coarsePoints = 1024
	span := 2 * maxAbs
	step := span / coarsePoints
	bestA, bestE := step, math.Inf(1)
	for i := 1; i <= coarsePoints; i++ {
		a := float64(i) * step
		if e := QuantizationError(targets, a); e < bestE {
			bestA, bestE = a, e
		}
	}
	// Refine within the bracketing neighbours of the coarse winner.
	lo := bestA - step
	if lo <= 0 {
		lo = step / 16
	}
	hi := bestA + step
	for iter := 0; iter < 80 && hi-lo > 1e-10*maxAbs; iter++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if QuantizationError(targets, m1) <= QuantizationError(targets, m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	alpha = (lo + hi) / 2
	if e := QuantizationError(targets, alpha); e < bestE {
		return alpha, e
	}
	return bestA, bestE
}

// FrequencyShift multiplies the waveform by exp(2*pi*i*binOffset*n/64),
// moving its spectrum by binOffset OFDM subcarrier spacings (312.5 kHz
// each at 20 MHz sampling).
func FrequencyShift(wave []complex128, binOffset int) []complex128 {
	out := make([]complex128, len(wave))
	step := 2 * math.Pi * float64(binOffset) / float64(wifi.FFTSize)
	for n, v := range wave {
		out[n] = v * cmplx.Rect(1, step*float64(n))
	}
	return out
}

// Emulate produces the EmuBee waveform for a designed complex-baseband
// waveform sampled at 20 MHz (e.g. a ZigBee O-QPSK waveform from
// zigbee.Modulator with 10 samples/chip). The designed waveform is padded
// to a whole number of OFDM symbols.
func (e *Emulator) Emulate(designed []complex128) (*Result, error) {
	if len(designed) == 0 {
		return nil, ErrEmptyWaveform
	}
	nSym := (len(designed) + wifi.SymbolLen - 1) / wifi.SymbolLen
	shifted := FrequencyShift(dsp.ZeroPad(designed, nSym*wifi.SymbolLen), e.binOffset)

	// Collect the target subcarrier points of every OFDM symbol body.
	targets := make([]complex128, 0, nSym*wifi.DataSubcarriers)
	for s := 0; s < nSym; s++ {
		body := shifted[s*wifi.SymbolLen+wifi.CPLen : (s+1)*wifi.SymbolLen]
		spec, err := wifi.SpectrumOfWindow(body)
		if err != nil {
			return nil, err
		}
		targets = append(targets, spec...)
	}

	alpha := 1.0
	if e.optimize {
		alpha, _ = OptimizeAlpha(targets)
	}
	quantErr := QuantizationError(targets, alpha)

	// Quantize each target to the alpha-scaled constellation and demap to
	// hard bits (the inverse Wi-Fi chain of Fig. 1).
	coded := make([]uint8, 0, nSym*wifi.CodedBitsPerSymbol)
	for s := 0; s < nSym; s++ {
		pts := make([]complex128, wifi.DataSubcarriers)
		for i := 0; i < wifi.DataSubcarriers; i++ {
			t := targets[s*wifi.DataSubcarriers+i] // target point P_j
			q, _ := wifi.NearestQAM64(t / complex(alpha, 0))
			pts[i] = q
		}
		deinter, err := wifi.Deinterleave(wifi.DemapQAM64(pts))
		if err != nil {
			return nil, err
		}
		coded = append(coded, deinter...)
	}
	decoded, err := wifi.ViterbiDecode(coded, false)
	if err != nil {
		return nil, err
	}
	payload, err := wifi.Descramble(decoded, e.seed)
	if err != nil {
		return nil, err
	}

	// Forward chain: a stock Wi-Fi transmitter sends the recovered bits.
	scrambled, err := wifi.Scramble(payload, e.seed)
	if err != nil {
		return nil, err
	}
	recoded := wifi.ConvEncode(scrambled)
	wave := make([]complex128, 0, nSym*wifi.SymbolLen)
	for s := 0; s < nSym; s++ {
		chunk := recoded[s*wifi.CodedBitsPerSymbol : (s+1)*wifi.CodedBitsPerSymbol]
		inter, err := wifi.Interleave(chunk)
		if err != nil {
			return nil, err
		}
		pts, err := wifi.MapQAM64(inter)
		if err != nil {
			return nil, err
		}
		// The transmitter scales its constellation by alpha so the
		// emitted amplitudes match the designed spectrum.
		for i := range pts {
			pts[i] *= complex(alpha, 0)
		}
		sym, err := wifi.AssembleSymbol(pts)
		if err != nil {
			return nil, err
		}
		wave = append(wave, sym...)
	}

	// Shift back so the result sits on the ZigBee channel's baseband.
	back := FrequencyShift(wave, -e.binOffset)
	// Absolute amplitude is a free parameter (the jammer's TX gain), so
	// fidelity is measured after a least-squares complex gain match:
	// g = <designed, emitted> / <emitted, emitted>.
	evm := math.Inf(1)
	span := back[:len(designed)]
	if eE := dsp.Energy(span); eE > 0 {
		g := dsp.Correlate(designed, span) / complex(eE, 0)
		if v, err := dsp.EVM(dsp.Scale(span, g), designed); err == nil {
			evm = v
		}
	}
	return &Result{
		Alpha:      alpha,
		QuantError: quantErr,
		Bits:       payload,
		Wave:       back,
		Symbols:    nSym,
		EVM:        evm,
	}, nil
}
