package emulate

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"ctjam/internal/dsp"
	"ctjam/internal/phy/wifi"
	"ctjam/internal/phy/zigbee"
)

func randTargets(r *rand.Rand, n int, scale float64) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.NormFloat64()*scale, r.NormFloat64()*scale)
	}
	return out
}

func TestQuantizationErrorZeroOnConstellation(t *testing.T) {
	// Targets that sit exactly on the alpha-scaled constellation have
	// zero quantization error.
	pts := wifi.QAM64Points()
	const alpha = 3.7
	scaled := dsp.Scale(pts, complex(alpha, 0))
	if e := QuantizationError(scaled, alpha); e > 1e-18 {
		t.Fatalf("E(alpha) = %v, want 0", e)
	}
}

func TestQuantizationErrorInvalidAlpha(t *testing.T) {
	tg := []complex128{1}
	if !math.IsInf(QuantizationError(tg, 0), 1) {
		t.Fatal("alpha=0 must give +Inf")
	}
	if !math.IsInf(QuantizationError(tg, -1), 1) {
		t.Fatal("alpha<0 must give +Inf")
	}
}

func TestOptimizeAlphaRecoversKnownScale(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := wifi.QAM64Points()
	const want = 2.5
	targets := make([]complex128, 100)
	for i := range targets {
		targets[i] = pts[r.Intn(len(pts))] * want
	}
	alpha, e := OptimizeAlpha(targets)
	if math.Abs(alpha-want) > 0.01 {
		t.Fatalf("alpha = %v, want %v", alpha, want)
	}
	if e > 1e-6 {
		t.Fatalf("E = %v, want ~0", e)
	}
}

func TestOptimizeAlphaDegenerateInputs(t *testing.T) {
	if a, e := OptimizeAlpha(nil); a != 1 || e != 0 {
		t.Fatalf("empty targets: alpha=%v e=%v", a, e)
	}
	if a, e := OptimizeAlpha(make([]complex128, 5)); a != 1 || e != 0 {
		t.Fatalf("zero targets: alpha=%v e=%v", a, e)
	}
}

func TestOptimizeAlphaBeatsGridSearchProperty(t *testing.T) {
	// The optimizer must be at least as good as any point of a dense
	// grid. E(alpha) is only piecewise convex (min-of-quadratics), which
	// is why OptimizeAlpha brackets globally before refining; this
	// property test is what catches local-basin regressions.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		targets := randTargets(r, 60, 1+r.Float64()*5)
		alpha, e := OptimizeAlpha(targets)
		if alpha <= 0 {
			return false
		}
		for g := 0.05; g < 12; g += 0.05 {
			// Relative tolerance: micro-basins at the scale of QAM
			// decision boundaries make machine-precision global
			// optimality meaningless; "as good as any grid point to
			// within 0.1%" is the contract.
			if QuantizationError(targets, g) < e*(1-1e-3)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizedAlphaNeverWorseThanNaive(t *testing.T) {
	// The paper's claim: existing designs underuse the constellation;
	// optimizing alpha can only reduce E.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		targets := randTargets(r, 96, 0.2+2*r.Float64())
		_, e := OptimizeAlpha(targets)
		if naive := QuantizationError(targets, 1); e > naive+1e-9 {
			t.Fatalf("optimized E %v > naive E %v", e, naive)
		}
	}
}

func TestFrequencyShiftMovesSpectrum(t *testing.T) {
	// A DC tone shifted by +5 bins must land on bin 5.
	wave := make([]complex128, wifi.FFTSize)
	for i := range wave {
		wave[i] = 1
	}
	shifted := FrequencyShift(wave, 5)
	spec, err := dsp.FFT(shifted)
	if err != nil {
		t.Fatal(err)
	}
	for k := range spec {
		want := 0.0
		if k == 5 {
			want = float64(wifi.FFTSize)
		}
		if math.Abs(cmplx.Abs(spec[k])-want) > 1e-9 {
			t.Fatalf("bin %d magnitude %v, want %v", k, cmplx.Abs(spec[k]), want)
		}
	}
}

func TestFrequencyShiftRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	wave := randTargets(r, 160, 1)
	back := FrequencyShift(FrequencyShift(wave, 7), -7)
	for i := range wave {
		if cmplx.Abs(back[i]-wave[i]) > 1e-12 {
			t.Fatalf("sample %d mismatch", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(WithScramblerSeed(0)); err == nil {
		t.Fatal("zero seed: expected error")
	}
	if _, err := New(WithBinOffset(25)); err == nil {
		t.Fatal("bin offset 25: expected error")
	}
	if _, err := New(); err != nil {
		t.Fatalf("defaults: %v", err)
	}
}

func TestEmulateEmptyWaveform(t *testing.T) {
	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Emulate(nil); !errors.Is(err, ErrEmptyWaveform) {
		t.Fatalf("err = %v, want ErrEmptyWaveform", err)
	}
}

// designedZigBee builds a reference ZigBee waveform at 20 MHz sampling.
func designedZigBee(t testing.TB, symbols []uint8) []complex128 {
	t.Helper()
	m, err := zigbee.NewModulator(zigbee.DefaultSamplesPerChip)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := m.ModulateSymbols(symbols)
	if err != nil {
		t.Fatal(err)
	}
	return wave
}

func TestEmulateProducesDecodableZigBee(t *testing.T) {
	// End-to-end check of the paper's core claim: the waveform emitted
	// by a standard Wi-Fi transmitter chain is accepted by a ZigBee
	// correlation receiver with few symbol errors.
	symbols := []uint8{0, 5, 10, 15, 7, 8, 2, 13, 1, 14, 6, 9}
	designed := designedZigBee(t, symbols)

	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Emulate(designed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alpha <= 0 {
		t.Fatalf("alpha = %v", res.Alpha)
	}
	if len(res.Wave) < len(designed) {
		t.Fatalf("emulated wave too short: %d < %d", len(res.Wave), len(designed))
	}

	m, err := zigbee.NewModulator(zigbee.DefaultSamplesPerChip)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.DemodulateSymbols(res.Wave, len(symbols))
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range symbols {
		if got[i] != symbols[i] {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(symbols)); frac > 0.25 {
		t.Fatalf("emulated waveform symbol error rate %.2f too high (%d/%d)", frac, errs, len(symbols))
	}
}

func TestEmulateOptimizedBeatsNaive(t *testing.T) {
	// Ablation: alpha optimization must yield lower quantization error
	// and no worse EVM than the naive alpha=1 pipeline.
	symbols := []uint8{3, 12, 6, 9, 0, 15, 5, 10}
	designed := designedZigBee(t, symbols)

	opt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	naive, err := New(WithAlphaOptimization(false))
	if err != nil {
		t.Fatal(err)
	}
	resOpt, err := opt.Emulate(designed)
	if err != nil {
		t.Fatal(err)
	}
	resNaive, err := naive.Emulate(designed)
	if err != nil {
		t.Fatal(err)
	}
	if resNaive.Alpha != 1 {
		t.Fatalf("naive alpha = %v, want 1", resNaive.Alpha)
	}
	if resOpt.QuantError > resNaive.QuantError+1e-9 {
		t.Fatalf("optimized quant error %v > naive %v", resOpt.QuantError, resNaive.QuantError)
	}
	// With these O-QPSK targets the improvement should be substantial,
	// not marginal (the naive design underuses the constellation).
	if resOpt.QuantError > 0.9*resNaive.QuantError {
		t.Fatalf("optimized quant error %v not clearly below naive %v", resOpt.QuantError, resNaive.QuantError)
	}
}

func TestEmulateBitsRegenerateWave(t *testing.T) {
	// The Result.Bits must regenerate Result.Wave through the public
	// Wi-Fi chain (up to the alpha scale and frequency shift applied in
	// Emulate). We verify the bit count is consistent with the symbol
	// count.
	designed := designedZigBee(t, []uint8{1, 2, 3, 4})
	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Emulate(designed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bits) != res.Symbols*wifi.BitsPerOFDMSymbolPayload {
		t.Fatalf("bit count %d for %d symbols", len(res.Bits), res.Symbols)
	}
	if len(res.Wave) != res.Symbols*wifi.SymbolLen {
		t.Fatalf("wave length %d for %d symbols", len(res.Wave), res.Symbols)
	}
}

func TestEmulateEVMReasonable(t *testing.T) {
	// The emulated waveform should track the designed one well: EVM
	// below 1 (100%) by a clear margin; typical values land near 0.3-0.6
	// because pilots, guard bands and coding constrain the spectrum.
	designed := designedZigBee(t, []uint8{0, 7, 14, 3, 9, 11})
	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Emulate(designed)
	if err != nil {
		t.Fatal(err)
	}
	if res.EVM >= 1.0 {
		t.Fatalf("EVM = %v, expected < 1", res.EVM)
	}
}

func BenchmarkOptimizeAlpha(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	targets := randTargets(r, 48*4, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimizeAlpha(targets)
	}
}

func BenchmarkEmulateSymbol(b *testing.B) {
	m, err := zigbee.NewModulator(zigbee.DefaultSamplesPerChip)
	if err != nil {
		b.Fatal(err)
	}
	wave, err := m.ModulateSymbols([]uint8{4, 8})
	if err != nil {
		b.Fatal(err)
	}
	e, err := New()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Emulate(wave); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEmulatedSpectrumSitsOnZigBeeBand(t *testing.T) {
	// Spectral validation: after shifting back to baseband, the emulated
	// waveform's energy must concentrate inside the ZigBee channel
	// (±1 MHz around DC = ±3.2 OFDM bins at 312.5 kHz spacing), just
	// like the designed O-QPSK waveform's.
	designed := designedZigBee(t, []uint8{0, 5, 10, 15, 7, 8, 2, 13})
	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Emulate(designed)
	if err != nil {
		t.Fatal(err)
	}
	const nfft = 64
	designedPSD, err := dsp.PSD(designed, nfft)
	if err != nil {
		t.Fatal(err)
	}
	emulatedPSD, err := dsp.PSD(res.Wave, nfft)
	if err != nil {
		t.Fatal(err)
	}
	// ±5 bins around DC ≈ ±1.56 MHz covers the 2 MHz ZigBee channel.
	designedFrac, err := dsp.BandFraction(designedPSD, -5, 5)
	if err != nil {
		t.Fatal(err)
	}
	emulatedFrac, err := dsp.BandFraction(emulatedPSD, -5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if designedFrac < 0.85 {
		t.Fatalf("designed in-band fraction %.3f (sanity check failed)", designedFrac)
	}
	// The convolutional-coding constraint smears a large share of the
	// emulated energy across the whole 20 MHz Wi-Fi band (real EmuBee
	// signals do the same; the victim's 2 MHz channel filter removes
	// it). The in-band share must still be well above the uniform
	// 11/64 ≈ 0.17 — i.e. the emulation concentrates deliberately — but
	// below the clean designed waveform's.
	if emulatedFrac < 0.30 {
		t.Fatalf("emulated in-band fraction %.3f barely above uniform; emulation not concentrating", emulatedFrac)
	}
	if emulatedFrac > designedFrac {
		t.Fatalf("emulated in-band fraction %.3f exceeds designed %.3f; leakage model suspicious",
			emulatedFrac, designedFrac)
	}
}
