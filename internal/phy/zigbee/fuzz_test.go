package zigbee

import (
	"bytes"
	"testing"
)

// FuzzZigbeeFrameDecode drives DecodeFrame with arbitrary byte streams. The
// decoder must never panic, and any stream it accepts must describe a
// well-formed frame: bounded payload, matching FCS, and a re-encode that
// decodes back to the same payload.
func FuzzZigbeeFrameDecode(f *testing.F) {
	valid, err := EncodeFrame([]byte("hello zigbee"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x00, SFD})                   // SFD with nothing after it
	f.Add([]byte{0x00, SFD, 0x02, 0x00, 0x00}) // empty payload, zero FCS
	f.Add(valid[:len(valid)-1])                // truncated FCS
	corrupt := append([]byte(nil), valid...)
	corrupt[8] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, stream []byte) {
		payload, err := DecodeFrame(stream)
		if err != nil {
			return
		}
		if len(payload)+FCSLen > MaxPayload {
			t.Fatalf("accepted %d-byte payload (max %d)", len(payload), MaxPayload-FCSLen)
		}
		reenc, err := EncodeFrame(payload)
		if err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		again, err := DecodeFrame(reenc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatalf("roundtrip changed payload: %x != %x", again, payload)
		}
	})
}
