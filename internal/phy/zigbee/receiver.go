package zigbee

// This file models the victim receiver's packet-processing state machine,
// the basis of the paper's stealthiness argument (§II-A2, §II-B): a ZigBee
// radio that detects a preamble commits hardware to synchronization and
// decoding. A signal with ZigBee chip structure but no valid frame behind
// it — EmuBee — occupies the receiver without ever producing an event a
// defender could log, whereas conventional jamming leaves decodable
// packets or CRC failures behind.

// Receiver states.
const (
	stateIdle = iota
	stateSync // preamble acquired, hunting for the SFD
	stateLen  // SFD seen, reading the PHY header
	statePayload
)

// preambleSymbols is the number of consecutive zero symbols that trigger
// synchronization (the 4-byte preamble is 8 zero symbols).
const preambleSymbols = 8

// sfdTimeoutSymbols bounds how long the receiver hunts for a delimiter
// after acquiring a preamble before giving up.
const sfdTimeoutSymbols = 16

// ReceiverReport summarizes what happened while processing a symbol stream,
// split into defender-visible events (packets, CRC failures) and the
// invisible cost EmuBee exploits (busy time, phantom synchronizations).
type ReceiverReport struct {
	// SymbolsProcessed is the stream length.
	SymbolsProcessed int
	// PacketsDecoded counts frames that passed the FCS.
	PacketsDecoded int
	// CRCFailures counts frames that parsed but failed the FCS —
	// loggable evidence of interference.
	CRCFailures int
	// PhantomSyncs counts preamble acquisitions that never produced a
	// delimiter — the receiver was busied for nothing and, crucially,
	// has nothing to log.
	PhantomSyncs int
	// BusySymbols counts symbols spent outside the idle state.
	BusySymbols int
}

// BusyFraction is the share of the stream the receiver spent occupied.
func (r ReceiverReport) BusyFraction() float64 {
	if r.SymbolsProcessed == 0 {
		return 0
	}
	return float64(r.BusySymbols) / float64(r.SymbolsProcessed)
}

// DetectableEvents counts the log entries a defender's IDS would see.
func (r ReceiverReport) DetectableEvents() int {
	return r.PacketsDecoded + r.CRCFailures
}

// ProcessSymbolStream runs the receiver state machine over a demodulated
// symbol stream (values 0..15) and reports the outcome.
func ProcessSymbolStream(stream []uint8) ReceiverReport {
	var (
		report    ReceiverReport
		state     = stateIdle
		zeroRun   int
		sfdWait   int
		sfdLow    = uint8(SFD & 0x0F)
		sfdHigh   = uint8(SFD >> 4)
		prevSym   = uint8(0xFF)
		psduLen   int
		collected []uint8
	)
	report.SymbolsProcessed = len(stream)

	for _, sym := range stream {
		if state != stateIdle {
			report.BusySymbols++
		}
		switch state {
		case stateIdle:
			if sym == 0 {
				zeroRun++
				if zeroRun >= preambleSymbols {
					state = stateSync
					sfdWait = 0
					prevSym = 0
					report.BusySymbols++ // this symbol committed the radio
				}
			} else {
				zeroRun = 0
			}
		case stateSync:
			// The SFD byte 0x7A arrives low nibble first: symbol
			// 0xA then 0x7.
			if prevSym == sfdLow && sym == sfdHigh {
				state = stateLen
				collected = collected[:0]
				break
			}
			prevSym = sym
			sfdWait++
			if sfdWait >= sfdTimeoutSymbols {
				report.PhantomSyncs++
				state = stateIdle
				zeroRun = 0
			}
		case stateLen:
			collected = append(collected, sym)
			if len(collected) == 2 {
				psduLen = int(collected[0]|collected[1]<<4) & 0x7F
				if psduLen < FCSLen {
					// Malformed header: another phantom.
					report.PhantomSyncs++
					state = stateIdle
					zeroRun = 0
					break
				}
				collected = collected[:0]
				state = statePayload
			}
		case statePayload:
			collected = append(collected, sym)
			if len(collected) == 2*psduLen {
				psdu, err := SymbolsToBytes(collected)
				if err == nil && len(psdu) >= FCSLen {
					payload := psdu[:len(psdu)-FCSLen]
					got := uint16(psdu[len(psdu)-2]) | uint16(psdu[len(psdu)-1])<<8
					if CRC16(payload) == got {
						report.PacketsDecoded++
					} else {
						report.CRCFailures++
					}
				} else {
					report.CRCFailures++
				}
				state = stateIdle
				zeroRun = 0
			}
		}
	}
	// A stream ending mid-acquisition is a phantom too.
	if state == stateSync {
		report.PhantomSyncs++
	}
	return report
}
