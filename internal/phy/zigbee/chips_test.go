package zigbee

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// wantChips is the literal IEEE 802.15.4-2020 Table 10-14 symbol-to-chip
// mapping, used to verify the generated table.
var wantChips = [SymbolCount]string{
	"11011001110000110101001000101110",
	"11101101100111000011010100100010",
	"00101110110110011100001101010010",
	"00100010111011011001110000110101",
	"01010010001011101101100111000011",
	"00110101001000101110110110011100",
	"11000011010100100010111011011001",
	"10011100001101010010001011101101",
	"10001100100101100000011101111011",
	"10111000110010010110000001110111",
	"01111011100011001001011000000111",
	"01110111101110001100100101100000",
	"00000111011110111000110010010110",
	"01100000011101111011100011001001",
	"10010110000001110111101110001100",
	"11001001011000000111011110111000",
}

func TestChipTableMatchesStandard(t *testing.T) {
	for s := 0; s < SymbolCount; s++ {
		chips, err := Chips(s)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < ChipsPerSymbol; c++ {
			want := uint8(0)
			if wantChips[s][c] == '1' {
				want = 1
			}
			if chips[c] != want {
				t.Fatalf("symbol %d chip %d = %d, want %d", s, c, chips[c], want)
			}
		}
	}
}

func TestChipsRejectsOutOfRange(t *testing.T) {
	if _, err := Chips(-1); err == nil {
		t.Error("Chips(-1): expected error")
	}
	if _, err := Chips(16); err == nil {
		t.Error("Chips(16): expected error")
	}
}

func TestSpreadDespreadRoundTrip(t *testing.T) {
	symbols := []uint8{0, 1, 7, 8, 15, 3}
	chips, err := Spread(symbols)
	if err != nil {
		t.Fatal(err)
	}
	if len(chips) != len(symbols)*ChipsPerSymbol {
		t.Fatalf("chip count = %d", len(chips))
	}
	back, err := Despread(chips)
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if back[i] != symbols[i] {
			t.Fatalf("symbol %d: got %d want %d", i, back[i], symbols[i])
		}
	}
}

func TestSpreadRejectsBadSymbol(t *testing.T) {
	if _, err := Spread([]uint8{0, 16}); err == nil {
		t.Fatal("Spread with symbol 16: expected error")
	}
}

func TestDespreadRejectsBadLength(t *testing.T) {
	if _, err := Despread(make([]uint8, 33)); err == nil {
		t.Fatal("Despread(33 chips): expected error")
	}
}

func TestMinInterSymbolDistance(t *testing.T) {
	// The 802.15.4 sequence family has a minimum pairwise Hamming
	// distance of 12, the margin that gives DSSS its noise robustness.
	if got := MinInterSymbolDistance(); got != 12 {
		t.Fatalf("MinInterSymbolDistance = %d, want 12", got)
	}
}

func TestDespreadToleratesChipErrorsProperty(t *testing.T) {
	// With fewer than MinInterSymbolDistance/2 chip errors, despreading
	// must still recover the symbol.
	f := func(seed int64, symSel, nErr uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := int(symSel % SymbolCount)
		errs := int(nErr % 6) // 0..5 < 12/2
		chips, err := Chips(s)
		if err != nil {
			return false
		}
		flipped := r.Perm(ChipsPerSymbol)[:errs]
		for _, c := range flipped {
			chips[c] ^= 1
		}
		got, _, err := NearestSymbol(chips)
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingToSymbol(t *testing.T) {
	chips, err := Chips(5)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := HammingToSymbol(chips, 5); err != nil || d != 0 {
		t.Fatalf("self distance = %d, %v", d, err)
	}
	chips[0] ^= 1
	if d, _ := HammingToSymbol(chips, 5); d != 1 {
		t.Fatalf("distance after one flip = %d, want 1", d)
	}
	if _, err := HammingToSymbol(chips[:10], 5); err == nil {
		t.Fatal("short chips: expected error")
	}
	if _, err := HammingToSymbol(chips, 99); err == nil {
		t.Fatal("bad symbol: expected error")
	}
}

func TestNearestSymbolRejectsBadLength(t *testing.T) {
	if _, _, err := NearestSymbol(make([]uint8, 31)); err == nil {
		t.Fatal("expected error")
	}
}

func TestBytesToSymbolsRoundTrip(t *testing.T) {
	data := []byte{0x00, 0x7A, 0xFF, 0x12, 0xAB}
	syms := BytesToSymbols(data)
	if len(syms) != 2*len(data) {
		t.Fatalf("symbol count = %d", len(syms))
	}
	// Low nibble first: 0x7A -> A, 7.
	if syms[2] != 0xA || syms[3] != 0x7 {
		t.Fatalf("0x7A -> %d,%d want 10,7", syms[2], syms[3])
	}
	back, err := SymbolsToBytes(syms)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, back[i], data[i])
		}
	}
}

func TestSymbolsToBytesErrors(t *testing.T) {
	if _, err := SymbolsToBytes([]uint8{1}); err == nil {
		t.Fatal("odd count: expected error")
	}
	if _, err := SymbolsToBytes([]uint8{1, 16}); err == nil {
		t.Fatal("out-of-range symbol: expected error")
	}
}

func TestBytesSymbolsRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		back, err := SymbolsToBytes(BytesToSymbols(data))
		if err != nil {
			return false
		}
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
