package zigbee

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ctjam/internal/dsp"
)

func TestNewModulatorValidation(t *testing.T) {
	tests := []struct {
		give    int
		wantErr bool
	}{
		{-2, true},
		{0, true},
		{1, true},
		{3, true},
		{2, false},
		{10, false},
	}
	for _, tt := range tests {
		_, err := NewModulator(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("NewModulator(%d) err = %v, wantErr %v", tt.give, err, tt.wantErr)
		}
	}
}

func TestModulatorSampleRate(t *testing.T) {
	m, err := NewModulator(DefaultSamplesPerChip)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SampleRateHz(); got != 20e6 {
		t.Fatalf("SampleRateHz = %v, want 20 MHz", got)
	}
}

func TestModulateChipRoundTrip(t *testing.T) {
	m, err := NewModulator(DefaultSamplesPerChip)
	if err != nil {
		t.Fatal(err)
	}
	chips := []uint8{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1}
	wave := m.Modulate(chips)
	if len(wave) != m.WaveformLen(len(chips)) {
		t.Fatalf("waveform length %d, want %d", len(wave), m.WaveformLen(len(chips)))
	}
	got, err := m.DemodulateChips(wave, len(chips))
	if err != nil {
		t.Fatal(err)
	}
	for i := range chips {
		if got[i] != chips[i] {
			t.Fatalf("chip %d: got %d want %d", i, got[i], chips[i])
		}
	}
}

func TestModulateChipRoundTripProperty(t *testing.T) {
	m, err := NewModulator(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nc := 2 + int(n%62)
		chips := make([]uint8, nc)
		for i := range chips {
			chips[i] = uint8(r.Intn(2))
		}
		wave := m.Modulate(chips)
		got, err := m.DemodulateChips(wave, nc)
		if err != nil {
			return false
		}
		for i := range chips {
			if got[i] != chips[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDemodulateChipsTooShort(t *testing.T) {
	m, err := NewModulator(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DemodulateChips(make([]complex128, 10), 8); err == nil {
		t.Fatal("expected error for short waveform")
	}
}

func TestSymbolWaveformRoundTripCleanChannel(t *testing.T) {
	m, err := NewModulator(DefaultSamplesPerChip)
	if err != nil {
		t.Fatal(err)
	}
	symbols := []uint8{0, 5, 10, 15, 7, 8, 2, 13}
	wave, err := m.ModulateSymbols(symbols)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.DemodulateSymbols(wave, len(symbols))
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if got[i] != symbols[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], symbols[i])
		}
	}
}

func TestSymbolDetectionUnderNoise(t *testing.T) {
	// Coherent 32-chip correlation should survive substantial AWGN.
	m, err := NewModulator(4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	symbols := make([]uint8, 40)
	for i := range symbols {
		symbols[i] = uint8(r.Intn(16))
	}
	wave, err := m.ModulateSymbols(symbols)
	if err != nil {
		t.Fatal(err)
	}
	sigPow := dsp.Power(wave)
	// 0 dB SNR per sample: sigma^2 = signal power.
	sigma := math.Sqrt(sigPow / 2)
	noisy := make([]complex128, len(wave))
	for i, v := range wave {
		noisy[i] = v + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	got, err := m.DemodulateSymbols(noisy, len(symbols))
	if err != nil {
		t.Fatal(err)
	}
	errors := 0
	for i := range symbols {
		if got[i] != symbols[i] {
			errors++
		}
	}
	if errors > 2 {
		t.Fatalf("%d/%d symbol errors at 0 dB SNR; DSSS should cope", errors, len(symbols))
	}
}

func TestDemodulateSymbolsTooShort(t *testing.T) {
	m, err := NewModulator(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DemodulateSymbols(make([]complex128, 100), 2); err == nil {
		t.Fatal("expected error")
	}
}

func TestWaveformEnvelopeIsBounded(t *testing.T) {
	// O-QPSK with half-sine shaping is (near) constant envelope; the
	// magnitude never exceeds sqrt(2) with unit pulses.
	m, err := NewModulator(8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	chips := make([]uint8, 128)
	for i := range chips {
		chips[i] = uint8(r.Intn(2))
	}
	wave := m.Modulate(chips)
	if peak := dsp.MaxAbs(wave); peak > math.Sqrt2+1e-9 {
		t.Fatalf("envelope peak %v exceeds sqrt(2)", peak)
	}
}

func TestEndToEndFrameOverWaveform(t *testing.T) {
	// Full stack: payload -> frame -> symbols -> chips -> waveform ->
	// chips -> symbols -> frame -> payload.
	m, err := NewModulator(4)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("sensor#3 temp=22.5")
	frame, err := EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	syms := BytesToSymbols(frame)
	wave, err := m.ModulateSymbols(syms)
	if err != nil {
		t.Fatal(err)
	}
	gotSyms, err := m.DemodulateSymbols(wave, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	gotFrame, err := SymbolsToBytes(gotSyms)
	if err != nil {
		t.Fatal(err)
	}
	gotPayload, err := DecodeFrame(gotFrame)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotPayload) != string(payload) {
		t.Fatalf("payload = %q, want %q", gotPayload, payload)
	}
}

func BenchmarkModulateSymbol(b *testing.B) {
	m, err := NewModulator(DefaultSamplesPerChip)
	if err != nil {
		b.Fatal(err)
	}
	syms := []uint8{3, 9, 12, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ModulateSymbols(syms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDemodulateSymbol(b *testing.B) {
	m, err := NewModulator(DefaultSamplesPerChip)
	if err != nil {
		b.Fatal(err)
	}
	syms := []uint8{3, 9, 12, 0}
	wave, err := m.ModulateSymbols(syms)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.DemodulateSymbols(wave, len(syms)); err != nil {
			b.Fatal(err)
		}
	}
}
