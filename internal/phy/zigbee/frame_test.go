package zigbee

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCRC16KnownVector(t *testing.T) {
	// IEEE 802.15.4 FCS example: empty data has CRC 0.
	if got := CRC16(nil); got != 0 {
		t.Fatalf("CRC16(nil) = %#x, want 0", got)
	}
	// CRC must change when data changes.
	a := CRC16([]byte{0x01, 0x02, 0x03})
	b := CRC16([]byte{0x01, 0x02, 0x04})
	if a == b {
		t.Fatal("CRC collision on 1-byte change")
	}
}

func TestEncodeDecodeFrameRoundTrip(t *testing.T) {
	payload := []byte("hello zigbee network")
	frame, err := EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Check on-air layout: preamble, SFD, length.
	for i := 0; i < PreambleLen; i++ {
		if frame[i] != 0 {
			t.Fatalf("preamble byte %d = %#x", i, frame[i])
		}
	}
	if frame[PreambleLen] != SFD {
		t.Fatalf("SFD = %#x", frame[PreambleLen])
	}
	if int(frame[PreambleLen+1]) != len(payload)+FCSLen {
		t.Fatalf("length byte = %d", frame[PreambleLen+1])
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
}

func TestEncodeFrameTooLong(t *testing.T) {
	if _, err := EncodeFrame(make([]byte, 126)); !errors.Is(err, ErrPayloadTooLong) {
		t.Fatalf("err = %v, want ErrPayloadTooLong", err)
	}
	// 125 payload + 2 FCS = 127 is the maximum and must succeed.
	if _, err := EncodeFrame(make([]byte, 125)); err != nil {
		t.Fatalf("125-byte payload: %v", err)
	}
}

func TestDecodeFrameNoSFD(t *testing.T) {
	// Preamble-only stream: the stealthy EmuBee case — receiver locks on
	// but never finds a delimiter.
	stream := make([]byte, 32)
	if _, err := DecodeFrame(stream); !errors.Is(err, ErrNoSFD) {
		t.Fatalf("err = %v, want ErrNoSFD", err)
	}
}

func TestDecodeFrameCorruptFCS(t *testing.T) {
	frame, err := EncodeFrame([]byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-3] ^= 0xFF // corrupt a payload byte
	if _, err := DecodeFrame(frame); !errors.Is(err, ErrBadFCS) {
		t.Fatalf("err = %v, want ErrBadFCS", err)
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	frame, err := EncodeFrame([]byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(frame[:len(frame)-2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if _, err := DecodeFrame(frame[:PreambleLen+1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("header-only err = %v, want ErrTruncated", err)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > MaxPayload-FCSLen {
			payload = payload[:MaxPayload-FCSLen]
		}
		frame, err := EncodeFrame(payload)
		if err != nil {
			return false
		}
		got, err := DecodeFrame(frame)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCRCDetectsSingleBitErrorsProperty(t *testing.T) {
	// CRC-16 detects all single-bit errors.
	f := func(payload []byte, pos uint16) bool {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		orig := CRC16(payload)
		mut := make([]byte, len(payload))
		copy(mut, payload)
		bit := int(pos) % (len(payload) * 8)
		mut[bit/8] ^= 1 << (bit % 8)
		return CRC16(mut) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameAirtime(t *testing.T) {
	// 127-byte PSDU frame: (4+1+1+125+2)*8 bits / 250 kb/s = 4.256 ms.
	got := FrameAirtime(125)
	want := 133.0 * 8 / 250000
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("FrameAirtime(125) = %v, want %v", got, want)
	}
	if FrameAirtime(10) >= got {
		t.Fatal("airtime must grow with payload")
	}
}
