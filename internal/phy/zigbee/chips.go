// Package zigbee implements the IEEE 802.15.4 2.4 GHz physical layer used by
// ZigBee devices: the 16-ary direct-sequence spread spectrum (DSSS) symbol to
// chip mapping, O-QPSK modulation with half-sine pulse shaping, a coherent
// correlation demodulator, and the frame format from Fig. 3 of the paper
// (preamble, start-of-frame delimiter 0x7A, PHY header, PSDU with FCS).
//
// The 2.4 GHz PHY sends 250 kb/s as 62.5 ksymbol/s; each 4-bit symbol is
// spread to a 32-chip pseudo-noise sequence at 2 Mchip/s.
package zigbee

import "fmt"

const (
	// ChipsPerSymbol is the DSSS spreading factor of the 2.4 GHz PHY.
	ChipsPerSymbol = 32
	// SymbolCount is the number of data symbols (4 bits each).
	SymbolCount = 16
	// ChipRateHz is the 2.4 GHz PHY chip rate.
	ChipRateHz = 2_000_000
	// SymbolRateHz is the symbol rate (62.5 ksymbol/s).
	SymbolRateHz = ChipRateHz / ChipsPerSymbol
	// BitRateHz is the payload bit rate (250 kb/s).
	BitRateHz = 250_000
	// NumChannels is the number of 802.15.4 channels on the 2.4 GHz band
	// (channels 11-26).
	NumChannels = 16
)

// baseChips is the chip sequence of symbol 0 from IEEE 802.15.4-2020
// Table 10-14, chips c0..c31 left to right. Symbols 1-7 are right cyclic
// shifts by 4 chips per step; symbols 8-15 are the same sequences with every
// odd-indexed chip inverted.
const baseChips = "11011001110000110101001000101110"

// chipTable holds the 16 spreading sequences; chipTable[s][c] is chip c of
// symbol s as 0 or 1.
var chipTable = buildChipTable()

func buildChipTable() [SymbolCount][ChipsPerSymbol]uint8 {
	var table [SymbolCount][ChipsPerSymbol]uint8
	var base [ChipsPerSymbol]uint8
	for i := 0; i < ChipsPerSymbol; i++ {
		if baseChips[i] == '1' {
			base[i] = 1
		}
	}
	for s := 0; s < 8; s++ {
		shift := 4 * s
		for c := 0; c < ChipsPerSymbol; c++ {
			table[s][c] = base[(c-shift+ChipsPerSymbol)%ChipsPerSymbol]
		}
	}
	for s := 8; s < 16; s++ {
		for c := 0; c < ChipsPerSymbol; c++ {
			v := table[s-8][c]
			if c%2 == 1 {
				v ^= 1
			}
			table[s][c] = v
		}
	}
	return table
}

// Chips returns a copy of the 32-chip spreading sequence for symbol s
// (0..15).
func Chips(s int) ([]uint8, error) {
	if s < 0 || s >= SymbolCount {
		return nil, fmt.Errorf("zigbee: symbol %d out of range [0,15]", s)
	}
	out := make([]uint8, ChipsPerSymbol)
	copy(out, chipTable[s][:])
	return out, nil
}

// Spread maps a symbol stream (values 0..15) to its chip stream.
func Spread(symbols []uint8) ([]uint8, error) {
	out := make([]uint8, 0, len(symbols)*ChipsPerSymbol)
	for i, s := range symbols {
		if s >= SymbolCount {
			return nil, fmt.Errorf("zigbee: symbol %d at index %d out of range", s, i)
		}
		out = append(out, chipTable[s][:]...)
	}
	return out, nil
}

// HammingToSymbol returns the Hamming distance between the 32 chips and the
// spreading sequence of symbol s.
func HammingToSymbol(chips []uint8, s int) (int, error) {
	if len(chips) != ChipsPerSymbol {
		return 0, fmt.Errorf("zigbee: got %d chips, want %d", len(chips), ChipsPerSymbol)
	}
	if s < 0 || s >= SymbolCount {
		return 0, fmt.Errorf("zigbee: symbol %d out of range", s)
	}
	d := 0
	for c := 0; c < ChipsPerSymbol; c++ {
		if (chips[c] & 1) != chipTable[s][c] {
			d++
		}
	}
	return d, nil
}

// NearestSymbol despreads one 32-chip block to the symbol whose spreading
// sequence has minimum Hamming distance, returning the symbol and the
// distance. Ties resolve to the lowest symbol index.
func NearestSymbol(chips []uint8) (symbol, distance int, err error) {
	if len(chips) != ChipsPerSymbol {
		return 0, 0, fmt.Errorf("zigbee: got %d chips, want %d", len(chips), ChipsPerSymbol)
	}
	best, bestD := 0, ChipsPerSymbol+1
	for s := 0; s < SymbolCount; s++ {
		d := 0
		for c := 0; c < ChipsPerSymbol; c++ {
			if (chips[c] & 1) != chipTable[s][c] {
				d++
			}
		}
		if d < bestD {
			best, bestD = s, d
		}
	}
	return best, bestD, nil
}

// Despread converts a chip stream (length multiple of 32) back to symbols by
// minimum-distance despreading.
func Despread(chips []uint8) ([]uint8, error) {
	if len(chips)%ChipsPerSymbol != 0 {
		return nil, fmt.Errorf("zigbee: chip stream length %d not a multiple of %d", len(chips), ChipsPerSymbol)
	}
	out := make([]uint8, 0, len(chips)/ChipsPerSymbol)
	for i := 0; i < len(chips); i += ChipsPerSymbol {
		s, _, err := NearestSymbol(chips[i : i+ChipsPerSymbol])
		if err != nil {
			return nil, err
		}
		out = append(out, uint8(s))
	}
	return out, nil
}

// MinInterSymbolDistance returns the minimum pairwise Hamming distance among
// the 16 spreading sequences. It quantifies the DSSS error-correcting margin.
func MinInterSymbolDistance() int {
	minD := ChipsPerSymbol
	for a := 0; a < SymbolCount; a++ {
		for b := a + 1; b < SymbolCount; b++ {
			d := 0
			for c := 0; c < ChipsPerSymbol; c++ {
				if chipTable[a][c] != chipTable[b][c] {
					d++
				}
			}
			if d < minD {
				minD = d
			}
		}
	}
	return minD
}

// BytesToSymbols expands bytes to 4-bit symbols, low nibble first, per
// IEEE 802.15.4 bit ordering.
func BytesToSymbols(data []byte) []uint8 {
	out := make([]uint8, 0, len(data)*2)
	for _, b := range data {
		out = append(out, b&0x0F, b>>4)
	}
	return out
}

// SymbolsToBytes packs 4-bit symbols (low nibble first) back into bytes. The
// symbol count must be even and every symbol < 16.
func SymbolsToBytes(symbols []uint8) ([]byte, error) {
	return SymbolsToBytesInto(nil, symbols)
}

// SymbolsToBytesInto is SymbolsToBytes packing into dst's backing array when
// it is large enough, so the field simulator's batched receive path packs one
// delivery after another through a single scratch buffer. dst may be nil.
func SymbolsToBytesInto(dst []byte, symbols []uint8) ([]byte, error) {
	if len(symbols)%2 != 0 {
		return nil, fmt.Errorf("zigbee: odd symbol count %d", len(symbols))
	}
	n := len(symbols) / 2
	var out []byte
	if cap(dst) >= n {
		out = dst[:0]
	} else {
		out = make([]byte, 0, n)
	}
	for i := 0; i < len(symbols); i += 2 {
		lo, hi := symbols[i], symbols[i+1]
		if lo >= 16 || hi >= 16 {
			return nil, fmt.Errorf("zigbee: symbol out of range at %d", i)
		}
		out = append(out, lo|hi<<4)
	}
	return out, nil
}
