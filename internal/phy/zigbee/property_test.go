package zigbee

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// The full PHY stack — frame encode, byte→symbol map, DSSS spreading,
// O-QPSK modulation, AWGN channel, chip demodulation, despreading, frame
// decode — must return the original payload for random payloads across a
// range of SNRs. DSSS leaves ample margin at these SNRs, so recovery is
// exact, not probabilistic.
func TestFrameWaveformRoundTripUnderNoiseProperty(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	m, err := NewModulator(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, snrDB := range []float64{30, 15, 10} {
		for trial := 0; trial < 8; trial++ {
			payload := make([]byte, 1+r.Intn(MaxPayload-FCSLen))
			r.Read(payload)

			frame, err := EncodeFrame(payload)
			if err != nil {
				t.Fatal(err)
			}
			chips, err := Spread(BytesToSymbols(frame))
			if err != nil {
				t.Fatal(err)
			}
			wave := m.Modulate(chips)

			// Complex AWGN at the requested SNR against the unit-envelope
			// O-QPSK waveform.
			sigma := math.Pow(10, -snrDB/20) / math.Sqrt2
			noisy := make([]complex128, len(wave))
			for i, s := range wave {
				noisy[i] = s + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
			}

			gotChips, err := m.DemodulateChips(noisy, len(chips))
			if err != nil {
				t.Fatal(err)
			}
			symbols, err := Despread(gotChips)
			if err != nil {
				t.Fatal(err)
			}
			gotFrame, err := SymbolsToBytes(symbols)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeFrame(gotFrame)
			if err != nil {
				t.Fatalf("snr %v dB trial %d: decode failed: %v", snrDB, trial, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("snr %v dB trial %d: payload corrupted", snrDB, trial)
			}
		}
	}
}
