package zigbee

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness suite: the frame codec and receiver state machine face
// attacker-controlled input by design (that is the whole point of the
// paper's jammer), so no input may panic them and every malformed input
// must surface as an error or a clean report.

func TestDecodeFrameNeverPanicsProperty(t *testing.T) {
	f := func(stream []byte) bool {
		// Must not panic; error or payload are both acceptable.
		payload, err := DecodeFrame(stream)
		if err == nil && payload == nil {
			return false // success must yield a (possibly empty) payload
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFrameRandomStreamsRarelyValidate(t *testing.T) {
	// A CRC-16 behind a framed format should reject essentially all
	// random byte streams.
	rng := rand.New(rand.NewSource(1))
	accepted := 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		stream := make([]byte, 64)
		if _, err := rng.Read(stream); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeFrame(stream); err == nil {
			accepted++
		}
	}
	if accepted > 1 {
		t.Fatalf("%d/%d random streams decoded as valid frames", accepted, trials)
	}
}

func TestProcessSymbolStreamNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		stream := make([]uint8, len(raw))
		for i, b := range raw {
			stream[i] = b & 0x0F
		}
		rep := ProcessSymbolStream(stream)
		// Invariants: busy time bounded by stream length; counters
		// non-negative.
		if rep.BusySymbols < 0 || rep.BusySymbols > rep.SymbolsProcessed {
			return false
		}
		if rep.PacketsDecoded < 0 || rep.CRCFailures < 0 || rep.PhantomSyncs < 0 {
			return false
		}
		return rep.SymbolsProcessed == len(stream)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessSymbolStreamBitflippedFramesAccounted(t *testing.T) {
	// Every corrupted frame must land in exactly one bucket: decoded,
	// CRC failure, or phantom.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		frame, err := EncodeFrame([]byte{1, 2, 3, 4, 5, 6})
		if err != nil {
			t.Fatal(err)
		}
		syms := BytesToSymbols(frame)
		// Flip one random symbol nibble.
		pos := rng.Intn(len(syms))
		syms[pos] ^= uint8(1 + rng.Intn(15))
		rep := ProcessSymbolStream(syms)
		total := rep.PacketsDecoded + rep.CRCFailures + rep.PhantomSyncs
		if total == 0 && rep.BusySymbols == 0 {
			// Corrupting the preamble region may suppress sync
			// entirely; that is legal only for early positions.
			if pos >= PreambleLen*2 {
				t.Fatalf("trial %d: flip at %d produced no receiver activity", trial, pos)
			}
			continue
		}
		if total > 2 {
			t.Fatalf("trial %d: one frame produced %d events (%+v)", trial, total, rep)
		}
	}
}

func TestSpreadDespreadAllSymbolsExhaustive(t *testing.T) {
	// Exhaustive: every symbol survives a spread/despread round trip,
	// alone and in every adjacent pair.
	for a := uint8(0); a < 16; a++ {
		for b := uint8(0); b < 16; b++ {
			chips, err := Spread([]uint8{a, b})
			if err != nil {
				t.Fatal(err)
			}
			back, err := Despread(chips)
			if err != nil {
				t.Fatal(err)
			}
			if back[0] != a || back[1] != b {
				t.Fatalf("pair (%d,%d) -> (%d,%d)", a, b, back[0], back[1])
			}
		}
	}
}

func TestModulatorExtremeOversampling(t *testing.T) {
	// Large even oversampling factors must round-trip too.
	m, err := NewModulator(32)
	if err != nil {
		t.Fatal(err)
	}
	chips := []uint8{1, 0, 0, 1, 1, 1, 0, 1}
	got, err := m.DemodulateChips(m.Modulate(chips), len(chips))
	if err != nil {
		t.Fatal(err)
	}
	for i := range chips {
		if got[i] != chips[i] {
			t.Fatalf("chip %d mismatch at 32x oversampling", i)
		}
	}
}
