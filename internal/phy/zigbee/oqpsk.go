package zigbee

import (
	"fmt"
	"math"

	"ctjam/internal/dsp"
)

// DefaultSamplesPerChip gives a 20 MHz complex-baseband sample rate
// (10 samples x 2 Mchip/s), matching the Wi-Fi OFDM sample rate so that
// emulated and genuine waveforms live on the same time base.
const DefaultSamplesPerChip = 10

// Modulator converts chip streams to O-QPSK half-sine-shaped complex
// baseband waveforms and back. The zero value is not usable; construct with
// NewModulator.
type Modulator struct {
	spc   int       // samples per chip
	pulse []float64 // half-sine pulse spanning two chip periods

	symbolCache map[int][]complex128 // memoized reference symbol waveforms
}

// NewModulator returns a Modulator with the given oversampling factor
// (samples per chip). The factor must be a positive even number so the Q
// branch can be offset by exactly half a pulse.
func NewModulator(samplesPerChip int) (*Modulator, error) {
	if samplesPerChip < 2 || samplesPerChip%2 != 0 {
		return nil, fmt.Errorf("zigbee: samples per chip %d must be even and >= 2", samplesPerChip)
	}
	// Each I/Q chip pulse spans two chip periods with a half-sine shape.
	n := 2 * samplesPerChip
	pulse := make([]float64, n)
	for i := range pulse {
		pulse[i] = math.Sin(math.Pi * float64(i) / float64(n))
	}
	return &Modulator{spc: samplesPerChip, pulse: pulse}, nil
}

// SamplesPerChip returns the oversampling factor.
func (m *Modulator) SamplesPerChip() int { return m.spc }

// SampleRateHz returns the complex-baseband sample rate.
func (m *Modulator) SampleRateHz() float64 {
	return float64(m.spc) * float64(ChipRateHz)
}

// WaveformLen returns the number of samples produced for nChips chips.
func (m *Modulator) WaveformLen(nChips int) int {
	if nChips == 0 {
		return 0
	}
	// The Q branch is delayed by one chip period and each pulse spans two
	// chip periods, so the tail extends 2 chips past the last chip start.
	return (nChips + 2) * m.spc
}

// Modulate produces the O-QPSK complex baseband waveform for a chip stream.
// Even-indexed chips drive the in-phase branch, odd-indexed chips the
// quadrature branch delayed by one chip period; both use half-sine pulses
// spanning two chip periods (MSK-equivalent shaping per IEEE 802.15.4
// §12.2.6).
func (m *Modulator) Modulate(chips []uint8) []complex128 {
	out := make([]complex128, m.WaveformLen(len(chips)))
	for k, chip := range chips {
		level := float64(2*int(chip&1) - 1) // 0 -> -1, 1 -> +1
		// Pulse k starts at sample k*spc. Odd (Q-branch) chips are
		// thereby offset one chip period from the even (I-branch)
		// chips, which realizes the O-QPSK half-symbol offset.
		start := k * m.spc
		for i, p := range m.pulse {
			j := start + i
			if j >= len(out) {
				break
			}
			if k%2 == 0 {
				out[j] += complex(level*p, 0)
			} else {
				out[j] += complex(0, level*p)
			}
		}
	}
	return out
}

// ModulateSymbols spreads the symbols and modulates the resulting chips.
func (m *Modulator) ModulateSymbols(symbols []uint8) ([]complex128, error) {
	chips, err := Spread(symbols)
	if err != nil {
		return nil, err
	}
	return m.Modulate(chips), nil
}

// symbolWaveform returns the modulated waveform of a single symbol's 32
// chips including the pulse tail. Results are cached per modulator.
func (m *Modulator) symbolWaveform(s int) []complex128 {
	if m.symbolCache == nil {
		m.symbolCache = make(map[int][]complex128, SymbolCount)
	}
	if w, ok := m.symbolCache[s]; ok {
		return w
	}
	w := m.Modulate(chipTable[s][:])
	m.symbolCache[s] = w
	return w
}

// DemodulateChips recovers hard chip decisions from a waveform that starts
// at chip 0 (as produced by Modulate). It samples each branch at the peak of
// its half-sine pulse.
func (m *Modulator) DemodulateChips(wave []complex128, nChips int) ([]uint8, error) {
	need := nChips*m.spc + m.spc // peak of the last pulse
	if len(wave) < need {
		return nil, fmt.Errorf("zigbee: waveform too short: %d samples, need %d", len(wave), need)
	}
	chips := make([]uint8, nChips)
	for k := 0; k < nChips; k++ {
		peak := k*m.spc + m.spc // center of pulse spanning [k*spc, k*spc+2*spc)
		v := wave[peak]
		var level float64
		if k%2 == 0 {
			level = real(v)
		} else {
			level = imag(v)
		}
		if level > 0 {
			chips[k] = 1
		}
	}
	return chips, nil
}

// DemodulateSymbols performs coherent maximum-likelihood detection: each
// 32-chip span of the waveform is correlated against the 16 candidate symbol
// waveforms and the best match wins. It returns the detected symbols.
func (m *Modulator) DemodulateSymbols(wave []complex128, nSymbols int) ([]uint8, error) {
	span := ChipsPerSymbol * m.spc
	if len(wave) < nSymbols*span {
		return nil, fmt.Errorf("zigbee: waveform too short: %d samples, need %d", len(wave), nSymbols*span)
	}
	out := make([]uint8, nSymbols)
	for i := 0; i < nSymbols; i++ {
		seg := wave[i*span:]
		best, bestMetric := 0, math.Inf(-1)
		for s := 0; s < SymbolCount; s++ {
			ref := m.symbolWaveform(s)
			// Correlate over the symbol body only (exclude the tail
			// that overlaps the next symbol).
			metric := real(dsp.Correlate(seg[:span], ref[:span]))
			if metric > bestMetric {
				best, bestMetric = s, metric
			}
		}
		out[i] = uint8(best)
	}
	return out, nil
}
