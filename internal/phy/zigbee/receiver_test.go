package zigbee

import (
	"math/rand"
	"testing"
)

func frameSymbols(t *testing.T, payload []byte) []uint8 {
	t.Helper()
	frame, err := EncodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	return BytesToSymbols(frame)
}

func TestReceiverDecodesValidFrame(t *testing.T) {
	stream := frameSymbols(t, []byte("hello"))
	rep := ProcessSymbolStream(stream)
	if rep.PacketsDecoded != 1 {
		t.Fatalf("decoded %d packets, want 1 (%+v)", rep.PacketsDecoded, rep)
	}
	if rep.CRCFailures != 0 || rep.PhantomSyncs != 0 {
		t.Fatalf("unexpected failures: %+v", rep)
	}
	if rep.BusySymbols == 0 {
		t.Fatal("receiver never went busy")
	}
}

func TestReceiverDecodesBackToBackFrames(t *testing.T) {
	var stream []uint8
	for i := 0; i < 3; i++ {
		stream = append(stream, frameSymbols(t, []byte{byte(i), 1, 2})...)
	}
	rep := ProcessSymbolStream(stream)
	if rep.PacketsDecoded != 3 {
		t.Fatalf("decoded %d packets, want 3 (%+v)", rep.PacketsDecoded, rep)
	}
}

func TestReceiverLogsCRCFailure(t *testing.T) {
	stream := frameSymbols(t, []byte("payload!"))
	// Corrupt one payload symbol after the header (preamble 8 + SFD 2 +
	// len 2 = 12 symbols).
	stream[14] ^= 0x5
	rep := ProcessSymbolStream(stream)
	if rep.CRCFailures != 1 {
		t.Fatalf("CRC failures = %d, want 1 (%+v)", rep.CRCFailures, rep)
	}
	if rep.PacketsDecoded != 0 {
		t.Fatalf("decoded a corrupted packet: %+v", rep)
	}
}

func TestReceiverPhantomSyncOnPreambleOnly(t *testing.T) {
	// The paper's stealthy EmuBee signature: preamble, then nothing.
	stream := make([]uint8, 64) // a long run of zero symbols
	rep := ProcessSymbolStream(stream)
	if rep.PhantomSyncs == 0 {
		t.Fatalf("preamble-only stream produced no phantom syncs: %+v", rep)
	}
	if rep.DetectableEvents() != 0 {
		t.Fatalf("stealthy stream left detectable events: %+v", rep)
	}
	if rep.BusyFraction() < 0.5 {
		t.Fatalf("receiver busy only %.2f of a preamble flood", rep.BusyFraction())
	}
}

func TestReceiverMalformedHeaderIsPhantom(t *testing.T) {
	// Preamble + SFD + PSDU length below the FCS size.
	stream := make([]uint8, 0, 16)
	stream = append(stream, make([]uint8, preambleSymbols)...)
	stream = append(stream, SFD&0x0F, SFD>>4)
	stream = append(stream, 1, 0) // length 1 < FCSLen
	rep := ProcessSymbolStream(stream)
	if rep.PhantomSyncs != 1 || rep.DetectableEvents() != 0 {
		t.Fatalf("malformed header report %+v", rep)
	}
}

func TestReceiverIgnoresRandomNoise(t *testing.T) {
	// Uniform random symbols rarely form 8 consecutive zeros; the
	// receiver should mostly stay idle and log nothing.
	rng := rand.New(rand.NewSource(1))
	stream := make([]uint8, 5000)
	for i := range stream {
		stream[i] = uint8(rng.Intn(16))
	}
	rep := ProcessSymbolStream(stream)
	if rep.PacketsDecoded != 0 {
		t.Fatalf("decoded %d packets from noise", rep.PacketsDecoded)
	}
	if rep.BusyFraction() > 0.1 {
		t.Fatalf("noise busied the receiver %.2f of the time", rep.BusyFraction())
	}
}

func TestReceiverTruncatedStreamCountsPhantom(t *testing.T) {
	stream := make([]uint8, preambleSymbols+2) // sync then stream ends
	rep := ProcessSymbolStream(stream)
	if rep.PhantomSyncs == 0 {
		t.Fatalf("truncated acquisition not counted: %+v", rep)
	}
}

func TestReceiverEmptyStream(t *testing.T) {
	rep := ProcessSymbolStream(nil)
	if rep != (ReceiverReport{}) {
		t.Fatalf("empty stream report %+v", rep)
	}
	if rep.BusyFraction() != 0 {
		t.Fatal("BusyFraction of empty report must be 0")
	}
}

func TestStealthinessRanking(t *testing.T) {
	// §II-B: EmuBee busies the victim with zero detectable events, while
	// conventional ZigBee-format jamming leaves decodable packets in the
	// victim's log.
	emuBee := make([]uint8, 2000) // chip-matched preamble flood
	zigbeeJam := make([]uint8, 0, 2000)
	for len(zigbeeJam) < 2000 {
		zigbeeJam = append(zigbeeJam, frameSymbols(t, []byte{0xDE, 0xAD})...)
	}

	emuRep := ProcessSymbolStream(emuBee)
	zbRep := ProcessSymbolStream(zigbeeJam)

	if emuRep.DetectableEvents() != 0 {
		t.Fatalf("EmuBee left %d detectable events", emuRep.DetectableEvents())
	}
	if zbRep.DetectableEvents() == 0 {
		t.Fatal("conventional jamming left no detectable events")
	}
	if emuRep.BusyFraction() < zbRep.BusyFraction()-0.2 {
		t.Fatalf("EmuBee busy %.2f should rival conventional %.2f",
			emuRep.BusyFraction(), zbRep.BusyFraction())
	}
}
