package zigbee

import (
	"errors"
	"fmt"
)

// Frame format constants (paper Fig. 3 / IEEE 802.15.4 §12.1).
const (
	// PreambleLen is the length of the all-zero preamble in bytes.
	PreambleLen = 4
	// SFD is the start-of-frame delimiter that follows the preamble.
	SFD = 0x7A
	// MaxPayload is the maximum PSDU length in bytes, including the
	// 2-byte FCS.
	MaxPayload = 127
	// FCSLen is the length of the frame check sequence in bytes.
	FCSLen = 2
)

// Frame codec errors. ErrNoSFD models the paper's stealthiness observation:
// a receiver that locks onto a preamble but never finds a valid delimiter
// decodes nothing while its hardware stays busy.
var (
	ErrPayloadTooLong = errors.New("zigbee: payload too long")
	ErrNoSFD          = errors.New("zigbee: start-of-frame delimiter not found")
	ErrTruncated      = errors.New("zigbee: frame truncated")
	ErrBadFCS         = errors.New("zigbee: frame check sequence mismatch")
)

// CRC16 computes the 16-bit ITU-T CRC (polynomial x^16+x^12+x^5+1, initial
// value 0) used as the 802.15.4 FCS, processing bits LSB-first.
func CRC16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ 0x8408 // reversed 0x1021
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}

// EncodeFrame builds the over-the-air byte stream for a MAC payload:
// preamble, SFD, PHY header (length), payload, FCS. The payload may be at
// most MaxPayload-FCSLen bytes.
func EncodeFrame(payload []byte) ([]byte, error) {
	if len(payload)+FCSLen > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes (max %d)", ErrPayloadTooLong, len(payload), MaxPayload-FCSLen)
	}
	psduLen := len(payload) + FCSLen
	out := make([]byte, 0, PreambleLen+2+psduLen)
	out = append(out, make([]byte, PreambleLen)...) // 0x00 preamble
	out = append(out, SFD)
	out = append(out, byte(psduLen)) // PHY header: 7-bit length
	out = append(out, payload...)
	fcs := CRC16(payload)
	out = append(out, byte(fcs&0xFF), byte(fcs>>8))
	return out, nil
}

// DecodeFrame parses an over-the-air byte stream produced by EncodeFrame
// (possibly with corrupted bytes) and returns the payload. It scans for the
// SFD after at least one preamble byte, honouring the paper's observation
// that a stream without a delimiter occupies the receiver without yielding
// data (ErrNoSFD).
func DecodeFrame(stream []byte) ([]byte, error) {
	payload, err := scanFrame(stream)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

// CheckFrame reports whether a received byte stream parses as a valid frame
// (SFD found, PSDU complete, FCS matches), without copying the payload out.
// It is the allocation-free receive check the field simulator runs per
// delivered packet; the error taxonomy matches DecodeFrame exactly.
func CheckFrame(stream []byte) error {
	_, err := scanFrame(stream)
	return err
}

// scanFrame locates and validates one frame in stream, returning the payload
// as a subslice (no copy).
func scanFrame(stream []byte) ([]byte, error) {
	// Find SFD preceded by at least one zero (preamble) byte.
	sfdAt := -1
	for i := 1; i < len(stream); i++ {
		if stream[i] == SFD && stream[i-1] == 0x00 {
			sfdAt = i
			break
		}
	}
	if sfdAt < 0 {
		return nil, ErrNoSFD
	}
	if sfdAt+1 >= len(stream) {
		return nil, ErrTruncated
	}
	psduLen := int(stream[sfdAt+1] & 0x7F)
	if psduLen < FCSLen {
		return nil, fmt.Errorf("%w: PSDU length %d", ErrTruncated, psduLen)
	}
	start := sfdAt + 2
	if start+psduLen > len(stream) {
		return nil, ErrTruncated
	}
	psdu := stream[start : start+psduLen]
	payload := psdu[:psduLen-FCSLen]
	gotFCS := uint16(psdu[psduLen-2]) | uint16(psdu[psduLen-1])<<8
	if CRC16(payload) != gotFCS {
		return nil, ErrBadFCS
	}
	return payload, nil
}

// FrameAirtime returns the on-air duration in seconds of a frame carrying
// payloadLen payload bytes (preamble+SFD+header+payload+FCS at 250 kb/s).
func FrameAirtime(payloadLen int) float64 {
	totalBytes := PreambleLen + 1 + 1 + payloadLen + FCSLen
	return float64(totalBytes*8) / float64(BitRateHz)
}
