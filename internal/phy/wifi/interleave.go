package wifi

import "fmt"

// Interleaver parameters for 64-QAM (802.11-2016 §17.3.5.7): 48 data
// subcarriers x 6 coded bits per subcarrier per OFDM symbol.
const (
	// BitsPerSubcarrier is N_BPSC for 64-QAM.
	BitsPerSubcarrier = 6
	// DataSubcarriers is the number of data subcarriers per OFDM symbol.
	DataSubcarriers = 48
	// CodedBitsPerSymbol is N_CBPS for 64-QAM (288).
	CodedBitsPerSymbol = DataSubcarriers * BitsPerSubcarrier
)

// interleaveMap[k] gives the output index of input bit k within one OFDM
// symbol, composing the two 802.11 permutations.
var interleaveMap = buildInterleaveMap()

func buildInterleaveMap() [CodedBitsPerSymbol]int {
	var m [CodedBitsPerSymbol]int
	const n = CodedBitsPerSymbol
	s := BitsPerSubcarrier / 2 // s = max(N_BPSC/2, 1) = 3
	for k := 0; k < n; k++ {
		// First permutation: adjacent coded bits land on
		// non-adjacent subcarriers.
		i := (n/16)*(k%16) + k/16
		// Second permutation: adjacent bits alternate between more
		// and less significant constellation bits.
		j := s*(i/s) + (i+n-16*i/n)%s
		m[k] = j
	}
	return m
}

// Interleave permutes one OFDM symbol's worth of coded bits (288 for
// 64-QAM).
func Interleave(bits []uint8) ([]uint8, error) {
	if len(bits) != CodedBitsPerSymbol {
		return nil, fmt.Errorf("wifi: interleave needs %d bits, got %d", CodedBitsPerSymbol, len(bits))
	}
	out := make([]uint8, CodedBitsPerSymbol)
	for k, b := range bits {
		out[interleaveMap[k]] = b
	}
	return out, nil
}

// Deinterleave inverts Interleave.
func Deinterleave(bits []uint8) ([]uint8, error) {
	if len(bits) != CodedBitsPerSymbol {
		return nil, fmt.Errorf("wifi: deinterleave needs %d bits, got %d", CodedBitsPerSymbol, len(bits))
	}
	out := make([]uint8, CodedBitsPerSymbol)
	for k := range bits {
		out[k] = bits[interleaveMap[k]]
	}
	return out, nil
}
