package wifi

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"ctjam/internal/dsp"
)

func TestSTFPeriodicity(t *testing.T) {
	stf, err := STF()
	if err != nil {
		t.Fatal(err)
	}
	if len(stf) != STFLen {
		t.Fatalf("STF length %d, want %d", len(stf), STFLen)
	}
	// The STF repeats every 16 samples (only every 4th subcarrier is
	// occupied).
	for i := 0; i+stfPeriod < len(stf); i++ {
		if cmplx.Abs(stf[i]-stf[i+stfPeriod]) > 1e-9 {
			t.Fatalf("STF not periodic at sample %d", i)
		}
	}
	if dsp.Energy(stf) == 0 {
		t.Fatal("STF has no energy")
	}
}

func TestLTFStructure(t *testing.T) {
	ltf, err := LTF()
	if err != nil {
		t.Fatal(err)
	}
	if len(ltf) != LTFLen {
		t.Fatalf("LTF length %d, want %d", len(ltf), LTFLen)
	}
	// Two identical 64-sample training symbols follow the 32-sample CP.
	for i := 0; i < FFTSize; i++ {
		if cmplx.Abs(ltf[32+i]-ltf[32+FFTSize+i]) > 1e-9 {
			t.Fatalf("LTF halves differ at %d", i)
		}
	}
	// The CP is the tail of the symbol.
	for i := 0; i < 32; i++ {
		if cmplx.Abs(ltf[i]-ltf[32+FFTSize-32+i]) > 1e-9 {
			t.Fatalf("LTF CP mismatch at %d", i)
		}
	}
}

func TestLTFSequenceRecoverable(t *testing.T) {
	// FFT of the long training symbol recovers the published BPSK
	// sequence.
	ltf, err := LTF()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dsp.FFT(ltf[32 : 32+FFTSize])
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range ltfSequence {
		k := i - 26
		got := real(spec[carrierBin(k)])
		if cmplx.Abs(spec[carrierBin(k)]-complex(want, 0)) > 1e-9 {
			t.Fatalf("LTF subcarrier %d = %v, want %v", k, got, want)
		}
	}
}

func TestSignalRoundTripProperty(t *testing.T) {
	f := func(lenSel uint16) bool {
		length := 1 + int(lenSel)%4095
		sym, err := EncodeSignal(length)
		if err != nil {
			return false
		}
		got, err := DecodeSignal(sym)
		return err == nil && got == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSignalValidation(t *testing.T) {
	if _, err := EncodeSignal(0); !errors.Is(err, ErrBadSignalLength) {
		t.Fatalf("length 0: err = %v", err)
	}
	if _, err := EncodeSignal(4096); !errors.Is(err, ErrBadSignalLength) {
		t.Fatalf("length 4096: err = %v", err)
	}
	if _, err := DecodeSignal(make([]complex128, 10)); err == nil {
		t.Fatal("short symbol: expected error")
	}
}

func TestSignalParityDetectsCorruption(t *testing.T) {
	sym, err := EncodeSignal(100)
	if err != nil {
		t.Fatal(err)
	}
	// Flipping several subcarriers should usually break parity or the
	// Viterbi output; verify at least that the decoder doesn't silently
	// return a wrong length for a heavily corrupted symbol.
	bad := make([]complex128, len(sym))
	copy(bad, sym)
	for i := 20; i < 60; i += 3 {
		bad[i] = -bad[i]
	}
	if got, err := DecodeSignal(bad); err == nil && got == 100 {
		// Decoding correctly despite corruption is fine (the code
		// corrected it); what would be wrong is a silent mismatch.
		t.Skip("convolutional code corrected the corruption")
	}
}

func TestBuildPPDULayout(t *testing.T) {
	tx, err := NewTransmitter(DefaultScramblerSeed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	payload := randBits(rng, 300)
	ppdu, err := tx.BuildPPDU(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(ppdu) <= PreambleLen+SignalLen {
		t.Fatalf("PPDU too short: %d", len(ppdu))
	}
	// The SIGNAL field must decode to the payload's byte length.
	sig := ppdu[PreambleLen : PreambleLen+SignalLen]
	length, err := DecodeSignal(sig)
	if err != nil {
		t.Fatal(err)
	}
	if want := (len(payload) + 7) / 8; length != want {
		t.Fatalf("SIGNAL length %d, want %d", length, want)
	}
	// The data section must still round-trip.
	rx, err := NewReceiver(DefaultScramblerSeed)
	if err != nil {
		t.Fatal(err)
	}
	data := ppdu[PreambleLen+SignalLen:]
	nSym := len(data) / SymbolLen
	got, err := rx.Receive(data, nSym, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got, payload) {
		t.Fatal("PPDU data section corrupt")
	}
}

func TestDetectSTFFindsPreamble(t *testing.T) {
	tx, err := NewTransmitter(DefaultScramblerSeed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	ppdu, err := tx.BuildPPDU(randBits(rng, 144))
	if err != nil {
		t.Fatal(err)
	}
	// Embed the PPDU after noise-only samples.
	const offset = 200
	wave := make([]complex128, offset+len(ppdu))
	for i := 0; i < offset; i++ {
		wave[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * 0.01
	}
	copy(wave[offset:], ppdu)

	start, metric := DetectSTF(wave[:offset+PreambleLen])
	if metric < 0.9 {
		t.Fatalf("preamble metric %.3f too low", metric)
	}
	if start < offset-stfPeriod || start > offset+stfPeriod {
		t.Fatalf("detected start %d, want ~%d", start, offset)
	}
}

func TestDetectSTFRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	wave := make([]complex128, 600)
	for i := range wave {
		wave[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	if _, metric := DetectSTF(wave); metric > 0.7 {
		t.Fatalf("noise produced preamble metric %.3f", metric)
	}
	if start, metric := DetectSTF(wave[:10]); start != 0 || metric != 0 {
		t.Fatal("short input should return zeros")
	}
}
