package wifi

import (
	"fmt"

	"ctjam/internal/dsp"
)

// OFDM numerology for 20 MHz 802.11a/g.
const (
	// FFTSize is the OFDM FFT length.
	FFTSize = 64
	// CPLen is the cyclic prefix length in samples (0.8 us at 20 MHz).
	CPLen = 16
	// SymbolLen is the total OFDM symbol length in samples (4 us).
	SymbolLen = FFTSize + CPLen
	// SampleRateHz is the complex baseband sample rate.
	SampleRateHz = 20_000_000
	// ChannelBandwidthHz is the nominal Wi-Fi channel bandwidth.
	ChannelBandwidthHz = 20_000_000
)

// dataCarriers lists the logical subcarrier indices (-26..26, excluding 0
// and the pilots ±7, ±21) that carry data, in spectral order.
var dataCarriers = buildDataCarriers()

// pilotCarriers are the four pilot subcarrier indices.
var pilotCarriers = [4]int{-21, -7, 7, 21}

// pilotValues are the (polarity-1) BPSK pilot values.
var pilotValues = [4]complex128{1, 1, 1, -1}

func buildDataCarriers() [DataSubcarriers]int {
	var out [DataSubcarriers]int
	i := 0
	for k := -26; k <= 26; k++ {
		switch k {
		case 0, -21, -7, 7, 21:
			continue
		}
		out[i] = k
		i++
	}
	return out
}

// DataCarrierIndices returns a copy of the logical data subcarrier indices
// in spectral order (-26..26).
func DataCarrierIndices() []int {
	out := make([]int, DataSubcarriers)
	copy(out, dataCarriers[:])
	return out
}

// carrierBin converts a logical subcarrier index (-26..26) into an FFT bin
// (0..63).
func carrierBin(k int) int {
	if k >= 0 {
		return k
	}
	return FFTSize + k
}

// AssembleSymbol builds one time-domain OFDM symbol (80 samples with cyclic
// prefix) from 48 data-subcarrier values, inserting the standard pilots.
func AssembleSymbol(data []complex128) ([]complex128, error) {
	if len(data) != DataSubcarriers {
		return nil, fmt.Errorf("wifi: symbol needs %d data carriers, got %d", DataSubcarriers, len(data))
	}
	freq := make([]complex128, FFTSize)
	for i, k := range dataCarriers {
		freq[carrierBin(k)] = data[i]
	}
	for i, k := range pilotCarriers {
		freq[carrierBin(k)] = pilotValues[i]
	}
	body, err := dsp.IFFT(freq)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, SymbolLen)
	out = append(out, body[FFTSize-CPLen:]...)
	out = append(out, body...)
	return out, nil
}

// DisassembleSymbol strips the cyclic prefix of one 80-sample OFDM symbol,
// applies the FFT and returns the 48 data-subcarrier values.
func DisassembleSymbol(symbol []complex128) ([]complex128, error) {
	if len(symbol) != SymbolLen {
		return nil, fmt.Errorf("wifi: symbol needs %d samples, got %d", SymbolLen, len(symbol))
	}
	freq, err := dsp.FFT(symbol[CPLen:])
	if err != nil {
		return nil, err
	}
	out := make([]complex128, DataSubcarriers)
	for i, k := range dataCarriers {
		out[i] = freq[carrierBin(k)]
	}
	return out, nil
}

// SpectrumOfWindow computes the frequency-domain view of an arbitrary
// 64-sample window, returning the 48 data-carrier values. The emulation
// pipeline uses this to project a designed (ZigBee) waveform segment onto
// the Wi-Fi subcarrier grid.
func SpectrumOfWindow(window []complex128) ([]complex128, error) {
	if len(window) != FFTSize {
		return nil, fmt.Errorf("wifi: window needs %d samples, got %d", FFTSize, len(window))
	}
	freq, err := dsp.FFT(window)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, DataSubcarriers)
	for i, k := range dataCarriers {
		out[i] = freq[carrierBin(k)]
	}
	return out, nil
}

// Transmitter runs the full 802.11 64-QAM TX chain: scramble, convolutional
// encode (with trellis tail), interleave and map per OFDM symbol, assemble
// time-domain symbols.
type Transmitter struct {
	seed uint8
}

// NewTransmitter returns a Transmitter with the given scrambler seed
// (nonzero 7-bit value).
func NewTransmitter(seed uint8) (*Transmitter, error) {
	if seed&0x7F == 0 {
		return nil, fmt.Errorf("wifi: scrambler seed must be nonzero")
	}
	return &Transmitter{seed: seed}, nil
}

// BitsPerOFDMSymbolPayload is the number of information bits carried per
// OFDM symbol at rate-1/2 64-QAM (N_DBPS = 144).
const BitsPerOFDMSymbolPayload = CodedBitsPerSymbol / 2

// Transmit encodes payload bits into a complex baseband waveform. The
// payload is padded with zeros (after the trellis tail) to a whole number of
// OFDM symbols. It returns the waveform and the number of OFDM symbols.
func (tx *Transmitter) Transmit(payload []uint8) ([]complex128, int, error) {
	tailed := AddTail(payload)
	// Pad so that the coded length is a multiple of N_CBPS.
	nSym := (len(tailed)*2 + CodedBitsPerSymbol - 1) / CodedBitsPerSymbol
	padded := make([]uint8, nSym*BitsPerOFDMSymbolPayload)
	copy(padded, tailed)
	scrambled, err := Scramble(padded, tx.seed)
	if err != nil {
		return nil, 0, err
	}
	coded := ConvEncode(scrambled)
	wave := make([]complex128, 0, nSym*SymbolLen)
	for s := 0; s < nSym; s++ {
		chunk := coded[s*CodedBitsPerSymbol : (s+1)*CodedBitsPerSymbol]
		inter, err := Interleave(chunk)
		if err != nil {
			return nil, 0, err
		}
		pts, err := MapQAM64(inter)
		if err != nil {
			return nil, 0, err
		}
		sym, err := AssembleSymbol(pts)
		if err != nil {
			return nil, 0, err
		}
		wave = append(wave, sym...)
	}
	return wave, nSym, nil
}

// Receiver inverts the Transmitter chain with hard decisions and Viterbi
// decoding.
type Receiver struct {
	seed uint8
}

// NewReceiver returns a Receiver using the given scrambler seed.
func NewReceiver(seed uint8) (*Receiver, error) {
	if seed&0x7F == 0 {
		return nil, fmt.Errorf("wifi: scrambler seed must be nonzero")
	}
	return &Receiver{seed: seed}, nil
}

// Receive demodulates a waveform of nSym OFDM symbols and returns nBits
// decoded payload bits (nBits must not exceed the symbol capacity minus the
// trellis tail).
func (rx *Receiver) Receive(wave []complex128, nSym, nBits int) ([]uint8, error) {
	if len(wave) < nSym*SymbolLen {
		return nil, fmt.Errorf("wifi: waveform %d samples < %d symbols", len(wave), nSym)
	}
	capacity := nSym*BitsPerOFDMSymbolPayload - (ConstraintLength - 1)
	if nBits > capacity {
		return nil, fmt.Errorf("wifi: %d bits exceed capacity %d", nBits, capacity)
	}
	coded := make([]uint8, 0, nSym*CodedBitsPerSymbol)
	for s := 0; s < nSym; s++ {
		pts, err := DisassembleSymbol(wave[s*SymbolLen : (s+1)*SymbolLen])
		if err != nil {
			return nil, err
		}
		deinter, err := Deinterleave(DemapQAM64(pts))
		if err != nil {
			return nil, err
		}
		coded = append(coded, deinter...)
	}
	decoded, err := ViterbiDecode(coded, false)
	if err != nil {
		return nil, err
	}
	descrambled, err := Descramble(decoded, rx.seed)
	if err != nil {
		return nil, err
	}
	return descrambled[:nBits], nil
}
