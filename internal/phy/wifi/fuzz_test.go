package wifi

import "testing"

// fuzzWave interprets fuzz bytes as interleaved int8 I/Q pairs scaled to
// roughly unit amplitude, capped so one input cannot demand unbounded work.
func fuzzWave(data []byte) []complex128 {
	n := len(data) / 2
	if n > 4096 {
		n = 4096
	}
	wave := make([]complex128, n)
	for i := 0; i < n; i++ {
		re := float64(int8(data[2*i])) / 32
		im := float64(int8(data[2*i+1])) / 32
		wave[i] = complex(re, im)
	}
	return wave
}

// FuzzWifiPPDUDecode runs the receive-side PPDU path — preamble detection,
// SIGNAL decode and full payload demodulation — over arbitrary waveforms.
// None of it may panic, and anything accepted must satisfy the documented
// output contracts.
func FuzzWifiPPDUDecode(f *testing.F) {
	tx, err := NewTransmitter(0x5D)
	if err != nil {
		f.Fatal(err)
	}
	ppdu, err := tx.BuildPPDU([]uint8{0xA5, 0x3C, 0x7E})
	if err != nil {
		f.Fatal(err)
	}
	sample := make([]byte, 0, 2*len(ppdu))
	for _, c := range ppdu {
		sample = append(sample, byte(int8(real(c)*32)), byte(int8(imag(c)*32)))
	}
	f.Add(sample)
	f.Add([]byte{})
	f.Add(make([]byte, 2*SymbolLen))
	f.Add(sample[:40])

	f.Fuzz(func(t *testing.T, data []byte) {
		wave := fuzzWave(data)

		start, metric := DetectSTF(wave)
		if start < 0 || start > len(wave) {
			t.Fatalf("DetectSTF start %d outside waveform of %d samples", start, len(wave))
		}
		if metric < 0 || metric > 1+1e-9 {
			t.Fatalf("DetectSTF metric %v outside [0,1]", metric)
		}

		if len(wave) >= SymbolLen {
			if n, err := DecodeSignal(wave[:SymbolLen]); err == nil && (n < 0 || n > 4095) {
				t.Fatalf("DecodeSignal accepted length %d", n)
			}
		}

		var seed uint8 = 1
		if len(data) > 0 && data[0]&0x7F != 0 {
			seed = data[0]
		}
		rx, err := NewReceiver(seed)
		if err != nil {
			t.Fatalf("seed %#x rejected: %v", seed, err)
		}
		nSym := len(wave) / SymbolLen
		if nSym == 0 {
			return
		}
		nBits := nSym*BitsPerOFDMSymbolPayload - (ConstraintLength - 1)
		bits, err := rx.Receive(wave[:nSym*SymbolLen], nSym, nBits)
		if err != nil {
			return
		}
		if len(bits) != nBits {
			t.Fatalf("Receive returned %d bits, want %d", len(bits), nBits)
		}
		for i, b := range bits {
			if b > 1 {
				t.Fatalf("bit %d = %d, not 0/1", i, b)
			}
		}
	})
}
