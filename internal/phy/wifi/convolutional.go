package wifi

import (
	"fmt"
	"math"
	"math/bits"
)

// Convolutional code parameters: the industry-standard K=7 rate-1/2 code
// with generator polynomials 133 and 171 (octal) used by 802.11.
const (
	// ConstraintLength is K for the 802.11 convolutional code.
	ConstraintLength = 7
	// numStates is the number of encoder states (2^(K-1)).
	numStates = 1 << (ConstraintLength - 1)
	// polyA and polyB are the generator polynomials in binary
	// (octal 133 and 171).
	polyA = 0o133
	polyB = 0o171
)

// ConvEncode encodes bits with the rate-1/2 K=7 code, producing 2 output
// bits per input bit. The encoder starts in the all-zero state. Callers who
// want the decoder to terminate cleanly should append K-1 zero tail bits.
func ConvEncode(in []uint8) []uint8 {
	out := make([]uint8, 0, len(in)*2)
	var state uint32 // holds the last K-1 input bits
	for _, b := range in {
		reg := (uint32(b&1) << (ConstraintLength - 1)) | state
		a := uint8(bits.OnesCount32(reg&polyA) & 1)
		bb := uint8(bits.OnesCount32(reg&polyB) & 1)
		out = append(out, a, bb)
		state = reg >> 1
	}
	return out
}

// AddTail returns in followed by K-1 zero bits so the trellis terminates in
// the zero state.
func AddTail(in []uint8) []uint8 {
	out := make([]uint8, len(in)+ConstraintLength-1)
	copy(out, in)
	return out
}

// ViterbiDecode performs maximum-likelihood decoding of a rate-1/2 coded
// bit stream using hard-decision Hamming metrics. coded must have even
// length; the decoder assumes the encoder started in state 0 and, when
// terminated is true, also ended in state 0 (tail bits included in coded;
// the K-1 tail bits are stripped from the result).
func ViterbiDecode(coded []uint8, terminated bool) ([]uint8, error) {
	if len(coded)%2 != 0 {
		return nil, fmt.Errorf("wifi: coded length %d is odd", len(coded))
	}
	nSteps := len(coded) / 2
	if terminated && nSteps < ConstraintLength-1 {
		return nil, fmt.Errorf("wifi: %d steps too short for terminated decoding", nSteps)
	}

	// Precompute per-state, per-input expected output pairs.
	type branch struct {
		next uint16
		out0 uint8
		out1 uint8
	}
	var branches [numStates][2]branch
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			reg := (uint32(in) << (ConstraintLength - 1)) | uint32(s)
			branches[s][in] = branch{
				next: uint16(reg >> 1),
				out0: uint8(bits.OnesCount32(reg&polyA) & 1),
				out1: uint8(bits.OnesCount32(reg&polyB) & 1),
			}
		}
	}

	const inf = math.MaxInt32 / 2
	metric := make([]int32, numStates)
	next := make([]int32, numStates)
	for s := 1; s < numStates; s++ {
		metric[s] = inf
	}
	// survivors[t][s] packs the predecessor state and input bit.
	survivors := make([][numStates]uint16, nSteps)

	for t := 0; t < nSteps; t++ {
		r0, r1 := coded[2*t]&1, coded[2*t+1]&1
		for s := range next {
			next[s] = inf
		}
		for s := 0; s < numStates; s++ {
			if metric[s] >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				br := branches[s][in]
				cost := metric[s]
				if br.out0 != r0 {
					cost++
				}
				if br.out1 != r1 {
					cost++
				}
				if cost < next[br.next] {
					next[br.next] = cost
					survivors[t][br.next] = uint16(s)<<1 | uint16(in)
				}
			}
		}
		metric, next = next, metric
	}

	// Pick the terminal state.
	best := 0
	if !terminated {
		bestM := metric[0]
		for s := 1; s < numStates; s++ {
			if metric[s] < bestM {
				best, bestM = s, metric[s]
			}
		}
	}

	// Trace back.
	decoded := make([]uint8, nSteps)
	state := best
	for t := nSteps - 1; t >= 0; t-- {
		packed := survivors[t][state]
		decoded[t] = uint8(packed & 1)
		state = int(packed >> 1)
	}
	if terminated {
		decoded = decoded[:nSteps-(ConstraintLength-1)]
	}
	return decoded, nil
}
