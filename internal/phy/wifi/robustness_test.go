package wifi

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness suite: the receive chain processes whatever the channel
// delivers; arbitrary garbage must decode to *something* without panics,
// and the framing layers must reject malformed structures cleanly.

func TestViterbiNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		coded := make([]uint8, len(raw)&^1) // even length
		for i := range coded {
			coded[i] = raw[i] & 1
		}
		if len(coded) == 0 {
			return true
		}
		decoded, err := ViterbiDecode(coded, false)
		return err == nil && len(decoded) == len(coded)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReceiveGarbageWaveform(t *testing.T) {
	// Random samples through the full RX chain: no panic, deterministic
	// bit output of the requested length.
	rng := rand.New(rand.NewSource(1))
	rx, err := NewReceiver(DefaultScramblerSeed)
	if err != nil {
		t.Fatal(err)
	}
	wave := make([]complex128, 3*SymbolLen)
	for i := range wave {
		wave[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	bits, err := rx.Receive(wave, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 100 {
		t.Fatalf("got %d bits", len(bits))
	}
	for _, b := range bits {
		if b > 1 {
			t.Fatalf("non-binary output %d", b)
		}
	}
}

func TestDecodeSignalGarbageSymbols(t *testing.T) {
	// Random SIGNAL symbols must not panic; parity or range checks
	// reject nearly all of them.
	rng := rand.New(rand.NewSource(2))
	accepted := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		sym := make([]complex128, SymbolLen)
		for j := range sym {
			sym[j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		if _, err := DecodeSignal(sym); err == nil {
			accepted++
		}
	}
	// Parity (1/2), legal RATE (8/16) and reserved-bit (1/2) checks
	// reject most random symbols; ~1/8 may slip through, as on real
	// hardware, where the preceding preamble detection does the rest.
	if accepted > trials/4 {
		t.Fatalf("%d/%d garbage SIGNAL symbols accepted", accepted, trials)
	}
}

func TestScrambleAllSeedsProperty(t *testing.T) {
	// Every nonzero 7-bit seed is an involution and produces a distinct
	// keystream start.
	bits := make([]uint8, 32)
	seen := make(map[string]bool)
	for seed := 1; seed < 128; seed++ {
		sc, err := Scramble(bits, uint8(seed))
		if err != nil {
			t.Fatal(err)
		}
		back, err := Descramble(sc, uint8(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(back, bits) {
			t.Fatalf("seed %d not an involution", seed)
		}
		key := string(sc)
		if seen[key] {
			t.Fatalf("seed %d repeats another seed's keystream", seed)
		}
		seen[key] = true
	}
}

func TestInterleaverAllPositionsExercised(t *testing.T) {
	// One-hot round trips: every position must map somewhere and back.
	for k := 0; k < CodedBitsPerSymbol; k++ {
		bits := make([]uint8, CodedBitsPerSymbol)
		bits[k] = 1
		inter, err := Interleave(bits)
		if err != nil {
			t.Fatal(err)
		}
		ones := 0
		for _, b := range inter {
			ones += int(b)
		}
		if ones != 1 {
			t.Fatalf("position %d smeared to %d ones", k, ones)
		}
		back, err := Deinterleave(inter)
		if err != nil {
			t.Fatal(err)
		}
		if back[k] != 1 {
			t.Fatalf("position %d did not round trip", k)
		}
	}
}
