package wifi

import (
	"fmt"
	"math"
	"math/cmplx"
)

// QAM64Norm is the 64-QAM normalization factor 1/sqrt(42) that gives the
// constellation unit average energy (802.11-2016 Table 17-10).
var QAM64Norm = 1 / math.Sqrt(42)

// qamLevel maps 3 Gray-coded bits (b0 b1 b2, b0 first) to the un-normalized
// amplitude level per 802.11-2016 Table 17-9.
var qamLevel = [8]float64{
	0b000: -7,
	0b001: -5,
	0b011: -3,
	0b010: -1,
	0b110: 1,
	0b111: 3,
	0b101: 5,
	0b100: 7,
}

// qamBits inverts qamLevel: index (level+7)/2 -> 3 bits.
var qamBits = buildQAMBits()

func buildQAMBits() [8]uint8 {
	var out [8]uint8
	for b, lv := range qamLevel {
		out[int(lv+7)/2] = uint8(b)
	}
	return out
}

// QAM64Points returns the 64 normalized constellation points indexed by the
// 6-bit symbol value (b0..b5, b0 most significant; b0b1b2 select I, b3b4b5
// select Q).
func QAM64Points() []complex128 {
	pts := make([]complex128, 64)
	for v := 0; v < 64; v++ {
		i := qamLevel[v>>3]
		q := qamLevel[v&7]
		pts[v] = complex(i*QAM64Norm, q*QAM64Norm)
	}
	return pts
}

// MapQAM64 maps coded bits (length a multiple of 6) to normalized 64-QAM
// constellation points, 6 bits per point, first three bits -> I, last
// three -> Q.
func MapQAM64(bits []uint8) ([]complex128, error) {
	if len(bits)%BitsPerSubcarrier != 0 {
		return nil, fmt.Errorf("wifi: qam64 needs a multiple of 6 bits, got %d", len(bits))
	}
	out := make([]complex128, len(bits)/BitsPerSubcarrier)
	for i := range out {
		b := bits[i*6 : i*6+6]
		iBits := int(b[0])<<2 | int(b[1])<<1 | int(b[2])
		qBits := int(b[3])<<2 | int(b[4])<<1 | int(b[5])
		out[i] = complex(qamLevel[iBits]*QAM64Norm, qamLevel[qBits]*QAM64Norm)
	}
	return out, nil
}

// DemapQAM64 performs hard-decision demapping of constellation points back
// to bits (6 per point) by nearest level on each axis.
func DemapQAM64(points []complex128) []uint8 {
	out := make([]uint8, 0, len(points)*BitsPerSubcarrier)
	for _, p := range points {
		iB := nearestLevelBits(real(p) / QAM64Norm)
		qB := nearestLevelBits(imag(p) / QAM64Norm)
		out = append(out,
			iB>>2&1, iB>>1&1, iB&1,
			qB>>2&1, qB>>1&1, qB&1)
	}
	return out
}

// NearestQAM64 returns the normalized constellation point closest to p and
// its squared Euclidean distance from p.
func NearestQAM64(p complex128) (complex128, float64) {
	i := nearestLevel(real(p) / QAM64Norm)
	q := nearestLevel(imag(p) / QAM64Norm)
	pt := complex(i*QAM64Norm, q*QAM64Norm)
	d := p - pt
	return pt, real(d)*real(d) + imag(d)*imag(d)
}

// nearestLevel snaps x to the closest level in {-7,-5,-3,-1,1,3,5,7}.
func nearestLevel(x float64) float64 {
	idx := int(math.Round((x + 7) / 2))
	if idx < 0 {
		idx = 0
	}
	if idx > 7 {
		idx = 7
	}
	return float64(2*idx - 7)
}

// nearestLevelBits returns the Gray bits of the level closest to x.
func nearestLevelBits(x float64) uint8 {
	idx := int(math.Round((x + 7) / 2))
	if idx < 0 {
		idx = 0
	}
	if idx > 7 {
		idx = 7
	}
	return qamBits[idx]
}

// ConstellationEVM returns the RMS distance of points from their nearest
// constellation point, normalized by the constellation RMS amplitude (1 for
// the normalized 64-QAM grid).
func ConstellationEVM(points []complex128) float64 {
	if len(points) == 0 {
		return 0
	}
	var e float64
	for _, p := range points {
		_, d := NearestQAM64(p)
		e += d
	}
	return math.Sqrt(e / float64(len(points)))
}

// MinQAMDistance returns the minimum distance between distinct normalized
// 64-QAM points (2/sqrt(42)).
func MinQAMDistance() float64 {
	pts := QAM64Points()
	minD := math.Inf(1)
	for a := 0; a < len(pts); a++ {
		for b := a + 1; b < len(pts); b++ {
			if d := cmplx.Abs(pts[a] - pts[b]); d < minD {
				minD = d
			}
		}
	}
	return minD
}
