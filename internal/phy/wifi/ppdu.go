package wifi

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"ctjam/internal/dsp"
)

// This file implements 802.11a/g PPDU framing: the legacy short and long
// training fields (L-STF, L-LTF), the BPSK rate-1/2 SIGNAL field, and
// preamble-based packet detection. The cross-technology jammer transmits
// standard PPDUs, so the frame layout determines its on-air behaviour (and
// what a Wi-Fi monitor would see).

// Preamble lengths in samples at 20 MHz.
const (
	// STFLen is the short training field duration (8 us).
	STFLen = 160
	// LTFLen is the long training field duration (8 us).
	LTFLen = 160
	// SignalLen is the SIGNAL field: one OFDM symbol.
	SignalLen = SymbolLen
	// PreambleLen is the full legacy preamble (STF+LTF).
	PreambleLen = STFLen + LTFLen
	// stfPeriod is the STF's time-domain periodicity in samples.
	stfPeriod = 16
)

// stfCarriers maps subcarrier index -> scaled (1+j)/(−1−j) occupancy for
// the L-STF (802.11-2016 Eq. 19-8): every 4th subcarrier is active.
var stfCarriers = map[int]complex128{
	-24: complex(1, 1), -20: complex(-1, -1), -16: complex(1, 1),
	-12: complex(-1, -1), -8: complex(-1, -1), -4: complex(1, 1),
	4: complex(-1, -1), 8: complex(-1, -1), 12: complex(1, 1),
	16: complex(1, 1), 20: complex(1, 1), 24: complex(1, 1),
}

// ltfSequence is the L-LTF BPSK sequence on subcarriers -26..26
// (802.11-2016 Eq. 19-11), index 0 of the array = subcarrier -26.
var ltfSequence = [53]float64{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
	0,
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
}

// STF generates the 160-sample legacy short training field.
func STF() ([]complex128, error) {
	freq := make([]complex128, FFTSize)
	scale := complex(math.Sqrt(13.0/6.0), 0)
	for k, v := range stfCarriers {
		freq[carrierBin(k)] = scale * v
	}
	period, err := dsp.IFFT(freq)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, STFLen)
	for i := range out {
		out[i] = period[i%FFTSize]
	}
	return out, nil
}

// LTF generates the 160-sample legacy long training field: a 32-sample
// cyclic prefix followed by two repetitions of the 64-sample long training
// symbol.
func LTF() ([]complex128, error) {
	freq := make([]complex128, FFTSize)
	for i, v := range ltfSequence {
		k := i - 26
		if v != 0 {
			freq[carrierBin(k)] = complex(v, 0)
		}
	}
	sym, err := dsp.IFFT(freq)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, LTFLen)
	out = append(out, sym[FFTSize-32:]...)
	out = append(out, sym...)
	out = append(out, sym...)
	return out, nil
}

// Signal field errors.
var (
	ErrBadSignalLength = errors.New("wifi: SIGNAL length out of range")
	ErrSignalParity    = errors.New("wifi: SIGNAL parity check failed")
)

// rate54Bits is the RATE field pattern for 54 Mb/s (R1-R4 = 0011,
// transmitted R1 first). The reproduction's data section uses rate-1/2
// coding at 64-QAM for robustness; the RATE field is cosmetic here.
var rate54Bits = [4]uint8{0, 0, 1, 1}

// legalRates are the eight 802.11a/g RATE patterns (Table 17-6).
var legalRates = [8][4]uint8{
	{1, 1, 0, 1}, // 6 Mb/s
	{1, 1, 1, 1}, // 9
	{0, 1, 0, 1}, // 12
	{0, 1, 1, 1}, // 18
	{1, 0, 0, 1}, // 24
	{1, 0, 1, 1}, // 36
	{0, 0, 0, 1}, // 48
	{0, 0, 1, 1}, // 54
}

func validRate(r [4]uint8) bool {
	for _, legal := range legalRates {
		if r == legal {
			return true
		}
	}
	return false
}

// EncodeSignal builds the 24-bit SIGNAL field (RATE, reserved, LENGTH,
// parity, tail), convolutionally encodes it to 48 bits and maps it as one
// BPSK OFDM symbol. lengthBytes is the PSDU length (1..4095).
func EncodeSignal(lengthBytes int) ([]complex128, error) {
	if lengthBytes < 1 || lengthBytes > 4095 {
		return nil, fmt.Errorf("%w: %d", ErrBadSignalLength, lengthBytes)
	}
	bits := make([]uint8, 24)
	copy(bits[0:4], rate54Bits[:])
	// bits[4] reserved = 0.
	for i := 0; i < 12; i++ { // LENGTH, LSB first
		bits[5+i] = uint8(lengthBytes>>i) & 1
	}
	var parity uint8
	for _, b := range bits[:17] {
		parity ^= b
	}
	bits[17] = parity
	// bits[18:24] tail = 0.
	coded := ConvEncode(bits)
	// BPSK interleaving for one symbol (N_CBPS=48, s=1).
	inter := make([]uint8, 48)
	for k, b := range coded {
		i := (48/16)*(k%16) + k/16
		inter[i] = b
	}
	pts := make([]complex128, DataSubcarriers)
	for i, b := range inter {
		v := -1.0
		if b == 1 {
			v = 1.0
		}
		pts[i] = complex(v, 0)
	}
	return AssembleSymbol(pts)
}

// DecodeSignal inverts EncodeSignal, returning the PSDU length. It verifies
// the parity bit.
func DecodeSignal(symbol []complex128) (lengthBytes int, err error) {
	pts, err := DisassembleSymbol(symbol)
	if err != nil {
		return 0, err
	}
	inter := make([]uint8, 48)
	for i, p := range pts {
		if real(p) > 0 {
			inter[i] = 1
		}
	}
	coded := make([]uint8, 48)
	for k := range coded {
		i := (48/16)*(k%16) + k/16
		coded[k] = inter[i]
	}
	bits, err := ViterbiDecode(coded, true)
	if err != nil {
		return 0, err
	}
	var parity uint8
	for _, b := range bits[:17] {
		parity ^= b
	}
	if parity != bits[17] {
		return 0, ErrSignalParity
	}
	// The RATE field must be one of the eight legal patterns and the
	// reserved bit zero — the receiver-side sanity checks that reject
	// most non-SIGNAL symbols.
	if !validRate([4]uint8{bits[0], bits[1], bits[2], bits[3]}) {
		return 0, fmt.Errorf("%w: illegal RATE pattern", ErrBadSignalLength)
	}
	if bits[4] != 0 {
		return 0, fmt.Errorf("%w: reserved bit set", ErrBadSignalLength)
	}
	length := 0
	for i := 0; i < 12; i++ {
		length |= int(bits[5+i]) << i
	}
	if length < 1 || length > 4095 {
		return 0, fmt.Errorf("%w: decoded %d", ErrBadSignalLength, length)
	}
	return length, nil
}

// BuildPPDU assembles a complete PPDU: L-STF, L-LTF, SIGNAL (carrying
// lengthBytes) and the data waveform produced by the Transmitter.
func (tx *Transmitter) BuildPPDU(payload []uint8) ([]complex128, error) {
	stf, err := STF()
	if err != nil {
		return nil, err
	}
	ltf, err := LTF()
	if err != nil {
		return nil, err
	}
	lengthBytes := (len(payload) + 7) / 8
	if lengthBytes == 0 {
		lengthBytes = 1
	}
	sig, err := EncodeSignal(lengthBytes)
	if err != nil {
		return nil, err
	}
	data, _, err := tx.Transmit(payload)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, len(stf)+len(ltf)+len(sig)+len(data))
	out = append(out, stf...)
	out = append(out, ltf...)
	out = append(out, sig...)
	out = append(out, data...)
	return out, nil
}

// DetectSTF scans a waveform for the short training field's 16-sample
// periodicity using a normalized autocorrelation metric, returning the
// estimated packet start and the peak metric in [0, 1]. A metric below
// ~0.7 means no preamble is present.
func DetectSTF(wave []complex128) (start int, metric float64) {
	const window = STFLen - stfPeriod
	if len(wave) < STFLen {
		return 0, 0
	}
	bestStart, bestMetric := 0, 0.0
	for off := 0; off+STFLen <= len(wave); off++ {
		var corr complex128
		var energyA, energyB float64
		for i := 0; i < window; i++ {
			a := wave[off+i]
			b := wave[off+i+stfPeriod]
			corr += a * cmplx.Conj(b)
			energyA += real(a)*real(a) + imag(a)*imag(a)
			energyB += real(b)*real(b) + imag(b)*imag(b)
		}
		if energyA == 0 || energyB == 0 {
			continue
		}
		// Normalize by the geometric mean of both windows' energies
		// (Schmidl-Cox): Cauchy-Schwarz then bounds the metric by 1;
		// dividing by one window alone does not when the lagged window
		// carries more energy. Clamp the residual float rounding.
		m := cmplx.Abs(corr) / math.Sqrt(energyA*energyB)
		if m > 1 {
			m = 1
		}
		if m > bestMetric {
			bestMetric = m
			bestStart = off
		}
	}
	return bestStart, bestMetric
}
