// Package wifi implements the transmit and receive baseband chain of the
// IEEE 802.11a/g OFDM physical layer at the 64-QAM rate used by the paper's
// cross-technology jammer: scrambling (x^7+x^4+1), rate-1/2 K=7
// convolutional coding with Viterbi decoding, the per-symbol block
// interleaver, Gray-mapped 64-QAM, and 64-point OFDM symbol assembly with
// cyclic prefix (48 data + 4 pilot subcarriers, 20 MHz sampling).
//
// The package works on bit slices ([]uint8 with values 0/1) and complex
// baseband samples, the same representations used by the zigbee package, so
// the emulate package can connect the two.
package wifi

import "fmt"

// DefaultScramblerSeed is the 7-bit initial scrambler state. Any nonzero
// value is legal; 802.11 transmitters pick a pseudo-random nonzero seed.
const DefaultScramblerSeed = 0x5D

// Scramble applies the 802.11 frame-synchronous scrambler with generator
// x^7 + x^4 + 1 to bits, returning a new slice. seed is the 7-bit initial
// state and must be nonzero. Scrambling is an involution: applying it twice
// with the same seed restores the input.
func Scramble(bits []uint8, seed uint8) ([]uint8, error) {
	if seed&0x7F == 0 {
		return nil, fmt.Errorf("wifi: scrambler seed must be nonzero (got %#x)", seed)
	}
	state := seed & 0x7F
	out := make([]uint8, len(bits))
	for i, b := range bits {
		// Feedback bit = x7 XOR x4 (bits 6 and 3 of the state).
		fb := ((state >> 6) ^ (state >> 3)) & 1
		state = (state<<1 | fb) & 0x7F
		out[i] = (b & 1) ^ fb
	}
	return out, nil
}

// Descramble reverses Scramble when given the same seed.
func Descramble(bits []uint8, seed uint8) ([]uint8, error) {
	return Scramble(bits, seed)
}
