package rng

import (
	"math/rand"
	"testing"
)

// The whole point of the package: the stream must be bit-identical to the
// standard library's, for every rand.Rand method the codebase uses.
func TestStreamMatchesStdlib(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -3} {
		got, _ := New(seed)
		want := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			switch i % 5 {
			case 0:
				if g, w := got.Int63(), want.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, g, w)
				}
			case 1:
				if g, w := got.Float64(), want.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 2:
				if g, w := got.Intn(97), want.Intn(97); g != w {
					t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, g, w)
				}
			case 3:
				if g, w := got.Uint64(), want.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, g, w)
				}
			case 4:
				if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, g, w)
				}
			}
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	r, src := New(99)
	for i := 0; i < 1234; i++ {
		r.Int63()
	}
	state := src.State()
	want := make([]float64, 100)
	for i := range want {
		want[i] = r.Float64()
	}

	r2, src2 := New(99)
	_ = r2
	src2.SetState(state)
	got := rand.New(src2)
	for i := range want {
		if g := got.Float64(); g != want[i] {
			t.Fatalf("draw %d after restore: %v != %v", i, g, want[i])
		}
	}
	if src2.State() == state {
		t.Fatal("state did not advance after drawing")
	}
}

func TestSeedResetsPosition(t *testing.T) {
	_, src := New(5)
	src.Int63()
	src.Int63()
	if src.State() != 2 {
		t.Fatalf("state = %d, want 2", src.State())
	}
	src.Seed(5)
	if src.State() != 0 {
		t.Fatalf("state after Seed = %d, want 0", src.State())
	}
}

// A stream that mixed Int63 and Uint64 draws must still restore exactly:
// the count tracks generator steps, not call sites.
func TestMixedDrawRestore(t *testing.T) {
	_, src := New(8)
	for i := 0; i < 50; i++ {
		if i%3 == 0 {
			src.Uint64()
		} else {
			src.Int63()
		}
	}
	state := src.State()
	want := []uint64{src.Uint64(), uint64(src.Int63()), src.Uint64()}

	_, src2 := New(8)
	src2.SetState(state)
	got := []uint64{src2.Uint64(), uint64(src2.Int63()), src2.Uint64()}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d after mixed-call restore: %d != %d", i, got[i], want[i])
		}
	}
}
