// Package rng provides a math/rand-compatible random source whose complete
// state is a single exportable word, enabling bit-identical checkpoint and
// resume of long simulations. The standard library's generator hides its
// internal state (607 words of lagged-Fibonacci history), which would make
// snapshotting impossible; Source solves this without changing the stream:
// it delegates to the standard generator and counts the draws consumed, so
// its state is just (seed, count). Restoring reseeds the generator and
// replays count draws — a few nanoseconds each, negligible against the cost
// of the training run being resumed — after which the stream continues
// exactly where it left off.
//
// Keeping the standard stream (rather than swapping in a small open-state
// generator like SplitMix64) matters: every statistical band and fixed-seed
// expectation in the test suite was calibrated against it, and short
// reinforcement-learning runs are chaotic enough that changing the stream
// reshuffles which (seed, length) cells collapse.
package rng

import "math/rand"

// Source wraps the standard math/rand source, counting underlying draws so
// the stream position can be exported and restored. It implements
// rand.Source64. Not safe for concurrent use (like rand.NewSource).
type Source struct {
	seed  int64
	src   rand.Source
	src64 rand.Source64 // nil when the platform source lacks Uint64
	count uint64
}

var _ rand.Source64 = (*Source)(nil)

// NewSource returns a Source seeded with seed, producing exactly the stream
// of rand.NewSource(seed).
func NewSource(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// New returns a rand.Rand driven by a fresh Source, plus the Source itself
// for state capture. The caller must not use rand.Rand.Read, whose buffered
// byte cache lives outside the Source (all other rand.Rand methods draw
// directly from the source).
func New(seed int64) (*rand.Rand, *Source) {
	src := NewSource(seed)
	return rand.New(src), src
}

// Seed implements rand.Source, resetting the stream position to zero.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.src = rand.NewSource(seed)
	s.src64, _ = s.src.(rand.Source64)
	s.count = 0
}

// Int63 implements rand.Source. One call is one underlying generator step.
func (s *Source) Int63() int64 {
	s.count++
	return s.src.Int63()
}

// Uint64 implements rand.Source64. The standard generator produces a full
// 64-bit word per step (Int63 masks the same word), so delegation keeps one
// call = one counted step; on a hypothetical platform source without Uint64
// the two-Int63 composition counts its two steps through Int63 itself.
func (s *Source) Uint64() uint64 {
	if s.src64 != nil {
		s.count++
		return s.src64.Uint64()
	}
	return uint64(s.Int63())>>31 | uint64(s.Int63())<<32
}

// State returns the stream position: the number of underlying generator
// steps consumed since seeding.
func (s *Source) State() uint64 { return s.count }

// SetState repositions the stream to a position previously returned by
// State, by reseeding and replaying that many steps. Int63 advances the
// generator exactly one step whether or not the caller mixed in Uint64
// draws, so replaying with it is step-exact.
func (s *Source) SetState(count uint64) {
	s.Restore(s.seed, count)
}

// SeedUsed returns the seed the stream was last seeded with, for callers
// that persist the full (seed, position) pair.
func (s *Source) SeedUsed() int64 { return s.seed }

// Restore reseeds the stream with seed and replays count steps, so the pair
// (SeedUsed, State) fully round-trips even across a Source constructed with
// a different seed.
func (s *Source) Restore(seed int64, count uint64) {
	s.Seed(seed)
	s.count = count
	for i := uint64(0); i < count; i++ {
		s.src.Int63()
	}
}
