package iot

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/fault"
)

func engineTemplate() Config {
	cfg := DefaultConfig()
	cfg.SlotDuration = 500 * time.Millisecond
	cfg.JammerSlot = 500 * time.Millisecond
	return cfg
}

func randomAgent(t testing.TB, cfg Config) env.Agent {
	t.Helper()
	a, err := core.NewRandomFH(cfg.Channels, cfg.SweepWidth, len(cfg.TxPowers))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func runEngine(t testing.TB, clusters, workers, slots int, cfg Config) EngineStats {
	t.Helper()
	eng, err := NewEngine(EngineConfig{Clusters: clusters, Template: cfg, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(func(int) (env.Agent, error) {
		return core.NewRandomFH(cfg.Channels, cfg.SweepWidth, len(cfg.TxPowers))
	}, slots)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFieldShardEquivalence pins the engine's tentpole guarantee: the same
// field produces bit-identical EngineStats at every worker count, for both a
// single cluster and a sharded multi-cluster field.
func TestFieldShardEquivalence(t *testing.T) {
	cfg := engineTemplate()
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, clusters := range []int{1, 8} {
		ref := runEngine(t, clusters, workerCounts[0], 40, cfg)
		if ref.Clusters != clusters || ref.Nodes != clusters*cfg.Nodes {
			t.Fatalf("clusters=%d: field sized %d clusters / %d nodes", clusters, ref.Clusters, ref.Nodes)
		}
		if ref.SlotDeliveries != clusters*40 {
			t.Fatalf("clusters=%d: SlotDeliveries = %d, want %d", clusters, ref.SlotDeliveries, clusters*40)
		}
		for _, w := range workerCounts[1:] {
			got := runEngine(t, clusters, w, 40, cfg)
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("clusters=%d: EngineStats at workers=%d differ from workers=%d", clusters, w, workerCounts[0])
			}
		}
	}
}

// TestEngineSingleClusterMatchesSimulator pins the compatibility identity: a
// 1-cluster engine projects to RunStats bit-identical to the single-network
// Simulator over the same Config.
func TestEngineSingleClusterMatchesSimulator(t *testing.T) {
	cfg := engineTemplate()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(randomAgent(t, cfg), 40)
	if err != nil {
		t.Fatal(err)
	}
	got := runEngine(t, 1, 1, 40, cfg).RunStats()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("1-cluster engine RunStats = %+v, want Simulator %+v", got, want)
	}
}

// TestEngineRunBatchMatchesRun checks the lockstep batched path resolves the
// field bit-identically to the full-run-per-shard path when the batch plays
// the same per-cluster policy.
func TestEngineRunBatchMatchesRun(t *testing.T) {
	cfg := engineTemplate()
	const clusters, slots = 4, 30
	want := runEngine(t, clusters, 2, slots, cfg)

	eng, err := NewEngine(EngineConfig{Clusters: clusters, Template: cfg, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]env.Agent, clusters)
	for i := range agents {
		agents[i] = randomAgent(t, cfg)
	}
	batch, err := env.NewAgentBatch(agents)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunBatch(batch, slots)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RunBatch stats differ from Run stats")
	}
}

// TestEngineClustersDecorrelated checks distinct clusters see distinct
// randomness: with everything else equal, per-cluster runs should not be
// copies of cluster 0.
func TestEngineClustersDecorrelated(t *testing.T) {
	st := runEngine(t, 8, 2, 40, engineTemplate())
	distinct := false
	for _, r := range st.PerCluster[1:] {
		if !reflect.DeepEqual(r, st.PerCluster[0]) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("all 8 clusters produced identical RunStats; per-cluster seeds look correlated")
	}
}

// TestEngineFaultStreamsScoped checks that configured fault injection runs
// per cluster with decorrelated streams (cluster 0 keeps the base stream).
func TestEngineFaultStreamsScoped(t *testing.T) {
	cfg := engineTemplate()
	cfg.Faults = fault.BurstNoise{Seed: 7, Prob: 0.3, Len: 2, Power: 100}
	st := runEngine(t, 2, 1, 40, cfg)
	if st.Counters.JammedSlots == 0 {
		t.Error("burst noise injected but no slots classified as jammed")
	}

	// Cluster 0 must match a plain Simulator under the same injector: the
	// scoped stream applies only to clusters > 0.
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(randomAgent(t, cfg), 40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.PerCluster[0], want) {
		t.Error("cluster 0 under faults differs from the equivalent Simulator run")
	}
}

func TestClusterSeedIdentity(t *testing.T) {
	if got := clusterSeed(42, 0); got != 42 {
		t.Fatalf("clusterSeed(42, 0) = %d, want 42 (cluster 0 keeps the base seed)", got)
	}
	seen := map[int64]int{42: 0}
	for c := 1; c <= 64; c++ {
		s := clusterSeed(42, c)
		if prev, dup := seen[s]; dup {
			t.Fatalf("clusterSeed collision: clusters %d and %d both map to %d", prev, c, s)
		}
		seen[s] = c
	}
}

func TestEngineValidation(t *testing.T) {
	cfg := engineTemplate()
	if _, err := NewEngine(EngineConfig{Clusters: 0, Template: cfg}); err == nil {
		t.Error("0 clusters: expected error")
	}
	bad := cfg
	bad.Nodes = 0
	if _, err := NewEngine(EngineConfig{Clusters: 2, Template: bad}); err == nil {
		t.Error("invalid template: expected error")
	}

	eng, err := NewEngine(EngineConfig{Clusters: 2, Template: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Clusters() != 2 || eng.Nodes() != 2*cfg.Nodes {
		t.Errorf("engine sized %d clusters / %d nodes", eng.Clusters(), eng.Nodes())
	}
	newAgent := func(int) (env.Agent, error) { return core.Static{}, nil }
	if _, err := eng.Run(newAgent, 0); err == nil {
		t.Error("Run with 0 slots: expected error")
	}
	single, err := env.NewAgentBatch([]env.Agent{core.Static{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunBatch(single, 10); err == nil {
		t.Error("RunBatch with mis-sized batch: expected error")
	}
}

// BenchmarkFieldEngine measures engine throughput in slot-deliveries per
// second (one delivery = one cluster resolving one Tx slot) at field sizes
// from 10^3 to 10^5 nodes. scripts/bench.sh extracts the committed curve.
func BenchmarkFieldEngine(b *testing.B) {
	cfg := engineTemplate()
	for _, bc := range []struct {
		name     string
		clusters int
		nodes    int
	}{
		{"nodes-1e3", 200, 5},
		{"nodes-1e4", 2000, 5},
		{"nodes-1e5", 20000, 5},
	} {
		b.Run(bc.name, func(b *testing.B) {
			tmpl := cfg
			tmpl.Nodes = bc.nodes
			eng, err := NewEngine(EngineConfig{Clusters: bc.clusters, Template: tmpl})
			if err != nil {
				b.Fatal(err)
			}
			const slots = 5
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := eng.Run(func(int) (env.Agent, error) {
					return core.NewRandomFH(tmpl.Channels, tmpl.SweepWidth, len(tmpl.TxPowers))
				}, slots)
				if err != nil {
					b.Fatal(err)
				}
				if st.SlotDeliveries != bc.clusters*slots {
					b.Fatalf("SlotDeliveries = %d", st.SlotDeliveries)
				}
			}
			b.ReportMetric(float64(bc.clusters*slots*b.N)/b.Elapsed().Seconds(), "slotdeliveries/s")
			b.ReportMetric(float64(bc.clusters*bc.nodes), "nodes")
		})
	}
}
