package iot

import (
	"fmt"
	"math/rand"
	"time"

	"ctjam/internal/env"
	"ctjam/internal/fault"
	"ctjam/internal/metrics"
	"ctjam/internal/parallel"
)

// EngineConfig parameterizes the sharded field engine: Clusters independent
// hopping clusters, each an instance of the Template network (Template.Nodes
// peripherals per cluster, so the field holds Clusters × Template.Nodes
// nodes in total). Workers bounds the parallel shards.
type EngineConfig struct {
	// Clusters is the number of independent hopping clusters.
	Clusters int
	// Template is the per-cluster network configuration. Template.Seed is
	// the base seed; cluster c derives its own RNG and fault streams from
	// it (cluster 0 uses the base seed unchanged, so a 1-cluster engine is
	// bit-identical to a Simulator built from Template).
	Template Config
	// Workers bounds the goroutines sharding the clusters (0 or negative
	// means GOMAXPROCS). Results are bit-identical at any worker count.
	Workers int
}

// Validate checks the engine configuration.
func (c EngineConfig) Validate() error {
	if c.Clusters < 1 {
		return fmt.Errorf("iot: engine needs at least 1 cluster, got %d", c.Clusters)
	}
	return c.Template.Validate()
}

// splitmix64 is the standard 64-bit finalizer used to derive independent
// per-cluster seed streams from the base seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// clusterSeed derives cluster c's seed from the base seed. Cluster 0 keeps
// the base seed unchanged — the identity that makes a 1-cluster engine
// reproduce the single-network Simulator bit-for-bit — and every other
// cluster gets a splitmix-decorrelated stream.
func clusterSeed(seed int64, c int) int64 {
	if c == 0 {
		return seed
	}
	return int64(splitmix64(uint64(seed) + uint64(c)*0x9e3779b97f4a7c15))
}

// Engine runs a field of independent hopping clusters sharded across
// workers. Each cluster owns its channel state, jammer clock, RNG stream,
// and fault stream; the engine only coordinates slot boundaries and merges
// counters, so execution is deterministic at any worker count.
type Engine struct {
	cfg      EngineConfig
	clusters []*cluster
}

// NewEngine builds the cluster shards. Cluster c runs with seed
// clusterSeed(Template.Seed, c); when fault injection is configured, cluster
// c > 0 additionally gets its own fault stream via fault.Scoped so the same
// injector spec yields decorrelated impairments per cluster.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, clusters: make([]*cluster, cfg.Clusters)}
	for i := range e.clusters {
		ccfg := cfg.Template
		ccfg.Seed = clusterSeed(cfg.Template.Seed, i)
		if ccfg.Faults != nil && i > 0 {
			ccfg.Faults = fault.Scoped{Inner: ccfg.Faults, Stream: int64(i)}
		}
		cl, err := newCluster(ccfg)
		if err != nil {
			return nil, fmt.Errorf("iot: cluster %d: %w", i, err)
		}
		e.clusters[i] = cl
	}
	return e, nil
}

// Clusters returns the cluster count.
func (e *Engine) Clusters() int { return len(e.clusters) }

// Nodes returns the total peripheral-node count across the field.
func (e *Engine) Nodes() int { return len(e.clusters) * e.cfg.Template.Nodes }

// EngineStats aggregates one field run: per-cluster RunStats plus the
// field-wide totals. SlotDeliveries counts cluster-slots resolved
// (Clusters × Slots) — the unit of the engine's throughput benchmark.
type EngineStats struct {
	// Clusters and Nodes describe the field size.
	Clusters int
	Nodes    int
	// Slots is the number of Tx slots each cluster executed.
	Slots int
	// SlotDeliveries is Clusters × Slots.
	SlotDeliveries int
	// Attempted / Delivered / FrameLosses total the per-cluster packet
	// counts.
	Attempted   int
	Delivered   int
	FrameLosses int
	// GoodputPktsPerSlot is the field-wide goodput: total packets delivered
	// per Tx slot (summed over clusters).
	GoodputPktsPerSlot float64
	// MeanUtilization averages the per-cluster slot utilizations (all
	// clusters run the same slot count, so the unweighted mean is the
	// per-cluster-slot mean).
	MeanUtilization float64
	// MeanOverhead averages the per-cluster mean slot overheads.
	MeanOverhead time.Duration
	// Counters merges the per-cluster Table I counters.
	Counters metrics.Counters
	// PerCluster holds each cluster's own run statistics, indexed by
	// cluster.
	PerCluster []RunStats
}

// RunStats projects the field-wide statistics onto the single-network
// RunStats shape: totals for packet counts, the field-wide goodput, and the
// cluster-averaged utilization and overhead. A 1-cluster engine's projection
// is bit-identical to the Simulator's RunStats over the same Config.
func (s EngineStats) RunStats() RunStats {
	return RunStats{
		Slots:              s.Slots,
		Attempted:          s.Attempted,
		Delivered:          s.Delivered,
		FrameLosses:        s.FrameLosses,
		GoodputPktsPerSlot: s.GoodputPktsPerSlot,
		MeanUtilization:    s.MeanUtilization,
		MeanOverhead:       s.MeanOverhead,
		Counters:           s.Counters,
	}
}

// merge folds per-cluster runs into field-wide statistics.
func (e *Engine) merge(per []RunStats) EngineStats {
	out := EngineStats{
		Clusters:   len(per),
		Nodes:      e.Nodes(),
		Slots:      per[0].Slots,
		PerCluster: per,
	}
	out.SlotDeliveries = out.Clusters * out.Slots
	shards := make([]metrics.Counters, len(per))
	var util float64
	var ovh time.Duration
	for i, r := range per {
		out.Attempted += r.Attempted
		out.Delivered += r.Delivered
		out.FrameLosses += r.FrameLosses
		util += r.MeanUtilization
		ovh += r.MeanOverhead
		shards[i] = r.Counters
	}
	out.Counters = metrics.Merge(shards...)
	out.GoodputPktsPerSlot = float64(out.Delivered) / float64(out.Slots)
	out.MeanUtilization = util / float64(len(per))
	out.MeanOverhead = ovh / time.Duration(len(per))
	return out
}

// Run drives the whole field for the given number of Tx slots, building one
// agent per cluster via newAgent (called from worker goroutines; build
// agents from the cluster index only). Clusters run independently —
// full-run-per-shard — so this is the fastest path when the policy has no
// cross-cluster batching to exploit. Results are bit-identical at any
// worker count.
func (e *Engine) Run(newAgent func(cluster int) (env.Agent, error), slots int) (EngineStats, error) {
	if slots <= 0 {
		return EngineStats{}, fmt.Errorf("iot: slots %d must be positive", slots)
	}
	per := make([]RunStats, len(e.clusters))
	workers := parallel.Workers(e.cfg.Workers, len(e.clusters))
	err := parallel.ForEach(workers, len(e.clusters), func(i int) error {
		agent, err := newAgent(i)
		if err != nil {
			return fmt.Errorf("iot: cluster %d agent: %w", i, err)
		}
		st, err := e.clusters[i].run(agent, slots)
		if err != nil {
			return fmt.Errorf("iot: cluster %d: %w", i, err)
		}
		per[i] = st
		return nil
	})
	if err != nil {
		return EngineStats{}, err
	}
	return e.merge(per), nil
}

// RunBatch drives the whole field in lockstep through one env.BatchAgent
// sized for Clusters links: each Tx slot, the agent decides for every
// cluster at once (one stacked inference batch), then the clusters resolve
// their slots in parallel. Per-cluster RNG seeding matches Run exactly, so
// RunBatch is bit-identical to Run over per-cluster agents implementing the
// same policy, at any worker count.
func (e *Engine) RunBatch(a env.BatchAgent, slots int) (EngineStats, error) {
	k := len(e.clusters)
	if a.Len() != k {
		return EngineStats{}, fmt.Errorf("iot: batch agent %s sized for %d links, got %d clusters", a.Name(), a.Len(), k)
	}
	if slots <= 0 {
		return EngineStats{}, fmt.Errorf("iot: slots %d must be positive", slots)
	}
	rngs := make([]*rand.Rand, k)
	prevs := make([]env.SlotInfo, k)
	for i, cl := range e.clusters {
		if err := cl.reset(); err != nil {
			return EngineStats{}, err
		}
		rngs[i] = rand.New(rand.NewSource(cl.cfg.Seed + 0x5eed))
		// The initial channel draw must consume the cluster RNG in the same
		// order as run (reset first, then one Intn).
		prevs[i] = env.SlotInfo{First: true, Channel: cl.rng.Intn(cl.cfg.Channels)}
	}
	if err := a.ResetBatch(rngs); err != nil {
		return EngineStats{}, fmt.Errorf("iot: batch reset (agent %s): %w", a.Name(), err)
	}

	accs := make([]runAccum, k)
	decs := make([]env.Decision, k)
	stats := make([]SlotStats, k)
	hops := make([]bool, k)
	workers := parallel.Workers(e.cfg.Workers, k)
	for s := 0; s < slots; s++ {
		if err := a.DecideBatch(prevs, decs); err != nil {
			return EngineStats{}, fmt.Errorf("iot: slot %d (agent %s): %w", s, a.Name(), err)
		}
		err := parallel.ForEach(workers, k, func(i int) error {
			cl := e.clusters[i]
			d := decs[i]
			if d.Channel < 0 || d.Channel >= cl.cfg.Channels || d.Power < 0 || d.Power >= len(cl.cfg.TxPowers) {
				return fmt.Errorf("iot: agent %s returned invalid decision %+v for cluster %d", a.Name(), d, i)
			}
			hops[i] = !prevs[i].First && d.Channel != prevs[i].Channel
			st, err := cl.runSlot(d.Channel, d.Power, hops[i])
			if err != nil {
				return fmt.Errorf("iot: cluster %d slot %d: %w", i, s, err)
			}
			stats[i] = st
			return nil
		})
		if err != nil {
			return EngineStats{}, err
		}
		for i := range e.clusters {
			accs[i].add(&e.clusters[i].cfg, decs[i], stats[i], hops[i])
			prevs[i] = env.SlotInfo{
				Slot:    s + 1,
				Channel: decs[i].Channel,
				Power:   decs[i].Power,
				Outcome: stats[i].Outcome,
				Hopped:  hops[i],
			}
		}
	}
	per := make([]RunStats, k)
	for i := range accs {
		per[i] = accs[i].finish()
	}
	return e.merge(per), nil
}
