package iot

import (
	"reflect"
	"testing"

	"ctjam/internal/env"
)

// TestBatchRunMatchesSerialRuns pins the batching contract: K simulators
// driven in lockstep produce RunStats bit-identical to K serial Run calls
// playing the same per-link policy.
func TestBatchRunMatchesSerialRuns(t *testing.T) {
	const k, slots = 3, 30
	cfg := engineTemplate()

	want := make([]RunStats, k)
	for i := range want {
		cfgI := cfg
		cfgI.Seed = cfg.Seed + int64(i)
		sim, err := New(cfgI)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sim.Run(randomAgent(t, cfgI), slots)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = run
	}

	sims := make([]*Simulator, k)
	agents := make([]env.Agent, k)
	for i := range sims {
		cfgI := cfg
		cfgI.Seed = cfg.Seed + int64(i)
		sim, err := New(cfgI)
		if err != nil {
			t.Fatal(err)
		}
		sims[i] = sim
		agents[i] = randomAgent(t, cfgI)
	}
	batch, err := env.NewAgentBatch(agents)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BatchRun(sims, batch, slots)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batched runs differ from serial runs")
	}
}

func TestBatchRunValidation(t *testing.T) {
	cfg := engineTemplate()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := env.NewAgentBatch([]env.Agent{randomAgent(t, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BatchRun(nil, batch, 10); err == nil {
		t.Error("empty simulator list: expected error")
	}
	if _, err := BatchRun([]*Simulator{sim, sim}, batch, 10); err == nil {
		t.Error("mis-sized batch: expected error")
	}
	if _, err := BatchRun([]*Simulator{sim}, batch, 0); err == nil {
		t.Error("0 slots: expected error")
	}
}
