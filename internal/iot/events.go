package iot

import "time"

// interval is a half-open time interval [start, end).
type interval struct {
	start, end time.Duration
}

// slotWheel is the per-slot event index of the discrete-event engine. The
// jammer's emissions arrive as a sorted span list (advanceJammer appends at
// monotonically increasing slot boundaries); the wheel collapses the spans
// that can actually kill a packet — same channel block, power above the
// victim's — into a merged interval union once per Tx slot. The packet loop
// then asks "does this packet overlap a strong emission?" with a cursor that
// only moves forward, so resolving a slot of P packets against S spans costs
// O(P+S) instead of the O(P·S) of rescanning the span list per packet.
//
// The answer for each packet is identical to the exhaustive scan: a packet
// overlaps some strong span iff it overlaps their union, and packets advance
// monotonically in time within a slot so a passed interval can never matter
// again.
type slotWheel struct {
	strong []interval
	cursor int
}

// build recomputes the merged strong-emission union for one Tx slot. spans
// must be sorted by start time (the cluster maintains this invariant);
// adjacent or overlapping qualifying spans coalesce. The backing array is
// reused across slots.
func (w *slotWheel) build(spans []jamSpan, victimBlock int, txPower float64) {
	w.strong = w.strong[:0]
	w.cursor = 0
	for _, sp := range spans {
		if sp.block != victimBlock || sp.power <= txPower {
			continue
		}
		if n := len(w.strong); n > 0 && sp.start <= w.strong[n-1].end {
			if sp.end > w.strong[n-1].end {
				w.strong[n-1].end = sp.end
			}
			continue
		}
		w.strong = append(w.strong, interval{start: sp.start, end: sp.end})
	}
}

// hits reports whether [t0, t1) overlaps any strong emission. Successive
// calls within one slot must present non-decreasing t0 — the packet loop
// walks forward in time — which lets the cursor retire intervals that ended
// before t0 permanently.
func (w *slotWheel) hits(t0, t1 time.Duration) bool {
	for w.cursor < len(w.strong) && w.strong[w.cursor].end <= t0 {
		w.cursor++
	}
	return w.cursor < len(w.strong) && w.strong[w.cursor].start < t1
}
