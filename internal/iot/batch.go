package iot

import (
	"fmt"
	"math/rand"
	"time"

	"ctjam/internal/env"
)

// BatchRun drives len(sims) independent field simulators in lockstep through
// one env.BatchAgent: every Tx slot, the agent decides for all networks at
// once (one stacked inference batch), then each simulator resolves its slot.
// Per-simulator RNG seeding matches Run exactly, so the results are
// bit-identical to len(sims) serial Run calls at any batch size.
func BatchRun(sims []*Simulator, a env.BatchAgent, slots int) ([]RunStats, error) {
	k := len(sims)
	if k == 0 {
		return nil, fmt.Errorf("iot: batch run needs at least one simulator")
	}
	if a.Len() != k {
		return nil, fmt.Errorf("iot: batch agent %s sized for %d links, got %d simulators", a.Name(), a.Len(), k)
	}
	if slots <= 0 {
		return nil, fmt.Errorf("iot: slots %d must be positive", slots)
	}
	rngs := make([]*rand.Rand, k)
	prevs := make([]env.SlotInfo, k)
	for i, s := range sims {
		if err := s.reset(); err != nil {
			return nil, err
		}
		rngs[i] = rand.New(rand.NewSource(s.cfg.Seed + 0x5eed))
		// The initial channel draw must consume the simulator RNG in the
		// same order as Run (reset first, then one Intn).
		prevs[i] = env.SlotInfo{First: true, Channel: s.rng.Intn(s.cfg.Channels)}
	}
	if err := a.ResetBatch(rngs); err != nil {
		return nil, fmt.Errorf("iot: batch reset (agent %s): %w", a.Name(), err)
	}

	runs := make([]RunStats, k)
	sumUtil := make([]float64, k)
	sumOverhd := make([]time.Duration, k)
	prevJammed := make([]bool, k)
	decs := make([]env.Decision, k)
	for i := 0; i < slots; i++ {
		if err := a.DecideBatch(prevs, decs); err != nil {
			return nil, fmt.Errorf("iot: slot %d (agent %s): %w", i, a.Name(), err)
		}
		for n, s := range sims {
			d := decs[n]
			if d.Channel < 0 || d.Channel >= s.cfg.Channels || d.Power < 0 || d.Power >= len(s.cfg.TxPowers) {
				return nil, fmt.Errorf("iot: agent %s returned invalid decision %+v", a.Name(), d)
			}
			hopped := !prevs[n].First && d.Channel != prevs[n].Channel
			st, err := s.RunSlot(d.Channel, d.Power, hopped)
			if err != nil {
				return nil, err
			}

			run := &runs[n]
			run.Slots++
			run.Attempted += st.Attempted
			run.Delivered += st.Delivered
			sumUtil[n] += st.Utilization
			sumOverhd[n] += st.Overhead

			run.Counters.Slots++
			if st.Outcome.Succeeded() {
				run.Counters.Successes++
			} else {
				run.Counters.JamLosses++
			}
			if st.Outcome != env.OutcomeSuccess {
				run.Counters.JammedSlots++
			}
			if hopped {
				run.Counters.Hops++
				if prevJammed[n] && st.Outcome.Succeeded() {
					run.Counters.UsefulHops++
				}
			}
			if d.Power > 0 {
				run.Counters.PCSlots++
				if st.Outcome == env.OutcomeJammedSurvived && s.cfg.TxPowers[0] < s.cfg.TxPowers[d.Power] {
					run.Counters.UsefulPCs++
				}
			}

			prevJammed[n] = st.Outcome == env.OutcomeJammed
			prevs[n] = env.SlotInfo{
				Slot:    i + 1,
				Channel: d.Channel,
				Power:   d.Power,
				Outcome: st.Outcome,
				Hopped:  hopped,
			}
		}
	}
	for n := range runs {
		runs[n].GoodputPktsPerSlot = float64(runs[n].Delivered) / float64(runs[n].Slots)
		runs[n].MeanUtilization = sumUtil[n] / float64(runs[n].Slots)
		runs[n].MeanOverhead = sumOverhd[n] / time.Duration(runs[n].Slots)
	}
	return runs, nil
}
