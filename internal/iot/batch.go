package iot

import (
	"fmt"
	"math/rand"

	"ctjam/internal/env"
)

// BatchRun drives len(sims) independent field simulators in lockstep through
// one env.BatchAgent: every Tx slot, the agent decides for all networks at
// once (one stacked inference batch), then each simulator resolves its slot.
// Per-simulator RNG seeding matches Run exactly, so the results are
// bit-identical to len(sims) serial Run calls at any batch size.
func BatchRun(sims []*Simulator, a env.BatchAgent, slots int) ([]RunStats, error) {
	k := len(sims)
	if k == 0 {
		return nil, fmt.Errorf("iot: batch run needs at least one simulator")
	}
	if a.Len() != k {
		return nil, fmt.Errorf("iot: batch agent %s sized for %d links, got %d simulators", a.Name(), a.Len(), k)
	}
	if slots <= 0 {
		return nil, fmt.Errorf("iot: slots %d must be positive", slots)
	}
	rngs := make([]*rand.Rand, k)
	prevs := make([]env.SlotInfo, k)
	for i, s := range sims {
		if err := s.reset(); err != nil {
			return nil, err
		}
		rngs[i] = rand.New(rand.NewSource(s.c.cfg.Seed + 0x5eed))
		// The initial channel draw must consume the simulator RNG in the
		// same order as Run (reset first, then one Intn).
		prevs[i] = env.SlotInfo{First: true, Channel: s.c.rng.Intn(s.c.cfg.Channels)}
	}
	if err := a.ResetBatch(rngs); err != nil {
		return nil, fmt.Errorf("iot: batch reset (agent %s): %w", a.Name(), err)
	}

	accs := make([]runAccum, k)
	decs := make([]env.Decision, k)
	for i := 0; i < slots; i++ {
		if err := a.DecideBatch(prevs, decs); err != nil {
			return nil, fmt.Errorf("iot: slot %d (agent %s): %w", i, a.Name(), err)
		}
		for n, s := range sims {
			d := decs[n]
			if d.Channel < 0 || d.Channel >= s.c.cfg.Channels || d.Power < 0 || d.Power >= len(s.c.cfg.TxPowers) {
				return nil, fmt.Errorf("iot: agent %s returned invalid decision %+v", a.Name(), d)
			}
			hopped := !prevs[n].First && d.Channel != prevs[n].Channel
			st, err := s.RunSlot(d.Channel, d.Power, hopped)
			if err != nil {
				return nil, err
			}
			accs[n].add(&s.c.cfg, d, st, hopped)
			prevs[n] = env.SlotInfo{
				Slot:    i + 1,
				Channel: d.Channel,
				Power:   d.Power,
				Outcome: st.Outcome,
				Hopped:  hopped,
			}
		}
	}
	runs := make([]RunStats, k)
	for n := range accs {
		runs[n] = accs[n].finish()
	}
	return runs, nil
}
