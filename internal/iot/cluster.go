package iot

import (
	"fmt"
	"math/rand"
	"time"

	"ctjam/internal/env"
	"ctjam/internal/fault"
	"ctjam/internal/jammer"
	"ctjam/internal/mac"
	"ctjam/internal/phy/zigbee"
)

// dataFrameSymbols builds the demodulated symbol stream of one full-size
// data frame. Data packets are full-size frames (PacketAirtime is the
// 125-byte airtime); a deterministic payload keeps the receive path pure.
func dataFrameSymbols() ([]uint8, error) {
	payload := make([]byte, zigbee.MaxPayload-zigbee.FCSLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	frame, err := zigbee.EncodeFrame(payload)
	if err != nil {
		return nil, fmt.Errorf("iot: build data frame: %w", err)
	}
	return zigbee.BytesToSymbols(frame), nil
}

// jamSpan is one continuous jamming emission on a channel block.
type jamSpan struct {
	start, end time.Duration
	block      int
	power      float64
}

// cluster is the sharded field engine's unit of work: one hub-and-spokes
// network on its own channel with its own jammer clock, RNG stream, CSMA
// arbiter, and fault stream. A cluster is fully self-contained — no state is
// shared with other clusters — which is what makes the engine's parallel
// execution bit-identical at any worker count. The single-network Simulator
// is a facade over one cluster.
//
// Not safe for concurrent use; the engine runs each cluster on exactly one
// worker at a time.
type cluster struct {
	cfg Config
	rng *rand.Rand
	jam jammer.Strategy

	now         time.Duration
	nextJamSlot time.Duration
	spans       []jamSpan
	arbiter     *mac.Arbiter
	slotIdx     int

	// wheel indexes the slot's strong co-block emissions so the packet loop
	// answers "is this packet jammed?" with a monotone cursor instead of
	// rescanning every span per packet.
	wheel slotWheel

	// frameSymbols is the demodulated symbol stream of one full-size data
	// frame, precomputed at reset when fault injection is configured; pktIdx
	// is the monotone packet counter seeding per-packet symbol corruption.
	// symScratch/byteScratch are the pooled receive-path buffers reused
	// across packet deliveries.
	frameSymbols []uint8
	pktIdx       int64
	symScratch   []uint8
	byteScratch  []byte
}

// newCluster validates cfg and builds a ready-to-run cluster.
func newCluster(cfg Config) (*cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &cluster{cfg: cfg}
	if err := c.reset(); err != nil {
		return nil, err
	}
	return c, nil
}

// reset rewinds the cluster to slot 0. The RNG construction order here is
// load-bearing: seed the cluster RNG first, then build the sweeper and the
// arbiter from it, exactly as the original Simulator did, so goldens pinned
// against the pre-sharding code reproduce bit-for-bit.
func (c *cluster) reset() error {
	c.rng = rand.New(rand.NewSource(c.cfg.Seed))
	c.now = 0
	c.nextJamSlot = 0
	c.spans = c.spans[:0] // keep capacity across resets
	c.slotIdx = 0
	c.pktIdx = 0
	c.frameSymbols = nil
	if c.cfg.Faults != nil {
		syms, err := dataFrameSymbols()
		if err != nil {
			return err
		}
		c.frameSymbols = syms
	}
	if c.cfg.JammerEnabled {
		jam, err := jammer.New(c.cfg.Jammer, c.cfg.Channels, c.cfg.SweepWidth, c.cfg.JamPowers, c.cfg.JammerMode, c.rng)
		if err != nil {
			return fmt.Errorf("iot: build jammer: %w", err)
		}
		c.jam = jam
	} else {
		c.jam = nil
	}
	c.arbiter = nil
	if c.cfg.UseCSMA {
		arb, err := mac.NewArbiter(c.cfg.Nodes, mac.DefaultParams(), c.rng)
		if err != nil {
			return fmt.Errorf("iot: build csma arbiter: %w", err)
		}
		c.arbiter = arb
	}
	return nil
}

// advanceJammer processes jammer slot boundaries up to horizon, recording
// emission spans. The jammer senses the victim's current data channel at
// each of its own slot starts. Spans are appended in start order and the
// trim preserves it, so the slice stays sorted — the slot wheel relies on
// that.
func (c *cluster) advanceJammer(victimChannel int, horizon time.Duration) error {
	if c.jam == nil {
		return nil
	}
	for c.nextJamSlot < horizon {
		jammed, power, err := c.jam.Step(victimChannel)
		if err != nil {
			return err
		}
		if jammed {
			// A jammed slot means the emission covers the victim's block,
			// whatever the strategy (for the sweeper this equals its locked
			// block).
			block := victimChannel / c.cfg.SweepWidth
			c.spans = append(c.spans, jamSpan{
				start: c.nextJamSlot,
				end:   c.nextJamSlot + c.cfg.JammerSlot,
				block: block,
				power: power,
			})
		}
		c.nextJamSlot += c.cfg.JammerSlot
	}
	// Trim spans that ended before the current slot to bound memory; the
	// backing array is reused across slots.
	keep := c.spans[:0]
	for _, sp := range c.spans {
		if sp.end > c.now {
			keep = append(keep, sp)
		}
	}
	c.spans = keep
	return nil
}

// overlap returns the duration of [a0,a1) ∩ [b0,b1).
func overlap(a0, a1, b0, b1 time.Duration) time.Duration {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// runSlot simulates one Tx slot on the given channel and power index,
// returning its statistics. hopped marks a channel change decided at the
// slot boundary.
func (c *cluster) runSlot(channel, power int, hopped bool) (SlotStats, error) {
	if channel < 0 || channel >= c.cfg.Channels {
		return SlotStats{}, fmt.Errorf("iot: channel %d out of range", channel)
	}
	if power < 0 || power >= len(c.cfg.TxPowers) {
		return SlotStats{}, fmt.Errorf("iot: power index %d out of range", power)
	}
	slotStart := c.now
	slotEnd := slotStart + c.cfg.SlotDuration

	// Injected faults for this slot: clock drift stretches every timed
	// operation, burst noise acts as a whole-slot co-channel emission, and
	// ACK loss voids the slot's deliveries.
	var flt fault.Slot
	if c.cfg.Faults != nil {
		c.cfg.Faults.Apply(int64(c.slotIdx), &flt)
	}
	drift := 1 + flt.ClockDrift
	if drift < 0.5 {
		drift = 0.5
	}
	stretch := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * drift)
	}

	// Phase 1: policy inference + polling-mode FH/PC negotiation.
	overheadDur := c.cfg.Timing.sample(c.cfg.Timing.DQNDecision, c.rng)
	for n := 0; n < c.cfg.Nodes; n++ {
		overheadDur += c.cfg.Timing.sample(c.cfg.Timing.PollPerNode, c.rng)
		if c.rng.Float64() < c.cfg.Timing.OffChannelProb {
			overheadDur += c.cfg.Timing.sampleRecovery(c.rng)
		}
	}
	overheadDur = stretch(overheadDur)
	if overheadDur > c.cfg.SlotDuration {
		overheadDur = c.cfg.SlotDuration
	}
	dataStart := slotStart + overheadDur

	// Drive the jammer across this slot.
	if err := c.advanceJammer(channel, slotEnd); err != nil {
		return SlotStats{}, err
	}

	victimBlock := channel / c.cfg.SweepWidth
	txPower := c.cfg.TxPowers[power]
	c.wheel.build(c.spans, victimBlock, txPower)

	// Phase 2: data exchange under LBT / CSMA-CA.
	fixedService := stretch(c.cfg.Timing.PacketServiceTime())
	air := stretch(c.cfg.Timing.LBT + c.cfg.Timing.PacketAirtime)
	tail := stretch(c.cfg.Timing.AckRTT + c.cfg.Timing.Processing)
	stats := SlotStats{
		Overhead: overheadDur,
		DataTime: slotEnd - dataStart,
		Hopped:   hopped,
	}
	for t := dataStart; ; {
		service := fixedService
		if c.arbiter != nil {
			out, err := c.arbiter.NextTransmission()
			if err != nil {
				// Retry-limit exhaustion: the slot time is burnt
				// without a transmission.
				t += time.Duration(mac.DefaultParams().MaxRetries) * air
				continue
			}
			// Collided attempts waste a frame airtime each.
			service = out.AccessDelay +
				time.Duration(out.Collisions)*air +
				c.cfg.Timing.PacketAirtime + tail
		}
		if t+service > slotEnd {
			break
		}
		stats.Attempted++
		lost := flt.NoisePower > txPower
		if !lost && c.wheel.hits(t, t+service-tail) {
			lost = true
		}
		if !lost && (flt.DropSymbols > 0 || flt.FlipProb > 0) {
			// The packet survived the channel; push it through the ZigBee
			// receive path under the slot's symbol faults.
			if !c.deliverFrame(flt) {
				lost = true
				stats.FrameLosses++
			}
		}
		if !lost {
			stats.Delivered++
		}
		t += service
	}
	if flt.AckLoss {
		// The ACK channel is out for this slot: packets may have reached
		// the hub, but none count as delivered.
		stats.Delivered = 0
	}

	// Classify the slot like the MDP's states. Burst noise occupies the
	// victim's channel for the whole data phase.
	var coChannel, strong time.Duration
	for _, sp := range c.spans {
		if sp.block != victimBlock {
			continue
		}
		o := overlap(dataStart, slotEnd, sp.start, sp.end)
		if o == 0 {
			continue
		}
		coChannel += o
		if sp.power > txPower {
			strong += o
		}
	}
	if flt.NoisePower > 0 {
		if stats.DataTime > coChannel {
			coChannel = stats.DataTime
		}
		if flt.NoisePower > txPower && stats.DataTime > strong {
			strong = stats.DataTime
		}
	}
	switch {
	case stats.DataTime > 0 && strong*2 > stats.DataTime:
		stats.Outcome = env.OutcomeJammed
	case coChannel > 0:
		stats.Outcome = env.OutcomeJammedSurvived
	default:
		stats.Outcome = env.OutcomeSuccess
	}
	if flt.AckLoss && stats.Outcome != env.OutcomeJammed {
		// Without ACKs the hub observes the slot as lost, like env.Step.
		stats.Outcome = env.OutcomeJammed
	}
	if stats.DataTime > 0 {
		stats.Utilization = float64(stats.DataTime) / float64(c.cfg.SlotDuration)
	}

	c.now = slotEnd
	c.slotIdx++
	return stats, nil
}

// deliverFrame demodulates one corrupted copy of the precomputed data frame
// and reports whether the receiver recovered it. Corruption is a pure
// function of (config seed, packet index), so runs stay bit-reproducible.
// The symbol and byte buffers are pooled across deliveries: a faulted
// cluster at steady state allocates nothing per packet.
func (c *cluster) deliverFrame(flt fault.Slot) bool {
	c.symScratch = fault.CorruptSymbolsInto(c.symScratch, flt, c.cfg.Seed, c.pktIdx, c.frameSymbols)
	c.pktIdx++
	raw, err := zigbee.SymbolsToBytesInto(c.byteScratch, c.symScratch)
	if err != nil {
		return false
	}
	c.byteScratch = raw
	return zigbee.CheckFrame(raw) == nil
}

// runAccum accumulates one network's per-slot statistics into RunStats; the
// serial Run, the lockstep BatchRun, and the engine's per-cluster loops all
// share it so the bookkeeping cannot drift apart.
type runAccum struct {
	run        RunStats
	sumUtil    float64
	sumOverhd  time.Duration
	prevJammed bool
}

// add folds one resolved slot into the accumulator.
func (a *runAccum) add(cfg *Config, d env.Decision, st SlotStats, hopped bool) {
	a.run.Slots++
	a.run.Attempted += st.Attempted
	a.run.Delivered += st.Delivered
	a.run.FrameLosses += st.FrameLosses
	a.sumUtil += st.Utilization
	a.sumOverhd += st.Overhead

	a.run.Counters.Slots++
	if st.Outcome.Succeeded() {
		a.run.Counters.Successes++
	} else {
		a.run.Counters.JamLosses++
	}
	if st.Outcome != env.OutcomeSuccess {
		a.run.Counters.JammedSlots++
	}
	if hopped {
		a.run.Counters.Hops++
		if a.prevJammed && st.Outcome.Succeeded() {
			a.run.Counters.UsefulHops++
		}
	}
	if d.Power > 0 {
		a.run.Counters.PCSlots++
		if st.Outcome == env.OutcomeJammedSurvived && cfg.TxPowers[0] < cfg.TxPowers[d.Power] {
			a.run.Counters.UsefulPCs++
		}
	}
	a.prevJammed = st.Outcome == env.OutcomeJammed
}

// finish computes the derived run metrics.
func (a *runAccum) finish() RunStats {
	a.run.GoodputPktsPerSlot = float64(a.run.Delivered) / float64(a.run.Slots)
	a.run.MeanUtilization = a.sumUtil / float64(a.run.Slots)
	a.run.MeanOverhead = a.sumOverhd / time.Duration(a.run.Slots)
	return a.run
}

// run drives an anti-jamming agent through the cluster for the given number
// of Tx slots.
func (c *cluster) run(agent env.Agent, slots int) (RunStats, error) {
	if slots <= 0 {
		return RunStats{}, fmt.Errorf("iot: slots %d must be positive", slots)
	}
	if err := c.reset(); err != nil {
		return RunStats{}, err
	}
	agent.Reset(rand.New(rand.NewSource(c.cfg.Seed + 0x5eed)))

	var acc runAccum
	prev := env.SlotInfo{First: true, Channel: c.rng.Intn(c.cfg.Channels)}
	for i := 0; i < slots; i++ {
		d := agent.Decide(prev)
		if d.Channel < 0 || d.Channel >= c.cfg.Channels || d.Power < 0 || d.Power >= len(c.cfg.TxPowers) {
			return RunStats{}, fmt.Errorf("iot: agent %s returned invalid decision %+v", agent.Name(), d)
		}
		hopped := !prev.First && d.Channel != prev.Channel
		st, err := c.runSlot(d.Channel, d.Power, hopped)
		if err != nil {
			return RunStats{}, err
		}
		acc.add(&c.cfg, d, st, hopped)
		prev = env.SlotInfo{
			Slot:    i + 1,
			Channel: d.Channel,
			Power:   d.Power,
			Outcome: st.Outcome,
			Hopped:  hopped,
		}
	}
	return acc.finish(), nil
}
