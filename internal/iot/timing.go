// Package iot is a discrete-event simulator of the paper's field testbed
// (§IV-D): a star ZigBee network of one hub and several peripheral nodes
// operating in time slots, with the hub running the anti-jamming scheme,
// polling FH/PC decisions to the nodes over a control channel, and the
// nodes delivering data packets under listen-before-talk, while a
// cross-technology jammer with its own independent slot clock sweeps and
// jams channels.
//
// The timing constants default to the values the paper measured on its
// TI CC26X2R1 / USRP N210 testbed (Fig. 9a): DQN inference 9 ms, polling
// 13.1 ms per node, ACK round trip 0.9 ms, per-packet processing 0.6 ms.
package iot

import (
	"fmt"
	"math/rand"
	"time"

	"ctjam/internal/phy/zigbee"
)

// Timing collects the protocol-level timing model.
type Timing struct {
	// DQNDecision is the hub's per-slot policy inference time.
	DQNDecision time.Duration
	// PollPerNode is the per-node FH/PC announcement time in the
	// polling phase.
	PollPerNode time.Duration
	// AckRTT is the data-to-ACK round-trip time.
	AckRTT time.Duration
	// Processing is the hub's per-packet processing time.
	Processing time.Duration
	// LBT is the listen-before-talk overhead per packet (CCA plus
	// average backoff).
	LBT time.Duration
	// PacketAirtime is the on-air duration of one data frame.
	PacketAirtime time.Duration
	// OffChannelProb is the per-node probability that a poll finds the
	// node off-channel and triggers a control-channel recovery.
	OffChannelProb float64
	// RecoveryMin and RecoveryMax bound the uniform recovery wait for an
	// off-channel node.
	RecoveryMin time.Duration
	RecoveryMax time.Duration
	// Jitter is the relative standard deviation applied to sampled
	// durations (the testbed numbers are averages of 100 trials).
	Jitter float64
}

// DefaultTiming returns the paper's measured testbed constants. The packet
// airtime corresponds to a full 127-byte PSDU frame at 250 kb/s.
func DefaultTiming() Timing {
	return Timing{
		DQNDecision:    9 * time.Millisecond,
		PollPerNode:    13100 * time.Microsecond,
		AckRTT:         900 * time.Microsecond,
		Processing:     600 * time.Microsecond,
		LBT:            600 * time.Microsecond,
		PacketAirtime:  time.Duration(zigbee.FrameAirtime(125) * float64(time.Second)),
		OffChannelProb: 0.02,
		RecoveryMin:    300 * time.Millisecond,
		RecoveryMax:    1200 * time.Millisecond,
		Jitter:         0.05,
	}
}

// Validate checks the timing model.
func (t Timing) Validate() error {
	for _, d := range []struct {
		name string
		dur  time.Duration
	}{
		{"dqn decision", t.DQNDecision},
		{"poll per node", t.PollPerNode},
		{"ack rtt", t.AckRTT},
		{"processing", t.Processing},
		{"lbt", t.LBT},
		{"packet airtime", t.PacketAirtime},
	} {
		if d.dur < 0 {
			return fmt.Errorf("iot: %s duration must be non-negative", d.name)
		}
	}
	if t.PacketAirtime == 0 {
		return fmt.Errorf("iot: packet airtime must be positive")
	}
	if t.OffChannelProb < 0 || t.OffChannelProb > 1 {
		return fmt.Errorf("iot: off-channel probability %v outside [0,1]", t.OffChannelProb)
	}
	if t.RecoveryMax < t.RecoveryMin || t.RecoveryMin < 0 {
		return fmt.Errorf("iot: recovery window [%v,%v] invalid", t.RecoveryMin, t.RecoveryMax)
	}
	if t.Jitter < 0 || t.Jitter > 0.5 {
		return fmt.Errorf("iot: jitter %v outside [0,0.5]", t.Jitter)
	}
	return nil
}

// PacketServiceTime is the full cost of one delivered packet: LBT, airtime,
// ACK round trip and hub processing (~6.3 ms with defaults, matching the
// paper's ~148 packets in a 1 s slot after overheads).
func (t Timing) PacketServiceTime() time.Duration {
	return t.LBT + t.PacketAirtime + t.AckRTT + t.Processing
}

// sample draws a jittered duration around the nominal value.
func (t Timing) sample(nominal time.Duration, rng *rand.Rand) time.Duration {
	if t.Jitter == 0 || nominal == 0 {
		return nominal
	}
	f := 1 + rng.NormFloat64()*t.Jitter
	if f < 0.5 {
		f = 0.5
	}
	return time.Duration(float64(nominal) * f)
}

// sampleRecovery draws one off-channel recovery wait.
func (t Timing) sampleRecovery(rng *rand.Rand) time.Duration {
	if t.RecoveryMax == t.RecoveryMin {
		return t.RecoveryMin
	}
	return t.RecoveryMin + time.Duration(rng.Int63n(int64(t.RecoveryMax-t.RecoveryMin)))
}
