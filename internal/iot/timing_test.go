package iot

import (
	"math/rand"
	"testing"
	"time"

	"ctjam/internal/core"
)

func TestTimingValidateEdgeCases(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Timing)
	}{
		{"negative dqn", func(tm *Timing) { tm.DQNDecision = -time.Millisecond }},
		{"negative poll", func(tm *Timing) { tm.PollPerNode = -time.Millisecond }},
		{"negative ack", func(tm *Timing) { tm.AckRTT = -time.Millisecond }},
		{"negative processing", func(tm *Timing) { tm.Processing = -time.Millisecond }},
		{"negative lbt", func(tm *Timing) { tm.LBT = -time.Millisecond }},
		{"negative airtime", func(tm *Timing) { tm.PacketAirtime = -time.Millisecond }},
		{"zero airtime", func(tm *Timing) { tm.PacketAirtime = 0 }},
		{"negative off-channel prob", func(tm *Timing) { tm.OffChannelProb = -0.1 }},
		{"off-channel prob above 1", func(tm *Timing) { tm.OffChannelProb = 1.1 }},
		{"negative recovery min", func(tm *Timing) { tm.RecoveryMin = -time.Millisecond }},
		{"inverted recovery window", func(tm *Timing) { tm.RecoveryMin = 2 * tm.RecoveryMax }},
		{"negative jitter", func(tm *Timing) { tm.Jitter = -0.1 }},
		{"jitter above half", func(tm *Timing) { tm.Jitter = 0.6 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tm := DefaultTiming()
			tt.mutate(&tm)
			if err := tm.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestTimingSample(t *testing.T) {
	tm := DefaultTiming()
	rng := rand.New(rand.NewSource(1))

	// Zero jitter and zero nominal both bypass the draw entirely.
	noJitter := tm
	noJitter.Jitter = 0
	if got := noJitter.sample(time.Second, rng); got != time.Second {
		t.Errorf("zero jitter: sample = %v, want 1s", got)
	}
	if got := tm.sample(0, rng); got != 0 {
		t.Errorf("zero nominal: sample = %v, want 0", got)
	}

	// At maximal jitter the factor clamps at 0.5: a sample can never drop
	// below half the nominal (and so never goes negative).
	wild := tm
	wild.Jitter = 0.5
	for i := 0; i < 10000; i++ {
		got := wild.sample(time.Second, rng)
		if got < 500*time.Millisecond {
			t.Fatalf("sample %v fell below the 0.5 clamp", got)
		}
	}
}

func TestSampleRecovery(t *testing.T) {
	tm := DefaultTiming()
	rng := rand.New(rand.NewSource(1))

	degenerate := tm
	degenerate.RecoveryMin = 700 * time.Millisecond
	degenerate.RecoveryMax = 700 * time.Millisecond
	if got := degenerate.sampleRecovery(rng); got != 700*time.Millisecond {
		t.Errorf("degenerate window: recovery = %v, want 700ms", got)
	}

	for i := 0; i < 1000; i++ {
		got := tm.sampleRecovery(rng)
		if got < tm.RecoveryMin || got >= tm.RecoveryMax {
			t.Fatalf("recovery %v outside [%v,%v)", got, tm.RecoveryMin, tm.RecoveryMax)
		}
	}
}

// TestOverheadExceedsSlot pins the clamp: when polling overhead alone
// outruns the Tx slot, the slot carries no data — zero packets, zero
// utilization, overhead capped at the slot duration — instead of going
// negative or panicking.
func TestOverheadExceedsSlot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JammerEnabled = false
	cfg.SlotDuration = 10 * time.Millisecond // default overhead is ~48 ms
	cfg.JammerSlot = 10 * time.Millisecond
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Run(core.Static{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if run.Delivered != 0 || run.Attempted != 0 {
		t.Errorf("overloaded slot still moved data: attempted=%d delivered=%d", run.Attempted, run.Delivered)
	}
	if run.MeanUtilization != 0 {
		t.Errorf("mean utilization = %v, want 0", run.MeanUtilization)
	}
	if run.MeanOverhead != cfg.SlotDuration {
		t.Errorf("mean overhead = %v, want clamp at %v", run.MeanOverhead, cfg.SlotDuration)
	}
}

// TestDriftStretchedOverheadExceedsSlot covers the same clamp reached through
// clock drift: nominal overhead fits the slot, but the drifted stretch pushes
// it past the boundary.
func TestDriftStretchedOverheadExceedsSlot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JammerEnabled = false
	cfg.SlotDuration = 60 * time.Millisecond // ~48 ms nominal overhead fits...
	cfg.JammerSlot = 60 * time.Millisecond
	cfg.Faults = fixedDrift{d: 0.5} // ...but a 1.5x clock stretch does not
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Run(core.Static{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if run.Delivered != 0 {
		t.Errorf("drift-saturated slots still delivered %d packets", run.Delivered)
	}
	if run.MeanOverhead != cfg.SlotDuration {
		t.Errorf("mean overhead = %v, want clamp at %v", run.MeanOverhead, cfg.SlotDuration)
	}
}
