package iot

import (
	"fmt"
	"math/rand"
	"time"

	"ctjam/internal/env"
	"ctjam/internal/fault"
	"ctjam/internal/jammer"
	"ctjam/internal/mac"
	"ctjam/internal/metrics"
	"ctjam/internal/phy/zigbee"
)

// Config parameterizes the field simulator. DefaultConfig mirrors the
// paper's testbed: a 4-node star network (1 hub + 3 peripherals), 3 s time
// slots, a jammer with an equal, independent slot clock, and the same
// channel/power layout as the simulations.
type Config struct {
	// Nodes is the number of peripheral nodes (the hub is implicit).
	Nodes int
	// Timing is the protocol timing model.
	Timing Timing
	// SlotDuration is the Tx (victim) time-slot length.
	SlotDuration time.Duration
	// JammerSlot is the jammer's own slot length (Fig. 11b varies it
	// independently of the Tx slot).
	JammerSlot time.Duration
	// JammerEnabled turns the jammer on; off gives the paper's "w/o Jx"
	// reference scenario.
	JammerEnabled bool
	// UseCSMA resolves per-packet medium access with the full 802.15.4
	// CSMA/CA arbiter (contention among the peripheral nodes) instead of
	// the fixed average LBT cost. The fixed cost reproduces the paper's
	// measured per-packet rate; CSMA mode exposes contention effects in
	// denser networks.
	UseCSMA bool
	// Channels / SweepWidth / TxPowers / JamPowers / JammerMode follow
	// the slot-level environment's conventions.
	Channels   int
	SweepWidth int
	TxPowers   []float64
	JamPowers  []float64
	JammerMode jammer.PowerMode
	// Seed drives all randomness.
	Seed int64
	// Faults optionally injects impairments per Tx slot: burst noise on
	// the data channel, ACK loss, and receiver clock / CCA timing drift
	// that stretches overhead and per-packet service times. nil disables
	// fault injection.
	Faults fault.Injector
}

// DefaultConfig returns the paper's field-experiment setup.
func DefaultConfig() Config {
	ecfg := env.DefaultConfig()
	return Config{
		Nodes:         3,
		Timing:        DefaultTiming(),
		SlotDuration:  3 * time.Second,
		JammerSlot:    3 * time.Second,
		JammerEnabled: true,
		Channels:      ecfg.Channels,
		SweepWidth:    ecfg.SweepWidth,
		TxPowers:      ecfg.TxPowers,
		JamPowers:     ecfg.JamPowers,
		JammerMode:    ecfg.JammerMode,
		Seed:          1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("iot: at least one peripheral node required")
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.SlotDuration <= 0 {
		return fmt.Errorf("iot: slot duration must be positive")
	}
	if c.JammerEnabled && c.JammerSlot <= 0 {
		return fmt.Errorf("iot: jammer slot must be positive")
	}
	if c.Channels < 2 {
		return fmt.Errorf("iot: need at least 2 channels")
	}
	if c.SweepWidth <= 0 || c.SweepWidth > c.Channels {
		return fmt.Errorf("iot: sweep width %d out of range", c.SweepWidth)
	}
	if len(c.TxPowers) == 0 || len(c.JamPowers) == 0 {
		return fmt.Errorf("iot: power level lists must be non-empty")
	}
	return nil
}

// SlotStats describes one simulated Tx slot.
type SlotStats struct {
	// Overhead is the time spent on DQN inference and polling.
	Overhead time.Duration
	// DataTime is the remaining time used for data exchange.
	DataTime time.Duration
	// Attempted and Delivered count data packets.
	Attempted int
	Delivered int
	// FrameLosses counts packets that survived the channel but died in the
	// ZigBee receive path under injected symbol faults (truncation or
	// corruption broke the frame's SFD scan, length, or FCS).
	FrameLosses int
	// Outcome classifies the slot like the slot-level environment.
	Outcome env.Outcome
	// Hopped reports a channel change at the slot boundary.
	Hopped bool
	// Utilization is DataTime / SlotDuration.
	Utilization float64
}

// RunStats aggregates a simulation run.
type RunStats struct {
	// Slots executed.
	Slots int
	// Attempted / Delivered packets over the whole run.
	Attempted int
	Delivered int
	// FrameLosses are packets lost to injected receiver-side symbol faults.
	FrameLosses int
	// GoodputPktsPerSlot is the paper's goodput metric (Fig. 10a, 11).
	GoodputPktsPerSlot float64
	// MeanUtilization is the paper's slot-utilization metric (Fig. 10b).
	MeanUtilization float64
	// MeanOverhead is the average per-slot overhead (FH negotiation
	// plus decision time).
	MeanOverhead time.Duration
	// Counters are the Table I metrics at slot granularity.
	Counters metrics.Counters
}

// jamSpan is one continuous jamming emission on a channel block.
type jamSpan struct {
	start, end time.Duration
	block      int
	power      float64
}

// Simulator runs the star network against the jammer. Not safe for
// concurrent use.
type Simulator struct {
	cfg     Config
	rng     *rand.Rand
	sweeper *jammer.Sweeper

	now         time.Duration
	nextJamSlot time.Duration
	spans       []jamSpan
	arbiter     *mac.Arbiter
	slotIdx     int

	// frameSymbols is the demodulated symbol stream of one full-size data
	// frame, precomputed at reset when fault injection is configured; pktIdx
	// is the monotone packet counter seeding per-packet symbol corruption.
	frameSymbols []uint8
	pktIdx       int64
}

// New builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg}
	if err := s.reset(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Simulator) reset() error {
	s.rng = rand.New(rand.NewSource(s.cfg.Seed))
	s.now = 0
	s.nextJamSlot = 0
	s.spans = nil
	s.slotIdx = 0
	s.pktIdx = 0
	s.frameSymbols = nil
	if s.cfg.Faults != nil {
		// Data packets are full-size frames (PacketAirtime is the 125-byte
		// airtime); a deterministic payload keeps the receive path pure.
		payload := make([]byte, zigbee.MaxPayload-zigbee.FCSLen)
		for i := range payload {
			payload[i] = byte(i)
		}
		frame, err := zigbee.EncodeFrame(payload)
		if err != nil {
			return fmt.Errorf("iot: build data frame: %w", err)
		}
		s.frameSymbols = zigbee.BytesToSymbols(frame)
	}
	if s.cfg.JammerEnabled {
		sw, err := jammer.NewSweeper(s.cfg.Channels, s.cfg.SweepWidth, s.cfg.JamPowers, s.cfg.JammerMode, s.rng)
		if err != nil {
			return fmt.Errorf("iot: build jammer: %w", err)
		}
		s.sweeper = sw
	} else {
		s.sweeper = nil
	}
	s.arbiter = nil
	if s.cfg.UseCSMA {
		arb, err := mac.NewArbiter(s.cfg.Nodes, mac.DefaultParams(), s.rng)
		if err != nil {
			return fmt.Errorf("iot: build csma arbiter: %w", err)
		}
		s.arbiter = arb
	}
	return nil
}

// advanceJammer processes jammer slot boundaries up to horizon, recording
// emission spans. The jammer senses the victim's current data channel at
// each of its own slot starts.
func (s *Simulator) advanceJammer(victimChannel int, horizon time.Duration) error {
	if s.sweeper == nil {
		return nil
	}
	for s.nextJamSlot < horizon {
		jammed, power, err := s.sweeper.Step(victimChannel)
		if err != nil {
			return err
		}
		if jammed {
			block, _ := s.sweeper.LockedBlock()
			s.spans = append(s.spans, jamSpan{
				start: s.nextJamSlot,
				end:   s.nextJamSlot + s.cfg.JammerSlot,
				block: block,
				power: power,
			})
		}
		s.nextJamSlot += s.cfg.JammerSlot
	}
	// Trim spans that ended before the current slot to bound memory.
	keep := s.spans[:0]
	for _, sp := range s.spans {
		if sp.end > s.now {
			keep = append(keep, sp)
		}
	}
	s.spans = keep
	return nil
}

// overlap returns the duration of [a0,a1) ∩ [b0,b1).
func overlap(a0, a1, b0, b1 time.Duration) time.Duration {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// RunSlot simulates one Tx slot on the given channel and power index,
// returning its statistics. hopped marks a channel change decided at the
// slot boundary.
func (s *Simulator) RunSlot(channel, power int, hopped bool) (SlotStats, error) {
	if channel < 0 || channel >= s.cfg.Channels {
		return SlotStats{}, fmt.Errorf("iot: channel %d out of range", channel)
	}
	if power < 0 || power >= len(s.cfg.TxPowers) {
		return SlotStats{}, fmt.Errorf("iot: power index %d out of range", power)
	}
	slotStart := s.now
	slotEnd := slotStart + s.cfg.SlotDuration

	// Injected faults for this slot: clock drift stretches every timed
	// operation, burst noise acts as a whole-slot co-channel emission, and
	// ACK loss voids the slot's deliveries.
	var flt fault.Slot
	if s.cfg.Faults != nil {
		s.cfg.Faults.Apply(int64(s.slotIdx), &flt)
	}
	drift := 1 + flt.ClockDrift
	if drift < 0.5 {
		drift = 0.5
	}
	stretch := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * drift)
	}

	// Phase 1: policy inference + polling-mode FH/PC negotiation.
	overheadDur := s.cfg.Timing.sample(s.cfg.Timing.DQNDecision, s.rng)
	for n := 0; n < s.cfg.Nodes; n++ {
		overheadDur += s.cfg.Timing.sample(s.cfg.Timing.PollPerNode, s.rng)
		if s.rng.Float64() < s.cfg.Timing.OffChannelProb {
			overheadDur += s.cfg.Timing.sampleRecovery(s.rng)
		}
	}
	overheadDur = stretch(overheadDur)
	if overheadDur > s.cfg.SlotDuration {
		overheadDur = s.cfg.SlotDuration
	}
	dataStart := slotStart + overheadDur

	// Drive the jammer across this slot.
	if err := s.advanceJammer(channel, slotEnd); err != nil {
		return SlotStats{}, err
	}

	victimBlock := channel / s.cfg.SweepWidth
	txPower := s.cfg.TxPowers[power]

	// Phase 2: data exchange under LBT / CSMA-CA.
	fixedService := stretch(s.cfg.Timing.PacketServiceTime())
	air := stretch(s.cfg.Timing.LBT + s.cfg.Timing.PacketAirtime)
	tail := stretch(s.cfg.Timing.AckRTT + s.cfg.Timing.Processing)
	stats := SlotStats{
		Overhead: overheadDur,
		DataTime: slotEnd - dataStart,
		Hopped:   hopped,
	}
	for t := dataStart; ; {
		service := fixedService
		if s.arbiter != nil {
			out, err := s.arbiter.NextTransmission()
			if err != nil {
				// Retry-limit exhaustion: the slot time is burnt
				// without a transmission.
				t += time.Duration(mac.DefaultParams().MaxRetries) * air
				continue
			}
			// Collided attempts waste a frame airtime each.
			service = out.AccessDelay +
				time.Duration(out.Collisions)*air +
				s.cfg.Timing.PacketAirtime + tail
		}
		if t+service > slotEnd {
			break
		}
		stats.Attempted++
		lost := flt.NoisePower > txPower
		if !lost {
			for _, sp := range s.spans {
				if sp.block != victimBlock || sp.power <= txPower {
					continue
				}
				if overlap(t, t+service-tail, sp.start, sp.end) > 0 {
					lost = true
					break
				}
			}
		}
		if !lost && (flt.DropSymbols > 0 || flt.FlipProb > 0) {
			// The packet survived the channel; push it through the ZigBee
			// receive path under the slot's symbol faults.
			if !s.deliverFrame(flt) {
				lost = true
				stats.FrameLosses++
			}
		}
		if !lost {
			stats.Delivered++
		}
		t += service
	}
	if flt.AckLoss {
		// The ACK channel is out for this slot: packets may have reached
		// the hub, but none count as delivered.
		stats.Delivered = 0
	}

	// Classify the slot like the MDP's states. Burst noise occupies the
	// victim's channel for the whole data phase.
	var coChannel, strong time.Duration
	for _, sp := range s.spans {
		if sp.block != victimBlock {
			continue
		}
		o := overlap(dataStart, slotEnd, sp.start, sp.end)
		if o == 0 {
			continue
		}
		coChannel += o
		if sp.power > txPower {
			strong += o
		}
	}
	if flt.NoisePower > 0 {
		if stats.DataTime > coChannel {
			coChannel = stats.DataTime
		}
		if flt.NoisePower > txPower && stats.DataTime > strong {
			strong = stats.DataTime
		}
	}
	switch {
	case stats.DataTime > 0 && strong*2 > stats.DataTime:
		stats.Outcome = env.OutcomeJammed
	case coChannel > 0:
		stats.Outcome = env.OutcomeJammedSurvived
	default:
		stats.Outcome = env.OutcomeSuccess
	}
	if flt.AckLoss && stats.Outcome != env.OutcomeJammed {
		// Without ACKs the hub observes the slot as lost, like env.Step.
		stats.Outcome = env.OutcomeJammed
	}
	if stats.DataTime > 0 {
		stats.Utilization = float64(stats.DataTime) / float64(s.cfg.SlotDuration)
	}

	s.now = slotEnd
	s.slotIdx++
	return stats, nil
}

// deliverFrame demodulates one corrupted copy of the precomputed data frame
// and reports whether the receiver recovered it. Corruption is a pure
// function of (config seed, packet index), so runs stay bit-reproducible.
func (s *Simulator) deliverFrame(flt fault.Slot) bool {
	syms := fault.CorruptSymbols(flt, s.cfg.Seed, s.pktIdx, s.frameSymbols)
	s.pktIdx++
	raw, err := zigbee.SymbolsToBytes(syms)
	if err != nil {
		return false
	}
	_, err = zigbee.DecodeFrame(raw)
	return err == nil
}

// Run drives an anti-jamming agent through the simulator for the given
// number of Tx slots.
func (s *Simulator) Run(agent env.Agent, slots int) (RunStats, error) {
	if slots <= 0 {
		return RunStats{}, fmt.Errorf("iot: slots %d must be positive", slots)
	}
	if err := s.reset(); err != nil {
		return RunStats{}, err
	}
	agent.Reset(rand.New(rand.NewSource(s.cfg.Seed + 0x5eed)))

	var (
		run        RunStats
		sumUtil    float64
		sumOverhd  time.Duration
		prev       = env.SlotInfo{First: true, Channel: s.rng.Intn(s.cfg.Channels)}
		prevJammed = false
	)
	for i := 0; i < slots; i++ {
		d := agent.Decide(prev)
		if d.Channel < 0 || d.Channel >= s.cfg.Channels || d.Power < 0 || d.Power >= len(s.cfg.TxPowers) {
			return RunStats{}, fmt.Errorf("iot: agent %s returned invalid decision %+v", agent.Name(), d)
		}
		hopped := !prev.First && d.Channel != prev.Channel
		st, err := s.RunSlot(d.Channel, d.Power, hopped)
		if err != nil {
			return RunStats{}, err
		}

		run.Slots++
		run.Attempted += st.Attempted
		run.Delivered += st.Delivered
		run.FrameLosses += st.FrameLosses
		sumUtil += st.Utilization
		sumOverhd += st.Overhead

		run.Counters.Slots++
		if st.Outcome.Succeeded() {
			run.Counters.Successes++
		} else {
			run.Counters.JamLosses++
		}
		if st.Outcome != env.OutcomeSuccess {
			run.Counters.JammedSlots++
		}
		if hopped {
			run.Counters.Hops++
			if prevJammed && st.Outcome.Succeeded() {
				run.Counters.UsefulHops++
			}
		}
		if d.Power > 0 {
			run.Counters.PCSlots++
			if st.Outcome == env.OutcomeJammedSurvived && s.cfg.TxPowers[0] < s.cfg.TxPowers[d.Power] {
				run.Counters.UsefulPCs++
			}
		}

		prevJammed = st.Outcome == env.OutcomeJammed
		prev = env.SlotInfo{
			Slot:    i + 1,
			Channel: d.Channel,
			Power:   d.Power,
			Outcome: st.Outcome,
			Hopped:  hopped,
		}
	}
	run.GoodputPktsPerSlot = float64(run.Delivered) / float64(run.Slots)
	run.MeanUtilization = sumUtil / float64(run.Slots)
	run.MeanOverhead = sumOverhd / time.Duration(run.Slots)
	return run, nil
}

// FunctionTimings samples the per-function time consumption of Fig. 9(a):
// DQN inference, data/ACK round trip, hub packet processing, and per-node
// polling. Each entry holds `trials` samples in seconds.
func (s *Simulator) FunctionTimings(trials int) map[string][]float64 {
	rng := rand.New(rand.NewSource(s.cfg.Seed + 0x9a))
	out := map[string][]float64{
		"DQN":     make([]float64, trials),
		"ACK":     make([]float64, trials),
		"Proc":    make([]float64, trials),
		"Polling": make([]float64, trials),
	}
	for i := 0; i < trials; i++ {
		out["DQN"][i] = s.cfg.Timing.sample(s.cfg.Timing.DQNDecision, rng).Seconds()
		out["ACK"][i] = s.cfg.Timing.sample(s.cfg.Timing.AckRTT, rng).Seconds()
		out["Proc"][i] = s.cfg.Timing.sample(s.cfg.Timing.Processing, rng).Seconds()
		out["Polling"][i] = s.cfg.Timing.sample(s.cfg.Timing.PollPerNode, rng).Seconds()
	}
	return out
}

// NegotiationTimes reproduces the Fig. 9(b) experiment: the FH negotiation
// time for a network of n nodes, including waits for nodes that are not on
// the control channel when polled. offProb is the per-node off-channel
// probability; the paper's cold-start measurement corresponds to a high
// value (~0.25) since some nodes sit on stale channels after a jam. It
// returns one negotiation duration (seconds) per trial.
func (s *Simulator) NegotiationTimes(nodes, trials int, offProb float64) ([]float64, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("iot: nodes %d must be >= 1", nodes)
	}
	if trials < 1 {
		return nil, fmt.Errorf("iot: trials %d must be >= 1", trials)
	}
	if offProb < 0 || offProb > 1 {
		return nil, fmt.Errorf("iot: off probability %v outside [0,1]", offProb)
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed + 0x9b))
	out := make([]float64, trials)
	for i := range out {
		var total time.Duration
		for n := 0; n < nodes; n++ {
			total += s.cfg.Timing.sample(s.cfg.Timing.PollPerNode, rng)
			if rng.Float64() < offProb {
				total += s.cfg.Timing.sampleRecovery(rng)
			}
		}
		out[i] = total.Seconds()
	}
	return out, nil
}
