package iot

import (
	"fmt"
	"math/rand"
	"time"

	"ctjam/internal/env"
	"ctjam/internal/fault"
	"ctjam/internal/jammer"
	"ctjam/internal/metrics"
)

// Config parameterizes the field simulator. DefaultConfig mirrors the
// paper's testbed: a 4-node star network (1 hub + 3 peripherals), 3 s time
// slots, a jammer with an equal, independent slot clock, and the same
// channel/power layout as the simulations.
type Config struct {
	// Nodes is the number of peripheral nodes (the hub is implicit).
	Nodes int
	// Timing is the protocol timing model.
	Timing Timing
	// SlotDuration is the Tx (victim) time-slot length.
	SlotDuration time.Duration
	// JammerSlot is the jammer's own slot length (Fig. 11b varies it
	// independently of the Tx slot).
	JammerSlot time.Duration
	// JammerEnabled turns the jammer on; off gives the paper's "w/o Jx"
	// reference scenario.
	JammerEnabled bool
	// UseCSMA resolves per-packet medium access with the full 802.15.4
	// CSMA/CA arbiter (contention among the peripheral nodes) instead of
	// the fixed average LBT cost. The fixed cost reproduces the paper's
	// measured per-packet rate; CSMA mode exposes contention effects in
	// denser networks.
	UseCSMA bool
	// Channels / SweepWidth / TxPowers / JamPowers / JammerMode follow
	// the slot-level environment's conventions.
	Channels   int
	SweepWidth int
	TxPowers   []float64
	JamPowers  []float64
	JammerMode jammer.PowerMode
	// Jammer selects the attacker strategy by spec string (see
	// jammer.ParseSpec); empty means the paper's sweeper. Ignored when
	// JammerEnabled is false.
	Jammer string
	// Seed drives all randomness.
	Seed int64
	// Faults optionally injects impairments per Tx slot: burst noise on
	// the data channel, ACK loss, and receiver clock / CCA timing drift
	// that stretches overhead and per-packet service times. nil disables
	// fault injection.
	Faults fault.Injector
}

// DefaultConfig returns the paper's field-experiment setup.
func DefaultConfig() Config {
	ecfg := env.DefaultConfig()
	return Config{
		Nodes:         3,
		Timing:        DefaultTiming(),
		SlotDuration:  3 * time.Second,
		JammerSlot:    3 * time.Second,
		JammerEnabled: true,
		Channels:      ecfg.Channels,
		SweepWidth:    ecfg.SweepWidth,
		TxPowers:      ecfg.TxPowers,
		JamPowers:     ecfg.JamPowers,
		JammerMode:    ecfg.JammerMode,
		Seed:          1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("iot: at least one peripheral node required")
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.SlotDuration <= 0 {
		return fmt.Errorf("iot: slot duration must be positive")
	}
	if c.JammerEnabled && c.JammerSlot <= 0 {
		return fmt.Errorf("iot: jammer slot must be positive")
	}
	if c.Channels < 2 {
		return fmt.Errorf("iot: need at least 2 channels")
	}
	if c.SweepWidth <= 0 || c.SweepWidth > c.Channels {
		return fmt.Errorf("iot: sweep width %d out of range", c.SweepWidth)
	}
	if len(c.TxPowers) == 0 || len(c.JamPowers) == 0 {
		return fmt.Errorf("iot: power level lists must be non-empty")
	}
	if _, err := jammer.ParseSpec(c.Jammer); err != nil {
		return fmt.Errorf("iot: jammer spec: %w", err)
	}
	return nil
}

// SlotStats describes one simulated Tx slot.
type SlotStats struct {
	// Overhead is the time spent on DQN inference and polling.
	Overhead time.Duration
	// DataTime is the remaining time used for data exchange.
	DataTime time.Duration
	// Attempted and Delivered count data packets.
	Attempted int
	Delivered int
	// FrameLosses counts packets that survived the channel but died in the
	// ZigBee receive path under injected symbol faults (truncation or
	// corruption broke the frame's SFD scan, length, or FCS).
	FrameLosses int
	// Outcome classifies the slot like the slot-level environment.
	Outcome env.Outcome
	// Hopped reports a channel change at the slot boundary.
	Hopped bool
	// Utilization is DataTime / SlotDuration.
	Utilization float64
}

// RunStats aggregates a simulation run.
type RunStats struct {
	// Slots executed.
	Slots int
	// Attempted / Delivered packets over the whole run.
	Attempted int
	Delivered int
	// FrameLosses are packets lost to injected receiver-side symbol faults.
	FrameLosses int
	// GoodputPktsPerSlot is the paper's goodput metric (Fig. 10a, 11).
	GoodputPktsPerSlot float64
	// MeanUtilization is the paper's slot-utilization metric (Fig. 10b).
	MeanUtilization float64
	// MeanOverhead is the average per-slot overhead (FH negotiation
	// plus decision time).
	MeanOverhead time.Duration
	// Counters are the Table I metrics at slot granularity.
	Counters metrics.Counters
}

// Simulator runs one star network against the jammer. It is a compatibility
// facade over a single engine cluster: the per-slot mechanics live in
// cluster.go and are shared with the sharded field engine, and a Simulator
// behaves bit-identically to Engine{Clusters: 1} over the same Config. Not
// safe for concurrent use.
type Simulator struct {
	c *cluster
}

// New builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	c, err := newCluster(cfg)
	if err != nil {
		return nil, err
	}
	return &Simulator{c: c}, nil
}

// reset rewinds the simulator to slot 0.
func (s *Simulator) reset() error { return s.c.reset() }

// RunSlot simulates one Tx slot on the given channel and power index,
// returning its statistics. hopped marks a channel change decided at the
// slot boundary.
func (s *Simulator) RunSlot(channel, power int, hopped bool) (SlotStats, error) {
	return s.c.runSlot(channel, power, hopped)
}

// Run drives an anti-jamming agent through the simulator for the given
// number of Tx slots.
func (s *Simulator) Run(agent env.Agent, slots int) (RunStats, error) {
	return s.c.run(agent, slots)
}

// FunctionTimings samples the per-function time consumption of Fig. 9(a):
// DQN inference, data/ACK round trip, hub packet processing, and per-node
// polling. Each entry holds `trials` samples in seconds.
func (s *Simulator) FunctionTimings(trials int) map[string][]float64 {
	cfg := s.c.cfg
	rng := rand.New(rand.NewSource(cfg.Seed + 0x9a))
	out := map[string][]float64{
		"DQN":     make([]float64, trials),
		"ACK":     make([]float64, trials),
		"Proc":    make([]float64, trials),
		"Polling": make([]float64, trials),
	}
	for i := 0; i < trials; i++ {
		out["DQN"][i] = cfg.Timing.sample(cfg.Timing.DQNDecision, rng).Seconds()
		out["ACK"][i] = cfg.Timing.sample(cfg.Timing.AckRTT, rng).Seconds()
		out["Proc"][i] = cfg.Timing.sample(cfg.Timing.Processing, rng).Seconds()
		out["Polling"][i] = cfg.Timing.sample(cfg.Timing.PollPerNode, rng).Seconds()
	}
	return out
}

// NegotiationTimes reproduces the Fig. 9(b) experiment: the FH negotiation
// time for a network of n nodes, including waits for nodes that are not on
// the control channel when polled. offProb is the per-node off-channel
// probability; the paper's cold-start measurement corresponds to a high
// value (~0.25) since some nodes sit on stale channels after a jam. It
// returns one negotiation duration (seconds) per trial.
func (s *Simulator) NegotiationTimes(nodes, trials int, offProb float64) ([]float64, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("iot: nodes %d must be >= 1", nodes)
	}
	if trials < 1 {
		return nil, fmt.Errorf("iot: trials %d must be >= 1", trials)
	}
	if offProb < 0 || offProb > 1 {
		return nil, fmt.Errorf("iot: off probability %v outside [0,1]", offProb)
	}
	cfg := s.c.cfg
	rng := rand.New(rand.NewSource(cfg.Seed + 0x9b))
	out := make([]float64, trials)
	for i := range out {
		var total time.Duration
		for n := 0; n < nodes; n++ {
			total += cfg.Timing.sample(cfg.Timing.PollPerNode, rng)
			if rng.Float64() < offProb {
				total += cfg.Timing.sampleRecovery(rng)
			}
		}
		out[i] = total.Seconds()
	}
	return out, nil
}
