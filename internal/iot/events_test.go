package iot

import (
	"math/rand"
	"testing"
	"time"
)

// naiveHit is the exhaustive per-packet scan the slot wheel replaced: does
// [t0, t1) overlap any qualifying span?
func naiveHit(spans []jamSpan, victimBlock int, txPower float64, t0, t1 time.Duration) bool {
	for _, sp := range spans {
		if sp.block != victimBlock || sp.power <= txPower {
			continue
		}
		if overlap(t0, t1, sp.start, sp.end) > 0 {
			return true
		}
	}
	return false
}

// TestSlotWheelMatchesExhaustiveScan drives the wheel against randomized
// sorted span lists and monotone packet queries — the exact access pattern of
// runSlot — and requires every answer to match the naive scan.
func TestSlotWheelMatchesExhaustiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var w slotWheel
	for trial := 0; trial < 200; trial++ {
		// Random sorted spans across 3 blocks with mixed powers.
		spans := make([]jamSpan, rng.Intn(20))
		start := time.Duration(0)
		for i := range spans {
			start += time.Duration(rng.Intn(50)) * time.Millisecond
			spans[i] = jamSpan{
				start: start,
				end:   start + time.Duration(1+rng.Intn(80))*time.Millisecond,
				block: rng.Intn(3),
				power: float64(rng.Intn(20)),
			}
		}
		victimBlock := rng.Intn(3)
		txPower := float64(rng.Intn(20))
		w.build(spans, victimBlock, txPower)

		// Monotone non-decreasing queries, as the packet loop issues them.
		t0 := time.Duration(0)
		for q := 0; q < 50; q++ {
			t0 += time.Duration(rng.Intn(30)) * time.Millisecond
			t1 := t0 + time.Duration(1+rng.Intn(40))*time.Millisecond
			got := w.hits(t0, t1)
			want := naiveHit(spans, victimBlock, txPower, t0, t1)
			if got != want {
				t.Fatalf("trial %d query [%v,%v): wheel=%v naive=%v (block=%d tx=%v spans=%v)",
					trial, t0, t1, got, want, victimBlock, txPower, spans)
			}
		}
	}
}

// TestSlotWheelCoalesces checks overlapping and adjacent qualifying spans
// merge into one interval, and that build filters by block and power.
func TestSlotWheelCoalesces(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	spans := []jamSpan{
		{start: ms(0), end: ms(10), block: 0, power: 5},   // qualifying
		{start: ms(5), end: ms(20), block: 0, power: 5},   // overlaps -> merges
		{start: ms(20), end: ms(30), block: 0, power: 5},  // adjacent -> merges
		{start: ms(25), end: ms(40), block: 1, power: 5},  // wrong block
		{start: ms(35), end: ms(45), block: 0, power: 1},  // too weak
		{start: ms(50), end: ms(60), block: 0, power: 5},  // separate interval
	}
	var w slotWheel
	w.build(spans, 0, 2)
	want := []interval{{start: ms(0), end: ms(30)}, {start: ms(50), end: ms(60)}}
	if len(w.strong) != len(want) {
		t.Fatalf("built %d intervals %v, want %v", len(w.strong), w.strong, want)
	}
	for i := range want {
		if w.strong[i] != want[i] {
			t.Fatalf("interval %d = %v, want %v", i, w.strong[i], want[i])
		}
	}

	// Cursor retirement: a query past an interval's end retires it for good.
	if w.hits(ms(30), ms(50)) {
		t.Error("gap query reported a hit")
	}
	if !w.hits(ms(55), ms(56)) {
		t.Error("query inside the second interval missed")
	}
	if w.cursor == 0 {
		t.Error("cursor never advanced past the first interval")
	}
}

// TestSlotWheelReuse checks build reuses the backing array across slots and
// rewinds the cursor.
func TestSlotWheelReuse(t *testing.T) {
	var w slotWheel
	spans := []jamSpan{{start: 0, end: time.Millisecond, block: 0, power: 5}}
	w.build(spans, 0, 1)
	if !w.hits(0, time.Millisecond) {
		t.Fatal("first build missed its span")
	}
	w.build(nil, 0, 1)
	if len(w.strong) != 0 || w.cursor != 0 {
		t.Fatalf("rebuild left strong=%v cursor=%d", w.strong, w.cursor)
	}
	if w.hits(0, time.Millisecond) {
		t.Error("empty wheel reported a hit")
	}
}
