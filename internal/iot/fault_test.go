package iot

import (
	"testing"
	"time"

	"ctjam/internal/env"
	"ctjam/internal/fault"
)

// fixedDrift pins the clock drift to a constant so timing effects can be
// asserted exactly.
type fixedDrift struct{ d float64 }

func (f fixedDrift) Name() string                 { return "fixed-drift" }
func (f fixedDrift) Apply(_ int64, s *fault.Slot) { s.ClockDrift = f.d }

func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.JammerEnabled = false
	return cfg
}

func runSlots(t *testing.T, cfg Config, slots int) RunStats {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	power := len(cfg.TxPowers) - 1
	var agg RunStats
	var overhead time.Duration
	for i := 0; i < slots; i++ {
		st, err := s.RunSlot(0, power, false)
		if err != nil {
			t.Fatal(err)
		}
		agg.Slots++
		agg.Attempted += st.Attempted
		agg.Delivered += st.Delivered
		agg.FrameLosses += st.FrameLosses
		overhead += st.Overhead
	}
	agg.MeanOverhead = overhead / time.Duration(slots)
	return agg
}

// A slow clock stretches the per-slot overhead and shrinks the data budget,
// so fewer packets fit. The random samples are drawn before stretching, so
// the two runs consume identical RNG streams and compare deterministically.
func TestClockDriftStretchesTimings(t *testing.T) {
	clean := runSlots(t, quietConfig(), 50)

	slow := quietConfig()
	slow.Faults = fixedDrift{d: 0.5}
	drifted := runSlots(t, slow, 50)

	// Overhead never hits the slot-duration clamp at these timings, so the
	// stretch factor shows up exactly.
	want := time.Duration(1.5 * float64(clean.MeanOverhead))
	if diff := drifted.MeanOverhead - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("drifted overhead %v, want %v (1.5x of %v)", drifted.MeanOverhead, want, clean.MeanOverhead)
	}
	if drifted.Delivered >= clean.Delivered {
		t.Fatalf("50%% slower clock delivered %d >= clean %d", drifted.Delivered, clean.Delivered)
	}
	if drifted.Delivered == 0 {
		t.Fatal("drift alone should not kill all deliveries")
	}
}

// Burst noise above the transmit power wipes out every packet even with the
// jammer off, and the slot classifies as jammed.
func TestBurstNoiseCausesLosses(t *testing.T) {
	cfg := quietConfig()
	cfg.Faults = fault.BurstNoise{Seed: 1, Prob: 1, Len: 1, Power: 1000}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		st, err := s.RunSlot(0, len(cfg.TxPowers)-1, false)
		if err != nil {
			t.Fatal(err)
		}
		if st.Attempted == 0 {
			t.Fatalf("slot %d: no attempts", i)
		}
		if st.Delivered != 0 {
			t.Fatalf("slot %d: %d delivered through overwhelming noise", i, st.Delivered)
		}
		if st.Outcome != env.OutcomeJammed {
			t.Fatalf("slot %d: outcome %v, want jammed", i, st.Outcome)
		}
	}
}

// Noise below the transmit power occupies the channel without destroying
// packets: deliveries continue and the slot reads jammed-but-survived.
func TestWeakBurstNoiseIsSurvivable(t *testing.T) {
	cfg := quietConfig()
	cfg.Faults = fault.BurstNoise{Seed: 1, Prob: 1, Len: 1, Power: cfg.TxPowers[len(cfg.TxPowers)-1] - 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		st, err := s.RunSlot(0, len(cfg.TxPowers)-1, false)
		if err != nil {
			t.Fatal(err)
		}
		if st.Delivered == 0 {
			t.Fatalf("slot %d: weak noise destroyed all packets", i)
		}
		if st.Outcome != env.OutcomeJammedSurvived {
			t.Fatalf("slot %d: outcome %v, want jammed-survived", i, st.Outcome)
		}
	}
}

// Symbol corruption feeds packets through the real ZigBee receive path
// (symbols -> bytes -> SFD scan -> CRC): the frame-loss rate must be zero
// without faults and grow monotonically with the per-symbol flip
// probability, saturating near total loss at 10% flips (a full-size frame
// carries ~264 symbols, so almost every frame takes at least one hit).
func TestFrameLossVsFlipProbability(t *testing.T) {
	probs := []float64{0, 1e-3, 1e-2, 1e-1}
	rates := make([]float64, len(probs))
	for i, p := range probs {
		cfg := quietConfig()
		if p > 0 {
			cfg.Faults = fault.SymbolFaults{Seed: 1, FlipProb: p}
		}
		agg := runSlots(t, cfg, 10)
		if agg.Attempted == 0 {
			t.Fatalf("p=%v: no packets attempted", p)
		}
		if agg.Delivered+agg.FrameLosses != agg.Attempted {
			t.Fatalf("p=%v: delivered %d + frame losses %d != attempted %d",
				p, agg.Delivered, agg.FrameLosses, agg.Attempted)
		}
		rates[i] = float64(agg.FrameLosses) / float64(agg.Attempted)
	}
	if rates[0] != 0 {
		t.Errorf("flip probability 0 lost %.3f of frames, want none", rates[0])
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Errorf("frame-loss curve not monotone: rate(%v)=%.4f <= rate(%v)=%.4f",
				probs[i], rates[i], probs[i-1], rates[i-1])
		}
	}
	if rates[len(rates)-1] < 0.9 {
		t.Errorf("flip probability 0.1 lost only %.3f of frames, want near-total loss", rates[len(rates)-1])
	}
}

// Truncation faults alone (no flips) also break frames: dropping enough
// trailing symbols loses the FCS or the whole PSDU.
func TestSymbolTruncationCausesLosses(t *testing.T) {
	cfg := quietConfig()
	cfg.Faults = fault.SymbolFaults{Seed: 1, TruncProb: 1, MaxDrop: 64}
	agg := runSlots(t, cfg, 5)
	if agg.FrameLosses == 0 {
		t.Fatal("forced truncation produced no frame losses")
	}
	if agg.Delivered+agg.FrameLosses != agg.Attempted {
		t.Fatalf("delivered %d + frame losses %d != attempted %d",
			agg.Delivered, agg.FrameLosses, agg.Attempted)
	}
}

// Losing the ACK channel voids every delivery for the slot, regardless of
// what reached the hub.
func TestAckLossZeroesDelivered(t *testing.T) {
	cfg := quietConfig()
	cfg.Faults = fault.AckLoss{Seed: 1, Prob: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		st, err := s.RunSlot(0, len(cfg.TxPowers)-1, false)
		if err != nil {
			t.Fatal(err)
		}
		if st.Attempted == 0 {
			t.Fatalf("slot %d: no attempts", i)
		}
		if st.Delivered != 0 {
			t.Fatalf("slot %d: %d delivered with the ACK channel down", i, st.Delivered)
		}
		if st.Outcome != env.OutcomeJammed {
			t.Fatalf("slot %d: outcome %v, want jammed", i, st.Outcome)
		}
	}
}
