package iot

import (
	"math"
	"testing"
	"time"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/metrics"
)

func noJammerConfig(slot time.Duration) Config {
	cfg := DefaultConfig()
	cfg.JammerEnabled = false
	cfg.SlotDuration = slot
	return cfg
}

func mdpAgent(t testing.TB, cfg Config) env.Agent {
	t.Helper()
	ecfg := env.DefaultConfig()
	ecfg.Channels = cfg.Channels
	ecfg.SweepWidth = cfg.SweepWidth
	ecfg.TxPowers = cfg.TxPowers
	ecfg.JamPowers = cfg.JamPowers
	ecfg.JammerMode = cfg.JammerMode
	model, err := core.NewModel(core.ParamsFromEnv(ecfg))
	if err != nil {
		t.Fatal(err)
	}
	agent, err := core.NewMDPAgent(model, nil, cfg.Channels, cfg.SweepWidth)
	if err != nil {
		t.Fatal(err)
	}
	return agent
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no nodes", func(c *Config) { c.Nodes = 0 }},
		{"zero slot", func(c *Config) { c.SlotDuration = 0 }},
		{"zero jam slot", func(c *Config) { c.JammerSlot = 0 }},
		{"one channel", func(c *Config) { c.Channels = 1 }},
		{"bad width", func(c *Config) { c.SweepWidth = 0 }},
		{"no powers", func(c *Config) { c.TxPowers = nil }},
		{"bad timing", func(c *Config) { c.Timing.OffChannelProb = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestTimingValidation(t *testing.T) {
	good := DefaultTiming()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.PacketAirtime = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero airtime: expected error")
	}
	bad = good
	bad.RecoveryMin = 2 * bad.RecoveryMax
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted recovery window: expected error")
	}
	bad = good
	bad.Jitter = 0.9
	if err := bad.Validate(); err == nil {
		t.Fatal("huge jitter: expected error")
	}
	bad = good
	bad.DQNDecision = -time.Millisecond
	if err := bad.Validate(); err == nil {
		t.Fatal("negative duration: expected error")
	}
}

func TestPacketServiceTimeMatchesPaperRate(t *testing.T) {
	// The paper reports ~148 packets in a 1 s slot after overheads,
	// i.e. ~6.2 ms per packet.
	got := DefaultTiming().PacketServiceTime()
	if got < 5500*time.Microsecond || got > 7*time.Millisecond {
		t.Fatalf("packet service time %v outside the paper's ~6.2 ms band", got)
	}
}

func TestRunSlotValidation(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunSlot(-1, 0, false); err == nil {
		t.Fatal("bad channel: expected error")
	}
	if _, err := s.RunSlot(0, 99, false); err == nil {
		t.Fatal("bad power: expected error")
	}
}

func TestUtilizationMatchesPaperFig10b(t *testing.T) {
	// Fig. 10(b): utilization grows from ~91.75% at 1 s slots to
	// ~98.58% at 5 s slots.
	prev := 0.0
	for _, slotSec := range []int{1, 2, 3, 4, 5} {
		cfg := noJammerConfig(time.Duration(slotSec) * time.Second)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run, err := s.Run(core.Static{}, 200)
		if err != nil {
			t.Fatal(err)
		}
		if run.MeanUtilization < prev-0.01 {
			t.Fatalf("utilization fell at %ds slots: %.4f -> %.4f", slotSec, prev, run.MeanUtilization)
		}
		prev = run.MeanUtilization
		switch slotSec {
		case 1:
			if run.MeanUtilization < 0.88 || run.MeanUtilization > 0.96 {
				t.Fatalf("1s utilization %.4f outside paper band ~0.9175", run.MeanUtilization)
			}
		case 5:
			if run.MeanUtilization < 0.97 {
				t.Fatalf("5s utilization %.4f below paper band ~0.9858", run.MeanUtilization)
			}
		}
	}
}

func TestGoodputGrowsWithSlotDuration(t *testing.T) {
	// Fig. 10(a): goodput per slot grows with slot duration (~148
	// packets at 1 s with the paper's packet size).
	prev := 0.0
	for _, slotSec := range []int{1, 2, 3, 4, 5} {
		s, err := New(noJammerConfig(time.Duration(slotSec) * time.Second))
		if err != nil {
			t.Fatal(err)
		}
		run, err := s.Run(core.Static{}, 100)
		if err != nil {
			t.Fatal(err)
		}
		if run.GoodputPktsPerSlot <= prev {
			t.Fatalf("goodput did not grow at %ds slots: %.1f -> %.1f", slotSec, prev, run.GoodputPktsPerSlot)
		}
		prev = run.GoodputPktsPerSlot
		if slotSec == 1 {
			if run.GoodputPktsPerSlot < 120 || run.GoodputPktsPerSlot > 175 {
				t.Fatalf("1s goodput %.1f outside paper band ~148", run.GoodputPktsPerSlot)
			}
		}
	}
}

func TestNoJammerMeansNoLosses(t *testing.T) {
	s, err := New(noJammerConfig(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.Run(core.Static{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if run.Attempted != run.Delivered {
		t.Fatalf("lost %d packets without a jammer", run.Attempted-run.Delivered)
	}
	if run.Counters.JammedSlots != 0 {
		t.Fatal("jammed slots recorded without a jammer")
	}
}

func TestStaticVictimLosesMostPacketsUnderJamming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.Run(core.Static{}, 150)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(run.Delivered) / float64(run.Attempted)
	if frac > 0.45 {
		t.Fatalf("static victim delivered %.2f of packets under a locked jammer", frac)
	}
}

func TestSchemeOrderingGoodputFig11a(t *testing.T) {
	// Fig. 11(a): RL/MDP > Rand FH > PSV FH in goodput, and the best
	// scheme lands near 78% of the no-jammer goodput.
	cfg := DefaultConfig()
	cfg.Seed = 5
	const slots = 400

	noJam := cfg
	noJam.JammerEnabled = false
	sNoJam, err := New(noJam)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := sNoJam.Run(core.Static{}, slots)
	if err != nil {
		t.Fatal(err)
	}

	passive, err := core.NewPassiveFH(cfg.Channels, cfg.SweepWidth)
	if err != nil {
		t.Fatal(err)
	}
	random, err := core.NewRandomFH(cfg.Channels, cfg.SweepWidth, len(cfg.TxPowers))
	if err != nil {
		t.Fatal(err)
	}
	agents := []env.Agent{passive, random, mdpAgent(t, cfg)}
	goodputs := make([]float64, len(agents))
	for i, a := range agents {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run, err := s.Run(a, slots)
		if err != nil {
			t.Fatal(err)
		}
		goodputs[i] = run.GoodputPktsPerSlot
	}
	psv, rnd, mdp := goodputs[0], goodputs[1], goodputs[2]
	t.Logf("goodput pkts/slot: psv=%.0f rand=%.0f mdp=%.0f noJam=%.0f (ratios %.2f/%.2f/%.2f)",
		psv, rnd, mdp, baseline.GoodputPktsPerSlot,
		psv/baseline.GoodputPktsPerSlot, rnd/baseline.GoodputPktsPerSlot, mdp/baseline.GoodputPktsPerSlot)
	if !(mdp > rnd && rnd > psv) {
		t.Fatalf("ordering violated: psv=%.0f rand=%.0f mdp=%.0f", psv, rnd, mdp)
	}
	ratio := mdp / baseline.GoodputPktsPerSlot
	if ratio < 0.65 || ratio > 0.95 {
		t.Fatalf("best scheme reaches %.2f of no-jammer goodput, paper reports ~0.78", ratio)
	}
}

func TestFastJammerHurtsMore(t *testing.T) {
	// Fig. 11(b): a jammer with a much shorter slot than the victim
	// finds and jams the victim faster, reducing goodput relative to
	// the aligned case.
	base := DefaultConfig()
	base.Seed = 7
	agent := mdpAgent(t, base)

	run := func(jamSlot time.Duration) float64 {
		cfg := base
		cfg.JammerSlot = jamSlot
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(agent, 300)
		if err != nil {
			t.Fatal(err)
		}
		return r.GoodputPktsPerSlot
	}
	fast := run(500 * time.Millisecond)
	aligned := run(3 * time.Second)
	t.Logf("goodput: fast jammer=%.0f aligned=%.0f", fast, aligned)
	if fast >= aligned {
		t.Fatalf("fast jammer (%.0f) should hurt more than aligned (%.0f)", fast, aligned)
	}
}

func TestRunCountersConsistent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.Run(mdpAgent(t, cfg), 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Counters.Validate(); err != nil {
		t.Fatal(err)
	}
	if run.Slots != 300 || run.Counters.Slots != 300 {
		t.Fatalf("slot bookkeeping wrong: %d / %d", run.Slots, run.Counters.Slots)
	}
	if run.Delivered > run.Attempted {
		t.Fatal("delivered exceeds attempted")
	}
}

func TestRunValidation(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(core.Static{}, 0); err == nil {
		t.Fatal("0 slots: expected error")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 13
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	passive, err := core.NewPassiveFH(cfg.Channels, cfg.SweepWidth)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Run(passive, 100)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run(passive, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
}

func TestFunctionTimingsMatchPaperFig9a(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := s.FunctionTimings(100)
	wants := map[string]float64{
		"DQN":     0.009,
		"ACK":     0.0009,
		"Proc":    0.0006,
		"Polling": 0.0131,
	}
	for name, want := range wants {
		xs, ok := samples[name]
		if !ok || len(xs) != 100 {
			t.Fatalf("missing samples for %s", name)
		}
		mean := metrics.Mean(xs)
		if math.Abs(mean-want)/want > 0.10 {
			t.Fatalf("%s mean %.5f s deviates from paper's %.5f s", name, mean, want)
		}
	}
}

func TestNegotiationTimesGrowWithNetworkSize(t *testing.T) {
	// Fig. 9(b): mean negotiation time grows with the number of nodes
	// and reaches seconds when nodes must be recovered.
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prevMean := 0.0
	for _, nodes := range []int{1, 2, 4, 6, 8, 10} {
		xs, err := s.NegotiationTimes(nodes, 400, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		mean := metrics.Mean(xs)
		if mean < prevMean {
			t.Fatalf("mean negotiation time fell at %d nodes: %.3f -> %.3f", nodes, prevMean, mean)
		}
		prevMean = mean
	}
	// At 10 nodes with cold-start recovery the tail reaches seconds.
	xs, err := s.NegotiationTimes(10, 500, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if p95 := metrics.Percentile(xs, 0.95); p95 < 1.0 {
		t.Fatalf("10-node negotiation p95 = %.3f s, expected seconds-scale tail", p95)
	}
}

func TestNegotiationTimesValidation(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NegotiationTimes(0, 10, 0.1); err == nil {
		t.Fatal("0 nodes: expected error")
	}
	if _, err := s.NegotiationTimes(3, 0, 0.1); err == nil {
		t.Fatal("0 trials: expected error")
	}
	if _, err := s.NegotiationTimes(3, 10, 1.5); err == nil {
		t.Fatal("bad prob: expected error")
	}
}

func BenchmarkRunSlot(b *testing.B) {
	s, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunSlot(i%16, i%10, i%2 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCSMAModeContentionCost(t *testing.T) {
	// With CSMA enabled, goodput stays close to the fixed-LBT model for
	// the paper's 3-node network and degrades relative to it as
	// contention grows.
	goodput := func(nodes int, useCSMA bool) float64 {
		cfg := noJammerConfig(2 * time.Second)
		cfg.Nodes = nodes
		cfg.UseCSMA = useCSMA
		cfg.Seed = 21
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run, err := s.Run(core.Static{}, 60)
		if err != nil {
			t.Fatal(err)
		}
		return run.GoodputPktsPerSlot
	}
	fixed3 := goodput(3, false)
	csma3 := goodput(3, true)
	if ratio := csma3 / fixed3; ratio < 0.55 || ratio > 1.1 {
		t.Fatalf("3-node CSMA goodput ratio %.2f implausible (csma=%.0f fixed=%.0f)",
			ratio, csma3, fixed3)
	}
	// Denser networks pay more contention overhead per delivered packet.
	csma12 := goodput(12, true)
	if csma12 >= csma3 {
		t.Fatalf("12-node CSMA goodput %.0f should be below 3-node %.0f (collisions)",
			csma12, csma3)
	}
	if csma12 <= 0 {
		t.Fatal("CSMA mode delivered nothing")
	}
}
