// Package ckpt manages generational checkpoint directories: numbered
// snapshot files (ckpt-000123.ctdq, named by training slot) with a
// keep-newest-N retention policy. Writers drop a new generation after each
// checkpoint interval and GC the oldest beyond the retention count; resume
// scans newest-to-oldest so a corrupt latest generation falls back to the
// previous one instead of aborting the run.
package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	prefix = "ckpt-"
	suffix = ".ctdq"
)

// Path names the checkpoint file for a training slot inside dir. Slots are
// zero-padded to six digits so lexical and numeric order agree for typical
// budgets.
func Path(dir string, slot int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%06d%s", prefix, slot, suffix))
}

// Entry is one discovered checkpoint generation.
type Entry struct {
	// Slot is the training slot the checkpoint was written at.
	Slot int
	// Path is the checkpoint file path.
	Path string
}

// List returns the checkpoint generations in dir sorted by slot ascending
// (newest last). A missing directory is an empty list, not an error; files
// that do not match the ckpt-NNNNNN.ctdq pattern are ignored.
func List(dir string) ([]Entry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []Entry
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		slot, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix))
		if err != nil || slot < 0 {
			continue
		}
		out = append(out, Entry{Slot: slot, Path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out, nil
}

// GC removes the oldest generations beyond keep, returning the removed
// paths.
func GC(dir string, keep int) ([]string, error) {
	if keep <= 0 {
		return nil, fmt.Errorf("ckpt: keep %d must be positive", keep)
	}
	entries, err := List(dir)
	if err != nil {
		return nil, err
	}
	var removed []string
	for len(entries) > keep {
		e := entries[0]
		if err := os.Remove(e.Path); err != nil {
			return removed, err
		}
		removed = append(removed, e.Path)
		entries = entries[1:]
	}
	return removed, nil
}
