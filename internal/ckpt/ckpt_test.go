package ckpt

import (
	"os"
	"path/filepath"
	"testing"
)

func touch(t *testing.T, path string) {
	t.Helper()
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestListSortsAndFilters(t *testing.T) {
	dir := t.TempDir()
	touch(t, Path(dir, 3000))
	touch(t, Path(dir, 1000))
	touch(t, Path(dir, 2000))
	touch(t, filepath.Join(dir, "notes.txt"))
	touch(t, filepath.Join(dir, "ckpt-abc.ctdq"))
	if err := os.Mkdir(filepath.Join(dir, "ckpt-9.ctdq"), 0o755); err != nil {
		t.Fatal(err)
	}

	entries, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3: %+v", len(entries), entries)
	}
	for i, want := range []int{1000, 2000, 3000} {
		if entries[i].Slot != want {
			t.Fatalf("entry %d slot = %d, want %d", i, entries[i].Slot, want)
		}
		if entries[i].Path != Path(dir, want) {
			t.Fatalf("entry %d path = %q", i, entries[i].Path)
		}
	}
}

func TestListMissingDirIsEmpty(t *testing.T) {
	entries, err := List(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("got %d entries, want 0", len(entries))
	}
}

func TestGCKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for _, slot := range []int{1000, 2000, 3000, 4000, 5000} {
		touch(t, Path(dir, slot))
	}
	removed, err := GC(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 {
		t.Fatalf("removed %d files, want 3: %v", len(removed), removed)
	}
	entries, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Slot != 4000 || entries[1].Slot != 5000 {
		t.Fatalf("survivors %+v, want slots 4000 and 5000", entries)
	}
	// Already under the cap: a second GC is a no-op.
	removed, err = GC(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("second GC removed %v", removed)
	}
}

func TestGCValidatesKeep(t *testing.T) {
	if _, err := GC(t.TempDir(), 0); err == nil {
		t.Fatal("keep 0: expected error")
	}
}
