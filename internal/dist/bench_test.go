package dist

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ctjam/internal/experiments"
)

// BenchmarkDistributedAllSweeps runs the full `-id all` workload through the
// HTTP coordinator protocol across the {scheme shipping on, off} x {1, 4
// workers} matrix and reports, alongside wall-clock, how much training the
// fleet performed: trainings/op is the number of schemes trained anywhere in
// the fleet, trainslots/op the corresponding training slots (trainings x
// TrainSlots). With shipping on, trainings equals the number of unique scheme
// keys regardless of worker count — the train-once contract; with shipping
// off, every worker retrains each shared scheme its claimed points need, so
// trainings grows with worker count. The DQN engine makes training the
// dominant per-scheme cost, so the trainings reduction is the perf story.
func BenchmarkDistributedAllSweeps(b *testing.B) {
	ids := experiments.IDs()
	o := experiments.Options{
		Slots:      200,
		Engine:     experiments.EngineDQN,
		TrainSlots: 400,
		Seed:       1,
		Workers:    1,
	}
	for _, ship := range []struct {
		on   bool
		name string
	}{{true, "ship"}, {false, "noship"}} {
		for _, nw := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s-workers-%d", ship.name, nw), func(b *testing.B) {
				var trainings, imports int64
				for i := 0; i < b.N; i++ {
					coord, err := NewCoordinator(o, ids, CoordinatorOptions{
						NoSchemeShip: !ship.on,
						Lease:        time.Minute,
						Linger:       time.Millisecond,
					})
					if err != nil {
						b.Fatal(err)
					}
					srv := httptest.NewServer(coord.Handler())
					workers := make([]*Worker, nw)
					var wg sync.WaitGroup
					for w := range workers {
						workers[w] = NewWorker(srv.URL, WorkerOptions{
							ID:           fmt.Sprintf("bench-%d", w),
							Workers:      1,
							PollInterval: 5 * time.Millisecond,
						})
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							workers[w].Run(context.Background())
						}(w)
					}
					if err := coord.Wait(context.Background()); err != nil {
						b.Fatal(err)
					}
					wg.Wait()
					srv.Close()
					for _, w := range workers {
						st := w.CacheStats()
						trainings += st.SchemeBuilds
						imports += st.SchemeImports
					}
				}
				n := float64(b.N)
				b.ReportMetric(float64(trainings)/n, "trainings/op")
				b.ReportMetric(float64(trainings)/n*float64(o.TrainSlots), "trainslots/op")
				b.ReportMetric(float64(imports)/n, "fetches/op")
			})
		}
	}
}
