package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/experiments"
	"ctjam/internal/fault"
	"ctjam/internal/iot"
	"ctjam/internal/metrics"
)

func TestShardUnitsPartition(t *testing.T) {
	o := testOptions()
	units, err := UnitsFor(o, []string{"fig6a", "fig6d"})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 7, len(units) + 5} {
		seen := make(map[string]int)
		for s := 0; s < shards; s++ {
			mine, err := ShardUnits(units, s, shards)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range mine {
				seen[u.Key]++
			}
		}
		if len(seen) != len(units) {
			t.Errorf("shards=%d covered %d unique units, want %d", shards, len(seen), len(units))
		}
		for k, n := range seen {
			if n != 1 {
				t.Errorf("shards=%d: unit %s assigned %d times", shards, k, n)
			}
		}
	}
	if _, err := ShardUnits(units, 0, 0); err == nil {
		t.Error("ShardUnits accepted zero shard count")
	}
	if _, err := ShardUnits(units, 2, 2); err == nil {
		t.Error("ShardUnits accepted out-of-range index")
	}
	if _, err := ShardUnits(units, -1, 2); err == nil {
		t.Error("ShardUnits accepted negative index")
	}
}

func TestWireConfigRoundTrip(t *testing.T) {
	cfg := env.DefaultConfig()
	cfg.Seed = 42
	wc, err := wireConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wc.envConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cfg) {
		t.Errorf("round trip drifted:\ngot  %+v\nwant %+v", got, cfg)
	}
}

func TestWireConfigRejectsInjector(t *testing.T) {
	inj, err := fault.Parse("burst:p=0.1", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Faults = inj
	if _, err := wireConfig(cfg); err == nil {
		t.Error("wireConfig accepted a config with a live fault injector")
	}
}

func TestWireConfigFaultSpecDecode(t *testing.T) {
	cfg := env.DefaultConfig()
	wc, err := wireConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wc.FaultSpec = "burst:p=0.1"
	got, err := wc.envConfig()
	if err != nil {
		t.Fatal(err)
	}
	if got.Faults == nil {
		t.Error("fault spec did not decode into an injector")
	}
	wc.FaultSpec = "no-such-fault:p=1"
	if _, err := wc.envConfig(); err == nil {
		t.Error("bad fault spec decoded without error")
	}
}

func TestEvaluateKeyMismatch(t *testing.T) {
	o := testOptions()
	units, err := UnitsFor(o, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) < 2 {
		t.Fatalf("table1 yielded %d units, want 2", len(units))
	}
	units[0].Key = "tampered"
	results := evaluate(context.Background(), units, experiments.NewCache(), 1)
	if !strings.Contains(results[0].Err, "key mismatch") {
		t.Errorf("tampered unit: Err = %q, want key mismatch", results[0].Err)
	}
	if results[1].Err != "" {
		t.Errorf("healthy sibling failed too: %q", results[1].Err)
	}
}

// writeSpool writes one spool file for merge-error tests.
func writeSpool(t *testing.T, dir string, sp Spool) {
	t.Helper()
	data, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SpoolName(sp.Shard, sp.Shards))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSpoolsErrors(t *testing.T) {
	units := []Unit{{Key: "a"}, {Key: "b"}}
	res := func(keys ...string) []UnitResult {
		out := make([]UnitResult, len(keys))
		for i, k := range keys {
			out[i] = UnitResult{Key: k, Counters: metrics.Counters{Slots: 1}}
		}
		return out
	}
	cases := []struct {
		name   string
		spools []Spool
		want   string
	}{
		{"empty dir", nil, "no spool files"},
		{"missing shard", []Spool{{Shard: 0, Shards: 2, Results: res("a")}}, "incomplete shard set"},
		{"inconsistent counts", []Spool{
			{Shard: 0, Shards: 2, Results: res("a")},
			{Shard: 1, Shards: 3, Results: res("b")},
		}, "declares 3 shards"},
		{"index out of range", []Spool{{Shard: 5, Shards: 1, Results: res("a", "b")}}, "out of range"},
		{"result with error", []Spool{{Shard: 0, Shards: 1, Results: []UnitResult{{Key: "a", Err: "boom"}}}}, "carries error"},
		{"duplicate unit", []Spool{
			{Shard: 0, Shards: 2, Results: res("a")},
			{Shard: 1, Shards: 2, Results: res("a")},
		}, "already imported"},
		{"missing unit", []Spool{{Shard: 0, Shards: 1, Results: res("a")}}, "missing unit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for _, sp := range tc.spools {
				writeSpool(t, dir, sp)
			}
			_, err := MergeSpools(dir, experiments.NewCache(), units)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCoordinatorNoUnits(t *testing.T) {
	// fig2b is not cache-backed: the run completes with nothing to do.
	coord, err := NewCoordinator(testOptions(), []string{"fig2b"}, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := coord.Wait(ctx); err != nil {
		t.Errorf("empty run did not complete cleanly: %v", err)
	}
}

func TestCoordinatorUnknownID(t *testing.T) {
	if _, err := NewCoordinator(testOptions(), []string{"no-such-id"}, CoordinatorOptions{}); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestCoordinatorFailsAfterMaxAttempts(t *testing.T) {
	coord, err := NewCoordinator(testOptions(), []string{"table1"}, CoordinatorOptions{
		MaxAttempts: 1,
		Linger:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	poll := coord.assign(1)
	if len(poll.Units) != 1 {
		t.Fatalf("assigned %d units, want 1", len(poll.Units))
	}
	coord.record([]UnitResult{{Key: poll.Units[0].Key, Err: "synthetic failure"}})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err = coord.Wait(ctx)
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("Wait = %v, want fatal unit failure", err)
	}
	st := coord.Snapshot()
	if !st.Failed || st.LastError == "" {
		t.Errorf("status does not report the failure: %+v", st)
	}
}

func TestWorkerNeverConnected(t *testing.T) {
	w := NewWorker("http://127.0.0.1:1", WorkerOptions{PollInterval: time.Millisecond})
	if _, err := w.Run(context.Background()); err == nil {
		t.Error("worker with unreachable coordinator exited cleanly despite never connecting")
	}
}

func TestWorkerContextCancel(t *testing.T) {
	coord, err := NewCoordinator(testOptions(), []string{"fig2b"}, CoordinatorOptions{Linger: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := NewWorker(srv.URL, WorkerOptions{PollInterval: time.Millisecond})
	if _, err := w.Run(ctx); err == nil {
		t.Error("cancelled worker returned nil error")
	}
}

func TestWireFieldSpecRoundTrip(t *testing.T) {
	spec := experiments.FieldSpec{
		Scheme:       experiments.FieldSchemeRand,
		Jammer:       true,
		Clusters:     8,
		Nodes:        5,
		SlotDuration: 500 * time.Millisecond,
		JammerSlot:   250 * time.Millisecond,
		Seed:         7,
		Slots:        100,
	}
	got, err := wireFieldSpec(spec).fieldSpec()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Errorf("round trip drifted:\ngot  %+v\nwant %+v", got, spec)
	}
	bad := wireFieldSpec(spec)
	bad.Scheme = "no-such-scheme"
	if _, err := bad.fieldSpec(); err == nil {
		t.Error("invalid wire field spec decoded without error")
	}
}

func TestWireRunStatsRoundTrip(t *testing.T) {
	run := iot.RunStats{
		Slots:              100,
		Attempted:          4000,
		Delivered:          3500,
		FrameLosses:        12,
		GoodputPktsPerSlot: 35,
		MeanUtilization:    0.91,
		MeanOverhead:       48 * time.Millisecond,
		Counters:           metrics.Counters{Slots: 100, Successes: 80, JamLosses: 20},
	}
	if got := wireRunStats(run).runStats(); !reflect.DeepEqual(got, run) {
		t.Errorf("round trip drifted:\ngot  %+v\nwant %+v", got, run)
	}
}

func TestEvaluateFieldKeyMismatch(t *testing.T) {
	o := testOptions()
	units, err := UnitsFor(o, []string{"fig10a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("fig10a yielded no field units")
	}
	units[0].Key = "fd|tampered"
	results := evaluate(context.Background(), units[:1], experiments.NewCache(), 1)
	if !strings.Contains(results[0].Err, "key mismatch") {
		t.Errorf("tampered field unit: Err = %q, want key mismatch", results[0].Err)
	}
}

func TestTrainUnitsForSchemeKeys(t *testing.T) {
	o := testOptions()
	trains, err := TrainUnitsFor(o, experiments.IDs())
	if err != nil {
		t.Fatal(err)
	}
	points, err := UnitsFor(o, experiments.IDs())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool)
	schemePoints := 0
	for _, u := range points {
		if u.SchemeKey != "" {
			want[u.SchemeKey] = true
			schemePoints++
		}
	}
	if len(trains) != len(want) {
		t.Errorf("%d train units for %d unique point scheme keys", len(trains), len(want))
	}
	// Scheme reuse must exist in the registry: strictly fewer trainings than
	// scheme-backed points (table1-seeds replicas share per-mode schemes).
	if len(trains) >= schemePoints {
		t.Errorf("no scheme sharing: %d train units for %d scheme-backed points", len(trains), schemePoints)
	}
	for i, u := range trains {
		if !u.Train {
			t.Fatalf("train unit %s lacks Train flag", u.Key)
		}
		if i > 0 && trains[i-1].Key >= u.Key {
			t.Fatalf("train units not sorted: %q then %q", trains[i-1].Key, u.Key)
		}
		if !want[u.Key] {
			t.Errorf("train unit %s backs no point unit", u.Key)
		}
		cfg, err := u.Config.envConfig()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Seed != 0 {
			t.Errorf("train unit %s ships seed %d, want canonical 0", u.Key, cfg.Seed)
		}
		if got := experiments.SchemeKey(o, cfg); got != u.Key {
			t.Errorf("train unit key %q does not recompute from its wire config (got %q)", u.Key, got)
		}
	}
}

// trainTestSchemes trains the checkpoint of every table1 train unit, giving
// protocol tests real CTSC blobs to upload.
func trainTestSchemes(t *testing.T, o experiments.Options) ([]Unit, [][]byte) {
	t.Helper()
	trains, err := TrainUnitsFor(o, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(trains) < 2 {
		t.Fatalf("table1 yielded %d train units, want 2", len(trains))
	}
	cache := experiments.NewCache()
	blobs := make([][]byte, len(trains))
	for i, u := range trains {
		cfg, err := u.Config.envConfig()
		if err != nil {
			t.Fatal(err)
		}
		key, blob, err := cache.TrainScheme(context.Background(), u.Opts.options(context.Background(), cache, 1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if key != u.Key {
			t.Fatalf("TrainScheme derived key %q, unit key %q", key, u.Key)
		}
		blobs[i] = blob
	}
	if core.SchemeFingerprint(blobs[0]) == core.SchemeFingerprint(blobs[1]) {
		t.Fatal("the two table1 modes trained identical schemes; conflict tests would be vacuous")
	}
	return trains, blobs
}

func TestSchemeUploadVerification(t *testing.T) {
	o := testOptions()
	trains, blobs := trainTestSchemes(t, o)
	coord, err := NewCoordinator(o, []string{"table1"}, CoordinatorOptions{Linger: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fp0 := core.SchemeFingerprint(blobs[0])

	if _, reject := coord.recordScheme(schemeUploadRequest{
		Key: trains[0].Key, Fingerprint: "beef", Data: blobs[0],
	}); !strings.Contains(reject, "hash to") {
		t.Errorf("claimed-fingerprint mismatch not rejected: %q", reject)
	}
	junk := []byte{1, 2, 3, 4}
	if _, reject := coord.recordScheme(schemeUploadRequest{
		Key: trains[0].Key, Fingerprint: core.SchemeFingerprint(junk), Data: junk,
	}); reject == "" {
		t.Error("undecodable checkpoint accepted")
	}
	if _, reject := coord.recordScheme(schemeUploadRequest{
		Key: "sc|bogus", Fingerprint: fp0, Data: blobs[0],
	}); !strings.Contains(reject, "not a train unit") {
		t.Errorf("unknown train key not rejected: %q", reject)
	}
	if snap := coord.Snapshot(); snap.Train.Done != 0 || snap.SchemesStored != 0 {
		t.Fatalf("rejected uploads mutated the store: %+v", snap)
	}

	resp, reject := coord.recordScheme(schemeUploadRequest{Key: trains[0].Key, Fingerprint: fp0, Data: blobs[0]})
	if reject != "" || !resp.OK {
		t.Fatalf("valid upload refused: %+v %q", resp, reject)
	}
	// A retried lease re-uploads identical bytes: idempotent success.
	if resp, reject = coord.recordScheme(schemeUploadRequest{Key: trains[0].Key, Fingerprint: fp0, Data: blobs[0]}); reject != "" || !resp.OK {
		t.Errorf("duplicate identical upload refused: %+v %q", resp, reject)
	}
	// Different bytes under a resolved key can only be corruption.
	if _, reject = coord.recordScheme(schemeUploadRequest{
		Key: trains[0].Key, Fingerprint: core.SchemeFingerprint(blobs[1]), Data: blobs[1],
	}); !strings.Contains(reject, "conflicting") {
		t.Errorf("conflicting upload not rejected: %q", reject)
	}
	if snap := coord.Snapshot(); snap.Train.Done != 1 || snap.SchemesStored != 1 {
		t.Errorf("store after one resolved scheme: %+v", snap)
	}
}

func TestSchemeEndpointHTTP(t *testing.T) {
	o := testOptions()
	trains, blobs := trainTestSchemes(t, o)
	coord, err := NewCoordinator(o, []string{"table1"}, CoordinatorOptions{Linger: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	getURL := srv.URL + "/v1/scheme/" + url.PathEscape(trains[0].Key)

	resp, err := http.Get(getURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET of unresolved scheme: %s, want 404", resp.Status)
	}

	post := func(req schemeUploadRequest) *http.Response {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/v1/scheme", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	bad := post(schemeUploadRequest{Worker: "t", Key: trains[0].Key, Fingerprint: "beef", Data: blobs[0]})
	if bad.StatusCode != http.StatusConflict {
		t.Fatalf("tampered upload: %s, want 409", bad.Status)
	}
	var rej rejectResponse
	if err := json.NewDecoder(bad.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if rej.Error == "" || !reflect.DeepEqual(rej.RejectedKeys, []string{trains[0].Key}) {
		t.Errorf("409 body does not name the rejected key: %+v", rej)
	}
	good := post(schemeUploadRequest{
		Worker: "t", Key: trains[0].Key,
		Fingerprint: core.SchemeFingerprint(blobs[0]), Data: blobs[0],
	})
	if good.StatusCode != http.StatusOK {
		t.Fatalf("valid upload: %s, want 200", good.Status)
	}
	good.Body.Close()

	resp, err = http.Get(getURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET of resolved scheme: %s, want 200", resp.Status)
	}
	if got := resp.Header.Get("X-Scheme-Fingerprint"); got != core.SchemeFingerprint(blobs[0]) {
		t.Errorf("fingerprint header %q does not match stored bytes", got)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), blobs[0]) {
		t.Errorf("fetched scheme differs from uploaded bytes (%d vs %d)", buf.Len(), len(blobs[0]))
	}
}

func TestResultUnknownKeyRejected(t *testing.T) {
	o := testOptions()
	coord, err := NewCoordinator(o, []string{"table1"}, CoordinatorOptions{
		NoSchemeShip: true, Linger: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	poll := coord.assign(8)
	if len(poll.Units) != 2 {
		t.Fatalf("assigned %d units, want 2", len(poll.Units))
	}
	results := evaluate(context.Background(), poll.Units, experiments.NewCache(), 1)
	results = append(results, UnitResult{Key: "pt|bogus", Counters: metrics.Counters{Slots: 1}})

	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	body, err := json.Marshal(resultRequest{Worker: "t", Results: results})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("report with unknown key: %s, want 409", resp.Status)
	}
	var rej rejectResponse
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rej.RejectedKeys, []string{"pt|bogus"}) {
		t.Errorf("rejected keys = %v, want [pt|bogus]", rej.RejectedKeys)
	}
	// The two legitimate results in the same report were still ingested.
	if st := coord.Snapshot(); st.Done != 2 || st.Failed {
		t.Errorf("known results not ingested alongside the rejection: %+v", st)
	}
}

func TestMergeSpoolsSchemeVerification(t *testing.T) {
	o := testOptions()
	trains, blobs := trainTestSchemes(t, o)
	key := trains[0].Key
	res := func(keys ...string) []UnitResult {
		out := make([]UnitResult, len(keys))
		for i, k := range keys {
			out[i] = UnitResult{Key: k, Counters: metrics.Counters{Slots: 1}}
		}
		return out
	}

	t.Run("corrupt fingerprint", func(t *testing.T) {
		dir := t.TempDir()
		writeSpool(t, dir, Spool{Shard: 0, Shards: 1, Results: res("a"), Schemes: []SpoolScheme{
			{Key: key, Fingerprint: "beef", Data: blobs[0]},
		}})
		_, err := MergeSpools(dir, experiments.NewCache(), []Unit{{Key: "a"}})
		if err == nil || !strings.Contains(err.Error(), "hash to") {
			t.Errorf("err = %v, want fingerprint mismatch", err)
		}
	})
	t.Run("undecodable scheme", func(t *testing.T) {
		dir := t.TempDir()
		junk := []byte{9, 9, 9}
		writeSpool(t, dir, Spool{Shard: 0, Shards: 1, Results: res("a"), Schemes: []SpoolScheme{
			{Key: key, Fingerprint: core.SchemeFingerprint(junk), Data: junk},
		}})
		if _, err := MergeSpools(dir, experiments.NewCache(), []Unit{{Key: "a"}}); err == nil {
			t.Error("spool with undecodable scheme bytes merged cleanly")
		}
	})
	t.Run("cross-shard conflict", func(t *testing.T) {
		dir := t.TempDir()
		writeSpool(t, dir, Spool{Shard: 0, Shards: 2, Results: res("a"), Schemes: []SpoolScheme{
			{Key: key, Fingerprint: core.SchemeFingerprint(blobs[0]), Data: blobs[0]},
		}})
		writeSpool(t, dir, Spool{Shard: 1, Shards: 2, Results: res("b"), Schemes: []SpoolScheme{
			{Key: key, Fingerprint: core.SchemeFingerprint(blobs[1]), Data: blobs[1]},
		}})
		_, err := MergeSpools(dir, experiments.NewCache(), []Unit{{Key: "a"}, {Key: "b"}})
		if err == nil || !strings.Contains(err.Error(), "conflicts with another shard") {
			t.Errorf("err = %v, want cross-shard scheme conflict", err)
		}
	})
}

// TestCoordinatorRejectsFieldResultWithoutStats checks a field unit reported
// "successfully" but with no RunStats payload counts as a failed attempt, not
// a completed unit.
func TestCoordinatorRejectsFieldResultWithoutStats(t *testing.T) {
	coord, err := NewCoordinator(testOptions(), []string{"scale"}, CoordinatorOptions{
		MaxAttempts: 1,
		Linger:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	poll := coord.assign(1)
	if len(poll.Units) != 1 || poll.Units[0].Field == nil {
		t.Fatalf("expected one field unit, got %+v", poll.Units)
	}
	coord.record([]UnitResult{{Key: poll.Units[0].Key}}) // no Field payload
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err = coord.Wait(ctx)
	if err == nil || !strings.Contains(err.Error(), "missing field stats") {
		t.Errorf("Wait = %v, want missing-field-stats failure", err)
	}
}
