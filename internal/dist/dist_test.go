package dist

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ctjam/internal/env"
	"ctjam/internal/experiments"
	"ctjam/internal/fault"
	"ctjam/internal/iot"
	"ctjam/internal/metrics"
)

func TestShardUnitsPartition(t *testing.T) {
	o := testOptions()
	units, err := UnitsFor(o, []string{"fig6a", "fig6d"})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 7, len(units) + 5} {
		seen := make(map[string]int)
		for s := 0; s < shards; s++ {
			mine, err := ShardUnits(units, s, shards)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range mine {
				seen[u.Key]++
			}
		}
		if len(seen) != len(units) {
			t.Errorf("shards=%d covered %d unique units, want %d", shards, len(seen), len(units))
		}
		for k, n := range seen {
			if n != 1 {
				t.Errorf("shards=%d: unit %s assigned %d times", shards, k, n)
			}
		}
	}
	if _, err := ShardUnits(units, 0, 0); err == nil {
		t.Error("ShardUnits accepted zero shard count")
	}
	if _, err := ShardUnits(units, 2, 2); err == nil {
		t.Error("ShardUnits accepted out-of-range index")
	}
	if _, err := ShardUnits(units, -1, 2); err == nil {
		t.Error("ShardUnits accepted negative index")
	}
}

func TestWireConfigRoundTrip(t *testing.T) {
	cfg := env.DefaultConfig()
	cfg.Seed = 42
	wc, err := wireConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wc.envConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cfg) {
		t.Errorf("round trip drifted:\ngot  %+v\nwant %+v", got, cfg)
	}
}

func TestWireConfigRejectsInjector(t *testing.T) {
	inj, err := fault.Parse("burst:p=0.1", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Faults = inj
	if _, err := wireConfig(cfg); err == nil {
		t.Error("wireConfig accepted a config with a live fault injector")
	}
}

func TestWireConfigFaultSpecDecode(t *testing.T) {
	cfg := env.DefaultConfig()
	wc, err := wireConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wc.FaultSpec = "burst:p=0.1"
	got, err := wc.envConfig()
	if err != nil {
		t.Fatal(err)
	}
	if got.Faults == nil {
		t.Error("fault spec did not decode into an injector")
	}
	wc.FaultSpec = "no-such-fault:p=1"
	if _, err := wc.envConfig(); err == nil {
		t.Error("bad fault spec decoded without error")
	}
}

func TestEvaluateKeyMismatch(t *testing.T) {
	o := testOptions()
	units, err := UnitsFor(o, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) < 2 {
		t.Fatalf("table1 yielded %d units, want 2", len(units))
	}
	units[0].Key = "tampered"
	results := evaluate(context.Background(), units, experiments.NewCache(), 1)
	if !strings.Contains(results[0].Err, "key mismatch") {
		t.Errorf("tampered unit: Err = %q, want key mismatch", results[0].Err)
	}
	if results[1].Err != "" {
		t.Errorf("healthy sibling failed too: %q", results[1].Err)
	}
}

// writeSpool writes one spool file for merge-error tests.
func writeSpool(t *testing.T, dir string, sp Spool) {
	t.Helper()
	data, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SpoolName(sp.Shard, sp.Shards))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSpoolsErrors(t *testing.T) {
	units := []Unit{{Key: "a"}, {Key: "b"}}
	res := func(keys ...string) []UnitResult {
		out := make([]UnitResult, len(keys))
		for i, k := range keys {
			out[i] = UnitResult{Key: k, Counters: metrics.Counters{Slots: 1}}
		}
		return out
	}
	cases := []struct {
		name   string
		spools []Spool
		want   string
	}{
		{"empty dir", nil, "no spool files"},
		{"missing shard", []Spool{{Shard: 0, Shards: 2, Results: res("a")}}, "incomplete shard set"},
		{"inconsistent counts", []Spool{
			{Shard: 0, Shards: 2, Results: res("a")},
			{Shard: 1, Shards: 3, Results: res("b")},
		}, "declares 3 shards"},
		{"index out of range", []Spool{{Shard: 5, Shards: 1, Results: res("a", "b")}}, "out of range"},
		{"result with error", []Spool{{Shard: 0, Shards: 1, Results: []UnitResult{{Key: "a", Err: "boom"}}}}, "carries error"},
		{"duplicate unit", []Spool{
			{Shard: 0, Shards: 2, Results: res("a")},
			{Shard: 1, Shards: 2, Results: res("a")},
		}, "already imported"},
		{"missing unit", []Spool{{Shard: 0, Shards: 1, Results: res("a")}}, "missing unit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for _, sp := range tc.spools {
				writeSpool(t, dir, sp)
			}
			_, err := MergeSpools(dir, experiments.NewCache(), units)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCoordinatorNoUnits(t *testing.T) {
	// fig2b is not cache-backed: the run completes with nothing to do.
	coord, err := NewCoordinator(testOptions(), []string{"fig2b"}, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := coord.Wait(ctx); err != nil {
		t.Errorf("empty run did not complete cleanly: %v", err)
	}
}

func TestCoordinatorUnknownID(t *testing.T) {
	if _, err := NewCoordinator(testOptions(), []string{"no-such-id"}, CoordinatorOptions{}); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestCoordinatorFailsAfterMaxAttempts(t *testing.T) {
	coord, err := NewCoordinator(testOptions(), []string{"table1"}, CoordinatorOptions{
		MaxAttempts: 1,
		Linger:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	poll := coord.assign(1)
	if len(poll.Units) != 1 {
		t.Fatalf("assigned %d units, want 1", len(poll.Units))
	}
	coord.record([]UnitResult{{Key: poll.Units[0].Key, Err: "synthetic failure"}})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err = coord.Wait(ctx)
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("Wait = %v, want fatal unit failure", err)
	}
	st := coord.Snapshot()
	if !st.Failed || st.LastError == "" {
		t.Errorf("status does not report the failure: %+v", st)
	}
}

func TestWorkerNeverConnected(t *testing.T) {
	w := NewWorker("http://127.0.0.1:1", WorkerOptions{PollInterval: time.Millisecond})
	if _, err := w.Run(context.Background()); err == nil {
		t.Error("worker with unreachable coordinator exited cleanly despite never connecting")
	}
}

func TestWorkerContextCancel(t *testing.T) {
	coord, err := NewCoordinator(testOptions(), []string{"fig2b"}, CoordinatorOptions{Linger: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := NewWorker(srv.URL, WorkerOptions{PollInterval: time.Millisecond})
	if _, err := w.Run(ctx); err == nil {
		t.Error("cancelled worker returned nil error")
	}
}

func TestWireFieldSpecRoundTrip(t *testing.T) {
	spec := experiments.FieldSpec{
		Scheme:       experiments.FieldSchemeRand,
		Jammer:       true,
		Clusters:     8,
		Nodes:        5,
		SlotDuration: 500 * time.Millisecond,
		JammerSlot:   250 * time.Millisecond,
		Seed:         7,
		Slots:        100,
	}
	got, err := wireFieldSpec(spec).fieldSpec()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Errorf("round trip drifted:\ngot  %+v\nwant %+v", got, spec)
	}
	bad := wireFieldSpec(spec)
	bad.Scheme = "no-such-scheme"
	if _, err := bad.fieldSpec(); err == nil {
		t.Error("invalid wire field spec decoded without error")
	}
}

func TestWireRunStatsRoundTrip(t *testing.T) {
	run := iot.RunStats{
		Slots:              100,
		Attempted:          4000,
		Delivered:          3500,
		FrameLosses:        12,
		GoodputPktsPerSlot: 35,
		MeanUtilization:    0.91,
		MeanOverhead:       48 * time.Millisecond,
		Counters:           metrics.Counters{Slots: 100, Successes: 80, JamLosses: 20},
	}
	if got := wireRunStats(run).runStats(); !reflect.DeepEqual(got, run) {
		t.Errorf("round trip drifted:\ngot  %+v\nwant %+v", got, run)
	}
}

func TestEvaluateFieldKeyMismatch(t *testing.T) {
	o := testOptions()
	units, err := UnitsFor(o, []string{"fig10a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("fig10a yielded no field units")
	}
	units[0].Key = "fd|tampered"
	results := evaluate(context.Background(), units[:1], experiments.NewCache(), 1)
	if !strings.Contains(results[0].Err, "key mismatch") {
		t.Errorf("tampered field unit: Err = %q, want key mismatch", results[0].Err)
	}
}

// TestCoordinatorRejectsFieldResultWithoutStats checks a field unit reported
// "successfully" but with no RunStats payload counts as a failed attempt, not
// a completed unit.
func TestCoordinatorRejectsFieldResultWithoutStats(t *testing.T) {
	coord, err := NewCoordinator(testOptions(), []string{"scale"}, CoordinatorOptions{
		MaxAttempts: 1,
		Linger:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	poll := coord.assign(1)
	if len(poll.Units) != 1 || poll.Units[0].Field == nil {
		t.Fatalf("expected one field unit, got %+v", poll.Units)
	}
	coord.record([]UnitResult{{Key: poll.Units[0].Key}}) // no Field payload
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err = coord.Wait(ctx)
	if err == nil || !strings.Contains(err.Error(), "missing field stats") {
		t.Errorf("Wait = %v, want missing-field-stats failure", err)
	}
}
