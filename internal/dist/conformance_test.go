package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ctjam/internal/experiments"
)

// testOptions is a deliberately tiny budget: conformance tests pin exact
// byte equality, so they need the full pipeline, not convergence.
func testOptions() experiments.Options {
	return experiments.Options{
		Slots:      200,
		Engine:     experiments.EngineMDP,
		TrainSlots: 200,
		Seed:       1,
		Workers:    2,
	}
}

// cacheBackedIDs filters the registry down to the experiments whose compute
// is distributable — the 20 Figs. 6-8 metric panels plus Table I, its
// seed-replicated variant and the jammer-zoo matchup (sweep points), and the
// fig10/fig11/scale panels (field replica units).
func cacheBackedIDs(t *testing.T, o experiments.Options) []string {
	t.Helper()
	var ids []string
	for _, id := range experiments.IDs() {
		units, err := UnitsFor(o, []string{id})
		if err != nil {
			t.Fatal(err)
		}
		if len(units) > 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) != 28 {
		t.Fatalf("expected 28 cache-backed experiments, got %d: %v", len(ids), ids)
	}
	return ids
}

// trace runs every id under o and returns the full result set as one
// indented JSON document — the byte-equality unit of the conformance tests.
func trace(t *testing.T, o experiments.Options, ids []string) []byte {
	t.Helper()
	var results []*experiments.Result
	for _, id := range ids {
		res, err := experiments.Run(id, o)
		if err != nil {
			t.Fatalf("run %s: %v", id, err)
		}
		results = append(results, res)
	}
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDistributedSerialEquivalence pins the tentpole guarantee: static
// sharding at shard counts 1, 2 and 5, and the coordinator/worker HTTP
// protocol with three concurrent workers, all produce experiment traces
// byte-identical to a single-process run over every cache-backed id.
func TestDistributedSerialEquivalence(t *testing.T) {
	o := testOptions()
	ids := cacheBackedIDs(t, o)

	base := o
	base.Cache = experiments.NewCache()
	baseline := trace(t, base, ids)

	units, err := UnitsFor(o, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("no units to distribute")
	}

	for _, shards := range []int{1, 2, 5} {
		shards := shards
		t.Run(fmt.Sprintf("static-%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			for s := 0; s < shards; s++ {
				n, err := RunShard(context.Background(), o, ids, s, shards, filepath.Join(dir, SpoolName(s, shards)))
				if err != nil {
					t.Fatalf("shard %d/%d: %v", s, shards, err)
				}
				t.Logf("shard %d/%d evaluated %d units", s, shards, n)
			}
			merged := o
			merged.Cache = experiments.NewCache()
			n, err := MergeSpools(dir, merged.Cache, units)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(units) {
				t.Fatalf("merged %d units, want %d", n, len(units))
			}
			got := trace(t, merged, ids)
			if !bytes.Equal(got, baseline) {
				t.Errorf("static %d-shard trace differs from single-process baseline", shards)
			}
			st := merged.Cache.Stats()
			if st.PointMisses != 0 {
				t.Errorf("merged run recomputed %d points; want pure cache hits", st.PointMisses)
			}
			if st.FieldMisses != 0 {
				t.Errorf("merged run recomputed %d field runs; want pure cache hits", st.FieldMisses)
			}
		})
	}

	t.Run("http-3-workers", func(t *testing.T) {
		trains, err := TrainUnitsFor(o, ids)
		if err != nil {
			t.Fatal(err)
		}
		if len(trains) == 0 {
			t.Fatal("no train units: scheme reuse has nothing to assert")
		}
		coord, err := NewCoordinator(o, ids, CoordinatorOptions{Linger: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(coord.Handler())
		defer srv.Close()

		workers := make([]*Worker, 3)
		var wg sync.WaitGroup
		for i := range workers {
			workers[i] = NewWorker(srv.URL, WorkerOptions{
				ID:           fmt.Sprintf("w%d", i),
				Workers:      2,
				MaxUnits:     4,
				PollInterval: 10 * time.Millisecond,
			})
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := workers[i].Run(context.Background()); err != nil {
					t.Errorf("worker %d: %v", i, err)
				}
			}(i)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		if err := coord.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		wg.Wait()

		// The tentpole accounting: each unique scheme key is trained exactly
		// once fleet-wide — the sum of local trainings across every worker
		// equals the number of train units, with no retraining on workers
		// that merely evaluated dependent points.
		var builds int64
		for i, w := range workers {
			st := w.CacheStats()
			builds += st.SchemeBuilds
			t.Logf("worker %d: %d schemes trained here, %d imported", i, st.SchemeBuilds, st.SchemeImports)
		}
		if builds != int64(len(trains)) {
			t.Errorf("fleet trained %d schemes, want exactly %d (one per unique scheme key)", builds, len(trains))
		}
		snap := coord.Snapshot()
		if snap.Train.Done != len(trains) {
			t.Errorf("status reports %d train units done, want %d", snap.Train.Done, len(trains))
		}
		if snap.SchemesStored != len(trains) || snap.SchemeStoreBytes <= 0 {
			t.Errorf("scheme store holds %d schemes / %d bytes, want %d schemes and positive size",
				snap.SchemesStored, snap.SchemeStoreBytes, len(trains))
		}
		if snap.Point.Done+snap.Field.Done != len(units) {
			t.Errorf("status reports %d point + %d field done, want %d total",
				snap.Point.Done, snap.Field.Done, len(units))
		}

		merged := o
		merged.Cache = experiments.NewCache()
		if n := coord.ImportInto(merged.Cache); n != len(units) {
			t.Fatalf("imported %d units, want %d", n, len(units))
		}
		if st := merged.Cache.Stats(); st.SchemeImports != int64(len(trains)) {
			t.Errorf("merged cache imported %d schemes, want %d", st.SchemeImports, len(trains))
		}
		got := trace(t, merged, ids)
		if !bytes.Equal(got, baseline) {
			t.Error("distributed HTTP trace differs from single-process baseline")
		}
	})
}

// TestDistributedWorkerLossRetry kills a worker mid-lease and checks the
// coordinator re-leases its units after expiry, converging on output
// byte-identical to the single-process run.
func TestDistributedWorkerLossRetry(t *testing.T) {
	o := testOptions()
	ids := []string{"fig6a", "table1"}

	base := o
	base.Cache = experiments.NewCache()
	baseline := trace(t, base, ids)

	units, err := UnitsFor(o, ids)
	if err != nil {
		t.Fatal(err)
	}

	coord, err := NewCoordinator(o, ids, CoordinatorOptions{
		Lease:       100 * time.Millisecond,
		MaxAttempts: 3,
		Linger:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// A worker that claims a batch and dies without reporting.
	body, _ := json.Marshal(pollRequest{Worker: "doomed", Max: 6})
	resp, err := http.Post(srv.URL+"/v1/poll", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var claimed pollResponse
	if err := json.NewDecoder(resp.Body).Decode(&claimed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(claimed.Units) == 0 {
		t.Fatal("doomed worker claimed no units")
	}

	// A healthy worker picks up everything, including the re-leased units.
	done := make(chan error, 1)
	go func() {
		w := NewWorker(srv.URL, WorkerOptions{ID: "healthy", Workers: 2, PollInterval: 20 * time.Millisecond})
		_, err := w.Run(context.Background())
		done <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("healthy worker: %v", err)
	}

	st := coord.Snapshot()
	if st.Attempts <= st.Total {
		t.Errorf("attempts = %d, want > %d (the doomed worker's units must have been re-leased)", st.Attempts, st.Total)
	}

	merged := o
	merged.Cache = experiments.NewCache()
	if n := coord.ImportInto(merged.Cache); n != len(units) {
		t.Fatalf("imported %d units, want %d", n, len(units))
	}
	got := trace(t, merged, ids)
	if !bytes.Equal(got, baseline) {
		t.Error("post-retry trace differs from single-process baseline")
	}
}

// TestDistributedTrainLossRetry kills a worker that claimed train units
// before uploading any checkpoint. The blocked point units must not deadlock
// the run: the train leases expire, a healthy worker retrains and uploads,
// and the output converges byte-identical to the single-process run.
func TestDistributedTrainLossRetry(t *testing.T) {
	o := testOptions()
	ids := []string{"fig6a", "table1"}

	base := o
	base.Cache = experiments.NewCache()
	baseline := trace(t, base, ids)

	units, err := UnitsFor(o, ids)
	if err != nil {
		t.Fatal(err)
	}
	trains, err := TrainUnitsFor(o, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(trains) == 0 {
		t.Fatal("no train units to lose")
	}

	coord, err := NewCoordinator(o, ids, CoordinatorOptions{
		Lease:       100 * time.Millisecond,
		MaxAttempts: 3,
		Linger:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// A worker that claims a batch and dies mid-training. The ids carry no
	// field units and every point is gated on an unresolved scheme, so the
	// first poll can only hand out train units.
	body, _ := json.Marshal(pollRequest{Worker: "doomed", Max: 4})
	resp, err := http.Post(srv.URL+"/v1/poll", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var claimed pollResponse
	if err := json.NewDecoder(resp.Body).Decode(&claimed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(claimed.Units) == 0 {
		t.Fatal("doomed worker claimed no units")
	}
	for _, u := range claimed.Units {
		if !u.Train {
			t.Fatalf("first poll handed out non-train unit %s before its scheme resolved", u.Key)
		}
	}

	done := make(chan error, 1)
	healthy := NewWorker(srv.URL, WorkerOptions{ID: "healthy", Workers: 2, PollInterval: 20 * time.Millisecond})
	go func() {
		_, err := healthy.Run(context.Background())
		done <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("healthy worker: %v", err)
	}

	st := coord.Snapshot()
	if st.Train.Done != len(trains) {
		t.Errorf("train units done = %d, want %d", st.Train.Done, len(trains))
	}
	if st.Train.Retried == 0 {
		t.Error("no train unit was retried despite the doomed worker's lost leases")
	}
	if st.Attempts <= st.Total {
		t.Errorf("attempts = %d, want > %d (the doomed worker's train units must have been re-leased)",
			st.Attempts, st.Total)
	}
	if got := healthy.CacheStats().SchemeBuilds; got != int64(len(trains)) {
		t.Errorf("healthy worker trained %d schemes, want all %d", got, len(trains))
	}

	merged := o
	merged.Cache = experiments.NewCache()
	if n := coord.ImportInto(merged.Cache); n != len(units) {
		t.Fatalf("imported %d units, want %d", n, len(units))
	}
	got := trace(t, merged, ids)
	if !bytes.Equal(got, baseline) {
		t.Error("post-retry trace differs from single-process baseline")
	}
}
