// Package dist shards the cache-backed compute of the experiment harness
// across processes: a coordinator enumerates the unique work units of a set
// of experiment ids — sweep points (experiments.CachePoints) and whole
// field-simulator replica runs (experiments.CacheFieldSpecs) — serves them
// over a small HTTP/JSON protocol, and merges the returned Counters and
// RunStats back into an experiments.Cache, after which the experiments
// themselves run entirely from cache — producing output bit-identical to a
// single-process run. A static, networkless mode (RunShard / MergeSpools)
// partitions the same sorted unit list round-robin across shard indices and
// exchanges results through atomically written spool files instead of
// sockets.
//
// Correctness rests on two properties the rest of the repo already
// guarantees. First, every point result is a pure function of its canonical
// key — configs carry explicit seeds, fault streams are counter-based, and
// evaluation is bit-identical at any batch size or worker count — so it does
// not matter which process computes a point, or whether retry computes it
// twice. Second, work assignment is deterministic: units are the sorted
// CachePoints list, shards own fixed round-robin slices of it, and the
// coordinator hands out leases in sorted-key order, never arrival order.
// Workers verify each unit's key by recomputing it from the decoded payload,
// so codec or version drift between processes is an error, not a silent
// wrong answer.
package dist

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"ctjam/internal/env"
	"ctjam/internal/experiments"
	"ctjam/internal/fault"
	"ctjam/internal/iot"
	"ctjam/internal/jammer"
	"ctjam/internal/metrics"
)

// WireConfig is the JSON form of env.Config. Fault injectors travel as their
// internal/fault flag-grammar spec; the sweep points distributed today never
// carry any, but the field keeps the format ready for configs that do.
type WireConfig struct {
	Channels   int       `json:"channels"`
	SweepWidth int       `json:"sweep_width"`
	TxPowers   []float64 `json:"tx_powers"`
	JamPowers  []float64 `json:"jam_powers"`
	JammerMode int       `json:"jammer_mode"`
	Jammer     string    `json:"jammer,omitempty"`
	LossHop    float64   `json:"loss_hop"`
	LossJam    float64   `json:"loss_jam"`
	Seed       int64     `json:"seed"`
	FaultSpec  string    `json:"fault_spec,omitempty"`
}

// wireConfig converts an env.Config for the wire. Configs carrying live
// fault injectors are rejected: injectors have no spec back-formatter, and
// silently dropping them would change the point's meaning.
func wireConfig(cfg env.Config) (WireConfig, error) {
	if cfg.Faults != nil {
		return WireConfig{}, fmt.Errorf("dist: config with fault injector %q is not distributable", cfg.Faults.Name())
	}
	return WireConfig{
		Channels:   cfg.Channels,
		SweepWidth: cfg.SweepWidth,
		TxPowers:   cfg.TxPowers,
		JamPowers:  cfg.JamPowers,
		JammerMode: int(cfg.JammerMode),
		Jammer:     cfg.Jammer,
		LossHop:    cfg.LossHop,
		LossJam:    cfg.LossJam,
		Seed:       cfg.Seed,
	}, nil
}

// envConfig rebuilds the env.Config a WireConfig describes.
func (c WireConfig) envConfig() (env.Config, error) {
	cfg := env.Config{
		Channels:   c.Channels,
		SweepWidth: c.SweepWidth,
		TxPowers:   c.TxPowers,
		JamPowers:  c.JamPowers,
		JammerMode: jammer.PowerMode(c.JammerMode),
		Jammer:     c.Jammer,
		LossHop:    c.LossHop,
		LossJam:    c.LossJam,
		Seed:       c.Seed,
	}
	if c.FaultSpec != "" {
		inj, err := fault.Parse(c.FaultSpec, c.Seed)
		if err != nil {
			return env.Config{}, err
		}
		cfg.Faults = inj
	}
	if err := cfg.Validate(); err != nil {
		return env.Config{}, fmt.Errorf("dist: wire config invalid: %w", err)
	}
	return cfg, nil
}

// WireOptions pins the experiments.Options fields that feed a point's cache
// key. Worker-local fields (parallelism, cache, context) deliberately do not
// travel: they cannot change results.
type WireOptions struct {
	Engine     int   `json:"engine"`
	Fast32     bool  `json:"fast32,omitempty"`
	TrainSlots int   `json:"train_slots"`
	Seed       int64 `json:"seed"`
	Slots      int   `json:"slots"`
}

// wireOptions extracts the wire-relevant fields of o.
func wireOptions(o experiments.Options) WireOptions {
	return WireOptions{
		Engine:     int(o.Engine),
		Fast32:     o.Fast32,
		TrainSlots: o.TrainSlots,
		Seed:       o.Seed,
		Slots:      o.Slots,
	}
}

// options rebuilds worker-side experiments.Options around the wire fields.
func (w WireOptions) options(ctx context.Context, cache *experiments.Cache, workers int) experiments.Options {
	return experiments.Options{
		Engine:     experiments.Engine(w.Engine),
		Fast32:     w.Fast32,
		TrainSlots: w.TrainSlots,
		Seed:       w.Seed,
		Slots:      w.Slots,
		Workers:    workers,
		Cache:      cache,
		Context:    ctx,
	}
}

// WireFieldSpec is the JSON form of experiments.FieldSpec: one whole
// field-simulator run (possibly a multi-cluster engine replica) as a
// distributable unit. Durations travel as nanoseconds.
type WireFieldSpec struct {
	Scheme       string `json:"scheme"`
	Jammer       bool   `json:"jammer"`
	Clusters     int    `json:"clusters"`
	Nodes        int    `json:"nodes"`
	SlotDuration int64  `json:"slot_duration_ns"`
	JammerSlot   int64  `json:"jammer_slot_ns"`
	Seed         int64  `json:"seed"`
	Slots        int    `json:"slots"`
}

// wireFieldSpec converts an experiments.FieldSpec for the wire.
func wireFieldSpec(s experiments.FieldSpec) WireFieldSpec {
	return WireFieldSpec{
		Scheme:       s.Scheme,
		Jammer:       s.Jammer,
		Clusters:     s.Clusters,
		Nodes:        s.Nodes,
		SlotDuration: int64(s.SlotDuration),
		JammerSlot:   int64(s.JammerSlot),
		Seed:         s.Seed,
		Slots:        s.Slots,
	}
}

// fieldSpec rebuilds the experiments.FieldSpec a WireFieldSpec describes.
func (s WireFieldSpec) fieldSpec() (experiments.FieldSpec, error) {
	spec := experiments.FieldSpec{
		Scheme:       s.Scheme,
		Jammer:       s.Jammer,
		Clusters:     s.Clusters,
		Nodes:        s.Nodes,
		SlotDuration: time.Duration(s.SlotDuration),
		JammerSlot:   time.Duration(s.JammerSlot),
		Seed:         s.Seed,
		Slots:        s.Slots,
	}
	if err := spec.Validate(); err != nil {
		return experiments.FieldSpec{}, fmt.Errorf("dist: wire field spec invalid: %w", err)
	}
	return spec, nil
}

// WireRunStats is the JSON form of iot.RunStats, the result payload of a
// field unit. MeanOverhead travels as nanoseconds.
type WireRunStats struct {
	Slots              int              `json:"slots"`
	Attempted          int              `json:"attempted"`
	Delivered          int              `json:"delivered"`
	FrameLosses        int              `json:"frame_losses,omitempty"`
	GoodputPktsPerSlot float64          `json:"goodput_pkts_per_slot"`
	MeanUtilization    float64          `json:"mean_utilization"`
	MeanOverhead       int64            `json:"mean_overhead_ns"`
	Counters           metrics.Counters `json:"counters"`
}

// wireRunStats converts an iot.RunStats for the wire.
func wireRunStats(r iot.RunStats) WireRunStats {
	return WireRunStats{
		Slots:              r.Slots,
		Attempted:          r.Attempted,
		Delivered:          r.Delivered,
		FrameLosses:        r.FrameLosses,
		GoodputPktsPerSlot: r.GoodputPktsPerSlot,
		MeanUtilization:    r.MeanUtilization,
		MeanOverhead:       int64(r.MeanOverhead),
		Counters:           r.Counters,
	}
}

// runStats rebuilds the iot.RunStats a WireRunStats describes.
func (r WireRunStats) runStats() iot.RunStats {
	return iot.RunStats{
		Slots:              r.Slots,
		Attempted:          r.Attempted,
		Delivered:          r.Delivered,
		FrameLosses:        r.FrameLosses,
		GoodputPktsPerSlot: r.GoodputPktsPerSlot,
		MeanUtilization:    r.MeanUtilization,
		MeanOverhead:       time.Duration(r.MeanOverhead),
		Counters:           r.Counters,
	}
}

// Unit is one distributable work item: a sweep point (Config set), a whole
// field-simulator replica run (Field set), or a scheme training (Config set,
// Train true), plus the options pinning its cache key and the coordinator's
// canonical key for it. Exactly one of Config/Field is meaningful; field
// units are recognizable by Field != nil, train units by Train.
type Unit struct {
	Key    string         `json:"key"`
	Opts   WireOptions    `json:"opts"`
	Config WireConfig     `json:"config,omitempty"`
	Field  *WireFieldSpec `json:"field,omitempty"`

	// Defense is the point's defense scheme tag (experiments.Point.Defense):
	// "" for the engine-selected RL FH, or a deterministic baseline tag.
	// Baseline points carry no SchemeKey — their schemes are rebuilt from the
	// config alone on whatever worker evaluates them.
	Defense string `json:"defense,omitempty"`

	// Train marks a scheme-training unit: the worker trains/solves the
	// scheme the seed-zeroed Config selects under Opts and uploads its CTSC
	// checkpoint via POST /v1/scheme instead of evaluating anything.
	Train bool `json:"train,omitempty"`
	// SchemeKey, on point units, is the canonical key of the scheme the
	// point evaluates — the Key of its train unit. Point units are only
	// dispatched once that key is resolved in the coordinator scheme store.
	SchemeKey string `json:"scheme_key,omitempty"`
	// Scheme inlines the resolved checkpoint into a dispatched point unit
	// when it is small (see CoordinatorOptions.InlineSchemeLimit), sparing
	// the worker a fetch round-trip; SchemeFP is its fingerprint, set on
	// every dispatched point whose scheme is resolved so the worker can
	// verify whatever bytes it installs.
	Scheme   []byte `json:"scheme,omitempty"`
	SchemeFP string `json:"scheme_fp,omitempty"`
}

// UnitResult reports one evaluated unit: its Counters (sweep points) or its
// RunStats (field units), or the error that kept a worker from producing
// them.
type UnitResult struct {
	Key      string           `json:"key"`
	Counters metrics.Counters `json:"counters"`
	Field    *WireRunStats    `json:"field,omitempty"`
	Err      string           `json:"err,omitempty"`
}

// UnitsFor enumerates the distributable work units of the given experiment
// ids under o — the cache-backed sweep points plus the field-simulator
// replica runs — sorted by key: the shared, deterministic work list every
// coordinator and shard derives identically from identical inputs. The
// "pt|" / "fd|" key prefixes keep the two unit kinds from ever colliding.
func UnitsFor(o experiments.Options, ids []string) ([]Unit, error) {
	specs, err := experiments.CachePoints(o, ids)
	if err != nil {
		return nil, err
	}
	fields, err := experiments.CacheFieldSpecs(o, ids)
	if err != nil {
		return nil, err
	}
	wo := wireOptions(o)
	units := make([]Unit, 0, len(specs)+len(fields))
	for _, sp := range specs {
		wc, err := wireConfig(sp.Config)
		if err != nil {
			return nil, err
		}
		u := Unit{
			Key:     sp.Key,
			Opts:    wo,
			Config:  wc,
			Defense: sp.Defense,
		}
		if sp.Defense == experiments.DefenseRL {
			u.SchemeKey = experiments.SchemeKey(o, sp.Config)
		}
		units = append(units, u)
	}
	for _, fs := range fields {
		ws := wireFieldSpec(fs.Spec)
		units = append(units, Unit{Key: fs.Key, Opts: wo, Field: &ws})
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Key < units[j].Key })
	return units, nil
}

// TrainUnitsFor enumerates one train unit per unique scheme key of the given
// experiment ids under o, sorted by key. The unit's Key is the scheme cache
// key itself ("sc|..."), and its Config is the seed-zeroed canonical form:
// scheme construction never reads the evaluation seed, so every point config
// sharing a scheme reduces to the same wire payload and every process derives
// an identical train list. Coordinators append these to the work list so each
// unique scheme is trained exactly once fleet-wide.
func TrainUnitsFor(o experiments.Options, ids []string) ([]Unit, error) {
	specs, err := experiments.CachePoints(o, ids)
	if err != nil {
		return nil, err
	}
	wo := wireOptions(o)
	seen := make(map[string]bool, len(specs))
	var units []Unit
	for _, sp := range specs {
		if sp.Defense != experiments.DefenseRL {
			// Baseline schemes are deterministic functions of the config;
			// nothing to train fleet-wide.
			continue
		}
		key := experiments.SchemeKey(o, sp.Config)
		if seen[key] {
			continue
		}
		seen[key] = true
		cfg := sp.Config
		cfg.Seed = 0
		wc, err := wireConfig(cfg)
		if err != nil {
			return nil, err
		}
		units = append(units, Unit{Key: key, Opts: wo, Config: wc, Train: true})
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Key < units[j].Key })
	return units, nil
}

// evaluate computes every unit's result against the local cache, grouping
// units that share WireOptions into one EvaluatePoints / EvaluateFieldSpecs
// call so sibling points of a shared scheme evaluate in lockstep through the
// batched inference engine (and field runs fan out together). Each unit's
// key is recomputed from the decoded payload first; a mismatch (or any
// evaluation error) is reported per unit rather than failing the batch
// silently. The returned slice is index-aligned with units.
func evaluate(ctx context.Context, units []Unit, cache *experiments.Cache, workers int) []UnitResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]UnitResult, len(units))
	for i, u := range units {
		out[i] = UnitResult{Key: u.Key}
	}

	// Group by wire options, preserving order inside a group.
	var order []WireOptions
	groups := make(map[WireOptions][]int)
	for i, u := range units {
		if _, ok := groups[u.Opts]; !ok {
			order = append(order, u.Opts)
		}
		groups[u.Opts] = append(groups[u.Opts], i)
	}

	for _, wo := range order {
		idxs := groups[wo]
		o := wo.options(ctx, cache, workers)
		pts := make([]experiments.Point, 0, len(idxs))
		specs := make([]experiments.FieldSpec, 0, len(idxs))
		okPts := idxs[:0:0]
		okFds := idxs[:0:0]
		for _, i := range idxs {
			if f := units[i].Field; f != nil {
				spec, err := f.fieldSpec()
				if err != nil {
					out[i].Err = err.Error()
					continue
				}
				if got := experiments.FieldKey(o, spec); got != units[i].Key {
					out[i].Err = fmt.Sprintf("dist: key mismatch: coordinator sent %q, worker derives %q", units[i].Key, got)
					continue
				}
				okFds = append(okFds, i)
				specs = append(specs, spec)
				continue
			}
			cfg, err := units[i].Config.envConfig()
			if err != nil {
				out[i].Err = err.Error()
				continue
			}
			p := experiments.Point{Config: cfg, Defense: units[i].Defense}
			if got := experiments.PointKey(o, p); got != units[i].Key {
				out[i].Err = fmt.Sprintf("dist: key mismatch: coordinator sent %q, worker derives %q", units[i].Key, got)
				continue
			}
			okPts = append(okPts, i)
			pts = append(pts, p)
		}
		if len(okPts) > 0 {
			counters, err := experiments.EvaluatePoints(o, pts)
			if err != nil {
				for _, i := range okPts {
					out[i].Err = err.Error()
				}
			} else {
				for j, i := range okPts {
					out[i].Counters = counters[j]
				}
			}
		}
		if len(okFds) > 0 {
			runs, err := experiments.EvaluateFieldSpecs(o, specs)
			if err != nil {
				for _, i := range okFds {
					out[i].Err = err.Error()
				}
			} else {
				for j, i := range okFds {
					wr := wireRunStats(runs[j])
					out[i].Field = &wr
				}
			}
		}
	}
	return out
}
