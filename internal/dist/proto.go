// Package dist shards the cache-backed sweep points of the experiment
// harness across processes: a coordinator enumerates the unique points of a
// set of experiment ids (experiments.CachePoints), serves them as work units
// over a small HTTP/JSON protocol, and merges the returned Counters back
// into an experiments.Cache, after which the experiments themselves run
// entirely from cache — producing output bit-identical to a single-process
// run. A static, networkless mode (RunShard / MergeSpools) partitions the
// same sorted unit list round-robin across shard indices and exchanges
// results through atomically written spool files instead of sockets.
//
// Correctness rests on two properties the rest of the repo already
// guarantees. First, every point result is a pure function of its canonical
// key — configs carry explicit seeds, fault streams are counter-based, and
// evaluation is bit-identical at any batch size or worker count — so it does
// not matter which process computes a point, or whether retry computes it
// twice. Second, work assignment is deterministic: units are the sorted
// CachePoints list, shards own fixed round-robin slices of it, and the
// coordinator hands out leases in sorted-key order, never arrival order.
// Workers verify each unit's key by recomputing it from the decoded payload,
// so codec or version drift between processes is an error, not a silent
// wrong answer.
package dist

import (
	"context"
	"fmt"
	"runtime"

	"ctjam/internal/env"
	"ctjam/internal/experiments"
	"ctjam/internal/fault"
	"ctjam/internal/jammer"
	"ctjam/internal/metrics"
)

// WireConfig is the JSON form of env.Config. Fault injectors travel as their
// internal/fault flag-grammar spec; the sweep points distributed today never
// carry any, but the field keeps the format ready for configs that do.
type WireConfig struct {
	Channels   int       `json:"channels"`
	SweepWidth int       `json:"sweep_width"`
	TxPowers   []float64 `json:"tx_powers"`
	JamPowers  []float64 `json:"jam_powers"`
	JammerMode int       `json:"jammer_mode"`
	LossHop    float64   `json:"loss_hop"`
	LossJam    float64   `json:"loss_jam"`
	Seed       int64     `json:"seed"`
	FaultSpec  string    `json:"fault_spec,omitempty"`
}

// wireConfig converts an env.Config for the wire. Configs carrying live
// fault injectors are rejected: injectors have no spec back-formatter, and
// silently dropping them would change the point's meaning.
func wireConfig(cfg env.Config) (WireConfig, error) {
	if cfg.Faults != nil {
		return WireConfig{}, fmt.Errorf("dist: config with fault injector %q is not distributable", cfg.Faults.Name())
	}
	return WireConfig{
		Channels:   cfg.Channels,
		SweepWidth: cfg.SweepWidth,
		TxPowers:   cfg.TxPowers,
		JamPowers:  cfg.JamPowers,
		JammerMode: int(cfg.JammerMode),
		LossHop:    cfg.LossHop,
		LossJam:    cfg.LossJam,
		Seed:       cfg.Seed,
	}, nil
}

// envConfig rebuilds the env.Config a WireConfig describes.
func (c WireConfig) envConfig() (env.Config, error) {
	cfg := env.Config{
		Channels:   c.Channels,
		SweepWidth: c.SweepWidth,
		TxPowers:   c.TxPowers,
		JamPowers:  c.JamPowers,
		JammerMode: jammer.PowerMode(c.JammerMode),
		LossHop:    c.LossHop,
		LossJam:    c.LossJam,
		Seed:       c.Seed,
	}
	if c.FaultSpec != "" {
		inj, err := fault.Parse(c.FaultSpec, c.Seed)
		if err != nil {
			return env.Config{}, err
		}
		cfg.Faults = inj
	}
	if err := cfg.Validate(); err != nil {
		return env.Config{}, fmt.Errorf("dist: wire config invalid: %w", err)
	}
	return cfg, nil
}

// WireOptions pins the experiments.Options fields that feed a point's cache
// key. Worker-local fields (parallelism, cache, context) deliberately do not
// travel: they cannot change results.
type WireOptions struct {
	Engine     int   `json:"engine"`
	Fast32     bool  `json:"fast32,omitempty"`
	TrainSlots int   `json:"train_slots"`
	Seed       int64 `json:"seed"`
	Slots      int   `json:"slots"`
}

// wireOptions extracts the wire-relevant fields of o.
func wireOptions(o experiments.Options) WireOptions {
	return WireOptions{
		Engine:     int(o.Engine),
		Fast32:     o.Fast32,
		TrainSlots: o.TrainSlots,
		Seed:       o.Seed,
		Slots:      o.Slots,
	}
}

// options rebuilds worker-side experiments.Options around the wire fields.
func (w WireOptions) options(ctx context.Context, cache *experiments.Cache, workers int) experiments.Options {
	return experiments.Options{
		Engine:     experiments.Engine(w.Engine),
		Fast32:     w.Fast32,
		TrainSlots: w.TrainSlots,
		Seed:       w.Seed,
		Slots:      w.Slots,
		Workers:    workers,
		Cache:      cache,
		Context:    ctx,
	}
}

// Unit is one distributable sweep point: the (options, config) pair that
// determines its Counters, plus the coordinator's canonical key for it.
type Unit struct {
	Key    string      `json:"key"`
	Opts   WireOptions `json:"opts"`
	Config WireConfig  `json:"config"`
}

// UnitResult reports one evaluated unit: its Counters, or the error that
// kept a worker from producing them.
type UnitResult struct {
	Key      string           `json:"key"`
	Counters metrics.Counters `json:"counters"`
	Err      string           `json:"err,omitempty"`
}

// UnitsFor enumerates the distributable work units of the given experiment
// ids under o, sorted by key — the shared, deterministic work list every
// coordinator and shard derives identically from identical inputs.
func UnitsFor(o experiments.Options, ids []string) ([]Unit, error) {
	specs, err := experiments.CachePoints(o, ids)
	if err != nil {
		return nil, err
	}
	wo := wireOptions(o)
	units := make([]Unit, len(specs))
	for i, sp := range specs {
		wc, err := wireConfig(sp.Config)
		if err != nil {
			return nil, err
		}
		units[i] = Unit{Key: sp.Key, Opts: wo, Config: wc}
	}
	return units, nil
}

// evaluate computes every unit's Counters against the local cache, grouping
// units that share WireOptions into one EvaluatePoints call so sibling
// points of a shared scheme evaluate in lockstep through the batched
// inference engine. Each unit's key is recomputed from the decoded payload
// first; a mismatch (or any evaluation error) is reported per unit rather
// than failing the batch silently. The returned slice is index-aligned with
// units.
func evaluate(ctx context.Context, units []Unit, cache *experiments.Cache, workers int) []UnitResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]UnitResult, len(units))
	for i, u := range units {
		out[i] = UnitResult{Key: u.Key}
	}

	// Group by wire options, preserving order inside a group.
	var order []WireOptions
	groups := make(map[WireOptions][]int)
	for i, u := range units {
		if _, ok := groups[u.Opts]; !ok {
			order = append(order, u.Opts)
		}
		groups[u.Opts] = append(groups[u.Opts], i)
	}

	for _, wo := range order {
		idxs := groups[wo]
		o := wo.options(ctx, cache, workers)
		cfgs := make([]env.Config, 0, len(idxs))
		ok := idxs[:0:0]
		for _, i := range idxs {
			cfg, err := units[i].Config.envConfig()
			if err != nil {
				out[i].Err = err.Error()
				continue
			}
			if got := experiments.PointKey(o, cfg); got != units[i].Key {
				out[i].Err = fmt.Sprintf("dist: key mismatch: coordinator sent %q, worker derives %q", units[i].Key, got)
				continue
			}
			ok = append(ok, i)
			cfgs = append(cfgs, cfg)
		}
		if len(ok) == 0 {
			continue
		}
		counters, err := experiments.EvaluatePoints(o, cfgs)
		if err != nil {
			for _, i := range ok {
				out[i].Err = err.Error()
			}
			continue
		}
		for j, i := range ok {
			out[i].Counters = counters[j]
		}
	}
	return out
}
