package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"ctjam/internal/experiments"
)

// CoordinatorOptions tune the failure model of the work-unit protocol.
type CoordinatorOptions struct {
	// Lease is how long a polled unit stays assigned before a silent
	// worker is presumed dead and the unit becomes assignable again
	// (default 2 minutes — generous against a DQN training point).
	Lease time.Duration
	// MaxAttempts bounds assignments per unit, counting the first; once a
	// unit has burned this many leases or explicit failures the run fails
	// instead of retrying forever (default 3).
	MaxAttempts int
	// Batch is the most units handed to one poll (default 8).
	Batch int
	// Linger keeps ListenAndWait serving Done responses this long after the
	// run completes, so workers mid-poll see a clean end instead of a
	// connection error (default 2s).
	Linger time.Duration
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Lease <= 0 {
		o.Lease = 2 * time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Batch <= 0 {
		o.Batch = 8
	}
	if o.Linger <= 0 {
		o.Linger = 2 * time.Second
	}
	return o
}

// unitState tracks one unit through the lease protocol. result holds the
// completed payload — Counters for sweep points, Field for field replicas.
type unitState struct {
	unit       Unit
	done       bool
	leaseUntil time.Time
	attempts   int
	lastErr    string
	result     UnitResult
}

// Coordinator owns the work-unit ledger of one distributed run: it hands out
// leases in sorted-key order, re-leases units whose workers went silent,
// fails fast once a unit exhausts its attempts, and collects the Counters
// that Wait-then-ImportInto feeds back into a sweep-point cache. Safe for
// concurrent use by any number of HTTP workers.
type Coordinator struct {
	opts CoordinatorOptions

	mu        sync.Mutex
	order     []string // sorted unit keys: the deterministic assignment order
	states    map[string]*unitState
	remaining int
	err       error
	done      chan struct{}
}

// NewCoordinator builds the coordinator for the cache-backed points of the
// given experiment ids under o. Ids without cache-backed points contribute
// no units; a run whose ids produce none completes immediately.
func NewCoordinator(o experiments.Options, ids []string, copts CoordinatorOptions) (*Coordinator, error) {
	units, err := UnitsFor(o, ids)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:      copts.withDefaults(),
		states:    make(map[string]*unitState, len(units)),
		remaining: len(units),
		done:      make(chan struct{}),
	}
	for _, u := range units {
		c.order = append(c.order, u.Key)
		c.states[u.Key] = &unitState{unit: u}
	}
	if c.remaining == 0 {
		close(c.done)
	}
	return c, nil
}

// fail records the first fatal error and releases every waiter. Must be
// called with c.mu held.
func (c *Coordinator) fail(err error) {
	if c.err == nil {
		c.err = err
		close(c.done)
	}
}

// finished reports whether the run is over (all units done, or failed).
// Must be called with c.mu held.
func (c *Coordinator) finished() bool {
	return c.remaining == 0 || c.err != nil
}

// pollRequest asks for up to Max units on behalf of a worker.
type pollRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

// pollResponse carries assigned units, or a backoff hint, or the end of the
// run (workers exit on Done regardless of success — Wait reports failures).
type pollResponse struct {
	Units   []Unit `json:"units,omitempty"`
	Done    bool   `json:"done,omitempty"`
	RetryMS int    `json:"retry_ms,omitempty"`
}

// resultRequest reports evaluated units for a worker.
type resultRequest struct {
	Worker  string       `json:"worker"`
	Results []UnitResult `json:"results"`
}

type resultResponse struct {
	OK   bool `json:"ok"`
	Done bool `json:"done,omitempty"`
}

// assign leases up to max assignable units in sorted-key order.
func (c *Coordinator) assign(max int) pollResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished() {
		return pollResponse{Done: true}
	}
	if max <= 0 || max > c.opts.Batch {
		max = c.opts.Batch
	}
	now := time.Now()
	var units []Unit
	for _, k := range c.order {
		st := c.states[k]
		if st.done || st.leaseUntil.After(now) {
			continue
		}
		if st.attempts >= c.opts.MaxAttempts {
			// A unit out of attempts with no result left to wait for: the
			// run cannot complete.
			c.fail(fmt.Errorf("dist: unit %s failed after %d attempts (last error: %s)",
				k, st.attempts, st.lastErr))
			return pollResponse{Done: true}
		}
		st.attempts++
		st.leaseUntil = now.Add(c.opts.Lease)
		units = append(units, st.unit)
		if len(units) == max {
			break
		}
	}
	if len(units) == 0 {
		// Everything outstanding is leased elsewhere; have the worker check
		// back soon (polls are cheap, and the run may finish any moment).
		retry := c.opts.Lease / 4
		if retry > time.Second {
			retry = time.Second
		}
		if retry < 50*time.Millisecond {
			retry = 50 * time.Millisecond
		}
		return pollResponse{RetryMS: int(retry / time.Millisecond)}
	}
	return pollResponse{Units: units}
}

// record ingests one worker's results.
func (c *Coordinator) record(results []UnitResult) resultResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range results {
		st, ok := c.states[r.Key]
		if !ok || st.done {
			// Unknown key, or a duplicate from a retried lease: results are
			// pure functions of the key, so the first one stands.
			continue
		}
		if r.Err != "" {
			st.lastErr = r.Err
			st.leaseUntil = time.Time{} // release for immediate retry
			if st.attempts >= c.opts.MaxAttempts {
				c.fail(fmt.Errorf("dist: unit %s failed after %d attempts: %s", r.Key, st.attempts, r.Err))
			}
			continue
		}
		if st.unit.Field != nil && r.Field == nil {
			// A field unit must come back with field stats; treat the
			// malformed report like a failed attempt.
			st.lastErr = "dist: field unit result missing field stats"
			st.leaseUntil = time.Time{}
			if st.attempts >= c.opts.MaxAttempts {
				c.fail(fmt.Errorf("dist: unit %s failed after %d attempts: %s", r.Key, st.attempts, st.lastErr))
			}
			continue
		}
		st.done = true
		st.result = r
		c.remaining--
	}
	if c.remaining == 0 && c.err == nil {
		select {
		case <-c.done:
		default:
			close(c.done)
		}
	}
	return resultResponse{OK: true, Done: c.finished()}
}

// Status is the /v1/status snapshot.
type Status struct {
	Total     int    `json:"total"`
	Done      int    `json:"done"`
	Leased    int    `json:"leased"`
	Attempts  int    `json:"attempts"`
	Failed    bool   `json:"failed"`
	LastError string `json:"last_error,omitempty"`
}

// Snapshot reports run progress.
func (c *Coordinator) Snapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{Total: len(c.order), Failed: c.err != nil}
	if c.err != nil {
		s.LastError = c.err.Error()
	}
	now := time.Now()
	for _, st := range c.states {
		if st.done {
			s.Done++
		} else if st.leaseUntil.After(now) {
			s.Leased++
		}
		s.Attempts += st.attempts
	}
	return s
}

// Handler serves the coordinator protocol: POST /v1/poll, POST /v1/result,
// GET /v1/status.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/poll", func(w http.ResponseWriter, r *http.Request) {
		var req pollRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.assign(req.Max))
	})
	mux.HandleFunc("/v1/result", func(w http.ResponseWriter, r *http.Request) {
		var req resultRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.record(req.Results))
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Snapshot())
	})
	return mux
}

// Wait blocks until every unit is done, the run fails, or ctx ends.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.err
	case <-ctx.Done():
		return fmt.Errorf("dist: coordinator wait: %w", ctx.Err())
	}
}

// ImportInto feeds every completed unit's result into cache under its
// canonical key — Counters into the point cache, field stats into the
// field-run cache — after which experiment runs sharing that cache read the
// distributed results instead of recomputing them. Call after Wait succeeds.
func (c *Coordinator) ImportInto(cache *experiments.Cache) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, k := range c.order {
		st := c.states[k]
		if !st.done {
			continue
		}
		if st.result.Field != nil {
			cache.ImportFieldRun(k, st.result.Field.runStats())
		} else {
			cache.ImportPoint(k, st.result.Counters)
		}
		n++
	}
	return n
}

// ListenAndWait serves the protocol on addr until the run completes (or ctx
// ends), then tears the listener down. logf, when non-nil, receives one line
// with the bound address — pass log.Printf — so workers can be pointed at a
// ":0" listener.
func (c *Coordinator) ListenAndWait(ctx context.Context, addr string, logf func(format string, args ...any)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	if logf != nil {
		logf("dist: coordinating %d units on %s", len(c.order), ln.Addr())
	}
	srv := &http.Server{Handler: c.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()
	err = c.Wait(ctx)
	if err == nil {
		// Serve Done to straggler polls before tearing the listener down.
		t := time.NewTimer(c.opts.Linger)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
	return err
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, `{"error":"POST required"}`, http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
