package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"ctjam/internal/core"
	"ctjam/internal/experiments"
)

// CoordinatorOptions tune the failure model of the work-unit protocol.
type CoordinatorOptions struct {
	// Lease is how long a polled unit stays assigned before a silent
	// worker is presumed dead and the unit becomes assignable again
	// (default 2 minutes — generous against a DQN training point).
	Lease time.Duration
	// MaxAttempts bounds assignments per unit, counting the first; once a
	// unit has burned this many leases or explicit failures the run fails
	// instead of retrying forever (default 3).
	MaxAttempts int
	// Batch is the most units handed to one poll (default 8).
	Batch int
	// Linger keeps ListenAndWait serving Done responses this long after the
	// run completes, so workers mid-poll see a clean end instead of a
	// connection error (default 2s).
	Linger time.Duration
	// NoSchemeShip disables fleet-wide scheme reuse: no train units are
	// enumerated, no scheme store is kept, and every worker trains the
	// schemes its points need locally (the pre-reuse behavior).
	NoSchemeShip bool
	// InlineSchemeLimit is the largest checkpoint, in bytes, inlined into
	// dispatched point units (sparing the worker a GET /v1/scheme fetch).
	// 0 selects the 256 KiB default; negative disables inlining entirely.
	InlineSchemeLimit int
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Lease <= 0 {
		o.Lease = 2 * time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Batch <= 0 {
		o.Batch = 8
	}
	if o.Linger <= 0 {
		o.Linger = 2 * time.Second
	}
	if o.InlineSchemeLimit == 0 {
		o.InlineSchemeLimit = 256 << 10
	}
	return o
}

// unitState tracks one unit through the lease protocol. result holds the
// completed payload — Counters for sweep points, Field for field replicas.
type unitState struct {
	unit       Unit
	done       bool
	leaseUntil time.Time
	attempts   int
	lastErr    string
	result     UnitResult
}

// Coordinator owns the work-unit ledger of one distributed run: it hands out
// leases in sorted-key order, re-leases units whose workers went silent,
// fails fast once a unit exhausts its attempts, and collects the Counters
// that Wait-then-ImportInto feeds back into a sweep-point cache. It also
// holds the content-addressed scheme store of fleet-wide scheme reuse: each
// unique scheme key is a train unit, its uploaded checkpoint gates the point
// units evaluating that scheme, and claiming workers fetch (or receive
// inline) the stored bytes instead of retraining. Safe for concurrent use by
// any number of HTTP workers.
type Coordinator struct {
	opts CoordinatorOptions

	mu        sync.Mutex
	order     []string // sorted unit keys: the deterministic assignment order
	states    map[string]*unitState
	remaining int
	err       error
	done      chan struct{}

	// trainKeys marks the scheme keys that have a train unit; point units
	// whose SchemeKey is in here are dispatched only once the key resolves
	// in schemes. schemes/schemeFP hold the uploaded checkpoints by key.
	trainKeys map[string]bool
	schemes   map[string][]byte
	schemeFP  map[string]string
}

// NewCoordinator builds the coordinator for the cache-backed points of the
// given experiment ids under o, plus (unless NoSchemeShip) one train unit
// per unique scheme key those points evaluate. Ids without cache-backed
// points contribute no units; a run whose ids produce none completes
// immediately.
func NewCoordinator(o experiments.Options, ids []string, copts CoordinatorOptions) (*Coordinator, error) {
	units, err := UnitsFor(o, ids)
	if err != nil {
		return nil, err
	}
	copts = copts.withDefaults()
	if !copts.NoSchemeShip {
		trains, err := TrainUnitsFor(o, ids)
		if err != nil {
			return nil, err
		}
		units = append(units, trains...)
	}
	c := &Coordinator{
		opts:      copts,
		states:    make(map[string]*unitState, len(units)),
		remaining: len(units),
		done:      make(chan struct{}),
		trainKeys: make(map[string]bool),
		schemes:   make(map[string][]byte),
		schemeFP:  make(map[string]string),
	}
	for _, u := range units {
		c.order = append(c.order, u.Key)
		c.states[u.Key] = &unitState{unit: u}
		if u.Train {
			c.trainKeys[u.Key] = true
		}
	}
	sort.Strings(c.order)
	if c.remaining == 0 {
		close(c.done)
	}
	return c, nil
}

// fail records the first fatal error and releases every waiter. Must be
// called with c.mu held.
func (c *Coordinator) fail(err error) {
	if c.err == nil {
		c.err = err
		close(c.done)
	}
}

// finished reports whether the run is over (all units done, or failed).
// Must be called with c.mu held.
func (c *Coordinator) finished() bool {
	return c.remaining == 0 || c.err != nil
}

// pollRequest asks for up to Max units on behalf of a worker.
type pollRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

// pollResponse carries assigned units, or a backoff hint, or the end of the
// run (workers exit on Done regardless of success — Wait reports failures).
type pollResponse struct {
	Units   []Unit `json:"units,omitempty"`
	Done    bool   `json:"done,omitempty"`
	RetryMS int    `json:"retry_ms,omitempty"`
}

// resultRequest reports evaluated units for a worker.
type resultRequest struct {
	Worker  string       `json:"worker"`
	Results []UnitResult `json:"results"`
}

type resultResponse struct {
	OK   bool `json:"ok"`
	Done bool `json:"done,omitempty"`
}

// rejectResponse is the body of a structured 409: the coordinator refused
// part of an upload because a recomputed key or fingerprint did not match
// what the worker claimed.
type rejectResponse struct {
	Error        string   `json:"error"`
	RejectedKeys []string `json:"rejected_keys,omitempty"`
}

// schemeUploadRequest carries one trained checkpoint to POST /v1/scheme.
type schemeUploadRequest struct {
	Worker      string `json:"worker"`
	Key         string `json:"key"`
	Fingerprint string `json:"fingerprint"`
	Data        []byte `json:"data"`
}

type schemeUploadResponse struct {
	OK   bool `json:"ok"`
	Done bool `json:"done,omitempty"`
}

// assign leases up to max assignable units in sorted-key order.
func (c *Coordinator) assign(max int) pollResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished() {
		return pollResponse{Done: true}
	}
	if max <= 0 || max > c.opts.Batch {
		max = c.opts.Batch
	}
	now := time.Now()
	var units []Unit
	for _, k := range c.order {
		st := c.states[k]
		if st.done || st.leaseUntil.After(now) {
			continue
		}
		// A point whose scheme has a train unit that is not resolved yet is
		// blocked: skipping it (without burning an attempt) keeps the pull
		// protocol deadlock-free — the train unit itself stays assignable,
		// and its own lease/retry machinery bounds how long points can wait.
		sk := st.unit.SchemeKey
		if !st.unit.Train && sk != "" && c.trainKeys[sk] && c.schemes[sk] == nil {
			continue
		}
		if st.attempts >= c.opts.MaxAttempts {
			// A unit out of attempts with no result left to wait for: the
			// run cannot complete.
			c.fail(fmt.Errorf("dist: unit %s failed after %d attempts (last error: %s)",
				k, st.attempts, st.lastErr))
			return pollResponse{Done: true}
		}
		st.attempts++
		st.leaseUntil = now.Add(c.opts.Lease)
		u := st.unit
		if blob := c.schemes[sk]; !u.Train && blob != nil {
			// The scheme is resolved: always ship its fingerprint so the
			// worker can verify installed bytes, and inline small blobs.
			u.SchemeFP = c.schemeFP[sk]
			if len(blob) <= c.opts.InlineSchemeLimit {
				u.Scheme = blob
			}
		}
		units = append(units, u)
		if len(units) == max {
			break
		}
	}
	if len(units) == 0 {
		// Everything outstanding is leased elsewhere; have the worker check
		// back soon (polls are cheap, and the run may finish any moment).
		retry := c.opts.Lease / 4
		if retry > time.Second {
			retry = time.Second
		}
		if retry < 50*time.Millisecond {
			retry = 50 * time.Millisecond
		}
		return pollResponse{RetryMS: int(retry / time.Millisecond)}
	}
	return pollResponse{Units: units}
}

// record ingests one worker's results. Known results are ingested even when
// others in the same report are rejected; the returned rejected list names
// the keys the coordinator refused (unknown keys — a worker claiming work it
// was never handed — and malformed payloads), which the handler surfaces as
// a structured 409.
func (c *Coordinator) record(results []UnitResult) (resultResponse, []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rejected []string
	for _, r := range results {
		st, ok := c.states[r.Key]
		if !ok {
			// Unknown key: the worker claims a unit this run never issued.
			// Trusting it would let a drifted or confused worker inject
			// results, so reject loudly instead of skipping silently.
			rejected = append(rejected, r.Key)
			continue
		}
		if st.done {
			// A duplicate from a retried lease: results are pure functions
			// of the key, so the first one stands.
			continue
		}
		fail := func(msg string) {
			st.lastErr = msg
			st.leaseUntil = time.Time{} // release for immediate retry
			if st.attempts >= c.opts.MaxAttempts {
				c.fail(fmt.Errorf("dist: unit %s failed after %d attempts: %s", r.Key, st.attempts, msg))
			}
		}
		if r.Err != "" {
			fail(r.Err)
			continue
		}
		if st.unit.Train {
			// Train units complete through POST /v1/scheme, never through a
			// bare success result: a worker reporting one has not uploaded
			// the checkpoint the dependent points are waiting for.
			fail("dist: train unit result without scheme upload")
			rejected = append(rejected, r.Key)
			continue
		}
		if st.unit.Field != nil && r.Field == nil {
			// A field unit must come back with field stats; treat the
			// malformed report like a failed attempt.
			fail("dist: field unit result missing field stats")
			continue
		}
		st.done = true
		st.result = r
		c.remaining--
	}
	if c.remaining == 0 && c.err == nil {
		select {
		case <-c.done:
		default:
			close(c.done)
		}
	}
	return resultResponse{OK: true, Done: c.finished()}, rejected
}

// recordScheme ingests one trained checkpoint upload. The coordinator never
// trusts the claimed identity: the fingerprint is recomputed from the bytes
// and the blob must decode as a CTSC checkpoint before anything is stored.
// A non-empty reject reason maps to a structured 409.
func (c *Coordinator) recordScheme(req schemeUploadRequest) (schemeUploadResponse, string) {
	fp := core.SchemeFingerprint(req.Data)
	if fp != req.Fingerprint {
		return schemeUploadResponse{}, fmt.Sprintf(
			"scheme %s: claimed fingerprint %s, bytes hash to %s", req.Key, req.Fingerprint, fp)
	}
	if _, err := core.DecodeScheme(req.Data); err != nil {
		return schemeUploadResponse{}, fmt.Sprintf("scheme %s: %v", req.Key, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.states[req.Key]
	if !ok || !st.unit.Train {
		return schemeUploadResponse{}, fmt.Sprintf("scheme %s: not a train unit of this run", req.Key)
	}
	if st.done {
		if c.schemeFP[req.Key] == fp {
			// Duplicate upload of identical bytes (a retried lease):
			// idempotent success.
			return schemeUploadResponse{OK: true, Done: c.finished()}, ""
		}
		// Training is deterministic, so two honest workers produce identical
		// bytes for one key; a different fingerprint means corruption.
		return schemeUploadResponse{}, fmt.Sprintf(
			"scheme %s: conflicting upload: stored %s, got %s", req.Key, c.schemeFP[req.Key], fp)
	}
	c.schemes[req.Key] = append([]byte(nil), req.Data...)
	c.schemeFP[req.Key] = fp
	st.done = true
	st.result = UnitResult{Key: req.Key}
	c.remaining--
	if c.remaining == 0 && c.err == nil {
		select {
		case <-c.done:
		default:
			close(c.done)
		}
	}
	return schemeUploadResponse{OK: true, Done: c.finished()}, ""
}

// schemeBytes returns the stored checkpoint and fingerprint for a scheme
// key, if resolved.
func (c *Coordinator) schemeBytes(key string) ([]byte, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	blob, ok := c.schemes[key]
	if !ok {
		return nil, "", false
	}
	return blob, c.schemeFP[key], true
}

// UnitProgress is the per-unit-type progress breakdown of a Status: how many
// units of one kind exist, how many are done, currently leased, or have
// burned more than one attempt.
type UnitProgress struct {
	Total   int `json:"total"`
	Done    int `json:"done"`
	Leased  int `json:"leased"`
	Retried int `json:"retried"`
}

func (p *UnitProgress) count(st *unitState, now time.Time) {
	p.Total++
	if st.done {
		p.Done++
	} else if st.leaseUntil.After(now) {
		p.Leased++
	}
	if st.attempts > 1 {
		p.Retried++
	}
}

// Status is the /v1/status snapshot. Total/Done/Leased/Attempts aggregate
// every unit; Train/Point/Field break the same progress down by unit type,
// and SchemesStored/SchemeStoreBytes size the coordinator's checkpoint
// store — see DESIGN.md for the JSON shape.
type Status struct {
	Total     int    `json:"total"`
	Done      int    `json:"done"`
	Leased    int    `json:"leased"`
	Attempts  int    `json:"attempts"`
	Failed    bool   `json:"failed"`
	LastError string `json:"last_error,omitempty"`

	Train UnitProgress `json:"train"`
	Point UnitProgress `json:"point"`
	Field UnitProgress `json:"field"`

	SchemesStored    int   `json:"schemes_stored"`
	SchemeStoreBytes int64 `json:"scheme_store_bytes"`
}

// Snapshot reports run progress.
func (c *Coordinator) Snapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{Total: len(c.order), Failed: c.err != nil}
	if c.err != nil {
		s.LastError = c.err.Error()
	}
	now := time.Now()
	for _, st := range c.states {
		if st.done {
			s.Done++
		} else if st.leaseUntil.After(now) {
			s.Leased++
		}
		s.Attempts += st.attempts
		switch {
		case st.unit.Train:
			s.Train.count(st, now)
		case st.unit.Field != nil:
			s.Field.count(st, now)
		default:
			s.Point.count(st, now)
		}
	}
	s.SchemesStored = len(c.schemes)
	for _, blob := range c.schemes {
		s.SchemeStoreBytes += int64(len(blob))
	}
	return s
}

// Handler serves the coordinator protocol: POST /v1/poll, POST /v1/result,
// POST /v1/scheme, GET /v1/scheme/{key}, GET /v1/status.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/poll", func(w http.ResponseWriter, r *http.Request) {
		var req pollRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.assign(req.Max))
	})
	mux.HandleFunc("/v1/result", func(w http.ResponseWriter, r *http.Request) {
		var req resultRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, rejected := c.record(req.Results)
		if len(rejected) > 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(rejectResponse{
				Error:        "dist: results rejected: recomputed identity does not match claimed keys",
				RejectedKeys: rejected,
			})
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/scheme", func(w http.ResponseWriter, r *http.Request) {
		var req schemeUploadRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, reject := c.recordScheme(req)
		if reject != "" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(rejectResponse{Error: "dist: " + reject, RejectedKeys: []string{req.Key}})
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/scheme/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, `{"error":"GET required"}`, http.StatusMethodNotAllowed)
			return
		}
		// Scheme keys contain '|' and '=' but the worker path-escapes them;
		// unescape from the raw path so nothing in the key is mangled.
		key, err := url.PathUnescape(strings.TrimPrefix(r.URL.EscapedPath(), "/v1/scheme/"))
		if err != nil {
			http.Error(w, `{"error":"bad scheme key"}`, http.StatusBadRequest)
			return
		}
		blob, fp, ok := c.schemeBytes(key)
		if !ok {
			http.Error(w, `{"error":"scheme not resolved"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Scheme-Fingerprint", fp)
		w.Write(blob)
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Snapshot())
	})
	return mux
}

// Wait blocks until every unit is done, the run fails, or ctx ends.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.err
	case <-ctx.Done():
		return fmt.Errorf("dist: coordinator wait: %w", ctx.Err())
	}
}

// ImportInto feeds every completed unit's result into cache under its
// canonical key — Counters into the point cache, field stats into the
// field-run cache, stored scheme checkpoints into the scheme cache — after
// which experiment runs sharing that cache read the distributed results
// instead of recomputing them. The returned count covers point and field
// results (the units UnitsFor enumerates); schemes ride along uncounted.
// Call after Wait succeeds.
func (c *Coordinator) ImportInto(cache *experiments.Cache) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, k := range c.order {
		st := c.states[k]
		if !st.done {
			continue
		}
		if st.unit.Train {
			// Upload-time decoding guarantees the blob is importable; a key
			// already resolved locally is a no-op by construction.
			if blob := c.schemes[k]; blob != nil {
				cache.ImportScheme(k, blob)
			}
			continue
		}
		if st.result.Field != nil {
			cache.ImportFieldRun(k, st.result.Field.runStats())
		} else {
			cache.ImportPoint(k, st.result.Counters)
		}
		n++
	}
	return n
}

// ListenAndWait serves the protocol on addr until the run completes (or ctx
// ends), then tears the listener down. logf, when non-nil, receives one line
// with the bound address — pass log.Printf — so workers can be pointed at a
// ":0" listener.
func (c *Coordinator) ListenAndWait(ctx context.Context, addr string, logf func(format string, args ...any)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	if logf != nil {
		logf("dist: coordinating %d units on %s", len(c.order), ln.Addr())
	}
	srv := &http.Server{Handler: c.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()
	err = c.Wait(ctx)
	if err == nil {
		// Serve Done to straggler polls before tearing the listener down.
		t := time.NewTimer(c.opts.Linger)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
	return err
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, `{"error":"POST required"}`, http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
