package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ctjam/internal/atomicfile"
	"ctjam/internal/core"
	"ctjam/internal/experiments"
)

// Spool is the on-disk exchange format of static (networkless) sharding: one
// shard's results, tagged with its place in the shard set so a merge can
// verify it is combining a complete, consistent partition. Schemes carries
// the checkpoints of every scheme the shard trained, so a merge can account
// for fleet-wide training work (and reuse the schemes) without retraining.
type Spool struct {
	Shard   int           `json:"shard"`
	Shards  int           `json:"shards"`
	Results []UnitResult  `json:"results"`
	Schemes []SpoolScheme `json:"schemes,omitempty"`
}

// SpoolScheme is one persisted scheme checkpoint: its canonical cache key,
// the CTSC bytes, and their fingerprint (recomputed and verified on merge,
// so a corrupted spool cannot install a wrong scheme under a healthy key).
type SpoolScheme struct {
	Key         string `json:"key"`
	Fingerprint string `json:"fingerprint"`
	Data        []byte `json:"data"`
}

// SpoolName is the canonical spool filename of one shard, used by the
// ctjam-experiments -shards mode so the merge step can glob a directory.
func SpoolName(shard, shards int) string {
	return fmt.Sprintf("shard-%03d-of-%03d.json", shard, shards)
}

// ShardUnits returns the slice of units shard index owns under a static
// round-robin partition of the sorted unit list: unit i belongs to shard
// i%shards. Every process derives the same partition from the same
// (Options, ids) inputs — no coordination needed.
func ShardUnits(units []Unit, shard, shards int) ([]Unit, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("dist: shards must be positive, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("dist: shard index %d out of range [0,%d)", shard, shards)
	}
	var out []Unit
	for i := shard; i < len(units); i += shards {
		out = append(out, units[i])
	}
	return out, nil
}

// RunShard evaluates shard index's slice of the work list for (o, ids) and
// writes the spool file to path atomically. Any unit that fails to evaluate
// fails the shard: a spool on disk means every result in it is good.
func RunShard(ctx context.Context, o experiments.Options, ids []string, shard, shards int, path string) (int, error) {
	units, err := UnitsFor(o, ids)
	if err != nil {
		return 0, err
	}
	mine, err := ShardUnits(units, shard, shards)
	if err != nil {
		return 0, err
	}
	cache := experiments.NewCache()
	results := evaluate(ctx, mine, cache, o.Workers)
	for _, r := range results {
		if r.Err != "" {
			return 0, fmt.Errorf("dist: shard %d/%d: unit %s: %s", shard, shards, r.Key, r.Err)
		}
	}
	sp := Spool{Shard: shard, Shards: shards, Results: results}
	for _, sb := range cache.ExportSchemes() {
		sp.Schemes = append(sp.Schemes, SpoolScheme{
			Key:         sb.Key,
			Fingerprint: core.SchemeFingerprint(sb.Data),
			Data:        sb.Data,
		})
	}
	err = atomicfile.WriteFile(path, 0o644, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(sp)
	})
	if err != nil {
		return 0, err
	}
	return len(results), nil
}

// MergeSpools reads the spool files of one complete shard set from dir and
// imports every result into cache. It verifies the set is consistent (all
// spools agree on the shard count), complete (every index 0..shards-1
// present exactly once), and covers every expected unit key exactly once.
func MergeSpools(dir string, cache *experiments.Cache, units []Unit) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*-of-*.json"))
	if err != nil {
		return 0, err
	}
	if len(matches) == 0 {
		return 0, fmt.Errorf("dist: no spool files in %s", dir)
	}
	shards, firstPath := 0, ""
	seen := make(map[int]string)
	imported := make(map[string]bool)
	schemeFPs := make(map[string]string)
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, err
		}
		var sp Spool
		if err := json.Unmarshal(data, &sp); err != nil {
			return 0, fmt.Errorf("dist: %s: %w", path, err)
		}
		if shards == 0 {
			shards, firstPath = sp.Shards, path
		}
		if sp.Shards != shards {
			return 0, fmt.Errorf("dist: %s declares %d shards, %s declared %d",
				path, sp.Shards, firstPath, shards)
		}
		if prev, dup := seen[sp.Shard]; dup {
			return 0, fmt.Errorf("dist: shard %d appears in both %s and %s", sp.Shard, prev, path)
		}
		if sp.Shard < 0 || sp.Shard >= shards {
			return 0, fmt.Errorf("dist: %s: shard index %d out of range [0,%d)", path, sp.Shard, shards)
		}
		seen[sp.Shard] = path
		for _, s := range sp.Schemes {
			if fp := core.SchemeFingerprint(s.Data); fp != s.Fingerprint {
				return 0, fmt.Errorf("dist: %s: scheme %s: declared fingerprint %s, bytes hash to %s",
					path, s.Key, s.Fingerprint, fp)
			}
			if prev, dup := schemeFPs[s.Key]; dup && prev != s.Fingerprint {
				return 0, fmt.Errorf("dist: %s: scheme %s conflicts with another shard's checkpoint", path, s.Key)
			}
			schemeFPs[s.Key] = s.Fingerprint
			if err := cache.ImportScheme(s.Key, s.Data); err != nil {
				return 0, fmt.Errorf("dist: %s: scheme %s: %w", path, s.Key, err)
			}
		}
		for _, r := range sp.Results {
			if r.Err != "" {
				return 0, fmt.Errorf("dist: %s: unit %s carries error: %s", path, r.Key, r.Err)
			}
			if imported[r.Key] {
				return 0, fmt.Errorf("dist: %s: unit %s already imported from another shard", path, r.Key)
			}
			imported[r.Key] = true
			if r.Field != nil {
				cache.ImportFieldRun(r.Key, r.Field.runStats())
			} else {
				cache.ImportPoint(r.Key, r.Counters)
			}
		}
	}
	if len(seen) != shards {
		missing := make([]int, 0)
		for i := 0; i < shards; i++ {
			if _, ok := seen[i]; !ok {
				missing = append(missing, i)
			}
		}
		return 0, fmt.Errorf("dist: incomplete shard set in %s: missing %v of %d", dir, missing, shards)
	}
	for _, u := range units {
		if !imported[u.Key] {
			return 0, fmt.Errorf("dist: merged spools are missing unit %s", u.Key)
		}
	}
	return len(imported), nil
}
