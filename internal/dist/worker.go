package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"ctjam/internal/experiments"
)

// WorkerOptions configure one worker process (or goroutine).
type WorkerOptions struct {
	// ID names the worker in protocol requests — diagnostics only, results
	// are keyed by unit.
	ID string
	// Workers is the local evaluation parallelism (default GOMAXPROCS).
	Workers int
	// MaxUnits is the most units requested per poll (default 4). The
	// coordinator's Batch caps it.
	MaxUnits int
	// PollInterval paces polls that return no work and no retry hint
	// (default 500ms).
	PollInterval time.Duration
	// Client issues the HTTP requests (default http.DefaultClient).
	Client *http.Client
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.ID == "" {
		o.ID = "worker"
	}
	if o.MaxUnits <= 0 {
		o.MaxUnits = 4
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 500 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// maxConsecutiveFailures bounds back-to-back protocol errors before a worker
// gives up — a coordinator that has gone away for good should not pin worker
// processes forever.
const maxConsecutiveFailures = 10

// Worker pulls units from a coordinator, evaluates them against a persistent
// local cache (so sibling points reuse trained schemes across polls), and
// reports results until the coordinator declares the run done.
type Worker struct {
	base  string
	opts  WorkerOptions
	cache *experiments.Cache
}

// NewWorker builds a worker for the coordinator at baseURL
// (e.g. "http://host:9077").
func NewWorker(baseURL string, opts WorkerOptions) *Worker {
	return &Worker{
		base:  baseURL,
		opts:  opts.withDefaults(),
		cache: experiments.NewCache(),
	}
}

// Run polls, evaluates, and reports until the run completes, ctx ends, or
// the coordinator is unreachable maxConsecutiveFailures times in a row.
// A coordinator that vanishes after the worker has completed at least one
// round-trip is treated as a finished run (the coordinator tears its
// listener down once all results are in), not an error: the coordinator
// process is the sole authority on run success. Returns the number of units
// evaluated.
func (w *Worker) Run(ctx context.Context) (int, error) {
	evaluated := 0
	failures := 0
	connected := false
	unreachable := func(err error) (int, error) {
		if connected {
			return evaluated, nil
		}
		return evaluated, fmt.Errorf("dist: worker %s: coordinator unreachable: %w", w.opts.ID, err)
	}
	for {
		var poll pollResponse
		err := w.post(ctx, "/v1/poll", pollRequest{Worker: w.opts.ID, Max: w.opts.MaxUnits}, &poll)
		if err != nil {
			if ctx.Err() != nil {
				return evaluated, ctx.Err()
			}
			failures++
			if failures >= maxConsecutiveFailures {
				return unreachable(err)
			}
			if !sleep(ctx, w.opts.PollInterval) {
				return evaluated, ctx.Err()
			}
			continue
		}
		failures = 0
		connected = true
		if poll.Done {
			return evaluated, nil
		}
		if len(poll.Units) == 0 {
			d := w.opts.PollInterval
			if poll.RetryMS > 0 {
				d = time.Duration(poll.RetryMS) * time.Millisecond
			}
			if !sleep(ctx, d) {
				return evaluated, ctx.Err()
			}
			continue
		}

		results := evaluate(ctx, poll.Units, w.cache, w.opts.Workers)
		evaluated += len(results)
		var res resultResponse
		if err := w.post(ctx, "/v1/result", resultRequest{Worker: w.opts.ID, Results: results}, &res); err != nil {
			if ctx.Err() != nil {
				return evaluated, ctx.Err()
			}
			// Losing a result report is recoverable: the lease expires and
			// another worker (or this one) recomputes the same pure result.
			failures++
			if failures >= maxConsecutiveFailures {
				return unreachable(err)
			}
			continue
		}
		if res.Done {
			return evaluated, nil
		}
	}
}

// post issues one JSON round-trip to the coordinator.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("dist: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleep waits for d or ctx, reporting whether the wait ran to completion.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
