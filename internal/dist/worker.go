package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"ctjam/internal/core"
	"ctjam/internal/experiments"
)

// WorkerOptions configure one worker process (or goroutine).
type WorkerOptions struct {
	// ID names the worker in protocol requests — diagnostics only, results
	// are keyed by unit.
	ID string
	// Workers is the local evaluation parallelism (default GOMAXPROCS).
	Workers int
	// MaxUnits is the most units requested per poll (default 4). The
	// coordinator's Batch caps it.
	MaxUnits int
	// PollInterval paces polls that return no work and no retry hint
	// (default 500ms).
	PollInterval time.Duration
	// Client issues the HTTP requests (default http.DefaultClient).
	Client *http.Client
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.ID == "" {
		o.ID = "worker"
	}
	if o.MaxUnits <= 0 {
		o.MaxUnits = 4
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 500 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// maxConsecutiveFailures bounds back-to-back protocol errors before a worker
// gives up — a coordinator that has gone away for good should not pin worker
// processes forever.
const maxConsecutiveFailures = 10

// Worker pulls units from a coordinator, evaluates them against a persistent
// local cache (so sibling points reuse trained schemes across polls), and
// reports results until the coordinator declares the run done.
type Worker struct {
	base  string
	opts  WorkerOptions
	cache *experiments.Cache
}

// NewWorker builds a worker for the coordinator at baseURL
// (e.g. "http://host:9077").
func NewWorker(baseURL string, opts WorkerOptions) *Worker {
	return &Worker{
		base:  baseURL,
		opts:  opts.withDefaults(),
		cache: experiments.NewCache(),
	}
}

// CacheStats reports the worker's local cache counters — most usefully
// SchemeBuilds (schemes trained here) versus SchemeImports (checkpoints
// fetched from the coordinator instead of retrained).
func (w *Worker) CacheStats() experiments.CacheStats {
	return w.cache.Stats()
}

// Run polls, evaluates, and reports until the run completes, ctx ends, or
// the coordinator is unreachable maxConsecutiveFailures times in a row.
// A coordinator that vanishes after the worker has completed at least one
// round-trip is treated as a finished run (the coordinator tears its
// listener down once all results are in), not an error: the coordinator
// process is the sole authority on run success. Returns the number of units
// evaluated.
func (w *Worker) Run(ctx context.Context) (int, error) {
	evaluated := 0
	failures := 0
	connected := false
	unreachable := func(err error) (int, error) {
		if connected {
			return evaluated, nil
		}
		return evaluated, fmt.Errorf("dist: worker %s: coordinator unreachable: %w", w.opts.ID, err)
	}
	for {
		var poll pollResponse
		err := w.post(ctx, "/v1/poll", pollRequest{Worker: w.opts.ID, Max: w.opts.MaxUnits}, &poll)
		if err != nil {
			if ctx.Err() != nil {
				return evaluated, ctx.Err()
			}
			failures++
			if failures >= maxConsecutiveFailures {
				return unreachable(err)
			}
			if !sleep(ctx, w.opts.PollInterval) {
				return evaluated, ctx.Err()
			}
			continue
		}
		failures = 0
		connected = true
		if poll.Done {
			return evaluated, nil
		}
		if len(poll.Units) == 0 {
			d := w.opts.PollInterval
			if poll.RetryMS > 0 {
				d = time.Duration(poll.RetryMS) * time.Millisecond
			}
			if !sleep(ctx, d) {
				return evaluated, ctx.Err()
			}
			continue
		}

		// Train units complete through POST /v1/scheme; point units first
		// install their scheme checkpoint (inlined or fetched) so evaluation
		// reuses the fleet-trained scheme instead of training locally.
		var results []UnitResult
		var evals []Unit
		var transportErr error
		for _, u := range poll.Units {
			if u.Train {
				res, err := w.trainAndUpload(ctx, u)
				if err != nil {
					transportErr = err
					break
				}
				if res != nil {
					results = append(results, *res)
				} else {
					evaluated++
				}
				continue
			}
			if res := w.installScheme(ctx, u); res != nil {
				results = append(results, *res)
				continue
			}
			evals = append(evals, u)
		}
		if transportErr != nil {
			if ctx.Err() != nil {
				return evaluated, ctx.Err()
			}
			// Losing an upload is recoverable: the train lease expires and
			// another worker (or this one) redoes the same pure training.
			failures++
			if failures >= maxConsecutiveFailures {
				return unreachable(transportErr)
			}
			if !sleep(ctx, w.opts.PollInterval) {
				return evaluated, ctx.Err()
			}
			continue
		}
		if len(evals) > 0 {
			er := evaluate(ctx, evals, w.cache, w.opts.Workers)
			evaluated += len(er)
			results = append(results, er...)
		}
		if len(results) == 0 {
			continue
		}
		var res resultResponse
		if err := w.post(ctx, "/v1/result", resultRequest{Worker: w.opts.ID, Results: results}, &res); err != nil {
			if ctx.Err() != nil {
				return evaluated, ctx.Err()
			}
			var he *httpError
			if errors.As(err, &he) {
				// The coordinator answered (e.g. a structured 409 rejecting
				// claimed keys): it ingested what it accepted, and the lease
				// machinery re-issues the rest — nothing to retry here.
				continue
			}
			// Losing a result report is recoverable: the lease expires and
			// another worker (or this one) recomputes the same pure result.
			failures++
			if failures >= maxConsecutiveFailures {
				return unreachable(err)
			}
			continue
		}
		if res.Done {
			return evaluated, nil
		}
	}
}

// trainAndUpload runs one train unit: recompute the scheme key from the wire
// payload, train (or reuse) the scheme, and upload its checkpoint. A nil,
// nil return means the upload was accepted; a non-nil UnitResult is a
// unit-level failure to report via /v1/result; a non-nil error is a
// transport failure (coordinator unreachable).
func (w *Worker) trainAndUpload(ctx context.Context, u Unit) (*UnitResult, error) {
	cfg, err := u.Config.envConfig()
	if err != nil {
		return &UnitResult{Key: u.Key, Err: err.Error()}, nil
	}
	o := u.Opts.options(ctx, w.cache, w.opts.Workers)
	if got := experiments.SchemeKey(o, cfg); got != u.Key {
		return &UnitResult{Key: u.Key, Err: fmt.Sprintf(
			"dist: key mismatch: coordinator sent %q, worker derives %q", u.Key, got)}, nil
	}
	key, blob, err := w.cache.TrainScheme(ctx, o, cfg)
	if err != nil {
		return &UnitResult{Key: u.Key, Err: err.Error()}, nil
	}
	req := schemeUploadRequest{
		Worker:      w.opts.ID,
		Key:         key,
		Fingerprint: core.SchemeFingerprint(blob),
		Data:        blob,
	}
	var resp schemeUploadResponse
	err = w.post(ctx, "/v1/scheme", req, &resp)
	var he *httpError
	if errors.As(err, &he) && he.status == http.StatusConflict {
		// A 409 means the coordinator's recomputed identity disagrees with
		// the claim — most plausibly corruption in flight. One retry with a
		// freshly marshaled request resolves a transient; a persistent
		// conflict becomes a unit failure below.
		err = w.post(ctx, "/v1/scheme", req, &resp)
	}
	if err != nil {
		if errors.As(err, &he) {
			// Reachable but refusing: report the failure so the ledger burns
			// an attempt now instead of waiting out the lease.
			return &UnitResult{Key: u.Key, Err: err.Error()}, nil
		}
		return nil, err
	}
	return nil, nil
}

// installScheme makes the scheme a point unit evaluates resolvable from the
// local cache before evaluation: a no-op when the coordinator shipped no
// scheme identity (field units, scheme shipping disabled) or the scheme is
// already installed, otherwise the inlined or fetched checkpoint is
// fingerprint-verified and imported. A non-nil result is the unit-level
// error to report instead of evaluating.
func (w *Worker) installScheme(ctx context.Context, u Unit) *UnitResult {
	if u.SchemeKey == "" || u.SchemeFP == "" {
		return nil
	}
	if _, ok := w.cache.SchemeBytes(u.SchemeKey); ok {
		return nil
	}
	blob := u.Scheme
	if blob == nil {
		var err error
		if blob, err = w.fetchScheme(ctx, u.SchemeKey); err != nil {
			return &UnitResult{Key: u.Key, Err: err.Error()}
		}
	}
	if fp := core.SchemeFingerprint(blob); fp != u.SchemeFP {
		return &UnitResult{Key: u.Key, Err: fmt.Sprintf(
			"dist: scheme %s: received fingerprint %s, coordinator promised %s", u.SchemeKey, fp, u.SchemeFP)}
	}
	if err := w.cache.ImportScheme(u.SchemeKey, blob); err != nil {
		return &UnitResult{Key: u.Key, Err: err.Error()}
	}
	return nil
}

// fetchScheme downloads one stored checkpoint from the coordinator.
func (w *Worker) fetchScheme(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.base+"/v1/scheme/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &httpError{status: resp.StatusCode, msg: fmt.Sprintf(
			"dist: GET /v1/scheme/%s: %s: %s", key, resp.Status, bytes.TrimSpace(msg))}
	}
	return io.ReadAll(resp.Body)
}

// httpError is a non-200 protocol answer: the coordinator was reachable and
// responded, so it is a structured refusal (e.g. a 409 identity rejection),
// not a transport failure, and never counts toward consecutive failures.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// post issues one JSON round-trip to the coordinator.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &httpError{status: resp.StatusCode, msg: fmt.Sprintf(
			"dist: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleep waits for d or ctx, reporting whether the wait ran to completion.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
