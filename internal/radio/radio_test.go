package radio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDBmConversions(t *testing.T) {
	tests := []struct {
		dbm float64
		mw  float64
	}{
		{0, 1},
		{10, 10},
		{20, 100},
		{-30, 0.001},
	}
	for _, tt := range tests {
		if got := DBmToMilliwatt(tt.dbm); math.Abs(got-tt.mw) > 1e-12 {
			t.Errorf("DBmToMilliwatt(%v) = %v, want %v", tt.dbm, got, tt.mw)
		}
		if got := MilliwattToDBm(tt.mw); math.Abs(got-tt.dbm) > 1e-12 {
			t.Errorf("MilliwattToDBm(%v) = %v, want %v", tt.mw, got, tt.dbm)
		}
	}
	if !math.IsInf(MilliwattToDBm(0), -1) {
		t.Error("MilliwattToDBm(0) should be -Inf")
	}
}

func TestDBmRoundTripProperty(t *testing.T) {
	f := func(dbm float64) bool {
		dbm = math.Mod(dbm, 100)
		back := MilliwattToDBm(DBmToMilliwatt(dbm))
		return math.Abs(back-dbm) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPathLossMonotonic(t *testing.T) {
	pl := DefaultPathLoss()
	prev := pl.LossDB(0.5)
	for d := 1.0; d <= 50; d += 0.5 {
		cur := pl.LossDB(d)
		if cur < prev {
			t.Fatalf("path loss decreased at d=%v", d)
		}
		prev = cur
	}
}

func TestPathLossReference(t *testing.T) {
	pl := PathLoss{RefLossDB: 40, Exponent: 2}
	if got := pl.LossDB(1); math.Abs(got-40) > 1e-12 {
		t.Fatalf("LossDB(1m) = %v, want 40", got)
	}
	// Exponent 2: +20 dB per decade.
	if got := pl.LossDB(10); math.Abs(got-60) > 1e-12 {
		t.Fatalf("LossDB(10m) = %v, want 60", got)
	}
	// Clamping below 0.1 m.
	if pl.LossDB(0.01) != pl.LossDB(0.1) {
		t.Fatal("distances below 0.1 m must clamp")
	}
}

func TestReceivedPower(t *testing.T) {
	pl := PathLoss{RefLossDB: 40, Exponent: 2}
	if got := pl.ReceivedPowerDBm(20, 1); math.Abs(got-(-20)) > 1e-12 {
		t.Fatalf("rx power = %v, want -20", got)
	}
}

func TestInterferenceKindString(t *testing.T) {
	tests := []struct {
		kind InterferenceKind
		want string
	}{
		{KindNone, "none"},
		{KindEmuBee, "EmuBee"},
		{KindZigBee, "ZigBee"},
		{KindWiFi, "WiFi"},
		{InterferenceKind(99), "InterferenceKind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestRejectionOrdering(t *testing.T) {
	// Chip-matched interference is not rejected; plain Wi-Fi is heavily
	// rejected (bandwidth + processing gain ≈ 25 dB).
	if KindEmuBee.RejectionDB() != 0 || KindZigBee.RejectionDB() != 0 {
		t.Fatal("chip-matched interference must have zero rejection")
	}
	got := KindWiFi.RejectionDB()
	if got < 20 || got > 30 {
		t.Fatalf("WiFi rejection = %v dB, want ~25", got)
	}
}

func TestTxPower(t *testing.T) {
	if KindEmuBee.TxPowerDBm() != WiFiTxPowerDBm {
		t.Fatal("EmuBee transmits at Wi-Fi power")
	}
	if KindZigBee.TxPowerDBm() != ZigBeeTxPowerDBm {
		t.Fatal("ZigBee jammer transmits at ZigBee power")
	}
	if !math.IsInf(KindNone.TxPowerDBm(), -1) {
		t.Fatal("no jammer has -Inf power")
	}
}

func TestSINR(t *testing.T) {
	// Without interference the SINR is signal - noise.
	got := SINRdB(-60, math.Inf(-1), -100)
	if math.Abs(got-40) > 1e-9 {
		t.Fatalf("SINR = %v, want 40", got)
	}
	// Equal interference and noise cost 3 dB.
	got = SINRdB(-60, -100, -100)
	if math.Abs(got-37) > 0.05 {
		t.Fatalf("SINR = %v, want ~37", got)
	}
}

func TestQFunc(t *testing.T) {
	if got := QFunc(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Q(0) = %v, want 0.5", got)
	}
	if got := QFunc(1.96); math.Abs(got-0.025) > 1e-3 {
		t.Fatalf("Q(1.96) = %v, want ~0.025", got)
	}
	if QFunc(10) > 1e-20 {
		t.Fatal("Q(10) should be vanishing")
	}
}

func TestChipErrorProbMonotone(t *testing.T) {
	prev := 1.0
	for sinr := -20.0; sinr <= 20; sinr += 1 {
		cur := ChipErrorProb(sinr)
		if cur > prev {
			t.Fatalf("chip error rose at %v dB", sinr)
		}
		if cur < 0 || cur > 0.5+1e-9 {
			t.Fatalf("chip error %v out of range", cur)
		}
		prev = cur
	}
}

func TestSymbolErrorProbEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := SymbolErrorProb(0, 100, rng); got != 0 {
		t.Fatalf("SER at pc=0 is %v", got)
	}
	got := SymbolErrorProb(0.5, 100, rng)
	if math.Abs(got-15.0/16) > 1e-9 {
		t.Fatalf("SER at pc=0.5 is %v, want 15/16", got)
	}
	// DSSS robustness: 5% chip errors decode almost perfectly.
	if got := SymbolErrorProb(0.05, 2000, rng); got > 0.01 {
		t.Fatalf("SER at pc=0.05 is %v, DSSS should fix it", got)
	}
	// 30% chip errors break it noticeably.
	if got := SymbolErrorProb(0.30, 2000, rng); got < 0.05 {
		t.Fatalf("SER at pc=0.30 is %v, expected substantial", got)
	}
}

func TestPER(t *testing.T) {
	if got := PER(0, 100); got != 0 {
		t.Fatalf("PER(0) = %v", got)
	}
	if got := PER(1, 5); got != 1 {
		t.Fatalf("PER(1) = %v", got)
	}
	if got := PER(0.1, 0); got != 0 {
		t.Fatalf("PER with 0 symbols = %v", got)
	}
	want := 1 - math.Pow(0.99, 10)
	if got := PER(0.01, 10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PER = %v, want %v", got, want)
	}
}

func TestEvaluateJammingEffectOrdering(t *testing.T) {
	// Fig. 2(b): at equal jammer distance EmuBee jams hardest, then
	// genuine ZigBee, then plain Wi-Fi.
	link := DefaultLink()
	rng := rand.New(rand.NewSource(2))
	for _, d := range []float64{2, 5, 8} {
		emu := link.Evaluate(KindEmuBee, d, 60, rng)
		zb := link.Evaluate(KindZigBee, d, 60, rng)
		wf := link.Evaluate(KindWiFi, d, 60, rng)
		if !(emu.SINRdB < zb.SINRdB && zb.SINRdB < wf.SINRdB) {
			t.Fatalf("d=%v: SINR ordering wrong: emu=%v zb=%v wifi=%v",
				d, emu.SINRdB, zb.SINRdB, wf.SINRdB)
		}
		if emu.PER < zb.PER-1e-9 {
			t.Fatalf("d=%v: EmuBee PER %v below ZigBee PER %v", d, emu.PER, zb.PER)
		}
	}
}

func TestEvaluatePERDecreasesWithDistance(t *testing.T) {
	link := DefaultLink()
	link.Trials = 1500
	rng := rand.New(rand.NewSource(3))
	prev := 2.0
	for _, d := range []float64{1, 3, 6, 10, 15} {
		out := link.Evaluate(KindEmuBee, d, 60, rng)
		if out.PER > prev+0.05 {
			t.Fatalf("PER increased with distance at %vm: %v -> %v", d, prev, out.PER)
		}
		prev = out.PER
	}
	// Throughput must mirror PER.
	near := link.Evaluate(KindEmuBee, 1, 60, rng)
	far := link.Evaluate(KindEmuBee, 15, 60, rng)
	if near.ThroughputKbps > far.ThroughputKbps {
		t.Fatalf("throughput near (%v) > far (%v)", near.ThroughputKbps, far.ThroughputKbps)
	}
}

func TestEvaluateNoJammer(t *testing.T) {
	link := DefaultLink()
	rng := rand.New(rand.NewSource(4))
	out := link.Evaluate(KindNone, 1, 60, rng)
	if out.PER > 0.01 {
		t.Fatalf("clean-channel PER = %v", out.PER)
	}
	if math.Abs(out.ThroughputKbps-60) > 1 {
		t.Fatalf("clean-channel throughput = %v", out.ThroughputKbps)
	}
}

func TestOverlapZigBeeChannels(t *testing.T) {
	// Wi-Fi channel 1 (2412 MHz) covers ZigBee 11-14 (2405-2420 MHz).
	got, err := OverlapZigBeeChannels(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{11, 12, 13, 14}
	if len(got) != len(want) {
		t.Fatalf("overlap = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("overlap = %v, want %v", got, want)
		}
	}
	// Every 2.4 GHz Wi-Fi channel covers exactly 4 ZigBee channels
	// except near the band edges.
	for c := 1; c <= 11; c++ {
		chs, err := OverlapZigBeeChannels(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(chs) != 4 {
			t.Fatalf("wifi channel %d covers %d zigbee channels, want 4", c, len(chs))
		}
	}
	if _, err := OverlapZigBeeChannels(0); err == nil {
		t.Fatal("channel 0: expected error")
	}
	if _, err := OverlapZigBeeChannels(14); err == nil {
		t.Fatal("channel 14: expected error")
	}
}

func BenchmarkEvaluateLink(b *testing.B) {
	link := DefaultLink()
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Evaluate(KindEmuBee, 5, 60, rng)
	}
}
