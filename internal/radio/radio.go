// Package radio models the 2.4 GHz propagation environment of the paper's
// experiments: log-distance path loss, additive noise, SINR at the victim
// receiver, the effectiveness of different jamming signal types against
// ZigBee's DSSS receiver, and the spectral overlap between Wi-Fi and ZigBee
// channels (one 20 MHz Wi-Fi channel covers four 2 MHz ZigBee channels).
package radio

import (
	"fmt"
	"math"
	"math/rand"

	"ctjam/internal/phy/zigbee"
)

// Transmit powers from the paper's motivation (§II-B): Wi-Fi radios emit up
// to 100 mW while energy-constrained ZigBee radios emit around 1 mW.
const (
	WiFiTxPowerDBm   = 20.0
	ZigBeeTxPowerDBm = 0.0
	// NoiseFloorDBm is the receiver noise floor over a 2 MHz ZigBee
	// channel (thermal -111 dBm plus a ~10 dB noise figure, rounded).
	NoiseFloorDBm = -100.0
)

// DBmToMilliwatt converts dBm to milliwatts.
func DBmToMilliwatt(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattToDBm converts milliwatts to dBm. Zero or negative power maps to
// -Inf.
func MilliwattToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// PathLoss is a log-distance path-loss model:
// L(d) = RefLossDB + 10*Exponent*log10(d/1m).
type PathLoss struct {
	// RefLossDB is the loss at 1 m. Free space at 2.4 GHz gives 40 dB.
	RefLossDB float64
	// Exponent is the path-loss exponent (2 free space, ~2.5-3 indoor).
	Exponent float64
}

// DefaultPathLoss models the indoor lab environment of the paper's field
// experiments.
func DefaultPathLoss() PathLoss {
	return PathLoss{RefLossDB: 40, Exponent: 2.7}
}

// LossDB returns the path loss at distance d meters. Distances below 0.1 m
// are clamped to 0.1 m.
func (p PathLoss) LossDB(d float64) float64 {
	if d < 0.1 {
		d = 0.1
	}
	return p.RefLossDB + 10*p.Exponent*math.Log10(d)
}

// ReceivedPowerDBm returns the received power for a transmitter at txDBm and
// distance d meters.
func (p PathLoss) ReceivedPowerDBm(txDBm, d float64) float64 {
	return txDBm - p.LossDB(d)
}

// InterferenceKind labels the jamming signal types compared in Fig. 2(b).
type InterferenceKind int

// Jamming signal types.
const (
	// KindNone means no interference.
	KindNone InterferenceKind = iota + 1
	// KindEmuBee is the Wi-Fi-emulated ZigBee waveform: chip-matched,
	// in-band, transmitted at Wi-Fi power.
	KindEmuBee
	// KindZigBee is a genuine ZigBee waveform from a ZigBee radio.
	KindZigBee
	// KindWiFi is a plain Wi-Fi OFDM waveform.
	KindWiFi
)

// String implements fmt.Stringer.
func (k InterferenceKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindEmuBee:
		return "EmuBee"
	case KindZigBee:
		return "ZigBee"
	case KindWiFi:
		return "WiFi"
	default:
		return fmt.Sprintf("InterferenceKind(%d)", int(k))
	}
}

// TxPowerDBm returns the native transmit power of the jammer type.
func (k InterferenceKind) TxPowerDBm() float64 {
	switch k {
	case KindZigBee:
		return ZigBeeTxPowerDBm
	case KindEmuBee, KindWiFi:
		return WiFiTxPowerDBm
	default:
		return math.Inf(-1)
	}
}

// RejectionDB returns how many dB of the received jamming power the ZigBee
// DSSS receiver effectively rejects:
//
//   - EmuBee and genuine ZigBee waveforms are chip-matched: the despreader
//     integrates them coherently, so nothing is rejected.
//   - A plain Wi-Fi OFDM signal spreads its power over 20 MHz, of which only
//     2 MHz falls in the victim channel (-10 dB), and the remainder behaves
//     like noise against the 32-chip correlator, which averages it down by
//     ~10*log10(32) ≈ 15 dB of processing gain.
func (k InterferenceKind) RejectionDB() float64 {
	switch k {
	case KindWiFi:
		bandwidthPenalty := 10 * math.Log10(20.0/2.0)
		processingGain := 10 * math.Log10(float64(zigbee.ChipsPerSymbol))
		return bandwidthPenalty + processingGain
	default:
		return 0
	}
}

// SINRdB computes the signal-to-interference-plus-noise ratio given the
// desired received power, the *effective* interference power (after
// rejection), and the noise floor, all in dBm.
func SINRdB(signalDBm, interferenceDBm, noiseDBm float64) float64 {
	in := DBmToMilliwatt(interferenceDBm) + DBmToMilliwatt(noiseDBm)
	return signalDBm - MilliwattToDBm(in)
}

// QFunc is the Gaussian tail probability Q(x) = P(N(0,1) > x).
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// ChipErrorProb maps a per-chip SINR (dB) to the probability of a hard chip
// decision error for coherent antipodal O-QPSK chips: Q(sqrt(2*SINR)).
func ChipErrorProb(sinrDB float64) float64 {
	snr := math.Pow(10, sinrDB/10)
	return QFunc(math.Sqrt(2 * snr))
}

// SymbolErrorProb estimates the DSSS symbol error probability at the given
// chip error probability by Monte-Carlo despreading: flip chips of a random
// symbol's sequence i.i.d. and count minimum-distance decision errors.
// trials controls accuracy (a few hundred suffice for the PER curves).
func SymbolErrorProb(chipErr float64, trials int, rng *rand.Rand) float64 {
	if chipErr <= 0 {
		return 0
	}
	if chipErr >= 0.5 {
		return 1 - 1.0/float64(zigbee.SymbolCount)
	}
	errors := 0
	chips := make([]uint8, zigbee.ChipsPerSymbol)
	for t := 0; t < trials; t++ {
		s := rng.Intn(zigbee.SymbolCount)
		seq, err := zigbee.Chips(s)
		if err != nil {
			continue
		}
		copy(chips, seq)
		for c := range chips {
			if rng.Float64() < chipErr {
				chips[c] ^= 1
			}
		}
		got, _, err := zigbee.NearestSymbol(chips)
		if err != nil || got != s {
			errors++
		}
	}
	return float64(errors) / float64(trials)
}

// PER converts a symbol error probability into a packet error rate for a
// packet of nSymbols symbols (independent symbol errors).
func PER(symbolErr float64, nSymbols int) float64 {
	if nSymbols <= 0 {
		return 0
	}
	return 1 - math.Pow(1-symbolErr, float64(nSymbols))
}

// Link describes a victim ZigBee link under attack for the Fig. 2(b)
// analysis.
type Link struct {
	// PathLoss is the propagation model (shared by signal and jammer).
	PathLoss PathLoss
	// SignalDistanceM is the transmitter-receiver distance in meters.
	SignalDistanceM float64
	// SignalTxDBm is the victim transmitter power.
	SignalTxDBm float64
	// PayloadBytes sets the packet size for PER computation.
	PayloadBytes int
	// Trials is the Monte-Carlo budget per evaluation.
	Trials int
	// ShadowingDB is the log-normal shadowing standard deviation applied
	// per packet to the signal-to-jammer balance (0 disables). Indoor
	// measurements like the paper's exhibit a few dB of it, which is
	// what smears the PER-vs-distance transitions in Fig. 2(b).
	ShadowingDB float64
}

// DefaultLink mirrors the Fig. 2 experiment: hub and node a few meters
// apart, full-size packets, mild indoor shadowing.
func DefaultLink() Link {
	return Link{
		PathLoss:        DefaultPathLoss(),
		SignalDistanceM: 3,
		SignalTxDBm:     ZigBeeTxPowerDBm,
		PayloadBytes:    60,
		Trials:          400,
		ShadowingDB:     3,
	}
}

// Outcome is the result of evaluating a link under jamming.
type Outcome struct {
	SINRdB         float64
	ChipErrorProb  float64
	SymbolErrProb  float64
	PER            float64
	ThroughputKbps float64
}

// Evaluate computes the victim link's PER and throughput when a jammer of
// the given kind transmits from jammerDistanceM meters away. offeredKbps is
// the application offered load; delivered throughput is offered*(1-PER).
// With ShadowingDB > 0 the PER is averaged over per-packet log-normal
// shadowing draws.
func (l Link) Evaluate(kind InterferenceKind, jammerDistanceM, offeredKbps float64, rng *rand.Rand) Outcome {
	sig := l.PathLoss.ReceivedPowerDBm(l.SignalTxDBm, l.SignalDistanceM)
	inter := math.Inf(-1)
	if kind != KindNone {
		inter = l.PathLoss.ReceivedPowerDBm(kind.TxPowerDBm(), jammerDistanceM) - kind.RejectionDB()
	}
	meanSINR := SINRdB(sig, inter, NoiseFloorDBm)
	nSym := 2 * (l.PayloadBytes + zigbee.FCSLen + 2) // 2 symbols per byte + header

	draws := 1
	if l.ShadowingDB > 0 {
		draws = 16
	}
	trials := l.Trials / draws
	if trials < 25 {
		trials = 25
	}
	var (
		perSum float64
		pcSum  float64
		serSum float64
	)
	for d := 0; d < draws; d++ {
		sinr := meanSINR
		if l.ShadowingDB > 0 {
			sinr += rng.NormFloat64() * l.ShadowingDB
		}
		pc := ChipErrorProb(sinr)
		ser := SymbolErrorProb(pc, trials, rng)
		perSum += PER(ser, nSym)
		pcSum += pc
		serSum += ser
	}
	per := perSum / float64(draws)
	return Outcome{
		SINRdB:         meanSINR,
		ChipErrorProb:  pcSum / float64(draws),
		SymbolErrProb:  serSum / float64(draws),
		PER:            per,
		ThroughputKbps: offeredKbps * (1 - per),
	}
}

// OverlapZigBeeChannels returns the IEEE 802.15.4 channel numbers (11-26)
// whose 2 MHz band falls inside the 20 MHz band of the given Wi-Fi channel
// (1-13, 2.4 GHz). This is the paper's "a Wi-Fi jammer can scan and jam up
// to 4 ZigBee channels at a time".
func OverlapZigBeeChannels(wifiChannel int) ([]int, error) {
	if wifiChannel < 1 || wifiChannel > 13 {
		return nil, fmt.Errorf("radio: wifi channel %d out of range [1,13]", wifiChannel)
	}
	wifiCenter := 2412.0 + 5.0*float64(wifiChannel-1)
	var out []int
	for ch := 11; ch <= 26; ch++ {
		center := 2405.0 + 5.0*float64(ch-11)
		// The ZigBee channel (±1 MHz) must fit within the Wi-Fi
		// channel (±10 MHz).
		if math.Abs(center-wifiCenter) <= 9 {
			out = append(out, ch)
		}
	}
	return out, nil
}
