package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSessionWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	trc := filepath.Join(dir, "trace.out")
	s, err := Start(cpu, mem, trc)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem, trc} {
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s: empty profile", path)
		}
	}
	// Stop is idempotent on a drained session.
	if err := s.Stop(); err != nil {
		t.Errorf("second Stop: %v", err)
	}
}

func TestSessionDisabled(t *testing.T) {
	s, err := Start("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Errorf("Stop on disabled session: %v", err)
	}
	var zero Session
	if err := zero.Stop(); err != nil {
		t.Errorf("Stop on zero session: %v", err)
	}
}

func TestStartRollsBackOnError(t *testing.T) {
	// An unreachable trace path must stop the already-started CPU profile,
	// or the next Start would fail with "cpu profiling already in use".
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	if _, err := Start(cpu, "", filepath.Join(dir, "missing", "trace.out")); err == nil {
		t.Fatal("expected error for unreachable trace path")
	}
	s, err := Start(cpu, "", "")
	if err != nil {
		t.Fatalf("CPU profiler left running after failed Start: %v", err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}
