// Package prof wires the standard runtime profilers behind the repo's CLI
// flags: a pprof CPU profile, a heap profile written at stop, and a runtime
// execution trace. The binaries (ctjam-experiments, ctjam-train) start one
// session around their hot work and feed the outputs to `go tool pprof` /
// `go tool trace`; ctjam-serve exposes the live equivalents over
// net/http/pprof instead.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Session holds the resources of one profiling run. The zero value (all
// outputs disabled) is valid and Stop on it is a no-op.
type Session struct {
	cpuFile   *os.File
	traceFile *os.File
	memPath   string
}

// Start begins the requested profiles; empty paths disable the respective
// output. On error every profile already started is stopped and its file
// closed, so a failed Start never leaks a running profiler.
func Start(cpuPath, memPath, tracePath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		s.cpuFile = f
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			s.abort()
			return nil, fmt.Errorf("prof: trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			s.abort()
			return nil, fmt.Errorf("prof: trace: %w", err)
		}
		s.traceFile = f
	}
	return s, nil
}

// abort rolls back the profiles already running after a partial Start.
func (s *Session) abort() {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		s.cpuFile.Close()
		s.cpuFile = nil
	}
}

// Stop finishes every active profile: it stops the CPU profile and trace,
// and writes the heap profile (after a GC, so it reflects live memory). It
// returns the first error encountered but always attempts every shutdown.
func (s *Session) Stop() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.traceFile != nil {
		trace.Stop()
		keep(s.traceFile.Close())
		s.traceFile = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			keep(fmt.Errorf("prof: heap profile: %w", err))
		} else {
			runtime.GC() // capture live objects, not garbage
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		s.memPath = ""
	}
	return firstErr
}
