package jammer

import (
	"fmt"
	"math/rand"
)

// KindAdaptive is the Adaptive strategy kind.
const KindAdaptive = "adaptive"

// Adaptive is a learning jammer in the spirit of the smart-jamming attackers
// of arXiv 2512.14013: it maintains an exponentially-weighted occupancy
// estimate per channel block and concentrates its power on the hottest one,
// with an epsilon-greedy exploration knob. Against a biased hopping policy it
// converges onto the victim's favourite blocks; against a uniform policy it
// degrades to a 1/blocks hit rate.
//
// Not safe for concurrent use.
type Adaptive struct {
	geom
	emitter

	alpha   float64 // EWMA learning rate, in (0,1]
	explore float64 // probability of jamming a uniformly random block, in [0,1)

	est []float64 // per-block occupancy estimates
}

// NewAdaptive builds a learning jammer. alpha is the occupancy-estimate
// learning rate, explore the epsilon-greedy exploration probability.
func NewAdaptive(channels, width int, powers []float64, mode PowerMode, rng *rand.Rand, alpha, explore float64) (*Adaptive, error) {
	g, err := newGeom(channels, width)
	if err != nil {
		return nil, err
	}
	em, err := newEmitter(powers, mode, rng)
	if err != nil {
		return nil, err
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("jammer: adaptive alpha %v out of range (0,1]", alpha)
	}
	if explore < 0 || explore >= 1 {
		return nil, fmt.Errorf("jammer: adaptive explore %v out of range [0,1)", explore)
	}
	a := &Adaptive{geom: g, emitter: em, alpha: alpha, explore: explore}
	a.est = make([]float64, g.blocks)
	return a, nil
}

// Kind implements Strategy.
func (a *Adaptive) Kind() string { return KindAdaptive }

// hottest returns the block with the highest occupancy estimate, lowest index
// winning ties, so the choice is deterministic and draws no randomness.
func (a *Adaptive) hottest() int {
	best := 0
	for b := 1; b < a.blocks; b++ {
		if a.est[b] > a.est[best] {
			best = b
		}
	}
	return best
}

// Focus implements Strategy: the hottest estimated block. The adaptive jammer
// always has a target, so ok is always true.
func (a *Adaptive) Focus() (block int, ok bool) { return a.hottest(), true }

// Reset implements Strategy, forgetting all occupancy estimates.
func (a *Adaptive) Reset() {
	for i := range a.est {
		a.est[i] = 0
	}
}

// Step implements Strategy. The jammer targets its hottest estimated block
// (or explores a uniformly random one), then updates every block's occupancy
// estimate with the slot's observation. Exploration draws from the RNG only
// when explore is positive, so a greedy jammer perturbs no shared stream.
func (a *Adaptive) Step(victimChannel int) (jammed bool, power float64, err error) {
	victimBlock, err := a.BlockOf(victimChannel)
	if err != nil {
		return false, 0, err
	}
	target := a.hottest()
	if a.explore > 0 && a.rng.Float64() < a.explore {
		target = a.rng.Intn(a.blocks)
	}
	for b := range a.est {
		obs := 0.0
		if b == victimBlock {
			obs = 1.0
		}
		a.est[b] += a.alpha * (obs - a.est[b])
	}
	if target == victimBlock {
		return true, a.emit(), nil
	}
	return false, 0, nil
}

// State implements Strategy. Layout: Floats = per-block occupancy estimates.
func (a *Adaptive) State() State {
	return State{Kind: KindAdaptive, Floats: append([]float64(nil), a.est...)}
}

// SetState implements Strategy.
func (a *Adaptive) SetState(st State) error {
	if err := checkKind(st, KindAdaptive); err != nil {
		return err
	}
	if len(st.Floats) != a.blocks {
		return fmt.Errorf("jammer: adaptive state needs %d floats, got %d", a.blocks, len(st.Floats))
	}
	for _, e := range st.Floats {
		if e < 0 || e > 1 || e != e {
			return fmt.Errorf("jammer: adaptive occupancy estimate %v out of range [0,1]", e)
		}
	}
	copy(a.est, st.Floats)
	return nil
}
