package jammer

import (
	"math/rand"
	"reflect"
	"testing"
)

// conformanceSpecs is the shared roster of the cross-strategy conformance
// suite: every registered kind, with both default and explicitly
// parameterized variants, including nested energy-budgeted wrappers.
func conformanceSpecs() []string {
	return []string{
		"sweep",
		"reactive",
		"reactive:delay=0",
		"reactive:delay=2,miss=0.2,hold=3",
		"adaptive",
		"adaptive:alpha=0.5,explore=0",
		"budget",
		"budget:duty=0.25,burst=4,over=(reactive:delay=1,miss=0.1)",
		"budget:duty=0.75,over=(adaptive:alpha=0.2)",
	}
}

var conformancePowers = []float64{11, 12, 13, 14, 15, 16, 17, 18, 19, 20}

// buildStrategy constructs the spec'd strategy over the paper's geometry
// (16 channels, width 4) with the given RNG.
func buildStrategy(t testing.TB, spec string, rng *rand.Rand) Strategy {
	t.Helper()
	s, err := New(spec, 16, 4, conformancePowers, ModeRandom, rng)
	if err != nil {
		t.Fatalf("build %q: %v", spec, err)
	}
	return s
}

// victimWalk returns a deterministic pseudo-random victim channel sequence.
func victimWalk(seed int64, slots int) []int {
	rng := rand.New(rand.NewSource(seed))
	walk := make([]int, slots)
	ch := rng.Intn(16)
	for i := range walk {
		// The victim stays put most slots and hops occasionally, like a
		// defending agent would.
		if rng.Float64() < 0.3 {
			ch = rng.Intn(16)
		}
		walk[i] = ch
	}
	return walk
}

type stepObs struct {
	jammed bool
	power  float64
	focus  int
	fOK    bool
}

func observe(t testing.TB, s Strategy, victim int) stepObs {
	t.Helper()
	jammed, power, err := s.Step(victim)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := s.Focus()
	return stepObs{jammed: jammed, power: power, focus: f, fOK: ok}
}

// TestStrategyKinds pins the registry: every kind in Kinds() builds from its
// bare name and reports that name back from Kind().
func TestStrategyKinds(t *testing.T) {
	kinds := Kinds()
	want := []string{KindSweep, KindReactive, KindAdaptive, KindBudget}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("Kinds() = %v, want %v", kinds, want)
	}
	for _, k := range kinds {
		s := buildStrategy(t, k, rand.New(rand.NewSource(1)))
		if s.Kind() != k {
			t.Errorf("spec %q built a %q strategy", k, s.Kind())
		}
	}
}

// TestStrategyMidRunRoundTrip is the conformance suite's headline guarantee:
// for every registered strategy, capturing State mid-run and restoring it
// into a freshly built instance (sharing the original RNG stream) continues
// bit-identically with the uninterrupted run.
func TestStrategyMidRunRoundTrip(t *testing.T) {
	const pre, post = 150, 150
	walk := victimWalk(99, pre+post)
	for _, spec := range conformanceSpecs() {
		t.Run(spec, func(t *testing.T) {
			// Uninterrupted reference run.
			ref := buildStrategy(t, spec, rand.New(rand.NewSource(7)))
			var want []stepObs
			for i, ch := range walk {
				o := observe(t, ref, ch)
				if i >= pre {
					want = append(want, o)
				}
			}

			// Interrupted run: snapshot at slot pre, restore into a fresh
			// instance built over the same (advanced) RNG.
			rng := rand.New(rand.NewSource(7))
			a := buildStrategy(t, spec, rng)
			for _, ch := range walk[:pre] {
				observe(t, a, ch)
			}
			snap := a.State()
			b := buildStrategy(t, spec, rng)
			if err := b.SetState(snap); err != nil {
				t.Fatalf("SetState: %v", err)
			}
			for i, ch := range walk[pre:] {
				if got := observe(t, b, ch); got != want[i] {
					t.Fatalf("slot %d after restore: %+v != %+v", pre+i, got, want[i])
				}
			}
		})
	}
}

// TestStrategyStateRoundTripExact pins that State -> SetState -> State is the
// identity for every strategy, from both fresh and mid-run snapshots.
func TestStrategyStateRoundTripExact(t *testing.T) {
	walk := victimWalk(5, 80)
	for _, spec := range conformanceSpecs() {
		t.Run(spec, func(t *testing.T) {
			s := buildStrategy(t, spec, rand.New(rand.NewSource(3)))
			for _, ch := range walk {
				observe(t, s, ch)
			}
			snap := s.State()
			s2 := buildStrategy(t, spec, rand.New(rand.NewSource(4)))
			if err := s2.SetState(snap); err != nil {
				t.Fatalf("SetState: %v", err)
			}
			if got := s2.State(); !reflect.DeepEqual(got, snap) {
				t.Fatalf("state round trip drifted:\ngot  %+v\nwant %+v", got, snap)
			}
		})
	}
}

// TestStrategyRejectsForeignState pins the kind check: a snapshot from one
// strategy kind must not restore into another.
func TestStrategyRejectsForeignState(t *testing.T) {
	kinds := Kinds()
	for _, from := range kinds {
		snap := buildStrategy(t, from, rand.New(rand.NewSource(1))).State()
		for _, to := range kinds {
			if to == from {
				continue
			}
			s := buildStrategy(t, to, rand.New(rand.NewSource(2)))
			if err := s.SetState(snap); err == nil {
				t.Errorf("%s accepted a %s snapshot", to, from)
			}
		}
	}
}

// TestStrategyResetRestartsCleanly pins that Reset returns every strategy to
// a state equivalent to fresh construction (the RNG stream aside).
func TestStrategyResetRestartsCleanly(t *testing.T) {
	walk := victimWalk(11, 60)
	for _, spec := range conformanceSpecs() {
		t.Run(spec, func(t *testing.T) {
			fresh := buildStrategy(t, spec, rand.New(rand.NewSource(8))).State()
			s := buildStrategy(t, spec, rand.New(rand.NewSource(8)))
			for _, ch := range walk {
				observe(t, s, ch)
			}
			s.Reset()
			if got := s.State(); !reflect.DeepEqual(got, fresh) {
				t.Fatalf("Reset state != fresh state:\ngot  %+v\nwant %+v", got, fresh)
			}
		})
	}
}

// TestStrategyStepNoAllocs is the zoo-wide benchmark guard: at steady state,
// no strategy's Step may allocate.
func TestStrategyStepNoAllocs(t *testing.T) {
	walk := victimWalk(21, 200)
	for _, spec := range conformanceSpecs() {
		t.Run(spec, func(t *testing.T) {
			s := buildStrategy(t, spec, rand.New(rand.NewSource(6)))
			// Prime past any lazily grown buffers.
			for _, ch := range walk {
				observe(t, s, ch)
			}
			i := 0
			avg := testing.AllocsPerRun(1000, func() {
				if _, _, err := s.Step(walk[i%len(walk)]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if avg != 0 {
				t.Fatalf("Step allocates %.1f times per call at steady state", avg)
			}
		})
	}
}

// BenchmarkStrategyStep measures every registered strategy's Step; the
// 0 allocs/op expectation is enforced by TestStrategyStepNoAllocs.
func BenchmarkStrategyStep(b *testing.B) {
	for _, spec := range conformanceSpecs() {
		b.Run(spec, func(b *testing.B) {
			s := buildStrategy(b, spec, rand.New(rand.NewSource(10)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Step(i % 16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
