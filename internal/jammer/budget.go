package jammer

import "fmt"

// KindBudget is the Budget strategy kind.
const KindBudget = "budget"

// Budget is an energy-budgeted wrapper composable over any Strategy: the
// wrapped attacker decides *where* to jam, the wrapper decides *whether* the
// battery allows it. Energy accrues as a credit of `duty` units per slot,
// capped at `burst` (the battery size, also the initial charge); transmitting
// for one slot costs one unit. With duty=1 the wrapper is transparent; with
// duty=0.25 the attacker jams at most a quarter of the slots, saving charge
// while its inner strategy is off-target and spending it in bursts once
// locked on.
//
// The inner strategy always steps, even in slots the budget silences, so its
// learning/sweeping state and RNG draws are identical to an unconstrained
// run — the wrapper only gates emission.
//
// Not safe for concurrent use.
type Budget struct {
	inner Strategy
	duty  float64 // energy income per slot, in (0,1]
	burst int     // battery capacity in slot-transmissions (>= 1)

	credit float64 // current charge, in [0,burst]
}

// NewBudget wraps inner with a duty-cycle energy budget.
func NewBudget(inner Strategy, duty float64, burst int) (*Budget, error) {
	if inner == nil {
		return nil, fmt.Errorf("jammer: budget inner strategy must not be nil")
	}
	if duty <= 0 || duty > 1 {
		return nil, fmt.Errorf("jammer: budget duty %v out of range (0,1]", duty)
	}
	if burst < 1 || burst > maxBudgetBurst {
		return nil, fmt.Errorf("jammer: budget burst %d out of range [1,%d]", burst, maxBudgetBurst)
	}
	return &Budget{inner: inner, duty: duty, burst: burst, credit: float64(burst)}, nil
}

// Kind implements Strategy.
func (b *Budget) Kind() string { return KindBudget }

// Inner returns the wrapped strategy.
func (b *Budget) Inner() Strategy { return b.inner }

// Focus implements Strategy, delegating to the wrapped attacker: the budget
// changes when energy is spent, not where it is aimed.
func (b *Budget) Focus() (block int, ok bool) { return b.inner.Focus() }

// Reset implements Strategy: full battery, fresh inner attacker.
func (b *Budget) Reset() {
	b.inner.Reset()
	b.credit = float64(b.burst)
}

// Step implements Strategy. The inner strategy steps unconditionally (keeping
// its state and RNG draws identical to an unconstrained run); its jamming
// decision is then emitted only if at least one full unit of charge is
// available.
func (b *Budget) Step(victimChannel int) (jammed bool, power float64, err error) {
	b.credit += b.duty
	if max := float64(b.burst); b.credit > max {
		b.credit = max
	}
	jammed, power, err = b.inner.Step(victimChannel)
	if err != nil {
		return false, 0, err
	}
	if !jammed {
		return false, 0, nil
	}
	if b.credit < 1 {
		return false, 0, nil
	}
	b.credit--
	return true, power, nil
}

// State implements Strategy. Layout: Floats = [credit]; Inner = the wrapped
// strategy's snapshot.
func (b *Budget) State() State {
	in := b.inner.State()
	return State{Kind: KindBudget, Floats: []float64{b.credit}, Inner: &in}
}

// SetState implements Strategy.
func (b *Budget) SetState(st State) error {
	if err := checkKind(st, KindBudget); err != nil {
		return err
	}
	if len(st.Floats) != 1 {
		return fmt.Errorf("jammer: budget state needs 1 float, got %d", len(st.Floats))
	}
	credit := st.Floats[0]
	if credit < 0 || credit > float64(b.burst) || credit != credit {
		return fmt.Errorf("jammer: budget credit %v out of range [0,%d]", credit, b.burst)
	}
	if st.Inner == nil {
		return fmt.Errorf("jammer: budget state missing inner strategy state")
	}
	if err := b.inner.SetState(*st.Inner); err != nil {
		return err
	}
	b.credit = credit
	return nil
}
