package jammer

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestParseSpecCanonical(t *testing.T) {
	tests := []struct{ in, want string }{
		{"", "sweep"},
		{"sweep", "sweep"},
		{" sweep ", "sweep"},
		{"reactive", "reactive:delay=1,miss=0,hold=0"},
		{"reactive:delay=2", "reactive:delay=2,miss=0,hold=0"},
		{"reactive:hold=3,delay=0,miss=0.20", "reactive:delay=0,miss=0.2,hold=3"},
		{"reactive: delay = 2 , miss = 0.1 ", "reactive:delay=2,miss=0.1,hold=0"},
		{"adaptive", "adaptive:alpha=0.1,explore=0.05"},
		{"adaptive:explore=0,alpha=0.5", "adaptive:alpha=0.5,explore=0"},
		{"budget", "budget:duty=0.5,burst=1,over=(sweep)"},
		{"budget:over=(reactive:delay=2),duty=0.25", "budget:duty=0.25,burst=1,over=(reactive:delay=2,miss=0,hold=0)"},
		{"budget:over=(budget:over=(adaptive))", "budget:duty=0.5,burst=1,over=(budget:duty=0.5,burst=1,over=(adaptive:alpha=0.1,explore=0.05))"},
	}
	for _, tt := range tests {
		got, err := Canonical(tt.in)
		if err != nil {
			t.Errorf("Canonical(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Canonical(%q) = %q, want %q", tt.in, got, tt.want)
		}
		// The canonical form is a fixed point.
		again, err := Canonical(got)
		if err != nil {
			t.Errorf("Canonical(%q): %v", got, err)
			continue
		}
		if again != got {
			t.Errorf("canonical form not a fixed point: %q -> %q", got, again)
		}
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	tests := []struct{ name, in string }{
		{"unknown kind", "pulse"},
		{"empty params", "reactive:"},
		{"blank params", "reactive:  "},
		{"bare param", "reactive:delay"},
		{"empty key", "reactive:=2"},
		{"empty value", "reactive:delay="},
		{"unknown key", "reactive:speed=2"},
		{"sweep param", "sweep:delay=1"},
		{"wrong kind key", "adaptive:delay=1"},
		{"duplicate key", "reactive:delay=1,delay=2"},
		{"non-integer", "reactive:delay=1.5"},
		{"non-number", "adaptive:alpha=fast"},
		{"nan", "adaptive:alpha=NaN"},
		{"inf", "adaptive:alpha=1e300"},
		{"delay negative", "reactive:delay=-1"},
		{"delay too big", "reactive:delay=100000"},
		{"miss one", "reactive:miss=1"},
		{"hold too big", "reactive:hold=2000000"},
		{"alpha zero", "adaptive:alpha=0"},
		{"alpha above one", "adaptive:alpha=1.5"},
		{"explore one", "adaptive:explore=1"},
		{"duty zero", "budget:duty=0"},
		{"duty above one", "budget:duty=2"},
		{"burst zero", "budget:burst=0"},
		{"burst too big", "budget:burst=2000000"},
		{"over not parenthesized", "budget:over=sweep"},
		{"over unbalanced open", "budget:over=(sweep"},
		{"over unbalanced close", "budget:over=sweep)"},
		{"over inner malformed", "budget:over=(pulse)"},
		{"too deep", "budget:over=(budget:over=(budget:over=(budget:over=(sweep))))"},
		{"too long", "reactive:delay=1," + strings.Repeat(" ", maxSpecLen) + "miss=0"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if sp, err := ParseSpec(tt.in); err == nil {
				t.Fatalf("ParseSpec(%q) accepted: %+v", tt.in, sp)
			}
			// The package constructor surfaces the same rejection.
			if _, err := New(tt.in, 16, 4, conformancePowers, ModeMax, rand.New(rand.NewSource(1))); err == nil {
				t.Fatalf("New(%q) accepted a malformed spec", tt.in)
			}
		})
	}
}

// TestSpecSemanticEquality pins the canonical-string contract the cache keys
// rely on: differently written but semantically equal specs canonicalize to
// byte-equal strings, and semantically different specs never collide.
func TestSpecSemanticEquality(t *testing.T) {
	equal := [][2]string{
		{"", "sweep"},
		{"reactive", "reactive:delay=1"},
		{"reactive:miss=0.1,delay=2", "reactive:delay=2,miss=0.10"},
		{"budget", "budget:duty=0.5,burst=1,over=(sweep)"},
	}
	for _, pair := range equal {
		a, err := Canonical(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := Canonical(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("Canonical(%q)=%q != Canonical(%q)=%q", pair[0], a, pair[1], b)
		}
	}

	distinct := conformanceSpecs()
	seen := make(map[string]string, len(distinct))
	for _, s := range distinct {
		c, err := Canonical(s)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[c]; ok {
			t.Errorf("specs %q and %q collide on canonical %q", prev, s, c)
		}
		seen[c] = s
	}
}

func TestGenerateScenariosDeterministic(t *testing.T) {
	ss := ScenarioSpec{Seed: 42, Count: 12}
	a, err := GenerateScenarios(ss)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateScenarios(ss)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal ScenarioSpecs generated different scenario lists")
	}
	c, err := GenerateScenarios(ScenarioSpec{Seed: 43, Count: 12})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical scenario lists")
	}
}

func TestGenerateScenariosRoundRobinAndValid(t *testing.T) {
	scs, err := GenerateScenarios(ScenarioSpec{Seed: 7, Count: 10})
	if err != nil {
		t.Fatal(err)
	}
	kinds := Kinds()
	perKind := make(map[string]int)
	for i, sc := range scs {
		wantKind := kinds[i%len(kinds)]
		if sc.Spec.Kind != wantKind {
			t.Errorf("scenario %d kind %q, want round-robin %q", i, sc.Spec.Kind, wantKind)
		}
		perKind[sc.Spec.Kind]++
		wantLabel := wantKind + "#" + string(rune('0'+perKind[wantKind]))
		if sc.Label != wantLabel {
			t.Errorf("scenario %d label %q, want %q", i, sc.Label, wantLabel)
		}
		if sc.SlotPhase < 0 || sc.SlotPhase >= 4 {
			t.Errorf("scenario %d SlotPhase %d out of [0,4)", i, sc.SlotPhase)
		}
		// Every sampled spec round-trips through the grammar and builds.
		canon := sc.Spec.String()
		if got, err := Canonical(canon); err != nil || got != canon {
			t.Errorf("scenario %d spec %q does not round-trip: %q, %v", i, canon, got, err)
		}
		if _, err := sc.Spec.New(16, 4, conformancePowers, ModeMax, rand.New(rand.NewSource(1))); err != nil {
			t.Errorf("scenario %d spec %q does not build: %v", i, canon, err)
		}
	}
}

func TestGenerateScenariosValidation(t *testing.T) {
	if _, err := GenerateScenarios(ScenarioSpec{Seed: 1, Count: 0}); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := GenerateScenarios(ScenarioSpec{Seed: 1, Count: maxScenarioCount + 1}); err == nil {
		t.Error("count beyond the cap accepted")
	}
	if _, err := GenerateScenarios(ScenarioSpec{Seed: 1, Count: 2, Kinds: []string{"pulse"}}); err == nil {
		t.Error("unknown kind accepted")
	}
	only, err := GenerateScenarios(ScenarioSpec{Seed: 1, Count: 6, Kinds: []string{KindReactive}})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range only {
		if sc.Spec.Kind != KindReactive {
			t.Errorf("restricted generation produced kind %q", sc.Spec.Kind)
		}
	}
}
