package jammer

import (
	"fmt"
	"math/rand"
)

// maxScenarioCount bounds a single generation request.
const maxScenarioCount = 64

// ScenarioSpec configures the seedable scenario generator: how many attacker
// scenarios to sample, from which strategy kinds, under which seed. The
// generator is deterministic — equal specs produce equal scenario lists.
type ScenarioSpec struct {
	// Seed drives all sampling.
	Seed int64
	// Count is the number of scenarios to generate, in [1,64].
	Count int
	// Kinds restricts sampling to a subset of Kinds(); empty means all
	// registered kinds. Kinds are assigned round-robin, so any Count >=
	// len(Kinds) covers every kind at least once.
	Kinds []string
}

// Scenario is one sampled attacker: a strategy spec plus the placement knobs
// the field engine uses to position the jammer in time.
type Scenario struct {
	// Label is a short stable name for tables and plots, e.g. "reactive#2".
	Label string
	// Spec is the sampled strategy configuration.
	Spec Spec
	// SlotPhase is a sampled jammer clock phase in [0,4) for consumers
	// that position the attacker in time (e.g. field scenarios where the
	// attacker powers up mid-run). The slot-level matchup experiment does
	// not consume it: its environment steps victim and jammer in lockstep.
	SlotPhase int
}

// GenerateScenarios samples Count attacker scenarios. Strategy kinds are
// assigned round-robin (guaranteeing coverage before repetition); parameters
// are drawn from small per-kind palettes so canonical spec strings stay
// short, stable and human-readable.
func GenerateScenarios(ss ScenarioSpec) ([]Scenario, error) {
	if ss.Count < 1 || ss.Count > maxScenarioCount {
		return nil, fmt.Errorf("jammer: scenario count %d out of range [1,%d]", ss.Count, maxScenarioCount)
	}
	kinds := ss.Kinds
	if len(kinds) == 0 {
		kinds = Kinds()
	}
	for _, k := range kinds {
		if _, err := defaultSpec(k); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(ss.Seed))
	out := make([]Scenario, 0, ss.Count)
	perKind := make(map[string]int, len(kinds))
	for i := 0; i < ss.Count; i++ {
		kind := kinds[i%len(kinds)]
		sp := sampleSpec(kind, rng)
		perKind[kind]++
		out = append(out, Scenario{
			Label:     fmt.Sprintf("%s#%d", kind, perKind[kind]),
			Spec:      sp,
			SlotPhase: rng.Intn(4),
		})
	}
	return out, nil
}

// Parameter palettes for sampled scenarios. Values are chosen to span the
// interesting regimes (instant vs. laggy sensing, greedy vs. exploring
// learners, tight vs. loose batteries) while keeping canonical strings short.
var (
	reactiveDelays  = []int{0, 1, 2, 4}
	reactiveMisses  = []float64{0, 0.1, 0.2}
	reactiveHolds   = []int{0, 1, 3}
	adaptiveAlphas  = []float64{0.05, 0.1, 0.2, 0.5}
	adaptiveExplors = []float64{0, 0.05, 0.1}
	budgetDuties    = []float64{0.25, 0.5, 0.75}
	budgetBursts    = []int{1, 2, 4}
)

func sampleSpec(kind string, rng *rand.Rand) Spec {
	switch kind {
	case KindReactive:
		return Spec{
			Kind:  KindReactive,
			Delay: reactiveDelays[rng.Intn(len(reactiveDelays))],
			Miss:  reactiveMisses[rng.Intn(len(reactiveMisses))],
			Hold:  reactiveHolds[rng.Intn(len(reactiveHolds))],
		}
	case KindAdaptive:
		return Spec{
			Kind:    KindAdaptive,
			Alpha:   adaptiveAlphas[rng.Intn(len(adaptiveAlphas))],
			Explore: adaptiveExplors[rng.Intn(len(adaptiveExplors))],
		}
	case KindBudget:
		inner := Spec{Kind: KindSweep}
		switch rng.Intn(3) {
		case 1:
			inner = Spec{Kind: KindReactive, Delay: DefaultReactiveDelay}
		case 2:
			inner = Spec{Kind: KindAdaptive, Alpha: DefaultAdaptiveAlpha, Explore: DefaultAdaptiveExpl}
		}
		return Spec{
			Kind:  KindBudget,
			Duty:  budgetDuties[rng.Intn(len(budgetDuties))],
			Burst: budgetBursts[rng.Intn(len(budgetBursts))],
			Inner: &inner,
		}
	default:
		return Spec{Kind: KindSweep}
	}
}
