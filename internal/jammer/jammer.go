// Package jammer models cross-technology attackers against a ZigBee victim.
// The paper's jammer (§II-C) is a Wi-Fi device that sweeps the 16 ZigBee
// channels in blocks of m consecutive channels per time slot (m=4 for EmuBee,
// giving a 4-slot sweep cycle), locks onto the victim's channel block once it
// senses the victim, jams with a mode-dependent power level, and resumes
// sweeping when the victim leaves. The package generalizes that attacker into
// a pluggable Strategy zoo — sweep, reactive, learning/adaptive and
// energy-budgeted jammers — selected by a canonical spec string (see
// ParseSpec) and sampled into mixed scenarios by GenerateScenarios.
package jammer

import (
	"fmt"
	"math/rand"
)

// PowerMode selects how the jammer picks its per-slot power level (§II-C1).
type PowerMode int

// Jammer power modes.
const (
	// ModeMax is the high-performance mode: always the largest level.
	ModeMax PowerMode = iota + 1
	// ModeRandom is the hidden mode: a uniformly random level, trading
	// jamming strength for stealth.
	ModeRandom
)

// String implements fmt.Stringer.
func (m PowerMode) String() string {
	switch m {
	case ModeMax:
		return "max"
	case ModeRandom:
		return "random"
	default:
		return fmt.Sprintf("PowerMode(%d)", int(m))
	}
}

// KindSweep is the Sweeper's Strategy kind.
const KindSweep = "sweep"

// Sweeper is the paper's time-slotted frequency-sweeping jammer. It is not
// safe for concurrent use.
type Sweeper struct {
	geom
	emitter

	remaining []int // blocks not yet scanned in the current cycle
	locked    bool
	lockBlock int
}

// NewSweeper builds a jammer over `channels` channels scanning `width`
// consecutive channels per slot with the given power levels.
func NewSweeper(channels, width int, powers []float64, mode PowerMode, rng *rand.Rand) (*Sweeper, error) {
	g, err := newGeom(channels, width)
	if err != nil {
		return nil, err
	}
	em, err := newEmitter(powers, mode, rng)
	if err != nil {
		return nil, err
	}
	s := &Sweeper{geom: g, emitter: em}
	s.refill()
	return s, nil
}

// Kind implements Strategy.
func (s *Sweeper) Kind() string { return KindSweep }

// Locked reports whether the jammer is currently locked onto a block.
func (s *Sweeper) Locked() bool { return s.locked }

// LockedBlock returns the block the jammer is locked onto; ok is false when
// the jammer is sweeping.
func (s *Sweeper) LockedBlock() (block int, ok bool) {
	if !s.locked {
		return 0, false
	}
	return s.lockBlock, true
}

// Focus implements Strategy: the locked block, when locked.
func (s *Sweeper) Focus() (block int, ok bool) { return s.LockedBlock() }

// Reset returns the sweeper to the beginning of a fresh cycle.
func (s *Sweeper) Reset() {
	s.locked = false
	s.lockBlock = 0
	s.refill()
}

func (s *Sweeper) refill() {
	s.remaining = s.remaining[:0]
	for b := 0; b < s.blocks; b++ {
		s.remaining = append(s.remaining, b)
	}
}

// popRandomBlock removes and returns a uniformly random unscanned block,
// refilling the cycle when exhausted.
func (s *Sweeper) popRandomBlock() int {
	if len(s.remaining) == 0 {
		s.refill()
	}
	i := s.rng.Intn(len(s.remaining))
	b := s.remaining[i]
	s.remaining[i] = s.remaining[len(s.remaining)-1]
	s.remaining = s.remaining[:len(s.remaining)-1]
	return b
}

// Power draws the jamming power for one slot according to the mode. The
// ModeMax level is precomputed at construction (see emitter), so a jammed
// slot no longer rescans the power table.
func (s *Sweeper) Power() float64 { return s.emit() }

// MaxPower returns the largest configured power level.
func (s *Sweeper) MaxPower() float64 { return s.maxPower }

// State implements Strategy. Layout: Ints = [locked, lockBlock,
// remaining...]. The sweeper's RNG is shared with (and captured by) its
// owner, so the state here is only the sweep-cycle progress and lock status.
func (s *Sweeper) State() State {
	ints := make([]int64, 0, 2+len(s.remaining))
	ints = append(ints, boolInt(s.locked), int64(s.lockBlock))
	for _, b := range s.remaining {
		ints = append(ints, int64(b))
	}
	return State{Kind: KindSweep, Ints: ints}
}

// SetState implements Strategy, restoring a snapshot taken with State.
func (s *Sweeper) SetState(st State) error {
	if err := checkKind(st, KindSweep); err != nil {
		return err
	}
	if len(st.Ints) < 2 {
		return fmt.Errorf("jammer: sweep state needs >= 2 ints, got %d", len(st.Ints))
	}
	locked, lockBlock, rem := st.Ints[0], st.Ints[1], st.Ints[2:]
	if locked != 0 && locked != 1 {
		return fmt.Errorf("jammer: sweep lock flag %d must be 0 or 1", locked)
	}
	if len(rem) > s.blocks {
		return fmt.Errorf("jammer: state has %d remaining blocks, sweeper has %d", len(rem), s.blocks)
	}
	for _, b := range rem {
		if b < 0 || b >= int64(s.blocks) {
			return fmt.Errorf("jammer: state block %d out of range [0,%d)", b, s.blocks)
		}
	}
	if locked == 1 && (lockBlock < 0 || lockBlock >= int64(s.blocks)) {
		return fmt.Errorf("jammer: locked block %d out of range [0,%d)", lockBlock, s.blocks)
	}
	s.remaining = s.remaining[:0]
	for _, b := range rem {
		s.remaining = append(s.remaining, int(b))
	}
	s.locked = locked == 1
	s.lockBlock = int(lockBlock)
	return nil
}

// Step advances the jammer by one time slot given the channel the victim
// transmits on this slot. It reports whether the victim's channel is inside
// the jammed block this slot and, if so, the jamming power used.
//
// Behaviour per §II-C2: a locked jammer keeps jamming its block while the
// victim stays there. When it notices (by monitoring at the slot start)
// that the victim left, it spends that slot returning to the sweep — the
// monitoring slot scans nothing — and restarts a fresh sweep cycle from the
// next slot, since its pre-lock scan information is stale.
func (s *Sweeper) Step(victimChannel int) (jammed bool, power float64, err error) {
	victimBlock, err := s.BlockOf(victimChannel)
	if err != nil {
		return false, 0, err
	}
	if s.locked {
		if victimBlock == s.lockBlock {
			return true, s.emit(), nil
		}
		// Victim escaped: the jammer spends this slot detecting the
		// departure and restarts its sweep next slot.
		s.locked = false
		s.refill()
		return false, 0, nil
	}
	scanned := s.popRandomBlock()
	if scanned == victimBlock {
		s.locked = true
		s.lockBlock = scanned
		return true, s.emit(), nil
	}
	return false, 0, nil
}
