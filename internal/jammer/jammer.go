// Package jammer models the paper's cross-technology jammer (§II-C): a
// Wi-Fi device that sweeps the 16 ZigBee channels in blocks of m consecutive
// channels per time slot (m=4 for EmuBee, giving a 4-slot sweep cycle),
// locks onto the victim's channel block once it senses the victim, jams with
// a mode-dependent power level, and resumes sweeping when the victim leaves.
package jammer

import (
	"fmt"
	"math/rand"
)

// PowerMode selects how the jammer picks its per-slot power level (§II-C1).
type PowerMode int

// Jammer power modes.
const (
	// ModeMax is the high-performance mode: always the largest level.
	ModeMax PowerMode = iota + 1
	// ModeRandom is the hidden mode: a uniformly random level, trading
	// jamming strength for stealth.
	ModeRandom
)

// String implements fmt.Stringer.
func (m PowerMode) String() string {
	switch m {
	case ModeMax:
		return "max"
	case ModeRandom:
		return "random"
	default:
		return fmt.Sprintf("PowerMode(%d)", int(m))
	}
}

// Sweeper is the time-slotted frequency-sweeping jammer. It is not safe for
// concurrent use.
type Sweeper struct {
	channels int
	width    int
	blocks   int
	powers   []float64
	mode     PowerMode
	rng      *rand.Rand

	remaining []int // blocks not yet scanned in the current cycle
	locked    bool
	lockBlock int
}

// NewSweeper builds a jammer over `channels` channels scanning `width`
// consecutive channels per slot with the given power levels.
func NewSweeper(channels, width int, powers []float64, mode PowerMode, rng *rand.Rand) (*Sweeper, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("jammer: channels %d must be positive", channels)
	}
	if width <= 0 || width > channels {
		return nil, fmt.Errorf("jammer: sweep width %d out of range [1,%d]", width, channels)
	}
	if len(powers) == 0 {
		return nil, fmt.Errorf("jammer: at least one power level required")
	}
	if mode != ModeMax && mode != ModeRandom {
		return nil, fmt.Errorf("jammer: unknown power mode %d", mode)
	}
	if rng == nil {
		return nil, fmt.Errorf("jammer: rng must not be nil")
	}
	ps := make([]float64, len(powers))
	copy(ps, powers)
	s := &Sweeper{
		channels: channels,
		width:    width,
		blocks:   (channels + width - 1) / width,
		powers:   ps,
		mode:     mode,
		rng:      rng,
	}
	s.refill()
	return s, nil
}

// Blocks returns the number of channel blocks, i.e. the sweep cycle length
// ceil(K/m).
func (s *Sweeper) Blocks() int { return s.blocks }

// BlockOf returns the block index covering the channel.
func (s *Sweeper) BlockOf(channel int) (int, error) {
	if channel < 0 || channel >= s.channels {
		return 0, fmt.Errorf("jammer: channel %d out of range [0,%d)", channel, s.channels)
	}
	return channel / s.width, nil
}

// Locked reports whether the jammer is currently locked onto a block.
func (s *Sweeper) Locked() bool { return s.locked }

// LockedBlock returns the block the jammer is locked onto; ok is false when
// the jammer is sweeping.
func (s *Sweeper) LockedBlock() (block int, ok bool) {
	if !s.locked {
		return 0, false
	}
	return s.lockBlock, true
}

// Reset returns the sweeper to the beginning of a fresh cycle.
func (s *Sweeper) Reset() {
	s.locked = false
	s.refill()
}

func (s *Sweeper) refill() {
	s.remaining = s.remaining[:0]
	for b := 0; b < s.blocks; b++ {
		s.remaining = append(s.remaining, b)
	}
}

// popRandomBlock removes and returns a uniformly random unscanned block,
// refilling the cycle when exhausted.
func (s *Sweeper) popRandomBlock() int {
	if len(s.remaining) == 0 {
		s.refill()
	}
	i := s.rng.Intn(len(s.remaining))
	b := s.remaining[i]
	s.remaining[i] = s.remaining[len(s.remaining)-1]
	s.remaining = s.remaining[:len(s.remaining)-1]
	return b
}

// Power draws the jamming power for one slot according to the mode.
func (s *Sweeper) Power() float64 {
	switch s.mode {
	case ModeRandom:
		return s.powers[s.rng.Intn(len(s.powers))]
	default:
		best := s.powers[0]
		for _, p := range s.powers[1:] {
			if p > best {
				best = p
			}
		}
		return best
	}
}

// MaxPower returns the largest configured power level.
func (s *Sweeper) MaxPower() float64 {
	best := s.powers[0]
	for _, p := range s.powers[1:] {
		if p > best {
			best = p
		}
	}
	return best
}

// SweeperState is a serializable snapshot of a Sweeper's mutable state. The
// sweeper's RNG is shared with (and captured by) its owner, so the state here
// is only the sweep-cycle progress and lock status.
type SweeperState struct {
	// Remaining are the blocks not yet scanned in the current cycle.
	Remaining []int
	// Locked / LockBlock mirror the lock status.
	Locked    bool
	LockBlock int
}

// State snapshots the sweeper for checkpointing.
func (s *Sweeper) State() SweeperState {
	return SweeperState{
		Remaining: append([]int(nil), s.remaining...),
		Locked:    s.locked,
		LockBlock: s.lockBlock,
	}
}

// SetState restores a snapshot taken with State.
func (s *Sweeper) SetState(st SweeperState) error {
	if len(st.Remaining) > s.blocks {
		return fmt.Errorf("jammer: state has %d remaining blocks, sweeper has %d", len(st.Remaining), s.blocks)
	}
	for _, b := range st.Remaining {
		if b < 0 || b >= s.blocks {
			return fmt.Errorf("jammer: state block %d out of range [0,%d)", b, s.blocks)
		}
	}
	if st.Locked && (st.LockBlock < 0 || st.LockBlock >= s.blocks) {
		return fmt.Errorf("jammer: locked block %d out of range [0,%d)", st.LockBlock, s.blocks)
	}
	s.remaining = append(s.remaining[:0], st.Remaining...)
	s.locked = st.Locked
	s.lockBlock = st.LockBlock
	return nil
}

// Step advances the jammer by one time slot given the channel the victim
// transmits on this slot. It reports whether the victim's channel is inside
// the jammed block this slot and, if so, the jamming power used.
//
// Behaviour per §II-C2: a locked jammer keeps jamming its block while the
// victim stays there. When it notices (by monitoring at the slot start)
// that the victim left, it spends that slot returning to the sweep — the
// monitoring slot scans nothing — and restarts a fresh sweep cycle from the
// next slot, since its pre-lock scan information is stale.
func (s *Sweeper) Step(victimChannel int) (jammed bool, power float64, err error) {
	victimBlock, err := s.BlockOf(victimChannel)
	if err != nil {
		return false, 0, err
	}
	if s.locked {
		if victimBlock == s.lockBlock {
			return true, s.Power(), nil
		}
		// Victim escaped: the jammer spends this slot detecting the
		// departure and restarts its sweep next slot.
		s.locked = false
		s.refill()
		return false, 0, nil
	}
	scanned := s.popRandomBlock()
	if scanned == victimBlock {
		s.locked = true
		s.lockBlock = scanned
		return true, s.Power(), nil
	}
	return false, 0, nil
}
