package jammer

import (
	"math"
	"math/rand"
	"testing"
)

func newTestSweeper(t *testing.T, mode PowerMode, seed int64) *Sweeper {
	t.Helper()
	powers := []float64{11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	s, err := NewSweeper(16, 4, powers, mode, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSweeperValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	powers := []float64{20}
	tests := []struct {
		name     string
		channels int
		width    int
		powers   []float64
		mode     PowerMode
		rng      *rand.Rand
	}{
		{"zero channels", 0, 1, powers, ModeMax, rng},
		{"zero width", 16, 0, powers, ModeMax, rng},
		{"width too big", 16, 17, powers, ModeMax, rng},
		{"no powers", 16, 4, nil, ModeMax, rng},
		{"bad mode", 16, 4, powers, PowerMode(0), rng},
		{"nil rng", 16, 4, powers, ModeMax, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSweeper(tt.channels, tt.width, tt.powers, tt.mode, tt.rng); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestBlocksAndBlockOf(t *testing.T) {
	s := newTestSweeper(t, ModeMax, 2)
	if s.Blocks() != 4 {
		t.Fatalf("Blocks = %d, want 4 (16 channels / 4 width)", s.Blocks())
	}
	tests := []struct{ ch, want int }{
		{0, 0}, {3, 0}, {4, 1}, {7, 1}, {12, 3}, {15, 3},
	}
	for _, tt := range tests {
		got, err := s.BlockOf(tt.ch)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Fatalf("BlockOf(%d) = %d, want %d", tt.ch, got, tt.want)
		}
	}
	if _, err := s.BlockOf(-1); err == nil {
		t.Fatal("expected error")
	}
	if _, err := s.BlockOf(16); err == nil {
		t.Fatal("expected error")
	}
}

func TestUnevenBlocks(t *testing.T) {
	s, err := NewSweeper(10, 4, []float64{20}, ModeMax, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != 3 {
		t.Fatalf("Blocks = %d, want ceil(10/4)=3", s.Blocks())
	}
	if b, _ := s.BlockOf(9); b != 2 {
		t.Fatalf("BlockOf(9) = %d, want 2", b)
	}
}

func TestSweepFindsStaticVictimWithinCycle(t *testing.T) {
	// A victim that never hops is found within one full sweep cycle.
	for seed := int64(0); seed < 30; seed++ {
		s := newTestSweeper(t, ModeMax, seed)
		found := false
		for slot := 0; slot < s.Blocks(); slot++ {
			jammed, power, err := s.Step(5)
			if err != nil {
				t.Fatal(err)
			}
			if jammed {
				if power != 20 {
					t.Fatalf("max mode power = %v, want 20", power)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("seed %d: victim not found within a sweep cycle", seed)
		}
	}
}

func TestLockPersistsWhileVictimStays(t *testing.T) {
	s := newTestSweeper(t, ModeMax, 4)
	// Drive until locked.
	for {
		jammed, _, err := s.Step(5)
		if err != nil {
			t.Fatal(err)
		}
		if jammed {
			break
		}
	}
	if !s.Locked() {
		t.Fatal("sweeper should be locked after jamming")
	}
	// Victim stays: jammed every following slot.
	for i := 0; i < 10; i++ {
		jammed, _, err := s.Step(6) // channel 6 is in the same block as 5
		if err != nil {
			t.Fatal(err)
		}
		if !jammed {
			t.Fatal("locked jammer must keep jamming the block")
		}
	}
}

func TestUnlockOnVictimEscape(t *testing.T) {
	s := newTestSweeper(t, ModeMax, 5)
	for {
		jammed, _, err := s.Step(5)
		if err != nil {
			t.Fatal(err)
		}
		if jammed {
			break
		}
	}
	// Victim hops to a different block (channel 12, block 3).
	if _, _, err := s.Step(12); err != nil {
		t.Fatal(err)
	}
	// The jammer either re-found the victim (relock) or resumed its
	// sweep; in both cases it must eventually find channel 12 again.
	found := false
	for slot := 0; slot < 2*s.Blocks(); slot++ {
		jammed, _, err := s.Step(12)
		if err != nil {
			t.Fatal(err)
		}
		if jammed {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("jammer never re-found the victim after escape")
	}
}

func TestDiscoveryHazardMatchesPaperEq6(t *testing.T) {
	// Eq. (6): for a victim static since the cycle start, the per-slot
	// discovery probability after n safe slots is 1/(S-n) with S=4.
	const trials = 30000
	counts := make([]int, 5) // first-discovery slot 1..4
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < trials; trial++ {
		s, err := NewSweeper(16, 4, []float64{20}, ModeMax, rng)
		if err != nil {
			t.Fatal(err)
		}
		for slot := 1; slot <= 4; slot++ {
			jammed, _, err := s.Step(9)
			if err != nil {
				t.Fatal(err)
			}
			if jammed {
				counts[slot]++
				break
			}
		}
	}
	// Uniform discovery over the 4 slots of the cycle: hazard 1/(4-n).
	survivors := trials
	for slot := 1; slot <= 4; slot++ {
		hazard := float64(counts[slot]) / float64(survivors)
		want := 1.0 / float64(4-(slot-1))
		if math.Abs(hazard-want) > 0.02 {
			t.Fatalf("slot %d: hazard %.3f, want %.3f", slot, hazard, want)
		}
		survivors -= counts[slot]
	}
	if survivors != 0 {
		t.Fatalf("%d trials never discovered the victim", survivors)
	}
}

func TestPowerModes(t *testing.T) {
	sMax := newTestSweeper(t, ModeMax, 7)
	for i := 0; i < 50; i++ {
		if got := sMax.Power(); got != 20 {
			t.Fatalf("max mode power = %v", got)
		}
	}
	sRand := newTestSweeper(t, ModeRandom, 8)
	seen := make(map[float64]bool)
	for i := 0; i < 500; i++ {
		p := sRand.Power()
		if p < 11 || p > 20 {
			t.Fatalf("random power %v out of range", p)
		}
		seen[p] = true
	}
	if len(seen) < 8 {
		t.Fatalf("random mode only produced %d distinct levels", len(seen))
	}
	if sMax.MaxPower() != 20 || sRand.MaxPower() != 20 {
		t.Fatal("MaxPower should be 20")
	}
}

func TestPowerModeString(t *testing.T) {
	if ModeMax.String() != "max" || ModeRandom.String() != "random" {
		t.Fatal("mode strings wrong")
	}
	if PowerMode(9).String() != "PowerMode(9)" {
		t.Fatal("unknown mode string wrong")
	}
}

func TestResetClearsLock(t *testing.T) {
	s := newTestSweeper(t, ModeMax, 9)
	for {
		jammed, _, err := s.Step(5)
		if err != nil {
			t.Fatal(err)
		}
		if jammed {
			break
		}
	}
	s.Reset()
	if s.Locked() {
		t.Fatal("Reset must clear the lock")
	}
}

func BenchmarkSweeperStep(b *testing.B) {
	s, err := NewSweeper(16, 4, []float64{11, 20}, ModeRandom, rand.New(rand.NewSource(10)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Step(i % 16); err != nil {
			b.Fatal(err)
		}
	}
}
