package jammer

import (
	"math/rand"
	"testing"
)

// FuzzJammerSpec fuzzes the spec/scenario grammar end to end: any input must
// either be rejected with an error — never a panic, and with work bounded by
// the length/depth caps — or parse into a spec whose canonical rendering is a
// grammar fixed point and whose strategy constructs successfully. The
// committed corpus (testdata/fuzz/FuzzJammerSpec) replays on every ordinary
// `go test` run; scripts/check.sh smokes the target and the nightly CI
// campaign runs it long-form, promoting new finds via
// scripts/promote-corpus.sh.
func FuzzJammerSpec(f *testing.F) {
	for _, s := range []string{
		"",
		"sweep",
		"reactive",
		"reactive:delay=2,miss=0.1,hold=3",
		"adaptive:alpha=0.2,explore=0.1",
		"budget:duty=0.25,burst=4,over=(reactive:delay=1)",
		"budget:over=(budget:over=(adaptive))",
		"reactive:delay=1,delay=2",
		"budget:over=(sweep",
		"sweep:delay=1",
		"adaptive:alpha=NaN",
		"reactive:delay=9999999999999999999",
		"budget:over=(budget:over=(budget:over=(budget:over=(sweep))))",
		" reactive : delay = 2 ",
		"reactive:miss=5e-1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			return // rejected without panicking: fine
		}
		canon := sp.String()
		if len(canon) > maxSpecLen {
			t.Fatalf("canonical form of %q is %d bytes, beyond the %d parse cap", s, len(canon), maxSpecLen)
		}
		sp2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not reparse: %v", canon, s, err)
		}
		if again := sp2.String(); again != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", s, canon, again)
		}
		// A spec that parses must construct: validate mirrors the
		// constructors exactly.
		if _, err := sp.New(16, 4, []float64{11, 20}, ModeMax, rand.New(rand.NewSource(1))); err != nil {
			t.Fatalf("accepted spec %q does not construct: %v", s, err)
		}
	})
}
