package jammer

import (
	"math/rand"
	"testing"
)

// Property tests for the Sweeper's §II-C sweep-cycle invariants, pinned by
// observing State() around every Step of random victim walks and checking
// each transition against a brute-force reference of the contract:
//
//  1. Each sweep cycle scans every block exactly once before the cycle
//     refills: the remaining-set only ever shrinks by the one block scanned,
//     never repeats a block within a cycle, and refills exactly when empty.
//  2. A lock can only follow a scan hit: the locked flag rises only on a slot
//     whose scanned block equals the victim's block.
//  3. The escape-detection slot never scans: when a locked sweeper notices
//     the victim left, that slot removes nothing from the (freshly refilled)
//     cycle and jams nothing.

// sweepSnap decodes a Sweeper State for the reference checker.
type sweepSnap struct {
	locked    bool
	lockBlock int
	remaining map[int]bool
	count     int
}

func decodeSweep(t *testing.T, st State) sweepSnap {
	t.Helper()
	if st.Kind != KindSweep || len(st.Ints) < 2 {
		t.Fatalf("bad sweep state %+v", st)
	}
	rem := make(map[int]bool, len(st.Ints)-2)
	for _, b := range st.Ints[2:] {
		if rem[int(b)] {
			t.Fatalf("remaining set repeats block %d: %+v", b, st)
		}
		rem[int(b)] = true
	}
	return sweepSnap{
		locked:    st.Ints[0] == 1,
		lockBlock: int(st.Ints[1]),
		remaining: rem,
		count:     len(st.Ints) - 2,
	}
}

// scannedBlock derives which block a sweeping slot scanned from the
// before/after remaining sets, accounting for the refill when the cycle was
// exhausted entering the slot.
func scannedBlock(t *testing.T, before, after sweepSnap, blocks int) int {
	t.Helper()
	pool := before.remaining
	if before.count == 0 {
		// Cycle exhausted: the slot refills to all blocks, then scans one.
		pool = make(map[int]bool, blocks)
		for b := 0; b < blocks; b++ {
			pool[b] = true
		}
	}
	if after.count != len(pool)-1 {
		t.Fatalf("scan slot removed %d blocks, want exactly 1 (before %d, after %d)",
			len(pool)-after.count, len(pool), after.count)
	}
	scanned := -1
	for b := range pool {
		if !after.remaining[b] {
			if scanned != -1 {
				t.Fatalf("scan slot removed two blocks: %d and %d", scanned, b)
			}
			scanned = b
		}
	}
	if scanned == -1 {
		t.Fatal("scan slot removed no block")
	}
	return scanned
}

func TestSweeperCycleInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := newTestSweeper(t, ModeMax, seed)
		blocks := s.Blocks()
		walk := victimWalk(seed+1000, 600)

		// Per-cycle scan tally for invariant 1.
		scannedThisCycle := make(map[int]bool)

		before := decodeSweep(t, s.State())
		for slot, ch := range walk {
			jammed, _, err := s.Step(ch)
			if err != nil {
				t.Fatal(err)
			}
			after := decodeSweep(t, s.State())
			victimBlock, err := s.BlockOf(ch)
			if err != nil {
				t.Fatal(err)
			}

			switch {
			case before.locked && victimBlock == before.lockBlock:
				// Locked and the victim stayed: jam, touch nothing.
				if !jammed {
					t.Fatalf("seed %d slot %d: locked on victim block but not jammed", seed, slot)
				}
				if !after.locked || after.count != before.count {
					t.Fatalf("seed %d slot %d: locked jam slot changed sweep state", seed, slot)
				}
			case before.locked:
				// Invariant 3: the escape-detection slot scans nothing — it
				// unlocks and the next cycle starts full.
				if jammed {
					t.Fatalf("seed %d slot %d: jammed on the escape-detection slot", seed, slot)
				}
				if after.locked {
					t.Fatalf("seed %d slot %d: still locked after victim escaped", seed, slot)
				}
				if after.count != blocks {
					t.Fatalf("seed %d slot %d: escape slot left %d/%d blocks — it must not scan",
						seed, slot, after.count, blocks)
				}
				scannedThisCycle = make(map[int]bool)
			default:
				scanned := scannedBlock(t, before, after, blocks)
				if before.count == 0 {
					// A fresh cycle began this slot.
					scannedThisCycle = make(map[int]bool)
				}
				// Invariant 1: no block scans twice within a cycle.
				if scannedThisCycle[scanned] {
					t.Fatalf("seed %d slot %d: block %d scanned twice in one cycle", seed, slot, scanned)
				}
				scannedThisCycle[scanned] = true
				// Invariant 2: lock if and only if the scan hit the victim.
				if jammed != (scanned == victimBlock) {
					t.Fatalf("seed %d slot %d: jammed=%v but scanned %d, victim in %d",
						seed, slot, jammed, scanned, victimBlock)
				}
				if after.locked != jammed {
					t.Fatalf("seed %d slot %d: locked=%v after jammed=%v scan", seed, slot, after.locked, jammed)
				}
				if jammed && after.lockBlock != victimBlock {
					t.Fatalf("seed %d slot %d: locked to %d, victim in %d", seed, slot, after.lockBlock, victimBlock)
				}
			}
			before = after
		}
	}
}

// TestSweeperCycleScansAllBlocksAgainstStaticVictim is the coverage form of
// the exactly-once property: against a static victim, the pre-lock scans of
// the first cycle are all distinct, all miss the victim's block (or the walk
// would have locked), and the lock lands within one full cycle — so the
// cycle as a whole scans every block exactly once.
func TestSweeperCycleScansAllBlocksAgainstStaticVictim(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, err := NewSweeper(20, 4, []float64{20}, ModeMax, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		blocks := s.Blocks()
		seen := make(map[int]bool)
		for slot := 0; slot < blocks; slot++ {
			before := decodeSweep(t, s.State())
			jammed, _, err := s.Step(0)
			if err != nil {
				t.Fatal(err)
			}
			after := decodeSweep(t, s.State())
			b := scannedBlock(t, before, after, blocks)
			if seen[b] {
				t.Fatalf("seed %d: block %d scanned twice in one cycle", seed, b)
			}
			seen[b] = true
			if jammed != (b == 0) {
				t.Fatalf("seed %d slot %d: jammed=%v scanning block %d against a block-0 victim",
					seed, slot, jammed, b)
			}
			if jammed {
				break
			}
		}
		if !s.Locked() {
			t.Fatalf("seed %d: static victim not found within one full cycle", seed)
		}
	}
}
