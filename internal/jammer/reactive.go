package jammer

import (
	"fmt"
	"math/rand"
)

// KindReactive is the Reactive strategy kind.
const KindReactive = "reactive"

// Reactive is a sensing-triggered jammer: it does not sweep, it listens. Each
// slot its energy detector observes the victim's current channel block; an
// observation becomes actionable only after a sensing/turnaround delay, and
// each detection commits the jammer to the detected block for a hold window.
// This is the attacker class the deception defenses of "Borrowing Arrows with
// Thatched Boats" (arXiv 1912.11170) are built against: it never wastes
// energy off-channel, but a victim that hops faster than the sensing delay
// always stays ahead of it.
//
// Not safe for concurrent use.
type Reactive struct {
	geom
	emitter

	delay int     // slots between sensing and acting (>= 0)
	miss  float64 // per-slot probability a sensing fails, in [0,1)
	hold  int     // extra slots a detection keeps jamming the block (>= 0)

	pipe      []int // sensing pipeline, len == delay; -1 marks a missed slot
	holdBlock int
	holdLeft  int
}

// NewReactive builds a reactive jammer. delay is the sensing-to-action lag in
// slots (0 = an idealized instant follower), miss the per-slot sensing
// failure probability, hold the number of extra slots a detection keeps the
// jammer on the detected block.
func NewReactive(channels, width int, powers []float64, mode PowerMode, rng *rand.Rand, delay int, miss float64, hold int) (*Reactive, error) {
	g, err := newGeom(channels, width)
	if err != nil {
		return nil, err
	}
	em, err := newEmitter(powers, mode, rng)
	if err != nil {
		return nil, err
	}
	if delay < 0 || delay > maxReactiveDelay {
		return nil, fmt.Errorf("jammer: reactive delay %d out of range [0,%d]", delay, maxReactiveDelay)
	}
	if miss < 0 || miss >= 1 {
		return nil, fmt.Errorf("jammer: reactive miss %v out of range [0,1)", miss)
	}
	if hold < 0 || hold > maxReactiveHold {
		return nil, fmt.Errorf("jammer: reactive hold %d out of range [0,%d]", hold, maxReactiveHold)
	}
	r := &Reactive{geom: g, emitter: em, delay: delay, miss: miss, hold: hold}
	r.Reset()
	return r, nil
}

// Kind implements Strategy.
func (r *Reactive) Kind() string { return KindReactive }

// Focus implements Strategy: the held block while a detection is active.
func (r *Reactive) Focus() (block int, ok bool) {
	if r.holdLeft <= 0 {
		return 0, false
	}
	return r.holdBlock, true
}

// Reset implements Strategy.
func (r *Reactive) Reset() {
	if cap(r.pipe) < r.delay {
		r.pipe = make([]int, r.delay)
	}
	r.pipe = r.pipe[:r.delay]
	for i := range r.pipe {
		r.pipe[i] = -1
	}
	r.holdBlock = 0
	r.holdLeft = 0
}

// Step implements Strategy. Each slot the detector senses the victim's block
// (failing with probability miss — the only RNG draw, taken only when miss is
// positive so a perfect sensor perturbs no shared stream); the observation
// from delay slots ago, if it was a detection, retargets the jammer and arms
// a hold+1 slot jamming window on that block.
func (r *Reactive) Step(victimChannel int) (jammed bool, power float64, err error) {
	victimBlock, err := r.BlockOf(victimChannel)
	if err != nil {
		return false, 0, err
	}
	obs := victimBlock
	if r.miss > 0 && r.rng.Float64() < r.miss {
		obs = -1
	}
	due := obs
	if r.delay > 0 {
		due = r.pipe[0]
		copy(r.pipe, r.pipe[1:])
		r.pipe[r.delay-1] = obs
	}
	if due >= 0 {
		r.holdBlock = due
		r.holdLeft = r.hold + 1
	}
	if r.holdLeft > 0 {
		r.holdLeft--
		if r.holdBlock == victimBlock {
			return true, r.emit(), nil
		}
	}
	return false, 0, nil
}

// State implements Strategy. Layout: Ints = [holdBlock, holdLeft, pipe...].
func (r *Reactive) State() State {
	ints := make([]int64, 0, 2+len(r.pipe))
	ints = append(ints, int64(r.holdBlock), int64(r.holdLeft))
	for _, b := range r.pipe {
		ints = append(ints, int64(b))
	}
	return State{Kind: KindReactive, Ints: ints}
}

// SetState implements Strategy.
func (r *Reactive) SetState(st State) error {
	if err := checkKind(st, KindReactive); err != nil {
		return err
	}
	if len(st.Ints) != 2+r.delay {
		return fmt.Errorf("jammer: reactive state needs %d ints, got %d", 2+r.delay, len(st.Ints))
	}
	holdBlock, holdLeft, pipe := st.Ints[0], st.Ints[1], st.Ints[2:]
	if holdBlock < 0 || holdBlock >= int64(r.blocks) {
		return fmt.Errorf("jammer: reactive hold block %d out of range [0,%d)", holdBlock, r.blocks)
	}
	if holdLeft < 0 || holdLeft > int64(r.hold)+1 {
		return fmt.Errorf("jammer: reactive hold counter %d out of range [0,%d]", holdLeft, r.hold+1)
	}
	for _, b := range pipe {
		if b < -1 || b >= int64(r.blocks) {
			return fmt.Errorf("jammer: reactive pipeline block %d out of range [-1,%d)", b, r.blocks)
		}
	}
	r.holdBlock = int(holdBlock)
	r.holdLeft = int(holdLeft)
	for i, b := range pipe {
		r.pipe[i] = int(b)
	}
	return nil
}
