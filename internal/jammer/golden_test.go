package jammer

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden traces for one scenario per new attacker: a fixed victim walk
// stepped through the strategy, every slot's outcome recorded. Any change to
// a strategy's decision sequence — RNG draw order, state layout, parameter
// semantics — shows up as a trace diff. Regenerate intentional changes with
//
//	go test ./internal/jammer -run TestGoldenTraces -update
var updateTraces = flag.Bool("update", false, "rewrite golden strategy traces")

// goldenScenarios pins one representative sampled scenario per new kind
// (the sweeper's behaviour is pinned by the §II-C suite in jammer_test.go).
var goldenScenarios = []struct{ name, spec string }{
	{"reactive", "reactive:delay=2,miss=0.1,hold=1"},
	{"adaptive", "adaptive:alpha=0.2,explore=0.05"},
	{"budget", "budget:duty=0.5,burst=2,over=(reactive:delay=1,miss=0,hold=0)"},
}

// traceStrategy renders the canonical trace: one line per slot with the
// victim's channel, the jam outcome and the strategy's focus after the step.
func traceStrategy(t *testing.T, spec string, slots int) string {
	t.Helper()
	s := buildStrategy(t, spec, rand.New(rand.NewSource(31)))
	walk := victimWalk(17, slots)
	var b strings.Builder
	fmt.Fprintf(&b, "spec %s\n", spec)
	for i, ch := range walk {
		jammed, power, err := s.Step(ch)
		if err != nil {
			t.Fatal(err)
		}
		focus, ok := s.Focus()
		if !ok {
			focus = -1
		}
		fmt.Fprintf(&b, "slot=%03d victim=%02d jammed=%t power=%g focus=%d\n",
			i, ch, jammed, power, focus)
	}
	return b.String()
}

func TestGoldenTraces(t *testing.T) {
	for _, sc := range goldenScenarios {
		t.Run(sc.name, func(t *testing.T) {
			got := traceStrategy(t, sc.spec, 120)
			path := filepath.Join("testdata", "golden", sc.name+".trace")
			if *updateTraces {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden trace (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden trace %s.\ngot:\n%s\nwant:\n%s\nRun with -update if the change is intended.",
					sc.spec, path, got, want)
			}
		})
	}
}
