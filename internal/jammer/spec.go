package jammer

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Spec grammar and canonicalization. A jammer spec is a human-writable string
//
//	name[:key=value,...]
//
// selecting a strategy and its parameters, e.g.
//
//	sweep
//	reactive:delay=2,miss=0.1,hold=3
//	adaptive:alpha=0.2,explore=0.1
//	budget:duty=0.25,burst=4,over=(reactive:delay=1)
//
// Omitted parameters take the kind's defaults; the budget wrapper's inner
// strategy is a parenthesized nested spec. ParseSpec rejects malformed input
// with bounded work (length, depth and parameter caps), and Spec.String
// renders the canonical form — all parameters, fixed order, shortest float
// rendering — so that two specs are semantically equal iff their canonical
// strings are byte-equal. Cache keys, scheme keys and the dist wire format
// all key on the canonical form.

// Spec limits enforced by ParseSpec.
const (
	maxSpecLen   = 256
	maxSpecDepth = 4
)

// Default parameters per kind.
const (
	DefaultReactiveDelay  = 1
	DefaultReactiveMiss   = 0.0
	DefaultReactiveHold   = 0
	DefaultAdaptiveAlpha  = 0.1
	DefaultAdaptiveExpl   = 0.05
	DefaultBudgetDuty     = 0.5
	DefaultBudgetBurst    = 1
)

// Spec is a parsed jammer strategy specification. Only the fields of the
// selected Kind are meaningful.
type Spec struct {
	Kind string

	// Reactive parameters.
	Delay int
	Miss  float64
	Hold  int

	// Adaptive parameters.
	Alpha   float64
	Explore float64

	// Budget parameters. Inner is the wrapped strategy's spec.
	Duty  float64
	Burst int
	Inner *Spec
}

// Kinds returns the registered strategy kinds in canonical order.
func Kinds() []string {
	return []string{KindSweep, KindReactive, KindAdaptive, KindBudget}
}

// ParseSpec parses and validates a jammer spec string. The empty string means
// the default attacker, the paper's sweeper.
func ParseSpec(s string) (Spec, error) {
	if len(s) > maxSpecLen {
		return Spec{}, fmt.Errorf("jammer: spec longer than %d bytes", maxSpecLen)
	}
	return parseSpec(s, 1)
}

// Canonical parses a spec string and returns its canonical rendering.
func Canonical(s string) (string, error) {
	sp, err := ParseSpec(s)
	if err != nil {
		return "", err
	}
	return sp.String(), nil
}

func parseSpec(s string, depth int) (Spec, error) {
	if depth > maxSpecDepth {
		return Spec{}, fmt.Errorf("jammer: spec nested deeper than %d", maxSpecDepth)
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{Kind: KindSweep}, nil
	}
	name, params := s, ""
	hasParams := false
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, params, hasParams = strings.TrimSpace(s[:i]), s[i+1:], true
	}
	sp, err := defaultSpec(name)
	if err != nil {
		return Spec{}, err
	}
	if hasParams {
		if strings.TrimSpace(params) == "" {
			return Spec{}, fmt.Errorf("jammer: spec %q has an empty parameter list", s)
		}
		fields, err := splitTop(params)
		if err != nil {
			return Spec{}, err
		}
		seen := make(map[string]bool, len(fields))
		for _, f := range fields {
			key, val, err := splitParam(f)
			if err != nil {
				return Spec{}, err
			}
			if seen[key] {
				return Spec{}, fmt.Errorf("jammer: duplicate parameter %q", key)
			}
			seen[key] = true
			if err := sp.setParam(key, val, depth); err != nil {
				return Spec{}, err
			}
		}
	}
	if err := sp.validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// defaultSpec returns the named kind with its default parameters.
func defaultSpec(name string) (Spec, error) {
	switch name {
	case KindSweep:
		return Spec{Kind: KindSweep}, nil
	case KindReactive:
		return Spec{Kind: KindReactive, Delay: DefaultReactiveDelay, Miss: DefaultReactiveMiss, Hold: DefaultReactiveHold}, nil
	case KindAdaptive:
		return Spec{Kind: KindAdaptive, Alpha: DefaultAdaptiveAlpha, Explore: DefaultAdaptiveExpl}, nil
	case KindBudget:
		return Spec{Kind: KindBudget, Duty: DefaultBudgetDuty, Burst: DefaultBudgetBurst, Inner: &Spec{Kind: KindSweep}}, nil
	default:
		return Spec{}, fmt.Errorf("jammer: unknown strategy kind %q (known: %s)", name, strings.Join(Kinds(), ", "))
	}
}

// splitTop splits a parameter list on commas at parenthesis depth zero.
func splitTop(s string) ([]string, error) {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("jammer: unbalanced ')' in spec parameters %q", s)
			}
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("jammer: unbalanced '(' in spec parameters %q", s)
	}
	return append(parts, s[start:]), nil
}

func splitParam(f string) (key, val string, err error) {
	i := strings.IndexByte(f, '=')
	if i < 0 {
		return "", "", fmt.Errorf("jammer: parameter %q is not key=value", strings.TrimSpace(f))
	}
	key = strings.TrimSpace(f[:i])
	val = strings.TrimSpace(f[i+1:])
	if key == "" || val == "" {
		return "", "", fmt.Errorf("jammer: parameter %q is not key=value", strings.TrimSpace(f))
	}
	return key, val, nil
}

func (sp *Spec) setParam(key, val string, depth int) error {
	switch sp.Kind {
	case KindSweep:
		return fmt.Errorf("jammer: sweep takes no parameters, got %q", key)
	case KindReactive:
		switch key {
		case "delay":
			return parseInt(key, val, &sp.Delay)
		case "miss":
			return parseFloat(key, val, &sp.Miss)
		case "hold":
			return parseInt(key, val, &sp.Hold)
		}
	case KindAdaptive:
		switch key {
		case "alpha":
			return parseFloat(key, val, &sp.Alpha)
		case "explore":
			return parseFloat(key, val, &sp.Explore)
		}
	case KindBudget:
		switch key {
		case "duty":
			return parseFloat(key, val, &sp.Duty)
		case "burst":
			return parseInt(key, val, &sp.Burst)
		case "over":
			if len(val) < 2 || val[0] != '(' || val[len(val)-1] != ')' {
				return fmt.Errorf("jammer: budget over value %q must be a parenthesized spec", val)
			}
			inner, err := parseSpec(val[1:len(val)-1], depth+1)
			if err != nil {
				return err
			}
			sp.Inner = &inner
			return nil
		}
	}
	return fmt.Errorf("jammer: unknown parameter %q for strategy %q", key, sp.Kind)
}

func parseInt(key, val string, out *int) error {
	n, err := strconv.Atoi(val)
	if err != nil {
		return fmt.Errorf("jammer: parameter %s=%q is not an integer", key, val)
	}
	*out = n
	return nil
}

func parseFloat(key, val string, out *float64) error {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || f != f || f > 1e18 || f < -1e18 {
		return fmt.Errorf("jammer: parameter %s=%q is not a finite number", key, val)
	}
	*out = f
	return nil
}

// validate checks parameter ranges, mirroring the constructors so a spec that
// parses always constructs.
func (sp Spec) validate() error {
	switch sp.Kind {
	case KindSweep:
		return nil
	case KindReactive:
		if sp.Delay < 0 || sp.Delay > maxReactiveDelay {
			return fmt.Errorf("jammer: reactive delay %d out of range [0,%d]", sp.Delay, maxReactiveDelay)
		}
		if sp.Miss < 0 || sp.Miss >= 1 {
			return fmt.Errorf("jammer: reactive miss %v out of range [0,1)", sp.Miss)
		}
		if sp.Hold < 0 || sp.Hold > maxReactiveHold {
			return fmt.Errorf("jammer: reactive hold %d out of range [0,%d]", sp.Hold, maxReactiveHold)
		}
		return nil
	case KindAdaptive:
		if sp.Alpha <= 0 || sp.Alpha > 1 {
			return fmt.Errorf("jammer: adaptive alpha %v out of range (0,1]", sp.Alpha)
		}
		if sp.Explore < 0 || sp.Explore >= 1 {
			return fmt.Errorf("jammer: adaptive explore %v out of range [0,1)", sp.Explore)
		}
		return nil
	case KindBudget:
		if sp.Duty <= 0 || sp.Duty > 1 {
			return fmt.Errorf("jammer: budget duty %v out of range (0,1]", sp.Duty)
		}
		if sp.Burst < 1 || sp.Burst > maxBudgetBurst {
			return fmt.Errorf("jammer: budget burst %d out of range [1,%d]", sp.Burst, maxBudgetBurst)
		}
		if sp.Inner == nil {
			return fmt.Errorf("jammer: budget spec missing inner strategy")
		}
		return sp.Inner.validate()
	default:
		return fmt.Errorf("jammer: unknown strategy kind %q", sp.Kind)
	}
}

// String renders the canonical form: all parameters, fixed order, shortest
// float rendering. Two valid specs are semantically equal iff their canonical
// strings are byte-equal; the default attacker canonicalizes to "sweep".
func (sp Spec) String() string {
	switch sp.Kind {
	case "", KindSweep:
		return KindSweep
	case KindReactive:
		return fmt.Sprintf("reactive:delay=%d,miss=%s,hold=%d", sp.Delay, ftoa(sp.Miss), sp.Hold)
	case KindAdaptive:
		return fmt.Sprintf("adaptive:alpha=%s,explore=%s", ftoa(sp.Alpha), ftoa(sp.Explore))
	case KindBudget:
		inner := Spec{Kind: KindSweep}
		if sp.Inner != nil {
			inner = *sp.Inner
		}
		return fmt.Sprintf("budget:duty=%s,burst=%d,over=(%s)", ftoa(sp.Duty), sp.Burst, inner.String())
	default:
		return fmt.Sprintf("invalid(%s)", sp.Kind)
	}
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// New builds the strategy the spec describes over the given channel geometry,
// power table and shared RNG. Construction draws nothing from the RNG.
func (sp Spec) New(channels, width int, powers []float64, mode PowerMode, rng *rand.Rand) (Strategy, error) {
	switch sp.Kind {
	case "", KindSweep:
		return NewSweeper(channels, width, powers, mode, rng)
	case KindReactive:
		return NewReactive(channels, width, powers, mode, rng, sp.Delay, sp.Miss, sp.Hold)
	case KindAdaptive:
		return NewAdaptive(channels, width, powers, mode, rng, sp.Alpha, sp.Explore)
	case KindBudget:
		inner := Spec{Kind: KindSweep}
		if sp.Inner != nil {
			inner = *sp.Inner
		}
		in, err := inner.New(channels, width, powers, mode, rng)
		if err != nil {
			return nil, err
		}
		return NewBudget(in, sp.Duty, sp.Burst)
	default:
		return nil, fmt.Errorf("jammer: unknown strategy kind %q", sp.Kind)
	}
}

// New parses a spec string and builds the described strategy. The empty
// string builds the default sweeper.
func New(spec string, channels, width int, powers []float64, mode PowerMode, rng *rand.Rand) (Strategy, error) {
	sp, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return sp.New(channels, width, powers, mode, rng)
}
