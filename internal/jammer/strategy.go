package jammer

import (
	"fmt"
	"math/rand"
)

// Strategy is a pluggable attacker: a time-slotted jammer that reacts to the
// victim's current channel each slot. The sweeping EmuBee (§II-C) is one
// Strategy; the zoo adds reactive, learning/adaptive and energy-budgeted
// attackers on the same contract.
//
// The contract every Strategy must hold, because environments, the field
// engine, checkpoint/resume and the distributed harness all rely on it:
//
//   - Construction draws nothing from the shared RNG, so the owner's draw
//     order after construction is independent of the strategy kind.
//   - Step is deterministic given the RNG stream: equal states plus equal
//     victim walks produce bit-identical (jammed, power) sequences.
//   - State/SetState round-trip mid-run: restoring a snapshot into a fresh
//     same-config strategy (with the owner's RNG also restored) resumes
//     bit-identically.
//   - Step performs no heap allocation at steady state.
//
// Strategies are not safe for concurrent use.
type Strategy interface {
	// Kind returns the strategy's registry name ("sweep", "reactive", ...).
	Kind() string
	// Step advances the jammer by one time slot given the channel the victim
	// transmits on this slot. It reports whether the victim's channel is
	// inside the jammed block this slot and, if so, the jamming power used.
	Step(victimChannel int) (jammed bool, power float64, err error)
	// Focus returns the block the jammer is currently committed to jamming,
	// if any — the generalization of the sweeper's lock that environments use
	// to attribute useful hops (a hop away from the focused block that ends
	// in success). It must not draw from the RNG.
	Focus() (block int, ok bool)
	// State snapshots the strategy's mutable state for checkpointing. The
	// RNG is shared with (and captured by) the owner, so it is not part of
	// the state.
	State() State
	// SetState restores a snapshot taken with State on a same-config
	// strategy. A snapshot of a different kind or with out-of-range values
	// is rejected.
	SetState(State) error
	// Reset returns the strategy to its initial (pre-first-slot) state.
	Reset()
}

// State is a serializable snapshot of any Strategy's mutable state: the kind
// tag plus flat integer/float payloads whose layout is private to the
// strategy, and an optional inner state for wrapper strategies (the
// energy-budget wrapper snapshots its wrapped attacker here). Keeping the
// payload generic lets the CTTC training checkpoint and env.State serialize
// every attacker through one codec.
type State struct {
	// Kind is the owning strategy's Kind(); SetState rejects mismatches.
	Kind string
	// Ints and Floats are the strategy-private payloads.
	Ints   []int64
	Floats []float64
	// Inner is the wrapped strategy's state for composite strategies; nil
	// otherwise.
	Inner *State
}

// clone deep-copies the state so snapshots cannot alias live strategy
// buffers.
func (s State) clone() State {
	out := State{Kind: s.Kind}
	if s.Ints != nil {
		out.Ints = append([]int64(nil), s.Ints...)
	}
	if s.Floats != nil {
		out.Floats = append([]float64(nil), s.Floats...)
	}
	if s.Inner != nil {
		in := s.Inner.clone()
		out.Inner = &in
	}
	return out
}

// geom is the channel-block geometry shared by every strategy.
type geom struct {
	channels int
	width    int
	blocks   int
}

func newGeom(channels, width int) (geom, error) {
	if channels <= 0 {
		return geom{}, fmt.Errorf("jammer: channels %d must be positive", channels)
	}
	if width <= 0 || width > channels {
		return geom{}, fmt.Errorf("jammer: sweep width %d out of range [1,%d]", width, channels)
	}
	return geom{channels: channels, width: width, blocks: (channels + width - 1) / width}, nil
}

// Blocks returns the number of channel blocks, i.e. ceil(K/m).
func (g geom) Blocks() int { return g.blocks }

// BlockOf returns the block index covering the channel.
func (g geom) BlockOf(channel int) (int, error) {
	if channel < 0 || channel >= g.channels {
		return 0, fmt.Errorf("jammer: channel %d out of range [0,%d)", channel, g.channels)
	}
	return channel / g.width, nil
}

// BlockIndex returns the block covering channel in a channels/width geometry,
// for callers (environments, field clusters) that need the victim-side view
// of the block layout without holding a strategy.
func BlockIndex(channels, width, channel int) (int, error) {
	g, err := newGeom(channels, width)
	if err != nil {
		return 0, err
	}
	return g.BlockOf(channel)
}

// emitter draws the per-slot jamming power according to the power mode. The
// ModeMax level is hoisted to construction so a jammed slot costs no scan
// over the power table.
type emitter struct {
	powers   []float64
	mode     PowerMode
	maxPower float64
	rng      *rand.Rand
}

func newEmitter(powers []float64, mode PowerMode, rng *rand.Rand) (emitter, error) {
	if len(powers) == 0 {
		return emitter{}, fmt.Errorf("jammer: at least one power level required")
	}
	if mode != ModeMax && mode != ModeRandom {
		return emitter{}, fmt.Errorf("jammer: unknown power mode %d", mode)
	}
	if rng == nil {
		return emitter{}, fmt.Errorf("jammer: rng must not be nil")
	}
	ps := make([]float64, len(powers))
	copy(ps, powers)
	best := ps[0]
	for _, p := range ps[1:] {
		if p > best {
			best = p
		}
	}
	return emitter{powers: ps, mode: mode, maxPower: best, rng: rng}, nil
}

// emit draws the jamming power for one jammed slot.
func (e *emitter) emit() float64 {
	if e.mode == ModeRandom {
		return e.powers[e.rng.Intn(len(e.powers))]
	}
	return e.maxPower
}

// Parameter caps. They bound the memory a parsed spec can pin (the reactive
// sensing pipeline is delay ints long) so a hostile spec string cannot demand
// unbounded allocation, and they keep snapshot payload sizes sane.
const (
	maxReactiveDelay = 1024
	maxReactiveHold  = 1 << 20
	maxBudgetBurst   = 1 << 20
)

// checkKind validates a snapshot's kind tag.
func checkKind(st State, kind string) error {
	if st.Kind != kind {
		return fmt.Errorf("jammer: state kind %q does not match strategy %q", st.Kind, kind)
	}
	return nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
