// Package atomicfile writes files crash-safely: content goes to a temporary
// file in the destination directory, is flushed to stable storage, and is
// then renamed over the destination. A reader (or a process restarted after
// a crash mid-write) sees either the old complete file or the new complete
// file, never a torn mixture — the property the checkpoint/resume machinery
// relies on.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by fill.
func WriteFile(path string, perm os.FileMode, fill func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := fill(tmp); err != nil {
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("atomicfile: %w", err)
	}
	return nil
}
