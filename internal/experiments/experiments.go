// Package experiments regenerates every table and figure of the paper's
// evaluation (§II Fig. 2b, §IV Figs. 6-11, Table I, and the §IV-B training
// statistics). Each experiment is a registered runner keyed by the figure
// id; runners return structured results with the paper's reference values
// attached so callers can print paper-vs-measured comparisons.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
)

// ErrUnknownExperiment is returned (wrapped) by Run and Describe for ids
// that are not in the registry; test with errors.Is.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment id")

// Engine selects which implementation of the paper's "RL FH" scheme drives
// the anti-jamming sweeps.
type Engine int

// Engines.
const (
	// EngineMDP plays the exact optimal policy of the solved MDP — the
	// fast default; the learned DQN approximates exactly this policy.
	EngineMDP Engine = iota + 1
	// EngineDQN trains a fresh DQN per sweep point, like the paper.
	// Slower but fully faithful.
	EngineDQN
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineMDP:
		return "mdp"
	case EngineDQN:
		return "dqn"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Options tune experiment cost and engines.
type Options struct {
	// Slots is the slot-level evaluation length (paper: 20000).
	Slots int
	// Engine selects the RL FH implementation for sweeps.
	Engine Engine
	// TrainSlots is the per-point DQN training budget (EngineDQN only).
	TrainSlots int
	// Fast32 evaluates EngineDQN sweep points on the float32+FMA inference
	// fast path instead of the exact float64 engine. Training always stays
	// exact — only the post-training evaluation forward passes change — and
	// results are equivalent to the exact engine only within the fast path's
	// action-agreement budget, NOT bit-identical: leave this off for golden
	// traces and conformance runs. The engine choice is part of every cache
	// and distributed-work key, so fast and exact results never mix.
	// Ignored (normalized to false) for engines with no DQN inference.
	Fast32 bool
	// FieldSlots is the field-simulator run length in Tx slots.
	FieldSlots int
	// Trials is the Monte-Carlo budget for PHY experiments.
	Trials int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the worker pool used to fan independent sweep /
	// field-simulator points out across cores. <= 0 means all cores
	// (runtime.GOMAXPROCS(0)); 1 forces the serial path. Results are
	// bit-for-bit identical for every worker count: each point derives
	// its randomness from its own config seed and results are collected
	// into slices indexed by point.
	Workers int
	// Cache memoizes per-point training and evaluation. Passing one
	// NewCache() value to several Run calls makes panels that revisit the
	// same (config, engine, budget, seed) points — e.g. the 20 panels of
	// Figs. 6-8, whose 4 sweeps each back 5 metric panels, plus table1 —
	// train and evaluate each unique point exactly once. Results are
	// bit-identical with and without sharing; keys include every budget
	// field, so one cache may serve runs with different options. nil gets
	// a private per-run cache (no cross-run reuse).
	Cache *Cache
	// Context bounds waits on cache entries another goroutine (or, in
	// distributed runs, another process) claimed but has not filled yet.
	// When it ends, waiters return its error instead of blocking forever —
	// the safety net against a dead claimant wedging a run. nil means
	// context.Background() (wait indefinitely). It is not part of any
	// memoization key.
	Context context.Context
}

// DefaultOptions mirrors the paper's experiment scale.
func DefaultOptions() Options {
	return Options{
		Slots:      20000,
		Engine:     EngineMDP,
		TrainSlots: 30000,
		FieldSlots: 400,
		Trials:     400,
		Seed:       1,
		Workers:    runtime.GOMAXPROCS(0),
	}
}

// quick reduces budgets for benchmarks and smoke tests.
func (o Options) withFloor() Options {
	if o.Slots <= 0 {
		o.Slots = 2000
	}
	if o.TrainSlots <= 0 {
		o.TrainSlots = 8000
	}
	if o.FieldSlots <= 0 {
		o.FieldSlots = 100
	}
	if o.Trials <= 0 {
		o.Trials = 100
	}
	if o.Engine == 0 {
		o.Engine = EngineMDP
	}
	if o.Engine != EngineDQN {
		// Fast32 only changes DQN inference; normalizing it away for other
		// engines keeps their cache keys canonical (one entry per unique
		// computation, regardless of an irrelevant flag).
		o.Fast32 = false
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Cache == nil {
		o.Cache = NewCache()
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	return o
}

// QuickOptions returns a reduced-budget configuration for smoke tests and
// benchmarks.
func QuickOptions() Options {
	return Options{
		Slots:      3000,
		Engine:     EngineMDP,
		TrainSlots: 6000,
		FieldSlots: 250,
		Trials:     120,
		Seed:       1,
		Workers:    runtime.GOMAXPROCS(0),
	}
}

// Series is one named curve of an experiment result.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Result is the structured output of one experiment.
type Result struct {
	// ID is the registry key ("fig6a").
	ID string
	// Title describes the experiment.
	Title string
	// XLabel / YLabel annotate the axes.
	XLabel string
	YLabel string
	// XTicks optionally labels categorical X positions (bar charts).
	XTicks []string
	// Series holds the measured curves.
	Series []Series
	// PaperNote records what the paper reports for this figure, for the
	// paper-vs-measured comparison in EXPERIMENTS.md.
	PaperNote string
}

// Runner produces a Result.
type Runner func(Options) (*Result, error)

// entry pairs a runner with its description. Cache-backed experiments — the
// Figs. 6-8 sweep panels and Table I, whose work all flows through the
// sweep-point Cache — additionally enumerate their point configs, which is
// what internal/dist shards across worker processes.
type entry struct {
	id     string
	desc   string
	runner Runner
	// points enumerates every sweep point (env config + defense) the runner
	// evaluates through the point cache; nil for experiments whose compute
	// is not cache-backed (PHY Monte-Carlo, field simulator, training).
	points func(Options) []Point
	// fields enumerates the field-simulator runs the runner evaluates
	// through the field cache (fig10/fig11/scale); nil otherwise. These are
	// the whole-simulation replica units distributed execution ships.
	fields func(Options) []FieldSpec
}

// registry holds all experiments in presentation order.
var registry = buildRegistry()

func buildRegistry() []entry {
	var es []entry
	add := func(id, desc string, r Runner) {
		es = append(es, entry{id: id, desc: desc, runner: r})
	}
	addSweep := func(id, desc string, sw sweep, m metric) {
		es = append(es, entry{
			id: id, desc: desc,
			runner: sweepRunner(sw, m),
			points: func(o Options) []Point { return asPoints(sweepConfigs(sw, o)) },
		})
	}
	add("fig2b", "PER & throughput vs jamming distance (analytic SINR model)", runFig2b)
	add("fig2b-wave", "PER vs jamming distance (waveform-level Monte-Carlo)", runFig2bWave)
	add("stealth", "stealthiness of jamming signals at the victim receiver (§II-B)", runStealth)
	add("detect", "IDS verdicts per jamming signal (defender's view of §II-B)", runDetect)
	addSweep("fig6a", "success rate of transmission vs L_J", sweepLJ, metricST)
	addSweep("fig6b", "success rate of transmission vs sweep cycle", sweepCycle, metricST)
	addSweep("fig6c", "success rate of transmission vs L_H", sweepLH, metricST)
	addSweep("fig6d", "success rate of transmission vs lower bound of L^T", sweepLp, metricST)
	addSweep("fig7a", "adoption rate of FH vs L_J", sweepLJ, metricAH)
	addSweep("fig7b", "adoption rate of PC vs L_J", sweepLJ, metricAP)
	addSweep("fig7c", "adoption rate of FH vs sweep cycle", sweepCycle, metricAH)
	addSweep("fig7d", "adoption rate of PC vs sweep cycle", sweepCycle, metricAP)
	addSweep("fig7e", "adoption rate of FH vs L_H", sweepLH, metricAH)
	addSweep("fig7f", "adoption rate of PC vs L_H", sweepLH, metricAP)
	addSweep("fig7g", "adoption rate of FH vs lower bound of L^T", sweepLp, metricAH)
	addSweep("fig7h", "adoption rate of PC vs lower bound of L^T", sweepLp, metricAP)
	addSweep("fig8a", "success rate of FH vs L_J", sweepLJ, metricSH)
	addSweep("fig8b", "success rate of PC vs L_J", sweepLJ, metricSP)
	addSweep("fig8c", "success rate of FH vs sweep cycle", sweepCycle, metricSH)
	addSweep("fig8d", "success rate of PC vs sweep cycle", sweepCycle, metricSP)
	addSweep("fig8e", "success rate of FH vs L_H", sweepLH, metricSH)
	addSweep("fig8f", "success rate of PC vs L_H", sweepLH, metricSP)
	addSweep("fig8g", "success rate of FH vs lower bound of L^T", sweepLp, metricSH)
	addSweep("fig8h", "success rate of PC vs lower bound of L^T", sweepLp, metricSP)
	addField := func(id, desc string, r Runner, f func(Options) []FieldSpec) {
		es = append(es, entry{id: id, desc: desc, runner: r, fields: f})
	}
	add("fig9a", "time consumption of typical functions", runFig9a)
	add("fig9b", "FH negotiation time vs network size", runFig9b)
	addField("fig10a", "goodput vs Tx timeslot duration", runFig10a, fig10Specs)
	addField("fig10b", "timeslot utilization vs Tx timeslot duration", runFig10b, fig10Specs)
	addField("fig11a", "goodput by anti-jamming scheme", runFig11a, fig11aSpecs)
	addField("fig11b", "goodput vs jammer timeslot duration", runFig11b, fig11bSpecs)
	addField("scale", "field goodput vs network scale (sharded engine)", runScale, scaleSpecs)
	es = append(es, entry{
		id: "table1", desc: "Table I metrics at the paper's default parameters",
		runner: runTable1,
		points: func(o Options) []Point { return asPoints(table1Configs(o)) },
	})
	es = append(es, entry{
		id: "table1-seeds", desc: "Table I metrics with spread over evaluation seeds",
		runner: runTable1Seeds,
		points: func(o Options) []Point { return asPoints(table1SeedConfigs(o)) },
	})
	es = append(es, entry{
		id: "matchup", desc: "defense scheme ranking across the adversarial jammer zoo",
		runner: runMatchup,
		points: matchupPoints,
	})
	add("train", "DQN training statistics (§IV-B)", runTrain)
	return es
}

// IDs returns all experiment ids in presentation order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// lookup finds the registry entry for an id.
func lookup(id string) (*entry, error) {
	for i := range registry {
		if registry[i].id == id {
			return &registry[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) (string, error) {
	e, err := lookup(id)
	if err != nil {
		return "", err
	}
	return e.desc, nil
}

// Run executes one experiment by id.
func Run(id string, o Options) (*Result, error) {
	o = o.withFloor()
	e, err := lookup(id)
	if err != nil {
		known := strings.Join(IDs(), ", ")
		return nil, fmt.Errorf("%w: %q (known: %s)", ErrUnknownExperiment, id, known)
	}
	res, err := e.runner(o)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", id, err)
	}
	res.ID = id
	return res, nil
}

// Format renders a result as an aligned text table.
func Format(w io.Writer, r *Result) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	if r.PaperNote != "" {
		if _, err := fmt.Fprintf(w, "paper: %s\n", r.PaperNote); err != nil {
			return err
		}
	}
	// Header.
	cols := []string{r.XLabel}
	for _, s := range r.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintf(w, "%s\n", strings.Join(cols, "\t")); err != nil {
		return err
	}
	n := 0
	for _, s := range r.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(r.Series)+1)
		switch {
		case i < len(r.XTicks):
			row = append(row, r.XTicks[i])
		case len(r.Series) > 0 && i < len(r.Series[0].X):
			row = append(row, trimFloat(r.Series[0].X[i]))
		default:
			row = append(row, fmt.Sprintf("%d", i))
		}
		for _, s := range r.Series {
			if i < len(s.Y) {
				row = append(row, trimFloat(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		if _, err := fmt.Fprintf(w, "%s\n", strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders a result as CSV with one row per X position.
func WriteCSV(w io.Writer, r *Result) error {
	cols := []string{"x"}
	for _, s := range r.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	n := 0
	for _, s := range r.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(cols))
		switch {
		case i < len(r.XTicks):
			row = append(row, r.XTicks[i])
		case len(r.Series) > 0 && i < len(r.Series[0].X):
			row = append(row, trimFloat(r.Series[0].X[i]))
		default:
			row = append(row, fmt.Sprintf("%d", i))
		}
		for _, s := range r.Series {
			if i < len(s.Y) {
				row = append(row, trimFloat(s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// sortedKeys returns map keys in sorted order (stable output).
func sortedKeys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
