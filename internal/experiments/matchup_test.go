package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"ctjam/internal/env"
)

// matchupTestOptions keeps the matchup conformance runs cheap: the MDP engine
// needs no training epochs and short evaluations still separate the defenses.
func matchupTestOptions() Options {
	return Options{
		Slots:      400,
		Engine:     EngineMDP,
		TrainSlots: 400,
		Seed:       3,
		Workers:    1,
	}
}

// TestMatchupSerialParallelByteIdentical is the matchup leg of the
// cross-strategy conformance suite: the full defense × attacker grid must
// render byte-for-byte the same ranking table whether the cells are
// evaluated serially or by a worker pool.
func TestMatchupSerialParallelByteIdentical(t *testing.T) {
	serial := matchupTestOptions()
	par := matchupTestOptions()
	par.Workers = 4

	rs, err := Run("matchup", serial)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run("matchup", par)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rp)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("matchup result differs between 1 and 4 workers:\nserial:   %s\nparallel: %s", a, b)
	}
}

// TestMatchupGridShape pins the grid enumeration: defenses-major over the
// sampled scenario roster, every cell on the paper's default environment with
// only seed and jammer spec varying.
func TestMatchupGridShape(t *testing.T) {
	o := matchupTestOptions()
	scs := matchupScenarios(o)
	if len(scs) != matchupScenarioCount {
		t.Fatalf("scenario roster has %d entries, want %d", len(scs), matchupScenarioCount)
	}
	pts := matchupPoints(o)
	if want := len(matchupDefenses) * len(scs); len(pts) != want {
		t.Fatalf("grid has %d points, want %d", len(pts), want)
	}
	for i, p := range pts {
		d := matchupDefenses[i/len(scs)]
		sc := scs[i%len(scs)]
		if p.Defense != d.tag {
			t.Errorf("point %d defense %q, want %q (defenses-major order)", i, p.Defense, d.tag)
		}
		if got, want := p.Config.Jammer, sc.Spec.String(); got != want {
			t.Errorf("point %d jammer %q, want %q", i, got, want)
		}
		if p.Config.Seed != o.Seed {
			t.Errorf("point %d seed %d, want %d", i, p.Config.Seed, o.Seed)
		}
		ref := env.DefaultConfig()
		ref.Seed = o.Seed
		ref.Jammer = p.Config.Jammer
		if got, want := p.Config.Fingerprint(), ref.Fingerprint(); got != want {
			t.Errorf("point %d strays from the default environment: %q != %q", i, got, want)
		}
	}
}

// TestMatchupRankingTable pins the rendered table: one series per defense
// carrying per-scenario ST plus a trailing mean column, sorted best mean
// first.
func TestMatchupRankingTable(t *testing.T) {
	o := matchupTestOptions()
	res, err := Run("matchup", o)
	if err != nil {
		t.Fatal(err)
	}
	n := matchupScenarioCount
	if len(res.XTicks) != n+1 || res.XTicks[n] != "mean" {
		t.Fatalf("xticks %v, want %d scenario labels plus a trailing mean", res.XTicks, n)
	}
	if len(res.Series) != len(matchupDefenses) {
		t.Fatalf("got %d series, want %d", len(res.Series), len(matchupDefenses))
	}
	names := make(map[string]bool)
	for _, d := range matchupDefenses {
		names[d.name] = true
	}
	for i, s := range res.Series {
		if !names[s.Name] {
			t.Errorf("series %d has unknown defense name %q", i, s.Name)
		}
		delete(names, s.Name)
		if len(s.Y) != n+1 {
			t.Fatalf("series %q has %d values, want %d", s.Name, len(s.Y), n+1)
		}
		sum := 0.0
		for _, v := range s.Y[:n] {
			if v < 0 || v > 100 {
				t.Errorf("series %q ST %v out of [0,100]", s.Name, v)
			}
			sum += v
		}
		if got, want := s.Y[n], sum/float64(n); got != want {
			t.Errorf("series %q mean column %v, want %v", s.Name, got, want)
		}
		if i > 0 && res.Series[i-1].Y[n] < s.Y[n] {
			t.Errorf("ranking out of order: %q (mean %v) listed before %q (mean %v)",
				res.Series[i-1].Name, res.Series[i-1].Y[n], s.Name, s.Y[n])
		}
	}
	if len(names) != 0 {
		t.Errorf("defenses missing from the table: %v", names)
	}
	if !strings.Contains(res.PaperNote, "beyond the paper") {
		t.Errorf("matchup result should flag itself as beyond the paper, got note %q", res.PaperNote)
	}
}
