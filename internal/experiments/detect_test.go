package experiments

import (
	"testing"

	"ctjam/internal/ids"
)

// seriesY finds a named series in a result and returns its Y values.
func seriesY(t *testing.T, res *Result, name string) []float64 {
	t.Helper()
	for _, s := range res.Series {
		if s.Name == name {
			return s.Y
		}
	}
	t.Fatalf("result %q has no series %q", res.Title, name)
	return nil
}

// Signal indices of the stealth/detect experiments' XTicks.
const (
	sigEmuBee = 0
	sigZigBee = 1
	sigWiFi   = 2
)

// TestDetectVerdictsPerSignal pins the §II-B conclusion the detect
// experiment exists to demonstrate: a conventional ZigBee jammer is
// positively identified from its packet log, while EmuBee leaves no
// packet-log evidence and is never classified as conventional jamming.
func TestDetectVerdictsPerSignal(t *testing.T) {
	res, err := runDetect(pointOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.XTicks) != 3 || len(res.Series) != 3 {
		t.Fatalf("unexpected result shape: %d ticks, %d series", len(res.XTicks), len(res.Series))
	}
	verdicts := seriesY(t, res, "verdict (1=clean 2=intf 3=conv 4=ctj)")
	evidence := seriesY(t, res, "packet-log evidence")
	phantoms := seriesY(t, res, "phantom syncs")

	if got := ids.Verdict(verdicts[sigZigBee]); got != ids.VerdictConventionalJamming {
		t.Errorf("ZigBee jammer classified %v, want conventional jamming", got)
	}
	if evidence[sigZigBee] == 0 {
		t.Error("ZigBee jammer left no packet-log evidence")
	}
	if got := ids.Verdict(verdicts[sigEmuBee]); got == ids.VerdictConventionalJamming {
		t.Error("EmuBee classified as conventional jamming despite leaving no packet log")
	}
	if evidence[sigEmuBee] != 0 {
		t.Errorf("EmuBee left %v packet-log events, want none", evidence[sigEmuBee])
	}
	if phantoms[sigEmuBee] == 0 {
		t.Error("EmuBee produced no phantom syncs; its busy-without-decoding signature is gone")
	}
}

// TestStealthSignatures pins the receiver-side signatures the stealth
// experiment reports: EmuBee busies the victim's demodulator while logging
// nothing, whereas conventional ZigBee jamming leaves decodable events.
func TestStealthSignatures(t *testing.T) {
	res, err := runStealth(pointOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.XTicks) != 3 || len(res.Series) != 3 {
		t.Fatalf("unexpected result shape: %d ticks, %d series", len(res.XTicks), len(res.Series))
	}
	busy := seriesY(t, res, "busy fraction")
	events := seriesY(t, res, "detectable events")
	phantoms := seriesY(t, res, "phantom syncs")

	if events[sigEmuBee] != 0 {
		t.Errorf("EmuBee produced %v detectable events, want 0", events[sigEmuBee])
	}
	if busy[sigEmuBee] <= 0 {
		t.Error("EmuBee did not occupy the receiver at all")
	}
	if phantoms[sigEmuBee] == 0 {
		t.Error("EmuBee produced no phantom syncs")
	}
	if events[sigZigBee] == 0 {
		t.Error("conventional ZigBee jamming left no detectable events")
	}
	if busy[sigZigBee] <= busy[sigWiFi] {
		t.Errorf("ZigBee frames busy the receiver %.3f <= plain Wi-Fi noise %.3f",
			busy[sigZigBee], busy[sigWiFi])
	}
}
