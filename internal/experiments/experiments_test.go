package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickRun(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != id {
		t.Fatalf("result ID = %q, want %q", res.ID, id)
	}
	if len(res.Series) == 0 {
		t.Fatalf("%s: no series", id)
	}
	return res
}

func seriesByName(t *testing.T, res *Result, name string) Series {
	t.Helper()
	for _, s := range res.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("%s: series %q not found (have %v)", res.ID, name, func() []string {
		var out []string
		for _, s := range res.Series {
			out = append(out, s.Name)
		}
		return out
	}())
	return Series{}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	// Every paper figure panel must be present.
	want := []string{
		"fig2b", "fig2b-wave",
		"fig6a", "fig6b", "fig6c", "fig6d",
		"fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f", "fig7g", "fig7h",
		"fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f", "fig8g", "fig8h",
		"fig9a", "fig9b", "fig10a", "fig10b", "fig11a", "fig11b",
		"table1", "train", "scale",
	}
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("registry missing %s", id)
		}
	}
	if _, err := Describe("fig6a"); err != nil {
		t.Error(err)
	}
	if _, err := Describe("nope"); err == nil {
		t.Error("Describe(nope): expected error")
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("figZZ", QuickOptions()); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestFig2bOrderingAndTrend(t *testing.T) {
	res := quickRun(t, "fig2b")
	emu := seriesByName(t, res, "PER-EmuBee")
	zb := seriesByName(t, res, "PER-ZigBee")
	wf := seriesByName(t, res, "PER-WiFi")
	// Averaged over distances, EmuBee jams hardest, WiFi least.
	avg := func(s Series) float64 {
		var sum float64
		for _, y := range s.Y {
			sum += y
		}
		return sum / float64(len(s.Y))
	}
	if !(avg(emu) >= avg(zb) && avg(zb) >= avg(wf)) {
		t.Fatalf("PER ordering wrong: emu=%.1f zb=%.1f wifi=%.1f", avg(emu), avg(zb), avg(wf))
	}
	// PER decreases with distance for EmuBee (strongest signal).
	if emu.Y[0] < emu.Y[len(emu.Y)-1] {
		t.Fatalf("EmuBee PER should fall with distance: %v", emu.Y)
	}
	// Throughput mirrors PER.
	thr := seriesByName(t, res, "kbps-EmuBee")
	if thr.Y[0] > thr.Y[len(thr.Y)-1] {
		t.Fatalf("EmuBee throughput should rise with distance: %v", thr.Y)
	}
}

func TestFig6aTrend(t *testing.T) {
	res := quickRun(t, "fig6a")
	for _, s := range res.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		// Fig. 6(a): ST ~0 at tiny L_J, around 78% at L_J=100.
		if first > 20 {
			t.Fatalf("%s: ST at L_J=10 is %.1f%%, expected near 0", s.Name, first)
		}
		if last < 60 {
			t.Fatalf("%s: ST at L_J=100 is %.1f%%, expected ~78%%", s.Name, last)
		}
	}
}

func TestFig6bTrend(t *testing.T) {
	res := quickRun(t, "fig6b")
	for _, s := range res.Series {
		if s.Y[len(s.Y)-1] < s.Y[0] {
			t.Fatalf("%s: ST should grow with sweep cycle: %v", s.Name, s.Y)
		}
		if s.Y[len(s.Y)-1] < 80 {
			t.Fatalf("%s: ST at cycle 16 is %.1f%%, expected >80%%", s.Name, s.Y[len(s.Y)-1])
		}
	}
}

func TestFig6dTrend(t *testing.T) {
	res := quickRun(t, "fig6d")
	for _, s := range res.Series {
		last := s.Y[len(s.Y)-1]
		// lb=14 -> powers 14..23 >= jammer max 20 often; random mode
		// reaches ~100%, max mode high.
		if last < 85 {
			t.Fatalf("%s: ST at lb=14 is %.1f%%, expected >85%%", s.Name, last)
		}
	}
}

func TestFig7bModeSplit(t *testing.T) {
	// Fig. 7(b): power control is adopted far more in random mode.
	res := quickRun(t, "fig7b")
	maxMode := seriesByName(t, res, "jam w/ max pwr")
	randMode := seriesByName(t, res, "jam w/ rand pwr")
	var sumMax, sumRand float64
	for i := range maxMode.Y {
		sumMax += maxMode.Y[i]
		sumRand += randMode.Y[i]
	}
	if sumRand <= sumMax {
		t.Fatalf("AP in random mode (%.1f) should exceed max mode (%.1f)", sumRand, sumMax)
	}
}

func TestFig9aMeans(t *testing.T) {
	res := quickRun(t, "fig9a")
	mean := seriesByName(t, res, "mean")
	wants := []float64{9, 0.9, 0.6, 13.1} // ms, per XTicks order
	for i, w := range wants {
		if diff := mean.Y[i] - w; diff > w*0.15 || diff < -w*0.15 {
			t.Fatalf("%s mean %.2f ms deviates from %.2f ms", res.XTicks[i], mean.Y[i], w)
		}
	}
}

func TestFig9bGrowth(t *testing.T) {
	res := quickRun(t, "fig9b")
	mean := seriesByName(t, res, "mean")
	if mean.Y[len(mean.Y)-1] <= mean.Y[0] {
		t.Fatalf("negotiation time should grow with nodes: %v", mean.Y)
	}
}

func TestFig10Trends(t *testing.T) {
	a := quickRun(t, "fig10a")
	g := a.Series[0]
	for i := 1; i < len(g.Y); i++ {
		if g.Y[i] <= g.Y[i-1] {
			t.Fatalf("goodput not increasing: %v", g.Y)
		}
	}
	b := quickRun(t, "fig10b")
	util := seriesByName(t, b, "utilization %")
	if util.Y[0] < 88 || util.Y[0] > 96 {
		t.Fatalf("1s utilization %.2f%% outside paper band", util.Y[0])
	}
	if util.Y[len(util.Y)-1] < util.Y[0] {
		t.Fatalf("utilization should grow: %v", util.Y)
	}
}

func TestFig11aOrdering(t *testing.T) {
	res := quickRun(t, "fig11a")
	g := seriesByName(t, res, "goodput")
	// Order: PSV, Rand, RL, w/o Jx — strictly increasing.
	for i := 1; i < len(g.Y); i++ {
		if g.Y[i] <= g.Y[i-1] {
			t.Fatalf("scheme ordering violated: %v (%v)", g.Y, res.XTicks)
		}
	}
	paper := seriesByName(t, res, "paper")
	if len(paper.Y) != 4 || paper.Y[2] != 431 {
		t.Fatalf("paper reference series wrong: %v", paper.Y)
	}
}

func TestFig11bFastJammerWorst(t *testing.T) {
	res := quickRun(t, "fig11b")
	g := res.Series[0]
	// The 0.5 s jammer must be worse than the aligned 3 s jammer.
	var y05, y3 float64
	for i, x := range g.X {
		switch x {
		case 0.5:
			y05 = g.Y[i]
		case 3:
			y3 = g.Y[i]
		}
	}
	if y05 >= y3 {
		t.Fatalf("fast jammer goodput %.0f should be below aligned %.0f", y05, y3)
	}
}

func TestTable1Values(t *testing.T) {
	res := quickRun(t, "table1")
	if len(res.XTicks) != 5 {
		t.Fatalf("table1 ticks = %v", res.XTicks)
	}
	for _, s := range res.Series {
		if len(s.Y) != 5 {
			t.Fatalf("table1 series %s has %d values", s.Name, len(s.Y))
		}
		if s.Y[0] < 60 {
			t.Fatalf("%s: ST %.1f%% below expectation at defaults", s.Name, s.Y[0])
		}
		for _, v := range s.Y {
			if v < 0 || v > 100 {
				t.Fatalf("%s: rate %v outside [0,100]", s.Name, v)
			}
		}
	}
}

func TestTrainExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment is slow")
	}
	res := quickRun(t, "train")
	m := res.Series[0]
	params := m.Y[1]
	if params < 3000 || params > 30000 {
		t.Fatalf("param count %v far from the paper's 10664", params)
	}
	sizeKB := m.Y[2]
	if sizeKB < 20 || sizeKB > 250 {
		t.Fatalf("model size %v KB implausible", sizeKB)
	}
}

func TestFormatAndCSV(t *testing.T) {
	res := quickRun(t, "fig10a")
	var buf bytes.Buffer
	if err := Format(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig10a") || !strings.Contains(out, "goodput") {
		t.Fatalf("Format output missing fields:\n%s", out)
	}
	buf.Reset()
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // header + 5 slot durations
		t.Fatalf("CSV has %d lines, want 6:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "x,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestEngineString(t *testing.T) {
	if EngineMDP.String() != "mdp" || EngineDQN.String() != "dqn" {
		t.Fatal("engine strings wrong")
	}
	if !strings.Contains(Engine(9).String(), "9") {
		t.Fatal("unknown engine string wrong")
	}
}

func TestOptionsFloor(t *testing.T) {
	var o Options
	o = o.withFloor()
	if o.Slots == 0 || o.Engine == 0 || o.Trials == 0 || o.FieldSlots == 0 || o.TrainSlots == 0 {
		t.Fatalf("withFloor left zero fields: %+v", o)
	}
}

func TestStealthExperiment(t *testing.T) {
	res := quickRun(t, "stealth")
	busy := seriesByName(t, res, "busy fraction")
	events := seriesByName(t, res, "detectable events")
	// Order: EmuBee, ZigBee, WiFi.
	if events.Y[0] != 0 {
		t.Fatalf("EmuBee produced %v detectable events; must be stealthy", events.Y[0])
	}
	if events.Y[1] == 0 {
		t.Fatal("conventional ZigBee jamming left no detectable events")
	}
	if busy.Y[0] < 0.5 {
		t.Fatalf("EmuBee busy fraction %.2f too low to jam", busy.Y[0])
	}
	if busy.Y[2] > busy.Y[0] {
		t.Fatalf("plain WiFi (%.2f) busier than EmuBee (%.2f)", busy.Y[2], busy.Y[0])
	}
}

func TestEngineDQNRunsOneSweepPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("DQN engine training is slow")
	}
	opts := QuickOptions()
	opts.Engine = EngineDQN
	opts.Slots = 2000
	opts.TrainSlots = 5000
	res, err := Run("table1", opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Y[0] < 40 {
			t.Fatalf("%s: DQN-engine ST %.1f%% implausibly low", s.Name, s.Y[0])
		}
	}
}

func TestAllExperimentsSmoke(t *testing.T) {
	// Every registered experiment must run to completion at a tiny
	// budget and produce non-empty, finite series.
	if testing.Short() {
		t.Skip("smoke-running every experiment is slow")
	}
	opts := Options{
		Slots:      800,
		Engine:     EngineMDP,
		TrainSlots: 1500,
		FieldSlots: 40,
		Trials:     60,
		Seed:       2,
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Series) == 0 {
				t.Fatal("no series")
			}
			for _, s := range res.Series {
				if len(s.Y) == 0 {
					t.Fatalf("series %q empty", s.Name)
				}
				for i, y := range s.Y {
					if y != y || y > 1e12 || y < -1e12 { // NaN / runaway
						t.Fatalf("series %q point %d = %v", s.Name, i, y)
					}
				}
			}
		})
	}
}

func TestDetectExperiment(t *testing.T) {
	res := quickRun(t, "detect")
	verdicts := res.Series[0]
	// Order: EmuBee, ZigBee, WiFi-noise. EmuBee must classify as CTJ
	// (4), never conventional (3); the conventional jammer must be
	// positively identified (3).
	if verdicts.Y[0] != 4 {
		t.Fatalf("EmuBee verdict = %v, want 4 (ct-jamming)", verdicts.Y[0])
	}
	if verdicts.Y[1] != 3 {
		t.Fatalf("ZigBee jammer verdict = %v, want 3 (conventional)", verdicts.Y[1])
	}
	ev := seriesByName(t, res, "packet-log evidence")
	if ev.Y[0] != 0 {
		t.Fatalf("EmuBee left %v packet-log entries", ev.Y[0])
	}
	if ev.Y[1] == 0 {
		t.Fatal("conventional jammer left no packet-log entries")
	}
}
