package experiments

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"

	"ctjam/internal/metrics"
	"ctjam/internal/policy"
)

func pointOptions() Options {
	return Options{
		Slots:      200,
		Engine:     EngineMDP,
		TrainSlots: 200,
		Seed:       1,
		Workers:    2,
	}
}

func TestCachePointsSortedAndDeduplicated(t *testing.T) {
	o := pointOptions()
	all, err := CachePoints(o, IDs())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 115 {
		t.Errorf("full id set yields %d unique points, want 115", len(all))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Key < all[j].Key }) {
		t.Error("CachePoints output is not sorted by key")
	}
	seen := make(map[string]bool)
	for _, sp := range all {
		if seen[sp.Key] {
			t.Errorf("duplicate key %s", sp.Key)
		}
		seen[sp.Key] = true
	}

	// All five metric panels of one sweep revisit exactly the same points.
	a, err := CachePoints(o, []string{"fig6a"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachePoints(o, []string{"fig6a", "fig7a", "fig8a"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sibling metric panels added points: %d vs %d", len(a), len(b))
	}

	// Non-cache-backed experiments contribute nothing; unknown ids fail.
	none, err := CachePoints(o, []string{"stealth", "detect"})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("non-cache-backed ids yielded %d points", len(none))
	}
	if _, err := CachePoints(o, []string{"no-such-id"}); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("unknown id: err = %v, want ErrUnknownExperiment", err)
	}
}

func TestPointKeyMatchesCachePoints(t *testing.T) {
	o := pointOptions()
	specs, err := CachePoints(o, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("table1 yields %d points, want 2", len(specs))
	}
	for _, sp := range specs {
		if got := PointKey(o, Point{Config: sp.Config, Defense: sp.Defense}); got != sp.Key {
			t.Errorf("PointKey = %q, CachePoints key = %q", got, sp.Key)
		}
	}
}

func TestImportPointServesCacheHits(t *testing.T) {
	o := pointOptions()
	specs, err := CachePoints(o, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]Point, len(specs))
	for i, sp := range specs {
		pts[i] = Point{Config: sp.Config, Defense: sp.Defense}
	}

	o1 := o
	o1.Cache = NewCache()
	want, err := EvaluatePoints(o1, pts)
	if err != nil {
		t.Fatal(err)
	}

	imported := NewCache()
	for i, sp := range specs {
		imported.ImportPoint(sp.Key, want[i])
	}
	// Re-importing an existing key is a no-op: results are pure functions of
	// the key, the first import stands.
	imported.ImportPoint(specs[0].Key, metrics.Counters{Slots: -1})

	o2 := o
	o2.Cache = imported
	got, err := EvaluatePoints(o2, pts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("imported cache served different counters:\ngot  %+v\nwant %+v", got, want)
	}
	if st := imported.Stats(); st.PointMisses != 0 {
		t.Errorf("evaluation against a fully imported cache computed %d points", st.PointMisses)
	}
}

// TestRunPointsContextCancel pins the liveness contract of the claim/wait
// protocol: a waiter on a point claimed by a computation that never finishes
// (a dead process elsewhere) unblocks when its context ends instead of
// hanging forever.
func TestRunPointsContextCancel(t *testing.T) {
	o := pointOptions()
	specs, err := CachePoints(o, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	if _, claimed := cache.claimPoint(specs[0].Key); !claimed {
		t.Fatal("first claim not granted")
	}
	// The claimant above never fills its entry.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	o.Cache = cache
	o.Context = ctx
	pts := make([]Point, len(specs))
	for i, sp := range specs {
		pts[i] = Point{Config: sp.Config, Defense: sp.Defense}
	}
	_, err = EvaluatePoints(o, pts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("waiting on a dead claimant: err = %v, want deadline exceeded", err)
	}
}

// TestSchemeWaitContextCancel pins the same contract for the scheme layer.
func TestSchemeWaitContextCancel(t *testing.T) {
	cache := NewCache()
	release := make(chan struct{})
	defer close(release)
	go cache.scheme(context.Background(), "stuck-key", func() (*policy.Scheme, []byte, error) {
		<-release
		return nil, nil, errors.New("never used")
	})
	// Wait until the builder holds the claim.
	for i := 0; cache.Stats().Schemes == 0; i++ {
		if i > 1000 {
			t.Fatal("builder never claimed the scheme entry")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := cache.scheme(ctx, "stuck-key", func() (*policy.Scheme, []byte, error) {
		t.Error("second builder invoked for an in-flight key")
		return nil, nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("waiting on a stuck scheme build: err = %v, want deadline exceeded", err)
	}
}
