package experiments

import (
	"fmt"
	"sort"

	"ctjam/internal/env"
	"ctjam/internal/metrics"
)

// Point is one cache-backed unit of sweep evaluation: an environment (which
// carries the attacker via Config.Jammer) plus the defense scheme driving the
// victim. An empty Defense selects the engine-backed "RL FH" scheme — the
// only defense that trains; the named baselines (see Defenses) are built
// deterministically from the config alone.
type Point struct {
	// Config is the environment configuration the point evaluates.
	Config env.Config
	// Defense selects the victim's scheme: "" for the engine-selected RL
	// FH, or one of the baseline tags "psv", "rand", "static".
	Defense string
}

// Defense tags for Point.Defense, matching the field cache's scheme tags.
const (
	DefenseRL      = "" // engine-selected RL FH (MDP or DQN)
	DefensePassive = "psv"
	DefenseRandom  = "rand"
	DefenseStatic  = "static"
)

// PointSpec identifies one unique cache-backed sweep point: the point it
// evaluates plus the canonical cache key binding it to one Options budget.
// Specs are the unit of work distributed execution ships between processes
// (see internal/dist).
type PointSpec struct {
	// Key is the canonical point fingerprint — the Cache memoization key.
	// It covers the point and every Options field that feeds it, so equal
	// keys mean bit-identical results.
	Key string
	// Config is the environment configuration the point evaluates.
	Config env.Config
	// Defense is the point's defense scheme tag ("" = engine RL FH).
	Defense string
}

// PointKey returns the canonical cache key of one sweep point under o,
// applying the same option defaulting Run does. Workers recompute it from
// the wire-decoded (Options, Point) pair and compare against the
// coordinator's key, so any codec or version drift is caught before a wrong
// result can be imported.
func PointKey(o Options, p Point) string {
	return pointKey(o.withFloor(), p)
}

// CachePoints enumerates the unique cache-backed sweep points the given
// experiment ids evaluate under o, sorted by Key. With the full id set this
// is the "-id all" work list: 115 unique points backing the 20 Figs. 6-8
// metric panels plus Table I (which coincides with the L_J=100 /
// lower-bound-6 sweep points and deduplicates against them), its
// seed-replicated variant table1-seeds, and the jammer-zoo matchup grid
// (whose RL-vs-sweeper cell deduplicates against the default-config point).
// Ids whose compute is not cache-backed (fig2b, fig9-10, field, stealth,
// train) contribute nothing; unknown ids return ErrUnknownExperiment.
//
// The sorted order is the deterministic work-assignment order of distributed
// execution: shards and coordinators derive identical lists from identical
// (Options, ids) inputs, independent of registration or arrival order.
func CachePoints(o Options, ids []string) ([]PointSpec, error) {
	o = o.withFloor()
	seen := make(map[string]bool)
	var out []PointSpec
	for _, id := range ids {
		e, err := lookup(id)
		if err != nil {
			return nil, err
		}
		if e.points == nil {
			continue
		}
		for _, p := range e.points(o) {
			k := pointKey(o, p)
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, PointSpec{Key: k, Config: p.Config, Defense: p.Defense})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// EvaluatePoints computes the Counters of the given points under o, through
// the shared point cache (o.Cache, or a private one when nil). This is the
// worker-side entry point of distributed execution: results are bit-identical
// to the same points' evaluation inside a single-process Run, because both
// paths are runPoints over canonical keys.
func EvaluatePoints(o Options, pts []Point) ([]metrics.Counters, error) {
	o = o.withFloor()
	return runPoints(o, pts, func(i int) string {
		return fmt.Sprintf("point %s", pts[i].Config.Fingerprint())
	})
}

// asPoints wraps bare environment configs as RL FH points — the defense every
// pre-matchup experiment evaluates.
func asPoints(cfgs []env.Config) []Point {
	pts := make([]Point, len(cfgs))
	for i, cfg := range cfgs {
		pts[i] = Point{Config: cfg}
	}
	return pts
}
