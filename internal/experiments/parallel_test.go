package experiments

import (
	"reflect"
	"testing"
)

// TestSerialParallelEquivalence asserts the determinism contract of the
// parallel execution engine: for a representative experiment from each
// family (Fig. 6 sweeps, Fig. 8 sweeps, Fig. 11 field runs, Table I), a
// serial run (Workers=1) and a parallel run (Workers=8) must produce
// bit-for-bit identical result series with the same seed.
func TestSerialParallelEquivalence(t *testing.T) {
	ids := []string{"fig6a", "fig8b", "fig11a", "table1"}
	base := Options{
		Slots:      900,
		Engine:     EngineMDP,
		TrainSlots: 1500,
		FieldSlots: 50,
		Trials:     60,
		Seed:       7,
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			serial := base
			serial.Workers = 1
			par := base
			par.Workers = 8

			rs, err := Run(id, serial)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := Run(id, par)
			if err != nil {
				t.Fatal(err)
			}
			if len(rs.Series) != len(rp.Series) {
				t.Fatalf("series count: serial %d vs parallel %d", len(rs.Series), len(rp.Series))
			}
			for i := range rs.Series {
				if !reflect.DeepEqual(rs.Series[i], rp.Series[i]) {
					t.Errorf("series %q differs:\nserial:   %+v\nparallel: %+v",
						rs.Series[i].Name, rs.Series[i], rp.Series[i])
				}
			}
			if !reflect.DeepEqual(rs.XTicks, rp.XTicks) {
				t.Errorf("xticks differ: %v vs %v", rs.XTicks, rp.XTicks)
			}
		})
	}
}

// TestWorkersDefaulted ensures a zero-value Workers field falls back to all
// cores rather than degenerating to a broken pool.
func TestWorkersDefaulted(t *testing.T) {
	var o Options
	o = o.withFloor()
	if o.Workers < 1 {
		t.Fatalf("withFloor left Workers = %d", o.Workers)
	}
	if DefaultOptions().Workers < 1 || QuickOptions().Workers < 1 {
		t.Fatal("canned options have no workers")
	}
}
