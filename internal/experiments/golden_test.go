package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-trace regression tests: experiments at a small fixed-seed budget
// must keep producing byte-identical JSON results. The engine is fully
// deterministic (counter-based RNG streams, worker-count-independent
// collection), so any diff here is a behavioral change that must be either
// fixed or consciously accepted by regenerating with
//
//	go test ./internal/experiments -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden experiment traces")

// goldenOptions is deliberately tiny: golden tests pin exact numbers, so
// they only need enough slots to exercise the pipeline, not to converge.
func goldenOptions() Options {
	return Options{
		Slots:      2000,
		Engine:     EngineMDP,
		TrainSlots: 2000,
		FieldSlots: 60,
		Trials:     60,
		Seed:       1,
		Workers:    3,
	}
}

func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", name+".json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden trace (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden trace %s.\ngot:\n%s\nwant:\n%s\nRun with -update if the change is intended.",
			name, path, got, want)
	}
}

func TestGoldenFig6a(t *testing.T) {
	res, err := Run("fig6a", goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6a", res)
}

func TestGoldenFig8b(t *testing.T) {
	res, err := Run("fig8b", goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig8b", res)
}

func TestGoldenTable1(t *testing.T) {
	res, err := Run("table1", goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1", res)
}

func TestGoldenFig11a(t *testing.T) {
	res, err := Run("fig11a", goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig11a", res)
}

func TestGoldenFig11b(t *testing.T) {
	res, err := Run("fig11b", goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig11b", res)
}

func TestGoldenStealth(t *testing.T) {
	res, err := Run("stealth", goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "stealth", res)
}
