package experiments

import (
	"fmt"
	"sort"

	"ctjam/internal/env"
	"ctjam/internal/jammer"
)

// The matchup experiment ranks every defense scheme against every attacker in
// the jammer zoo: a seedable scenario generator samples a mixed roster of
// strategies (sweep, reactive, adaptive, energy-budgeted), each defense runs
// against each scenario in the paper's default environment, and the output is
// a ranking table of success-rate-of-transmission (ST) per cell plus a mean
// column, sorted best defense first. Every cell is an ordinary cache-backed
// sweep point, so matchup results memoize, deduplicate and distribute exactly
// like the Figs. 6-8 panels.

// matchupScenarioCount is the size of the sampled attacker roster. With four
// registered kinds assigned round-robin, eight scenarios cover every kind
// twice with different sampled parameters.
const matchupScenarioCount = 8

// matchupDefenses lists the defense side of the matchup: the engine-selected
// RL FH plus every deterministic baseline.
var matchupDefenses = []struct {
	tag  string
	name string
}{
	{DefenseRL, "RL FH"},
	{DefensePassive, "PSV FH"},
	{DefenseRandom, "Rand FH"},
	{DefenseStatic, "Static"},
}

// matchupScenarios samples the attacker roster for one options seed. The
// generator is deterministic and the count is a registry constant, so the
// roster — like a sweep's x-axis — is a pure function of Options.
func matchupScenarios(o Options) []jammer.Scenario {
	scs, err := jammer.GenerateScenarios(jammer.ScenarioSpec{Seed: o.Seed, Count: matchupScenarioCount})
	if err != nil {
		// Count is an in-range constant and Kinds defaults to the registry;
		// generation cannot fail.
		panic(fmt.Sprintf("experiments: matchup scenario generation failed: %v", err))
	}
	return scs
}

// matchupPoints enumerates the full defense × attacker grid, defenses-major,
// matching the series layout of runMatchup.
func matchupPoints(o Options) []Point {
	scs := matchupScenarios(o)
	pts := make([]Point, 0, len(matchupDefenses)*len(scs))
	for _, d := range matchupDefenses {
		for _, sc := range scs {
			cfg := env.DefaultConfig()
			cfg.Seed = o.Seed
			cfg.Jammer = sc.Spec.String()
			pts = append(pts, Point{Config: cfg, Defense: d.tag})
		}
	}
	return pts
}

// runMatchup evaluates the grid and renders the ranking table: one series per
// defense with the per-scenario ST values plus a trailing mean column, sorted
// by mean ST descending.
func runMatchup(o Options) (*Result, error) {
	scs := matchupScenarios(o)
	res := &Result{
		Title:  "defense schemes vs the adversarial jammer zoo",
		XLabel: "attacker",
		YLabel: "success rate of transmission (%)",
	}
	for _, sc := range scs {
		res.XTicks = append(res.XTicks, sc.Label)
	}
	res.XTicks = append(res.XTicks, "mean")
	res.PaperNote = "beyond the paper: the §II-C sweeper is one column; reactive/adaptive/budgeted attackers probe the same defenses"

	pts := matchupPoints(o)
	counters, err := runPoints(o, pts, func(p int) string {
		n := len(scs)
		return fmt.Sprintf("matchup defense=%s attacker=%s", matchupDefenses[p/n].name, scs[p%n].Label)
	})
	if err != nil {
		return nil, err
	}

	n := len(scs)
	for di, d := range matchupDefenses {
		s := Series{Name: d.name, X: make([]float64, n+1), Y: make([]float64, n+1)}
		sum := 0.0
		for si := 0; si < n; si++ {
			v := 100 * counters[di*n+si].ST()
			s.X[si] = float64(si)
			s.Y[si] = v
			sum += v
		}
		s.X[n] = float64(n)
		s.Y[n] = sum / float64(n)
		res.Series = append(res.Series, s)
	}
	// Rank best mean ST first. The sort is stable so equal means keep the
	// deterministic defense order.
	sort.SliceStable(res.Series, func(i, j int) bool {
		return res.Series[i].Y[n] > res.Series[j].Y[n]
	})
	return res, nil
}
