package experiments

import (
	"reflect"
	"testing"
	"time"
)

// fieldPanelIDs are the experiments whose compute flows through the
// field-run cache.
var fieldPanelIDs = []string{"fig10a", "fig10b", "fig11a", "fig11b", "scale"}

// TestFieldCacheEquivalence pins the field-run analogue of the sweep-cache
// guarantee: the field panels run against one shared cache produce Results
// bit-identical to fresh uncached runs, and a second pass over the same
// cache recomputes nothing.
func TestFieldCacheEquivalence(t *testing.T) {
	o := cacheTestOptions()

	fresh := make([]*Result, len(fieldPanelIDs))
	for i, id := range fieldPanelIDs {
		res, err := Run(id, o)
		if err != nil {
			t.Fatalf("uncached %s: %v", id, err)
		}
		fresh[i] = res
	}

	shared := o
	shared.Cache = NewCache()
	for i, id := range fieldPanelIDs {
		res, err := Run(id, shared)
		if err != nil {
			t.Fatalf("cached %s: %v", id, err)
		}
		if !reflect.DeepEqual(res, fresh[i]) {
			t.Errorf("%s: cached result differs from uncached run", id)
		}
	}
	st := shared.Cache.Stats()
	if st.FieldMisses == 0 {
		t.Fatal("first pass computed no field runs")
	}

	missesAfterFirst := st.FieldMisses
	for i, id := range fieldPanelIDs {
		res, err := Run(id, shared)
		if err != nil {
			t.Fatalf("second pass %s: %v", id, err)
		}
		if !reflect.DeepEqual(res, fresh[i]) {
			t.Errorf("%s: second-pass result differs", id)
		}
	}
	st = shared.Cache.Stats()
	if st.FieldMisses != missesAfterFirst {
		t.Errorf("second pass recomputed %d field runs; want pure hits", st.FieldMisses-missesAfterFirst)
	}
	if st.FieldHits == 0 {
		t.Error("second pass recorded no field-cache hits")
	}
}

// TestFieldKeyFingerprints checks every spec dimension splits the key, and
// that the Options budget only reaches keys of the RL scheme (whose agent it
// actually parameterizes).
func TestFieldKeyFingerprints(t *testing.T) {
	o := cacheTestOptions()
	base := FieldSpec{
		Scheme: FieldSchemeRand, Jammer: true, Clusters: 2, Nodes: 3,
		SlotDuration: time.Second, JammerSlot: time.Second, Seed: 1, Slots: 50,
	}
	mutations := []func(*FieldSpec){
		func(s *FieldSpec) { s.Scheme = FieldSchemePSV },
		func(s *FieldSpec) { s.Jammer = false },
		func(s *FieldSpec) { s.Clusters = 4 },
		func(s *FieldSpec) { s.Nodes = 5 },
		func(s *FieldSpec) { s.SlotDuration = 2 * time.Second },
		func(s *FieldSpec) { s.JammerSlot = time.Second / 2 },
		func(s *FieldSpec) { s.Seed = 9 },
		func(s *FieldSpec) { s.Slots = 51 },
	}
	ref := FieldKey(o, base)
	for i, mut := range mutations {
		s := base
		mut(&s)
		if FieldKey(o, s) == ref {
			t.Errorf("mutation %d did not change the field key", i)
		}
	}

	// A non-RL key must ignore the sweep budget...
	o2 := o
	o2.TrainSlots *= 2
	o2.Seed++
	if FieldKey(o2, base) != ref {
		t.Error("rand-scheme key depends on options that cannot change its result")
	}
	// ...and an RL key must fingerprint it.
	rl := base
	rl.Scheme = FieldSchemeRL
	if FieldKey(o, rl) == FieldKey(o2, rl) {
		t.Error("rl-scheme key ignores the training budget that shapes its agent")
	}
}

func TestFieldSpecValidate(t *testing.T) {
	good := FieldSpec{Scheme: FieldSchemePSV, Clusters: 1, Nodes: 3, SlotDuration: time.Second, JammerSlot: time.Second, Slots: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Scheme = "nope"
	if err := bad.Validate(); err == nil {
		t.Error("unknown scheme accepted")
	}
	bad = good
	bad.Clusters = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 clusters accepted")
	}
	bad = good
	bad.Slots = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 slots accepted")
	}
}

// TestCacheFieldSpecsDeterministic checks the distributed work list is a
// sorted, deduplicated, pure function of (Options, ids).
func TestCacheFieldSpecsDeterministic(t *testing.T) {
	o := cacheTestOptions()
	a, err := CacheFieldSpecs(o, fieldPanelIDs)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("field panels yielded no specs")
	}
	b, err := CacheFieldSpecs(o, fieldPanelIDs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("CacheFieldSpecs is not deterministic")
	}
	seen := make(map[string]bool)
	for i, sp := range a {
		if i > 0 && a[i-1].Key >= sp.Key {
			t.Fatalf("specs not strictly sorted at %d: %q >= %q", i, a[i-1].Key, sp.Key)
		}
		if seen[sp.Key] {
			t.Fatalf("duplicate key %q", sp.Key)
		}
		seen[sp.Key] = true
	}
	// fig10a and fig10b read the same 5 runs; the deduplicated list must
	// collapse them.
	both, err := CacheFieldSpecs(o, []string{"fig10a", "fig10b"})
	if err != nil {
		t.Fatal(err)
	}
	only, err := CacheFieldSpecs(o, []string{"fig10a"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(both, only) {
		t.Error("fig10a and fig10b do not share their field runs")
	}
	// Non-field ids contribute nothing.
	none, err := CacheFieldSpecs(o, []string{"fig2b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("fig2b yielded %d field specs, want 0", len(none))
	}
	if _, err := CacheFieldSpecs(o, []string{"no-such-id"}); err == nil {
		t.Error("unknown id accepted")
	}
}
