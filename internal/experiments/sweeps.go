package experiments

import (
	"fmt"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/jammer"
	"ctjam/internal/metrics"
)

// metric extracts one Table I rate from run counters.
type metric struct {
	name  string
	yAxis string
	get   func(metrics.Counters) float64
}

var (
	metricST = metric{"ST", "success rate of transmission (%)", func(c metrics.Counters) float64 { return 100 * c.ST() }}
	metricAH = metric{"AH", "adoption rate of FH (%)", func(c metrics.Counters) float64 { return 100 * c.AH() }}
	metricAP = metric{"AP", "adoption rate of PC (%)", func(c metrics.Counters) float64 { return 100 * c.AP() }}
	metricSH = metric{"SH", "success rate of FH (%)", func(c metrics.Counters) float64 { return 100 * c.SH() }}
	metricSP = metric{"SP", "success rate of PC (%)", func(c metrics.Counters) float64 { return 100 * c.SP() }}
)

// sweep describes one x-axis parameter sweep of Figs. 6-8.
type sweep struct {
	name   string
	xLabel string
	xs     []float64
	// configure builds the environment config for one x value.
	configure func(x float64, mode jammer.PowerMode, seed int64) env.Config
	paperNote map[string]string // metric name -> what the paper reports
}

var sweepLJ = sweep{
	name:   "L_J",
	xLabel: "L_J",
	xs:     []float64{10, 15, 20, 25, 30, 35, 40, 45, 50, 60, 70, 80, 90, 100},
	configure: func(x float64, mode jammer.PowerMode, seed int64) env.Config {
		cfg := env.DefaultConfig()
		cfg.LossJam = x
		cfg.JammerMode = mode
		cfg.Seed = seed
		return cfg
	},
	paperNote: map[string]string{
		"ST": "Fig. 6(a): ST 0% for L_J<=15, rising to ~78% for L_J>50; random mode rises earlier",
		"AH": "Fig. 7(a): AH 0 below L_J~35, then grows toward ~50%",
		"AP": "Fig. 7(b): AP low in max mode (PC useless), adopted extensively in random mode",
		"SH": "Fig. 8(a): SH jumps up around L_J 35-55 then declines slowly",
		"SP": "Fig. 8(b): SP higher in random mode for 15<L_J<55",
	},
}

var sweepCycle = sweep{
	name:   "sweep cycle",
	xLabel: "sweep cycle (time-slots)",
	xs:     []float64{2, 3, 4, 6, 8, 10, 12, 14, 16},
	configure: func(x float64, mode jammer.PowerMode, seed int64) env.Config {
		cfg := env.DefaultConfig()
		// Keep the jammer block at 2 channels and scale the channel
		// count so the sweep cycle ceil(K/m) equals x.
		cfg.SweepWidth = 2
		cfg.Channels = 2 * int(x)
		cfg.JammerMode = mode
		cfg.Seed = seed
		return cfg
	},
	paperNote: map[string]string{
		"ST": "Fig. 6(b): ST grows with sweep cycle, ~70% to >90%",
		"AH": "Fig. 7(c): AH decreases with sweep cycle",
		"AP": "Fig. 7(d): AP decreases; random mode above max mode",
		"SH": "Fig. 8(c): SH decreases from ~78% to ~21%",
		"SP": "Fig. 8(d): SP decreases from ~19% to ~1%",
	},
}

var sweepLH = sweep{
	name:   "L_H",
	xLabel: "L_H",
	xs:     []float64{0, 15, 30, 45, 60, 75, 85, 100},
	configure: func(x float64, mode jammer.PowerMode, seed int64) env.Config {
		cfg := env.DefaultConfig()
		cfg.LossHop = x
		cfg.JammerMode = mode
		cfg.Seed = seed
		return cfg
	},
	paperNote: map[string]string{
		"ST": "Fig. 6(c): ST decreases with L_H; random mode drops hard past L_H~85",
		"AH": "Fig. 7(e): AH decreases with L_H; modes diverge past 85",
		"AP": "Fig. 7(f): AP rises in random mode as PC replaces FH",
		"SH": "Fig. 8(e): modes diverge past L_H~85",
		"SP": "Fig. 8(f): PC replaces FH as dominant in random mode",
	},
}

var sweepLp = sweep{
	name:   "lower bound of L^T",
	xLabel: "lower bound of L^T",
	xs:     []float64{6, 7, 8, 9, 10, 11, 12, 13, 14},
	configure: func(x float64, mode jammer.PowerMode, seed int64) env.Config {
		cfg := env.DefaultConfig()
		lb := int(x)
		tx := make([]float64, 10)
		for i := range tx {
			tx[i] = float64(lb + i)
		}
		cfg.TxPowers = tx
		cfg.JammerMode = mode
		cfg.Seed = seed
		return cfg
	},
	paperNote: map[string]string{
		"ST": "Fig. 6(d): ST grows slowly for 6-9, reaches 100% for lb>=11",
		"AH": "Fig. 7(g): AH decreases; inflection at lb=11 where PC suffices",
		"AP": "Fig. 7(h): AP increases with lb",
		"SH": "Fig. 8(g): SH falls as PC takes over",
		"SP": "Fig. 8(h): SP rises as PC takes over",
	},
}

// rlAgent builds the engine-selected implementation of the RL FH scheme for
// one environment configuration as a serial env.Agent, training it if
// needed. Sweep points no longer evaluate through this path — they go through
// rlScheme and the batched policy engine (see cache.go) — but the field
// simulator still drives its stateful iot runs with a serial agent, and the
// equivalence tests pin the batched path against this one.
func rlAgent(o Options, cfg env.Config) (env.Agent, error) {
	switch o.Engine {
	case EngineDQN:
		acfg := core.DefaultDQNAgentConfig(cfg.Channels, len(cfg.TxPowers), cfg.SweepWidth)
		acfg.Seed = o.Seed
		acfg.Epsilon.DecaySteps = o.TrainSlots * 2 / 3
		agent, err := core.NewDQNAgent(acfg)
		if err != nil {
			return nil, err
		}
		trainCfg := cfg
		trainCfg.Seed = o.Seed + 1000
		trainEnv, err := env.New(trainCfg)
		if err != nil {
			return nil, err
		}
		if _, err := agent.Train(trainEnv, o.TrainSlots); err != nil {
			return nil, err
		}
		return agent, nil
	case EngineMDP:
		model, err := core.NewModel(core.ParamsFromEnv(cfg))
		if err != nil {
			return nil, err
		}
		return core.NewMDPAgent(model, nil, cfg.Channels, cfg.SweepWidth)
	default:
		return nil, fmt.Errorf("experiments: unknown engine %v", o.Engine)
	}
}

// sweepModes are the two jammer power modes every Figs. 6-8 panel compares.
var sweepModes = []struct {
	mode jammer.PowerMode
	name string
}{
	{jammer.ModeMax, "jam w/ max pwr"},
	{jammer.ModeRandom, "jam w/ rand pwr"},
}

// sweepConfigs builds the (mode × x) point configs of one Figs. 6-8 sweep:
// the unit of work the point cache memoizes and internal/dist shards. The
// order is modes-major, matching the series layout of sweepRunner.
func sweepConfigs(sw sweep, o Options) []env.Config {
	nx := len(sw.xs)
	cfgs := make([]env.Config, len(sweepModes)*nx)
	for p := range cfgs {
		md, x := sweepModes[p/nx], sw.xs[p%nx]
		cfgs[p] = sw.configure(x, md.mode, o.Seed)
	}
	return cfgs
}

// table1Configs builds the two default-parameter point configs (one per
// jammer mode) Table I evaluates.
func table1Configs(o Options) []env.Config {
	cfgs := make([]env.Config, len(sweepModes))
	for p := range cfgs {
		cfg := env.DefaultConfig()
		cfg.JammerMode = sweepModes[p].mode
		cfg.Seed = o.Seed
		cfgs[p] = cfg
	}
	return cfgs
}

// table1SeedCount is the number of evaluation seeds table1-seeds replicates
// the default-parameter points over.
const table1SeedCount = 6

// table1SeedConfigs builds the seed-replicated default-parameter points: one
// config per (jammer mode, evaluation seed), modes-major. Replica s of a
// mode evaluates seed o.Seed+s, so replica 0 coincides with table1's point
// and deduplicates against it. All replicas of one mode share a scheme key —
// scheme construction never reads the evaluation seed — which makes this the
// registry's scheme-reuse workload: a distributed run trains each mode's
// scheme once fleet-wide and ships the checkpoint to every replica point.
func table1SeedConfigs(o Options) []env.Config {
	cfgs := make([]env.Config, 0, len(sweepModes)*table1SeedCount)
	for _, md := range sweepModes {
		for s := 0; s < table1SeedCount; s++ {
			cfg := env.DefaultConfig()
			cfg.JammerMode = md.mode
			cfg.Seed = o.Seed + int64(s)
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// sweepRunner builds the Runner for one (sweep, metric) panel of Figs. 6-8.
// Every (mode, x) point builds its own env.Config with an explicit seed; the
// points are evaluated through runPoints, which deduplicates them against
// o.Cache (all five metric panels of one sweep share the same points), runs
// cache-miss points through the batched inference engine, and fans the work
// out over o.Workers goroutines with each counter written to its own
// pre-sized slot.
func sweepRunner(sw sweep, m metric) Runner {
	return func(o Options) (*Result, error) {
		res := &Result{
			Title:     fmt.Sprintf("%s vs %s", m.name, sw.name),
			XLabel:    sw.xLabel,
			YLabel:    m.yAxis,
			PaperNote: sw.paperNote[m.name],
		}
		nx := len(sw.xs)
		cfgs := sweepConfigs(sw, o)
		counters, err := runPoints(o, asPoints(cfgs), func(p int) string {
			return fmt.Sprintf("%s=%v mode=%v", sw.name, sw.xs[p%nx], sweepModes[p/nx].mode)
		})
		if err != nil {
			return nil, err
		}
		for mi, md := range sweepModes {
			s := Series{Name: md.name, X: make([]float64, nx), Y: make([]float64, nx)}
			for xi, x := range sw.xs {
				s.X[xi] = x
				s.Y[xi] = m.get(counters[mi*nx+xi])
			}
			res.Series = append(res.Series, s)
		}
		return res, nil
	}
}

// runTable1 evaluates all Table I metrics at the default parameters for
// both jammer modes. All five metrics come from one run per mode, and the
// runs go through the shared point cache: the default-parameter points
// coincide with the L_J=100 and lower-bound-6 sweep points at the same seed,
// so a cache-sharing `all` run reads them back instead of recomputing.
func runTable1(o Options) (*Result, error) {
	res := &Result{
		ID:        "table1",
		Title:     "Table I metrics at default parameters",
		XLabel:    "metric",
		YLabel:    "value (%)",
		XTicks:    []string{"ST", "AH", "SH", "AP", "SP"},
		PaperNote: "Table I defines ST/AH/SH/AP/SP; §IV-C reports ST~78% at the defaults",
	}
	counters, err := runPoints(o, asPoints(table1Configs(o)), func(p int) string {
		return fmt.Sprintf("table1 mode=%v", sweepModes[p].mode)
	})
	if err != nil {
		return nil, err
	}
	for mi, md := range sweepModes {
		c := counters[mi]
		res.Series = append(res.Series, Series{
			Name: md.name,
			X:    []float64{0, 1, 2, 3, 4},
			Y: []float64{
				100 * c.ST(), 100 * c.AH(), 100 * c.SH(), 100 * c.AP(), 100 * c.SP(),
			},
		})
	}
	return res, nil
}

// runTable1Seeds evaluates the Table I metrics over table1SeedCount
// evaluation seeds per jammer mode and reports, for each mode, the mean and
// the half-spread (max-min)/2 across seeds — Table I with error bars. Every
// replica of one mode reuses the same trained scheme, so the marginal cost of
// a seed is evaluation only; distributed runs ship each mode's checkpoint
// once instead of retraining it per point.
func runTable1Seeds(o Options) (*Result, error) {
	res := &Result{
		ID:        "table1-seeds",
		Title:     fmt.Sprintf("Table I metrics over %d evaluation seeds", table1SeedCount),
		XLabel:    "metric",
		YLabel:    "value (%)",
		XTicks:    []string{"ST", "AH", "SH", "AP", "SP"},
		PaperNote: "Table I defines ST/AH/SH/AP/SP; seed replication bounds the run-to-run spread of §IV-C's numbers",
	}
	counters, err := runPoints(o, asPoints(table1SeedConfigs(o)), func(p int) string {
		return fmt.Sprintf("table1 mode=%v seed+%d",
			sweepModes[p/table1SeedCount].mode, p%table1SeedCount)
	})
	if err != nil {
		return nil, err
	}
	for mi, md := range sweepModes {
		mean := Series{Name: md.name + " (mean)", X: []float64{0, 1, 2, 3, 4}, Y: make([]float64, 5)}
		spread := Series{Name: md.name + " (spread)", X: []float64{0, 1, 2, 3, 4}, Y: make([]float64, 5)}
		for m := 0; m < 5; m++ {
			lo, hi, sum := 0.0, 0.0, 0.0
			for s := 0; s < table1SeedCount; s++ {
				c := counters[mi*table1SeedCount+s]
				v := 100 * []float64{c.ST(), c.AH(), c.SH(), c.AP(), c.SP()}[m]
				if s == 0 || v < lo {
					lo = v
				}
				if s == 0 || v > hi {
					hi = v
				}
				sum += v
			}
			mean.Y[m] = sum / float64(table1SeedCount)
			spread.Y[m] = (hi - lo) / 2
		}
		res.Series = append(res.Series, mean, spread)
	}
	return res, nil
}
