package experiments

import (
	"fmt"
	"time"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/iot"
	"ctjam/internal/metrics"
	"ctjam/internal/parallel"
)

// fieldRLAgent builds the RL FH agent for the field simulator's channel
// layout.
func fieldRLAgent(o Options, cfg iot.Config) (env.Agent, error) {
	ecfg := env.DefaultConfig()
	ecfg.Channels = cfg.Channels
	ecfg.SweepWidth = cfg.SweepWidth
	ecfg.TxPowers = cfg.TxPowers
	ecfg.JamPowers = cfg.JamPowers
	ecfg.JammerMode = cfg.JammerMode
	ecfg.Seed = o.Seed
	return rlAgent(o, ecfg)
}

// runFig9a samples the per-function time consumption (Fig. 9a).
func runFig9a(o Options) (*Result, error) {
	sim, err := iot.New(iot.DefaultConfig())
	if err != nil {
		return nil, err
	}
	samples := sim.FunctionTimings(100)
	res := &Result{
		Title:  "time consumption of typical functions (ms)",
		XLabel: "function",
		YLabel: "time (ms)",
		PaperNote: "Fig. 9(a): DQN 9 ms, ACK round trip 0.9 ms, " +
			"processing 0.6 ms, polling 13.1 ms per node",
	}
	order := []string{"DQN", "ACK", "Proc", "Polling"}
	mean := Series{Name: "mean"}
	p95 := Series{Name: "p95"}
	for i, name := range order {
		xs, ok := samples[name]
		if !ok {
			return nil, fmt.Errorf("missing timing samples for %s", name)
		}
		res.XTicks = append(res.XTicks, name)
		mean.X = append(mean.X, float64(i))
		mean.Y = append(mean.Y, 1000*metrics.Mean(xs))
		p95.X = append(p95.X, float64(i))
		p95.Y = append(p95.Y, 1000*metrics.Percentile(xs, 0.95))
	}
	res.Series = append(res.Series, mean, p95)
	return res, nil
}

// runFig9b measures FH negotiation time versus network size (Fig. 9b).
func runFig9b(o Options) (*Result, error) {
	cfg := iot.DefaultConfig()
	cfg.Seed = o.Seed
	sim, err := iot.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title:  "FH negotiation time vs network size",
		XLabel: "# of nodes",
		YLabel: "negotiation time (s)",
		PaperNote: "Fig. 9(b): negotiation time grows with node count and can reach " +
			"several seconds when off-channel nodes must be recovered",
	}
	// The paper's measurement includes nodes stranded on stale channels;
	// 0.25 reflects that cold-start condition (see DESIGN.md). Each node
	// count seeds its own trial RNG, so the points fan out independently.
	const coldStartOffProb = 0.25
	const maxNodes = 10
	trials, err := parallel.Map(o.Workers, maxNodes, func(p int) ([]float64, error) {
		return sim.NegotiationTimes(p+1, o.Trials, coldStartOffProb)
	})
	if err != nil {
		return nil, err
	}
	mean := Series{Name: "mean"}
	p95 := Series{Name: "p95"}
	maxS := Series{Name: "max"}
	for p, xs := range trials {
		nodes := float64(p + 1)
		mean.X = append(mean.X, nodes)
		mean.Y = append(mean.Y, metrics.Mean(xs))
		p95.X = append(p95.X, nodes)
		p95.Y = append(p95.Y, metrics.Percentile(xs, 0.95))
		maxS.X = append(maxS.X, nodes)
		maxS.Y = append(maxS.Y, metrics.Percentile(xs, 1))
	}
	res.Series = append(res.Series, mean, p95, maxS)
	return res, nil
}

// slotDurations for Fig. 10.
var fig10Slots = []time.Duration{
	1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second, 5 * time.Second,
}

// runFig10a measures goodput versus Tx-slot duration (Fig. 10a).
func runFig10a(o Options) (*Result, error) {
	res := &Result{
		Title:     "goodput vs Tx timeslot duration",
		XLabel:    "duration of Tx timeslot (s)",
		YLabel:    "goodput (pkts/timeslot)",
		PaperNote: "Fig. 10(a): packets per slot grow from ~148 at 1 s to ~806 at 5 s",
	}
	runs, err := fig10Runs(o)
	if err != nil {
		return nil, err
	}
	s := Series{Name: "goodput"}
	for i, d := range fig10Slots {
		s.X = append(s.X, d.Seconds())
		s.Y = append(s.Y, runs[i].GoodputPktsPerSlot)
	}
	res.Series = append(res.Series, s)
	return res, nil
}

// fig10Runs executes the per-slot-duration field runs of Fig. 10 in
// parallel; each duration builds its own seeded simulator.
func fig10Runs(o Options) ([]iot.RunStats, error) {
	return parallel.Map(o.Workers, len(fig10Slots), func(p int) (iot.RunStats, error) {
		cfg := iot.DefaultConfig()
		cfg.JammerEnabled = false
		cfg.SlotDuration = fig10Slots[p]
		cfg.Seed = o.Seed
		sim, err := iot.New(cfg)
		if err != nil {
			return iot.RunStats{}, err
		}
		return sim.Run(core.Static{}, o.FieldSlots)
	})
}

// runFig10b measures slot utilization versus Tx-slot duration (Fig. 10b).
func runFig10b(o Options) (*Result, error) {
	res := &Result{
		Title:     "timeslot utilization vs Tx timeslot duration",
		XLabel:    "duration of Tx timeslot (s)",
		YLabel:    "utilization (%) / effective Tx time (s)",
		PaperNote: "Fig. 10(b): utilization grows from 91.75% at 1 s to 98.58% at 5 s",
	}
	runs, err := fig10Runs(o)
	if err != nil {
		return nil, err
	}
	util := Series{Name: "utilization %"}
	eff := Series{Name: "effective Tx time (s)"}
	for i, d := range fig10Slots {
		util.X = append(util.X, d.Seconds())
		util.Y = append(util.Y, 100*runs[i].MeanUtilization)
		eff.X = append(eff.X, d.Seconds())
		eff.Y = append(eff.Y, runs[i].MeanUtilization*d.Seconds())
	}
	res.Series = append(res.Series, util, eff)
	return res, nil
}

// runFig11a compares the anti-jamming schemes' goodput (Fig. 11a).
func runFig11a(o Options) (*Result, error) {
	cfg := iot.DefaultConfig()
	cfg.Seed = o.Seed
	res := &Result{
		Title:  "goodput by anti-jamming scheme (3 s slots, CTJ jammer)",
		XLabel: "scheme",
		YLabel: "goodput (pkts/timeslot)",
		XTicks: []string{"PSV FH", "Rand FH", "RL FH", "w/o Jx"},
		PaperNote: "Fig. 11(a): PSV 216, Rand 311, RL 431, w/o Jx 575 pkts/slot " +
			"(RL = 2x PSV, 1.39x Rand, 78.5% of no-jammer)",
	}

	passive, err := core.NewPassiveFH(cfg.Channels, cfg.SweepWidth)
	if err != nil {
		return nil, err
	}
	random, err := core.NewRandomFH(cfg.Channels, cfg.SweepWidth, len(cfg.TxPowers))
	if err != nil {
		return nil, err
	}
	rl, err := fieldRLAgent(o, cfg)
	if err != nil {
		return nil, err
	}

	type runSpec struct {
		agent env.Agent
		jam   bool
	}
	specs := []runSpec{
		{passive, true},
		{random, true},
		{rl, true},
		{core.Static{}, false},
	}
	// Each scheme owns its agent and builds its own simulator, so the four
	// runs are independent and fan out across o.Workers goroutines.
	goodputs, err := parallel.Map(o.Workers, len(specs), func(p int) (float64, error) {
		spec := specs[p]
		runCfg := cfg
		runCfg.JammerEnabled = spec.jam
		sim, err := iot.New(runCfg)
		if err != nil {
			return 0, err
		}
		run, err := sim.Run(spec.agent, o.FieldSlots)
		if err != nil {
			return 0, fmt.Errorf("scheme %s: %w", spec.agent.Name(), err)
		}
		return run.GoodputPktsPerSlot, nil
	})
	if err != nil {
		return nil, err
	}
	measured := Series{Name: "goodput"}
	for i, g := range goodputs {
		measured.X = append(measured.X, float64(i))
		measured.Y = append(measured.Y, g)
	}
	paper := Series{
		Name: "paper",
		X:    []float64{0, 1, 2, 3},
		Y:    []float64{216, 311, 431, 575},
	}
	res.Series = append(res.Series, measured, paper)
	return res, nil
}

// runFig11b measures goodput versus the jammer's slot duration (Fig. 11b).
func runFig11b(o Options) (*Result, error) {
	base := iot.DefaultConfig()
	base.Seed = o.Seed
	res := &Result{
		Title:  "goodput vs jammer timeslot duration (Tx slot fixed at 3 s)",
		XLabel: "duration of Jx timeslot (s)",
		YLabel: "goodput (pkts/timeslot)",
		PaperNote: "Fig. 11(b): best goodput (~421 pkts/slot) when Jx slot matches the " +
			"3 s Tx slot; shorter Jx slots find the victim faster and hurt goodput",
	}
	jamSecs := []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
	// The RL agent is stateful (belief / history tracking), so every point
	// builds its own copy; construction is deterministic in o.Seed and
	// sim.Run resets the agent, keeping results identical to a shared,
	// serially reused agent at any worker count.
	goodputs, err := parallel.Map(o.Workers, len(jamSecs), func(p int) (float64, error) {
		rl, err := fieldRLAgent(o, base)
		if err != nil {
			return 0, err
		}
		cfg := base
		cfg.JammerSlot = time.Duration(jamSecs[p] * float64(time.Second))
		sim, err := iot.New(cfg)
		if err != nil {
			return 0, err
		}
		run, err := sim.Run(rl, o.FieldSlots)
		if err != nil {
			return 0, err
		}
		return run.GoodputPktsPerSlot, nil
	})
	if err != nil {
		return nil, err
	}
	s := Series{Name: "goodput", X: jamSecs, Y: goodputs}
	res.Series = append(res.Series, s)
	return res, nil
}
