package experiments

import (
	"fmt"
	"time"

	"ctjam/internal/env"
	"ctjam/internal/iot"
	"ctjam/internal/metrics"
	"ctjam/internal/parallel"
)

// fieldRLAgent builds the RL FH agent for the field simulator's channel
// layout.
func fieldRLAgent(o Options, cfg iot.Config) (env.Agent, error) {
	ecfg := env.DefaultConfig()
	ecfg.Channels = cfg.Channels
	ecfg.SweepWidth = cfg.SweepWidth
	ecfg.TxPowers = cfg.TxPowers
	ecfg.JamPowers = cfg.JamPowers
	ecfg.JammerMode = cfg.JammerMode
	ecfg.Seed = o.Seed
	return rlAgent(o, ecfg)
}

// runFig9a samples the per-function time consumption (Fig. 9a).
func runFig9a(o Options) (*Result, error) {
	sim, err := iot.New(iot.DefaultConfig())
	if err != nil {
		return nil, err
	}
	samples := sim.FunctionTimings(100)
	res := &Result{
		Title:  "time consumption of typical functions (ms)",
		XLabel: "function",
		YLabel: "time (ms)",
		PaperNote: "Fig. 9(a): DQN 9 ms, ACK round trip 0.9 ms, " +
			"processing 0.6 ms, polling 13.1 ms per node",
	}
	order := []string{"DQN", "ACK", "Proc", "Polling"}
	mean := Series{Name: "mean"}
	p95 := Series{Name: "p95"}
	for i, name := range order {
		xs, ok := samples[name]
		if !ok {
			return nil, fmt.Errorf("missing timing samples for %s", name)
		}
		res.XTicks = append(res.XTicks, name)
		mean.X = append(mean.X, float64(i))
		mean.Y = append(mean.Y, 1000*metrics.Mean(xs))
		p95.X = append(p95.X, float64(i))
		p95.Y = append(p95.Y, 1000*metrics.Percentile(xs, 0.95))
	}
	res.Series = append(res.Series, mean, p95)
	return res, nil
}

// runFig9b measures FH negotiation time versus network size (Fig. 9b).
func runFig9b(o Options) (*Result, error) {
	cfg := iot.DefaultConfig()
	cfg.Seed = o.Seed
	sim, err := iot.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title:  "FH negotiation time vs network size",
		XLabel: "# of nodes",
		YLabel: "negotiation time (s)",
		PaperNote: "Fig. 9(b): negotiation time grows with node count and can reach " +
			"several seconds when off-channel nodes must be recovered",
	}
	// The paper's measurement includes nodes stranded on stale channels;
	// 0.25 reflects that cold-start condition (see DESIGN.md). Each node
	// count seeds its own trial RNG, so the points fan out independently.
	const coldStartOffProb = 0.25
	const maxNodes = 10
	trials, err := parallel.Map(o.Workers, maxNodes, func(p int) ([]float64, error) {
		return sim.NegotiationTimes(p+1, o.Trials, coldStartOffProb)
	})
	if err != nil {
		return nil, err
	}
	mean := Series{Name: "mean"}
	p95 := Series{Name: "p95"}
	maxS := Series{Name: "max"}
	for p, xs := range trials {
		nodes := float64(p + 1)
		mean.X = append(mean.X, nodes)
		mean.Y = append(mean.Y, metrics.Mean(xs))
		p95.X = append(p95.X, nodes)
		p95.Y = append(p95.Y, metrics.Percentile(xs, 0.95))
		maxS.X = append(maxS.X, nodes)
		maxS.Y = append(maxS.Y, metrics.Percentile(xs, 1))
	}
	res.Series = append(res.Series, mean, p95, maxS)
	return res, nil
}

// slotDurations for Fig. 10.
var fig10Slots = []time.Duration{
	1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second, 5 * time.Second,
}

// runFig10a measures goodput versus Tx-slot duration (Fig. 10a).
func runFig10a(o Options) (*Result, error) {
	res := &Result{
		Title:     "goodput vs Tx timeslot duration",
		XLabel:    "duration of Tx timeslot (s)",
		YLabel:    "goodput (pkts/timeslot)",
		PaperNote: "Fig. 10(a): packets per slot grow from ~148 at 1 s to ~806 at 5 s",
	}
	runs, err := fig10Runs(o)
	if err != nil {
		return nil, err
	}
	s := Series{Name: "goodput"}
	for i, d := range fig10Slots {
		s.X = append(s.X, d.Seconds())
		s.Y = append(s.Y, runs[i].GoodputPktsPerSlot)
	}
	res.Series = append(res.Series, s)
	return res, nil
}

// fig10Specs enumerates the per-slot-duration field runs of Fig. 10: an
// unjammed static network per duration. Both fig10 panels read the same
// runs, so sharing a cache across them evaluates each duration once.
func fig10Specs(o Options) []FieldSpec {
	base := iot.DefaultConfig()
	specs := make([]FieldSpec, len(fig10Slots))
	for i, d := range fig10Slots {
		specs[i] = FieldSpec{
			Scheme:       FieldSchemeStatic,
			Jammer:       false,
			Clusters:     1,
			Nodes:        base.Nodes,
			SlotDuration: d,
			JammerSlot:   base.JammerSlot,
			Seed:         o.Seed,
			Slots:        o.FieldSlots,
		}
	}
	return specs
}

// fig10Runs evaluates the Fig. 10 field runs through the shared field cache.
func fig10Runs(o Options) ([]iot.RunStats, error) {
	return runFieldSpecs(o, fig10Specs(o))
}

// runFig10b measures slot utilization versus Tx-slot duration (Fig. 10b).
func runFig10b(o Options) (*Result, error) {
	res := &Result{
		Title:     "timeslot utilization vs Tx timeslot duration",
		XLabel:    "duration of Tx timeslot (s)",
		YLabel:    "utilization (%) / effective Tx time (s)",
		PaperNote: "Fig. 10(b): utilization grows from 91.75% at 1 s to 98.58% at 5 s",
	}
	runs, err := fig10Runs(o)
	if err != nil {
		return nil, err
	}
	util := Series{Name: "utilization %"}
	eff := Series{Name: "effective Tx time (s)"}
	for i, d := range fig10Slots {
		util.X = append(util.X, d.Seconds())
		util.Y = append(util.Y, 100*runs[i].MeanUtilization)
		eff.X = append(eff.X, d.Seconds())
		eff.Y = append(eff.Y, runs[i].MeanUtilization*d.Seconds())
	}
	res.Series = append(res.Series, util, eff)
	return res, nil
}

// fig11aSpecs enumerates the four scheme-comparison runs of Fig. 11a: the
// three FH schemes under the jammer plus the static no-jammer reference.
func fig11aSpecs(o Options) []FieldSpec {
	base := iot.DefaultConfig()
	mk := func(scheme string, jam bool) FieldSpec {
		return FieldSpec{
			Scheme:       scheme,
			Jammer:       jam,
			Clusters:     1,
			Nodes:        base.Nodes,
			SlotDuration: base.SlotDuration,
			JammerSlot:   base.JammerSlot,
			Seed:         o.Seed,
			Slots:        o.FieldSlots,
		}
	}
	return []FieldSpec{
		mk(FieldSchemePSV, true),
		mk(FieldSchemeRand, true),
		mk(FieldSchemeRL, true),
		mk(FieldSchemeStatic, false),
	}
}

// runFig11a compares the anti-jamming schemes' goodput (Fig. 11a). Each
// scheme builds its own agent and simulator (see computeFieldSpec), so the
// four runs are independent and fan out across o.Workers goroutines through
// the field cache.
func runFig11a(o Options) (*Result, error) {
	res := &Result{
		Title:  "goodput by anti-jamming scheme (3 s slots, CTJ jammer)",
		XLabel: "scheme",
		YLabel: "goodput (pkts/timeslot)",
		XTicks: []string{"PSV FH", "Rand FH", "RL FH", "w/o Jx"},
		PaperNote: "Fig. 11(a): PSV 216, Rand 311, RL 431, w/o Jx 575 pkts/slot " +
			"(RL = 2x PSV, 1.39x Rand, 78.5% of no-jammer)",
	}
	runs, err := runFieldSpecs(o, fig11aSpecs(o))
	if err != nil {
		return nil, err
	}
	measured := Series{Name: "goodput"}
	for i, run := range runs {
		measured.X = append(measured.X, float64(i))
		measured.Y = append(measured.Y, run.GoodputPktsPerSlot)
	}
	paper := Series{
		Name: "paper",
		X:    []float64{0, 1, 2, 3},
		Y:    []float64{216, 311, 431, 575},
	}
	res.Series = append(res.Series, measured, paper)
	return res, nil
}

// fig11bJamSecs are the jammer slot durations of Fig. 11b.
var fig11bJamSecs = []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}

// fig11bSpecs enumerates the per-jammer-slot RL runs of Fig. 11b. The RL
// agent is stateful (belief / history tracking), so every point builds its
// own copy; construction is deterministic in o.Seed and sim.Run resets the
// agent, keeping results identical to a shared, serially reused agent at any
// worker count.
func fig11bSpecs(o Options) []FieldSpec {
	base := iot.DefaultConfig()
	specs := make([]FieldSpec, len(fig11bJamSecs))
	for i, sec := range fig11bJamSecs {
		specs[i] = FieldSpec{
			Scheme:       FieldSchemeRL,
			Jammer:       true,
			Clusters:     1,
			Nodes:        base.Nodes,
			SlotDuration: base.SlotDuration,
			JammerSlot:   time.Duration(sec * float64(time.Second)),
			Seed:         o.Seed,
			Slots:        o.FieldSlots,
		}
	}
	return specs
}

// runFig11b measures goodput versus the jammer's slot duration (Fig. 11b).
func runFig11b(o Options) (*Result, error) {
	res := &Result{
		Title:  "goodput vs jammer timeslot duration (Tx slot fixed at 3 s)",
		XLabel: "duration of Jx timeslot (s)",
		YLabel: "goodput (pkts/timeslot)",
		PaperNote: "Fig. 11(b): best goodput (~421 pkts/slot) when Jx slot matches the " +
			"3 s Tx slot; shorter Jx slots find the victim faster and hurt goodput",
	}
	runs, err := runFieldSpecs(o, fig11bSpecs(o))
	if err != nil {
		return nil, err
	}
	goodputs := make([]float64, len(runs))
	for i, run := range runs {
		goodputs[i] = run.GoodputPktsPerSlot
	}
	s := Series{Name: "goodput", X: fig11bJamSecs, Y: goodputs}
	res.Series = append(res.Series, s)
	return res, nil
}

// scaleClusterCounts are the field sizes of the scale experiment, in
// clusters of DefaultConfig().Nodes peripherals each.
var scaleClusterCounts = []int{1, 4, 16, 64}

// scaleSpecs enumerates the goodput-vs-scale runs: the random-FH scheme
// under one CTJ jammer per cluster, scaling the cluster count. Random FH is
// the scheme whose per-cluster agent is cheap to replicate, so the runs
// measure engine scaling rather than agent construction.
func scaleSpecs(o Options) []FieldSpec {
	base := iot.DefaultConfig()
	specs := make([]FieldSpec, len(scaleClusterCounts))
	for i, cl := range scaleClusterCounts {
		specs[i] = FieldSpec{
			Scheme:       FieldSchemeRand,
			Jammer:       true,
			Clusters:     cl,
			Nodes:        base.Nodes,
			SlotDuration: base.SlotDuration,
			JammerSlot:   base.JammerSlot,
			Seed:         o.Seed,
			Slots:        o.FieldSlots,
		}
	}
	return specs
}

// runScale measures field-wide goodput versus network scale on the sharded
// engine — the scale-out study beyond the paper's 4-node testbed. Field
// goodput sums across clusters (each cluster delivers on its own channel),
// so ideal scaling is linear in the cluster count; the per-cluster series
// exposes any deviation.
func runScale(o Options) (*Result, error) {
	res := &Result{
		Title:  "field goodput vs network scale (sharded engine, Rand FH)",
		XLabel: "total peripheral nodes",
		YLabel: "goodput (pkts/timeslot)",
		PaperNote: "scale-out study: independent hopping clusters, each with its own " +
			"CTJ jammer stream; field goodput grows linearly with cluster count while " +
			"per-cluster goodput stays at the single-network level",
	}
	specs := scaleSpecs(o)
	runs, err := runFieldSpecs(o, specs)
	if err != nil {
		return nil, err
	}
	total := Series{Name: "field goodput"}
	per := Series{Name: "per-cluster goodput"}
	for i, s := range specs {
		nodes := float64(s.Clusters * s.Nodes)
		total.X = append(total.X, nodes)
		total.Y = append(total.Y, runs[i].GoodputPktsPerSlot)
		per.X = append(per.X, nodes)
		per.Y = append(per.Y, runs[i].GoodputPktsPerSlot/float64(s.Clusters))
	}
	res.Series = append(res.Series, total, per)
	return res, nil
}
