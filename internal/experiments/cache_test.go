package experiments

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"ctjam/internal/env"
	"ctjam/internal/jammer"
	"ctjam/internal/metrics"
)

// sweepPanelIDs are the 20 metric panels of Figs. 6-8 plus Table I — every
// experiment that evaluates sweep points through the shared cache.
var sweepPanelIDs = []string{
	"fig6a", "fig6b", "fig6c", "fig6d",
	"fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f", "fig7g", "fig7h",
	"fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f", "fig8g", "fig8h",
	"table1",
}

// cacheTestOptions keeps the equivalence runs cheap: MDP engine, short
// evaluations. All fields are set explicitly so withFloor leaves them alone.
func cacheTestOptions() Options {
	return Options{
		Slots:      600,
		Engine:     EngineMDP,
		TrainSlots: 1500,
		FieldSlots: 50,
		Trials:     60,
		Seed:       5,
		Workers:    1,
	}
}

// TestSweepCacheEquivalence is the headline determinism guarantee of the
// sweep-point cache: running all 20 metric panels plus Table I against one
// shared cache — serially and with a parallel worker pool — produces Results
// bit-identical to fresh uncached runs.
func TestSweepCacheEquivalence(t *testing.T) {
	base := cacheTestOptions()
	baseline := make(map[string]*Result, len(sweepPanelIDs))
	for _, id := range sweepPanelIDs {
		o := base // fresh private cache per run: no cross-run reuse
		res, err := Run(id, o)
		if err != nil {
			t.Fatalf("%s baseline: %v", id, err)
		}
		baseline[id] = res
	}

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			o := base
			o.Workers = workers
			o.Cache = NewCache()
			for _, id := range sweepPanelIDs {
				res, err := Run(id, o)
				if err != nil {
					t.Fatalf("%s shared-cache: %v", id, err)
				}
				if !reflect.DeepEqual(res, baseline[id]) {
					t.Errorf("%s: shared-cache result differs from uncached baseline:\ngot:  %+v\nwant: %+v",
						id, res, baseline[id])
				}
			}
			st := o.Cache.Stats()
			if st.PointHits == 0 {
				t.Error("shared cache recorded no point reuse across the panels")
			}
		})
	}
}

// TestSweepCacheStats pins the exact reuse arithmetic: the five metric panels
// of the L_J sweep share 28 points (2 jammer modes x 14 x-values), and the
// Table I defaults coincide with the L_J=100 points, so a cache shared across
// all six runs computes 28 points once and serves every other lookup from
// memory.
func TestSweepCacheStats(t *testing.T) {
	o := cacheTestOptions()
	o.Cache = NewCache()
	ids := []string{"fig6a", "fig7a", "fig7b", "fig8a", "fig8b", "table1"}
	for _, id := range ids {
		if _, err := Run(id, o); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	st := o.Cache.Stats()
	if st.PointMisses != 28 {
		t.Errorf("point misses = %d, want 28 (2 modes x 14 L_J values)", st.PointMisses)
	}
	// Four follow-up panels re-read all 28 points; table1 reads its 2.
	if want := int64(4*28 + 2); st.PointHits != want {
		t.Errorf("point hits = %d, want %d", st.PointHits, want)
	}
	if st.Schemes != 28 {
		t.Errorf("schemes = %d, want 28 (x and mode both enter the MDP model)", st.Schemes)
	}
}

// TestSweepCacheConcurrent hammers one cache from concurrent experiment runs
// (every panel twice, each with its own worker pool) and checks the results
// still match fresh uncached runs. Run under -race this exercises the
// claim/wait protocol: duplicate claims, lockstep groups, and readers
// blocking on points another run is computing.
func TestSweepCacheConcurrent(t *testing.T) {
	base := cacheTestOptions()
	base.Slots = 300
	ids := []string{"fig6a", "fig7a", "fig7b", "fig8a", "fig8b", "table1"}

	baseline := make(map[string]*Result, len(ids))
	for _, id := range ids {
		res, err := Run(id, base)
		if err != nil {
			t.Fatalf("%s baseline: %v", id, err)
		}
		baseline[id] = res
	}

	o := base
	o.Workers = 4
	o.Cache = NewCache()
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(ids))
	for round := 0; round < 2; round++ {
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				res, err := Run(id, o)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
				if !reflect.DeepEqual(res, baseline[id]) {
					errs <- fmt.Errorf("%s: concurrent shared-cache result differs from baseline", id)
				}
			}(id)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBatchedSerialEvalCounters is the batched-evaluation acceptance check:
// for both engines, the Counters produced by runPoints (snapshot scheme +
// env.BatchRun, siblings evaluated in lockstep) are identical to a serial
// reference that trains a fresh agent per point and steps it through env.Run.
// Three configs differ only in evaluation seed, so under runPoints they share
// one trained scheme and one batch; the fourth (other jammer mode) is its own
// group.
func TestBatchedSerialEvalCounters(t *testing.T) {
	mkCfg := func(mode jammer.PowerMode, seed int64) env.Config {
		cfg := env.DefaultConfig()
		cfg.LossJam = 40
		cfg.JammerMode = mode
		cfg.Seed = seed
		return cfg
	}
	cfgs := []env.Config{
		mkCfg(jammer.ModeMax, 3),
		mkCfg(jammer.ModeMax, 4),
		mkCfg(jammer.ModeMax, 5),
		mkCfg(jammer.ModeRandom, 3),
	}
	for _, engine := range []Engine{EngineMDP, EngineDQN} {
		t.Run(engine.String(), func(t *testing.T) {
			o := Options{
				Slots:      400,
				Engine:     engine,
				TrainSlots: 700,
				Seed:       3,
				Workers:    2,
				Cache:      NewCache(),
			}
			batched, err := runPoints(o, asPoints(cfgs), func(i int) string { return fmt.Sprintf("cfg %d", i) })
			if err != nil {
				t.Fatal(err)
			}
			for i, cfg := range cfgs {
				agent, err := rlAgent(o, cfg)
				if err != nil {
					t.Fatal(err)
				}
				e, err := env.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				serial, err := env.Run(e, agent, o.Slots)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(batched[i], serial) {
					t.Errorf("cfg %d (mode=%v seed=%d): batched counters %+v != serial %+v",
						i, cfg.JammerMode, cfg.Seed, batched[i], serial)
				}
			}
			st := o.Cache.Stats()
			if st.Schemes != 2 {
				t.Errorf("schemes trained = %d, want 2 (eval seed must not enter the scheme key)", st.Schemes)
			}
			var zero metrics.Counters
			for i, c := range batched {
				if c == zero {
					t.Errorf("cfg %d produced zero counters", i)
				}
			}
		})
	}
}
