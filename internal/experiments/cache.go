package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/metrics"
	"ctjam/internal/parallel"
	"ctjam/internal/policy"
)

// Cache memoizes sweep-point compute across experiment runs. The 20 metric
// panels of Figs. 6-8 are 4 parameter sweeps crossed with 5 Table I metrics:
// every metric panel of one sweep revisits exactly the same (config, engine,
// budget, seed) points, and ST/AH/SH/AP/SP are all pure functions of one
// counter set — so a run that shares a Cache trains and evaluates each unique
// point exactly once and the remaining panels read the memoized Counters.
// Table I itself coincides with the sweep points that evaluate
// env.DefaultConfig (L_J = 100, lower bound 6) and is deduplicated the same
// way.
//
// Two layers are memoized, both keyed by canonical fingerprints
// (env.Config.Fingerprint plus the Options fields that feed the point):
//
//   - points: the Table I Counters of one evaluated sweep point;
//   - schemes: the trained/solved policy.Scheme a point evaluates. Training
//     never reads the evaluation seed (the DQN trains in a Seed+1000
//     environment), so points differing only in evaluation seed share one
//     trained scheme and are evaluated in lockstep through env.BatchRun.
//
// A Cache is safe for concurrent use from any number of experiment runs.
// Each entry is computed exactly once: concurrent requests for an in-flight
// key block until the first requester fills it. Memoization is exact — keys
// include every input that determines the result — so cached results are
// bit-identical to recomputation, and a Cache may be shared across runs with
// different budgets or engines (their keys differ).
type Cache struct {
	mu      sync.Mutex
	points  map[string]*pointEntry
	schemes map[string]*schemeEntry
	fields  map[string]*fieldEntry

	hits   atomic.Int64
	misses atomic.Int64

	fieldHits   atomic.Int64
	fieldMisses atomic.Int64
}

// NewCache returns an empty cache, ready to be shared across experiment runs
// via Options.Cache.
func NewCache() *Cache {
	return &Cache{
		points:  make(map[string]*pointEntry),
		schemes: make(map[string]*schemeEntry),
		fields:  make(map[string]*fieldEntry),
	}
}

// CacheStats reports cache effectiveness for one or more runs.
type CacheStats struct {
	// PointHits counts point lookups served from memoized Counters
	// (including waits on a point another goroutine was computing).
	PointHits int64
	// PointMisses counts points this cache had to compute.
	PointMisses int64
	// Schemes counts unique trained/solved schemes held.
	Schemes int
	// FieldHits / FieldMisses count the same for memoized field-simulator
	// runs (fig10/fig11/scale share their runs through this layer).
	FieldHits   int64
	FieldMisses int64
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	schemes := len(c.schemes)
	c.mu.Unlock()
	return CacheStats{
		PointHits:   c.hits.Load(),
		PointMisses: c.misses.Load(),
		Schemes:     schemes,
		FieldHits:   c.fieldHits.Load(),
		FieldMisses: c.fieldMisses.Load(),
	}
}

// pointEntry is one memoized sweep-point result. done is closed once c/err
// are final; readers block on it.
type pointEntry struct {
	done chan struct{}
	c    metrics.Counters
	err  error
}

// schemeEntry is one memoized trained/solved scheme, same protocol.
type schemeEntry struct {
	done chan struct{}
	s    *policy.Scheme
	err  error
}

// claimPoint returns the entry for key and whether the caller claimed it. A
// claimed entry MUST be filled (fields set, done closed) by the caller;
// unclaimed entries are filled — now or eventually — by whoever claimed them.
func (c *Cache) claimPoint(key string) (*pointEntry, bool) {
	c.mu.Lock()
	e, ok := c.points[key]
	if !ok {
		e = &pointEntry{done: make(chan struct{})}
		c.points[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e, false
	}
	c.misses.Add(1)
	return e, true
}

// scheme returns the memoized scheme for key, building it on first request.
// Concurrent requests for an in-flight key block until the build finishes or
// their context ends — a dead builder elsewhere must not wedge waiters.
func (c *Cache) scheme(ctx context.Context, key string, build func() (*policy.Scheme, error)) (*policy.Scheme, error) {
	c.mu.Lock()
	e, ok := c.schemes[key]
	if !ok {
		e = &schemeEntry{done: make(chan struct{})}
		c.schemes[key] = e
	}
	c.mu.Unlock()
	if !ok {
		e.s, e.err = build()
		close(e.done)
		return e.s, e.err
	}
	select {
	case <-e.done:
		return e.s, e.err
	case <-ctx.Done():
		return nil, fmt.Errorf("experiments: waiting for in-flight scheme: %w", ctx.Err())
	}
}

// waitPoint blocks until a point entry is filled or ctx ends. A filled entry
// always wins the race: the unconditional first select makes an expired
// context irrelevant for results that are already available.
func waitPoint(ctx context.Context, e *pointEntry) (metrics.Counters, error) {
	select {
	case <-e.done:
		return e.c, e.err
	default:
	}
	select {
	case <-e.done:
		return e.c, e.err
	case <-ctx.Done():
		return metrics.Counters{}, fmt.Errorf("experiments: waiting for in-flight sweep point: %w", ctx.Err())
	}
}

// ImportPoint installs an externally computed point result — a distributed
// worker's Counters — under its canonical key (see PointKey). Point results
// are pure functions of their keys, so importing a key that is already
// resolved is a no-op (the stored value is identical by construction), and a
// key that is locally in flight is left for its claimant to fill.
func (c *Cache) ImportPoint(key string, counters metrics.Counters) {
	c.mu.Lock()
	e, ok := c.points[key]
	if !ok {
		e = &pointEntry{done: make(chan struct{})}
		c.points[key] = e
	}
	c.mu.Unlock()
	if ok {
		return
	}
	e.c = counters
	close(e.done)
}

// pointKey is the canonical fingerprint of one sweep point: everything that
// determines its Counters. cfg.Fingerprint covers the environment (including
// the evaluation seed); Engine/TrainSlots/Seed pin the scheme construction
// (see rlScheme) and Slots the evaluation length.
func pointKey(o Options, cfg env.Config) string {
	return fmt.Sprintf("pt|%s|eng=%d|fast=%t|train=%d|seed=%d|slots=%d",
		cfg.Fingerprint(), int(o.Engine), o.Fast32, o.TrainSlots, o.Seed, o.Slots)
}

// schemeKey fingerprints the trained/solved scheme a point evaluates. Scheme
// construction never reads the evaluation seed — the DQN trains in a copy of
// cfg reseeded to o.Seed+1000 and draws its own randomness from o.Seed, and
// the MDP model is seed-free — so the evaluation seed is zeroed out of the
// key and points differing only in it share one scheme.
func schemeKey(o Options, cfg env.Config) string {
	cfg.Seed = 0
	return fmt.Sprintf("sc|%s|eng=%d|fast=%t|train=%d|seed=%d",
		cfg.Fingerprint(), int(o.Engine), o.Fast32, o.TrainSlots, o.Seed)
}

// rlScheme builds the engine-selected batched scheme of the paper's "RL FH"
// defense for one environment configuration, training the DQN if the engine
// asks for it. This is the (expensive) compute memoized by Cache.scheme.
func rlScheme(o Options, cfg env.Config) (*policy.Scheme, error) {
	switch o.Engine {
	case EngineDQN:
		acfg := core.DefaultDQNAgentConfig(cfg.Channels, len(cfg.TxPowers), cfg.SweepWidth)
		acfg.Seed = o.Seed
		acfg.Epsilon.DecaySteps = o.TrainSlots * 2 / 3
		agent, err := core.NewDQNAgent(acfg)
		if err != nil {
			return nil, err
		}
		trainCfg := cfg
		trainCfg.Seed = o.Seed + 1000
		trainEnv, err := env.New(trainCfg)
		if err != nil {
			return nil, err
		}
		if _, err := agent.Train(trainEnv, o.TrainSlots); err != nil {
			return nil, err
		}
		if o.Fast32 {
			return agent.SchemeFast32()
		}
		return agent.Scheme()
	case EngineMDP:
		model, err := core.NewModel(core.ParamsFromEnv(cfg))
		if err != nil {
			return nil, err
		}
		agent, err := core.NewMDPAgent(model, nil, cfg.Channels, cfg.SweepWidth)
		if err != nil {
			return nil, err
		}
		return agent.Scheme(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown engine %v", o.Engine)
	}
}

// runPoints evaluates one Table I counter set per config through the shared
// point cache. Configs are grouped by scheme fingerprint; each group's
// not-yet-cached points are evaluated together in lockstep through
// policy.Scheme.Run / env.BatchRun, so one batched network forward per slot
// carries every sibling point of a shared agent. Groups fan out over
// o.Workers goroutines.
//
// Determinism: point results are pure functions of their keys, BatchRun is
// bit-identical to serial runs at any batch size, and counters are collected
// into a slice indexed by config — so the output is bit-for-bit independent
// of worker count, group composition and prior cache state. label(i)
// describes config i in error messages.
func runPoints(o Options, cfgs []env.Config, label func(i int) string) ([]metrics.Counters, error) {
	cache := o.Cache
	if cache == nil {
		// withFloor normally installs a private cache; a nil cache here
		// means a direct internal call, which still wants intra-call dedup.
		cache = NewCache()
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}

	// Group configs by the scheme they evaluate, preserving first-appearance
	// order so work distribution is deterministic.
	var order []string
	groups := make(map[string][]int, len(cfgs))
	for i, cfg := range cfgs {
		k := schemeKey(o, cfg)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}

	entries := make([]*pointEntry, len(cfgs))
	err := parallel.ForEach(o.Workers, len(order), func(g int) error {
		idxs := groups[order[g]]
		// Claim the group's uncached points. Duplicate keys inside the group
		// (identical configs) resolve to one claim; the rest read the entry.
		claimed := idxs[:0:0]
		for _, i := range idxs {
			e, claim := cache.claimPoint(pointKey(o, cfgs[i]))
			entries[i] = e
			if claim {
				claimed = append(claimed, i)
			}
		}
		if len(claimed) == 0 {
			return nil
		}
		// A claimed entry must always be filled, or waiters deadlock.
		fill := func(cs []metrics.Counters, err error) {
			for j, i := range claimed {
				e := entries[i]
				if err != nil {
					e.err = err
				} else {
					e.c = cs[j]
				}
				close(e.done)
			}
		}
		scheme, err := cache.scheme(ctx, order[g], func() (*policy.Scheme, error) {
			return rlScheme(o, cfgs[claimed[0]])
		})
		if err != nil {
			fill(nil, err)
			return nil
		}
		envs := make([]*env.Environment, len(claimed))
		for j, i := range claimed {
			if envs[j], err = env.New(cfgs[i]); err != nil {
				fill(nil, err)
				return nil
			}
		}
		cs, err := scheme.Run(envs, o.Slots)
		fill(cs, err)
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]metrics.Counters, len(cfgs))
	var firstErr error
	for i, e := range entries {
		// Entries claimed by a concurrent run may still be in flight; the
		// wait is context-bounded so a claimant that died elsewhere (e.g. a
		// lost distributed worker) cannot wedge this caller forever.
		c, werr := waitPoint(ctx, e)
		if werr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", label(i), werr)
			}
			if ctx.Err() != nil {
				// The context is gone: every remaining in-flight wait would
				// fail the same way, so stop collecting.
				return nil, firstErr
			}
			continue
		}
		out[i] = c
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
