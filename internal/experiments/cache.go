package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/metrics"
	"ctjam/internal/parallel"
	"ctjam/internal/policy"
)

// Cache memoizes sweep-point compute across experiment runs. The 20 metric
// panels of Figs. 6-8 are 4 parameter sweeps crossed with 5 Table I metrics:
// every metric panel of one sweep revisits exactly the same (config, engine,
// budget, seed) points, and ST/AH/SH/AP/SP are all pure functions of one
// counter set — so a run that shares a Cache trains and evaluates each unique
// point exactly once and the remaining panels read the memoized Counters.
// Table I itself coincides with the sweep points that evaluate
// env.DefaultConfig (L_J = 100, lower bound 6) and is deduplicated the same
// way.
//
// Two layers are memoized, both keyed by canonical fingerprints
// (env.Config.Fingerprint plus the Options fields that feed the point):
//
//   - points: the Table I Counters of one evaluated sweep point;
//   - schemes: the trained/solved policy.Scheme a point evaluates. Training
//     never reads the evaluation seed (the DQN trains in a Seed+1000
//     environment), so points differing only in evaluation seed share one
//     trained scheme and are evaluated in lockstep through env.BatchRun.
//
// A Cache is safe for concurrent use from any number of experiment runs.
// Each entry is computed exactly once: concurrent requests for an in-flight
// key block until the first requester fills it. Memoization is exact — keys
// include every input that determines the result — so cached results are
// bit-identical to recomputation, and a Cache may be shared across runs with
// different budgets or engines (their keys differ).
type Cache struct {
	mu      sync.Mutex
	points  map[string]*pointEntry
	schemes map[string]*schemeEntry
	fields  map[string]*fieldEntry

	hits   atomic.Int64
	misses atomic.Int64

	fieldHits   atomic.Int64
	fieldMisses atomic.Int64

	schemeBuilds  atomic.Int64
	schemeImports atomic.Int64
}

// NewCache returns an empty cache, ready to be shared across experiment runs
// via Options.Cache.
func NewCache() *Cache {
	return &Cache{
		points:  make(map[string]*pointEntry),
		schemes: make(map[string]*schemeEntry),
		fields:  make(map[string]*fieldEntry),
	}
}

// CacheStats reports cache effectiveness for one or more runs.
type CacheStats struct {
	// PointHits counts point lookups served from memoized Counters
	// (including waits on a point another goroutine was computing).
	PointHits int64
	// PointMisses counts points this cache had to compute.
	PointMisses int64
	// Schemes counts unique trained/solved schemes held.
	Schemes int
	// SchemeBuilds counts schemes this cache trained or solved locally.
	// Deterministic baseline schemes (Point.Defense != "") are excluded:
	// they carry no checkpoint, every process rebuilds them from the config
	// in microseconds, and counting them would break the fleet accounting.
	// SchemeImports counts schemes installed from an external checkpoint
	// (a coordinator's scheme store or a merged spool) instead of training.
	// Fleet-wide, the sum of SchemeBuilds across workers equals the number
	// of unique trainable scheme keys when checkpoint distribution works.
	SchemeBuilds  int64
	SchemeImports int64
	// FieldHits / FieldMisses count the same for memoized field-simulator
	// runs (fig10/fig11/scale share their runs through this layer).
	FieldHits   int64
	FieldMisses int64
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	schemes := len(c.schemes)
	c.mu.Unlock()
	return CacheStats{
		PointHits:     c.hits.Load(),
		PointMisses:   c.misses.Load(),
		Schemes:       schemes,
		SchemeBuilds:  c.schemeBuilds.Load(),
		SchemeImports: c.schemeImports.Load(),
		FieldHits:     c.fieldHits.Load(),
		FieldMisses:   c.fieldMisses.Load(),
	}
}

// pointEntry is one memoized sweep-point result. done is closed once c/err
// are final; readers block on it.
type pointEntry struct {
	done chan struct{}
	c    metrics.Counters
	err  error
}

// schemeEntry is one memoized trained/solved scheme, same protocol. blob is
// the scheme's canonical CTSC checkpoint (see internal/core DecodeScheme):
// locally built schemes keep the bytes they were rebuilt from, imported ones
// the bytes they were installed from, so any resolved entry can be exported.
type schemeEntry struct {
	done chan struct{}
	s    *policy.Scheme
	blob []byte
	err  error
}

// claimPoint returns the entry for key and whether the caller claimed it. A
// claimed entry MUST be filled (fields set, done closed) by the caller;
// unclaimed entries are filled — now or eventually — by whoever claimed them.
func (c *Cache) claimPoint(key string) (*pointEntry, bool) {
	c.mu.Lock()
	e, ok := c.points[key]
	if !ok {
		e = &pointEntry{done: make(chan struct{})}
		c.points[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e, false
	}
	c.misses.Add(1)
	return e, true
}

// scheme returns the memoized scheme for key, building it on first request.
// Concurrent requests for an in-flight key block until the build finishes or
// their context ends — a dead builder elsewhere must not wedge waiters. The
// build also yields the scheme's canonical checkpoint bytes, kept alongside
// the entry for export.
func (c *Cache) scheme(ctx context.Context, key string, build func() (*policy.Scheme, []byte, error)) (*policy.Scheme, error) {
	c.mu.Lock()
	e, ok := c.schemes[key]
	if !ok {
		e = &schemeEntry{done: make(chan struct{})}
		c.schemes[key] = e
	}
	c.mu.Unlock()
	if !ok {
		e.s, e.blob, e.err = build()
		if e.blob != nil {
			// Only checkpoint-bearing (trained/solved) schemes count toward
			// the fleet-wide build accounting; blobless baseline schemes are
			// rebuilt wherever needed.
			c.schemeBuilds.Add(1)
		}
		close(e.done)
		return e.s, e.err
	}
	select {
	case <-e.done:
		return e.s, e.err
	case <-ctx.Done():
		return nil, fmt.Errorf("experiments: waiting for in-flight scheme: %w", ctx.Err())
	}
}

// SchemeBytes returns the canonical checkpoint of a resolved scheme entry,
// or false if the key is unknown, still in flight, or failed. The returned
// slice is the cache's own copy and must not be mutated.
func (c *Cache) SchemeBytes(key string) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.schemes[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
	default:
		return nil, false
	}
	if e.err != nil || e.blob == nil {
		return nil, false
	}
	return e.blob, true
}

// ImportScheme installs an externally trained scheme checkpoint under its
// canonical key (see SchemeKey), so points evaluating that scheme skip
// training. The blob is decoded and rebuilt before the entry is claimed, so
// a corrupt checkpoint never poisons the cache. Scheme construction is a
// pure function of the key, so importing an already resolved or in-flight
// key is a no-op: the existing entry is identical by construction.
func (c *Cache) ImportScheme(key string, blob []byte) error {
	ck, err := core.DecodeScheme(blob)
	if err != nil {
		return err
	}
	s, err := ck.Scheme()
	if err != nil {
		return err
	}
	c.mu.Lock()
	e, ok := c.schemes[key]
	if !ok {
		e = &schemeEntry{done: make(chan struct{})}
		c.schemes[key] = e
	}
	c.mu.Unlock()
	if ok {
		return nil
	}
	c.schemeImports.Add(1)
	e.s = s
	e.blob = append([]byte(nil), blob...)
	close(e.done)
	return nil
}

// SchemeBlob is one exported scheme checkpoint: the canonical cache key and
// the CTSC bytes resolving it.
type SchemeBlob struct {
	Key  string
	Data []byte
}

// ExportSchemes returns every resolved scheme checkpoint the cache holds,
// sorted by key. Static-mode spool shards persist these so MergeSpools can
// account for fleet-wide training work.
func (c *Cache) ExportSchemes() []SchemeBlob {
	c.mu.Lock()
	entries := make(map[string]*schemeEntry, len(c.schemes))
	for k, e := range c.schemes {
		entries[k] = e
	}
	c.mu.Unlock()
	var out []SchemeBlob
	for k, e := range entries {
		select {
		case <-e.done:
		default:
			continue
		}
		if e.err != nil || e.blob == nil {
			continue
		}
		out = append(out, SchemeBlob{Key: k, Data: e.blob})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// SchemeKey returns the canonical scheme cache key of one RL FH sweep point
// under o, applying the same option defaulting Run does. This is the unit key
// of distributed train units: the coordinator derives it from CachePoints
// specs and workers recompute it from the wire-decoded pair before training.
// Baseline-defense points never train, so this only covers the RL scheme.
func SchemeKey(o Options, cfg env.Config) string {
	return schemeKey(o.withFloor(), Point{Config: cfg})
}

// TrainScheme trains (or solves) the scheme one sweep point evaluates and
// returns its canonical key and checkpoint bytes. The result is installed in
// the cache, so a worker that later evaluates points of the same scheme
// reuses it without a fetch. If the key is already resolved — trained
// earlier, or imported — the held checkpoint is returned without retraining.
func (c *Cache) TrainScheme(ctx context.Context, o Options, cfg env.Config) (key string, blob []byte, err error) {
	o = o.withFloor()
	if ctx == nil {
		ctx = context.Background()
	}
	key = schemeKey(o, Point{Config: cfg})
	if _, err := c.scheme(ctx, key, func() (*policy.Scheme, []byte, error) {
		return buildScheme(o, cfg)
	}); err != nil {
		return key, nil, err
	}
	blob, ok := c.SchemeBytes(key)
	if !ok {
		return key, nil, fmt.Errorf("experiments: scheme %s resolved without checkpoint bytes", key)
	}
	return key, blob, nil
}

// waitPoint blocks until a point entry is filled or ctx ends. A filled entry
// always wins the race: the unconditional first select makes an expired
// context irrelevant for results that are already available.
func waitPoint(ctx context.Context, e *pointEntry) (metrics.Counters, error) {
	select {
	case <-e.done:
		return e.c, e.err
	default:
	}
	select {
	case <-e.done:
		return e.c, e.err
	case <-ctx.Done():
		return metrics.Counters{}, fmt.Errorf("experiments: waiting for in-flight sweep point: %w", ctx.Err())
	}
}

// ImportPoint installs an externally computed point result — a distributed
// worker's Counters — under its canonical key (see PointKey). Point results
// are pure functions of their keys, so importing a key that is already
// resolved is a no-op (the stored value is identical by construction), and a
// key that is locally in flight is left for its claimant to fill.
func (c *Cache) ImportPoint(key string, counters metrics.Counters) {
	c.mu.Lock()
	e, ok := c.points[key]
	if !ok {
		e = &pointEntry{done: make(chan struct{})}
		c.points[key] = e
	}
	c.mu.Unlock()
	if ok {
		return
	}
	e.c = counters
	close(e.done)
}

// pointKey is the canonical fingerprint of one sweep point: everything that
// determines its Counters. cfg.Fingerprint covers the environment (including
// the evaluation seed and the attacker spec); Engine/TrainSlots/Seed pin the
// scheme construction (see schemeCheckpoint) and Slots the evaluation length.
// The defense tag joins the key only when it deviates from the default RL FH,
// so every pre-matchup key stays byte-identical.
func pointKey(o Options, p Point) string {
	key := fmt.Sprintf("pt|%s|eng=%d|fast=%t|train=%d|seed=%d|slots=%d",
		p.Config.Fingerprint(), int(o.Engine), o.Fast32, o.TrainSlots, o.Seed, o.Slots)
	if p.Defense != "" {
		key += "|def=" + p.Defense
	}
	return key
}

// schemeKey fingerprints the trained/solved scheme a point evaluates. Scheme
// construction never reads the evaluation seed — the DQN trains in a copy of
// cfg reseeded to o.Seed+1000 and draws its own randomness from o.Seed, and
// the MDP model is seed-free — so the evaluation seed is zeroed out of the
// key and points differing only in it share one scheme. Baseline defenses are
// pure functions of the config (no engine, no training), so their keys carry
// the defense tag instead of the engine fields.
func schemeKey(o Options, p Point) string {
	cfg := p.Config
	cfg.Seed = 0
	if p.Defense != "" {
		return fmt.Sprintf("sc|def=%s|%s", p.Defense, cfg.Fingerprint())
	}
	return fmt.Sprintf("sc|%s|eng=%d|fast=%t|train=%d|seed=%d",
		cfg.Fingerprint(), int(o.Engine), o.Fast32, o.TrainSlots, o.Seed)
}

// schemeCheckpoint trains/solves the engine-selected scheme of the paper's
// "RL FH" defense for one environment configuration and captures it as a
// distributable CTSC checkpoint. This is the expensive compute memoized by
// Cache.scheme and deduplicated fleet-wide by distributed train units.
func schemeCheckpoint(o Options, cfg env.Config) (*core.SchemeCheckpoint, error) {
	switch o.Engine {
	case EngineDQN:
		acfg := core.DefaultDQNAgentConfig(cfg.Channels, len(cfg.TxPowers), cfg.SweepWidth)
		acfg.Seed = o.Seed
		acfg.Epsilon.DecaySteps = o.TrainSlots * 2 / 3
		agent, err := core.NewDQNAgent(acfg)
		if err != nil {
			return nil, err
		}
		trainCfg := cfg
		trainCfg.Seed = o.Seed + 1000
		trainEnv, err := env.New(trainCfg)
		if err != nil {
			return nil, err
		}
		if _, err := agent.Train(trainEnv, o.TrainSlots); err != nil {
			return nil, err
		}
		return agent.SchemeCheckpoint(o.Fast32)
	case EngineMDP:
		model, err := core.NewModel(core.ParamsFromEnv(cfg))
		if err != nil {
			return nil, err
		}
		sol, err := model.Solve(0.9)
		if err != nil {
			return nil, err
		}
		return core.NewMDPSchemeCheckpoint("MDP*", model, sol.Policy, cfg.Channels, cfg.SweepWidth)
	default:
		return nil, fmt.Errorf("experiments: unknown engine %v", o.Engine)
	}
}

// baselineScheme builds one of the deterministic baseline defenses. They
// carry no learned state, so there is no checkpoint blob: a nil blob keeps
// them out of scheme exports and checkpoint shipping, and every process
// rebuilds them identically from the config alone.
func baselineScheme(defense string, cfg env.Config) (*policy.Scheme, error) {
	switch defense {
	case DefensePassive:
		return policy.PassiveFHScheme(cfg.Channels, cfg.SweepWidth, core.DefaultJamThreshold)
	case DefenseRandom:
		return policy.RandomFHScheme(cfg.Channels, cfg.SweepWidth, len(cfg.TxPowers))
	case DefenseStatic:
		return policy.StaticScheme(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown defense %q", defense)
	}
}

// buildSchemeFor builds the scheme one point evaluates: the engine-selected
// RL FH for an empty defense tag, a deterministic baseline otherwise.
func buildSchemeFor(o Options, p Point) (*policy.Scheme, []byte, error) {
	if p.Defense == "" {
		return buildScheme(o, p.Config)
	}
	s, err := baselineScheme(p.Defense, p.Config)
	return s, nil, err
}

// buildScheme trains the scheme and returns it together with its canonical
// checkpoint bytes. The returned scheme is rebuilt from the encoded blob —
// not taken from the live trainer — so a local trainer and a remote worker
// installing the same checkpoint run byte-identical schemes by construction.
func buildScheme(o Options, cfg env.Config) (*policy.Scheme, []byte, error) {
	ck, err := schemeCheckpoint(o, cfg)
	if err != nil {
		return nil, nil, err
	}
	blob, err := ck.Encode()
	if err != nil {
		return nil, nil, err
	}
	dec, err := core.DecodeScheme(blob)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: checkpoint does not round-trip: %w", err)
	}
	s, err := dec.Scheme()
	if err != nil {
		return nil, nil, err
	}
	return s, blob, nil
}

// runPoints evaluates one Table I counter set per config through the shared
// point cache. Configs are grouped by scheme fingerprint; each group's
// not-yet-cached points are evaluated together in lockstep through
// policy.Scheme.Run / env.BatchRun, so one batched network forward per slot
// carries every sibling point of a shared agent. Groups fan out over
// o.Workers goroutines.
//
// Determinism: point results are pure functions of their keys, BatchRun is
// bit-identical to serial runs at any batch size, and counters are collected
// into a slice indexed by config — so the output is bit-for-bit independent
// of worker count, group composition and prior cache state. label(i)
// describes config i in error messages.
func runPoints(o Options, pts []Point, label func(i int) string) ([]metrics.Counters, error) {
	cache := o.Cache
	if cache == nil {
		// withFloor normally installs a private cache; a nil cache here
		// means a direct internal call, which still wants intra-call dedup.
		cache = NewCache()
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}

	// Group points by the scheme they evaluate, preserving first-appearance
	// order so work distribution is deterministic.
	var order []string
	groups := make(map[string][]int, len(pts))
	for i, p := range pts {
		k := schemeKey(o, p)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}

	entries := make([]*pointEntry, len(pts))
	err := parallel.ForEach(o.Workers, len(order), func(g int) error {
		idxs := groups[order[g]]
		// Claim the group's uncached points. Duplicate keys inside the group
		// (identical points) resolve to one claim; the rest read the entry.
		claimed := idxs[:0:0]
		for _, i := range idxs {
			e, claim := cache.claimPoint(pointKey(o, pts[i]))
			entries[i] = e
			if claim {
				claimed = append(claimed, i)
			}
		}
		if len(claimed) == 0 {
			return nil
		}
		// A claimed entry must always be filled, or waiters deadlock.
		fill := func(cs []metrics.Counters, err error) {
			for j, i := range claimed {
				e := entries[i]
				if err != nil {
					e.err = err
				} else {
					e.c = cs[j]
				}
				close(e.done)
			}
		}
		scheme, err := cache.scheme(ctx, order[g], func() (*policy.Scheme, []byte, error) {
			return buildSchemeFor(o, pts[claimed[0]])
		})
		if err != nil {
			fill(nil, err)
			return nil
		}
		envs := make([]*env.Environment, len(claimed))
		for j, i := range claimed {
			if envs[j], err = env.New(pts[i].Config); err != nil {
				fill(nil, err)
				return nil
			}
		}
		cs, err := scheme.Run(envs, o.Slots)
		fill(cs, err)
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]metrics.Counters, len(pts))
	var firstErr error
	for i, e := range entries {
		// Entries claimed by a concurrent run may still be in flight; the
		// wait is context-bounded so a claimant that died elsewhere (e.g. a
		// lost distributed worker) cannot wedge this caller forever.
		c, werr := waitPoint(ctx, e)
		if werr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", label(i), werr)
			}
			if ctx.Err() != nil {
				// The context is gone: every remaining in-flight wait would
				// fail the same way, so stop collecting.
				return nil, firstErr
			}
			continue
		}
		out[i] = c
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
