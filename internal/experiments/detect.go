package experiments

import (
	"math/rand"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/ids"
	"ctjam/internal/phy/zigbee"
)

// runDetect extends the stealth experiment to the defender's conclusion:
// for each jamming signal, the victim's slot losses (from the environment
// trace) are combined with its receiver's PHY observations and fed to the
// IDS detector. EmuBee should be classified as cross-technology jamming at
// best — never as a conventional jammer — because it leaves no packet-log
// evidence; the conventional ZigBee jammer is positively identified.
func runDetect(o Options) (*Result, error) {
	// Slot-level losses: a passive victim under the sweeping jammer.
	ecfg := env.DefaultConfig()
	ecfg.Seed = o.Seed
	e, err := env.New(ecfg)
	if err != nil {
		return nil, err
	}
	passive, err := core.NewPassiveFH(ecfg.Channels, ecfg.SweepWidth)
	if err != nil {
		return nil, err
	}
	slots := o.Slots
	if slots > 4000 {
		slots = 4000
	}
	_, records, err := env.RunTrace(e, passive, slots)
	if err != nil {
		return nil, err
	}
	lossEvidence := ids.FromTrace(records)

	// PHY-level observations per jamming signal: symbol streams as the
	// victim's demodulator would deliver them (runStealth validates that
	// the waveform-level pipeline produces exactly these).
	rng := rand.New(rand.NewSource(o.Seed))
	emuStream := make([]uint8, 2000) // chip-matched preamble flood
	var zbStream []uint8
	for len(zbStream) < 2000 {
		payload := make([]byte, 8)
		if _, err := rng.Read(payload); err != nil {
			return nil, err
		}
		frame, err := zigbee.EncodeFrame(payload)
		if err != nil {
			return nil, err
		}
		zbStream = append(zbStream, zigbee.BytesToSymbols(frame)...)
	}
	noise := make([]uint8, 2000)
	for i := range noise {
		noise[i] = uint8(rng.Intn(16))
	}

	detector, err := ids.NewDetector(ids.DefaultConfig())
	if err != nil {
		return nil, err
	}

	res := &Result{
		Title:  "IDS verdicts per jamming signal",
		XLabel: "signal",
		YLabel: "verdict code / evidence counts",
		XTicks: []string{"EmuBee", "ZigBee", "WiFi-noise"},
		PaperNote: "§II-B consequence: the defender identifies a conventional jammer " +
			"from its packet log but can at most infer CTJ from phantom busy time",
	}
	verdicts := Series{Name: "verdict (1=clean 2=intf 3=conv 4=ctj)"}
	packetEvidence := Series{Name: "packet-log evidence"}
	phantoms := Series{Name: "phantom syncs"}
	for i, stream := range [][]uint8{emuStream, zbStream, noise} {
		rep := zigbee.ProcessSymbolStream(stream)
		ev := lossEvidence
		ev.Merge(ids.FromReceiverReport(rep, 0, 0, 0, 0))
		v := detector.Classify(ev)
		verdicts.X = append(verdicts.X, float64(i))
		verdicts.Y = append(verdicts.Y, float64(v))
		packetEvidence.X = append(packetEvidence.X, float64(i))
		packetEvidence.Y = append(packetEvidence.Y, float64(ev.CRCFailures+ev.AlienPackets))
		phantoms.X = append(phantoms.X, float64(i))
		phantoms.Y = append(phantoms.Y, float64(ev.PhantomSyncs))
	}
	res.Series = append(res.Series, verdicts, packetEvidence, phantoms)
	return res, nil
}
