package experiments

import (
	"bytes"

	"ctjam/internal/core"
	"ctjam/internal/env"
)

// runTrain reproduces the §IV-B training report: train the DQN online,
// then report the transition count, model parameter count and serialized
// size (the paper: >120000 data blocks, 10664 floats, 42.7 KB).
func runTrain(o Options) (*Result, error) {
	cfg := env.DefaultConfig()
	cfg.Seed = o.Seed
	acfg := core.DefaultDQNAgentConfig(cfg.Channels, len(cfg.TxPowers), cfg.SweepWidth)
	acfg.Seed = o.Seed
	acfg.Epsilon.DecaySteps = o.TrainSlots * 2 / 3
	agent, err := core.NewDQNAgent(acfg)
	if err != nil {
		return nil, err
	}
	trainEnv, err := env.New(cfg)
	if err != nil {
		return nil, err
	}
	avgReward, err := agent.Train(trainEnv, o.TrainSlots)
	if err != nil {
		return nil, err
	}

	var buf bytes.Buffer
	if err := agent.SaveModel(&buf); err != nil {
		return nil, err
	}

	evalEnv, err := env.New(cfg)
	if err != nil {
		return nil, err
	}
	c, err := env.Run(evalEnv, agent, o.Slots)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Title:  "DQN training statistics",
		XLabel: "quantity",
		YLabel: "value",
		XTicks: []string{
			"training transitions",
			"model parameters (floats)",
			"model size (KB)",
			"avg reward/slot",
			"post-training ST (%)",
		},
		PaperNote: "§IV-B: >120000 data blocks, model of 10664 floats in 42.7 KB; " +
			"§IV-C reports ~78% ST at the default parameters",
	}
	res.Series = append(res.Series, Series{
		Name: "measured",
		X:    []float64{0, 1, 2, 3, 4},
		Y: []float64{
			float64(o.TrainSlots),
			float64(agent.Network().ParamCount()),
			float64(buf.Len()) / 1024,
			avgReward,
			100 * c.ST(),
		},
	})
	return res, nil
}
