package experiments

import (
	"strings"
	"testing"

	"ctjam/internal/env"
)

// Regression tests for the cache-key engine contract: the numeric engine
// choice (MDP vs DQN, and exact vs fast32 inference) must be part of every
// point and scheme fingerprint, so a fast-path evaluation can never be
// served from — or poison — an exact-path cache entry.

func TestCacheKeysIncludeEngineChoice(t *testing.T) {
	cfg := env.DefaultConfig()
	base := cacheTestOptions()
	base.Engine = EngineDQN

	fast := base
	fast.Fast32 = true

	if pointKey(base, Point{Config: cfg}) == pointKey(fast, Point{Config: cfg}) {
		t.Fatalf("point keys must differ by fast32 flag: %q", pointKey(base, Point{Config: cfg}))
	}
	if schemeKey(base, Point{Config: cfg}) == schemeKey(fast, Point{Config: cfg}) {
		t.Fatalf("scheme keys must differ by fast32 flag: %q", schemeKey(base, Point{Config: cfg}))
	}

	mdp := base
	mdp.Engine = EngineMDP
	if pointKey(base, Point{Config: cfg}) == pointKey(mdp, Point{Config: cfg}) {
		t.Fatalf("point keys must differ by engine: %q", pointKey(base, Point{Config: cfg}))
	}

	// A shared cache keeps the two engine variants as distinct entries.
	c := NewCache()
	if _, claimed := c.claimPoint(pointKey(base, Point{Config: cfg})); !claimed {
		t.Fatal("first exact-point claim should miss")
	}
	if _, claimed := c.claimPoint(pointKey(fast, Point{Config: cfg})); !claimed {
		t.Fatal("fast32 point must not be served from the exact entry")
	}
	if _, claimed := c.claimPoint(pointKey(base, Point{Config: cfg})); claimed {
		t.Fatal("repeat exact-point claim should hit")
	}
}

// TestFast32NormalizedForNonDQN pins the withFloor canonicalization: Fast32
// only affects DQN inference, so for other engines the flag is stripped
// before it can split identical computations into distinct cache entries.
func TestFast32NormalizedForNonDQN(t *testing.T) {
	cfg := env.DefaultConfig()
	o := cacheTestOptions() // EngineMDP
	o.Fast32 = true
	of := o.withFloor()
	if of.Fast32 {
		t.Fatal("withFloor must clear Fast32 for non-DQN engines")
	}
	o2 := cacheTestOptions()
	if pointKey(of, Point{Config: cfg}) != pointKey(o2.withFloor(), Point{Config: cfg}) {
		t.Fatal("MDP point keys must be identical regardless of the fast32 flag")
	}

	dqn := cacheTestOptions()
	dqn.Engine = EngineDQN
	dqn.Fast32 = true
	if !dqn.withFloor().Fast32 {
		t.Fatal("withFloor must keep Fast32 for EngineDQN")
	}
}

// TestPointKeyCarriesFast32Tag guards the wire contract: distributed workers
// recompute PointKey from decoded payloads and compare strings, so the tag's
// presence (not just key inequality) is what version drift trips over.
func TestPointKeyCarriesFast32Tag(t *testing.T) {
	cfg := env.DefaultConfig()
	o := cacheTestOptions()
	o.Engine = EngineDQN
	o.Fast32 = true
	key := PointKey(o, Point{Config: cfg})
	if !strings.Contains(key, "fast=true") {
		t.Fatalf("point key %q does not carry the fast32 tag", key)
	}
	o.Fast32 = false
	if !strings.Contains(PointKey(o, Point{Config: cfg}), "fast=false") {
		t.Fatalf("point key %q does not carry the fast32 tag", PointKey(o, Point{Config: cfg}))
	}
}
