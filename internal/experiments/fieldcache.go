package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/iot"
	"ctjam/internal/parallel"
)

// Field-simulator scheme tags. A FieldSpec names its anti-jamming scheme by
// tag so the spec stays a pure value: workers rebuild the agent from the tag
// and the Options budget, which the field key fingerprints.
const (
	// FieldSchemePSV is the paper's passive FH baseline.
	FieldSchemePSV = "psv"
	// FieldSchemeRand is the random FH baseline.
	FieldSchemeRand = "rand"
	// FieldSchemeRL is the RL FH defense (engine-selected, like sweeps).
	FieldSchemeRL = "rl"
	// FieldSchemeStatic never hops — the "w/o Jx" reference scheme.
	FieldSchemeStatic = "static"
)

// FieldSpec identifies one unique field-simulator run: the network layout,
// jammer setting, scheme tag, and run length. Together with the Options
// budget (fingerprinted into the cache key) it fully determines an
// iot.RunStats, so equal keys mean bit-identical results — the property the
// cache and the distributed field units rely on.
type FieldSpec struct {
	// Scheme is one of the FieldScheme tags.
	Scheme string
	// Jammer enables the cross-technology jammer.
	Jammer bool
	// Clusters is the number of independent hopping clusters (1 = the
	// paper's single star network; >1 runs the sharded engine).
	Clusters int
	// Nodes is the peripheral-node count per cluster.
	Nodes int
	// SlotDuration / JammerSlot follow iot.Config.
	SlotDuration time.Duration
	JammerSlot   time.Duration
	// Seed is the base simulation seed (cluster streams derive from it).
	Seed int64
	// Slots is the run length in Tx slots per cluster.
	Slots int
}

// fieldKey is the canonical fingerprint of one field run under o. The RL
// scheme's agent depends on the sweep engine, training budget, and option
// seed; for the other schemes those fields are zeroed so an irrelevant flag
// cannot split the cache.
func fieldKey(o Options, s FieldSpec) string {
	eng, fast, train, oseed := 0, false, 0, int64(0)
	if s.Scheme == FieldSchemeRL {
		eng, fast, train, oseed = int(o.Engine), o.Fast32, o.TrainSlots, o.Seed
	}
	return fmt.Sprintf("fd|sch=%s|jam=%t|cl=%d|n=%d|slot=%d|jslot=%d|seed=%d|slots=%d|eng=%d|fast=%t|train=%d|oseed=%d",
		s.Scheme, s.Jammer, s.Clusters, s.Nodes, int64(s.SlotDuration), int64(s.JammerSlot),
		s.Seed, s.Slots, eng, fast, train, oseed)
}

// FieldKey returns the canonical cache key of one field run under o,
// applying the same option defaulting Run does. Distributed workers
// recompute it from the wire-decoded (Options, FieldSpec) pair and compare
// against the coordinator's key, catching codec or version drift before a
// wrong result can be imported.
func FieldKey(o Options, s FieldSpec) string {
	return fieldKey(o.withFloor(), s)
}

// Validate checks the spec.
func (s FieldSpec) Validate() error {
	switch s.Scheme {
	case FieldSchemePSV, FieldSchemeRand, FieldSchemeRL, FieldSchemeStatic:
	default:
		return fmt.Errorf("experiments: unknown field scheme %q", s.Scheme)
	}
	if s.Clusters < 1 {
		return fmt.Errorf("experiments: field spec needs at least 1 cluster")
	}
	if s.Slots < 1 {
		return fmt.Errorf("experiments: field spec needs at least 1 slot")
	}
	return nil
}

// fieldEntry is one memoized field-run result, same done-channel protocol as
// pointEntry.
type fieldEntry struct {
	done chan struct{}
	s    iot.RunStats
	err  error
}

// claimField returns the entry for key and whether the caller claimed it; a
// claimed entry MUST be filled by the caller.
func (c *Cache) claimField(key string) (*fieldEntry, bool) {
	c.mu.Lock()
	e, ok := c.fields[key]
	if !ok {
		e = &fieldEntry{done: make(chan struct{})}
		c.fields[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.fieldHits.Add(1)
		return e, false
	}
	c.fieldMisses.Add(1)
	return e, true
}

// waitField blocks until a field entry is filled or ctx ends; a filled entry
// always wins the race.
func waitField(ctx context.Context, e *fieldEntry) (iot.RunStats, error) {
	select {
	case <-e.done:
		return e.s, e.err
	default:
	}
	select {
	case <-e.done:
		return e.s, e.err
	case <-ctx.Done():
		return iot.RunStats{}, fmt.Errorf("experiments: waiting for in-flight field run: %w", ctx.Err())
	}
}

// ImportFieldRun installs an externally computed field run — a distributed
// worker's RunStats — under its canonical key (see FieldKey). Like
// ImportPoint, importing an already-resolved key is a no-op and an in-flight
// key is left for its claimant.
func (c *Cache) ImportFieldRun(key string, stats iot.RunStats) {
	c.mu.Lock()
	e, ok := c.fields[key]
	if !ok {
		e = &fieldEntry{done: make(chan struct{})}
		c.fields[key] = e
	}
	c.mu.Unlock()
	if ok {
		return
	}
	e.s = stats
	close(e.done)
}

// fieldConfig materializes the per-cluster iot.Config of a spec.
func fieldConfig(s FieldSpec) iot.Config {
	cfg := iot.DefaultConfig()
	cfg.Nodes = s.Nodes
	cfg.SlotDuration = s.SlotDuration
	cfg.JammerSlot = s.JammerSlot
	cfg.JammerEnabled = s.Jammer
	cfg.Seed = s.Seed
	return cfg
}

// fieldAgent builds one fresh agent instance for a spec's scheme. Agents are
// stateful, so every simulator (and every engine cluster) gets its own copy;
// construction is deterministic in (o, spec).
func fieldAgent(o Options, s FieldSpec, cfg iot.Config) (env.Agent, error) {
	switch s.Scheme {
	case FieldSchemePSV:
		return core.NewPassiveFH(cfg.Channels, cfg.SweepWidth)
	case FieldSchemeRand:
		return core.NewRandomFH(cfg.Channels, cfg.SweepWidth, len(cfg.TxPowers))
	case FieldSchemeRL:
		return fieldRLAgent(o, cfg)
	case FieldSchemeStatic:
		return core.Static{}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown field scheme %q", s.Scheme)
	}
}

// computeFieldSpec executes one field run. Single-cluster specs run the
// classic Simulator; multi-cluster specs run the sharded engine and project
// its field-wide statistics. Either way the result is a pure function of
// (o, spec) — o.Workers only shards the engine and never changes results.
func computeFieldSpec(o Options, s FieldSpec) (iot.RunStats, error) {
	if err := s.Validate(); err != nil {
		return iot.RunStats{}, err
	}
	cfg := fieldConfig(s)
	if s.Clusters == 1 {
		agent, err := fieldAgent(o, s, cfg)
		if err != nil {
			return iot.RunStats{}, err
		}
		sim, err := iot.New(cfg)
		if err != nil {
			return iot.RunStats{}, err
		}
		return sim.Run(agent, s.Slots)
	}
	eng, err := iot.NewEngine(iot.EngineConfig{Clusters: s.Clusters, Template: cfg, Workers: o.Workers})
	if err != nil {
		return iot.RunStats{}, err
	}
	st, err := eng.Run(func(int) (env.Agent, error) { return fieldAgent(o, s, cfg) }, s.Slots)
	if err != nil {
		return iot.RunStats{}, err
	}
	return st.RunStats(), nil
}

// runFieldSpecs evaluates one RunStats per spec through the shared field
// cache, fanning uncached specs out across o.Workers goroutines. Results are
// collected into a slice indexed by spec, so the output is bit-identical at
// any worker count and for any prior cache state. The fig10 panels share
// their 5 runs through this path (goodput and utilization read the same
// runs), as do repeated invocations of the fig11 panels.
func runFieldSpecs(o Options, specs []FieldSpec) ([]iot.RunStats, error) {
	cache := o.Cache
	if cache == nil {
		cache = NewCache()
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	entries := make([]*fieldEntry, len(specs))
	claimed := make([]bool, len(specs))
	for i, s := range specs {
		entries[i], claimed[i] = cache.claimField(fieldKey(o, s))
	}
	err := parallel.ForEach(o.Workers, len(specs), func(i int) error {
		if !claimed[i] {
			return nil
		}
		e := entries[i]
		e.s, e.err = computeFieldSpec(o, specs[i])
		close(e.done)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]iot.RunStats, len(specs))
	for i, e := range entries {
		st, werr := waitField(ctx, e)
		if werr != nil {
			return nil, fmt.Errorf("field run %s: %w", specs[i].Scheme, werr)
		}
		out[i] = st
	}
	return out, nil
}

// CacheFieldSpecs enumerates the unique field runs the given experiment ids
// evaluate under o, sorted by Key — the field-run analogue of CachePoints
// and the work list internal/dist shards for whole-simulation replica units.
// Ids with no field-cache-backed compute contribute nothing; unknown ids
// return ErrUnknownExperiment.
func CacheFieldSpecs(o Options, ids []string) ([]FieldSpecKeyed, error) {
	o = o.withFloor()
	seen := make(map[string]bool)
	var out []FieldSpecKeyed
	for _, id := range ids {
		e, err := lookup(id)
		if err != nil {
			return nil, err
		}
		if e.fields == nil {
			continue
		}
		for _, s := range e.fields(o) {
			k := fieldKey(o, s)
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, FieldSpecKeyed{Key: k, Spec: s})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// FieldSpecKeyed pairs a FieldSpec with its canonical cache key, mirroring
// PointSpec for the distributed work list.
type FieldSpecKeyed struct {
	// Key is the canonical field-run fingerprint — the Cache memoization
	// key. Equal keys mean bit-identical results.
	Key string
	// Spec describes the run.
	Spec FieldSpec
}

// EvaluateFieldSpecs computes the RunStats of the given field specs under o,
// through the shared field cache. This is the worker-side entry point of
// distributed field execution: results are bit-identical to the same specs'
// evaluation inside a single-process Run, because both paths are
// runFieldSpecs over canonical keys.
func EvaluateFieldSpecs(o Options, specs []FieldSpec) ([]iot.RunStats, error) {
	o = o.withFloor()
	return runFieldSpecs(o, specs)
}
