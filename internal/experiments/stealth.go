package experiments

import (
	"math/rand"

	"ctjam/internal/phy/emulate"
	"ctjam/internal/phy/wifi"
	"ctjam/internal/phy/zigbee"
)

// runStealth quantifies the paper's §II-B stealthiness claim: it feeds each
// jamming signal type through the victim's demodulator and packet-processing
// state machine and reports (a) how much of the receiver's time the signal
// occupies and (b) how many defender-visible events (decoded packets, CRC
// failures) it leaves behind. EmuBee is built as a preamble-flood emulation
// — ZigBee chip structure with no frame behind it — so it busies the radio
// while logging nothing.
func runStealth(o Options) (*Result, error) {
	rng := rand.New(rand.NewSource(o.Seed))
	mod, err := zigbee.NewModulator(zigbee.DefaultSamplesPerChip)
	if err != nil {
		return nil, err
	}

	// EmuBee: Wi-Fi emulation of a pure preamble stream (all-zero
	// symbols), the paper's example of a packet the victim can never
	// finish decoding.
	preamble := make([]uint8, 48)
	designed, err := mod.ModulateSymbols(preamble)
	if err != nil {
		return nil, err
	}
	em, err := emulate.New()
	if err != nil {
		return nil, err
	}
	emRes, err := em.Emulate(designed)
	if err != nil {
		return nil, err
	}
	emuSyms, err := mod.DemodulateSymbols(emRes.Wave, len(preamble))
	if err != nil {
		return nil, err
	}

	// Conventional ZigBee jamming: valid frames with random payloads.
	var zbSyms []uint8
	for len(zbSyms) < len(emuSyms) {
		payload := make([]byte, 8)
		if _, err := rng.Read(payload); err != nil {
			return nil, err
		}
		frame, err := zigbee.EncodeFrame(payload)
		if err != nil {
			return nil, err
		}
		zbSyms = append(zbSyms, zigbee.BytesToSymbols(frame)...)
	}

	// Plain Wi-Fi: OFDM noise demodulated as ZigBee symbols.
	tx, err := wifi.NewTransmitter(wifi.DefaultScramblerSeed)
	if err != nil {
		return nil, err
	}
	bits := make([]uint8, 8*wifi.BitsPerOFDMSymbolPayload)
	for i := range bits {
		bits[i] = uint8(rng.Intn(2))
	}
	wfWave, _, err := tx.Transmit(bits)
	if err != nil {
		return nil, err
	}
	nWfSyms := len(wfWave) / (zigbee.ChipsPerSymbol * mod.SamplesPerChip())
	wfSyms, err := mod.DemodulateSymbols(wfWave, nWfSyms)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Title:  "stealthiness of jamming signals at the victim receiver",
		XLabel: "signal",
		YLabel: "busy fraction / detectable events",
		XTicks: []string{"EmuBee", "ZigBee", "WiFi"},
		PaperNote: "§II-B: EmuBee busies the victim's decoder without producing " +
			"any loggable packet events; conventional ZigBee jamming is detectable",
	}
	busy := Series{Name: "busy fraction"}
	events := Series{Name: "detectable events"}
	phantoms := Series{Name: "phantom syncs"}
	for i, stream := range [][]uint8{emuSyms, zbSyms, wfSyms} {
		rep := zigbee.ProcessSymbolStream(stream)
		busy.X = append(busy.X, float64(i))
		busy.Y = append(busy.Y, rep.BusyFraction())
		events.X = append(events.X, float64(i))
		events.Y = append(events.Y, float64(rep.DetectableEvents()))
		phantoms.X = append(phantoms.X, float64(i))
		phantoms.Y = append(phantoms.Y, float64(rep.PhantomSyncs))
	}
	res.Series = append(res.Series, busy, events, phantoms)
	return res, nil
}
