package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"ctjam/internal/nn"
	"ctjam/internal/policy"
	"ctjam/internal/rl"
)

// Scheme checkpoint format ("CTSC"): the wire form of one trained/solved
// policy.Scheme, the artifact fleet-wide scheme reuse ships through the
// distributed coordinator. A checkpoint carries everything needed to rebuild
// the scheme on another process — the family (DQN or MDP), the topology the
// encoders need, and the trained parameters (a CTJM network stream for DQN,
// the solved MDP's parameters and greedy action table for MDP) — and nothing
// environment-local.
//
// The encoding is canonical: Encode writes one fixed little-endian layout,
// DecodeScheme accepts exactly that layout (rejecting trailing bytes and
// out-of-range fields), and float64 values travel as raw IEEE-754 bits. So
// for every accepted stream, Encode(DecodeScheme(x)) == x byte for byte —
// the round-trip contract FuzzSchemeRoundTrip pins — and a SHA-256
// fingerprint of the bytes identifies the checkpoint content-addressably.

const (
	schemeMagic   = 0x43545343 // "CTSC"
	schemeVersion = 1

	// Decode bounds: generous multiples of anything the experiments build,
	// tight enough that a hostile stream cannot demand huge allocations.
	maxSchemeName     = 255
	maxSchemeChannels = 4096
	maxSchemePowers   = 256
	maxSchemeHistory  = 1024
)

// ErrBadScheme is returned when decoding an invalid scheme checkpoint.
var ErrBadScheme = errors.New("core: bad scheme checkpoint")

// SchemeFamily identifies the kind of policy a checkpoint rebuilds.
type SchemeFamily uint8

const (
	// SchemeDQN is a trained Q-network scheme (policy.DQNScheme over a CTJM
	// network stream).
	SchemeDQN SchemeFamily = 1
	// SchemeMDP is an exactly solved MDP scheme (policy.MDPScheme over the
	// model parameters and greedy action table).
	SchemeMDP SchemeFamily = 2
)

func (f SchemeFamily) String() string {
	switch f {
	case SchemeDQN:
		return "dqn"
	case SchemeMDP:
		return "mdp"
	default:
		return fmt.Sprintf("family(%d)", uint8(f))
	}
}

// SchemeCheckpoint is the decoded form of one CTSC stream. Exactly the
// fields of the checkpoint's family are meaningful.
type SchemeCheckpoint struct {
	Family SchemeFamily
	// Name is the scheme's display name ("RL FH", "MDP*", ...).
	Name string
	// Fast32 marks a DQN checkpoint whose scheme evaluates on the float32
	// fast engine (the weights themselves always travel as float64).
	Fast32 bool

	// Channels is shared by both families; Powers/HistoryLen/Net belong to
	// SchemeDQN, SweepWidth/Params/Actions to SchemeMDP.
	Channels   int
	Powers     int
	HistoryLen int
	Net        *nn.Network

	SweepWidth int
	Params     Params
	Actions    []int
}

// SchemeFingerprint returns the canonical content address of an encoded
// checkpoint: the hex SHA-256 of its bytes. Workers and the coordinator both
// recompute it on receive, so a corrupted or substituted blob cannot be
// installed under a healthy key.
func SchemeFingerprint(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// SchemeCheckpoint captures the agent's trained network as a distributable
// checkpoint. fast32 marks the checkpoint for the float32 fast inference
// engine (the weights still travel exact). The checkpoint references the
// live network, so encode it before any further training.
func (a *DQNAgent) SchemeCheckpoint(fast32 bool) (*SchemeCheckpoint, error) {
	return &SchemeCheckpoint{
		Family:     SchemeDQN,
		Name:       a.Name(),
		Fast32:     fast32,
		Channels:   a.cfg.Channels,
		Powers:     a.cfg.Powers,
		HistoryLen: a.cfg.HistoryLen,
		Net:        a.Network(),
	}, nil
}

// NewMDPSchemeCheckpoint captures a solved model's greedy policy as a
// distributable checkpoint for a K-channel system.
func NewMDPSchemeCheckpoint(name string, m *Model, solved []int, channels, sweepWidth int) (*SchemeCheckpoint, error) {
	if err := checkTopology(channels, sweepWidth); err != nil {
		return nil, err
	}
	if len(solved) != m.NumStates() {
		return nil, fmt.Errorf("core: policy has %d states, model needs %d", len(solved), m.NumStates())
	}
	return &SchemeCheckpoint{
		Family:     SchemeMDP,
		Name:       name,
		Channels:   channels,
		SweepWidth: sweepWidth,
		Params:     m.Params(),
		Actions:    append([]int(nil), solved...),
	}, nil
}

// validate checks the checkpoint fields against the same bounds DecodeScheme
// enforces, so Encode never emits a stream Decode would reject.
func (c *SchemeCheckpoint) validate() error {
	if len(c.Name) > maxSchemeName {
		return fmt.Errorf("%w: name of %d bytes exceeds %d", ErrBadScheme, len(c.Name), maxSchemeName)
	}
	if c.Channels < 2 || c.Channels > maxSchemeChannels {
		return fmt.Errorf("%w: channels %d out of range [2,%d]", ErrBadScheme, c.Channels, maxSchemeChannels)
	}
	switch c.Family {
	case SchemeDQN:
		if c.Powers < 1 || c.Powers > maxSchemePowers {
			return fmt.Errorf("%w: powers %d out of range [1,%d]", ErrBadScheme, c.Powers, maxSchemePowers)
		}
		if c.HistoryLen < 1 || c.HistoryLen > maxSchemeHistory {
			return fmt.Errorf("%w: history length %d out of range [1,%d]", ErrBadScheme, c.HistoryLen, maxSchemeHistory)
		}
		if c.Net == nil {
			return fmt.Errorf("%w: dqn checkpoint without a network", ErrBadScheme)
		}
		var first, last *nn.Dense
		for _, l := range c.Net.Layers {
			if d, ok := l.(*nn.Dense); ok {
				if first == nil {
					first = d
				}
				last = d
			}
		}
		if first == nil {
			return fmt.Errorf("%w: network has no dense layers", ErrBadScheme)
		}
		if first.W.Value.Rows != 3*c.HistoryLen || last.W.Value.Cols != c.Channels*c.Powers {
			return fmt.Errorf("%w: network shape %dx%d does not match history %d / %d channels x %d powers",
				ErrBadScheme, first.W.Value.Rows, last.W.Value.Cols, c.HistoryLen, c.Channels, c.Powers)
		}
	case SchemeMDP:
		if c.Fast32 {
			return fmt.Errorf("%w: fast32 applies only to dqn checkpoints", ErrBadScheme)
		}
		if err := checkTopology(c.Channels, c.SweepWidth); err != nil {
			return fmt.Errorf("%w: %v", ErrBadScheme, err)
		}
		cycle := (c.Channels + c.SweepWidth - 1) / c.SweepWidth
		if c.Params.SweepCycle != cycle {
			return fmt.Errorf("%w: sweep cycle %d does not match %d channels / width %d (want %d)",
				ErrBadScheme, c.Params.SweepCycle, c.Channels, c.SweepWidth, cycle)
		}
		if len(c.Params.TxPowers) < 1 || len(c.Params.TxPowers) > maxSchemePowers {
			return fmt.Errorf("%w: %d tx powers out of range [1,%d]", ErrBadScheme, len(c.Params.TxPowers), maxSchemePowers)
		}
		if err := c.Params.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadScheme, err)
		}
		if len(c.Actions) != c.Params.SweepCycle+1 {
			return fmt.Errorf("%w: %d actions for %d states", ErrBadScheme, len(c.Actions), c.Params.SweepCycle+1)
		}
		for s, a := range c.Actions {
			if a < 0 || a >= 2*len(c.Params.TxPowers) {
				return fmt.Errorf("%w: action %d at state %d out of range [0,%d)", ErrBadScheme, a, s, 2*len(c.Params.TxPowers))
			}
		}
	default:
		return fmt.Errorf("%w: unknown family %d", ErrBadScheme, uint8(c.Family))
	}
	return nil
}

// Encode serializes the checkpoint into its canonical CTSC byte stream.
func (c *SchemeCheckpoint) Encode() ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }
	w(uint32(schemeMagic))
	w(uint32(schemeVersion))
	w(uint8(c.Family))
	w(boolByte(c.Fast32))
	w(uint16(len(c.Name)))
	buf.WriteString(c.Name)
	w(uint32(c.Channels))
	switch c.Family {
	case SchemeDQN:
		w(uint32(c.Powers))
		w(uint32(c.HistoryLen))
		if err := c.Net.Save(&buf); err != nil {
			return nil, err
		}
	case SchemeMDP:
		w(uint32(c.SweepWidth))
		w(uint32(len(c.Params.TxPowers)))
		for _, v := range c.Params.TxPowers {
			w(v)
		}
		for _, v := range c.Params.WinProb {
			w(v)
		}
		w(c.Params.LossHop)
		w(c.Params.LossJam)
		for _, a := range c.Actions {
			w(uint32(a))
		}
	}
	return buf.Bytes(), nil
}

// DecodeScheme parses a CTSC stream. It accepts exactly the canonical
// encoding: any accepted input re-encodes to identical bytes, and trailing
// data, bad magic or out-of-range fields are errors.
func DecodeScheme(data []byte) (*SchemeCheckpoint, error) {
	r := bytes.NewReader(data)
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic, version uint32
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScheme, err)
	}
	if magic != schemeMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadScheme, magic)
	}
	if err := read(&version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScheme, err)
	}
	if version != schemeVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadScheme, version)
	}
	var family, fast32 uint8
	var nameLen uint16
	for _, v := range []any{&family, &fast32, &nameLen} {
		if err := read(v); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadScheme, err)
		}
	}
	if fast32 > 1 {
		return nil, fmt.Errorf("%w: fast32 flag %d", ErrBadScheme, fast32)
	}
	if nameLen > maxSchemeName {
		return nil, fmt.Errorf("%w: name of %d bytes exceeds %d", ErrBadScheme, nameLen, maxSchemeName)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrBadScheme, err)
	}
	c := &SchemeCheckpoint{
		Family: SchemeFamily(family),
		Name:   string(name),
		Fast32: fast32 == 1,
	}
	var channels uint32
	if err := read(&channels); err != nil {
		return nil, fmt.Errorf("%w: channels: %v", ErrBadScheme, err)
	}
	// Bound before any allocation sized from it (the action table is
	// SweepCycle+1 entries, and SweepCycle can approach Channels).
	if channels < 2 || channels > maxSchemeChannels {
		return nil, fmt.Errorf("%w: channels %d out of range [2,%d]", ErrBadScheme, channels, maxSchemeChannels)
	}
	c.Channels = int(channels)
	switch c.Family {
	case SchemeDQN:
		var powers, history uint32
		for _, v := range []any{&powers, &history} {
			if err := read(v); err != nil {
				return nil, fmt.Errorf("%w: dqn header: %v", ErrBadScheme, err)
			}
		}
		c.Powers, c.HistoryLen = int(powers), int(history)
		net, err := nn.Load(r)
		if err != nil {
			return nil, fmt.Errorf("%w: network: %v", ErrBadScheme, err)
		}
		c.Net = net
	case SchemeMDP:
		var sweepWidth, nPowers uint32
		for _, v := range []any{&sweepWidth, &nPowers} {
			if err := read(v); err != nil {
				return nil, fmt.Errorf("%w: mdp header: %v", ErrBadScheme, err)
			}
		}
		if nPowers < 1 || nPowers > maxSchemePowers {
			return nil, fmt.Errorf("%w: %d tx powers out of range [1,%d]", ErrBadScheme, nPowers, maxSchemePowers)
		}
		c.SweepWidth = int(sweepWidth)
		if c.SweepWidth < 1 || c.SweepWidth > c.Channels {
			return nil, fmt.Errorf("%w: sweep width %d out of range [1,%d]", ErrBadScheme, c.SweepWidth, c.Channels)
		}
		c.Params.SweepCycle = (c.Channels + c.SweepWidth - 1) / c.SweepWidth
		c.Params.TxPowers = make([]float64, nPowers)
		c.Params.WinProb = make([]float64, nPowers)
		for i := range c.Params.TxPowers {
			if err := read(&c.Params.TxPowers[i]); err != nil {
				return nil, fmt.Errorf("%w: tx powers: %v", ErrBadScheme, err)
			}
		}
		for i := range c.Params.WinProb {
			if err := read(&c.Params.WinProb[i]); err != nil {
				return nil, fmt.Errorf("%w: win probabilities: %v", ErrBadScheme, err)
			}
		}
		for _, v := range []any{&c.Params.LossHop, &c.Params.LossJam} {
			if err := read(v); err != nil {
				return nil, fmt.Errorf("%w: losses: %v", ErrBadScheme, err)
			}
		}
		c.Actions = make([]int, c.Params.SweepCycle+1)
		for i := range c.Actions {
			var a uint32
			if err := read(&a); err != nil {
				return nil, fmt.Errorf("%w: actions: %v", ErrBadScheme, err)
			}
			c.Actions[i] = int(a)
		}
	default:
		return nil, fmt.Errorf("%w: unknown family %d", ErrBadScheme, family)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadScheme, r.Len())
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Scheme rebuilds the batched policy.Scheme the checkpoint describes. The
// result is behaviorally identical — bit for bit on the exact engine — to
// the scheme the original trainer held: weights and action tables travel as
// exact float64 bits / integers, and the encoders are rebuilt from the same
// topology fields.
func (c *SchemeCheckpoint) Scheme() (*policy.Scheme, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	switch c.Family {
	case SchemeDQN:
		snap, err := rl.NewSnapshot(c.Net)
		if err != nil {
			return nil, err
		}
		if c.Fast32 {
			if snap, err = snap.Fast32(); err != nil {
				return nil, err
			}
		}
		return policy.DQNScheme(c.Name, snap, c.Channels, c.Powers, c.HistoryLen)
	case SchemeMDP:
		model, err := NewModel(c.Params)
		if err != nil {
			return nil, err
		}
		return policy.MDPScheme(c.Name, model, c.Actions, c.Channels, c.SweepWidth)
	default:
		return nil, fmt.Errorf("%w: unknown family %d", ErrBadScheme, uint8(c.Family))
	}
}
