package core

import (
	"bytes"
	"testing"

	"ctjam/internal/env"
	"ctjam/internal/jammer"
)

// smallCheckpoints builds one compact checkpoint per scheme family — a few
// KB each, so the mutation engine iterates quickly — plus the fast32 variant
// of the DQN one.
func smallCheckpoints(f testing.TB) []*SchemeCheckpoint {
	cfg := env.Config{
		Channels:   6,
		SweepWidth: 2,
		TxPowers:   []float64{6, 8, 10},
		JamPowers:  []float64{7, 9},
		JammerMode: jammer.ModeMax,
		LossHop:    1,
		LossJam:    10,
		Seed:       3,
	}
	acfg := DefaultDQNAgentConfig(cfg.Channels, len(cfg.TxPowers), cfg.SweepWidth)
	acfg.HistoryLen = 2
	acfg.Hidden = []int{12}
	acfg.WarmupSize = 32
	acfg.Seed = 3
	agent, err := NewDQNAgent(acfg)
	if err != nil {
		f.Fatal(err)
	}
	e, err := env.New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := agent.Train(e, 64); err != nil {
		f.Fatal(err)
	}
	dqn, err := agent.SchemeCheckpoint(false)
	if err != nil {
		f.Fatal(err)
	}
	fast := *dqn
	fast.Fast32 = true
	m, err := NewModel(ParamsFromEnv(cfg))
	if err != nil {
		f.Fatal(err)
	}
	sol, err := m.Solve(0.9)
	if err != nil {
		f.Fatal(err)
	}
	mdpCk, err := NewMDPSchemeCheckpoint("MDP*", m, sol.Policy, cfg.Channels, cfg.SweepWidth)
	if err != nil {
		f.Fatal(err)
	}
	return []*SchemeCheckpoint{dqn, &fast, mdpCk}
}

// FuzzSchemeRoundTrip pins the canonical-encoding contract of the CTSC wire
// format fleet-wide scheme reuse depends on: any stream DecodeScheme accepts
// must re-encode to exactly the input bytes (so fingerprints are stable no
// matter which process re-serializes a checkpoint), and decoding must never
// panic or over-allocate on hostile input.
func FuzzSchemeRoundTrip(f *testing.F) {
	for _, ck := range smallCheckpoints(f) {
		data, err := ck.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("CTSC"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeScheme(data)
		if err != nil {
			return
		}
		enc, err := ck.Encode()
		if err != nil {
			t.Fatalf("decoded checkpoint fails to encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("re-encode differs from accepted input: %d vs %d bytes", len(enc), len(data))
		}
		if fp := SchemeFingerprint(enc); fp != SchemeFingerprint(data) {
			t.Fatalf("fingerprint drifted across round trip: %s vs %s", fp, SchemeFingerprint(data))
		}
		// A decodable checkpoint must rebuild into a runnable scheme. The one
		// carve-out is fast32: quantization rejects degenerate-but-loadable
		// layer stacks (e.g. a ReLU before any dense layer) that the exact
		// engine tolerates, so there a rebuild error is acceptable — but
		// never a panic.
		if _, err := ck.Scheme(); err != nil && !ck.Fast32 {
			t.Fatalf("decoded checkpoint fails to rebuild: %v", err)
		}
	})
}
