package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"ctjam/internal/env"
	"ctjam/internal/jammer"
)

// Training checkpoint format: a "CTTC" header followed by the training-loop
// cursor (slots completed, reward accumulator), the agent's rolling history
// window, the environment snapshot (RNG, channel, slot and sweeper state)
// and finally the learner state from rl.DQN.SaveState. Restoring all of it
// into a same-config agent and environment makes a resumed run bit-identical
// to one that never stopped.

const (
	trainMagic   = 0x43545443 // "CTTC"
	trainVersion = 1
)

// ErrBadTrainingCheckpoint is returned when decoding an invalid training
// checkpoint.
var ErrBadTrainingCheckpoint = errors.New("core: bad training checkpoint")

// TrainingCursor is the loop progress restored by LoadTraining.
type TrainingCursor struct {
	// Slot is the number of training slots already completed.
	Slot int
	// TotalReward is the reward summed over those slots.
	TotalReward float64
}

// SaveTraining writes a complete mid-training snapshot: the loop cursor, the
// agent's history window, the environment state and the DQN learner state.
func (a *DQNAgent) SaveTraining(w io.Writer, e *env.Environment, cur TrainingCursor) error {
	write := func(v any) error { return binary.Write(w, binary.LittleEndian, v) }
	st := e.State()
	for _, v := range []any{
		uint32(trainMagic), uint32(trainVersion),
		uint64(cur.Slot), math.Float64bits(cur.TotalReward),
		uint32(len(a.hist.Window())),
	} {
		if err := write(v); err != nil {
			return err
		}
	}
	for _, x := range a.hist.Window() {
		if err := write(math.Float64bits(x)); err != nil {
			return err
		}
	}
	for _, v := range []any{
		st.RNG, uint32(st.Channel), uint64(st.Slot), boolByte(st.Started),
		boolByte(st.Sweeper.Locked), uint64(int64(st.Sweeper.LockBlock)),
		uint32(len(st.Sweeper.Remaining)),
	} {
		if err := write(v); err != nil {
			return err
		}
	}
	for _, b := range st.Sweeper.Remaining {
		if err := write(uint32(b)); err != nil {
			return err
		}
	}
	return a.dqn.SaveState(w)
}

// LoadTraining restores a snapshot written by SaveTraining into the agent
// and environment, both of which must have been built with the same
// configuration as at save time. It returns the restored loop cursor.
func (a *DQNAgent) LoadTraining(r io.Reader, e *env.Environment) (TrainingCursor, error) {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic, version uint32
	var slot, totalBits uint64
	var histLen uint32
	for _, v := range []any{&magic, &version, &slot, &totalBits, &histLen} {
		if err := read(v); err != nil {
			return TrainingCursor{}, fmt.Errorf("%w: header: %v", ErrBadTrainingCheckpoint, err)
		}
	}
	if magic != trainMagic {
		return TrainingCursor{}, fmt.Errorf("%w: bad magic %#x", ErrBadTrainingCheckpoint, magic)
	}
	if version != trainVersion {
		return TrainingCursor{}, fmt.Errorf("%w: unsupported version %d", ErrBadTrainingCheckpoint, version)
	}
	if slot > 1<<40 {
		return TrainingCursor{}, fmt.Errorf("%w: implausible slot %d", ErrBadTrainingCheckpoint, slot)
	}
	if int(histLen) != 3*a.cfg.HistoryLen {
		return TrainingCursor{}, fmt.Errorf("%w: history has %d values, agent wants %d",
			ErrBadTrainingCheckpoint, histLen, 3*a.cfg.HistoryLen)
	}
	hist := make([]float64, histLen)
	for i := range hist {
		var bits uint64
		if err := read(&bits); err != nil {
			return TrainingCursor{}, fmt.Errorf("%w: history: %v", ErrBadTrainingCheckpoint, err)
		}
		hist[i] = math.Float64frombits(bits)
	}

	var envRNG, envSlot, lockBlock uint64
	var envChannel, nRemaining uint32
	var started, locked uint8
	for _, v := range []any{&envRNG, &envChannel, &envSlot, &started, &locked, &lockBlock, &nRemaining} {
		if err := read(v); err != nil {
			return TrainingCursor{}, fmt.Errorf("%w: environment: %v", ErrBadTrainingCheckpoint, err)
		}
	}
	if started > 1 || locked > 1 {
		return TrainingCursor{}, fmt.Errorf("%w: bad flags started=%d locked=%d", ErrBadTrainingCheckpoint, started, locked)
	}
	if envSlot > 1<<40 || nRemaining > 1<<16 {
		return TrainingCursor{}, fmt.Errorf("%w: implausible env slot=%d remaining=%d",
			ErrBadTrainingCheckpoint, envSlot, nRemaining)
	}
	remaining := make([]int, nRemaining)
	for i := range remaining {
		var b uint32
		if err := read(&b); err != nil {
			return TrainingCursor{}, fmt.Errorf("%w: sweeper: %v", ErrBadTrainingCheckpoint, err)
		}
		remaining[i] = int(b)
	}
	st := env.State{
		RNG:     envRNG,
		Channel: int(envChannel),
		Slot:    int(envSlot),
		Started: started == 1,
		Sweeper: jammer.SweeperState{
			Remaining: remaining,
			Locked:    locked == 1,
			LockBlock: int(int64(lockBlock)),
		},
	}

	// Restore the learner first: it validates against the agent's config
	// and leaves everything untouched on error, so the env and history are
	// only mutated once the whole stream has decoded.
	if err := a.dqn.LoadState(r); err != nil {
		return TrainingCursor{}, err
	}
	if err := e.SetState(st); err != nil {
		return TrainingCursor{}, fmt.Errorf("%w: %v", ErrBadTrainingCheckpoint, err)
	}
	if err := a.hist.SetWindow(hist); err != nil {
		return TrainingCursor{}, fmt.Errorf("%w: %v", ErrBadTrainingCheckpoint, err)
	}
	return TrainingCursor{Slot: int(slot), TotalReward: math.Float64frombits(totalBits)}, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
