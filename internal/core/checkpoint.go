package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"ctjam/internal/env"
	"ctjam/internal/jammer"
)

// Training checkpoint format: a "CTTC" header followed by the training-loop
// cursor (slots completed, reward accumulator), the agent's rolling history
// window, the environment snapshot (RNG, channel, slot and generic jammer
// strategy state) and finally the learner state from rl.DQN.SaveState.
// Restoring all of it into a same-config agent and environment makes a
// resumed run bit-identical to one that never stopped.
//
// Version 2 replaced the hardcoded sweeper triple (locked flag, lock block,
// remaining blocks) with the self-describing jammer.State encoding (kind tag,
// int/float payloads, optional nested inner state), so any strategy in the
// zoo checkpoints through the same codec.

const (
	trainMagic   = 0x43545443 // "CTTC"
	trainVersion = 2
)

// Caps on the jammer-state encoding; real states are far smaller, so these
// only bound what a corrupt stream can make us allocate.
const (
	maxJamKindLen  = 64
	maxJamPayload  = 1 << 16
	maxJamNesting  = 8
)

// writeJammerState encodes a jammer.State (recursively for wrappers).
func writeJammerState(w io.Writer, st jammer.State) error {
	write := func(v any) error { return binary.Write(w, binary.LittleEndian, v) }
	if len(st.Kind) > maxJamKindLen {
		return fmt.Errorf("core: jammer kind %q longer than %d bytes", st.Kind, maxJamKindLen)
	}
	if len(st.Ints) > maxJamPayload || len(st.Floats) > maxJamPayload {
		return fmt.Errorf("core: jammer state payload too large (%d ints, %d floats)", len(st.Ints), len(st.Floats))
	}
	if err := write(uint32(len(st.Kind))); err != nil {
		return err
	}
	if _, err := w.Write([]byte(st.Kind)); err != nil {
		return err
	}
	if err := write(uint32(len(st.Ints))); err != nil {
		return err
	}
	for _, x := range st.Ints {
		if err := write(uint64(x)); err != nil {
			return err
		}
	}
	if err := write(uint32(len(st.Floats))); err != nil {
		return err
	}
	for _, x := range st.Floats {
		if err := write(math.Float64bits(x)); err != nil {
			return err
		}
	}
	if st.Inner == nil {
		return write(uint8(0))
	}
	if err := write(uint8(1)); err != nil {
		return err
	}
	return writeJammerState(w, *st.Inner)
}

// readJammerState decodes an encoding written by writeJammerState.
func readJammerState(r io.Reader, depth int) (jammer.State, error) {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	if depth > maxJamNesting {
		return jammer.State{}, fmt.Errorf("%w: jammer state nested deeper than %d", ErrBadTrainingCheckpoint, maxJamNesting)
	}
	var kindLen uint32
	if err := read(&kindLen); err != nil {
		return jammer.State{}, fmt.Errorf("%w: jammer kind: %v", ErrBadTrainingCheckpoint, err)
	}
	if kindLen > maxJamKindLen {
		return jammer.State{}, fmt.Errorf("%w: implausible jammer kind length %d", ErrBadTrainingCheckpoint, kindLen)
	}
	kind := make([]byte, kindLen)
	if _, err := io.ReadFull(r, kind); err != nil {
		return jammer.State{}, fmt.Errorf("%w: jammer kind: %v", ErrBadTrainingCheckpoint, err)
	}
	st := jammer.State{Kind: string(kind)}
	var nInts uint32
	if err := read(&nInts); err != nil {
		return jammer.State{}, fmt.Errorf("%w: jammer ints: %v", ErrBadTrainingCheckpoint, err)
	}
	if nInts > maxJamPayload {
		return jammer.State{}, fmt.Errorf("%w: implausible jammer int count %d", ErrBadTrainingCheckpoint, nInts)
	}
	if nInts > 0 {
		st.Ints = make([]int64, nInts)
		for i := range st.Ints {
			var x uint64
			if err := read(&x); err != nil {
				return jammer.State{}, fmt.Errorf("%w: jammer ints: %v", ErrBadTrainingCheckpoint, err)
			}
			st.Ints[i] = int64(x)
		}
	}
	var nFloats uint32
	if err := read(&nFloats); err != nil {
		return jammer.State{}, fmt.Errorf("%w: jammer floats: %v", ErrBadTrainingCheckpoint, err)
	}
	if nFloats > maxJamPayload {
		return jammer.State{}, fmt.Errorf("%w: implausible jammer float count %d", ErrBadTrainingCheckpoint, nFloats)
	}
	if nFloats > 0 {
		st.Floats = make([]float64, nFloats)
		for i := range st.Floats {
			var bits uint64
			if err := read(&bits); err != nil {
				return jammer.State{}, fmt.Errorf("%w: jammer floats: %v", ErrBadTrainingCheckpoint, err)
			}
			st.Floats[i] = math.Float64frombits(bits)
		}
	}
	var hasInner uint8
	if err := read(&hasInner); err != nil {
		return jammer.State{}, fmt.Errorf("%w: jammer inner flag: %v", ErrBadTrainingCheckpoint, err)
	}
	switch hasInner {
	case 0:
	case 1:
		inner, err := readJammerState(r, depth+1)
		if err != nil {
			return jammer.State{}, err
		}
		st.Inner = &inner
	default:
		return jammer.State{}, fmt.Errorf("%w: bad jammer inner flag %d", ErrBadTrainingCheckpoint, hasInner)
	}
	return st, nil
}

// ErrBadTrainingCheckpoint is returned when decoding an invalid training
// checkpoint.
var ErrBadTrainingCheckpoint = errors.New("core: bad training checkpoint")

// TrainingCursor is the loop progress restored by LoadTraining.
type TrainingCursor struct {
	// Slot is the number of training slots already completed.
	Slot int
	// TotalReward is the reward summed over those slots.
	TotalReward float64
}

// SaveTraining writes a complete mid-training snapshot: the loop cursor, the
// agent's history window, the environment state and the DQN learner state.
func (a *DQNAgent) SaveTraining(w io.Writer, e *env.Environment, cur TrainingCursor) error {
	write := func(v any) error { return binary.Write(w, binary.LittleEndian, v) }
	st := e.State()
	for _, v := range []any{
		uint32(trainMagic), uint32(trainVersion),
		uint64(cur.Slot), math.Float64bits(cur.TotalReward),
		uint32(len(a.hist.Window())),
	} {
		if err := write(v); err != nil {
			return err
		}
	}
	for _, x := range a.hist.Window() {
		if err := write(math.Float64bits(x)); err != nil {
			return err
		}
	}
	for _, v := range []any{
		st.RNG, uint32(st.Channel), uint64(st.Slot), boolByte(st.Started),
	} {
		if err := write(v); err != nil {
			return err
		}
	}
	if err := writeJammerState(w, st.Jammer); err != nil {
		return err
	}
	return a.dqn.SaveState(w)
}

// LoadTraining restores a snapshot written by SaveTraining into the agent
// and environment, both of which must have been built with the same
// configuration as at save time. It returns the restored loop cursor.
func (a *DQNAgent) LoadTraining(r io.Reader, e *env.Environment) (TrainingCursor, error) {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic, version uint32
	var slot, totalBits uint64
	var histLen uint32
	for _, v := range []any{&magic, &version, &slot, &totalBits, &histLen} {
		if err := read(v); err != nil {
			return TrainingCursor{}, fmt.Errorf("%w: header: %v", ErrBadTrainingCheckpoint, err)
		}
	}
	if magic != trainMagic {
		return TrainingCursor{}, fmt.Errorf("%w: bad magic %#x", ErrBadTrainingCheckpoint, magic)
	}
	if version != trainVersion {
		return TrainingCursor{}, fmt.Errorf("%w: unsupported version %d", ErrBadTrainingCheckpoint, version)
	}
	if slot > 1<<40 {
		return TrainingCursor{}, fmt.Errorf("%w: implausible slot %d", ErrBadTrainingCheckpoint, slot)
	}
	if int(histLen) != 3*a.cfg.HistoryLen {
		return TrainingCursor{}, fmt.Errorf("%w: history has %d values, agent wants %d",
			ErrBadTrainingCheckpoint, histLen, 3*a.cfg.HistoryLen)
	}
	hist := make([]float64, histLen)
	for i := range hist {
		var bits uint64
		if err := read(&bits); err != nil {
			return TrainingCursor{}, fmt.Errorf("%w: history: %v", ErrBadTrainingCheckpoint, err)
		}
		hist[i] = math.Float64frombits(bits)
	}

	var envRNG, envSlot uint64
	var envChannel uint32
	var started uint8
	for _, v := range []any{&envRNG, &envChannel, &envSlot, &started} {
		if err := read(v); err != nil {
			return TrainingCursor{}, fmt.Errorf("%w: environment: %v", ErrBadTrainingCheckpoint, err)
		}
	}
	if started > 1 {
		return TrainingCursor{}, fmt.Errorf("%w: bad started flag %d", ErrBadTrainingCheckpoint, started)
	}
	if envSlot > 1<<40 {
		return TrainingCursor{}, fmt.Errorf("%w: implausible env slot %d", ErrBadTrainingCheckpoint, envSlot)
	}
	jamState, err := readJammerState(r, 1)
	if err != nil {
		return TrainingCursor{}, err
	}
	st := env.State{
		RNG:     envRNG,
		Channel: int(envChannel),
		Slot:    int(envSlot),
		Started: started == 1,
		Jammer:  jamState,
	}

	// Restore the learner first: it validates against the agent's config
	// and leaves everything untouched on error, so the env and history are
	// only mutated once the whole stream has decoded.
	if err := a.dqn.LoadState(r); err != nil {
		return TrainingCursor{}, err
	}
	if err := e.SetState(st); err != nil {
		return TrainingCursor{}, fmt.Errorf("%w: %v", ErrBadTrainingCheckpoint, err)
	}
	if err := a.hist.SetWindow(hist); err != nil {
		return TrainingCursor{}, fmt.Errorf("%w: %v", ErrBadTrainingCheckpoint, err)
	}
	return TrainingCursor{Slot: int(slot), TotalReward: math.Float64frombits(totalBits)}, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
