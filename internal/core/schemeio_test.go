package core

import (
	"bytes"
	"math/rand"
	"testing"

	"ctjam/internal/env"
)

// trainedCheckpoint builds a small trained DQN checkpoint for codec tests.
func trainedCheckpoint(t testing.TB, fast32 bool) *SchemeCheckpoint {
	t.Helper()
	cfg := env.DefaultConfig()
	acfg := DefaultDQNAgentConfig(cfg.Channels, len(cfg.TxPowers), cfg.SweepWidth)
	acfg.Seed = 7
	agent, err := NewDQNAgent(acfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := env.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(e, 300); err != nil {
		t.Fatal(err)
	}
	ck, err := agent.SchemeCheckpoint(fast32)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// solvedCheckpoint builds an MDP checkpoint from the default environment.
func solvedCheckpoint(t testing.TB) *SchemeCheckpoint {
	t.Helper()
	cfg := env.DefaultConfig()
	m, err := NewModel(ParamsFromEnv(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(0.9)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := NewMDPSchemeCheckpoint("MDP*", m, sol.Policy, cfg.Channels, cfg.SweepWidth)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// TestSchemeCheckpointRoundTrip pins the canonical-encoding contract for
// every scheme family: Encode -> DecodeScheme -> Encode is byte-identical,
// and the rebuilt scheme makes the same decisions as the original.
func TestSchemeCheckpointRoundTrip(t *testing.T) {
	cases := map[string]*SchemeCheckpoint{
		"dqn":        trainedCheckpoint(t, false),
		"dqn-fast32": trainedCheckpoint(t, true),
		"mdp":        solvedCheckpoint(t),
	}
	for name, ck := range cases {
		t.Run(name, func(t *testing.T) {
			data, err := ck.Encode()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeScheme(data)
			if err != nil {
				t.Fatal(err)
			}
			again, err := dec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("re-encode differs: %d vs %d bytes", len(data), len(again))
			}
			if dec.Family != ck.Family || dec.Name != ck.Name || dec.Fast32 != ck.Fast32 {
				t.Fatalf("decoded header %v/%q/%t, want %v/%q/%t",
					dec.Family, dec.Name, dec.Fast32, ck.Family, ck.Name, ck.Fast32)
			}
			want, err := ck.Scheme()
			if err != nil {
				t.Fatal(err)
			}
			got, err := dec.Scheme()
			if err != nil {
				t.Fatal(err)
			}
			// Same decisions over a shared random state batch.
			rng := rand.New(rand.NewSource(3))
			n := 64
			states := make([]float64, n*want.Policy().StateDim())
			if ck.Family == SchemeMDP {
				for i := range states {
					states[i] = float64(rng.Intn(ck.Params.SweepCycle + 1))
				}
			} else {
				for i := range states {
					states[i] = rng.Float64()*2 - 1
				}
			}
			wa := make([]int, n)
			ga := make([]int, n)
			if err := want.Policy().DecideBatch(states, wa); err != nil {
				t.Fatal(err)
			}
			if err := got.Policy().DecideBatch(states, ga); err != nil {
				t.Fatal(err)
			}
			for i := range wa {
				if wa[i] != ga[i] {
					t.Fatalf("decision %d: original %d, decoded %d", i, wa[i], ga[i])
				}
			}
		})
	}
}

// TestDecodeSchemeRejects exercises the decoder's strictness: corrupted or
// non-canonical streams must fail, never round-trip loosely.
func TestDecodeSchemeRejects(t *testing.T) {
	good, err := solvedCheckpoint(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeScheme(nil); err == nil {
		t.Error("empty stream accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := DecodeScheme(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeScheme(good[:len(good)-1]); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := DecodeScheme(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	ck := solvedCheckpoint(t)
	ck.Actions[0] = 2 * len(ck.Params.TxPowers) // out of range
	if _, err := ck.Encode(); err == nil {
		t.Error("out-of-range action encoded")
	}
	ck = solvedCheckpoint(t)
	ck.Fast32 = true
	if _, err := ck.Encode(); err == nil {
		t.Error("fast32 mdp checkpoint encoded")
	}
}

// TestSchemeFingerprint pins the content address: stable across calls,
// different for different content.
func TestSchemeFingerprint(t *testing.T) {
	a, err := solvedCheckpoint(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if SchemeFingerprint(a) != SchemeFingerprint(a) {
		t.Error("fingerprint not deterministic")
	}
	if len(SchemeFingerprint(a)) != 64 {
		t.Errorf("fingerprint length %d, want 64 hex chars", len(SchemeFingerprint(a)))
	}
	b := append([]byte(nil), a...)
	b[len(b)-1] ^= 1
	if SchemeFingerprint(a) == SchemeFingerprint(b) {
		t.Error("distinct content shares a fingerprint")
	}
}
