// Package core implements the paper's primary contribution: the hybrid
// anti-jamming scheme that jointly uses frequency hopping (FH) and power
// control (PC) against a cross-technology jammer.
//
// It contains the anti-jamming MDP of §III-A (state space Eq. 3, action
// space Eq. 4, reward Eq. 5, transition probabilities Eq. 6-14), an exact
// value-iteration solution, the structural analysis of §III-B (threshold
// policies, Lemmas III.2/III.3, Theorems III.4/III.5), and the runnable
// agents evaluated in §IV: the DQN-based scheme (RL FH), the exact-MDP
// policy, and the Passive FH / Random FH baselines.
package core

import (
	"fmt"
	"math"

	"ctjam/internal/env"
	"ctjam/internal/jammer"
	"ctjam/internal/mdp"
)

// Params parameterizes the anti-jamming MDP.
type Params struct {
	// SweepCycle is S = ceil(K/m), the jammer's sweep cycle in slots.
	SweepCycle int
	// TxPowers are the victim's power levels; values double as the
	// power loss L_p.
	TxPowers []float64
	// WinProb[i] is P(L^T_i >= tau), the probability that power level i
	// survives a jamming duel.
	WinProb []float64
	// LossHop is L_H and LossJam is L_J from Eq. (5).
	LossHop float64
	LossJam float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.SweepCycle < 2 {
		return fmt.Errorf("core: sweep cycle %d must be >= 2", p.SweepCycle)
	}
	if len(p.TxPowers) == 0 {
		return fmt.Errorf("core: at least one tx power required")
	}
	if len(p.WinProb) != len(p.TxPowers) {
		return fmt.Errorf("core: win probabilities (%d) must match tx powers (%d)",
			len(p.WinProb), len(p.TxPowers))
	}
	for i, w := range p.WinProb {
		if w < 0 || w > 1 {
			return fmt.Errorf("core: win probability %v at level %d outside [0,1]", w, i)
		}
	}
	if p.LossHop < 0 || p.LossJam < 0 {
		return fmt.Errorf("core: losses must be non-negative")
	}
	return nil
}

// WinProbabilities derives P(L^T_i >= tau) for each victim level against a
// jammer with the given levels and power mode: in max mode tau is always the
// largest level; in random mode tau is uniform over the levels.
func WinProbabilities(txPowers, jamPowers []float64, mode jammer.PowerMode) []float64 {
	out := make([]float64, len(txPowers))
	maxJam := math.Inf(-1)
	for _, j := range jamPowers {
		if j > maxJam {
			maxJam = j
		}
	}
	for i, p := range txPowers {
		switch mode {
		case jammer.ModeMax:
			if p >= maxJam {
				out[i] = 1
			}
		default: // random mode
			wins := 0
			for _, j := range jamPowers {
				if p >= j {
					wins++
				}
			}
			out[i] = float64(wins) / float64(len(jamPowers))
		}
	}
	return out
}

// ParamsFromEnv derives the MDP parameters matching an environment
// configuration.
func ParamsFromEnv(cfg env.Config) Params {
	return Params{
		SweepCycle: cfg.SweepCycle(),
		TxPowers:   append([]float64(nil), cfg.TxPowers...),
		WinProb:    WinProbabilities(cfg.TxPowers, cfg.JamPowers, cfg.JammerMode),
		LossHop:    cfg.LossHop,
		LossJam:    cfg.LossJam,
	}
}

// Model is the paper's anti-jamming MDP (Eq. 3-14) as an mdp.Model.
//
// State indexing: indices 0..S-2 are the counting states n = 1..S-1
// ("continuously successful for n slots on the current channel"), index S-1
// is T_J (jammed unsuccessfully) and index S is J (jammed successfully).
//
// Action indexing: 0..M-1 are (stay, p_i); M..2M-1 are (hop, p_i).
type Model struct {
	p Params
}

var _ mdp.Model = (*Model)(nil)

// NewModel validates params and builds the MDP.
func NewModel(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{p: p}, nil
}

// Params returns the model parameters.
func (m *Model) Params() Params { return m.p }

// SweepCycle returns S, the jammer's sweep cycle in slots (part of the
// policy.BeliefModel interface).
func (m *Model) SweepCycle() int { return m.p.SweepCycle }

// NumStates returns S+1: the S-1 counting states plus T_J and J.
func (m *Model) NumStates() int { return m.p.SweepCycle + 1 }

// NumActions returns 2M: stay/hop with each power level.
func (m *Model) NumActions() int { return 2 * len(m.p.TxPowers) }

// StateTJ returns the index of the T_J state.
func (m *Model) StateTJ() int { return m.p.SweepCycle - 1 }

// StateJ returns the index of the J state.
func (m *Model) StateJ() int { return m.p.SweepCycle }

// StateOfN converts n (1..S-1) to a state index.
func (m *Model) StateOfN(n int) (int, error) {
	if n < 1 || n > m.p.SweepCycle-1 {
		return 0, fmt.Errorf("core: n=%d out of range [1,%d]", n, m.p.SweepCycle-1)
	}
	return n - 1, nil
}

// ActionOf builds an action index from the hop flag and power index.
func (m *Model) ActionOf(hop bool, power int) (int, error) {
	if power < 0 || power >= len(m.p.TxPowers) {
		return 0, fmt.Errorf("core: power index %d out of range", power)
	}
	if hop {
		return len(m.p.TxPowers) + power, nil
	}
	return power, nil
}

// DecodeAction splits an action index into (hop, power).
func (m *Model) DecodeAction(a int) (hop bool, power int, err error) {
	if a < 0 || a >= m.NumActions() {
		return false, 0, fmt.Errorf("core: action %d out of range", a)
	}
	mm := len(m.p.TxPowers)
	return a >= mm, a % mm, nil
}

// Transitions implements Eq. (6)-(14).
func (m *Model) Transitions(state, action int) []mdp.Transition {
	hop, power, err := m.DecodeAction(action)
	if err != nil {
		return nil
	}
	var (
		s    = float64(m.p.SweepCycle)
		win  = m.p.WinProb[power]
		lose = 1 - win
		tj   = m.StateTJ()
		j    = m.StateJ()
	)

	// Jammed states T_J and J (Eq. 12-14).
	if state == tj || state == j {
		if hop {
			return []mdp.Transition{{Next: 0, Prob: 1}} // Eq. (14): fresh channel, n=1
		}
		return compact([]mdp.Transition{ // Eq. (12)-(13)
			{Next: tj, Prob: win},
			{Next: j, Prob: lose},
		})
	}

	n := float64(state + 1) // counting state n = index + 1
	if !hop {
		// Eq. (6)-(8): staying, the discovery hazard is 1/(S-n).
		found := 1.0 / (s - n)
		trs := []mdp.Transition{
			{Next: tj, Prob: found * win},
			{Next: j, Prob: found * lose},
		}
		if state+1 <= m.p.SweepCycle-2 {
			trs = append(trs, mdp.Transition{Next: state + 1, Prob: 1 - found})
		}
		return compact(trs)
	}
	// Eq. (9)-(11): hopping to a new channel.
	risk := (s - n - 1) / ((s - 1) * (s - n))
	return compact([]mdp.Transition{
		{Next: 0, Prob: 1 - risk},
		{Next: tj, Prob: risk * win},
		{Next: j, Prob: risk * lose},
	})
}

// Reward implements Eq. (5).
func (m *Model) Reward(state, action, next int) float64 {
	hop, power, err := m.DecodeAction(action)
	if err != nil {
		return 0
	}
	r := -m.p.TxPowers[power]
	if hop {
		r -= m.p.LossHop
	}
	if next == m.StateJ() {
		r -= m.p.LossJam
	}
	return r
}

// compact drops zero-probability entries and merges duplicates so the
// transition list is a clean distribution.
func compact(trs []mdp.Transition) []mdp.Transition {
	merged := make(map[int]float64, len(trs))
	for _, tr := range trs {
		if tr.Prob > 0 {
			merged[tr.Next] += tr.Prob
		}
	}
	out := make([]mdp.Transition, 0, len(merged))
	// Deterministic order: iterate possible states ascending.
	for next := 0; len(out) < len(merged); next++ {
		if p, ok := merged[next]; ok {
			out = append(out, mdp.Transition{Next: next, Prob: p})
		}
	}
	return out
}

// Solve runs value iteration on the model with the given discount.
func (m *Model) Solve(gamma float64) (*mdp.Solution, error) {
	return mdp.Solve(m, gamma, 1e-9, 1_000_000)
}
