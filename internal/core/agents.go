package core

import (
	"fmt"
	"math/rand"

	"ctjam/internal/env"
	"ctjam/internal/mdp"
	"ctjam/internal/policy"
)

// hopTarget delegates to the shared block-aware target draw in
// internal/policy, where the decision logic now lives (see that package's
// doc). Kept so the tabular training loop and tests draw identically.
func hopTarget(rng *rand.Rand, current, channels, sweepWidth int) int {
	return policy.HopTarget(rng, current, channels, sweepWidth)
}

// PassiveFH is the "PSV FH" baseline of §IV-D3: it reacts only after the
// fact. Per §II-C2 the passive victim hops "once the error rate exceeds a
// certain threshold", i.e. after several consecutive jammed slots — not on
// the first one, because a single bad slot does not move a windowed error
// rate across the threshold. It always transmits at the minimum power.
//
// The decision logic lives in internal/policy (Threshold over a Streak
// encoder); this type is the serial env.Agent adapter.
type PassiveFH struct {
	*policy.Agent
}

var _ env.Agent = (*PassiveFH)(nil)

// DefaultJamThreshold is the number of consecutive jammed slots a passive
// victim tolerates before its windowed error rate trips and it hops.
const DefaultJamThreshold = 4

// NewPassiveFH builds the baseline for a K-channel system with the given
// jammer sweep width, using DefaultJamThreshold.
func NewPassiveFH(channels, sweepWidth int) (*PassiveFH, error) {
	return NewPassiveFHThreshold(channels, sweepWidth, DefaultJamThreshold)
}

// NewPassiveFHThreshold builds the baseline with an explicit error-rate
// threshold expressed as consecutive jammed slots.
func NewPassiveFHThreshold(channels, sweepWidth, jamThreshold int) (*PassiveFH, error) {
	s, err := policy.PassiveFHScheme(channels, sweepWidth, jamThreshold)
	if err != nil {
		return nil, err
	}
	return &PassiveFH{Agent: s.NewAgent()}, nil
}

// RandomFH is the "Rand FH" baseline of §IV-D3: at the start of every slot
// it randomly chooses between hopping (at minimum power) and staying with a
// random power level. Unlike the MDP/DQN schemes it is oblivious to the
// jammer's 4-channel block structure: its hops land on a uniformly random
// other channel, which sometimes stays inside the jammed block.
//
// The decision logic lives in internal/policy (RandomWalk encoder); this
// type is the serial env.Agent adapter.
type RandomFH struct {
	*policy.Agent
}

var _ env.Agent = (*RandomFH)(nil)

// NewRandomFH builds the baseline.
func NewRandomFH(channels, sweepWidth, powers int) (*RandomFH, error) {
	s, err := policy.RandomFHScheme(channels, sweepWidth, powers)
	if err != nil {
		return nil, err
	}
	return &RandomFH{Agent: s.NewAgent()}, nil
}

// Static is the no-defense baseline: it never hops and never raises power.
// (Batch runs use policy.StaticScheme, which realizes the same decisions.)
type Static struct{}

var _ env.Agent = (*Static)(nil)

// Name implements env.Agent.
func (Static) Name() string { return "Static" }

// Reset implements env.Agent.
func (Static) Reset(*rand.Rand) {}

// Decide always stays at minimum power.
func (Static) Decide(prev env.SlotInfo) env.Decision {
	return env.Decision{Channel: prev.Channel, Power: 0}
}

// MDPAgent plays the exact optimal policy of the solved anti-jamming MDP.
// It tracks its belief state (consecutive successful slots on the current
// channel, or the jammed states) from observed outcomes, as the idealized
// §III-B analysis assumes.
//
// The belief tracking and policy lookup live in internal/policy (Lookup
// over a Belief encoder); this type is the serial env.Agent adapter. Its
// promoted Scheme method exposes the shared policy for batched runs.
type MDPAgent struct {
	*policy.Agent
}

var _ env.Agent = (*MDPAgent)(nil)

// NewMDPAgent solves the model (if sol is nil) and wraps its greedy policy
// as a runnable agent over a K-channel system.
func NewMDPAgent(m *Model, sol *mdp.Solution, channels, sweepWidth int) (*MDPAgent, error) {
	if err := checkTopology(channels, sweepWidth); err != nil {
		return nil, err
	}
	if sol == nil {
		var err error
		sol, err = m.Solve(0.9)
		if err != nil {
			return nil, err
		}
	}
	if len(sol.Policy) != m.NumStates() {
		return nil, fmt.Errorf("core: policy has %d states, model needs %d", len(sol.Policy), m.NumStates())
	}
	s, err := policy.MDPScheme("MDP*", m, sol.Policy, channels, sweepWidth)
	if err != nil {
		return nil, err
	}
	return &MDPAgent{Agent: s.NewAgent()}, nil
}

func checkTopology(channels, sweepWidth int) error {
	if channels < 2 {
		return fmt.Errorf("core: channels %d must be >= 2", channels)
	}
	if sweepWidth <= 0 || sweepWidth > channels {
		return fmt.Errorf("core: sweep width %d out of range [1,%d]", sweepWidth, channels)
	}
	if (channels+sweepWidth-1)/sweepWidth < 2 {
		return fmt.Errorf("core: need at least 2 sweep blocks (channels=%d width=%d)", channels, sweepWidth)
	}
	return nil
}
