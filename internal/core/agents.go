package core

import (
	"fmt"
	"math/rand"

	"ctjam/internal/env"
	"ctjam/internal/mdp"
)

// hopTarget picks a uniformly random channel outside the current channel's
// sweep block, matching the MDP's assumption that a hop lands on one of the
// other S-1 blocks (Eq. 9). Hopping within the jammer's block would not
// escape a 4-channel-wide cross-technology jammer.
func hopTarget(rng *rand.Rand, current, channels, sweepWidth int) int {
	blocks := (channels + sweepWidth - 1) / sweepWidth
	curBlock := current / sweepWidth
	b := rng.Intn(blocks - 1)
	if b >= curBlock {
		b++
	}
	lo := b * sweepWidth
	hi := lo + sweepWidth
	if hi > channels {
		hi = channels
	}
	return lo + rng.Intn(hi-lo)
}

// PassiveFH is the "PSV FH" baseline of §IV-D3: it reacts only after the
// fact. Per §II-C2 the passive victim hops "once the error rate exceeds a
// certain threshold", i.e. after several consecutive jammed slots — not on
// the first one, because a single bad slot does not move a windowed error
// rate across the threshold. It always transmits at the minimum power.
type PassiveFH struct {
	channels     int
	sweepWidth   int
	jamThreshold int
	rng          *rand.Rand
	jamStreak    int
}

var _ env.Agent = (*PassiveFH)(nil)

// DefaultJamThreshold is the number of consecutive jammed slots a passive
// victim tolerates before its windowed error rate trips and it hops.
const DefaultJamThreshold = 4

// NewPassiveFH builds the baseline for a K-channel system with the given
// jammer sweep width, using DefaultJamThreshold.
func NewPassiveFH(channels, sweepWidth int) (*PassiveFH, error) {
	return NewPassiveFHThreshold(channels, sweepWidth, DefaultJamThreshold)
}

// NewPassiveFHThreshold builds the baseline with an explicit error-rate
// threshold expressed as consecutive jammed slots.
func NewPassiveFHThreshold(channels, sweepWidth, jamThreshold int) (*PassiveFH, error) {
	if err := checkTopology(channels, sweepWidth); err != nil {
		return nil, err
	}
	if jamThreshold < 1 {
		return nil, fmt.Errorf("core: jam threshold %d must be >= 1", jamThreshold)
	}
	return &PassiveFH{channels: channels, sweepWidth: sweepWidth, jamThreshold: jamThreshold}, nil
}

// Name implements env.Agent.
func (a *PassiveFH) Name() string { return "PSV FH" }

// Reset implements env.Agent.
func (a *PassiveFH) Reset(rng *rand.Rand) {
	a.rng = rng
	a.jamStreak = 0
}

// Decide hops only after the jam streak crosses the error-rate threshold.
func (a *PassiveFH) Decide(prev env.SlotInfo) env.Decision {
	if prev.First {
		a.jamStreak = 0
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	if prev.Outcome == env.OutcomeJammed {
		a.jamStreak++
	} else {
		a.jamStreak = 0
	}
	if a.jamStreak < a.jamThreshold {
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	a.jamStreak = 0
	return env.Decision{
		Channel: hopTarget(a.rng, prev.Channel, a.channels, a.sweepWidth),
		Power:   0,
	}
}

// RandomFH is the "Rand FH" baseline of §IV-D3: at the start of every slot
// it randomly chooses between hopping (at minimum power) and staying with a
// random power level. Unlike the MDP/DQN schemes it is oblivious to the
// jammer's 4-channel block structure: its hops land on a uniformly random
// other channel, which sometimes stays inside the jammed block.
type RandomFH struct {
	channels   int
	sweepWidth int
	powers     int
	rng        *rand.Rand
}

var _ env.Agent = (*RandomFH)(nil)

// NewRandomFH builds the baseline.
func NewRandomFH(channels, sweepWidth, powers int) (*RandomFH, error) {
	if err := checkTopology(channels, sweepWidth); err != nil {
		return nil, err
	}
	if powers <= 0 {
		return nil, fmt.Errorf("core: powers %d must be positive", powers)
	}
	return &RandomFH{channels: channels, sweepWidth: sweepWidth, powers: powers}, nil
}

// Name implements env.Agent.
func (a *RandomFH) Name() string { return "Rand FH" }

// Reset implements env.Agent.
func (a *RandomFH) Reset(rng *rand.Rand) { a.rng = rng }

// Decide flips a coin between FH and PC every slot.
func (a *RandomFH) Decide(prev env.SlotInfo) env.Decision {
	if prev.First {
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	if a.rng.Intn(2) == 0 {
		// Blind hop: uniform over the other channels, block-oblivious.
		ch := a.rng.Intn(a.channels - 1)
		if ch >= prev.Channel {
			ch++
		}
		return env.Decision{Channel: ch, Power: 0}
	}
	return env.Decision{Channel: prev.Channel, Power: a.rng.Intn(a.powers)}
}

// Static is the no-defense baseline: it never hops and never raises power.
type Static struct{}

var _ env.Agent = (*Static)(nil)

// Name implements env.Agent.
func (Static) Name() string { return "Static" }

// Reset implements env.Agent.
func (Static) Reset(*rand.Rand) {}

// Decide always stays at minimum power.
func (Static) Decide(prev env.SlotInfo) env.Decision {
	return env.Decision{Channel: prev.Channel, Power: 0}
}

// MDPAgent plays the exact optimal policy of the solved anti-jamming MDP.
// It tracks its belief state (consecutive successful slots on the current
// channel, or the jammed states) from observed outcomes, as the idealized
// §III-B analysis assumes.
type MDPAgent struct {
	model      *Model
	policy     []int
	channels   int
	sweepWidth int

	rng *rand.Rand
	n   int // consecutive successes on current channel (0 = jammed state)
	tj  bool
	j   bool
}

var _ env.Agent = (*MDPAgent)(nil)

// NewMDPAgent solves the model (if sol is nil) and wraps its greedy policy
// as a runnable agent over a K-channel system.
func NewMDPAgent(m *Model, sol *mdp.Solution, channels, sweepWidth int) (*MDPAgent, error) {
	if err := checkTopology(channels, sweepWidth); err != nil {
		return nil, err
	}
	if sol == nil {
		var err error
		sol, err = m.Solve(0.9)
		if err != nil {
			return nil, err
		}
	}
	if len(sol.Policy) != m.NumStates() {
		return nil, fmt.Errorf("core: policy has %d states, model needs %d", len(sol.Policy), m.NumStates())
	}
	return &MDPAgent{
		model:      m,
		policy:     append([]int(nil), sol.Policy...),
		channels:   channels,
		sweepWidth: sweepWidth,
	}, nil
}

// Name implements env.Agent.
func (a *MDPAgent) Name() string { return "MDP*" }

// Reset implements env.Agent.
func (a *MDPAgent) Reset(rng *rand.Rand) {
	a.rng = rng
	a.n = 1
	a.tj = false
	a.j = false
}

// Decide maps the tracked belief state through the optimal policy.
func (a *MDPAgent) Decide(prev env.SlotInfo) env.Decision {
	if !prev.First {
		// Update belief from the previous outcome.
		switch prev.Outcome {
		case env.OutcomeSuccess:
			if prev.Hopped || a.tj || a.j {
				a.n = 1
			} else if a.n < a.model.p.SweepCycle-1 {
				a.n++
			}
			a.tj, a.j = false, false
		case env.OutcomeJammedSurvived:
			a.tj, a.j = true, false
		case env.OutcomeJammed:
			a.tj, a.j = false, true
		}
	}

	state := 0
	switch {
	case a.j:
		state = a.model.StateJ()
	case a.tj:
		state = a.model.StateTJ()
	default:
		s, err := a.model.StateOfN(a.n)
		if err != nil {
			s = 0
		}
		state = s
	}
	hop, power, err := a.model.DecodeAction(a.policy[state])
	if err != nil {
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	ch := prev.Channel
	if hop && !prev.First {
		ch = hopTarget(a.rng, prev.Channel, a.channels, a.sweepWidth)
	}
	return env.Decision{Channel: ch, Power: power}
}

func checkTopology(channels, sweepWidth int) error {
	if channels < 2 {
		return fmt.Errorf("core: channels %d must be >= 2", channels)
	}
	if sweepWidth <= 0 || sweepWidth > channels {
		return fmt.Errorf("core: sweep width %d out of range [1,%d]", sweepWidth, channels)
	}
	if (channels+sweepWidth-1)/sweepWidth < 2 {
		return fmt.Errorf("core: need at least 2 sweep blocks (channels=%d width=%d)", channels, sweepWidth)
	}
	return nil
}
