package core

import (
	"fmt"
	"io"
	"math/rand"

	"ctjam/internal/env"
	"ctjam/internal/nn"
	"ctjam/internal/policy"
	"ctjam/internal/rl"
)

// rewardScale normalizes Eq. (5) rewards (roughly [-165, -6]) into a range
// friendly to MSE-trained Q networks.
const rewardScale = 1.0 / 100.0

// DQNAgentConfig configures the DQN-based anti-jamming scheme ("RL FH").
type DQNAgentConfig struct {
	// Channels is C and Powers is PL; the output layer has C*PL neurons
	// as in the paper's Fig. 4.
	Channels int
	Powers   int
	// SweepWidth is the jammer block width (for topology checks only).
	SweepWidth int
	// HistoryLen is I: the input layer has 3*I neurons covering the
	// state, channel and power of the previous I slots.
	HistoryLen int
	// Hidden sizes the two fully connected hidden layers.
	Hidden []int
	// Gamma, LearningRate, BatchSize, BufferCapacity, WarmupSize,
	// TargetSyncEvery, Epsilon and DoubleDQN feed the underlying rl.DQN.
	Gamma           float64
	LearningRate    float64
	BatchSize       int
	BufferCapacity  int
	WarmupSize      int
	TargetSyncEvery int
	Epsilon         rl.EpsilonSchedule
	DoubleDQN       bool
	// Seed drives network init and exploration.
	Seed int64
}

// DefaultDQNAgentConfig mirrors the paper's architecture at simulation
// scale: I=8 history slots, two hidden layers, C*PL outputs.
func DefaultDQNAgentConfig(channels, powers, sweepWidth int) DQNAgentConfig {
	return DQNAgentConfig{
		Channels:        channels,
		Powers:          powers,
		SweepWidth:      sweepWidth,
		HistoryLen:      8,
		Hidden:          []int{48, 48},
		Gamma:           0.9,
		LearningRate:    1e-3,
		BatchSize:       16,
		BufferCapacity:  10000,
		WarmupSize:      256,
		TargetSyncEvery: 200,
		Epsilon:         rl.EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 12000},
		Seed:            1,
	}
}

// DQNAgent is the paper's deep-RL anti-jamming scheme. Train it online in a
// simulation environment, then run it greedily (it implements env.Agent for
// evaluation).
//
// The rolling feature window is a policy.History — the same encoder the
// batched inference engine uses — so the training path and inference path
// share one state encoding. Scheme snapshots the trained network as an
// immutable batched policy.
type DQNAgent struct {
	cfg DQNAgentConfig
	dqn *rl.DQN

	hist *policy.History // rolling 3*HistoryLen feature window
}

var _ env.Agent = (*DQNAgent)(nil)

// NewDQNAgent builds the agent.
func NewDQNAgent(cfg DQNAgentConfig) (*DQNAgent, error) {
	if err := checkTopology(cfg.Channels, cfg.SweepWidth); err != nil {
		return nil, err
	}
	if cfg.Powers <= 0 {
		return nil, fmt.Errorf("core: powers %d must be positive", cfg.Powers)
	}
	if cfg.HistoryLen <= 0 {
		return nil, fmt.Errorf("core: history length %d must be positive", cfg.HistoryLen)
	}
	dcfg := rl.DQNConfig{
		StateDim:        3 * cfg.HistoryLen,
		NumActions:      cfg.Channels * cfg.Powers,
		Hidden:          cfg.Hidden,
		Gamma:           cfg.Gamma,
		LearningRate:    cfg.LearningRate,
		BatchSize:       cfg.BatchSize,
		BufferCapacity:  cfg.BufferCapacity,
		WarmupSize:      cfg.WarmupSize,
		TargetSyncEvery: cfg.TargetSyncEvery,
		Epsilon:         cfg.Epsilon,
		DoubleDQN:       cfg.DoubleDQN,
		Seed:            cfg.Seed,
	}
	dqn, err := rl.NewDQN(dcfg)
	if err != nil {
		return nil, fmt.Errorf("core: build dqn: %w", err)
	}
	return &DQNAgent{
		cfg:  cfg,
		dqn:  dqn,
		hist: policy.NewHistory(cfg.Channels, cfg.Powers, cfg.HistoryLen),
	}, nil
}

// Name implements env.Agent.
func (a *DQNAgent) Name() string { return "RL FH" }

// Network exposes the trained Q network for persistence.
func (a *DQNAgent) Network() *nn.Network { return a.dqn.Network() }

// SaveModel writes the trained network to w.
func (a *DQNAgent) SaveModel(w io.Writer) error { return a.dqn.Network().Save(w) }

// LoadModel replaces the network with one read from r. The architecture
// must match the agent's configuration.
func (a *DQNAgent) LoadModel(r io.Reader) error {
	net, err := nn.Load(r)
	if err != nil {
		return err
	}
	return a.dqn.SetNetwork(net)
}

func (a *DQNAgent) clearHistory() { a.hist.Clear() }

// pushHistory appends one slot record (outcome, channel, power) to the
// rolling window.
func (a *DQNAgent) pushHistory(outcome env.Outcome, channel, power int) {
	a.hist.Push(outcome, channel, power)
}

// state snapshots the current feature window.
func (a *DQNAgent) state() []float64 { return a.hist.Snapshot() }

// Scheme snapshots the trained network as an immutable batched policy paired
// with fresh history encoders. The snapshot clones the weights, so further
// Train calls do not affect it and any number of goroutines may decide
// through it concurrently.
func (a *DQNAgent) Scheme() (*policy.Scheme, error) {
	snap, err := a.dqn.Snapshot()
	if err != nil {
		return nil, err
	}
	return policy.DQNScheme(a.Name(), snap, a.cfg.Channels, a.cfg.Powers, a.cfg.HistoryLen)
}

// SchemeFast32 is Scheme on the float32 fast engine: same trained weights,
// quantized once into an FMA-accelerated inference view. Decisions agree
// with the exact scheme only within the fast path's action-agreement budget,
// so callers that require bit-identical traces must stay on Scheme.
func (a *DQNAgent) SchemeFast32() (*policy.Scheme, error) {
	snap, err := a.dqn.Snapshot()
	if err != nil {
		return nil, err
	}
	fast, err := snap.Fast32()
	if err != nil {
		return nil, err
	}
	return policy.DQNScheme(a.Name(), fast, a.cfg.Channels, a.cfg.Powers, a.cfg.HistoryLen)
}

func (a *DQNAgent) decodeAction(action int) (channel, power int) {
	return action / a.cfg.Powers, action % a.cfg.Powers
}

// Train runs the agent with epsilon-greedy exploration in the environment
// for the given number of slots, learning online from every transition (the
// paper trains from ~120k historical data blocks). It returns the average
// reward per slot.
func (a *DQNAgent) Train(e *env.Environment, slots int) (float64, error) {
	if slots <= 0 {
		return 0, fmt.Errorf("core: training slots %d must be positive", slots)
	}
	a.clearHistory()
	total, err := a.TrainRange(e, 0, slots, nil)
	if err != nil {
		return 0, err
	}
	return total / float64(slots), nil
}

// TrainRange runs training slots [start, end) without clearing the history
// window, so a run resumed from a checkpoint continues exactly where it left
// off. It returns the summed reward over the range. hook, when non-nil, runs
// after each slot with the total slots completed (start-relative to slot 0)
// and the reward summed over this range so far, for periodic checkpoint
// writes; a hook error aborts the loop.
func (a *DQNAgent) TrainRange(e *env.Environment, start, end int, hook func(done int, total float64) error) (float64, error) {
	if start < 0 || end < start {
		return 0, fmt.Errorf("core: invalid training range [%d, %d)", start, end)
	}
	if e.NumChannels() != a.cfg.Channels || e.NumPowers() != a.cfg.Powers {
		return 0, fmt.Errorf("core: environment (%d ch, %d pw) does not match agent (%d ch, %d pw)",
			e.NumChannels(), e.NumPowers(), a.cfg.Channels, a.cfg.Powers)
	}
	var total float64
	for slot := start; slot < end; slot++ {
		s := a.state()
		action, err := a.dqn.SelectAction(s)
		if err != nil {
			return 0, err
		}
		ch, pw := a.decodeAction(action)
		res, err := e.Step(ch, pw)
		if err != nil {
			return 0, err
		}
		total += res.Reward
		a.pushHistory(res.Outcome, ch, pw)
		if _, err := a.dqn.Observe(rl.Transition{
			State:  s,
			Action: action,
			Reward: res.Reward * rewardScale,
			Next:   a.state(),
		}); err != nil {
			return 0, err
		}
		if hook != nil {
			if err := hook(slot+1, total); err != nil {
				return 0, err
			}
		}
	}
	return total, nil
}

// Reset implements env.Agent (evaluation mode: greedy, no learning).
func (a *DQNAgent) Reset(rng *rand.Rand) { a.clearHistory() }

// Decide implements env.Agent: it folds the previous slot into the history
// window and plays the greedy action.
func (a *DQNAgent) Decide(prev env.SlotInfo) env.Decision {
	if !prev.First {
		a.pushHistory(prev.Outcome, prev.Channel, prev.Power)
	}
	// GreedyAction only reads the features, so pass the window directly
	// instead of snapshotting it with a.state(); Train still snapshots
	// because replay transitions retain their State/Next slices.
	action, err := a.dqn.GreedyAction(a.hist.Window())
	if err != nil {
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	ch, pw := a.decodeAction(action)
	return env.Decision{Channel: ch, Power: pw}
}
