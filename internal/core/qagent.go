package core

import (
	"fmt"
	"math/rand"

	"ctjam/internal/env"
	"ctjam/internal/policy"
	"ctjam/internal/rl"
)

// QAgent is the tabular Q-learning comparison baseline the paper's §III-C
// argues against: it learns over the same belief-state space the exact MDP
// uses (n = 1..S-1, T_J, J) with the stay/hop x power action space. Unlike
// the DQN it cannot consume the raw observation history, so it depends on
// the belief-state abstraction being correct.
//
// Belief tracking is shared with the inference engine (policy.Belief); the
// online Q-learning loop stays here. Scheme exports the learned table as an
// immutable batched policy.
type QAgent struct {
	model      *Model
	table      *rl.QTable
	channels   int
	sweepWidth int

	rng    *rand.Rand
	belief *policy.Belief
}

var _ env.Agent = (*QAgent)(nil)

// NewQAgent builds the tabular learner for the given anti-jamming model.
func NewQAgent(m *Model, channels, sweepWidth int, seed int64) (*QAgent, error) {
	if err := checkTopology(channels, sweepWidth); err != nil {
		return nil, err
	}
	table, err := rl.NewQTable(
		m.NumStates(), m.NumActions(),
		0.1, 0.9,
		rl.EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 8000},
		seed,
	)
	if err != nil {
		return nil, err
	}
	return &QAgent{
		model:      m,
		table:      table,
		channels:   channels,
		sweepWidth: sweepWidth,
		belief:     policy.NewBelief(m, channels, sweepWidth),
	}, nil
}

// Name implements env.Agent.
func (a *QAgent) Name() string { return "Q-learning" }

// beliefState maps the tracked belief to a table state index.
func (a *QAgent) beliefState() int { return a.belief.State() }

// observe folds a slot outcome into the belief.
func (a *QAgent) observe(outcome env.Outcome, hopped bool) {
	a.belief.Observe(outcome, hopped)
}

// Scheme snapshots the learned table as an immutable batched policy paired
// with fresh belief encoders (further Train calls do not affect it).
func (a *QAgent) Scheme() (*policy.Scheme, error) {
	return policy.QTableScheme(a.Name(), a.model, a.table.Snapshot(), a.channels, a.sweepWidth)
}

// Train runs epsilon-greedy Q-learning online for the given number of
// slots, returning the average reward.
func (a *QAgent) Train(e *env.Environment, slots int) (float64, error) {
	if slots <= 0 {
		return 0, fmt.Errorf("core: training slots %d must be positive", slots)
	}
	a.belief.Reset(nil)
	rng := rand.New(rand.NewSource(42))
	channel := e.CurrentChannel()
	var total float64
	for slot := 0; slot < slots; slot++ {
		state := a.beliefState()
		action, err := a.table.SelectAction(state)
		if err != nil {
			return 0, err
		}
		hop, power, err := a.model.DecodeAction(action)
		if err != nil {
			return 0, err
		}
		if hop {
			channel = hopTarget(rng, channel, a.channels, a.sweepWidth)
		}
		res, err := e.Step(channel, power)
		if err != nil {
			return 0, err
		}
		total += res.Reward
		a.observe(res.Outcome, res.Hopped)
		if err := a.table.Update(state, action, res.Reward/100, a.beliefState(), false); err != nil {
			return 0, err
		}
	}
	return total / float64(slots), nil
}

// Reset implements env.Agent (evaluation mode).
func (a *QAgent) Reset(rng *rand.Rand) {
	a.rng = rng
	a.belief.Reset(rng)
}

// Decide implements env.Agent: greedy play of the learned table.
func (a *QAgent) Decide(prev env.SlotInfo) env.Decision {
	if !prev.First {
		a.observe(prev.Outcome, prev.Hopped)
	}
	action, err := a.table.GreedyAction(a.beliefState())
	if err != nil {
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	hop, power, err := a.model.DecodeAction(action)
	if err != nil {
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	ch := prev.Channel
	if hop && !prev.First {
		ch = hopTarget(a.rng, prev.Channel, a.channels, a.sweepWidth)
	}
	return env.Decision{Channel: ch, Power: power}
}
