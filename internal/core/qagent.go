package core

import (
	"fmt"
	"math/rand"

	"ctjam/internal/env"
	"ctjam/internal/rl"
)

// QAgent is the tabular Q-learning comparison baseline the paper's §III-C
// argues against: it learns over the same belief-state space the exact MDP
// uses (n = 1..S-1, T_J, J) with the stay/hop x power action space. Unlike
// the DQN it cannot consume the raw observation history, so it depends on
// the belief-state abstraction being correct.
type QAgent struct {
	model      *Model
	table      *rl.QTable
	channels   int
	sweepWidth int

	rng *rand.Rand
	n   int
	tj  bool
	j   bool
}

var _ env.Agent = (*QAgent)(nil)

// NewQAgent builds the tabular learner for the given anti-jamming model.
func NewQAgent(m *Model, channels, sweepWidth int, seed int64) (*QAgent, error) {
	if err := checkTopology(channels, sweepWidth); err != nil {
		return nil, err
	}
	table, err := rl.NewQTable(
		m.NumStates(), m.NumActions(),
		0.1, 0.9,
		rl.EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 8000},
		seed,
	)
	if err != nil {
		return nil, err
	}
	return &QAgent{model: m, table: table, channels: channels, sweepWidth: sweepWidth}, nil
}

// Name implements env.Agent.
func (a *QAgent) Name() string { return "Q-learning" }

// beliefState maps the tracked belief to a table state index.
func (a *QAgent) beliefState() int {
	switch {
	case a.j:
		return a.model.StateJ()
	case a.tj:
		return a.model.StateTJ()
	default:
		s, err := a.model.StateOfN(a.n)
		if err != nil {
			return 0
		}
		return s
	}
}

// observe folds a slot outcome into the belief.
func (a *QAgent) observe(outcome env.Outcome, hopped bool) {
	switch outcome {
	case env.OutcomeSuccess:
		if hopped || a.tj || a.j {
			a.n = 1
		} else if a.n < a.model.p.SweepCycle-1 {
			a.n++
		}
		a.tj, a.j = false, false
	case env.OutcomeJammedSurvived:
		a.tj, a.j = true, false
	case env.OutcomeJammed:
		a.tj, a.j = false, true
	}
}

// Train runs epsilon-greedy Q-learning online for the given number of
// slots, returning the average reward.
func (a *QAgent) Train(e *env.Environment, slots int) (float64, error) {
	if slots <= 0 {
		return 0, fmt.Errorf("core: training slots %d must be positive", slots)
	}
	a.resetBelief()
	rng := rand.New(rand.NewSource(42))
	channel := e.CurrentChannel()
	var total float64
	for slot := 0; slot < slots; slot++ {
		state := a.beliefState()
		action, err := a.table.SelectAction(state)
		if err != nil {
			return 0, err
		}
		hop, power, err := a.model.DecodeAction(action)
		if err != nil {
			return 0, err
		}
		if hop {
			channel = hopTarget(rng, channel, a.channels, a.sweepWidth)
		}
		res, err := e.Step(channel, power)
		if err != nil {
			return 0, err
		}
		total += res.Reward
		a.observe(res.Outcome, res.Hopped)
		if err := a.table.Update(state, action, res.Reward/100, a.beliefState(), false); err != nil {
			return 0, err
		}
	}
	return total / float64(slots), nil
}

func (a *QAgent) resetBelief() {
	a.n = 1
	a.tj = false
	a.j = false
}

// Reset implements env.Agent (evaluation mode).
func (a *QAgent) Reset(rng *rand.Rand) {
	a.rng = rng
	a.resetBelief()
}

// Decide implements env.Agent: greedy play of the learned table.
func (a *QAgent) Decide(prev env.SlotInfo) env.Decision {
	if !prev.First {
		a.observe(prev.Outcome, prev.Hopped)
	}
	action, err := a.table.GreedyAction(a.beliefState())
	if err != nil {
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	hop, power, err := a.model.DecodeAction(action)
	if err != nil {
		return env.Decision{Channel: prev.Channel, Power: 0}
	}
	ch := prev.Channel
	if hop && !prev.First {
		ch = hopTarget(a.rng, prev.Channel, a.channels, a.sweepWidth)
	}
	return env.Decision{Channel: ch, Power: power}
}
