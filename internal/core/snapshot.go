package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ctjam/internal/rl"
)

// SnapshotFromCheckpoint reads an inference-only network snapshot from any of
// the repo's three on-disk formats: a bare network (CTJM, Policy.Save), a DQN
// learner state (CTDQ, rl SaveState) or a full training checkpoint (CTTC,
// SaveTraining). For CTTC it skips the training prelude (cursor, history
// window, environment state) and snapshots the online network embedded in the
// learner state; optimizer moments and the replay buffer are never
// materialized. This is how ctjam-serve loads whatever artifact a training
// run left behind.
func SnapshotFromCheckpoint(r io.Reader) (*rl.Snapshot, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint magic: %w", err)
	}
	if binary.LittleEndian.Uint32(head) == trainMagic {
		if err := skipTrainingPrelude(br); err != nil {
			return nil, err
		}
	}
	return rl.ReadSnapshot(br)
}

// skipTrainingPrelude consumes a CTTC stream up to the embedded CTDQ learner
// state, using the in-stream lengths so it needs no agent configuration.
func skipTrainingPrelude(r io.Reader) error {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic, version uint32
	var slot, totalBits uint64
	var histLen uint32
	for _, v := range []any{&magic, &version, &slot, &totalBits, &histLen} {
		if err := read(v); err != nil {
			return fmt.Errorf("%w: header: %v", ErrBadTrainingCheckpoint, err)
		}
	}
	if magic != trainMagic {
		return fmt.Errorf("%w: bad magic %#x", ErrBadTrainingCheckpoint, magic)
	}
	if version != trainVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadTrainingCheckpoint, version)
	}
	if histLen > 1<<20 {
		return fmt.Errorf("%w: implausible history length %d", ErrBadTrainingCheckpoint, histLen)
	}
	if _, err := io.CopyN(io.Discard, r, int64(histLen)*8); err != nil {
		return fmt.Errorf("%w: history: %v", ErrBadTrainingCheckpoint, err)
	}
	var envRNG, envSlot uint64
	var envChannel uint32
	var started uint8
	for _, v := range []any{&envRNG, &envChannel, &envSlot, &started} {
		if err := read(v); err != nil {
			return fmt.Errorf("%w: environment: %v", ErrBadTrainingCheckpoint, err)
		}
	}
	return skipJammerState(r, 1)
}

// skipJammerState discards a writeJammerState encoding using its in-stream
// lengths, recursing into wrapper inner states.
func skipJammerState(r io.Reader, depth int) error {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	if depth > maxJamNesting {
		return fmt.Errorf("%w: jammer state nested deeper than %d", ErrBadTrainingCheckpoint, maxJamNesting)
	}
	var kindLen uint32
	if err := read(&kindLen); err != nil {
		return fmt.Errorf("%w: jammer kind: %v", ErrBadTrainingCheckpoint, err)
	}
	if kindLen > maxJamKindLen {
		return fmt.Errorf("%w: implausible jammer kind length %d", ErrBadTrainingCheckpoint, kindLen)
	}
	if _, err := io.CopyN(io.Discard, r, int64(kindLen)); err != nil {
		return fmt.Errorf("%w: jammer kind: %v", ErrBadTrainingCheckpoint, err)
	}
	for _, what := range []string{"ints", "floats"} {
		var n uint32
		if err := read(&n); err != nil {
			return fmt.Errorf("%w: jammer %s: %v", ErrBadTrainingCheckpoint, what, err)
		}
		if n > maxJamPayload {
			return fmt.Errorf("%w: implausible jammer %s count %d", ErrBadTrainingCheckpoint, what, n)
		}
		if _, err := io.CopyN(io.Discard, r, int64(n)*8); err != nil {
			return fmt.Errorf("%w: jammer %s: %v", ErrBadTrainingCheckpoint, what, err)
		}
	}
	var hasInner uint8
	if err := read(&hasInner); err != nil {
		return fmt.Errorf("%w: jammer inner flag: %v", ErrBadTrainingCheckpoint, err)
	}
	switch hasInner {
	case 0:
		return nil
	case 1:
		return skipJammerState(r, depth+1)
	default:
		return fmt.Errorf("%w: bad jammer inner flag %d", ErrBadTrainingCheckpoint, hasInner)
	}
}
