package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ctjam/internal/rl"
)

// SnapshotFromCheckpoint reads an inference-only network snapshot from any of
// the repo's three on-disk formats: a bare network (CTJM, Policy.Save), a DQN
// learner state (CTDQ, rl SaveState) or a full training checkpoint (CTTC,
// SaveTraining). For CTTC it skips the training prelude (cursor, history
// window, environment state) and snapshots the online network embedded in the
// learner state; optimizer moments and the replay buffer are never
// materialized. This is how ctjam-serve loads whatever artifact a training
// run left behind.
func SnapshotFromCheckpoint(r io.Reader) (*rl.Snapshot, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint magic: %w", err)
	}
	if binary.LittleEndian.Uint32(head) == trainMagic {
		if err := skipTrainingPrelude(br); err != nil {
			return nil, err
		}
	}
	return rl.ReadSnapshot(br)
}

// skipTrainingPrelude consumes a CTTC stream up to the embedded CTDQ learner
// state, using the in-stream lengths so it needs no agent configuration.
func skipTrainingPrelude(r io.Reader) error {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic, version uint32
	var slot, totalBits uint64
	var histLen uint32
	for _, v := range []any{&magic, &version, &slot, &totalBits, &histLen} {
		if err := read(v); err != nil {
			return fmt.Errorf("%w: header: %v", ErrBadTrainingCheckpoint, err)
		}
	}
	if magic != trainMagic {
		return fmt.Errorf("%w: bad magic %#x", ErrBadTrainingCheckpoint, magic)
	}
	if version != trainVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadTrainingCheckpoint, version)
	}
	if histLen > 1<<20 {
		return fmt.Errorf("%w: implausible history length %d", ErrBadTrainingCheckpoint, histLen)
	}
	if _, err := io.CopyN(io.Discard, r, int64(histLen)*8); err != nil {
		return fmt.Errorf("%w: history: %v", ErrBadTrainingCheckpoint, err)
	}
	var envRNG, envSlot, lockBlock uint64
	var envChannel, nRemaining uint32
	var started, locked uint8
	for _, v := range []any{&envRNG, &envChannel, &envSlot, &started, &locked, &lockBlock, &nRemaining} {
		if err := read(v); err != nil {
			return fmt.Errorf("%w: environment: %v", ErrBadTrainingCheckpoint, err)
		}
	}
	if nRemaining > 1<<16 {
		return fmt.Errorf("%w: implausible sweeper size %d", ErrBadTrainingCheckpoint, nRemaining)
	}
	if _, err := io.CopyN(io.Discard, r, int64(nRemaining)*4); err != nil {
		return fmt.Errorf("%w: sweeper: %v", ErrBadTrainingCheckpoint, err)
	}
	return nil
}
