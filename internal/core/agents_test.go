package core

import (
	"bytes"
	"math/rand"
	"testing"

	"ctjam/internal/env"
	"ctjam/internal/jammer"
	"ctjam/internal/metrics"
)

func runAgent(t *testing.T, cfg env.Config, a env.Agent, slots int) metrics.Counters {
	t.Helper()
	e, err := env.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := env.Run(e, a, slots)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHopTargetLeavesBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		cur := rng.Intn(16)
		got := hopTarget(rng, cur, 16, 4)
		if got < 0 || got >= 16 {
			t.Fatalf("hop target %d out of range", got)
		}
		if got/4 == cur/4 {
			t.Fatalf("hop target %d stayed in block of %d", got, cur)
		}
	}
}

func TestHopTargetUnevenChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		got := hopTarget(rng, 9, 10, 4) // blocks {0-3},{4-7},{8-9}
		if got < 0 || got >= 10 {
			t.Fatalf("hop target %d out of range", got)
		}
		if got/4 == 2 {
			t.Fatalf("hop target %d stayed in block 2", got)
		}
	}
}

func TestAgentConstructorsValidate(t *testing.T) {
	if _, err := NewPassiveFH(1, 1); err == nil {
		t.Fatal("1 channel: expected error")
	}
	if _, err := NewPassiveFH(4, 4); err == nil {
		t.Fatal("single block: expected error")
	}
	if _, err := NewRandomFH(16, 4, 0); err == nil {
		t.Fatal("0 powers: expected error")
	}
	if _, err := NewDQNAgent(DQNAgentConfig{Channels: 16, Powers: 0, SweepWidth: 4, HistoryLen: 4, Hidden: []int{8}}); err == nil {
		t.Fatal("0 powers dqn: expected error")
	}
	cfg := DefaultDQNAgentConfig(16, 10, 4)
	cfg.HistoryLen = 0
	if _, err := NewDQNAgent(cfg); err == nil {
		t.Fatal("0 history: expected error")
	}
}

func TestPassiveFHOnlyHopsAfterJamStreak(t *testing.T) {
	a, err := NewPassiveFHThreshold(16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	a.Reset(rand.New(rand.NewSource(3)))
	d := a.Decide(env.SlotInfo{First: true, Channel: 5})
	if d.Channel != 5 || d.Power != 0 {
		t.Fatalf("first decision %+v", d)
	}
	d = a.Decide(env.SlotInfo{Channel: 5, Outcome: env.OutcomeSuccess})
	if d.Channel != 5 {
		t.Fatal("passive agent hopped without a jam")
	}
	// Two jammed slots: still below the threshold of 3.
	for i := 0; i < 2; i++ {
		d = a.Decide(env.SlotInfo{Channel: 5, Outcome: env.OutcomeJammed})
		if d.Channel != 5 {
			t.Fatalf("passive agent hopped after %d jams (threshold 3)", i+1)
		}
	}
	// Third consecutive jam: error-rate threshold trips, agent hops.
	d = a.Decide(env.SlotInfo{Channel: 5, Outcome: env.OutcomeJammed})
	if d.Channel == 5 {
		t.Fatal("passive agent failed to hop after the jam streak")
	}
	// A success resets the streak: two more jams must not trigger a hop.
	home := d.Channel
	d = a.Decide(env.SlotInfo{Channel: home, Outcome: env.OutcomeSuccess})
	for i := 0; i < 2; i++ {
		d = a.Decide(env.SlotInfo{Channel: home, Outcome: env.OutcomeJammed})
		if d.Channel != home {
			t.Fatalf("streak did not reset: hopped after %d post-reset jams", i+1)
		}
	}
}

func TestPassiveFHThresholdValidation(t *testing.T) {
	if _, err := NewPassiveFHThreshold(16, 4, 0); err == nil {
		t.Fatal("threshold 0: expected error")
	}
}

func TestStaticAgentNeverMoves(t *testing.T) {
	var a Static
	a.Reset(nil)
	for i := 0; i < 10; i++ {
		d := a.Decide(env.SlotInfo{Channel: 7, Outcome: env.OutcomeJammed})
		if d.Channel != 7 || d.Power != 0 {
			t.Fatalf("static agent moved: %+v", d)
		}
	}
}

func TestRandomFHMixesActions(t *testing.T) {
	a, err := NewRandomFH(16, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	a.Reset(rand.New(rand.NewSource(4)))
	hops, pcs := 0, 0
	prev := env.SlotInfo{Channel: 3}
	for i := 0; i < 500; i++ {
		d := a.Decide(prev)
		if d.Channel != prev.Channel {
			hops++
		} else if d.Power > 0 {
			pcs++
		}
	}
	if hops < 150 || pcs < 100 {
		t.Fatalf("random agent not mixing: hops=%d pcs=%d", hops, pcs)
	}
}

func TestSchemeOrderingUnderMaxPowerJammer(t *testing.T) {
	// The paper's headline comparison (Fig. 11a, translated to ST): the
	// MDP/RL scheme beats Random FH, which beats Passive FH, which
	// beats no defense.
	cfg := env.DefaultConfig()
	cfg.Seed = 99
	const slots = 20000

	passive, err := NewPassiveFH(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	random, err := NewRandomFH(16, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewModel(ParamsFromEnv(cfg))
	if err != nil {
		t.Fatal(err)
	}
	mdpAgent, err := NewMDPAgent(model, nil, 16, 4)
	if err != nil {
		t.Fatal(err)
	}

	stStatic := runAgent(t, cfg, Static{}, slots).ST()
	stPassive := runAgent(t, cfg, passive, slots).ST()
	stRandom := runAgent(t, cfg, random, slots).ST()
	stMDP := runAgent(t, cfg, mdpAgent, slots).ST()

	t.Logf("ST: static=%.3f passive=%.3f random=%.3f mdp=%.3f", stStatic, stPassive, stRandom, stMDP)
	if !(stMDP > stRandom && stRandom > stPassive && stPassive > stStatic) {
		t.Fatalf("ordering violated: static=%.3f passive=%.3f random=%.3f mdp=%.3f",
			stStatic, stPassive, stRandom, stMDP)
	}
	// The paper reports ~78% ST for the learned scheme at these
	// parameters; the exact-MDP policy should reach at least that band.
	if stMDP < 0.70 {
		t.Fatalf("MDP ST = %.3f, expected >= 0.70", stMDP)
	}
}

func TestMDPAgentPaperRatios(t *testing.T) {
	// Fig. 11(a) ratios: RL=78.5%, random=54.1%, passive=37.6% of the
	// no-jammer goodput. In slot terms ST_RL ~= 0.78, ST_random ~= 0.54,
	// ST_passive ~= 0.38. Check each scheme lands within a generous band
	// of the paper's value.
	cfg := env.DefaultConfig()
	cfg.Seed = 7
	const slots = 20000

	passive, err := NewPassiveFH(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	random, err := NewRandomFH(16, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewModel(ParamsFromEnv(cfg))
	if err != nil {
		t.Fatal(err)
	}
	mdpAgent, err := NewMDPAgent(model, nil, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	stPassive := runAgent(t, cfg, passive, slots).ST()
	stRandom := runAgent(t, cfg, random, slots).ST()
	stMDP := runAgent(t, cfg, mdpAgent, slots).ST()
	if stPassive < 0.25 || stPassive > 0.55 {
		t.Fatalf("passive ST %.3f outside paper band ~0.38", stPassive)
	}
	if stRandom < 0.40 || stRandom > 0.70 {
		t.Fatalf("random ST %.3f outside paper band ~0.54", stRandom)
	}
	if stMDP < 0.70 || stMDP > 0.95 {
		t.Fatalf("MDP ST %.3f outside paper band ~0.78", stMDP)
	}
}

func TestDQNAgentLearnsToBeatPassive(t *testing.T) {
	if testing.Short() {
		t.Skip("DQN training is slow")
	}
	cfg := env.DefaultConfig()
	cfg.Seed = 5
	acfg := DefaultDQNAgentConfig(16, 10, 4)
	acfg.Hidden = []int{32, 32}
	acfg.Epsilon.DecaySteps = 6000
	agent, err := NewDQNAgent(acfg)
	if err != nil {
		t.Fatal(err)
	}
	trainEnv, err := env.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(trainEnv, 10000); err != nil {
		t.Fatal(err)
	}

	evalCfg := cfg
	evalCfg.Seed = 123
	stDQN := runAgent(t, evalCfg, agent, 5000).ST()

	passive, err := NewPassiveFH(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	stPassive := runAgent(t, evalCfg, passive, 5000).ST()
	t.Logf("ST: dqn=%.3f passive=%.3f", stDQN, stPassive)
	if stDQN <= stPassive {
		t.Fatalf("trained DQN (%.3f) failed to beat passive FH (%.3f)", stDQN, stPassive)
	}
}

func TestDQNAgentModelRoundTrip(t *testing.T) {
	acfg := DefaultDQNAgentConfig(16, 10, 4)
	acfg.Hidden = []int{16}
	a, err := NewDQNAgent(acfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := NewDQNAgent(acfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	// Same weights -> same greedy decisions.
	a.Reset(nil)
	b.Reset(nil)
	prev := env.SlotInfo{First: true, Channel: 2}
	for i := 0; i < 20; i++ {
		da := a.Decide(prev)
		db := b.Decide(prev)
		if da != db {
			t.Fatalf("step %d: decisions diverge %+v vs %+v", i, da, db)
		}
		prev = env.SlotInfo{Slot: i + 1, Channel: da.Channel, Power: da.Power, Outcome: env.OutcomeSuccess}
	}
}

func TestDQNTrainValidation(t *testing.T) {
	acfg := DefaultDQNAgentConfig(16, 10, 4)
	acfg.Hidden = []int{8}
	a, err := NewDQNAgent(acfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := env.New(env.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(e, 0); err == nil {
		t.Fatal("0 slots: expected error")
	}
	small := env.DefaultConfig()
	small.Channels = 8
	small.SweepWidth = 2
	e2, err := env.New(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(e2, 10); err == nil {
		t.Fatal("mismatched env: expected error")
	}
}

func TestMDPAgentRandomModeUsesPC(t *testing.T) {
	// Under a random-power jammer the hybrid scheme should adopt power
	// control (AP > 0) because duels are winnable, per Fig. 7(b).
	cfg := env.DefaultConfig()
	cfg.JammerMode = jammer.ModeRandom
	cfg.Seed = 31
	model, err := NewModel(ParamsFromEnv(cfg))
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewMDPAgent(model, nil, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := runAgent(t, cfg, agent, 20000)
	if c.AP() == 0 {
		t.Fatal("random-mode MDP agent never used power control")
	}
	if c.ST() < 0.70 {
		t.Fatalf("random-mode MDP ST = %.3f, expected >= 0.70", c.ST())
	}
}
