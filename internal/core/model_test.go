package core

import (
	"math"
	"testing"
	"testing/quick"

	"ctjam/internal/env"
	"ctjam/internal/jammer"
	"ctjam/internal/mdp"
)

func paperParams(mode jammer.PowerMode) Params {
	cfg := env.DefaultConfig()
	cfg.JammerMode = mode
	return ParamsFromEnv(cfg)
}

func TestParamsValidate(t *testing.T) {
	good := paperParams(jammer.ModeMax)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"sweep cycle 1", func(p *Params) { p.SweepCycle = 1 }},
		{"no powers", func(p *Params) { p.TxPowers = nil; p.WinProb = nil }},
		{"win prob mismatch", func(p *Params) { p.WinProb = p.WinProb[:3] }},
		{"win prob > 1", func(p *Params) { p.WinProb[0] = 1.5 }},
		{"negative loss", func(p *Params) { p.LossJam = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := paperParams(jammer.ModeMax)
			tt.mutate(&p)
			if _, err := NewModel(p); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestWinProbabilities(t *testing.T) {
	tx := []float64{6, 10, 15, 20}
	jam := []float64{11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	maxMode := WinProbabilities(tx, jam, jammer.ModeMax)
	// Only a level >= 20 wins in max mode.
	want := []float64{0, 0, 0, 1}
	for i := range want {
		if maxMode[i] != want[i] {
			t.Fatalf("max mode win prob = %v, want %v", maxMode, want)
		}
	}
	randMode := WinProbabilities(tx, jam, jammer.ModeRandom)
	// L=15 beats tau in {11..15}: 5/10; L=6 beats nothing; L=20 beats all.
	wantRand := []float64{0, 0, 0.5, 1}
	for i := range wantRand {
		if math.Abs(randMode[i]-wantRand[i]) > 1e-12 {
			t.Fatalf("random mode win prob = %v, want %v", randMode, wantRand)
		}
	}
}

func TestModelShape(t *testing.T) {
	m, err := NewModel(paperParams(jammer.ModeMax))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 5 { // n=1..3, TJ, J for S=4
		t.Fatalf("NumStates = %d, want 5", m.NumStates())
	}
	if m.NumActions() != 20 {
		t.Fatalf("NumActions = %d, want 20", m.NumActions())
	}
	if m.StateTJ() != 3 || m.StateJ() != 4 {
		t.Fatalf("TJ=%d J=%d", m.StateTJ(), m.StateJ())
	}
	if _, err := m.StateOfN(0); err == nil {
		t.Fatal("StateOfN(0): expected error")
	}
	if _, err := m.StateOfN(4); err == nil {
		t.Fatal("StateOfN(S): expected error")
	}
	if s, err := m.StateOfN(2); err != nil || s != 1 {
		t.Fatalf("StateOfN(2) = %d, %v", s, err)
	}
}

func TestActionCodec(t *testing.T) {
	m, err := NewModel(paperParams(jammer.ModeMax))
	if err != nil {
		t.Fatal(err)
	}
	for _, hop := range []bool{false, true} {
		for p := 0; p < 10; p++ {
			a, err := m.ActionOf(hop, p)
			if err != nil {
				t.Fatal(err)
			}
			gotHop, gotP, err := m.DecodeAction(a)
			if err != nil {
				t.Fatal(err)
			}
			if gotHop != hop || gotP != p {
				t.Fatalf("codec mismatch: (%v,%d) -> %d -> (%v,%d)", hop, p, a, gotHop, gotP)
			}
		}
	}
	if _, err := m.ActionOf(false, 11); err == nil {
		t.Fatal("expected error")
	}
	if _, _, err := m.DecodeAction(20); err == nil {
		t.Fatal("expected error")
	}
}

func TestTransitionsAreValidDistributions(t *testing.T) {
	for _, mode := range []jammer.PowerMode{jammer.ModeMax, jammer.ModeRandom} {
		m, err := NewModel(paperParams(mode))
		if err != nil {
			t.Fatal(err)
		}
		if err := mdp.ValidateModel(m); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestTransitionsValidForAllSweepCyclesProperty(t *testing.T) {
	f := func(cycleSel, winSel uint8) bool {
		p := Params{
			SweepCycle: 2 + int(cycleSel%15),
			TxPowers:   []float64{6, 10, 15},
			WinProb:    []float64{0, float64(winSel%101) / 100, 1},
			LossHop:    50,
			LossJam:    100,
		}
		m, err := NewModel(p)
		if err != nil {
			return false
		}
		return mdp.ValidateModel(m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitionsMatchPaperEquations(t *testing.T) {
	// Hand-check Eq. (6)-(8) at S=4, n=1 with win probability w.
	cfg := env.DefaultConfig()
	cfg.JammerMode = jammer.ModeRandom
	p := ParamsFromEnv(cfg)
	m, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	// Power index 9 (L=15): w = 0.5 in random mode.
	stay, err := m.ActionOf(false, 9)
	if err != nil {
		t.Fatal(err)
	}
	state, err := m.StateOfN(1)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]float64{}
	for _, tr := range m.Transitions(state, stay) {
		got[tr.Next] = tr.Prob
	}
	// Eq. (6): P(2|1,s,p) = 1 - 1/(4-1) = 2/3.
	if math.Abs(got[1]-2.0/3) > 1e-12 {
		t.Fatalf("P(2|1,stay) = %v, want 2/3", got[1])
	}
	// Eq. (7): P(TJ|1,s,p) = 1/3 * 0.5.
	if math.Abs(got[m.StateTJ()]-1.0/6) > 1e-12 {
		t.Fatalf("P(TJ|1,stay) = %v, want 1/6", got[m.StateTJ()])
	}
	// Eq. (8): P(J|1,s,p) = 1/3 * 0.5.
	if math.Abs(got[m.StateJ()]-1.0/6) > 1e-12 {
		t.Fatalf("P(J|1,stay) = %v, want 1/6", got[m.StateJ()])
	}

	// Eq. (9)-(11) at n=1: risk = (4-1-1)/((4-1)(4-1)) = 2/9.
	hop, err := m.ActionOf(true, 9)
	if err != nil {
		t.Fatal(err)
	}
	got = map[int]float64{}
	for _, tr := range m.Transitions(state, hop) {
		got[tr.Next] = tr.Prob
	}
	if math.Abs(got[0]-(1-2.0/9)) > 1e-12 {
		t.Fatalf("P(1|1,hop) = %v, want 7/9", got[0])
	}
	if math.Abs(got[m.StateTJ()]-2.0/9*0.5) > 1e-12 {
		t.Fatalf("P(TJ|1,hop) = %v, want 1/9", got[m.StateTJ()])
	}

	// Eq. (12)-(14) from the jammed states.
	for _, s := range []int{m.StateTJ(), m.StateJ()} {
		got = map[int]float64{}
		for _, tr := range m.Transitions(s, stay) {
			got[tr.Next] = tr.Prob
		}
		if math.Abs(got[m.StateTJ()]-0.5) > 1e-12 || math.Abs(got[m.StateJ()]-0.5) > 1e-12 {
			t.Fatalf("stay from jammed state %d: %v", s, got)
		}
		trs := m.Transitions(s, hop)
		if len(trs) != 1 || trs[0].Next != 0 || trs[0].Prob != 1 {
			t.Fatalf("hop from jammed state %d: %v", s, trs)
		}
	}
}

func TestRewardMatchesEq5(t *testing.T) {
	m, err := NewModel(paperParams(jammer.ModeMax))
	if err != nil {
		t.Fatal(err)
	}
	stay2, _ := m.ActionOf(false, 2) // L_p = 8
	hop2, _ := m.ActionOf(true, 2)
	j := m.StateJ()
	tests := []struct {
		action int
		next   int
		want   float64
	}{
		{stay2, 0, -8},
		{stay2, j, -8 - 100},
		{hop2, 0, -8 - 50},
		{hop2, j, -8 - 50 - 100},
	}
	for _, tt := range tests {
		if got := m.Reward(0, tt.action, tt.next); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("Reward(0,%d,%d) = %v, want %v", tt.action, tt.next, got, tt.want)
		}
	}
}

func TestExpectedStayRewardDecreasingInN(t *testing.T) {
	// Eq. (23): E[U(n, (s,p))] = -L_p - L_J * P(lose)/(S-n) decreases
	// with n. Verify directly from the model's transitions and rewards.
	m, err := NewModel(paperParams(jammer.ModeRandom))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 10; p++ {
		action, err := m.ActionOf(false, p)
		if err != nil {
			t.Fatal(err)
		}
		prev := math.Inf(1)
		for n := 1; n <= m.p.SweepCycle-1; n++ {
			state, err := m.StateOfN(n)
			if err != nil {
				t.Fatal(err)
			}
			var eu float64
			for _, tr := range m.Transitions(state, action) {
				eu += tr.Prob * m.Reward(state, action, tr.Next)
			}
			if eu > prev+1e-12 {
				t.Fatalf("power %d: E[U] increased from n=%d to n=%d", p, n-1, n)
			}
			prev = eu
		}
	}
}
