package core

import (
	"testing"

	"ctjam/internal/env"
	"ctjam/internal/jammer"
)

func TestNewQAgentValidation(t *testing.T) {
	m, err := NewModel(paperParams(jammer.ModeMax))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQAgent(m, 1, 1, 1); err == nil {
		t.Fatal("bad topology: expected error")
	}
	if _, err := NewQAgent(m, 16, 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestQAgentTrainValidation(t *testing.T) {
	m, err := NewModel(paperParams(jammer.ModeMax))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewQAgent(m, 16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := env.New(env.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(e, 0); err == nil {
		t.Fatal("0 slots: expected error")
	}
}

func TestQAgentLearnsToDefend(t *testing.T) {
	// Over the compact belief-state space, tabular Q-learning should
	// approach the exact policy's performance — this is the baseline the
	// paper's DQN is compared against conceptually.
	cfg := env.DefaultConfig()
	cfg.Seed = 3
	m, err := NewModel(ParamsFromEnv(cfg))
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewQAgent(m, 16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	trainEnv, err := env.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(trainEnv, 20000); err != nil {
		t.Fatal(err)
	}

	evalCfg := cfg
	evalCfg.Seed = 99
	st := runAgent(t, evalCfg, agent, 10000).ST()

	passive, err := NewPassiveFH(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	stPassive := runAgent(t, evalCfg, passive, 10000).ST()
	t.Logf("ST: q-learning=%.3f passive=%.3f", st, stPassive)
	if st <= stPassive {
		t.Fatalf("Q-learning ST %.3f should beat passive %.3f", st, stPassive)
	}
	if st < 0.6 {
		t.Fatalf("Q-learning ST %.3f too far below the exact policy's ~0.79", st)
	}
}

func TestQAgentBeliefTracking(t *testing.T) {
	m, err := NewModel(paperParams(jammer.ModeMax))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewQAgent(m, 16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Reset(nil)
	if a.beliefState() != 0 {
		t.Fatalf("initial belief = %d, want 0 (n=1)", a.beliefState())
	}
	a.observe(env.OutcomeSuccess, false)
	if got, _ := m.StateOfN(2); a.beliefState() != got {
		t.Fatalf("belief after success = %d, want n=2", a.beliefState())
	}
	a.observe(env.OutcomeJammed, false)
	if a.beliefState() != m.StateJ() {
		t.Fatalf("belief after jam = %d, want J", a.beliefState())
	}
	a.observe(env.OutcomeJammedSurvived, false)
	if a.beliefState() != m.StateTJ() {
		t.Fatalf("belief after survived jam = %d, want TJ", a.beliefState())
	}
	a.observe(env.OutcomeSuccess, true)
	if a.beliefState() != 0 {
		t.Fatalf("belief after hop+success = %d, want n=1", a.beliefState())
	}
	// n saturates at S-1.
	for i := 0; i < 10; i++ {
		a.observe(env.OutcomeSuccess, false)
	}
	if got, _ := m.StateOfN(3); a.beliefState() != got {
		t.Fatalf("belief saturation = %d, want n=3", a.beliefState())
	}
}
