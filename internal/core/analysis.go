package core

import (
	"fmt"
	"math"

	"ctjam/internal/mdp"
)

// Analysis holds the structural view of a solved anti-jamming MDP used by
// §III-B: per-state best stay/hop values and the threshold n*.
type Analysis struct {
	// QStay[n-1] and QHop[n-1] are max over power levels of
	// Q(n, (s,p)) and Q(n, (h,p)) for n = 1..S-1.
	QStay []float64
	QHop  []float64
	// Threshold is the paper's n* in 1..S: stay for n < n*, hop for
	// n >= n*. Threshold = S means "never hop" in the counting states.
	Threshold int
	// IsThreshold reports whether the solved optimal policy actually has
	// the single-crossing structure of Theorem III.4.
	IsThreshold bool
	// BestStayPower[n-1] / BestHopPower[n-1] are the argmax power
	// indices.
	BestStayPower []int
	BestHopPower  []int
}

// Analyze solves nothing; it inspects an existing solution of the model.
func Analyze(m *Model, sol *mdp.Solution) (*Analysis, error) {
	nCounting := m.p.SweepCycle - 1
	if len(sol.Q) != m.NumStates() {
		return nil, fmt.Errorf("core: solution has %d states, model has %d", len(sol.Q), m.NumStates())
	}
	a := &Analysis{
		QStay:         make([]float64, nCounting),
		QHop:          make([]float64, nCounting),
		BestStayPower: make([]int, nCounting),
		BestHopPower:  make([]int, nCounting),
	}
	mm := len(m.p.TxPowers)
	for n := 1; n <= nCounting; n++ {
		state, err := m.StateOfN(n)
		if err != nil {
			return nil, err
		}
		bestStay, bestHop := math.Inf(-1), math.Inf(-1)
		for p := 0; p < mm; p++ {
			if q := sol.Q[state][p]; q > bestStay {
				bestStay = q
				a.BestStayPower[n-1] = p
			}
			if q := sol.Q[state][mm+p]; q > bestHop {
				bestHop = q
				a.BestHopPower[n-1] = p
			}
		}
		a.QStay[n-1] = bestStay
		a.QHop[n-1] = bestHop
	}

	// Find the first n where hopping wins; verify single crossing.
	a.Threshold = m.p.SweepCycle // default: never hop
	for n := 1; n <= nCounting; n++ {
		if a.QHop[n-1] > a.QStay[n-1] {
			a.Threshold = n
			break
		}
	}
	a.IsThreshold = true
	for n := 1; n <= nCounting; n++ {
		shouldHop := n >= a.Threshold
		isHop := a.QHop[n-1] > a.QStay[n-1]
		if isHop != shouldHop {
			a.IsThreshold = false
			break
		}
	}
	return a, nil
}

// SolveAndAnalyze is the one-call convenience used by experiments.
func SolveAndAnalyze(p Params, gamma float64) (*Model, *mdp.Solution, *Analysis, error) {
	m, err := NewModel(p)
	if err != nil {
		return nil, nil, nil, err
	}
	sol, err := m.Solve(gamma)
	if err != nil {
		return nil, nil, nil, err
	}
	a, err := Analyze(m, sol)
	if err != nil {
		return nil, nil, nil, err
	}
	return m, sol, a, nil
}

// IsMonotone reports whether xs is non-increasing (dir < 0) or
// non-decreasing (dir > 0) within tolerance tol.
func IsMonotone(xs []float64, dir int, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		d := xs[i] - xs[i-1]
		if dir > 0 && d < -tol {
			return false
		}
		if dir < 0 && d > tol {
			return false
		}
	}
	return true
}

// QStayByN returns Q(n, (s, p)) for fixed power index p over n = 1..S-1,
// the quantity Lemma III.2 proves decreasing.
func QStayByN(m *Model, sol *mdp.Solution, power int) ([]float64, error) {
	return qByN(m, sol, power, false)
}

// QHopByN returns Q(n, (h, p)) for fixed power index p over n = 1..S-1,
// the quantity Lemma III.3 proves increasing.
func QHopByN(m *Model, sol *mdp.Solution, power int) ([]float64, error) {
	return qByN(m, sol, power, true)
}

func qByN(m *Model, sol *mdp.Solution, power int, hop bool) ([]float64, error) {
	action, err := m.ActionOf(hop, power)
	if err != nil {
		return nil, err
	}
	out := make([]float64, m.p.SweepCycle-1)
	for n := 1; n <= m.p.SweepCycle-1; n++ {
		state, err := m.StateOfN(n)
		if err != nil {
			return nil, err
		}
		out[n-1] = sol.Q[state][action]
	}
	return out, nil
}
