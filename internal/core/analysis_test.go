package core

import (
	"testing"

	"ctjam/internal/jammer"
)

const testGamma = 0.9

func solved(t *testing.T, p Params) (*Model, *Analysis) {
	t.Helper()
	m, _, a, err := SolveAndAnalyze(p, testGamma)
	if err != nil {
		t.Fatal(err)
	}
	return m, a
}

func TestLemmaIII2QStayDecreasing(t *testing.T) {
	// Lemma III.2: Q*(n, (s, p)) is decreasing in n for every power p.
	for _, mode := range []jammer.PowerMode{jammer.ModeMax, jammer.ModeRandom} {
		p := paperParams(mode)
		m, err := NewModel(p)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := m.Solve(testGamma)
		if err != nil {
			t.Fatal(err)
		}
		for pw := 0; pw < len(p.TxPowers); pw++ {
			qs, err := QStayByN(m, sol, pw)
			if err != nil {
				t.Fatal(err)
			}
			if !IsMonotone(qs, -1, 1e-9) {
				t.Fatalf("mode %v power %d: Q(n,stay) not decreasing: %v", mode, pw, qs)
			}
		}
	}
}

func TestLemmaIII3QHopIncreasing(t *testing.T) {
	// Lemma III.3: Q*(n, (h, p)) is increasing in n for every power p.
	for _, mode := range []jammer.PowerMode{jammer.ModeMax, jammer.ModeRandom} {
		p := paperParams(mode)
		m, err := NewModel(p)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := m.Solve(testGamma)
		if err != nil {
			t.Fatal(err)
		}
		for pw := 0; pw < len(p.TxPowers); pw++ {
			qh, err := QHopByN(m, sol, pw)
			if err != nil {
				t.Fatal(err)
			}
			if !IsMonotone(qh, +1, 1e-9) {
				t.Fatalf("mode %v power %d: Q(n,hop) not increasing: %v", mode, pw, qh)
			}
		}
	}
}

func TestTheoremIII4ThresholdStructure(t *testing.T) {
	// Theorem III.4: the optimal stay/hop decision is a threshold in n.
	for _, mode := range []jammer.PowerMode{jammer.ModeMax, jammer.ModeRandom} {
		_, a := solved(t, paperParams(mode))
		if !a.IsThreshold {
			t.Fatalf("mode %v: policy is not a threshold policy", mode)
		}
		if a.Threshold < 1 || a.Threshold > 4 {
			t.Fatalf("mode %v: threshold %d out of range", mode, a.Threshold)
		}
	}
}

func TestTheoremIII4ThresholdStructureAcrossParamsProperty(t *testing.T) {
	// The threshold structure must hold across a grid of (L_J, L_H,
	// sweep cycle) values, not only at the defaults.
	for _, s := range []int{3, 4, 6, 8} {
		for _, lj := range []float64{20, 60, 100, 200} {
			for _, lh := range []float64{0, 25, 50, 100} {
				p := Params{
					SweepCycle: s,
					TxPowers:   []float64{6, 9, 12, 15},
					WinProb:    []float64{0, 0.2, 0.35, 0.5},
					LossHop:    lh,
					LossJam:    lj,
				}
				_, a := solved(t, p)
				if !a.IsThreshold {
					t.Fatalf("S=%d LJ=%v LH=%v: not a threshold policy (stay=%v hop=%v)",
						s, lj, lh, a.QStay, a.QHop)
				}
			}
		}
	}
}

func TestTheoremIII5ThresholdDecreasesWithLJ(t *testing.T) {
	// Theorem III.5: n* decreases as L_J grows (a costlier jam makes
	// early hopping worthwhile).
	prev := 1 << 30
	for _, lj := range []float64{10, 30, 60, 100, 200, 400} {
		p := paperParams(jammer.ModeRandom)
		p.LossJam = lj
		_, a := solved(t, p)
		if a.Threshold > prev {
			t.Fatalf("threshold rose from %d to %d when L_J grew to %v", prev, a.Threshold, lj)
		}
		prev = a.Threshold
	}
}

func TestTheoremIII5ThresholdIncreasesWithLH(t *testing.T) {
	// Theorem III.5: n* increases with L_H (expensive hops are deferred).
	prev := 0
	for _, lh := range []float64{0, 10, 30, 60, 120, 300} {
		p := paperParams(jammer.ModeRandom)
		p.LossHop = lh
		_, a := solved(t, p)
		if a.Threshold < prev {
			t.Fatalf("threshold fell from %d to %d when L_H grew to %v", prev, a.Threshold, lh)
		}
		prev = a.Threshold
	}
}

func TestTheoremIII5ThresholdIncreasesWithSweepCycle(t *testing.T) {
	// Theorem III.5: n* increases with ceil(K/m) (a slower jammer lets
	// the victim linger).
	prev := 0
	for _, s := range []int{3, 4, 6, 8, 12} {
		p := paperParams(jammer.ModeRandom)
		p.SweepCycle = s
		_, a := solved(t, p)
		if a.Threshold < prev {
			t.Fatalf("threshold fell from %d to %d when sweep cycle grew to %d", prev, a.Threshold, s)
		}
		prev = a.Threshold
	}
}

func TestSmallLJMeansNoDefense(t *testing.T) {
	// Fig. 6(a): with L_J below the power cost range, it is not worth
	// defending; the policy never hops and ST collapses. The analysis
	// should show threshold = S (never hop).
	p := paperParams(jammer.ModeMax)
	p.LossJam = 5
	_, a := solved(t, p)
	if a.Threshold != p.SweepCycle {
		t.Fatalf("threshold = %d, want %d (never hop) for tiny L_J", a.Threshold, p.SweepCycle)
	}
}

func TestLargeLJMeansAggressiveHopping(t *testing.T) {
	p := paperParams(jammer.ModeMax)
	p.LossJam = 1000
	p.LossHop = 10
	_, a := solved(t, p)
	if a.Threshold > 2 {
		t.Fatalf("threshold = %d, want <= 2 for huge L_J and cheap hops", a.Threshold)
	}
}

func TestIsMonotone(t *testing.T) {
	if !IsMonotone([]float64{3, 2, 1}, -1, 0) {
		t.Fatal("decreasing not detected")
	}
	if IsMonotone([]float64{1, 2, 1}, -1, 0) {
		t.Fatal("non-monotone accepted as decreasing")
	}
	if !IsMonotone([]float64{1, 1.5, 2}, +1, 0) {
		t.Fatal("increasing not detected")
	}
	if !IsMonotone([]float64{1, 0.9999}, +1, 0.01) {
		t.Fatal("tolerance ignored")
	}
	if !IsMonotone(nil, +1, 0) || !IsMonotone([]float64{5}, -1, 0) {
		t.Fatal("trivial cases must be monotone")
	}
}

func TestMDPPolicyPowerChoiceByMode(t *testing.T) {
	// In max mode no power level can win the duel, so the optimal policy
	// transmits at minimum power (PC is pure waste). In random mode the
	// policy should exploit higher powers in jammed states.
	pMax := paperParams(jammer.ModeMax)
	mMax, _, aMax, err := SolveAndAnalyze(pMax, testGamma)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= pMax.SweepCycle-1; n++ {
		if aMax.BestStayPower[n-1] != 0 {
			t.Fatalf("max mode: best stay power at n=%d is %d, want 0", n, aMax.BestStayPower[n-1])
		}
	}

	pRand := paperParams(jammer.ModeRandom)
	mRand, err := NewModel(pRand)
	if err != nil {
		t.Fatal(err)
	}
	solRand, err := mRand.Solve(testGamma)
	if err != nil {
		t.Fatal(err)
	}
	// In the TJ state (co-channel with a dueling jammer) the random-mode
	// policy should favor staying power above minimum or hop; verify the
	// policy differs from max mode's behaviour somewhere.
	_, pwTJ, err := mRand.DecodeAction(solRand.Policy[mRand.StateTJ()])
	if err != nil {
		t.Fatal(err)
	}
	hopTJ, _, err := mMax.DecodeAction(solRand.Policy[mMax.StateTJ()])
	if err != nil {
		t.Fatal(err)
	}
	if !hopTJ && pwTJ == 0 {
		t.Fatalf("random mode TJ policy uses neither PC nor FH")
	}
}
