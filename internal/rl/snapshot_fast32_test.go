package rl

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Fast-engine snapshot tests: the float32 view must agree with the exact
// engine at the action level (the budget that matters for the defense loop),
// track its Q-values within the quantization tolerance, and stay safe under
// concurrent use.

func TestSnapshotFast32View(t *testing.T) {
	d := testLearner(t, 7)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Engine() != EngineExact {
		t.Fatalf("default engine %v, want %v", snap.Engine(), EngineExact)
	}
	fast, err := snap.Fast32()
	if err != nil {
		t.Fatal(err)
	}
	if fast.Engine() != EngineFast32 {
		t.Fatalf("fast engine %v, want %v", fast.Engine(), EngineFast32)
	}
	if fast == snap {
		t.Fatal("Fast32 must return a distinct view, not mutate the source")
	}
	if fast.StateDim() != snap.StateDim() || fast.NumActions() != snap.NumActions() {
		t.Fatalf("fast dims %dx%d != exact %dx%d",
			fast.StateDim(), fast.NumActions(), snap.StateDim(), snap.NumActions())
	}
	again, err := fast.Fast32()
	if err != nil {
		t.Fatal(err)
	}
	if again != fast {
		t.Fatal("Fast32 on a fast view must be idempotent")
	}
	if got, want := EngineExact.String(), "exact"; got != want {
		t.Fatalf("EngineExact.String() = %q", got)
	}
	if got, want := EngineFast32.String(), "fast32"; got != want {
		t.Fatalf("EngineFast32.String() = %q", got)
	}
}

func TestSnapshotFast32QValuesWithinTolerance(t *testing.T) {
	d := testLearner(t, 11)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := snap.Fast32()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 17, 64} {
		states := randBatch(rng, n, 24)
		exact := make([]float64, n*160)
		approx := make([]float64, n*160)
		if err := snap.QValuesBatch(exact, states); err != nil {
			t.Fatal(err)
		}
		if err := fast.QValuesBatch(approx, states); err != nil {
			t.Fatal(err)
		}
		for i := range exact {
			diff := math.Abs(approx[i] - exact[i])
			if diff > 5e-4+5e-4*math.Abs(exact[i]) {
				t.Fatalf("n=%d q %d: fast %v vs exact %v exceeds budget", n, i, approx[i], exact[i])
			}
		}
	}
}

// TestSnapshotFast32ActionAgreement is the end-to-end budget on the rl
// layer: across randomized state batches, fast-engine greedy actions must
// agree with exact-engine actions at ≥99.9%, and every disagreement must be
// an exact-engine near-tie (two Q-values so close that either action is
// defensible).
func TestSnapshotFast32ActionAgreement(t *testing.T) {
	d := testLearner(t, 13)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := snap.Fast32()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const batches, n = 40, 100
	total, agree := 0, 0
	for b := 0; b < batches; b++ {
		states := randBatch(rng, n, 24)
		exactA := make([]int, n)
		fastA := make([]int, n)
		if err := snap.GreedyBatch(exactA, states); err != nil {
			t.Fatal(err)
		}
		if err := fast.GreedyBatch(fastA, states); err != nil {
			t.Fatal(err)
		}
		q := make([]float64, n*160)
		if err := snap.QValuesBatch(q, states); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			total++
			if exactA[i] == fastA[i] {
				agree++
				continue
			}
			row := q[i*160 : (i+1)*160]
			gap := math.Abs(row[exactA[i]] - row[fastA[i]])
			if gap > 1e-3 {
				t.Fatalf("batch %d state %d: engines picked %d vs %d with Q gap %v — not a near-tie",
					b, i, exactA[i], fastA[i], gap)
			}
		}
	}
	rate := float64(agree) / float64(total)
	if rate < 0.999 {
		t.Fatalf("action agreement %.5f over %d states, want >= 0.999", rate, total)
	}
}

func TestSnapshotFast32Concurrent(t *testing.T) {
	d := testLearner(t, 17)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := snap.Fast32()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	states := randBatch(rng, 16, 24)
	want := make([]int, 16)
	if err := fast.GreedyBatch(want, states); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			actions := make([]int, 16)
			q := make([]float64, 16*160)
			for iter := 0; iter < 40; iter++ {
				if err := fast.GreedyBatch(actions, states); err != nil {
					fail <- err.Error()
					return
				}
				for i := range want {
					if actions[i] != want[i] {
						fail <- "concurrent fast32 greedy diverged"
						return
					}
				}
				if err := fast.QValuesBatch(q, states); err != nil {
					fail <- err.Error()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}
