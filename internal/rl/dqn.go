package rl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ctjam/internal/nn"
	"ctjam/internal/rng"
)

// DQNConfig parameterizes a DQN learner. The defaults in DefaultDQNConfig
// mirror the paper's setup: a 4-layer fully-connected network whose input is
// the last I slots of (state, channel, power) and whose output is one
// Q-value per (channel, power) action.
type DQNConfig struct {
	// StateDim is the observation vector length (3*I in the paper).
	StateDim int
	// NumActions is the number of discrete actions (C*PL in the paper).
	NumActions int
	// Hidden sizes the two hidden layers.
	Hidden []int
	// Gamma is the discount factor.
	Gamma float64
	// LearningRate feeds the Adam optimizer.
	LearningRate float64
	// BatchSize is the replay minibatch size.
	BatchSize int
	// BufferCapacity is the replay buffer size.
	BufferCapacity int
	// WarmupSize is the minimum buffer fill before training starts.
	WarmupSize int
	// TargetSyncEvery is the number of training steps between target
	// network synchronizations.
	TargetSyncEvery int
	// Epsilon is the exploration schedule.
	Epsilon EpsilonSchedule
	// DoubleDQN selects actions with the online network and evaluates
	// them with the target network (van Hasselt et al.), reducing the
	// max-operator's overestimation bias. Plain DQN when false.
	DoubleDQN bool
	// Seed seeds the network initialization and exploration RNG.
	Seed int64
}

// DefaultDQNConfig returns the configuration used throughout the
// reproduction.
func DefaultDQNConfig(stateDim, numActions int) DQNConfig {
	return DQNConfig{
		StateDim:        stateDim,
		NumActions:      numActions,
		Hidden:          []int{48, 48},
		Gamma:           0.9,
		LearningRate:    1e-3,
		BatchSize:       32,
		BufferCapacity:  20000,
		WarmupSize:      500,
		TargetSyncEvery: 250,
		Epsilon:         EpsilonSchedule{Start: 1.0, End: 0.02, DecaySteps: 8000},
		Seed:            1,
	}
}

// DQN is a Deep Q-Network learner with uniform replay and a target network.
type DQN struct {
	cfg    DQNConfig
	online *nn.Network
	target *nn.Network
	opt    *nn.Adam
	buffer *ReplayBuffer
	rng    *rand.Rand
	rngSrc *rng.Source

	envSteps   int
	trainSteps int

	// Reusable buffers for the QValues / TrainStep hot paths.
	stateBuf *nn.Matrix
	states   *nn.Matrix
	nexts    *nn.Matrix
	nextSel  []int
}

// NewDQN builds the learner.
func NewDQN(cfg DQNConfig) (*DQN, error) {
	if cfg.StateDim <= 0 || cfg.NumActions <= 0 {
		return nil, fmt.Errorf("rl: invalid dimensions state=%d actions=%d", cfg.StateDim, cfg.NumActions)
	}
	if cfg.Gamma < 0 || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("rl: gamma %v must be in [0,1)", cfg.Gamma)
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("rl: batch size %d must be positive", cfg.BatchSize)
	}
	if len(cfg.Hidden) == 0 {
		return nil, errors.New("rl: at least one hidden layer required")
	}
	random, src := rng.New(cfg.Seed)
	sizes := append([]int{cfg.StateDim}, cfg.Hidden...)
	sizes = append(sizes, cfg.NumActions)
	online, err := nn.NewMLP(sizes, random)
	if err != nil {
		return nil, fmt.Errorf("rl: build online network: %w", err)
	}
	target, err := online.Clone()
	if err != nil {
		return nil, fmt.Errorf("rl: build target network: %w", err)
	}
	buffer, err := NewReplayBuffer(cfg.BufferCapacity)
	if err != nil {
		return nil, err
	}
	return &DQN{
		cfg:    cfg,
		online: online,
		target: target,
		opt:    nn.NewAdam(cfg.LearningRate),
		buffer: buffer,
		rng:    random,
		rngSrc: src,
	}, nil
}

// Network exposes the online network (e.g. for serialization).
func (d *DQN) Network() *nn.Network { return d.online }

// SetNetwork replaces the online and target networks (e.g. after loading a
// saved model).
func (d *DQN) SetNetwork(net *nn.Network) error {
	clone, err := net.Clone()
	if err != nil {
		return err
	}
	d.online = net
	d.target = clone
	return nil
}

// EnvSteps returns the number of transitions observed.
func (d *DQN) EnvSteps() int { return d.envSteps }

// TrainSteps returns the number of gradient updates performed.
func (d *DQN) TrainSteps() int { return d.trainSteps }

// Epsilon returns the current exploration rate.
func (d *DQN) Epsilon() float64 { return d.cfg.Epsilon.Value(d.envSteps) }

// QValues evaluates the online network on one state. The returned slice is a
// view into the network's output buffer and is valid only until the next
// QValues / SelectAction / Observe call; copy it to keep the values.
func (d *DQN) QValues(state []float64) ([]float64, error) {
	if len(state) != d.cfg.StateDim {
		return nil, fmt.Errorf("rl: state has %d dims, want %d", len(state), d.cfg.StateDim)
	}
	if d.stateBuf == nil {
		d.stateBuf = nn.NewMatrix(1, d.cfg.StateDim)
	}
	d.stateBuf.Reshape(1, d.cfg.StateDim) // QValuesBatch may have widened it
	copy(d.stateBuf.Data, state)
	out, err := d.online.Forward(d.stateBuf)
	if err != nil {
		return nil, err
	}
	return out.RowView(0), nil
}

// QValuesBatch evaluates the online network on n stacked states (states must
// hold n*StateDim values, row-major) and returns the n x NumActions Q matrix.
// Like QValues, the returned matrix is network-owned scratch, valid only
// until the learner's next forward pass. For a concurrent-safe inference
// path use Snapshot.
func (d *DQN) QValuesBatch(states []float64) (*nn.Matrix, error) {
	if len(states) == 0 || len(states)%d.cfg.StateDim != 0 {
		return nil, fmt.Errorf("rl: batch of %d values is not a multiple of state dim %d", len(states), d.cfg.StateDim)
	}
	n := len(states) / d.cfg.StateDim
	if d.stateBuf == nil {
		d.stateBuf = nn.NewMatrix(n, d.cfg.StateDim)
	}
	d.stateBuf.Reshape(n, d.cfg.StateDim)
	copy(d.stateBuf.Data, states)
	return d.online.Forward(d.stateBuf)
}

// Snapshot clones the online network's weights into an immutable
// inference-only Snapshot (no Adam moments, no replay buffer, no exploration
// state) that is safe for concurrent readers.
func (d *DQN) Snapshot() (*Snapshot, error) {
	net, err := d.online.Clone()
	if err != nil {
		return nil, err
	}
	return NewSnapshot(net)
}

// SelectAction picks an action epsilon-greedily. With probability 1-eps it
// returns argmax Q(s, .); otherwise a uniformly random other action, as in
// the paper's exploration rule.
func (d *DQN) SelectAction(state []float64) (int, error) {
	q, err := d.QValues(state)
	if err != nil {
		return 0, err
	}
	best := argmax(q)
	eps := d.Epsilon()
	if d.rng.Float64() >= eps || d.cfg.NumActions == 1 {
		return best, nil
	}
	// Explore: uniform over the other NumActions-1 actions.
	a := d.rng.Intn(d.cfg.NumActions - 1)
	if a >= best {
		a++
	}
	return a, nil
}

// GreedyAction returns argmax Q(s, .) without exploration.
func (d *DQN) GreedyAction(state []float64) (int, error) {
	q, err := d.QValues(state)
	if err != nil {
		return 0, err
	}
	return argmax(q), nil
}

// Observe stores a transition and, once warmed up, performs one training
// step. It returns the training loss (0 when no step was taken).
func (d *DQN) Observe(t Transition) (float64, error) {
	if len(t.State) != d.cfg.StateDim || len(t.Next) != d.cfg.StateDim {
		return 0, fmt.Errorf("rl: transition dims %d/%d, want %d", len(t.State), len(t.Next), d.cfg.StateDim)
	}
	if t.Action < 0 || t.Action >= d.cfg.NumActions {
		return 0, fmt.Errorf("rl: action %d out of range", t.Action)
	}
	d.buffer.Push(t)
	d.envSteps++
	if d.buffer.Len() < d.cfg.WarmupSize || d.buffer.Len() < d.cfg.BatchSize {
		return 0, nil
	}
	return d.TrainStep()
}

// TrainStep samples a minibatch and performs one Q-learning update:
// target = r + gamma * max_a' Q_target(s', a') (or r for terminal
// transitions); only the taken action's output receives gradient.
func (d *DQN) TrainStep() (float64, error) {
	batch, err := d.buffer.Sample(d.cfg.BatchSize, d.rng)
	if err != nil {
		return 0, err
	}
	n := len(batch)
	if d.states == nil {
		d.states = nn.NewMatrix(n, d.cfg.StateDim)
		d.nexts = nn.NewMatrix(n, d.cfg.StateDim)
	}
	states, nexts := d.states, d.nexts
	states.Reshape(n, d.cfg.StateDim)
	nexts.Reshape(n, d.cfg.StateDim)
	for i, t := range batch {
		copy(states.Data[i*d.cfg.StateDim:], t.State)
		copy(nexts.Data[i*d.cfg.StateDim:], t.Next)
	}

	nextQ, err := d.target.Forward(nexts)
	if err != nil {
		return 0, err
	}
	// Double DQN: the online network picks the next action, the target
	// network scores it. The online net's output buffer is reused by its
	// next Forward call, so extract the argmax selections before running
	// the prediction pass below.
	var nextSel []int
	if d.cfg.DoubleDQN {
		nextOnline, err := d.online.Forward(nexts)
		if err != nil {
			return 0, err
		}
		if cap(d.nextSel) < n {
			d.nextSel = make([]int, n)
		}
		nextSel = d.nextSel[:n]
		for i := range nextSel {
			nextSel[i] = argmax(nextOnline.Data[i*d.cfg.NumActions : (i+1)*d.cfg.NumActions])
		}
	}
	pred, err := d.online.Forward(states)
	if err != nil {
		return 0, err
	}

	// Build the TD targets; entries for non-taken actions copy the
	// prediction so they contribute zero gradient.
	target := pred.Clone()
	for i, t := range batch {
		y := t.Reward
		if !t.Done {
			row := nextQ.Data[i*d.cfg.NumActions : (i+1)*d.cfg.NumActions]
			if d.cfg.DoubleDQN {
				y += d.cfg.Gamma * row[nextSel[i]]
			} else {
				best := math.Inf(-1)
				for _, v := range row {
					if v > best {
						best = v
					}
				}
				y += d.cfg.Gamma * best
			}
		}
		target.Set(i, t.Action, y)
	}

	loss, grad, err := nn.MSELoss(pred, target)
	if err != nil {
		return 0, err
	}
	d.online.ZeroGrad()
	if err := d.online.Backward(grad); err != nil {
		return 0, err
	}
	if err := d.opt.Step(d.online.Params()); err != nil {
		return 0, err
	}

	d.trainSteps++
	if d.cfg.TargetSyncEvery > 0 && d.trainSteps%d.cfg.TargetSyncEvery == 0 {
		if err := d.target.CopyWeightsFrom(d.online); err != nil {
			return 0, err
		}
	}
	return loss, nil
}

func argmax(x []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range x {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
