package rl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"ctjam/internal/nn"
)

// Checkpoint format for the DQN learner: a small custom binary layout in the
// style of nn/serialize.go (magic, version, little-endian fields). SaveState
// captures everything mutable — online and target weights, Adam moments,
// replay buffer, step counters and the exploration RNG — so LoadState into a
// learner built with the same DQNConfig resumes training bit-identically.

const (
	stateMagic   = 0x43544451 // "CTDQ"
	stateVersion = 1
)

// ErrBadCheckpoint is returned when decoding an invalid learner state.
var ErrBadCheckpoint = errors.New("rl: bad checkpoint")

// SaveState writes the learner's complete mutable state to w.
func (d *DQN) SaveState(w io.Writer) error {
	write := func(v any) error { return binary.Write(w, binary.LittleEndian, v) }
	for _, v := range []any{
		uint32(stateMagic), uint32(stateVersion),
		uint32(d.cfg.StateDim), uint32(d.cfg.NumActions),
		uint64(d.envSteps), uint64(d.trainSteps),
		uint64(d.rngSrc.SeedUsed()), d.rngSrc.State(),
	} {
		if err := write(v); err != nil {
			return err
		}
	}
	if err := d.online.Save(w); err != nil {
		return err
	}
	if err := d.target.Save(w); err != nil {
		return err
	}
	if err := d.opt.SaveAdam(w, d.online.Params()); err != nil {
		return err
	}
	// Replay buffer: ring indices plus the live entries in storage order.
	count := d.buffer.Len()
	for _, v := range []any{uint32(d.buffer.next), boolByte(d.buffer.full), uint32(count)} {
		if err := write(v); err != nil {
			return err
		}
	}
	for i := 0; i < count; i++ {
		t := d.buffer.buf[i]
		if err := writeTransition(w, t, d.cfg.StateDim); err != nil {
			return err
		}
	}
	return nil
}

// LoadState restores state written by SaveState into d, which must have been
// built with the same DQNConfig. On any error d is left unchanged.
func (d *DQN) LoadState(r io.Reader) error {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic, version, stateDim, numActions uint32
	var envSteps, trainSteps, rngSeed, rngState uint64
	for _, v := range []any{&magic, &version, &stateDim, &numActions, &envSteps, &trainSteps, &rngSeed, &rngState} {
		if err := read(v); err != nil {
			return fmt.Errorf("%w: header: %v", ErrBadCheckpoint, err)
		}
	}
	if magic != stateMagic {
		return fmt.Errorf("%w: bad magic %#x", ErrBadCheckpoint, magic)
	}
	if version != stateVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, version)
	}
	if int(stateDim) != d.cfg.StateDim || int(numActions) != d.cfg.NumActions {
		return fmt.Errorf("%w: dims %dx%d, learner wants %dx%d",
			ErrBadCheckpoint, stateDim, numActions, d.cfg.StateDim, d.cfg.NumActions)
	}
	if envSteps > 1<<40 || trainSteps > envSteps {
		return fmt.Errorf("%w: implausible counters env=%d train=%d", ErrBadCheckpoint, envSteps, trainSteps)
	}
	online, err := nn.Load(r)
	if err != nil {
		return fmt.Errorf("%w: online network: %v", ErrBadCheckpoint, err)
	}
	target, err := nn.Load(r)
	if err != nil {
		return fmt.Errorf("%w: target network: %v", ErrBadCheckpoint, err)
	}
	// Stage the weights into clones so a failure below leaves d untouched,
	// then validate shapes against the configured architecture.
	newOnline, err := d.online.Clone()
	if err != nil {
		return err
	}
	newTarget, err := d.target.Clone()
	if err != nil {
		return err
	}
	if err := newOnline.CopyWeightsFrom(online); err != nil {
		return fmt.Errorf("%w: online network: %v", ErrBadCheckpoint, err)
	}
	if err := newTarget.CopyWeightsFrom(target); err != nil {
		return fmt.Errorf("%w: target network: %v", ErrBadCheckpoint, err)
	}
	opt := nn.NewAdam(d.cfg.LearningRate)
	if err := opt.LoadAdam(r, newOnline.Params()); err != nil {
		return fmt.Errorf("%w: adam: %v", ErrBadCheckpoint, err)
	}

	var next uint32
	var fullB uint8
	var count uint32
	for _, v := range []any{&next, &fullB, &count} {
		if err := read(v); err != nil {
			return fmt.Errorf("%w: buffer header: %v", ErrBadCheckpoint, err)
		}
	}
	capacity := d.buffer.Cap()
	full := fullB != 0
	if int(count) > capacity || int(next) >= capacity || fullB > 1 {
		return fmt.Errorf("%w: buffer indices count=%d next=%d full=%d cap=%d",
			ErrBadCheckpoint, count, next, fullB, capacity)
	}
	if (full && int(count) != capacity) || (!full && int(count) != int(next)) {
		return fmt.Errorf("%w: inconsistent buffer fill count=%d next=%d full=%v",
			ErrBadCheckpoint, count, next, full)
	}
	buf := make([]Transition, capacity)
	for i := 0; i < int(count); i++ {
		t, err := readTransition(r, d.cfg.StateDim, d.cfg.NumActions)
		if err != nil {
			return err
		}
		buf[i] = t
	}

	// All sections decoded: commit.
	d.online = newOnline
	d.target = newTarget
	d.opt = opt
	d.buffer.buf = buf
	d.buffer.next = int(next)
	d.buffer.full = full
	d.envSteps = int(envSteps)
	d.trainSteps = int(trainSteps)
	d.rngSrc.Restore(int64(rngSeed), rngState)
	return nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func writeTransition(w io.Writer, t Transition, stateDim int) error {
	write := func(v any) error { return binary.Write(w, binary.LittleEndian, v) }
	if len(t.State) != stateDim || len(t.Next) != stateDim {
		return fmt.Errorf("rl: transition dims %d/%d, want %d", len(t.State), len(t.Next), stateDim)
	}
	for _, s := range [2][]float64{t.State, t.Next} {
		for _, x := range s {
			if err := write(math.Float64bits(x)); err != nil {
				return err
			}
		}
	}
	if err := write(uint32(t.Action)); err != nil {
		return err
	}
	if err := write(math.Float64bits(t.Reward)); err != nil {
		return err
	}
	return write(boolByte(t.Done))
}

func readTransition(r io.Reader, stateDim, numActions int) (Transition, error) {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	t := Transition{State: make([]float64, stateDim), Next: make([]float64, stateDim)}
	for _, s := range [2][]float64{t.State, t.Next} {
		for i := range s {
			var bits uint64
			if err := read(&bits); err != nil {
				return Transition{}, fmt.Errorf("%w: transition: %v", ErrBadCheckpoint, err)
			}
			s[i] = math.Float64frombits(bits)
		}
	}
	var action uint32
	if err := read(&action); err != nil {
		return Transition{}, fmt.Errorf("%w: transition action: %v", ErrBadCheckpoint, err)
	}
	if int(action) >= numActions {
		return Transition{}, fmt.Errorf("%w: action %d out of range [0,%d)", ErrBadCheckpoint, action, numActions)
	}
	var rewardBits uint64
	if err := read(&rewardBits); err != nil {
		return Transition{}, fmt.Errorf("%w: transition reward: %v", ErrBadCheckpoint, err)
	}
	var done uint8
	if err := read(&done); err != nil {
		return Transition{}, fmt.Errorf("%w: transition done: %v", ErrBadCheckpoint, err)
	}
	if done > 1 {
		return Transition{}, fmt.Errorf("%w: transition done flag %d", ErrBadCheckpoint, done)
	}
	t.Action = int(action)
	t.Reward = math.Float64frombits(rewardBits)
	t.Done = done == 1
	return t, nil
}
