package rl

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func testLearner(t *testing.T, seed int64) *DQN {
	t.Helper()
	cfg := DefaultDQNConfig(24, 160)
	cfg.Hidden = []int{48, 48}
	cfg.Seed = seed
	d, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func randBatch(rng *rand.Rand, n, dim int) []float64 {
	out := make([]float64, n*dim)
	for i := range out {
		out[i] = rng.Float64()*2 - 1
	}
	return out
}

func TestSnapshotGreedyBatchMatchesGreedyAction(t *testing.T) {
	d := testLearner(t, 3)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.StateDim() != 24 || snap.NumActions() != 160 {
		t.Fatalf("snapshot dims %dx%d", snap.StateDim(), snap.NumActions())
	}
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 3, 17, 64} {
		states := randBatch(rng, n, 24)
		actions := make([]int, n)
		if err := snap.GreedyBatch(actions, states); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			want, err := d.GreedyAction(states[i*24 : (i+1)*24])
			if err != nil {
				t.Fatal(err)
			}
			if actions[i] != want {
				t.Fatalf("n=%d state %d: batch action %d, learner action %d", n, i, actions[i], want)
			}
		}
	}
}

func TestSnapshotQValuesBatchMatchesQValues(t *testing.T) {
	d := testLearner(t, 5)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const n = 7
	states := randBatch(rng, n, 24)
	q := make([]float64, n*160)
	if err := snap.QValuesBatch(q, states); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want, err := d.QValues(states[i*24 : (i+1)*24])
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < 160; a++ {
			if q[i*160+a] != want[a] {
				t.Fatalf("state %d action %d: %v vs %v", i, a, q[i*160+a], want[a])
			}
		}
	}
}

func TestSnapshotIsImmuneToFurtherTraining(t *testing.T) {
	d := testLearner(t, 7)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	states := randBatch(rng, 4, 24)
	before := make([]float64, 4*160)
	if err := snap.QValuesBatch(before, states); err != nil {
		t.Fatal(err)
	}
	// Push the learner through enough observations to trigger train steps.
	for i := 0; i < 600; i++ {
		s := randBatch(rng, 1, 24)
		if _, err := d.Observe(Transition{State: s, Action: i % 160, Reward: 0.1, Next: randBatch(rng, 1, 24)}); err != nil {
			t.Fatal(err)
		}
	}
	after := make([]float64, 4*160)
	if err := snap.QValuesBatch(after, states); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("snapshot value %d changed after training: %v vs %v", i, before[i], after[i])
		}
	}
}

func TestSnapshotConcurrentUse(t *testing.T) {
	d := testLearner(t, 9)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ref := rand.New(rand.NewSource(4))
	states := randBatch(ref, 8, 24)
	want := make([]int, 8)
	if err := snap.GreedyBatch(want, states); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			actions := make([]int, 8)
			for i := 0; i < 50; i++ {
				if err := snap.GreedyBatch(actions, states); err != nil {
					t.Error(err)
					return
				}
				for j := range actions {
					if actions[j] != want[j] {
						t.Errorf("concurrent action %d = %d, want %d", j, actions[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestSnapshotValidatesShapes(t *testing.T) {
	d := testLearner(t, 11)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.GreedyBatch(make([]int, 2), make([]float64, 24)); err == nil {
		t.Fatal("action/state count mismatch: expected error")
	}
	if err := snap.GreedyBatch(make([]int, 1), make([]float64, 23)); err == nil {
		t.Fatal("ragged state: expected error")
	}
	if err := snap.QValuesBatch(make([]float64, 159), make([]float64, 24)); err == nil {
		t.Fatal("short q buffer: expected error")
	}
}

func TestReadSnapshotFormats(t *testing.T) {
	d := testLearner(t, 13)
	rng := rand.New(rand.NewSource(5))
	states := randBatch(rng, 3, 24)
	want := make([]int, 3)
	direct, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.GreedyBatch(want, states); err != nil {
		t.Fatal(err)
	}

	// CTDQ learner state.
	var ctdq bytes.Buffer
	if err := d.SaveState(&ctdq); err != nil {
		t.Fatal(err)
	}
	// CTJM bare network.
	var ctjm bytes.Buffer
	if err := d.Network().Save(&ctjm); err != nil {
		t.Fatal(err)
	}

	for name, buf := range map[string]*bytes.Buffer{"ctdq": &ctdq, "ctjm": &ctjm} {
		snap, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		actions := make([]int, 3)
		if err := snap.GreedyBatch(actions, states); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range actions {
			if actions[i] != want[i] {
				t.Fatalf("%s: action %d = %d, want %d", name, i, actions[i], want[i])
			}
		}
	}

	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage: expected error")
	}
	if _, err := ReadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty: expected error")
	}
	// Truncated CTDQ: header survives but the network does not.
	trunc := ctdq.Bytes()[:40]
	if _, err := ReadSnapshot(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated: expected error")
	}
}
