package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReplayBufferValidation(t *testing.T) {
	if _, err := NewReplayBuffer(0); err == nil {
		t.Fatal("capacity 0: expected error")
	}
	b, err := NewReplayBuffer(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Sample(1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty sample: expected error")
	}
}

func TestReplayBufferWrapAround(t *testing.T) {
	b, err := NewReplayBuffer(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b.Push(Transition{Action: i})
	}
	if b.Len() != 3 || b.Cap() != 3 {
		t.Fatalf("Len=%d Cap=%d", b.Len(), b.Cap())
	}
	// Only actions 2, 3, 4 survive.
	rng := rand.New(rand.NewSource(2))
	samples, err := b.Sample(100, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Action < 2 || s.Action > 4 {
			t.Fatalf("stale transition %d in buffer", s.Action)
		}
	}
}

func TestReplayBufferLenProperty(t *testing.T) {
	f := func(nPush uint8) bool {
		b, err := NewReplayBuffer(16)
		if err != nil {
			return false
		}
		for i := 0; i < int(nPush); i++ {
			b.Push(Transition{})
		}
		want := int(nPush)
		if want > 16 {
			want = 16
		}
		return b.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonSchedule(t *testing.T) {
	s := EpsilonSchedule{Start: 1, End: 0.1, DecaySteps: 100}
	if got := s.Value(0); got != 1 {
		t.Fatalf("Value(0) = %v", got)
	}
	if got := s.Value(-5); got != 1 {
		t.Fatalf("Value(-5) = %v", got)
	}
	if got := s.Value(50); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("Value(50) = %v, want 0.55", got)
	}
	if got := s.Value(100); got != 0.1 {
		t.Fatalf("Value(100) = %v", got)
	}
	if got := s.Value(1000); got != 0.1 {
		t.Fatalf("Value(1000) = %v", got)
	}
	// Zero decay steps: always End.
	s0 := EpsilonSchedule{Start: 1, End: 0.2}
	if got := s0.Value(0); got != 0.2 {
		t.Fatalf("no-decay Value(0) = %v", got)
	}
}

func TestEpsilonMonotoneProperty(t *testing.T) {
	s := EpsilonSchedule{Start: 0.9, End: 0.05, DecaySteps: 1000}
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return s.Value(x) >= s.Value(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewDQNValidation(t *testing.T) {
	if _, err := NewDQN(DQNConfig{StateDim: 0, NumActions: 4}); err == nil {
		t.Fatal("state dim 0: expected error")
	}
	cfg := DefaultDQNConfig(4, 3)
	cfg.Gamma = 1.0
	if _, err := NewDQN(cfg); err == nil {
		t.Fatal("gamma 1: expected error")
	}
	cfg = DefaultDQNConfig(4, 3)
	cfg.BatchSize = 0
	if _, err := NewDQN(cfg); err == nil {
		t.Fatal("batch 0: expected error")
	}
	cfg = DefaultDQNConfig(4, 3)
	cfg.Hidden = nil
	if _, err := NewDQN(cfg); err == nil {
		t.Fatal("no hidden layers: expected error")
	}
}

func TestDQNDimensionChecks(t *testing.T) {
	d, err := NewDQN(DefaultDQNConfig(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.QValues([]float64{1}); err == nil {
		t.Fatal("short state: expected error")
	}
	if _, err := d.Observe(Transition{State: make([]float64, 4), Next: make([]float64, 4), Action: 7}); err == nil {
		t.Fatal("bad action: expected error")
	}
	if _, err := d.Observe(Transition{State: make([]float64, 2), Next: make([]float64, 4)}); err == nil {
		t.Fatal("bad state dim: expected error")
	}
}

func TestDQNExplorationDecays(t *testing.T) {
	cfg := DefaultDQNConfig(2, 4)
	cfg.Epsilon = EpsilonSchedule{Start: 1, End: 0, DecaySteps: 10}
	cfg.WarmupSize = 1 << 30 // never train, just count steps
	d, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Epsilon() != 1 {
		t.Fatalf("initial epsilon = %v", d.Epsilon())
	}
	tr := Transition{State: []float64{0, 0}, Next: []float64{0, 0}}
	for i := 0; i < 10; i++ {
		if _, err := d.Observe(tr); err != nil {
			t.Fatal(err)
		}
	}
	if d.Epsilon() != 0 {
		t.Fatalf("post-decay epsilon = %v", d.Epsilon())
	}
	if d.EnvSteps() != 10 {
		t.Fatalf("env steps = %d", d.EnvSteps())
	}
}

func TestSelectActionGreedyWhenEpsilonZero(t *testing.T) {
	cfg := DefaultDQNConfig(2, 5)
	cfg.Epsilon = EpsilonSchedule{Start: 0, End: 0}
	d, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{0.5, -0.5}
	greedy, err := d.GreedyAction(state)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a, err := d.SelectAction(state)
		if err != nil {
			t.Fatal(err)
		}
		if a != greedy {
			t.Fatalf("epsilon=0 chose %d, greedy is %d", a, greedy)
		}
	}
}

func TestSelectActionExploresOtherActions(t *testing.T) {
	cfg := DefaultDQNConfig(2, 4)
	cfg.Epsilon = EpsilonSchedule{Start: 1, End: 1, DecaySteps: 0}
	d, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{0.1, 0.2}
	greedy, err := d.GreedyAction(state)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for i := 0; i < 400; i++ {
		a, err := d.SelectAction(state)
		if err != nil {
			t.Fatal(err)
		}
		counts[a]++
	}
	// With eps=1 the greedy action is never selected and the other
	// three are roughly uniform.
	if counts[greedy] != 0 {
		t.Fatalf("greedy action selected %d times under pure exploration", counts[greedy])
	}
	for a, c := range counts {
		if c < 60 {
			t.Fatalf("action %d selected only %d/400 times", a, c)
		}
	}
}

// banditEnv is a 2-state contextual bandit: in state [1,0] action 0 pays 1,
// in state [0,1] action 1 pays 1; everything else pays 0.
func banditState(i int) []float64 {
	if i == 0 {
		return []float64{1, 0}
	}
	return []float64{0, 1}
}

func TestDQNLearnsContextualBandit(t *testing.T) {
	cfg := DQNConfig{
		StateDim:        2,
		NumActions:      2,
		Hidden:          []int{16},
		Gamma:           0.0,
		LearningRate:    5e-3,
		BatchSize:       16,
		BufferCapacity:  2000,
		WarmupSize:      32,
		TargetSyncEvery: 50,
		Epsilon:         EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 500},
		Seed:            3,
	}
	d, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 1500; step++ {
		ctx := rng.Intn(2)
		s := banditState(ctx)
		a, err := d.SelectAction(s)
		if err != nil {
			t.Fatal(err)
		}
		r := 0.0
		if a == ctx {
			r = 1
		}
		if _, err := d.Observe(Transition{State: s, Action: a, Reward: r, Next: banditState(rng.Intn(2)), Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	for ctx := 0; ctx < 2; ctx++ {
		a, err := d.GreedyAction(banditState(ctx))
		if err != nil {
			t.Fatal(err)
		}
		if a != ctx {
			t.Fatalf("context %d: greedy action %d, want %d", ctx, a, ctx)
		}
	}
	if d.TrainSteps() == 0 {
		t.Fatal("no training steps recorded")
	}
}

func TestDQNLearnsTwoStepCredit(t *testing.T) {
	// Deterministic 2-step chain: from state A, action 1 leads to B with
	// no reward; from B, action 0 pays +1 and terminates. Action 0 in A
	// terminates with 0. With gamma=0.9 the DQN must prefer action 1 in
	// A (value 0.9) over action 0 (value 0).
	stateA := []float64{1, 0}
	stateB := []float64{0, 1}
	cfg := DQNConfig{
		StateDim:        2,
		NumActions:      2,
		Hidden:          []int{16},
		Gamma:           0.9,
		LearningRate:    5e-3,
		BatchSize:       16,
		BufferCapacity:  4000,
		WarmupSize:      32,
		TargetSyncEvery: 50,
		Epsilon:         EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 800},
		Seed:            5,
	}
	d, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for episode := 0; episode < 900; episode++ {
		a, err := d.SelectAction(stateA)
		if err != nil {
			t.Fatal(err)
		}
		if a == 0 {
			if _, err := d.Observe(Transition{State: stateA, Action: 0, Reward: 0, Next: stateA, Done: true}); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := d.Observe(Transition{State: stateA, Action: 1, Reward: 0, Next: stateB, Done: false}); err != nil {
			t.Fatal(err)
		}
		a2, err := d.SelectAction(stateB)
		if err != nil {
			t.Fatal(err)
		}
		r := 0.0
		if a2 == 0 {
			r = 1
		}
		if _, err := d.Observe(Transition{State: stateB, Action: a2, Reward: r, Next: stateA, Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	aA, err := d.GreedyAction(stateA)
	if err != nil {
		t.Fatal(err)
	}
	aB, err := d.GreedyAction(stateB)
	if err != nil {
		t.Fatal(err)
	}
	if aA != 1 || aB != 0 {
		t.Fatalf("greedy policy A=%d B=%d, want A=1 B=0", aA, aB)
	}
	// The learned Q(A, 1) should approximate gamma*1 = 0.9.
	q, err := d.QValues(stateA)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q[1]-0.9) > 0.25 {
		t.Fatalf("Q(A,1) = %v, want ~0.9", q[1])
	}
}

func TestSetNetworkSwapsModel(t *testing.T) {
	d, err := NewDQN(DefaultDQNConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDQN(DefaultDQNConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetNetwork(d2.Network()); err != nil {
		t.Fatal(err)
	}
	q1, err := d.QValues([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := d2.QValues([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatal("SetNetwork did not adopt the new weights")
		}
	}
}

func BenchmarkDQNTrainStep(b *testing.B) {
	cfg := DefaultDQNConfig(24, 160)
	cfg.WarmupSize = 64
	d, err := NewDQN(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 256; i++ {
		s := make([]float64, 24)
		n := make([]float64, 24)
		for j := range s {
			s[j] = rng.NormFloat64()
			n[j] = rng.NormFloat64()
		}
		d.buffer.Push(Transition{State: s, Action: rng.Intn(160), Reward: rng.NormFloat64(), Next: n})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.TrainStep(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDoubleDQNLearnsBandit(t *testing.T) {
	cfg := DQNConfig{
		StateDim:        2,
		NumActions:      2,
		Hidden:          []int{16},
		Gamma:           0.0,
		LearningRate:    5e-3,
		BatchSize:       16,
		BufferCapacity:  2000,
		WarmupSize:      32,
		TargetSyncEvery: 50,
		Epsilon:         EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 500},
		DoubleDQN:       true,
		Seed:            13,
	}
	d, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	for step := 0; step < 1500; step++ {
		ctx := rng.Intn(2)
		s := banditState(ctx)
		a, err := d.SelectAction(s)
		if err != nil {
			t.Fatal(err)
		}
		r := 0.0
		if a == ctx {
			r = 1
		}
		if _, err := d.Observe(Transition{State: s, Action: a, Reward: r, Next: banditState(rng.Intn(2)), Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	for ctx := 0; ctx < 2; ctx++ {
		a, err := d.GreedyAction(banditState(ctx))
		if err != nil {
			t.Fatal(err)
		}
		if a != ctx {
			t.Fatalf("double DQN context %d: greedy %d, want %d", ctx, a, ctx)
		}
	}
}

func TestDoubleDQNTargetDiffersFromPlain(t *testing.T) {
	// With identical seeds and data, double and plain DQN must produce
	// different parameter trajectories once the online/target nets
	// diverge — a smoke check that the flag changes the update rule.
	build := func(double bool) *DQN {
		cfg := DefaultDQNConfig(3, 4)
		cfg.WarmupSize = 8
		cfg.BatchSize = 8
		cfg.DoubleDQN = double
		cfg.Seed = 21
		d, err := NewDQN(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	plain, double := build(false), build(true)
	rng := rand.New(rand.NewSource(22))
	var trs []Transition
	for i := 0; i < 400; i++ {
		s := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		n := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		trs = append(trs, Transition{State: s, Action: rng.Intn(4), Reward: rng.NormFloat64(), Next: n})
	}
	for _, tr := range trs {
		if _, err := plain.Observe(tr); err != nil {
			t.Fatal(err)
		}
		if _, err := double.Observe(tr); err != nil {
			t.Fatal(err)
		}
	}
	state := []float64{0.5, -0.5, 0.1}
	qp, err := plain.QValues(state)
	if err != nil {
		t.Fatal(err)
	}
	qd, err := double.QValues(state)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range qp {
		if qp[i] != qd[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("double DQN produced identical Q-values to plain DQN")
	}
}
