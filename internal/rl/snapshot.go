package rl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"ctjam/internal/nn"
)

// Snapshot is an immutable, inference-only view of a trained Q network: just
// the weights, none of the learner state (Adam moments, replay buffer,
// exploration RNG). The network is never mutated after construction and all
// per-call buffers come from an internal pool, so one Snapshot may serve any
// number of concurrent QValuesBatch/GreedyBatch callers — this is what the
// batched inference engine and ctjam-serve hand out per request.
type Snapshot struct {
	net        *nn.Network
	stateDim   int
	numActions int
	pool       sync.Pool // *inferBuffers
}

type inferBuffers struct {
	in      nn.Matrix // header only: Data aliases the caller's states per call
	out     nn.Matrix
	scratch nn.InferScratch
}

// NewSnapshot wraps a network as an inference snapshot, deriving the state
// and action dimensions from its first and last Dense layers. The caller
// must not mutate net afterwards.
func NewSnapshot(net *nn.Network) (*Snapshot, error) {
	var first, last *nn.Dense
	for _, l := range net.Layers {
		if d, ok := l.(*nn.Dense); ok {
			if first == nil {
				first = d
			}
			last = d
		}
	}
	if first == nil {
		return nil, fmt.Errorf("rl: snapshot network has no dense layers")
	}
	s := &Snapshot{
		net:        net,
		stateDim:   first.W.Value.Rows,
		numActions: last.W.Value.Cols,
	}
	s.pool.New = func() any { return new(inferBuffers) }
	return s, nil
}

// StateDim returns the observation vector length the snapshot expects.
func (s *Snapshot) StateDim() int { return s.stateDim }

// NumActions returns the number of Q outputs per state.
func (s *Snapshot) NumActions() int { return s.numActions }

// ParamCount returns the number of network parameters.
func (s *Snapshot) ParamCount() int { return s.net.ParamCount() }

// QValuesBatch evaluates n stacked states (states holds n*StateDim values,
// row-major) and writes the n*NumActions Q-values into dst. Safe for
// concurrent use. The states slice is read in place (never copied or
// mutated); the caller must not modify it until the call returns.
func (s *Snapshot) QValuesBatch(dst, states []float64) error {
	n, err := s.batchSize(states)
	if err != nil {
		return err
	}
	if len(dst) != n*s.numActions {
		return fmt.Errorf("rl: q buffer has %d values, want %d", len(dst), n*s.numActions)
	}
	bufs := s.pool.Get().(*inferBuffers)
	defer s.pool.Put(bufs)
	out, err := s.forward(bufs, states, n)
	if err != nil {
		return err
	}
	copy(dst, out.Data)
	return nil
}

// GreedyBatch evaluates n = len(actions) stacked states and writes
// argmax_a Q(s_i, a) into actions[i]. Safe for concurrent use; like
// QValuesBatch it reads states in place, so the caller must not modify the
// slice until the call returns. With equal weights this is bit-identical to
// n single-state GreedyAction calls on the source learner.
func (s *Snapshot) GreedyBatch(actions []int, states []float64) error {
	n, err := s.batchSize(states)
	if err != nil {
		return err
	}
	if len(actions) != n {
		return fmt.Errorf("rl: %d action slots for %d states", len(actions), n)
	}
	bufs := s.pool.Get().(*inferBuffers)
	defer s.pool.Put(bufs)
	out, err := s.forward(bufs, states, n)
	if err != nil {
		return err
	}
	for i := range actions {
		actions[i] = argmax(out.Data[i*s.numActions : (i+1)*s.numActions])
	}
	return nil
}

func (s *Snapshot) batchSize(states []float64) (int, error) {
	if len(states) == 0 || len(states)%s.stateDim != 0 {
		return 0, fmt.Errorf("rl: batch of %d values is not a multiple of state dim %d", len(states), s.stateDim)
	}
	return len(states) / s.stateDim, nil
}

func (s *Snapshot) forward(bufs *inferBuffers, states []float64, n int) (*nn.Matrix, error) {
	// Zero-copy admission: ForwardBatch only ever reads its input (the dense
	// and ReLU kernels write to caller scratch), so the pooled input matrix
	// aliases the caller's states instead of staging a copy. The alias is
	// dropped before the buffers go back to the pool so a recycled buffer
	// never pins a caller's slice.
	bufs.in.Rows, bufs.in.Cols, bufs.in.Data = n, s.stateDim, states[:n*s.stateDim]
	err := s.net.ForwardBatch(&bufs.out, &bufs.scratch, &bufs.in)
	bufs.in.Data = nil
	if err != nil {
		return nil, err
	}
	return &bufs.out, nil
}

// ReadSnapshot loads an inference snapshot from either of the rl-owned
// on-disk formats, sniffed by magic: a bare CTJM model stream (nn.Save) or a
// CTDQ learner checkpoint (DQN.SaveState), from which only the online
// network is read — target weights, Adam moments and replay are skipped.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	switch binary.LittleEndian.Uint32(head) {
	case stateMagic:
		net, err := readCheckpointNetwork(br)
		if err != nil {
			return nil, err
		}
		return NewSnapshot(net)
	default:
		// Fall through to nn.Load, which rejects non-CTJM magics itself.
		net, err := nn.Load(br)
		if err != nil {
			return nil, err
		}
		return NewSnapshot(net)
	}
}

// readCheckpointNetwork consumes a CTDQ header and returns its online
// network, leaving the rest of the stream (target net, Adam, replay) unread.
func readCheckpointNetwork(r io.Reader) (*nn.Network, error) {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic, version, stateDim, numActions uint32
	var envSteps, trainSteps, rngSeed, rngState uint64
	for _, v := range []any{&magic, &version, &stateDim, &numActions, &envSteps, &trainSteps, &rngSeed, &rngState} {
		if err := read(v); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadCheckpoint, err)
		}
	}
	if magic != stateMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadCheckpoint, magic)
	}
	if version != stateVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, version)
	}
	net, err := nn.Load(r)
	if err != nil {
		return nil, fmt.Errorf("%w: online network: %v", ErrBadCheckpoint, err)
	}
	var firstDense *nn.Dense
	var lastDense *nn.Dense
	for _, l := range net.Layers {
		if d, ok := l.(*nn.Dense); ok {
			if firstDense == nil {
				firstDense = d
			}
			lastDense = d
		}
	}
	if firstDense == nil || firstDense.W.Value.Rows != int(stateDim) || lastDense.W.Value.Cols != int(numActions) {
		return nil, fmt.Errorf("%w: network shape does not match header dims %dx%d",
			ErrBadCheckpoint, stateDim, numActions)
	}
	return net, nil
}
