package rl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"ctjam/internal/nn"
)

// Engine identifies the numeric engine a Snapshot evaluates on.
type Engine int

const (
	// EngineExact is the default float64 path, bit-identical to the
	// training-time forward pass — the reference every golden trace pins.
	EngineExact Engine = iota
	// EngineFast32 is the opt-in float32 fast path (FMA microkernels on
	// amd64, pure-Go float32 otherwise): roughly half the memory traffic and
	// double the SIMD lanes, equivalent to the exact engine only within the
	// tolerance and policy-action agreement budgets its test harness
	// enforces.
	EngineFast32
)

func (e Engine) String() string {
	switch e {
	case EngineExact:
		return "exact"
	case EngineFast32:
		return "fast32"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// Snapshot is an immutable, inference-only view of a trained Q network: just
// the weights, none of the learner state (Adam moments, replay buffer,
// exploration RNG). The network is never mutated after construction and all
// per-call buffers come from an internal pool, so one Snapshot may serve any
// number of concurrent QValuesBatch/GreedyBatch callers — this is what the
// batched inference engine and ctjam-serve hand out per request. Fast32
// derives a view of the same weights on the float32 fast engine.
type Snapshot struct {
	net        *nn.Network
	q32        *nn.Net32 // set iff engine == EngineFast32
	engine     Engine
	stateDim   int
	numActions int
	pool       sync.Pool // *inferBuffers
}

type inferBuffers struct {
	in      nn.Matrix // header only: Data aliases the caller's states per call
	out     nn.Matrix
	scratch nn.InferScratch

	// Fast-engine buffers: states quantize into st32 (float32 staging), and
	// in32 is again just a header over it.
	st32      []float32
	in32      nn.Matrix32
	out32     nn.Matrix32
	scratch32 nn.InferScratch32
}

// NewSnapshot wraps a network as an inference snapshot, deriving the state
// and action dimensions from its first and last Dense layers. The caller
// must not mutate net afterwards.
func NewSnapshot(net *nn.Network) (*Snapshot, error) {
	var first, last *nn.Dense
	for _, l := range net.Layers {
		if d, ok := l.(*nn.Dense); ok {
			if first == nil {
				first = d
			}
			last = d
		}
	}
	if first == nil {
		return nil, fmt.Errorf("rl: snapshot network has no dense layers")
	}
	s := &Snapshot{
		net:        net,
		stateDim:   first.W.Value.Rows,
		numActions: last.W.Value.Cols,
	}
	s.pool.New = func() any { return new(inferBuffers) }
	return s, nil
}

// Fast32 returns a view of the snapshot that evaluates on the float32 fast
// engine. The view shares the source weights (quantized once, here) but has
// its own buffer pool; the original snapshot keeps serving the exact engine
// untouched, and either view stays safe for concurrent use. Calling Fast32
// on a fast-engine snapshot returns it unchanged.
func (s *Snapshot) Fast32() (*Snapshot, error) {
	if s.engine == EngineFast32 {
		return s, nil
	}
	q32, err := s.net.Quantize32()
	if err != nil {
		return nil, fmt.Errorf("rl: fast32 snapshot: %w", err)
	}
	ns := &Snapshot{
		net:        s.net,
		q32:        q32,
		engine:     EngineFast32,
		stateDim:   s.stateDim,
		numActions: s.numActions,
	}
	ns.pool.New = func() any { return new(inferBuffers) }
	return ns, nil
}

// Engine reports which numeric engine this snapshot evaluates on.
func (s *Snapshot) Engine() Engine { return s.engine }

// StateDim returns the observation vector length the snapshot expects.
func (s *Snapshot) StateDim() int { return s.stateDim }

// NumActions returns the number of Q outputs per state.
func (s *Snapshot) NumActions() int { return s.numActions }

// ParamCount returns the number of network parameters.
func (s *Snapshot) ParamCount() int { return s.net.ParamCount() }

// QValuesBatch evaluates n stacked states (states holds n*StateDim values,
// row-major) and writes the n*NumActions Q-values into dst. Safe for
// concurrent use. The states slice is read in place (never copied or
// mutated); the caller must not modify it until the call returns.
func (s *Snapshot) QValuesBatch(dst, states []float64) error {
	n, err := s.batchSize(states)
	if err != nil {
		return err
	}
	if len(dst) != n*s.numActions {
		return fmt.Errorf("rl: q buffer has %d values, want %d", len(dst), n*s.numActions)
	}
	bufs := s.pool.Get().(*inferBuffers)
	defer s.pool.Put(bufs)
	if s.engine == EngineFast32 {
		out, err := s.forward32(bufs, states, n)
		if err != nil {
			return err
		}
		for i, v := range out.Data {
			dst[i] = float64(v)
		}
		return nil
	}
	out, err := s.forward(bufs, states, n)
	if err != nil {
		return err
	}
	copy(dst, out.Data)
	return nil
}

// GreedyBatch evaluates n = len(actions) stacked states and writes
// argmax_a Q(s_i, a) into actions[i]. Safe for concurrent use; like
// QValuesBatch it reads states in place, so the caller must not modify the
// slice until the call returns. With equal weights this is bit-identical to
// n single-state GreedyAction calls on the source learner.
func (s *Snapshot) GreedyBatch(actions []int, states []float64) error {
	n, err := s.batchSize(states)
	if err != nil {
		return err
	}
	if len(actions) != n {
		return fmt.Errorf("rl: %d action slots for %d states", len(actions), n)
	}
	bufs := s.pool.Get().(*inferBuffers)
	defer s.pool.Put(bufs)
	if s.engine == EngineFast32 {
		out, err := s.forward32(bufs, states, n)
		if err != nil {
			return err
		}
		for i := range actions {
			actions[i] = argmax32(out.Data[i*s.numActions : (i+1)*s.numActions])
		}
		return nil
	}
	out, err := s.forward(bufs, states, n)
	if err != nil {
		return err
	}
	for i := range actions {
		actions[i] = argmax(out.Data[i*s.numActions : (i+1)*s.numActions])
	}
	return nil
}

func (s *Snapshot) batchSize(states []float64) (int, error) {
	if len(states) == 0 || len(states)%s.stateDim != 0 {
		return 0, fmt.Errorf("rl: batch of %d values is not a multiple of state dim %d", len(states), s.stateDim)
	}
	return len(states) / s.stateDim, nil
}

func (s *Snapshot) forward(bufs *inferBuffers, states []float64, n int) (*nn.Matrix, error) {
	// Zero-copy admission: ForwardBatch only ever reads its input (the dense
	// and ReLU kernels write to caller scratch), so the pooled input matrix
	// aliases the caller's states instead of staging a copy. The alias is
	// dropped before the buffers go back to the pool so a recycled buffer
	// never pins a caller's slice.
	bufs.in.Rows, bufs.in.Cols, bufs.in.Data = n, s.stateDim, states[:n*s.stateDim]
	err := s.net.ForwardBatch(&bufs.out, &bufs.scratch, &bufs.in)
	bufs.in.Data = nil
	if err != nil {
		return nil, err
	}
	return &bufs.out, nil
}

// forward32 is the fast-engine forward: states quantize into a pooled
// float32 staging buffer (the one conversion the engine boundary costs),
// then run the quantized network. Unlike the exact path there is no aliasing
// of caller memory, so nothing needs dropping before pool reuse.
func (s *Snapshot) forward32(bufs *inferBuffers, states []float64, n int) (*nn.Matrix32, error) {
	need := n * s.stateDim
	if cap(bufs.st32) < need {
		bufs.st32 = make([]float32, need)
	}
	st := bufs.st32[:need]
	for i, v := range states[:need] {
		st[i] = float32(v)
	}
	bufs.st32 = st
	bufs.in32.Rows, bufs.in32.Cols, bufs.in32.Data = n, s.stateDim, st
	if err := s.q32.ForwardBatch32(&bufs.out32, &bufs.scratch32, &bufs.in32); err != nil {
		return nil, err
	}
	return &bufs.out32, nil
}

// argmax32 is argmax for the fast engine's float32 Q rows, with the same
// first-maximum tie-breaking as the exact path's argmax.
func argmax32(x []float32) int {
	best := 0
	bestV := float32(math.Inf(-1))
	for i, v := range x {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// ReadSnapshot loads an inference snapshot from either of the rl-owned
// on-disk formats, sniffed by magic: a bare CTJM model stream (nn.Save) or a
// CTDQ learner checkpoint (DQN.SaveState), from which only the online
// network is read — target weights, Adam moments and replay are skipped.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	switch binary.LittleEndian.Uint32(head) {
	case stateMagic:
		net, err := readCheckpointNetwork(br)
		if err != nil {
			return nil, err
		}
		return NewSnapshot(net)
	default:
		// Fall through to nn.Load, which rejects non-CTJM magics itself.
		net, err := nn.Load(br)
		if err != nil {
			return nil, err
		}
		return NewSnapshot(net)
	}
}

// readCheckpointNetwork consumes a CTDQ header and returns its online
// network, leaving the rest of the stream (target net, Adam, replay) unread.
func readCheckpointNetwork(r io.Reader) (*nn.Network, error) {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic, version, stateDim, numActions uint32
	var envSteps, trainSteps, rngSeed, rngState uint64
	for _, v := range []any{&magic, &version, &stateDim, &numActions, &envSteps, &trainSteps, &rngSeed, &rngState} {
		if err := read(v); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadCheckpoint, err)
		}
	}
	if magic != stateMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadCheckpoint, magic)
	}
	if version != stateVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, version)
	}
	net, err := nn.Load(r)
	if err != nil {
		return nil, fmt.Errorf("%w: online network: %v", ErrBadCheckpoint, err)
	}
	var firstDense *nn.Dense
	var lastDense *nn.Dense
	for _, l := range net.Layers {
		if d, ok := l.(*nn.Dense); ok {
			if firstDense == nil {
				firstDense = d
			}
			lastDense = d
		}
	}
	if firstDense == nil || firstDense.W.Value.Rows != int(stateDim) || lastDense.W.Value.Cols != int(numActions) {
		return nil, fmt.Errorf("%w: network shape does not match header dims %dx%d",
			ErrBadCheckpoint, stateDim, numActions)
	}
	return net, nil
}
