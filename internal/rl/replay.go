// Package rl provides the reinforcement-learning machinery for the paper's
// DQN anti-jamming scheme: a uniform experience-replay buffer, an
// epsilon-greedy exploration schedule, and a Deep Q-Network learner with a
// periodically synchronized target network.
package rl

import (
	"fmt"
	"math/rand"
)

// Transition is one experience tuple (s, a, r, s', done).
type Transition struct {
	State  []float64
	Action int
	Reward float64
	Next   []float64
	Done   bool
}

// ReplayBuffer is a fixed-capacity uniform-sampling experience store. The
// zero value is not usable; construct with NewReplayBuffer.
type ReplayBuffer struct {
	buf  []Transition
	next int
	full bool
}

// NewReplayBuffer allocates a buffer holding up to capacity transitions.
func NewReplayBuffer(capacity int) (*ReplayBuffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("rl: replay capacity %d must be positive", capacity)
	}
	return &ReplayBuffer{buf: make([]Transition, capacity)}, nil
}

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int {
	if b.full {
		return len(b.buf)
	}
	return b.next
}

// Cap returns the buffer capacity.
func (b *ReplayBuffer) Cap() int { return len(b.buf) }

// Push stores a transition, overwriting the oldest when full.
func (b *ReplayBuffer) Push(t Transition) {
	b.buf[b.next] = t
	b.next++
	if b.next == len(b.buf) {
		b.next = 0
		b.full = true
	}
}

// Sample draws n transitions uniformly at random with replacement. It
// returns an error when the buffer is empty.
func (b *ReplayBuffer) Sample(n int, rng *rand.Rand) ([]Transition, error) {
	size := b.Len()
	if size == 0 {
		return nil, fmt.Errorf("rl: sampling from empty replay buffer")
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = b.buf[rng.Intn(size)]
	}
	return out, nil
}

// EpsilonSchedule is a linear exploration-rate decay from Start to End over
// DecaySteps steps.
type EpsilonSchedule struct {
	Start      float64
	End        float64
	DecaySteps int
}

// Value returns epsilon at the given step.
func (s EpsilonSchedule) Value(step int) float64 {
	if s.DecaySteps <= 0 || step >= s.DecaySteps {
		return s.End
	}
	if step < 0 {
		step = 0
	}
	frac := float64(step) / float64(s.DecaySteps)
	return s.Start + (s.End-s.Start)*frac
}
