package rl

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func smallDQN(t *testing.T, seed int64) *DQN {
	t.Helper()
	cfg := DefaultDQNConfig(4, 3)
	cfg.Hidden = []int{8}
	cfg.BufferCapacity = 64
	cfg.WarmupSize = 8
	cfg.BatchSize = 4
	cfg.TargetSyncEvery = 5
	cfg.Seed = seed
	d, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// drive feeds n synthetic transitions (select + observe) and returns the
// resulting action sequence, which is sensitive to every piece of learner
// state: weights, optimizer, buffer, counters and RNG.
func drive(t *testing.T, d *DQN, n int, tag int64) []int {
	t.Helper()
	gen := rand.New(rand.NewSource(tag))
	state := []float64{0, 0, 0, 0}
	actions := make([]int, 0, n)
	for i := 0; i < n; i++ {
		a, err := d.SelectAction(state)
		if err != nil {
			t.Fatal(err)
		}
		actions = append(actions, a)
		next := []float64{gen.Float64(), gen.Float64(), gen.Float64(), gen.Float64()}
		if _, err := d.Observe(Transition{
			State:  append([]float64(nil), state...),
			Action: a,
			Reward: gen.Float64() - 0.5,
			Next:   next,
		}); err != nil {
			t.Fatal(err)
		}
		state = next
	}
	return actions
}

func TestSaveLoadStateResumesBitIdentically(t *testing.T) {
	ref := smallDQN(t, 5)
	drive(t, ref, 40, 7)
	var snap bytes.Buffer
	if err := ref.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	want := drive(t, ref, 40, 8)

	// Fresh learner, different seed: everything must come from the snapshot.
	resumed := smallDQN(t, 6)
	drive(t, resumed, 13, 9)
	if err := resumed.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	got := drive(t, resumed, 40, 8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("action %d after restore: %d != %d", i, got[i], want[i])
		}
	}

	// And the snapshots of both learners now agree byte for byte.
	var a, b bytes.Buffer
	if err := ref.SaveState(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.SaveState(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("post-restore snapshots differ")
	}
}

func TestLoadStateRejectsCorruptStreams(t *testing.T) {
	ref := smallDQN(t, 5)
	drive(t, ref, 30, 7)
	var snap bytes.Buffer
	if err := ref.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	fresh := smallDQN(t, 5)
	if err := fresh.LoadState(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	if err := fresh.LoadState(bytes.NewReader(good[:20])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if err := fresh.LoadState(bytes.NewReader(bad)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("bad magic: got %v", err)
	}

	// Dimension mismatch: a learner with a different architecture.
	cfg := DefaultDQNConfig(5, 3)
	cfg.Hidden = []int{8}
	other, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadState(bytes.NewReader(good)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("dim mismatch: got %v", err)
	}

	// A failed load must leave the learner usable and unchanged.
	var before, after bytes.Buffer
	if err := ref.SaveState(&before); err != nil {
		t.Fatal(err)
	}
	if err := ref.LoadState(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Fatal("truncated tail accepted")
	}
	if err := ref.SaveState(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("failed load mutated the learner")
	}
}
