package rl

import (
	"bytes"
	"testing"
)

// FuzzCheckpointLoad feeds arbitrary bytes to the learner-state decoder. It
// must never panic, and after a rejected load the learner must remain fully
// usable; after an accepted load its state must round-trip.
func FuzzCheckpointLoad(f *testing.F) {
	mk := func() *DQN {
		cfg := DefaultDQNConfig(4, 3)
		cfg.Hidden = []int{8}
		cfg.BufferCapacity = 32
		cfg.WarmupSize = 4
		cfg.BatchSize = 2
		cfg.Seed = 11
		d, err := NewDQN(cfg)
		if err != nil {
			f.Fatal(err)
		}
		return d
	}

	seedDQN := mk()
	for i := 0; i < 12; i++ {
		if _, err := seedDQN.Observe(Transition{
			State:  []float64{float64(i), 0, 1, 0},
			Action: i % 3,
			Reward: float64(i % 5),
			Next:   []float64{0, float64(i), 0, 1},
		}); err != nil {
			f.Fatal(err)
		}
	}
	var valid bytes.Buffer
	if err := seedDQN.SaveState(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CTDQ"))
	f.Add(valid.Bytes()[:50])
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[40] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		d := mk()
		if err := d.LoadState(bytes.NewReader(data)); err == nil {
			// Accepted: the state must round-trip byte for byte.
			var out bytes.Buffer
			if err := d.SaveState(&out); err != nil {
				t.Fatalf("re-save after accepted load: %v", err)
			}
			var check bytes.Buffer
			d2 := mk()
			if err := d2.LoadState(bytes.NewReader(out.Bytes())); err != nil {
				t.Fatalf("reload of saved state: %v", err)
			}
			if err := d2.SaveState(&check); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), check.Bytes()) {
				t.Fatal("accepted state does not round-trip")
			}
		}
		// Accepted or not, the learner must still work.
		a, err := d.SelectAction([]float64{0.5, -0.5, 0.25, 0})
		if err != nil {
			t.Fatalf("SelectAction after load: %v", err)
		}
		if a < 0 || a >= 3 {
			t.Fatalf("action %d out of range", a)
		}
	})
}
