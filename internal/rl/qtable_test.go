package rl

import (
	"math"
	"testing"
)

func TestNewQTableValidation(t *testing.T) {
	eps := EpsilonSchedule{Start: 1, End: 0.1, DecaySteps: 100}
	tests := []struct {
		name            string
		states, actions int
		alpha, gamma    float64
	}{
		{"zero states", 0, 2, 0.1, 0.9},
		{"zero actions", 2, 0, 0.1, 0.9},
		{"alpha 0", 2, 2, 0, 0.9},
		{"alpha > 1", 2, 2, 1.5, 0.9},
		{"gamma 1", 2, 2, 0.1, 1},
		{"gamma < 0", 2, 2, 0.1, -0.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewQTable(tt.states, tt.actions, tt.alpha, tt.gamma, eps, 1); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestQTableBoundsChecks(t *testing.T) {
	q, err := NewQTable(3, 2, 0.1, 0.9, EpsilonSchedule{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Q(3, 0); err == nil {
		t.Fatal("bad state: expected error")
	}
	if _, err := q.Q(0, 2); err == nil {
		t.Fatal("bad action: expected error")
	}
	if _, err := q.SelectAction(-1); err == nil {
		t.Fatal("bad state select: expected error")
	}
	if err := q.Update(0, 0, 1, 5, false); err == nil {
		t.Fatal("bad next state: expected error")
	}
}

func TestQTableSingleUpdate(t *testing.T) {
	q, err := NewQTable(2, 2, 0.5, 0.9, EpsilonSchedule{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Terminal update: Q(0,1) += 0.5*(10 - 0) = 5.
	if err := q.Update(0, 1, 10, 1, true); err != nil {
		t.Fatal(err)
	}
	got, err := q.Q(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-12 {
		t.Fatalf("Q(0,1) = %v, want 5", got)
	}
	if q.Steps() != 1 {
		t.Fatalf("steps = %d", q.Steps())
	}
}

func TestQTableBootstrapUsesNextMax(t *testing.T) {
	q, err := NewQTable(2, 2, 1.0, 0.5, EpsilonSchedule{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Seed Q(1, 0) = 4 via a terminal update with alpha 1.
	if err := q.Update(1, 0, 4, 0, true); err != nil {
		t.Fatal(err)
	}
	// Non-terminal update from state 0: target = 2 + 0.5*4 = 4.
	if err := q.Update(0, 0, 2, 1, false); err != nil {
		t.Fatal(err)
	}
	got, err := q.Q(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("Q(0,0) = %v, want 4", got)
	}
}

func TestQTableLearnsDeterministicChain(t *testing.T) {
	// Chain: state 0 --action 1--> state 1 --action 0--> terminal +1.
	// Action 0 in state 0 terminates with 0 reward.
	eps := EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 2000}
	q, err := NewQTable(2, 2, 0.2, 0.9, eps, 2)
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < 3000; ep++ {
		a0, err := q.SelectAction(0)
		if err != nil {
			t.Fatal(err)
		}
		if a0 == 0 {
			if err := q.Update(0, 0, 0, 0, true); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := q.Update(0, 1, 0, 1, false); err != nil {
			t.Fatal(err)
		}
		a1, err := q.SelectAction(1)
		if err != nil {
			t.Fatal(err)
		}
		r := 0.0
		if a1 == 0 {
			r = 1
		}
		if err := q.Update(1, a1, r, 0, true); err != nil {
			t.Fatal(err)
		}
	}
	g0, err := q.GreedyAction(0)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := q.GreedyAction(1)
	if err != nil {
		t.Fatal(err)
	}
	if g0 != 1 || g1 != 0 {
		t.Fatalf("greedy policy (%d,%d), want (1,0)", g0, g1)
	}
	// Q(0,1) should approach gamma*1 = 0.9.
	v, err := q.Q(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.9) > 0.1 {
		t.Fatalf("Q(0,1) = %v, want ~0.9", v)
	}
}
