package rl

import (
	"fmt"
	"math"
	"math/rand"
)

// QTable is a tabular Q-learning learner over discrete states. The paper
// motivates its DQN by noting that plain Q-learning's convergence suffers
// as the state/action space grows; this implementation serves as that
// comparison baseline (it works on the small belief-state space but cannot
// consume the raw 3*I observation history the DQN uses).
type QTable struct {
	states  int
	actions int
	q       [][]float64
	alpha   float64
	gamma   float64
	epsilon EpsilonSchedule
	rng     *rand.Rand
	steps   int
}

// NewQTable builds a zero-initialized tabular learner.
func NewQTable(states, actions int, alpha, gamma float64, eps EpsilonSchedule, seed int64) (*QTable, error) {
	if states <= 0 || actions <= 0 {
		return nil, fmt.Errorf("rl: qtable dimensions %dx%d invalid", states, actions)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("rl: learning rate %v outside (0,1]", alpha)
	}
	if gamma < 0 || gamma >= 1 {
		return nil, fmt.Errorf("rl: gamma %v outside [0,1)", gamma)
	}
	q := make([][]float64, states)
	for s := range q {
		q[s] = make([]float64, actions)
	}
	return &QTable{
		states:  states,
		actions: actions,
		q:       q,
		alpha:   alpha,
		gamma:   gamma,
		epsilon: eps,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// Q returns the current estimate Q(s, a).
func (t *QTable) Q(state, action int) (float64, error) {
	if err := t.check(state, action); err != nil {
		return 0, err
	}
	return t.q[state][action], nil
}

// Steps returns the number of updates applied.
func (t *QTable) Steps() int { return t.steps }

// Snapshot returns a deep copy of the Q matrix (states x actions), the
// tabular analogue of DQN.Snapshot: an immutable value table for the
// inference engine, decoupled from further Update calls.
func (t *QTable) Snapshot() [][]float64 {
	out := make([][]float64, len(t.q))
	for s, row := range t.q {
		out[s] = append([]float64(nil), row...)
	}
	return out
}

func (t *QTable) check(state, action int) error {
	if state < 0 || state >= t.states {
		return fmt.Errorf("rl: state %d out of range [0,%d)", state, t.states)
	}
	if action < 0 || action >= t.actions {
		return fmt.Errorf("rl: action %d out of range [0,%d)", action, t.actions)
	}
	return nil
}

// SelectAction picks epsilon-greedily for the given state.
func (t *QTable) SelectAction(state int) (int, error) {
	if err := t.check(state, 0); err != nil {
		return 0, err
	}
	if t.rng.Float64() < t.epsilon.Value(t.steps) {
		return t.rng.Intn(t.actions), nil
	}
	return t.greedy(state), nil
}

// GreedyAction returns argmax_a Q(state, a).
func (t *QTable) GreedyAction(state int) (int, error) {
	if err := t.check(state, 0); err != nil {
		return 0, err
	}
	return t.greedy(state), nil
}

func (t *QTable) greedy(state int) int {
	best, bestV := 0, math.Inf(-1)
	for a, v := range t.q[state] {
		if v > bestV {
			best, bestV = a, v
		}
	}
	return best
}

// Update applies one Q-learning backup:
// Q(s,a) += alpha * (r + gamma*max_a' Q(s',a') - Q(s,a)).
func (t *QTable) Update(state, action int, reward float64, next int, done bool) error {
	if err := t.check(state, action); err != nil {
		return err
	}
	if err := t.check(next, 0); err != nil {
		return err
	}
	target := reward
	if !done {
		target += t.gamma * t.q[next][t.greedy(next)]
	}
	t.q[state][action] += t.alpha * (target - t.q[state][action])
	t.steps++
	return nil
}
