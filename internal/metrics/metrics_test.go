package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRatesZeroSafe(t *testing.T) {
	var c Counters
	if c.ST() != 0 || c.AH() != 0 || c.SH() != 0 || c.AP() != 0 || c.SP() != 0 || c.JamRate() != 0 {
		t.Fatal("zero counters must give zero rates")
	}
}

func TestRatesKnown(t *testing.T) {
	c := Counters{
		Slots:       100,
		Successes:   78,
		JammedSlots: 30,
		JamLosses:   22,
		Hops:        40,
		UsefulHops:  28,
		PCSlots:     50,
		UsefulPCs:   10,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"ST", c.ST(), 0.78},
		{"AH", c.AH(), 0.40},
		{"SH", c.SH(), 0.70},
		{"AP", c.AP(), 0.50},
		{"SP", c.SP(), 0.20},
		{"JamRate", c.JamRate(), 0.30},
	}
	for _, tt := range tests {
		if math.Abs(tt.got-tt.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", tt.name, tt.got, tt.want)
		}
	}
}

func TestAdd(t *testing.T) {
	a := Counters{Slots: 10, Successes: 8, Hops: 2, UsefulHops: 1, JamLosses: 2}
	b := Counters{Slots: 10, Successes: 6, Hops: 4, UsefulHops: 2, JamLosses: 4}
	a.Add(b)
	if a.Slots != 20 || a.Successes != 14 || a.Hops != 6 || a.UsefulHops != 3 {
		t.Fatalf("Add result %+v", a)
	}
}

func TestValidateCatchesInconsistency(t *testing.T) {
	bad := []Counters{
		{Slots: 10, Successes: 11},
		{Slots: 10, Successes: 10, Hops: -1},
		{Slots: 10, Successes: 10, JamLosses: 1},
		{Slots: 10, Successes: 8, JamLosses: 2, UsefulHops: 1},
		{Slots: 10, Successes: 8, JamLosses: 2, JammedSlots: 1, UsefulPCs: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
	}
}

func TestStringContainsRates(t *testing.T) {
	c := Counters{Slots: 4, Successes: 3, JamLosses: 1}
	s := c.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("String() = %q", s)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	// Sample stddev of this classic set is ~2.138.
	if got := StdDev(xs); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("StdDev = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Fatal("StdDev of single value should be 0")
	}
}

func TestMeanCI95(t *testing.T) {
	mean, hw := MeanCI95([]float64{1, 1, 1, 1})
	if mean != 1 || hw != 0 {
		t.Fatalf("constant data: mean=%v hw=%v", mean, hw)
	}
	_, hw = MeanCI95([]float64{0, 10, 0, 10, 0, 10})
	if hw <= 0 {
		t.Fatal("variable data must have positive CI width")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-0.5, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}

func TestPercentileMatchesSortProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		if len(xs) == 0 {
			return true
		}
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		return Percentile(xs, 0) == sorted[0] && Percentile(xs, 1) == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRatesBoundedProperty(t *testing.T) {
	f := func(slots, succ, hops, uh uint8) bool {
		s := int(slots)
		c := Counters{
			Slots:      s,
			Successes:  min(int(succ), s),
			Hops:       min(int(hops), s),
			UsefulHops: min(int(uh), min(int(hops), s)),
		}
		for _, r := range []float64{c.ST(), c.AH(), c.SH()} {
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
