package metrics

import (
	"math/rand"
	"testing"
)

// randomCounters builds a Counters by simulating slot events, so every
// sample satisfies the structural relationships by construction.
func randomCounters(r *rand.Rand) Counters {
	var c Counters
	slots := r.Intn(500)
	for i := 0; i < slots; i++ {
		c.Slots++
		jammed := r.Float64() < 0.4
		lost := jammed && r.Float64() < 0.6
		if jammed {
			c.JammedSlots++
		}
		if lost {
			c.JamLosses++
		} else {
			c.Successes++
		}
		if r.Float64() < 0.3 {
			c.Hops++
			if !lost && r.Float64() < 0.5 {
				c.UsefulHops++
			}
		}
		if r.Float64() < 0.2 {
			c.PCSlots++
			if !lost && r.Float64() < 0.5 {
				c.UsefulPCs++
			}
		}
	}
	return c
}

// Event-derived counters must always satisfy the documented invariants, and
// Validate must agree.
func TestCountersInvariantsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		c := randomCounters(r)
		if c.UsefulHops > c.Hops || c.Hops > c.Slots {
			t.Fatalf("trial %d: hop ordering violated: %+v", trial, c)
		}
		if c.Successes+c.JamLosses > c.Slots {
			t.Fatalf("trial %d: successes+losses exceed slots: %+v", trial, c)
		}
		if c.UsefulPCs > c.PCSlots || c.PCSlots > c.Slots {
			t.Fatalf("trial %d: PC ordering violated: %+v", trial, c)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: event-derived counters rejected: %v (%+v)", trial, err, c)
		}
	}
}

// Add must be commutative and associative with the zero value as identity,
// since run totals are merged in worker-completion order.
func TestCountersAddAlgebraProperty(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		a, b, c := randomCounters(r), randomCounters(r), randomCounters(r)

		ab := a
		ab.Add(b)
		ba := b
		ba.Add(a)
		if ab != ba {
			t.Fatalf("trial %d: Add not commutative: %+v != %+v", trial, ab, ba)
		}

		abc1 := ab
		abc1.Add(c)
		bc := b
		bc.Add(c)
		abc2 := a
		abc2.Add(bc)
		if abc1 != abc2 {
			t.Fatalf("trial %d: Add not associative", trial)
		}

		id := a
		id.Add(Counters{})
		if id != a {
			t.Fatalf("trial %d: zero value is not an Add identity", trial)
		}

		// Merging preserves the invariants.
		if err := abc1.Validate(); err != nil {
			t.Fatalf("trial %d: merged counters invalid: %v", trial, err)
		}
	}
}
