// Package metrics implements the paper's evaluation metrics (Table I): the
// success rate of transmission ST, the adoption and success rates of
// frequency hopping (AH, SH) and power control (AP, SP), plus the summary
// statistics used across the experiment harness.
package metrics

import (
	"fmt"
	"math"
)

// Counters accumulates raw slot-level events during a run. The success
// attributions follow Table I: a hop "succeeds" when it actually dodged an
// active jammer (not when it was merely preventative), and a power-control
// slot "succeeds" when the extra power won a duel the minimum power would
// have lost.
type Counters struct {
	// Slots is the total number of time slots.
	Slots int
	// Successes counts slots whose transmission got through (states n
	// and TJ of the paper's MDP).
	Successes int
	// JammedSlots counts slots spent co-channel with the jammer.
	JammedSlots int
	// JamLosses counts slots fully lost to jamming (state J).
	JamLosses int
	// Hops counts slots in which the victim changed channels.
	Hops int
	// UsefulHops counts hops away from a channel the jammer was actively
	// jamming that ended in a successful slot.
	UsefulHops int
	// PCSlots counts slots transmitted above the minimum power level.
	PCSlots int
	// UsefulPCs counts PC slots where the elevated power survived a jam
	// the minimum power would have lost.
	UsefulPCs int
}

// Add merges other into c.
func (c *Counters) Add(other Counters) {
	c.Slots += other.Slots
	c.Successes += other.Successes
	c.JammedSlots += other.JammedSlots
	c.JamLosses += other.JamLosses
	c.Hops += other.Hops
	c.UsefulHops += other.UsefulHops
	c.PCSlots += other.PCSlots
	c.UsefulPCs += other.UsefulPCs
}

// Merge sums a set of per-shard counter sets into one. The sharded field
// engine accumulates one Counters per cluster and merges after the parallel
// section; Add is associative and commutative over non-negative counts, so
// the merged result is independent of shard order and worker count.
func Merge(shards ...Counters) Counters {
	var out Counters
	for _, c := range shards {
		out.Add(c)
	}
	return out
}

// ratio returns num/den, or 0 when den is 0.
func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// ST is the success rate of transmission: the proportion of slots that
// transmitted data successfully.
func (c Counters) ST() float64 { return ratio(c.Successes, c.Slots) }

// AH is the adoption rate of frequency hopping.
func (c Counters) AH() float64 { return ratio(c.Hops, c.Slots) }

// SH is the success rate of frequency hopping: useful hops over all hops.
func (c Counters) SH() float64 { return ratio(c.UsefulHops, c.Hops) }

// AP is the adoption rate of power control.
func (c Counters) AP() float64 { return ratio(c.PCSlots, c.Slots) }

// SP is the success rate of power control: useful PC slots over PC slots.
func (c Counters) SP() float64 { return ratio(c.UsefulPCs, c.PCSlots) }

// JamRate is the fraction of slots spent co-channel with the jammer.
func (c Counters) JamRate() float64 { return ratio(c.JammedSlots, c.Slots) }

// String renders the Table I metrics compactly.
func (c Counters) String() string {
	return fmt.Sprintf("ST=%.1f%% AH=%.1f%% SH=%.1f%% AP=%.1f%% SP=%.1f%% (%d slots)",
		100*c.ST(), 100*c.AH(), 100*c.SH(), 100*c.AP(), 100*c.SP(), c.Slots)
}

// Validate checks internal consistency of the counters.
func (c Counters) Validate() error {
	checks := []struct {
		name     string
		part, of int
	}{
		{"successes", c.Successes, c.Slots},
		{"jammed", c.JammedSlots, c.Slots},
		{"jam losses", c.JamLosses, c.JammedSlots},
		{"hops", c.Hops, c.Slots},
		{"useful hops", c.UsefulHops, c.Hops},
		{"pc slots", c.PCSlots, c.Slots},
		{"useful pcs", c.UsefulPCs, c.PCSlots},
	}
	for _, ch := range checks {
		if ch.part < 0 || ch.part > ch.of {
			return fmt.Errorf("metrics: %s = %d outside [0,%d]", ch.name, ch.part, ch.of)
		}
	}
	if c.Successes+c.JamLosses != c.Slots {
		return fmt.Errorf("metrics: successes %d + jam losses %d != slots %d",
			c.Successes, c.JamLosses, c.Slots)
	}
	return nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sq float64
	for _, x := range xs {
		d := x - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(xs)-1))
}

// MeanCI95 returns the mean and the half-width of its normal-approximation
// 95% confidence interval.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	return mean, 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Percentile returns the p-quantile (0..1) of xs by linear interpolation on
// a sorted copy. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	insertionSort(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
