// Package mac implements the IEEE 802.15.4 unslotted CSMA/CA medium-access
// procedure used by the paper's ZigBee network ("the Listen-Before-Talk
// mechanism is adopted to avoid collisions", §II-A2): binary-exponential
// random backoff, clear-channel assessment, bounded retries, and a
// saturation arbiter that resolves contention among multiple peripheral
// nodes sharing the hub's channel.
package mac

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// IEEE 802.15.4 MAC timing at 2.4 GHz: 1 symbol = 16 us.
const (
	// SymbolDuration is the 802.15.4 symbol period.
	SymbolDuration = 16 * time.Microsecond
	// UnitBackoffPeriod is aUnitBackoffPeriod = 20 symbols.
	UnitBackoffPeriod = 20 * SymbolDuration
	// CCADuration is 8 symbols of energy detection.
	CCADuration = 8 * SymbolDuration
	// TurnaroundTime is aTurnaroundTime = 12 symbols (RX->TX).
	TurnaroundTime = 12 * SymbolDuration
)

// Params holds the CSMA/CA constants (IEEE 802.15.4-2020 §6.2.5.1).
type Params struct {
	// MinBE and MaxBE bound the backoff exponent.
	MinBE int
	MaxBE int
	// MaxBackoffs is macMaxCSMABackoffs: CCA failures tolerated per
	// transmission attempt.
	MaxBackoffs int
	// MaxRetries is macMaxFrameRetries: collisions tolerated per frame.
	MaxRetries int
}

// DefaultParams returns the standard's defaults (minBE 3, maxBE 5,
// macMaxCSMABackoffs 4, macMaxFrameRetries 3).
func DefaultParams() Params {
	return Params{MinBE: 3, MaxBE: 5, MaxBackoffs: 4, MaxRetries: 3}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.MinBE < 0 || p.MaxBE < p.MinBE {
		return fmt.Errorf("mac: backoff exponents [%d,%d] invalid", p.MinBE, p.MaxBE)
	}
	if p.MaxBE > 20 {
		return fmt.Errorf("mac: max backoff exponent %d implausible", p.MaxBE)
	}
	if p.MaxBackoffs < 0 || p.MaxRetries < 0 {
		return fmt.Errorf("mac: negative retry bounds")
	}
	return nil
}

// DrawBackoff returns a random backoff delay of 0..2^be-1 unit periods.
func DrawBackoff(be int, rng *rand.Rand) time.Duration {
	n := 1 << be
	return time.Duration(rng.Intn(n)) * UnitBackoffPeriod
}

// ErrChannelAccessFailure is reported when a node exhausts its CCA attempts
// (the standard's CHANNEL_ACCESS_FAILURE status).
var ErrChannelAccessFailure = errors.New("mac: channel access failure")

// ErrRetryLimit is reported when a frame collides more than MaxRetries
// times.
var ErrRetryLimit = errors.New("mac: frame retry limit exceeded")

// Outcome describes one resolved frame transmission under contention.
type Outcome struct {
	// Winner is the index of the node that transmitted successfully.
	Winner int
	// AccessDelay is the time from contention start to the winner's
	// frame hitting the air (backoffs, CCAs, collided attempts).
	AccessDelay time.Duration
	// Collisions counts collided attempts resolved along the way.
	Collisions int
}

// Arbiter resolves saturated contention: n nodes that always have a frame
// queued draw independent backoffs; the earliest clear-channel assessment
// wins, ties collide and re-enter backoff with an increased exponent.
// It is the packet-level model the field simulator uses when CSMA is
// enabled. Not safe for concurrent use.
type Arbiter struct {
	params Params
	nodes  int
	rng    *rand.Rand

	// Per-call scratch, reused across NextTransmission calls: the field
	// simulator resolves one contention per data packet, so these would
	// otherwise be steady-state allocations on the hot path.
	be      []int
	draws   []time.Duration
	winners []int
}

// NewArbiter builds an arbiter for n saturated nodes.
func NewArbiter(n int, params Params, rng *rand.Rand) (*Arbiter, error) {
	if n < 1 {
		return nil, fmt.Errorf("mac: need at least 1 node, got %d", n)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("mac: rng must not be nil")
	}
	return &Arbiter{
		params:  params,
		nodes:   n,
		rng:     rng,
		be:      make([]int, n),
		draws:   make([]time.Duration, n),
		winners: make([]int, 0, n),
	}, nil
}

// Nodes returns the contender count.
func (a *Arbiter) Nodes() int { return a.nodes }

// NextTransmission resolves contention for the next frame. With a single
// node it reduces to one backoff + CCA. The returned delay excludes the
// frame airtime itself.
func (a *Arbiter) NextTransmission() (Outcome, error) {
	be := a.be
	for i := range be {
		be[i] = a.params.MinBE
	}
	var (
		elapsed    time.Duration
		collisions int
	)
	// Each round: every contender draws a backoff; the strict minimum
	// transmits. Ties (within one unit period) collide: the colliders
	// raise BE and everyone redraws. The standard bounds retries.
	for attempt := 0; attempt <= a.params.MaxRetries+a.params.MaxBackoffs; attempt++ {
		draws := a.draws
		minD := time.Duration(1<<62 - 1)
		for i := range draws {
			draws[i] = DrawBackoff(be[i], a.rng)
			if draws[i] < minD {
				minD = draws[i]
			}
		}
		winners := a.winners[:0]
		for i, d := range draws {
			if d == minD {
				winners = append(winners, i)
			}
		}
		elapsed += minD + CCADuration + TurnaroundTime
		if len(winners) == 1 {
			return Outcome{Winner: winners[0], AccessDelay: elapsed, Collisions: collisions}, nil
		}
		// Collision: colliders back off harder.
		collisions++
		for _, w := range winners {
			if be[w] < a.params.MaxBE {
				be[w]++
			}
		}
	}
	return Outcome{}, fmt.Errorf("%w after %d collisions", ErrRetryLimit, collisions)
}

// MeanAccessDelay estimates the expected per-frame channel cost and
// collision rate by Monte-Carlo over the arbiter. collisionCost is the
// airtime wasted by each collided attempt (two frames garble each other);
// the winner-of-n backoff itself *shrinks* with contention, so the
// collision cost is what makes dense networks slower.
func (a *Arbiter) MeanAccessDelay(trials int, collisionCost time.Duration) (mean time.Duration, collisionRate float64, err error) {
	if trials < 1 {
		return 0, 0, fmt.Errorf("mac: trials %d must be >= 1", trials)
	}
	if collisionCost < 0 {
		return 0, 0, fmt.Errorf("mac: collision cost must be non-negative")
	}
	var (
		sum        time.Duration
		collisions int
		resolved   int
	)
	for t := 0; t < trials; t++ {
		out, err := a.NextTransmission()
		if err != nil {
			// Saturated retry-limit hits count as a full-cost loss.
			collisions += a.params.MaxRetries
			sum += time.Duration(a.params.MaxRetries) * collisionCost
			continue
		}
		sum += out.AccessDelay + time.Duration(out.Collisions)*collisionCost
		collisions += out.Collisions
		resolved++
	}
	if resolved == 0 {
		return 0, 0, ErrRetryLimit
	}
	return sum / time.Duration(resolved), float64(collisions) / float64(trials), nil
}

// SingleNodeTransaction models the uncontended LBT cost of one frame: one
// minimum backoff draw plus CCA and turnaround. The field simulator's fixed
// LBT constant approximates its mean (~0.9 ms with the defaults).
func SingleNodeTransaction(params Params, rng *rand.Rand) time.Duration {
	return DrawBackoff(params.MinBE, rng) + CCADuration + TurnaroundTime
}
