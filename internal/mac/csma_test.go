package mac

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		p    Params
	}{
		{"negative minBE", Params{MinBE: -1, MaxBE: 5}},
		{"max < min", Params{MinBE: 5, MaxBE: 3}},
		{"huge maxBE", Params{MinBE: 3, MaxBE: 25}},
		{"negative backoffs", Params{MinBE: 3, MaxBE: 5, MaxBackoffs: -1}},
		{"negative retries", Params{MinBE: 3, MaxBE: 5, MaxRetries: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestDrawBackoffBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(beSel uint8) bool {
		be := int(beSel % 8)
		d := DrawBackoff(be, rng)
		if d < 0 {
			return false
		}
		maxD := time.Duration(1<<be-1) * UnitBackoffPeriod
		return d <= maxD && d%UnitBackoffPeriod == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawBackoffZeroExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		if d := DrawBackoff(0, rng); d != 0 {
			t.Fatalf("BE=0 backoff = %v, want 0", d)
		}
	}
}

func TestNewArbiterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := NewArbiter(0, DefaultParams(), rng); err == nil {
		t.Fatal("0 nodes: expected error")
	}
	if _, err := NewArbiter(3, Params{MinBE: 9, MaxBE: 2}, rng); err == nil {
		t.Fatal("bad params: expected error")
	}
	if _, err := NewArbiter(3, DefaultParams(), nil); err == nil {
		t.Fatal("nil rng: expected error")
	}
}

func TestSingleNodeNeverCollides(t *testing.T) {
	a, err := NewArbiter(1, DefaultParams(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		out, err := a.NextTransmission()
		if err != nil {
			t.Fatal(err)
		}
		if out.Winner != 0 || out.Collisions != 0 {
			t.Fatalf("single node outcome %+v", out)
		}
		// Delay is bounded by the max backoff plus CCA and turnaround.
		maxD := 7*UnitBackoffPeriod + CCADuration + TurnaroundTime
		if out.AccessDelay > maxD {
			t.Fatalf("delay %v exceeds single-attempt bound %v", out.AccessDelay, maxD)
		}
	}
}

func TestContentionFairness(t *testing.T) {
	const nodes = 4
	a, err := NewArbiter(nodes, DefaultParams(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	wins := make([]int, nodes)
	const rounds = 4000
	for i := 0; i < rounds; i++ {
		out, err := a.NextTransmission()
		if err != nil {
			continue
		}
		wins[out.Winner]++
	}
	for i, w := range wins {
		frac := float64(w) / rounds
		if frac < 0.15 || frac > 0.35 {
			t.Fatalf("node %d won %.2f of rounds; CSMA should be fair (~0.25)", i, frac)
		}
	}
}

func TestCollisionRateGrowsWithContention(t *testing.T) {
	rate := func(nodes int) float64 {
		a, err := NewArbiter(nodes, DefaultParams(), rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		_, cr, err := a.MeanAccessDelay(3000, 4*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	r1, r3, r8 := rate(1), rate(3), rate(8)
	if r1 != 0 {
		t.Fatalf("single node collision rate %v", r1)
	}
	if !(r8 > r3 && r3 > 0) {
		t.Fatalf("collision rate should grow with nodes: 3->%v 8->%v", r3, r8)
	}
}

func TestAccessDelayGrowsWithContention(t *testing.T) {
	delay := func(nodes int) time.Duration {
		a, err := NewArbiter(nodes, DefaultParams(), rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := a.MeanAccessDelay(3000, 4*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if d1, d8 := delay(1), delay(8); d8 <= d1 {
		t.Fatalf("8-node delay %v should exceed 1-node %v", d8, d1)
	}
}

func TestMeanAccessDelayValidation(t *testing.T) {
	a, err := NewArbiter(2, DefaultParams(), rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.MeanAccessDelay(0, 0); err == nil {
		t.Fatal("0 trials: expected error")
	}
	if _, _, err := a.MeanAccessDelay(10, -time.Second); err == nil {
		t.Fatal("negative collision cost: expected error")
	}
}

func TestSingleNodeTransactionMean(t *testing.T) {
	// Mean = E[U{0..7}] * 320us + CCA + turnaround ≈ 1.12ms + 0.32ms.
	rng := rand.New(rand.NewSource(9))
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += SingleNodeTransaction(DefaultParams(), rng)
	}
	mean := sum / n
	lo := 1300 * time.Microsecond
	hi := 1600 * time.Microsecond
	if mean < lo || mean > hi {
		t.Fatalf("mean LBT transaction %v outside [%v,%v]", mean, lo, hi)
	}
}

func BenchmarkNextTransmission4Nodes(b *testing.B) {
	a, err := NewArbiter(4, DefaultParams(), rand.New(rand.NewSource(10)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.NextTransmission(); err != nil {
			b.Fatal(err)
		}
	}
}
