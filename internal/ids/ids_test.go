package ids

import (
	"testing"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/phy/zigbee"
)

func detector(t *testing.T) *Detector {
	t.Helper()
	d, err := NewDetector(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"loss threshold 0", func(c *Config) { c.LossRateThreshold = 0 }},
		{"loss threshold 1", func(c *Config) { c.LossRateThreshold = 1 }},
		{"packet min 0", func(c *Config) { c.PacketEvidenceMin = 0 }},
		{"phantom min 0", func(c *Config) { c.PhantomSyncMin = 0 }},
		{"busy fraction 2", func(c *Config) { c.BusyFractionMin = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := NewDetector(cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestVerdictString(t *testing.T) {
	wants := map[Verdict]string{
		VerdictClean:               "clean",
		VerdictInterference:        "interference",
		VerdictConventionalJamming: "conventional-jamming",
		VerdictCTJamming:           "ct-jamming",
		Verdict(9):                 "Verdict(9)",
	}
	for v, want := range wants {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestClassifyTable(t *testing.T) {
	d := detector(t)
	tests := []struct {
		name string
		give Evidence
		want Verdict
	}{
		{
			name: "quiet network",
			give: Evidence{Slots: 100, Losses: 2},
			want: VerdictClean,
		},
		{
			name: "losses with CRC evidence",
			give: Evidence{Slots: 100, Losses: 50, CRCFailures: 10},
			want: VerdictConventionalJamming,
		},
		{
			name: "losses with alien packets",
			give: Evidence{Slots: 100, Losses: 50, AlienPackets: 5},
			want: VerdictConventionalJamming,
		},
		{
			name: "losses with phantom syncs only",
			give: Evidence{Slots: 100, Losses: 50, PhantomSyncs: 12},
			want: VerdictCTJamming,
		},
		{
			name: "losses with busy receiver",
			give: Evidence{Slots: 100, Losses: 50, BusyFraction: 0.9},
			want: VerdictCTJamming,
		},
		{
			name: "losses without any fingerprint",
			give: Evidence{Slots: 100, Losses: 40},
			want: VerdictInterference,
		},
		{
			name: "intermittent conventional jammer below loss threshold",
			give: Evidence{Slots: 100, Losses: 5, CRCFailures: 10},
			want: VerdictConventionalJamming,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := d.Classify(tt.give); got != tt.want {
				t.Fatalf("Classify(%+v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestEvidenceHelpers(t *testing.T) {
	if (Evidence{}).LossRate() != 0 {
		t.Fatal("empty evidence loss rate")
	}
	a := Evidence{Slots: 50, Losses: 10, BusyFraction: 0.2, CRCFailures: 1}
	b := Evidence{Slots: 50, Losses: 30, BusyFraction: 0.8, PhantomSyncs: 4}
	a.Merge(b)
	if a.Slots != 100 || a.Losses != 40 || a.CRCFailures != 1 || a.PhantomSyncs != 4 {
		t.Fatalf("merge result %+v", a)
	}
	if a.BusyFraction < 0.49 || a.BusyFraction > 0.51 {
		t.Fatalf("merged busy fraction %v, want 0.5", a.BusyFraction)
	}
}

func TestFromReceiverReport(t *testing.T) {
	rep := zigbee.ReceiverReport{
		SymbolsProcessed: 1000,
		PacketsDecoded:   8,
		CRCFailures:      2,
		PhantomSyncs:     1,
		BusySymbols:      600,
	}
	ev := FromReceiverReport(rep, 20, 5, 2, 6)
	if ev.AlienPackets != 2 {
		t.Fatalf("alien packets = %d, want 2", ev.AlienPackets)
	}
	if ev.CRCFailures != 2 || ev.PhantomSyncs != 1 || ev.Slots != 20 {
		t.Fatalf("evidence %+v", ev)
	}
	// More known packets than decoded clips alien at 0.
	if got := FromReceiverReport(rep, 20, 5, 2, 100); got.AlienPackets != 0 {
		t.Fatalf("alien packets = %d, want 0", got.AlienPackets)
	}
}

func TestFromTraceCountsBursts(t *testing.T) {
	mk := func(outcomes ...env.Outcome) []env.SlotRecord {
		out := make([]env.SlotRecord, len(outcomes))
		for i, o := range outcomes {
			out[i] = env.SlotRecord{Slot: i, Outcome: o}
		}
		return out
	}
	s, j := env.OutcomeSuccess, env.OutcomeJammed
	ev := FromTrace(mk(s, j, j, s, j, s, s, j, j, j))
	if ev.Slots != 10 || ev.Losses != 6 {
		t.Fatalf("evidence %+v", ev)
	}
	if ev.LossBursts != 3 {
		t.Fatalf("bursts = %d, want 3", ev.LossBursts)
	}
}

func TestEndToEndCTJStaysInvisibleToPacketLog(t *testing.T) {
	// Drive a static victim through the jamming environment (heavy
	// losses), pair the trace with a phantom-heavy receiver report (what
	// an EmuBee flood produces) and verify the CTJ verdict; the same
	// losses with CRC evidence instead must flip the verdict.
	cfg := env.DefaultConfig()
	cfg.Seed = 41
	e, err := env.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, records, err := env.RunTrace(e, core.Static{}, 400)
	if err != nil {
		t.Fatal(err)
	}
	ev := FromTrace(records)
	if ev.LossRate() < 0.9 {
		t.Fatalf("static victim loss rate %.2f; scenario broken", ev.LossRate())
	}

	d := detector(t)
	// EmuBee: receiver shows phantom syncs, nothing loggable.
	emu := ev
	emu.Merge(Evidence{PhantomSyncs: 20, BusyFraction: 0.95})
	if got := d.Classify(emu); got != VerdictCTJamming {
		t.Fatalf("EmuBee verdict = %v, want ct-jamming", got)
	}
	// Conventional jammer: CRC failures pile up in the log.
	conv := ev
	conv.Merge(Evidence{CRCFailures: 25})
	if got := d.Classify(conv); got != VerdictConventionalJamming {
		t.Fatalf("conventional verdict = %v, want conventional-jamming", got)
	}
}
