// Package ids implements a jamming detector for the victim network,
// operationalizing the paper's stealthiness discussion (§II-B): a defender
// watching its own link can log decodable alien packets and CRC failures —
// the fingerprints of conventional ZigBee-format jamming — but a
// cross-technology EmuBee attack manifests only as unexplained loss bursts
// and receiver busy time with nothing in the packet log. The detector
// classifies an observation window into clean / conventional jamming /
// suspected cross-technology jamming, and its confusion behaviour is what
// makes the paper's "stronger stealthiness" claim measurable.
package ids

import (
	"fmt"

	"ctjam/internal/env"
	"ctjam/internal/phy/zigbee"
)

// Evidence aggregates what the defender observed over a window.
type Evidence struct {
	// Slots is the window length in time slots.
	Slots int
	// Losses counts slots whose transmissions failed.
	Losses int
	// LossBursts counts maximal runs of consecutive lost slots.
	LossBursts int
	// CRCFailures counts frames that parsed but failed the checksum.
	CRCFailures int
	// AlienPackets counts well-formed packets that none of the network's
	// members sent (a jammer replaying valid ZigBee frames).
	AlienPackets int
	// PhantomSyncs counts preamble acquisitions that produced no frame.
	PhantomSyncs int
	// BusyFraction is the receiver-occupancy share of the window.
	BusyFraction float64
}

// LossRate returns the fraction of lost slots.
func (e Evidence) LossRate() float64 {
	if e.Slots == 0 {
		return 0
	}
	return float64(e.Losses) / float64(e.Slots)
}

// Merge combines two evidence windows.
func (e *Evidence) Merge(other Evidence) {
	total := e.Slots + other.Slots
	if total > 0 {
		e.BusyFraction = (e.BusyFraction*float64(e.Slots) +
			other.BusyFraction*float64(other.Slots)) / float64(total)
	}
	e.Slots = total
	e.Losses += other.Losses
	e.LossBursts += other.LossBursts
	e.CRCFailures += other.CRCFailures
	e.AlienPackets += other.AlienPackets
	e.PhantomSyncs += other.PhantomSyncs
}

// Verdict is the detector's classification of a window.
type Verdict int

// Verdicts.
const (
	// VerdictClean means no attack indication.
	VerdictClean Verdict = iota + 1
	// VerdictInterference means losses without attack fingerprints
	// (e.g. benign cross-technology interference).
	VerdictInterference
	// VerdictConventionalJamming means packet-log evidence points at a
	// same-protocol jammer.
	VerdictConventionalJamming
	// VerdictCTJamming means heavy losses plus receiver-occupancy
	// anomalies without packet-log evidence: the EmuBee signature.
	VerdictCTJamming
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictClean:
		return "clean"
	case VerdictInterference:
		return "interference"
	case VerdictConventionalJamming:
		return "conventional-jamming"
	case VerdictCTJamming:
		return "ct-jamming"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Config sets the detector thresholds.
type Config struct {
	// LossRateThreshold is the loss rate above which the window is
	// considered under attack (paper: the random-jamming floor is
	// 1/ceil(K/m) = 0.25; sustained losses beyond that are anomalous).
	LossRateThreshold float64
	// PacketEvidenceMin is the number of CRC failures plus alien packets
	// that implicates a conventional jammer.
	PacketEvidenceMin int
	// PhantomSyncMin is the number of phantom synchronizations that,
	// combined with losses, implicates a cross-technology jammer.
	PhantomSyncMin int
	// BusyFractionMin is the receiver-occupancy anomaly threshold.
	BusyFractionMin float64
}

// DefaultConfig returns thresholds tuned for the paper's scenario.
func DefaultConfig() Config {
	return Config{
		LossRateThreshold: 0.3,
		PacketEvidenceMin: 3,
		PhantomSyncMin:    3,
		BusyFractionMin:   0.5,
	}
}

// Validate checks the thresholds.
func (c Config) Validate() error {
	if c.LossRateThreshold <= 0 || c.LossRateThreshold >= 1 {
		return fmt.Errorf("ids: loss threshold %v outside (0,1)", c.LossRateThreshold)
	}
	if c.PacketEvidenceMin < 1 || c.PhantomSyncMin < 1 {
		return fmt.Errorf("ids: evidence minimums must be >= 1")
	}
	if c.BusyFractionMin < 0 || c.BusyFractionMin > 1 {
		return fmt.Errorf("ids: busy fraction %v outside [0,1]", c.BusyFractionMin)
	}
	return nil
}

// Detector classifies evidence windows.
type Detector struct {
	cfg Config
}

// NewDetector builds a Detector.
func NewDetector(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Classify renders a verdict for one window.
func (d *Detector) Classify(ev Evidence) Verdict {
	packetEvidence := ev.CRCFailures + ev.AlienPackets
	underAttack := ev.LossRate() >= d.cfg.LossRateThreshold

	if !underAttack {
		// Even without losses, a pile of packet evidence reveals a
		// (failed or intermittent) conventional jammer.
		if packetEvidence >= 2*d.cfg.PacketEvidenceMin {
			return VerdictConventionalJamming
		}
		return VerdictClean
	}
	if packetEvidence >= d.cfg.PacketEvidenceMin {
		return VerdictConventionalJamming
	}
	if ev.PhantomSyncs >= d.cfg.PhantomSyncMin || ev.BusyFraction >= d.cfg.BusyFractionMin {
		return VerdictCTJamming
	}
	return VerdictInterference
}

// FromReceiverReport converts a PHY receiver report plus slot accounting
// into evidence. knownPackets is how many of the decoded packets the
// defender can attribute to its own nodes; the rest count as alien.
func FromReceiverReport(rep zigbee.ReceiverReport, slots, losses, lossBursts, knownPackets int) Evidence {
	alien := rep.PacketsDecoded - knownPackets
	if alien < 0 {
		alien = 0
	}
	return Evidence{
		Slots:        slots,
		Losses:       losses,
		LossBursts:   lossBursts,
		CRCFailures:  rep.CRCFailures,
		AlienPackets: alien,
		PhantomSyncs: rep.PhantomSyncs,
		BusyFraction: rep.BusyFraction(),
	}
}

// FromTrace builds loss accounting from a slot-level environment trace.
// PHY-level counters (CRC failures, phantom syncs) are not observable at
// this layer and stay zero; combine with FromReceiverReport via Merge when
// receiver instrumentation is available.
func FromTrace(records []env.SlotRecord) Evidence {
	ev := Evidence{Slots: len(records)}
	inBurst := false
	for _, r := range records {
		if r.Outcome == env.OutcomeJammed {
			ev.Losses++
			if !inBurst {
				ev.LossBursts++
				inBurst = true
			}
		} else {
			inBurst = false
		}
	}
	return ev
}
