package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Batcher is the admission queue that turns a fleet of concurrent
// single-state decisions into batched forward passes. Callers block in
// Decide; the first admission into an empty queue arms a window timer, and
// the batch flushes as one policy.DQN.DecideBatch call when it fills to
// MaxBatch (the admitting goroutine flushes inline, so a full batch never
// waits on the timer) or when the window expires, whichever comes first. The
// window is therefore the worst-case queueing latency a lone request pays,
// and MaxBatch bounds how much work one forward pass carries.
//
// The steady state allocates nothing per decision: micro-batches (state and
// action buffers) recycle through a sync.Pool once their last waiter has read
// its result, states are copied straight into the pooled batch buffer at
// admission, and the snapshot's own pooled scratch backs the forward pass.
// The only per-batch allocation is the ready channel (unavoidable: a closed
// channel cannot be reused), amortized across up to MaxBatch decisions.
type Batcher struct {
	m        *Model
	maxBatch int
	window   time.Duration

	mu     sync.Mutex
	cur    *microbatch
	gen    uint64 // increments whenever cur is taken; guards stale timer flushes
	closed bool   // draining: admissions flush immediately, no timers armed

	free sync.Pool // *microbatch
}

// microbatch is one in-flight batch: admitted states, the policy generation
// they were validated against, and the rendezvous for its waiters.
type microbatch struct {
	pol     decidePolicy // pinned at creation so one flush is one consistent model
	dim     int
	states  []float64
	actions []int
	n       int
	err     error
	ready   chan struct{} // closed after flush; actions/err are then readable
	readers atomic.Int32  // waiters yet to read; the last one recycles the batch
}

// newBatcher builds the admission queue for one model. window must be
// positive: with no timer a lone admission would wait forever.
func newBatcher(m *Model, maxBatch int, window time.Duration) (*Batcher, error) {
	if maxBatch < 1 {
		return nil, fmt.Errorf("serve: max batch %d must be >= 1", maxBatch)
	}
	if window <= 0 {
		return nil, fmt.Errorf("serve: batch window %v must be positive", window)
	}
	return &Batcher{m: m, maxBatch: maxBatch, window: window}, nil
}

// Decide admits one state and blocks until its batch has been evaluated,
// returning the greedy action. len(state) must equal the current model's
// StateDim (the handler validates first; the batcher re-checks because a
// hot-swap can change dimensions between validation and admission).
func (b *Batcher) Decide(state []float64) (int, error) {
	for {
		b.mu.Lock()
		if b.cur == nil {
			pol := b.m.policy()
			if len(state) != pol.StateDim() {
				b.mu.Unlock()
				return 0, fmt.Errorf("serve: state has %d features, model wants %d", len(state), pol.StateDim())
			}
			b.cur = b.get(pol)
			if !b.closed {
				gen := b.gen
				time.AfterFunc(b.window, func() { b.flushGen(gen) })
			}
		} else if b.cur.dim != len(state) {
			// The model was hot-swapped to different dimensions while this
			// batch was filling. Flush what we have against its pinned policy
			// and re-admit against the new one.
			mb := b.take()
			b.mu.Unlock()
			b.flush(mb, &b.m.stats.FlushWindow)
			continue
		}
		mb := b.cur
		idx := mb.n
		copy(mb.states[idx*mb.dim:(idx+1)*mb.dim], state)
		mb.n++
		full := mb.n == b.maxBatch
		drain := b.closed
		if full || drain {
			b.take()
		}
		b.mu.Unlock()

		if full {
			b.flush(mb, &b.m.stats.FlushFull)
		} else if drain {
			b.flush(mb, &b.m.stats.FlushWindow)
		}
		<-mb.ready
		action, err := mb.actions[idx], mb.err
		if mb.readers.Add(-1) == 0 {
			b.put(mb)
		}
		return action, err
	}
}

// take detaches the current batch (caller holds b.mu) and bumps the
// generation so its timer becomes a no-op.
func (b *Batcher) take() *microbatch {
	mb := b.cur
	b.cur = nil
	b.gen++
	return mb
}

// flushGen is the window-timer callback for the batch that was current at
// generation gen; it does nothing if that batch has since flushed.
func (b *Batcher) flushGen(gen uint64) {
	b.mu.Lock()
	if b.gen != gen || b.cur == nil {
		b.mu.Unlock()
		return
	}
	mb := b.take()
	b.mu.Unlock()
	b.flush(mb, &b.m.stats.FlushWindow)
}

// flush runs the batched forward and releases the waiters. kind counts what
// triggered the flush.
func (b *Batcher) flush(mb *microbatch, kind *atomic.Int64) {
	mb.readers.Store(int32(mb.n))
	mb.err = mb.pol.DecideBatch(mb.states[:mb.n*mb.dim], mb.actions[:mb.n])
	kind.Add(1)
	b.m.stats.BatchFill.Observe(int64(mb.n))
	close(mb.ready)
}

// Close puts the batcher into drain mode: the pending batch flushes now, and
// any admission still in flight flushes immediately as a batch of one instead
// of arming new timers. Used by graceful shutdown so no decision is dropped.
func (b *Batcher) Close() {
	b.mu.Lock()
	b.closed = true
	var mb *microbatch
	if b.cur != nil {
		mb = b.take()
	}
	b.mu.Unlock()
	if mb != nil {
		b.flush(mb, &b.m.stats.FlushWindow)
	}
}

// get recycles (or grows) a pooled micro-batch sized for pol's dimensions.
func (b *Batcher) get(pol decidePolicy) *microbatch {
	mb, _ := b.free.Get().(*microbatch)
	if mb == nil {
		mb = &microbatch{}
	}
	dim := pol.StateDim()
	if cap(mb.states) < b.maxBatch*dim {
		mb.states = make([]float64, b.maxBatch*dim)
	}
	mb.states = mb.states[:b.maxBatch*dim]
	if cap(mb.actions) < b.maxBatch {
		mb.actions = make([]int, b.maxBatch)
	}
	mb.actions = mb.actions[:b.maxBatch]
	mb.pol, mb.dim, mb.n, mb.err = pol, dim, 0, nil
	mb.ready = make(chan struct{})
	return mb
}

// put returns a fully-read micro-batch to the pool, dropping its policy pin
// so a recycled batch never keeps an old snapshot alive.
func (b *Batcher) put(mb *microbatch) {
	mb.pol = nil
	b.free.Put(mb)
}
