package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig drives a sustained-throughput run against a live server: the
// load generator behind the serve benchmark and any manual capacity test. It
// models the deployment the batcher exists for — many concurrent clients,
// each issuing single-state decisions as fast as the server answers them.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Model targets /v1/models/{Model}/...; empty uses the legacy routes.
	Model string
	// Mode is "http" (one POST /v1/decide per decision, keep-alive) or
	// "session" (one streaming /v1/session connection per client).
	Mode string
	// Clients is the number of concurrent clients.
	Clients int
	// Duration is how long to sustain the load.
	Duration time.Duration
	// StateDim sizes the random states sent.
	StateDim int
	// Seed derives each client's deterministic state stream.
	Seed int64
}

// LoadResult reports what a load run achieved.
type LoadResult struct {
	Decisions int64         // successful decisions
	Errors    int64         // failed requests/lines
	Elapsed   time.Duration // wall clock actually spent
}

// PerSec returns sustained decisions per second.
func (r LoadResult) PerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Decisions) / r.Elapsed.Seconds()
}

// RunLoad drives cfg.Clients concurrent clients for cfg.Duration and returns
// the sustained throughput. Each client sends uniformly random states from
// its own seeded stream, so runs are reproducible and cheap to generate.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if cfg.Clients < 1 || cfg.StateDim < 1 || cfg.Duration <= 0 {
		return LoadResult{}, fmt.Errorf("serve: load config needs clients, state dim and duration")
	}
	switch cfg.Mode {
	case "http", "session":
	default:
		return LoadResult{}, fmt.Errorf("serve: load mode %q (want http or session)", cfg.Mode)
	}
	prefix := cfg.BaseURL + "/v1"
	if cfg.Model != "" {
		prefix = cfg.BaseURL + "/v1/models/" + cfg.Model
	}
	// Every client keeps one connection alive for the whole run.
	transport := &http.Transport{
		MaxIdleConns:        cfg.Clients,
		MaxIdleConnsPerHost: cfg.Clients,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	var decisions, errCount atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			var err error
			if cfg.Mode == "http" {
				err = loadHTTP(ctx, client, prefix, rng, cfg.StateDim, &decisions)
			} else {
				err = loadSession(ctx, client, prefix, rng, cfg.StateDim, &decisions)
			}
			if err != nil && ctx.Err() == nil {
				errCount.Add(1)
			}
		}(c)
	}
	wg.Wait()
	return LoadResult{
		Decisions: decisions.Load(),
		Errors:    errCount.Load(),
		Elapsed:   time.Since(start),
	}, nil
}

// randState fills buf with a fresh random observation.
func randState(rng *rand.Rand, buf []float64) {
	for i := range buf {
		buf[i] = rng.Float64()*2 - 1
	}
}

// encodeStates pre-renders n random request lines. Clients cycle through
// them instead of formatting floats per decision: the generator and the
// server share the CPU, so per-decision strconv work on the client side
// would depress the very throughput being measured.
func encodeStates(rng *rand.Rand, n, dim int) ([][]byte, error) {
	lines := make([][]byte, n)
	state := make([]float64, dim)
	for i := range lines {
		randState(rng, state)
		b, err := json.Marshal(DecideRequest{State: state})
		if err != nil {
			return nil, err
		}
		lines[i] = append(b, '\n')
	}
	return lines, nil
}

// loadHTTP issues one POST /v1/decide per decision over a kept-alive
// connection until the context expires.
func loadHTTP(ctx context.Context, client *http.Client, prefix string, rng *rand.Rand, dim int, decisions *atomic.Int64) error {
	lines, err := encodeStates(rng, 16, dim)
	if err != nil {
		return err
	}
	var body bytes.Reader
	for i := 0; ctx.Err() == nil; i++ {
		body.Reset(lines[i%len(lines)])
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, prefix+"/decide", &body)
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		var out DecideResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK || out.Action == nil {
			return fmt.Errorf("decide: status %d error %q", resp.StatusCode, out.Error)
		}
		decisions.Add(1)
	}
	return nil
}

// loadSession holds one streaming /v1/session connection, writing one NDJSON
// decide line per decision and reading the response line, until the context
// expires.
func loadSession(ctx context.Context, client *http.Client, prefix string, rng *rand.Rand, dim int, decisions *atomic.Int64) error {
	pr, pw := io.Pipe()
	defer pw.Close()
	// The request context must outlive ctx so the final response line can be
	// read after the deadline; the session ends by closing the write side. The
	// grace deadline is a backstop so a stuck server fails the run instead of
	// hanging it.
	reqCtx := context.Background()
	if d, ok := ctx.Deadline(); ok {
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithDeadline(reqCtx, d.Add(30*time.Second))
		defer cancel()
	}
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, prefix+"/session", pr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		// Close the write side first: the server's read loop sees EOF and ends
		// the stream, which is what lets the drain below finish.
		pw.Close()
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("session: status %d", resp.StatusCode)
	}
	lines, err := encodeStates(rng, 16, dim)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(resp.Body)
	var out DecideResponse
	for i := 0; ctx.Err() == nil; i++ {
		if _, err := pw.Write(lines[i%len(lines)]); err != nil {
			return err
		}
		out = DecideResponse{}
		if err := dec.Decode(&out); err != nil {
			return err
		}
		if out.Error != "" || out.Action == nil {
			return fmt.Errorf("session decide: %q", out.Error)
		}
		decisions.Add(1)
	}
	return nil
}
