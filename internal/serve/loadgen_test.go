package serve

import (
	"net/http/httptest"
	"testing"
	"time"
)

func TestRunLoadRejectsBadConfig(t *testing.T) {
	bad := []LoadConfig{
		{},
		{Clients: 1, StateDim: testStateDim, Duration: time.Second, Mode: "udp"},
		{Clients: 0, StateDim: testStateDim, Duration: time.Second, Mode: "http"},
		{Clients: 1, StateDim: 0, Duration: time.Second, Mode: "http"},
		{Clients: 1, StateDim: testStateDim, Duration: 0, Mode: "http"},
	}
	for _, cfg := range bad {
		if _, err := RunLoad(cfg); err == nil {
			t.Errorf("RunLoad(%+v) accepted a bad config", cfg)
		}
	}
}

// TestRunLoadModes drives the generator briefly against a live server in both
// modes, on both engines: every decision must succeed and be counted.
func TestRunLoadModes(t *testing.T) {
	srv := newDualEngineServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, mode := range []string{"http", "session"} {
		for _, model := range []string{"", "fast"} {
			res, err := RunLoad(LoadConfig{
				BaseURL:  ts.URL,
				Model:    model,
				Mode:     mode,
				Clients:  2,
				Duration: 150 * time.Millisecond,
				StateDim: testStateDim,
				Seed:     5,
			})
			if err != nil {
				t.Fatalf("mode %q model %q: %v", mode, model, err)
			}
			if res.Errors != 0 {
				t.Errorf("mode %q model %q: %d client errors", mode, model, res.Errors)
			}
			if res.Decisions == 0 {
				t.Errorf("mode %q model %q: no decisions served", mode, model)
			}
			if res.PerSec() <= 0 {
				t.Errorf("mode %q model %q: PerSec() = %v with %d decisions", mode, model, res.PerSec(), res.Decisions)
			}
		}
	}
	if (LoadResult{}).PerSec() != 0 {
		t.Error("zero-valued LoadResult should report 0 decisions/s")
	}
}

// TestRunLoadReportsClientErrors points the generator at a model the server
// does not have: clients must fail and be counted, not hang or panic.
func TestRunLoadReportsClientErrors(t *testing.T) {
	srv := newDualEngineServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := RunLoad(LoadConfig{
		BaseURL:  ts.URL,
		Model:    "nonesuch",
		Mode:     "http",
		Clients:  2,
		Duration: 100 * time.Millisecond,
		StateDim: testStateDim,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Error("unknown model produced no client errors")
	}
	if res.Decisions != 0 {
		t.Errorf("unknown model served %d decisions", res.Decisions)
	}
}

func TestServerReloadAll(t *testing.T) {
	srv := newDualEngineServer(t)
	before := srv.Registry().Lookup("fast").Reloads()
	if err := srv.ReloadAll(); err != nil {
		t.Fatal(err)
	}
	for _, name := range srv.Registry().Names() {
		m := srv.Registry().Lookup(name)
		if m.Reloads() != before+1 {
			t.Errorf("model %q reloads = %d, want %d", name, m.Reloads(), before+1)
		}
	}
}
