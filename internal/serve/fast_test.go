package serve

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ctjam/internal/policy"
	"ctjam/internal/rl"
)

// newDualEngineServer serves the same checkpoint twice: once exact, once on
// the float32 fast path, so tests can compare the two through the full HTTP
// surface.
func newDualEngineServer(t testing.TB) *Server {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.ctdq")
	writeLearnerFile(t, path, 11)
	srv, err := New(Config{
		Models: []ModelSpec{
			{Name: "exact", Path: path},
			{Name: "fast", Path: path, Fast: true},
		},
		Batching: true,
		MaxBatch: 8,
		Window:   100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestFastModelEngine(t *testing.T) {
	srv := newDualEngineServer(t)
	for name, want := range map[string]rl.Engine{"exact": rl.EngineExact, "fast": rl.EngineFast32} {
		m := srv.Registry().Lookup(name)
		if m == nil {
			t.Fatalf("model %q missing from registry", name)
		}
		dqn, ok := m.policy().(*policy.DQN)
		if !ok {
			t.Fatalf("model %q policy is %T, want *policy.DQN", name, m.policy())
		}
		if got := dqn.Engine(); got != want {
			t.Errorf("model %q runs on engine %v, want %v", name, got, want)
		}
		// Reload must keep the engine choice, not silently fall back to exact.
		if err := m.Reload(); err != nil {
			t.Fatalf("reload %q: %v", name, err)
		}
		if got := m.policy().(*policy.DQN).Engine(); got != want {
			t.Errorf("model %q after reload runs on engine %v, want %v", name, got, want)
		}
	}
	if got := srv.Registry().Lookup("fast").Engine(); got != "fast32" {
		t.Errorf("Model.Engine() = %q, want \"fast32\"", got)
	}
	if got := srv.Registry().Lookup("exact").Engine(); got != "exact" {
		t.Errorf("Model.Engine() = %q, want \"exact\"", got)
	}
}

// TestFastEngineReported pins the observability contract: both /v1/models and
// /v1/stats name the engine each model serves on.
func TestFastEngineReported(t *testing.T) {
	srv := newDualEngineServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	engines := func(url, listKey string) map[string]string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string)
		if listKey == "models" && url == ts.URL+"/v1/models" {
			var models struct {
				Models []struct {
					Name   string `json:"name"`
					Engine string `json:"engine"`
				} `json:"models"`
			}
			if err := json.Unmarshal(body["models"], &models.Models); err != nil {
				t.Fatal(err)
			}
			for _, m := range models.Models {
				out[m.Name] = m.Engine
			}
			return out
		}
		var models map[string]struct {
			Engine string `json:"engine"`
		}
		if err := json.Unmarshal(body["models"], &models); err != nil {
			t.Fatal(err)
		}
		for name, m := range models {
			out[name] = m.Engine
		}
		return out
	}

	for _, url := range []string{ts.URL + "/v1/models", ts.URL + "/v1/stats"} {
		got := engines(url, "models")
		if got["exact"] != "exact" || got["fast"] != "fast32" {
			t.Errorf("%s reports engines %v, want exact/fast32", url, got)
		}
	}
}

// TestFastDecideAgreesWithExact drives the same random batches through the
// exact and fast models over HTTP and holds the served decisions to the fast
// path's agreement budget: >=99.9% identical actions, with every disagreement
// an exact-Q near-tie, and Q-values tolerance-close row by row.
func TestFastDecideAgreesWithExact(t *testing.T) {
	const (
		rounds     = 20
		batch      = 50
		agreeFloor = 0.999
		tieGap     = 1e-3
		qRel       = 5e-4
		qAbs       = 5e-4
	)
	srv := newDualEngineServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(23))
	agree, total := 0, 0
	for round := 0; round < rounds; round++ {
		states := randStates(rng, batch, testStateDim)
		req, err := json.Marshal(DecideRequest{States: states, QValues: true})
		if err != nil {
			t.Fatal(err)
		}
		exact, resp := postJSON(t, ts.URL+"/v1/models/exact/decide", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exact decide: status %d", resp.StatusCode)
		}
		fast, resp := postJSON(t, ts.URL+"/v1/models/fast/decide", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fast decide: status %d", resp.StatusCode)
		}
		if len(exact.Actions) != batch || len(fast.Actions) != batch {
			t.Fatalf("got %d exact / %d fast actions, want %d", len(exact.Actions), len(fast.Actions), batch)
		}
		for i := 0; i < batch; i++ {
			total++
			if exact.Actions[i] == fast.Actions[i] {
				agree++
			} else {
				// A disagreement is only legitimate at an exact-Q near-tie.
				row := exact.Q[i]
				gap := math.Abs(row[exact.Actions[i]] - row[fast.Actions[i]])
				if gap > tieGap {
					t.Errorf("round %d state %d: exact action %d, fast %d, exact-Q gap %g",
						round, i, exact.Actions[i], fast.Actions[i], gap)
				}
			}
			for a := range exact.Q[i] {
				e, f := exact.Q[i][a], fast.Q[i][a]
				if diff := math.Abs(e - f); diff > qAbs && diff > qRel*math.Abs(e) {
					t.Errorf("round %d state %d action %d: exact Q %g, fast Q %g", round, i, a, e, f)
				}
			}
		}
	}
	if ratio := float64(agree) / float64(total); ratio < agreeFloor {
		t.Fatalf("served action agreement %.5f over %d states, want >= %v", ratio, total, agreeFloor)
	}
}
