package serve

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of fixed power-of-two buckets in a Hist. Bucket i
// counts observations v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1), so
// the histogram spans 1 .. 2^33 — microseconds from sub-µs to ~2.4 hours, or
// batch fills from 1 state to far past any sane max-batch — with ~2x
// resolution everywhere and no allocation or locking on the hot path.
const histBuckets = 34

// Hist is a lock-free fixed-bucket histogram of non-negative int64 samples
// (request latencies in µs, batch fills in states). All methods are safe for
// concurrent use; quantiles are computed from the bucket counts at read time,
// so Observe stays two atomic adds.
type Hist struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// bucketOf returns the index of the bucket covering v.
func bucketOf(v int64) int {
	b := 0
	for upper := int64(1); b < histBuckets-1 && v > upper; b++ {
		upper <<= 1
	}
	return b
}

// bucketUpper returns the inclusive upper edge of bucket i.
func bucketUpper(i int) int64 { return int64(1) << i }

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// ObserveDuration records a latency sample in whole microseconds.
func (h *Hist) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Count returns the number of samples observed.
func (h *Hist) Count() int64 { return h.n.Load() }

// Mean returns the mean sample, or 0 with no samples.
func (h *Hist) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the upper edge of the bucket holding the q-quantile
// (0 < q <= 1), i.e. an upper bound on the true quantile that is at most 2x
// off. Returns 0 with no samples.
func (h *Hist) Quantile(q float64) int64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Buckets returns the non-empty buckets as a {upper edge: count} map, for the
// stats endpoint.
func (h *Hist) Buckets() map[int64]int64 {
	out := make(map[int64]int64)
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			out[bucketUpper(i)] = c
		}
	}
	return out
}

// Stats aggregates one model's serving counters. All fields are safe for
// concurrent update.
type Stats struct {
	Requests atomic.Int64 // decide requests (HTTP) + session decisions
	States   atomic.Int64 // states evaluated
	Errors   atomic.Int64 // failed requests / session decisions

	Sessions         atomic.Int64 // streaming sessions opened
	SessionDecisions atomic.Int64 // decisions served over sessions

	Latency Hist // per-decision latency, µs

	// Batcher observability: how the admission queue is actually flushing.
	BatchFill   Hist         // states per flushed micro-batch
	FlushFull   atomic.Int64 // flushes triggered by a full batch
	FlushWindow atomic.Int64 // flushes triggered by the latency window (or drain)
	Direct      atomic.Int64 // decisions that bypassed the batcher
}

// latencyStats renders a Hist into the stats-endpoint JSON shape.
func latencyStats(h *Hist) map[string]any {
	return map[string]any{
		"count":   h.Count(),
		"mean_us": h.Mean(),
		"p50_us":  h.Quantile(0.50),
		"p95_us":  h.Quantile(0.95),
		"p99_us":  h.Quantile(0.99),
		"buckets": h.Buckets(),
	}
}
