package serve

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"ctjam/internal/rl"
)

// writePaperModel saves a random-weight learner at the paper's serving
// dimensions (24 features -> 48 -> 48 -> 160 actions), the same network
// BenchmarkPolicyBatch measures raw kernel throughput on.
func writePaperModel(b *testing.B, dir string) string {
	b.Helper()
	cfg := rl.DefaultDQNConfig(24, 160)
	cfg.Hidden = []int{48, 48}
	cfg.Seed = 7
	d, err := rl.NewDQN(cfg)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "bench.ctdq")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.SaveState(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// benchDuration reads the sustained-load window from CTJAM_SERVE_BENCH_MS
// (default 2000 ms; check.sh smoke runs use a short one).
func benchDuration() time.Duration {
	if ms := os.Getenv("CTJAM_SERVE_BENCH_MS"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v > 0 {
			return time.Duration(v) * time.Millisecond
		}
	}
	return 2 * time.Second
}

// BenchmarkServeSustained is the planet-scale serving headline: sustained
// decisions/s with 256 concurrent single-state clients against one server
// process, across the transport x batching matrix. "http-nobatch" is the
// per-request baseline (PR 3's server: one connection round-trip and one
// forward pass per decision); "session-batch" is the full PR 6 path
// (streaming NDJSON sessions feeding the cross-request micro-batcher). The
// acceptance gate compares those two corners. Load is generated in-process
// by RunLoad over real TCP connections, so client-side JSON and socket work
// is included in the measurement — throughput numbers are end-to-end, not
// server-only.
func BenchmarkServeSustained(b *testing.B) {
	dir := b.TempDir()
	path := writePaperModel(b, dir)
	const clients = 256
	for _, bc := range []struct {
		name     string
		mode     string
		batching bool
	}{
		{"http-nobatch", "http", false},
		{"http-batch", "http", true},
		{"session-nobatch", "session", false},
		{"session-batch", "session", true},
	} {
		b.Run(fmt.Sprintf("%s-c%d", bc.name, clients), func(b *testing.B) {
			srv, err := New(Config{
				Models:   []ModelSpec{{Name: "default", Path: path}},
				Batching: bc.batching,
				MaxBatch: 256,
				Window:   200 * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			for i := 0; i < b.N; i++ {
				res, err := RunLoad(LoadConfig{
					BaseURL:  ts.URL,
					Mode:     bc.mode,
					Clients:  clients,
					Duration: benchDuration(),
					StateDim: 24,
					Seed:     int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Errors > 0 {
					b.Fatalf("%d client errors", res.Errors)
				}
				if res.Decisions == 0 {
					b.Fatal("no decisions served")
				}
				b.ReportMetric(res.PerSec(), "decisions/s")
				b.ReportMetric(float64(res.Decisions), "decisions")
			}
			m := srv.Registry().Default()
			if flushes := m.stats.FlushFull.Load() + m.stats.FlushWindow.Load(); flushes > 0 {
				b.ReportMetric(m.stats.BatchFill.Mean(), "mean-fill")
			}
		})
	}
}

// BenchmarkBatcherDecide measures the admission queue itself, no HTTP: many
// goroutines pushing single states through Batcher.Decide into fused
// GreedyBatch flushes. This is the allocs/op gate for the zero-copy scratch
// path — steady state must stay at ~0 allocs per decision (the only per-batch
// allocation is the ready channel, amortized across the fill).
func BenchmarkBatcherDecide(b *testing.B) {
	dir := b.TempDir()
	path := writePaperModel(b, dir)
	srv, err := New(Config{
		Models:   []ModelSpec{{Name: "default", Path: path}},
		Batching: true,
		MaxBatch: 64,
		Window:   200 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := srv.Registry().Default()
	const workers = 64
	states := make([][]float64, workers)
	for i := range states {
		states[i] = make([]float64, 24)
		for j := range states[i] {
			states[i][j] = float64(i*31+j) / (workers * 31)
		}
	}
	var next int
	var mu sync.Mutex
	b.SetParallelism(workers) // goroutines, not cores: they interleave in the queue
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		id := next % workers
		next++
		mu.Unlock()
		st := states[id]
		for pb.Next() {
			if _, err := m.batcher.Decide(st); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
