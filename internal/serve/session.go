package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"
)

// handleSession serves a streaming decision session: full-duplex NDJSON over
// one HTTP request. The client POSTs an unbounded chunked body and writes one
// DecideRequest JSON value per line; the server answers each with one
// DecideResponse line, flushed immediately. A link thus holds a single
// connection for its whole hopping session — no per-slot HTTP setup, routing
// or header parsing — while its decisions still flow through the per-model
// micro-batcher and batch up with every other client's.
//
// Recoverable request errors (wrong dimensions, empty batch) come back as
// {"error": ...} lines and the session continues; a malformed JSON stream
// ends the session after one final error line, and client EOF ends it
// cleanly. Sessions are exempt from the decide body cap: the stream is
// unbounded by design, and each line still has to parse into a DecideRequest
// the dimension checks accept.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request, m *Model) {
	if s.draining() {
		s.failModel(m, w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		s.failModel(m, w, http.StatusInternalServerError, err)
		return
	}
	m.stats.Sessions.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return
	}

	// A drain must unblock the pending read so http.Server.Shutdown can
	// finish; expiring the read deadline does that without tearing the
	// connection down mid-write.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-s.drainCh:
			rc.SetReadDeadline(time.Now())
		case <-done:
		}
	}()

	dec := json.NewDecoder(r.Body)
	enc := json.NewEncoder(w)
	var req DecideRequest
	for {
		// Reset rather than reallocate: json.Decode reuses State's backing
		// array across lines, and absent fields must not inherit the
		// previous line's values. Reuse is safe because decide() returns
		// only after the state has been consumed (copied into a micro-batch
		// or forwarded through pooled scratch).
		req.State = req.State[:0]
		req.States = req.States[:0]
		req.QValues = false
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF && !s.draining() {
				// Framing is broken (syntax error or truncated value):
				// answer once and end the session.
				enc.Encode(&DecideResponse{Error: "decode request: " + err.Error()})
				rc.Flush()
				m.stats.Errors.Add(1)
			}
			return
		}
		start := time.Now()
		resp, _, err := s.decide(m, &req)
		if err != nil {
			m.stats.Errors.Add(1)
			resp = &DecideResponse{Error: err.Error()}
		} else {
			m.stats.Latency.ObserveDuration(time.Since(start))
			m.stats.SessionDecisions.Add(1)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := rc.Flush(); err != nil {
			return
		}
	}
}
