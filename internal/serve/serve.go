// Package serve is ctjam's production-style inference layer: the machinery
// behind cmd/ctjam-serve. It turns the repo's batched forward kernels
// (nn.ForwardBatch via policy.DQN / rl.Snapshot) into a server that holds its
// peak-throughput shape under real traffic:
//
//   - Cross-request micro-batching. The AVX kernels peak near batch 256, but
//     a fleet of independent links sends single-state requests. A per-model
//     Batcher coalesces concurrent decisions into one batched forward pass,
//     bounded by a max batch size and a latency window (the worst-case
//     queueing delay a lone request pays). Steady state is ~0 allocs per
//     decision: pooled micro-batch buffers, pooled forward scratch, and
//     zero-copy admission into the batch buffer.
//   - Multi-model registry. One process serves many named checkpoints
//     (/v1/models/{name}/decide), each with its own admission queue, stats
//     and hot reload (POST /v1/models/{name}/reload; SIGHUP and the legacy
//     POST /v1/reload reload all). The legacy single-model routes keep
//     working against a designated default model.
//   - Streaming sessions. POST /v1/session upgrades to full-duplex NDJSON
//     over the request/response pair: a link writes one JSON decide line per
//     slot and reads one decision line back, holding a single connection for
//     its whole hopping session instead of paying HTTP per slot. Session
//     decisions flow through the same per-model batcher, so concurrent
//     sessions batch together.
//   - Observability. /v1/stats reports per-model fixed-bucket latency
//     histograms (p50/p95/p99), batch-fill distribution, and
//     window-timeout-vs-full-batch flush counts.
//
// Graceful shutdown (Server.BeginDrain + http.Server.Shutdown) gates new
// admissions with 503, flushes pending micro-batches, unblocks streaming
// sessions, and lets in-flight requests finish, so rolling restarts do not
// drop decisions.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Config assembles a Server.
type Config struct {
	// Models is the checkpoint set to serve; the first entry is the default
	// model unless DefaultModel overrides.
	Models       []ModelSpec
	DefaultModel string

	// Batching toggles the micro-batcher. Off, every request runs its own
	// forward pass (the per-request baseline the benchmark compares against).
	Batching bool
	// MaxBatch caps states per batched forward (default 256, where the AVX
	// kernels peak).
	MaxBatch int
	// Window is the micro-batch latency budget: the longest a lone admission
	// waits before its partial batch flushes (default 200µs).
	Window time.Duration

	// MaxBody caps decide request bodies in bytes (default 8 MiB); larger
	// bodies get a JSON 413.
	MaxBody int64

	// PProf mounts net/http/pprof under /debug/pprof/.
	PProf bool
}

// Defaults for Config zero values.
const (
	DefaultMaxBatch = 256
	DefaultWindow   = 200 * time.Microsecond
	DefaultMaxBody  = 8 << 20
)

// Server is the HTTP inference service: a model registry plus the handler
// surface and drain logic around it.
type Server struct {
	cfg     Config
	reg     *Registry
	start   time.Time
	drainCh chan struct{}
	drainMu sync.Mutex
	scratch sync.Pool // *reqScratch, for the direct (non-batched) path
}

// reqScratch holds the direct path's per-request buffers.
type reqScratch struct {
	flat    []float64
	actions []int
	q       []float64
}

// New loads every configured model and builds the service.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxBody == 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	reg, err := NewRegistry(cfg.Models, cfg.DefaultModel, cfg.MaxBatch, cfg.Window)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, reg: reg, start: time.Now(), drainCh: make(chan struct{})}
	s.scratch.New = func() any { return new(reqScratch) }
	return s, nil
}

// Registry exposes the model set (for logging and tests).
func (s *Server) Registry() *Registry { return s.reg }

// ReloadAll reloads every model (the SIGHUP path).
func (s *Server) ReloadAll() error { return s.reg.ReloadAll() }

// BeginDrain stops admissions: new decide/session requests get 503, pending
// micro-batches flush immediately, and open streaming sessions are unblocked
// so http.Server.Shutdown can complete. Safe to call more than once.
func (s *Server) BeginDrain() {
	s.drainMu.Lock()
	select {
	case <-s.drainCh:
	default:
		close(s.drainCh)
		s.reg.closeAll()
	}
	s.drainMu.Unlock()
}

// draining reports whether BeginDrain has been called.
func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/decide", s.withModel(s.handleDecide, ""))
	mux.HandleFunc("POST /v1/models/{model}/decide", s.withModel(s.handleDecide, "model"))
	mux.HandleFunc("POST /v1/session", s.withModel(s.handleSession, ""))
	mux.HandleFunc("POST /v1/models/{model}/session", s.withModel(s.handleSession, "model"))
	mux.HandleFunc("POST /v1/reload", s.handleReloadAll)
	mux.HandleFunc("POST /v1/models/{model}/reload", s.withModel(s.handleReload, "model"))
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	if s.cfg.PProf {
		// The DefaultServeMux registrations done by importing net/http/pprof
		// don't apply to a private mux, so mount the handlers explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// withModel resolves the route's model (the default for legacy routes, the
// {model} path segment for named ones) before invoking h.
func (s *Server) withModel(h func(http.ResponseWriter, *http.Request, *Model), pathVar string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := s.reg.Default()
		if pathVar != "" {
			if m = s.reg.Lookup(r.PathValue(pathVar)); m == nil {
				writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", r.PathValue(pathVar)))
				return
			}
		}
		h(w, r, m)
	}
}

// DecideRequest is one decision query: a single state or a stacked batch
// (exactly one must be set), optionally asking for the full Q rows.
type DecideRequest struct {
	State   []float64   `json:"state,omitempty"`
	States  [][]float64 `json:"states,omitempty"`
	QValues bool        `json:"qvalues,omitempty"`
}

// DecideResponse answers a DecideRequest. Over streaming sessions a failed
// decision sets Error and leaves the rest empty.
type DecideResponse struct {
	Action  *int        `json:"action,omitempty"`
	Actions []int       `json:"actions,omitempty"`
	Q       [][]float64 `json:"q,omitempty"`
	Error   string      `json:"error,omitempty"`
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request, m *Model) {
	if s.draining() {
		s.failModel(m, w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	start := time.Now()
	var req DecideRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.failModel(m, w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		} else {
			s.failModel(m, w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		}
		return
	}
	resp, code, err := s.decide(m, &req)
	if err != nil {
		s.failModel(m, w, code, err)
		return
	}
	m.stats.Latency.ObserveDuration(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// decide runs one DecideRequest against a model, routing lone greedy states
// through the micro-batcher and everything else (stacked batches, Q-value
// queries) through the direct path — a stacked batch is already a batch, and
// Q rows are a debugging surface that would bloat the shared batch buffers.
// It returns the response, or the HTTP status and error describing why the
// request is unservable.
func (s *Server) decide(m *Model, req *DecideRequest) (*DecideResponse, int, error) {
	m.stats.Requests.Add(1)
	// Presence is by len, not nil, so session handlers can reuse request
	// buffers across lines (a reset slice is empty but non-nil).
	single := len(req.State) > 0
	if single == (len(req.States) > 0) {
		return nil, http.StatusBadRequest, errors.New(`exactly one of "state" and "states" must be set (and non-empty)`)
	}
	pol := m.policy()
	dim := pol.StateDim()

	var resp DecideResponse
	if single && !req.QValues && s.cfg.Batching {
		if len(req.State) != dim {
			return nil, http.StatusBadRequest,
				fmt.Errorf("state has %d features, model wants %d", len(req.State), dim)
		}
		action, err := m.batcher.Decide(req.State)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		m.stats.States.Add(1)
		resp.Action = &action
		return &resp, 0, nil
	}

	states := req.States
	if single {
		states = [][]float64{req.State}
	}
	if len(states) == 0 {
		return nil, http.StatusBadRequest, errors.New("empty batch")
	}
	sc := s.scratch.Get().(*reqScratch)
	defer s.scratch.Put(sc)
	sc.flat = sc.flat[:0]
	for i, st := range states {
		if len(st) != dim {
			return nil, http.StatusBadRequest,
				fmt.Errorf("state %d has %d features, model wants %d", i, len(st), dim)
		}
		sc.flat = append(sc.flat, st...)
	}
	n := len(states)
	if cap(sc.actions) < n {
		sc.actions = make([]int, n)
	}
	actions := sc.actions[:n]
	if req.QValues {
		// One forward serves both: take the argmax from the Q rows.
		na := pol.NumActions()
		if cap(sc.q) < n*na {
			sc.q = make([]float64, n*na)
		}
		q := sc.q[:n*na]
		if err := pol.QValuesBatch(q, sc.flat); err != nil {
			return nil, http.StatusInternalServerError, err
		}
		resp.Q = make([][]float64, n)
		for i := 0; i < n; i++ {
			row := q[i*na : (i+1)*na]
			resp.Q[i] = append([]float64(nil), row...)
			actions[i] = argmax(row)
		}
	} else if err := pol.DecideBatch(sc.flat, actions); err != nil {
		return nil, http.StatusInternalServerError, err
	}
	m.stats.Direct.Add(1)
	m.stats.States.Add(int64(n))
	if single {
		a := actions[0]
		resp.Action = &a
	} else {
		resp.Actions = append([]int(nil), actions...)
	}
	return &resp, 0, nil
}

// argmax matches rl's tie-breaking: the first maximal action wins.
func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func (s *Server) handleReloadAll(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.ReloadAll(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	reloads := make(map[string]int64, len(s.reg.Names()))
	for _, name := range s.reg.Names() {
		reloads[name] = s.reg.Lookup(name).Reloads()
	}
	writeJSON(w, http.StatusOK, map[string]any{"reloads": reloads})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request, m *Model) {
	if err := m.Reload(); err != nil {
		s.failModel(m, w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"model": m.Name(), "reloads": m.Reloads()})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	models := make([]map[string]any, 0, len(s.reg.Names()))
	for _, name := range s.reg.Names() {
		m := s.reg.Lookup(name)
		pol := m.policy()
		models = append(models, map[string]any{
			"name":        name,
			"path":        m.Path(),
			"engine":      m.Engine(),
			"default":     name == s.reg.Default().Name(),
			"state_dim":   pol.StateDim(),
			"num_actions": pol.NumActions(),
			"reloads":     m.Reloads(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": models})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining() {
		status = "draining"
	}
	m := s.reg.Default()
	pol := m.policy()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"models":      s.reg.Names(),
		"model":       m.Path(),
		"state_dim":   pol.StateDim(),
		"num_actions": pol.NumActions(),
		"reloads":     m.Reloads(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var requests, errCount int64
	models := make(map[string]any, len(s.reg.Names()))
	for _, name := range s.reg.Names() {
		m := s.reg.Lookup(name)
		st := &m.stats
		requests += st.Requests.Load()
		errCount += st.Errors.Load()
		flushes := st.FlushFull.Load() + st.FlushWindow.Load()
		models[name] = map[string]any{
			"path":              m.Path(),
			"engine":            m.Engine(),
			"reloads":           m.Reloads(),
			"requests":          st.Requests.Load(),
			"states_served":     st.States.Load(),
			"errors":            st.Errors.Load(),
			"sessions":          st.Sessions.Load(),
			"session_decisions": st.SessionDecisions.Load(),
			"latency_us":        latencyStats(&st.Latency),
			"batch": map[string]any{
				"flushes":        flushes,
				"flushes_full":   st.FlushFull.Load(),
				"flushes_window": st.FlushWindow.Load(),
				"mean_fill":      st.BatchFill.Mean(),
				"p50_fill":       st.BatchFill.Quantile(0.50),
				"direct":         st.Direct.Load(),
			},
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"requests": requests,
		"errors":   errCount,
		"uptime_s": time.Since(s.start).Seconds(),
		"batching": map[string]any{
			"enabled":   s.cfg.Batching,
			"max_batch": s.cfg.MaxBatch,
			"window_us": float64(s.cfg.Window) / float64(time.Microsecond),
		},
		"models": models,
	})
}

// failModel counts the error against the model and writes the JSON error.
func (s *Server) failModel(m *Model, w http.ResponseWriter, code int, err error) {
	m.stats.Errors.Add(1)
	writeError(w, code, err)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: write response: %v", err)
	}
}
