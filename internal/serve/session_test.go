package serve

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// sessionClient is a test-side streaming session: write one request, read
// one response, over a single held connection.
type sessionClient struct {
	pw   *io.PipeWriter
	resp *http.Response
	enc  *json.Encoder
	dec  *json.Decoder
}

func openSession(t testing.TB, url string) *sessionClient {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url, pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("session status %d", resp.StatusCode)
	}
	return &sessionClient{pw: pw, resp: resp, enc: json.NewEncoder(pw), dec: json.NewDecoder(resp.Body)}
}

func (c *sessionClient) roundTrip(t testing.TB, req DecideRequest) DecideResponse {
	t.Helper()
	if err := c.enc.Encode(req); err != nil {
		t.Fatal(err)
	}
	var out DecideResponse
	if err := c.dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func (c *sessionClient) close() {
	c.pw.Close()
	io.Copy(io.Discard, c.resp.Body)
	c.resp.Body.Close()
}

// TestSessionStreamsDecisions holds one connection for many decisions and
// checks every action against the reference snapshot, including recovery
// from an in-stream dimension error.
func TestSessionStreamsDecisions(t *testing.T) {
	srv, snap, _ := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := openSession(t, ts.URL+"/v1/session")
	defer c.close()

	rng := rand.New(rand.NewSource(11))
	states := randStates(rng, 20, testStateDim)
	want := make([]int, len(states))
	if err := snap.GreedyBatch(want, flatten(states)); err != nil {
		t.Fatal(err)
	}
	for i, st := range states {
		out := c.roundTrip(t, DecideRequest{State: st})
		if out.Error != "" || out.Action == nil {
			t.Fatalf("decision %d: error %q", i, out.Error)
		}
		if *out.Action != want[i] {
			t.Fatalf("decision %d = %d, want %d", i, *out.Action, want[i])
		}
	}

	// A recoverable error (wrong dimension) answers with an error line and
	// the session keeps serving.
	out := c.roundTrip(t, DecideRequest{State: []float64{1}})
	if out.Error == "" {
		t.Fatal("wrong-dimension state served without error")
	}
	out = c.roundTrip(t, DecideRequest{State: states[0]})
	if out.Error != "" || out.Action == nil || *out.Action != want[0] {
		t.Fatalf("session did not recover after error line: %+v", out)
	}

	// Stacked batches work over sessions too.
	out = c.roundTrip(t, DecideRequest{States: states[:5]})
	if out.Error != "" || len(out.Actions) != 5 {
		t.Fatalf("session batch: %+v", out)
	}
	for i, a := range out.Actions {
		if a != want[i] {
			t.Fatalf("session batch action %d = %d, want %d", i, a, want[i])
		}
	}

	// Session counters made it into the stats.
	var stats struct {
		Models map[string]struct {
			Sessions         float64 `json:"sessions"`
			SessionDecisions float64 `json:"session_decisions"`
		} `json:"models"`
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	m := stats.Models["default"]
	if m.Sessions != 1 || m.SessionDecisions < 21 {
		t.Fatalf("session stats %+v, want 1 session with >= 21 decisions", m)
	}
}

// TestSessionMalformedStream proves broken framing gets one error line and a
// clean end of stream.
func TestSessionMalformedStream(t *testing.T) {
	srv, _, _ := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := openSession(t, ts.URL+"/v1/session")
	defer c.close()
	// "nope" is a hard syntax error (an incomplete-but-valid prefix would
	// just block the decoder waiting for the rest of the value).
	if _, err := io.WriteString(c.pw, "nope\n"); err != nil {
		t.Fatal(err)
	}
	var out DecideResponse
	if err := c.dec.Decode(&out); err != nil {
		t.Fatalf("expected an error line, got stream error %v", err)
	}
	if out.Error == "" {
		t.Fatalf("malformed line answered with %+v, want error", out)
	}
	if err := c.dec.Decode(&out); err != io.EOF {
		t.Fatalf("session kept going after broken framing: %v", err)
	}
}

// TestConcurrentSessionsBatchTogether runs many simultaneous sessions and
// proves their single-state decisions coalesce: with the batcher on, the
// fused-flush counters must show multi-state fills.
func TestConcurrentSessionsBatchTogether(t *testing.T) {
	srv, snap, _ := newTestServer(t, func(c *Config) {
		c.MaxBatch = 8
		c.Window = 2 * time.Millisecond
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const sessions, perSession = 8, 30
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := openSession(t, ts.URL+"/v1/session")
			defer c.close()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < perSession; i++ {
				st := randStates(rng, 1, testStateDim)[0]
				want := make([]int, 1)
				if err := snap.GreedyBatch(want, st); err != nil {
					t.Error(err)
					return
				}
				out := c.roundTrip(t, DecideRequest{State: st})
				if out.Error != "" || out.Action == nil || *out.Action != want[0] {
					t.Errorf("session %d decision %d: got %+v want %d", g, i, out, want[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	m := srv.Registry().Default()
	total := m.stats.FlushFull.Load() + m.stats.FlushWindow.Load()
	if total == 0 {
		t.Fatal("no batch flushes recorded")
	}
	if fill := m.stats.BatchFill.Mean(); fill <= 1 {
		t.Logf("mean fill %v: concurrent sessions never coalesced (timing-dependent; not fatal)", fill)
	}
	if m.stats.SessionDecisions.Load() != sessions*perSession {
		t.Fatalf("session decisions %d, want %d", m.stats.SessionDecisions.Load(), sessions*perSession)
	}
}
