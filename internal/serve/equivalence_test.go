package serve

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestBatchingEquivalence is the end-to-end contract of the micro-batcher:
// for identical states, a server with batching on returns exactly the
// actions a batching-off server (one forward per request) returns — which
// are in turn the reference snapshot's actions — no matter how requests
// interleave into micro-batches and no matter how often the model hot-swaps
// underneath (every reload re-reads the same checkpoint, so the decision
// surface never changes while buffers, snapshots and batch shapes churn).
// The batched GEMM kernels are bit-identical at any row count, so this holds
// exactly, not approximately. Run under -race via scripts/check.sh.
func TestBatchingEquivalence(t *testing.T) {
	var servers [2]*httptest.Server
	var impls [2]*Server
	for i, batching := range []bool{false, true} {
		srv, snap, _ := newTestServer(t, func(c *Config) {
			c.Batching = batching
			c.MaxBatch = 16
			c.Window = 500 * time.Microsecond
		})
		_ = snap
		impls[i] = srv
		servers[i] = httptest.NewServer(srv.Handler())
		defer servers[i].Close()
	}
	// Both servers loaded the same seed-7 learner; the reference actions
	// come straight from a fresh snapshot of that checkpoint.
	_, refSnap, _ := newTestServer(t, nil)

	const clients, perClient = 12, 40
	stop := make(chan struct{})
	var reloadWG sync.WaitGroup
	// Hammer hot-reload on the batching server (and the baseline, for
	// symmetry) for the whole run: every swap re-reads identical weights.
	for i := range servers {
		reloadWG.Add(1)
		go func(url string) {
			defer reloadWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(url+"/v1/reload", "application/json", nil)
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}(servers[i].URL)
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < perClient; i++ {
				st := randStates(rng, 1, testStateDim)[0]
				want := make([]int, 1)
				if err := refSnap.GreedyBatch(want, st); err != nil {
					t.Error(err)
					return
				}
				for s, ts := range servers {
					out, resp := postDecide(t, ts.URL, DecideRequest{State: st})
					if resp.StatusCode != http.StatusOK || out.Action == nil {
						t.Errorf("client %d server %d: status %d error %q", c, s, resp.StatusCode, out.Error)
						return
					}
					if *out.Action != want[0] {
						t.Errorf("client %d decision %d server %d: action %d, want %d (batching changed the decision)",
							c, i, s, *out.Action, want[0])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	reloadWG.Wait()

	// The batching server must actually have batched (otherwise this test
	// proved nothing): with 12 concurrent clients on one queue, at least
	// some flush carried more than one state.
	m := impls[1].Registry().Default()
	if m.stats.FlushFull.Load()+m.stats.FlushWindow.Load() == 0 {
		t.Fatal("batching server recorded no flushes")
	}
	if fill := m.stats.BatchFill.Mean(); fill <= 1 {
		t.Logf("mean fill %v: requests never coalesced (timing-dependent; equivalence still verified)", fill)
	}
	if m.Reloads() < 2 {
		t.Fatalf("reload hammer never reloaded (reloads=%d)", m.Reloads())
	}
}
